#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis.hpp"
#include "spice/elements.hpp"

namespace nh::spice {
namespace {

TEST(Dc, ResistorDivider) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId mid = ckt.node("mid");
  ckt.emplace<VoltageSource>("V1", in, ckt.ground(), 10.0);
  ckt.emplace<Resistor>("R1", in, mid, 1000.0);
  ckt.emplace<Resistor>("R2", mid, ckt.ground(), 3000.0);

  const SolveResult op = solveDc(ckt);
  ASSERT_TRUE(op.converged);
  // Tolerance reflects the gmin (1e-12 S) leakage every node carries.
  EXPECT_NEAR(op.x[mid - 1], 7.5, 1e-6);
  EXPECT_NEAR(op.x[in - 1], 10.0, 1e-6);
}

TEST(Dc, VoltageSourceBranchCurrent) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  auto* src = ckt.emplace<VoltageSource>("V1", in, ckt.ground(), 5.0);
  ckt.emplace<Resistor>("R1", in, ckt.ground(), 500.0);
  const SolveResult op = solveDc(ckt);
  ASSERT_TRUE(op.converged);
  // Branch current flows out of the + terminal through R to ground: 10 mA.
  EXPECT_NEAR(src->branchCurrent(op.x), -0.01, 1e-9);
}

TEST(Dc, CurrentSourceIntoResistor) {
  Circuit ckt;
  const NodeId n = ckt.node("n");
  ckt.emplace<CurrentSource>("I1", ckt.ground(), n, 1e-3);
  ckt.emplace<Resistor>("R1", n, ckt.ground(), 2000.0);
  const SolveResult op = solveDc(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.x[n - 1], 2.0, 1e-6);
}

TEST(Dc, SeriesVoltageSourcesStack) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.emplace<VoltageSource>("V1", a, ckt.ground(), 1.0);
  ckt.emplace<VoltageSource>("V2", b, a, 2.0);
  ckt.emplace<Resistor>("RL", b, ckt.ground(), 1e4);
  const SolveResult op = solveDc(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.x[b - 1], 3.0, 1e-9);
}

TEST(Dc, DiodeForwardDropNearExpected) {
  // 5 V through 1 kOhm into a diode: V_diode ~ 0.6-0.8 V, Newton must
  // converge on the exponential.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId d = ckt.node("d");
  ckt.emplace<VoltageSource>("V1", in, ckt.ground(), 5.0);
  ckt.emplace<Resistor>("R1", in, d, 1000.0);
  ckt.emplace<Diode>("D1", d, ckt.ground());
  const SolveResult op = solveDc(ckt);
  ASSERT_TRUE(op.converged);
  const double vd = op.x[d - 1];
  EXPECT_GT(vd, 0.5);
  EXPECT_LT(vd, 0.85);
  // KCL: resistor current equals diode current.
  const double ir = (5.0 - vd) / 1000.0;
  Diode ref("ref", 0, 0);
  EXPECT_NEAR(ir, ref.current(vd), ir * 1e-4);
}

TEST(Dc, DiodeReverseBlocksCurrent) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId d = ckt.node("d");
  ckt.emplace<VoltageSource>("V1", in, ckt.ground(), -5.0);
  ckt.emplace<Resistor>("R1", in, d, 1000.0);
  ckt.emplace<Diode>("D1", d, ckt.ground());
  const SolveResult op = solveDc(ckt);
  ASSERT_TRUE(op.converged);
  // Nearly the full -5 V appears across the diode.
  EXPECT_LT(op.x[d - 1], -4.9);
}

TEST(Dc, FloatingNodeHandledByGmin) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.node("floating");  // never connected
  ckt.emplace<VoltageSource>("V1", a, ckt.ground(), 1.0);
  ckt.emplace<Resistor>("R1", a, ckt.ground(), 1000.0);
  const SolveResult op = solveDc(ckt);
  EXPECT_TRUE(op.converged);
}

TEST(Dc, ElementValidation) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  EXPECT_THROW(ckt.emplace<Resistor>("R", a, ckt.ground(), 0.0),
               std::invalid_argument);
  EXPECT_THROW(ckt.emplace<Resistor>("R", a, ckt.ground(), -5.0),
               std::invalid_argument);
  EXPECT_THROW(ckt.emplace<Capacitor>("C", a, ckt.ground(), 0.0),
               std::invalid_argument);
  EXPECT_THROW(ckt.emplace<Diode>("D", a, ckt.ground(), 0.0),
               std::invalid_argument);
}

TEST(Circuit, NodeBookkeeping) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  EXPECT_EQ(ckt.node("a"), a);  // idempotent
  EXPECT_EQ(ckt.findNode("a"), a);
  EXPECT_THROW(ckt.findNode("missing"), std::out_of_range);
  EXPECT_EQ(ckt.nodeName(0), "0");
  EXPECT_EQ(ckt.nodeCount(), 2u);
}

}  // namespace
}  // namespace nh::spice
