#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "core/patterns.hpp"

namespace nh::core {
namespace {

xbar::ArrayConfig config3x3() {
  xbar::ArrayConfig cfg;
  cfg.rows = 3;
  cfg.cols = 3;
  return cfg;
}

TEST(BitFlipDetector, ClassifiesDeepStates) {
  xbar::CrossbarArray array(config3x3());
  BitFlipDetector detector;
  array.setState(0, 0, xbar::CellState::Lrs);
  array.setState(0, 1, xbar::CellState::Hrs);
  EXPECT_EQ(detector.classify(array.cell(0, 0)), ReadState::Lrs);
  EXPECT_EQ(detector.classify(array.cell(0, 1)), ReadState::Hrs);
}

TEST(BitFlipDetector, IntermediateBandDetected) {
  xbar::CrossbarArray array(config3x3());
  BitFlipDetector detector;
  // Put a cell in the middle of the window (partially disturbed).
  const auto& p = array.config().cellParams;
  array.cell(1, 1).setNDisc(std::sqrt(p.nDiscMin * p.nDiscMax) * 2.0);
  EXPECT_EQ(detector.classify(array.cell(1, 1)), ReadState::Intermediate);
}

TEST(BitFlipDetector, ConfigValidation) {
  DetectorConfig bad;
  bad.rLrsMax = 1e6;
  bad.rHrsMin = 1e5;
  EXPECT_THROW(BitFlipDetector d(bad), std::invalid_argument);
}

TEST(BitFlipDetector, SnapshotAndFlips) {
  xbar::CrossbarArray array(config3x3());
  array.fill(xbar::CellState::Hrs);
  BitFlipDetector detector;
  const auto reference = detector.snapshot(array);
  ASSERT_EQ(reference.size(), 9u);
  EXPECT_TRUE(detector.flipsSince(array, reference).empty());

  array.setState(1, 2, xbar::CellState::Lrs);
  const auto events = detector.flipsSince(array, reference);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].cell, (xbar::CellCoord{1, 2}));
  EXPECT_EQ(events[0].before, ReadState::Hrs);
  EXPECT_EQ(events[0].after, ReadState::Lrs);

  EXPECT_THROW(detector.flipsSince(array, std::vector<ReadState>(4)),
               std::invalid_argument);
}

TEST(BitFlipDetector, FirstLrsHonoursOrder) {
  xbar::CrossbarArray array(config3x3());
  array.fill(xbar::CellState::Hrs);
  BitFlipDetector detector;
  const std::vector<xbar::CellCoord> monitored{{0, 1}, {1, 1}, {2, 2}};
  EXPECT_FALSE(detector.firstLrs(array, monitored).has_value());
  array.setState(2, 2, xbar::CellState::Lrs);
  array.setState(1, 1, xbar::CellState::Lrs);
  const auto hit = detector.firstLrs(array, monitored);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (xbar::CellCoord{1, 1}));  // first in the monitored list
}

// ---- patterns --------------------------------------------------------------------

TEST(Patterns, NamesAndEnumeration) {
  EXPECT_EQ(allPatterns().size(), 5u);
  EXPECT_EQ(patternName(AttackPattern::SingleAggressor), "single");
  EXPECT_EQ(patternName(AttackPattern::Ring), "ring");
}

TEST(Patterns, CentreVictimAggressorSets) {
  const xbar::CellCoord victim{2, 2};
  const auto single = patternAggressors(AttackPattern::SingleAggressor, victim, 5, 5);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].row, 2u);  // word-line neighbour

  const auto rowPair = patternAggressors(AttackPattern::RowPair, victim, 5, 5);
  ASSERT_EQ(rowPair.size(), 2u);
  EXPECT_EQ(rowPair[0], (xbar::CellCoord{2, 1}));
  EXPECT_EQ(rowPair[1], (xbar::CellCoord{2, 3}));

  const auto colPair = patternAggressors(AttackPattern::ColumnPair, victim, 5, 5);
  ASSERT_EQ(colPair.size(), 2u);
  EXPECT_EQ(colPair[0], (xbar::CellCoord{1, 2}));

  EXPECT_EQ(patternAggressors(AttackPattern::Cross, victim, 5, 5).size(), 4u);
  EXPECT_EQ(patternAggressors(AttackPattern::Ring, victim, 5, 5).size(), 8u);
}

TEST(Patterns, ClippedAtArrayEdge) {
  const xbar::CellCoord corner{0, 0};
  const auto cross = patternAggressors(AttackPattern::Cross, corner, 5, 5);
  ASSERT_EQ(cross.size(), 2u);  // only right and below fit
  const auto ring = patternAggressors(AttackPattern::Ring, corner, 5, 5);
  EXPECT_EQ(ring.size(), 3u);
}

TEST(Patterns, NoAggressorFitsThrows) {
  EXPECT_THROW(patternAggressors(AttackPattern::RowPair, {0, 0}, 1, 1),
               std::invalid_argument);
}

TEST(Patterns, AggressorsNeverIncludeVictim) {
  const xbar::CellCoord victim{2, 2};
  for (const auto pattern : allPatterns()) {
    for (const auto& a : patternAggressors(pattern, victim, 5, 5)) {
      EXPECT_FALSE(a == victim);
    }
  }
}

}  // namespace
}  // namespace nh::core
