#include "spice/waveform.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace nh::spice {
namespace {

PulseSpec hammerPulse() {
  PulseSpec s;
  s.base = 0.525;
  s.amplitude = 1.05;
  s.delay = 10e-9;
  s.rise = 1e-9;
  s.fall = 1e-9;
  s.width = 50e-9;
  s.period = 100e-9;
  s.count = 3;
  return s;
}

TEST(PulseWaveform, LevelsThroughOnePeriod) {
  const PulseWaveform w(hammerPulse());
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.525);              // before delay
  EXPECT_NEAR(w.value(10.5e-9), 0.7875, 1e-9);        // mid-rise
  EXPECT_DOUBLE_EQ(w.value(30e-9), 1.05);             // active
  EXPECT_NEAR(w.value(10e-9 + 51.5e-9), 0.7875, 1e-9);  // mid-fall
  EXPECT_DOUBLE_EQ(w.value(80e-9), 0.525);            // between pulses
}

TEST(PulseWaveform, RepeatsForCountThenStops) {
  const PulseWaveform w(hammerPulse());
  // Second and third pulses active.
  EXPECT_DOUBLE_EQ(w.value(10e-9 + 100e-9 + 25e-9), 1.05);
  EXPECT_DOUBLE_EQ(w.value(10e-9 + 200e-9 + 25e-9), 1.05);
  // Fourth pulse does not exist (count = 3).
  EXPECT_DOUBLE_EQ(w.value(10e-9 + 300e-9 + 25e-9), 0.525);
}

TEST(PulseWaveform, DutyCycle) {
  EXPECT_DOUBLE_EQ(hammerPulse().dutyCycle(), 0.5);
  PulseSpec single = hammerPulse();
  single.period = 0.0;
  EXPECT_DOUBLE_EQ(single.dutyCycle(), 0.0);
}

TEST(PulseWaveform, BreakpointsAlignToEdges) {
  const PulseWaveform w(hammerPulse());
  EXPECT_DOUBLE_EQ(w.nextBreakpoint(0.0), 10e-9);          // first rise start
  EXPECT_DOUBLE_EQ(w.nextBreakpoint(10e-9), 11e-9);        // rise end
  EXPECT_DOUBLE_EQ(w.nextBreakpoint(11e-9), 61e-9);        // fall start
  EXPECT_DOUBLE_EQ(w.nextBreakpoint(61e-9), 62e-9);        // fall end
  EXPECT_DOUBLE_EQ(w.nextBreakpoint(62e-9), 110e-9);       // next period
  // After the final pulse there are no more breakpoints.
  EXPECT_TRUE(std::isinf(w.nextBreakpoint(10e-9 + 3 * 100e-9)));
}

TEST(PulseWaveform, RejectsInvalidShapes) {
  PulseSpec s = hammerPulse();
  s.rise = 0.0;
  EXPECT_THROW(PulseWaveform w(s), std::invalid_argument);
  s = hammerPulse();
  s.period = 20e-9;  // shorter than rise+width+fall
  EXPECT_THROW(PulseWaveform w(s), std::invalid_argument);
  s = hammerPulse();
  s.width = -1.0;
  EXPECT_THROW(PulseWaveform w(s), std::invalid_argument);
}

TEST(DcWaveform, ConstantEverywhere) {
  const DcWaveform w(0.7);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.7);
  EXPECT_DOUBLE_EQ(w.value(1.0), 0.7);
  EXPECT_TRUE(std::isinf(w.nextBreakpoint(0.0)));
}

TEST(PwlWaveform, InterpolatesKnots) {
  const PwlWaveform w({0.0, 1e-9, 2e-9}, {0.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(w.value(0.5e-9), 0.5);
  EXPECT_DOUBLE_EQ(w.value(5e-9), 0.0);  // clamped after last knot
  EXPECT_DOUBLE_EQ(w.nextBreakpoint(0.0), 1e-9);
  EXPECT_DOUBLE_EQ(w.nextBreakpoint(1e-9), 2e-9);
}

TEST(Waveform, CloneIsIndependentCopy) {
  const PulseWaveform w(hammerPulse());
  const auto copy = w.clone();
  EXPECT_DOUBLE_EQ(copy->value(30e-9), w.value(30e-9));
}

}  // namespace
}  // namespace nh::spice
