#include "util/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace nh::util {
namespace {

TEST(Matrix, ConstructsWithFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, MultiplyVector) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Vector y = m.multiply(Vector{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, MultiplyVectorSizeMismatchThrows) {
  const Matrix m(2, 3);
  EXPECT_THROW(m.multiply(Vector{1.0}), std::invalid_argument);
}

TEST(Matrix, MultiplyMatrix) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(Matrix, Transposed) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, IdentityMultiplicationIsNoop) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(a.multiply(Matrix::identity(2)), a);
}

TEST(Matrix, MaxAbs) {
  const Matrix a{{1.0, -7.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.maxAbs(), 7.0);
}

TEST(Matrix, FillAndResize) {
  Matrix a(2, 2, 1.0);
  a.fill(3.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 3.0);
  a.resize(3, 1, -1.0);
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_DOUBLE_EQ(a(2, 0), -1.0);
}

TEST(VectorOps, Norms) {
  const Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(normInf(v), 4.0);
}

TEST(VectorOps, DotAndAxpy) {
  const Vector a{1.0, 2.0, 3.0};
  Vector b{1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 6.0);
  axpy(2.0, a, b);
  EXPECT_DOUBLE_EQ(b[2], 7.0);
}

TEST(VectorOps, AddSubtractScale) {
  const Vector a{1.0, 2.0};
  const Vector b{0.5, 0.5};
  EXPECT_DOUBLE_EQ(add(a, b)[0], 1.5);
  EXPECT_DOUBLE_EQ(subtract(a, b)[1], 1.5);
  EXPECT_DOUBLE_EQ(scale(3.0, a)[1], 6.0);
}

}  // namespace
}  // namespace nh::util
