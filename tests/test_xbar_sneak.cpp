#include "xbar/sneak.hpp"

#include <gtest/gtest.h>

#include "xbar/fastsim.hpp"

namespace nh::xbar {
namespace {

ArrayConfig config(std::size_t n) {
  ArrayConfig cfg;
  cfg.rows = n;
  cfg.cols = n;
  return cfg;
}

TEST(Sneak, HalfBiasBoundsUnselectedVoltage) {
  // What the V/2 scheme actually guarantees (paper: "All remaining inputs
  // are supplied with V/2 to minimize the sneak-path currents"): under a
  // write-level drive, no unselected cell sees more than V/2. With floating
  // lines and mixed data, an HRS cell inside a conductive sneak chain takes
  // nearly the full drive voltage -- a severe write disturb.
  CrossbarArray array(config(5));
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      array.setState(r, c, (r + c) % 2 == 0 ? CellState::Lrs : CellState::Hrs);
    }
  }
  const double vWrite = 1.05;
  const auto floating =
      analyzeSneak(array, 2, 2, vWrite, ReadScheme::FloatingLines);
  const auto half = analyzeSneak(array, 2, 2, vWrite, ReadScheme::HalfBias);
  // V/2's bound is structural (data-independent); the floating bound is an
  // emergent property of the cells' diode-like nonlinearity and happens to
  // land near V/2 for this self-selecting device, but it is data-dependent.
  EXPECT_LE(half.maxUnselectedVoltage, vWrite / 2.0 + 0.02);
  EXPECT_GT(floating.maxUnselectedVoltage, 0.3);
  EXPECT_LT(floating.maxUnselectedVoltage, vWrite);
}

TEST(Sneak, HalfBiasBurnsHalfSelectPower) {
  CrossbarArray array(config(5));
  array.fill(CellState::Lrs);
  const auto floating = analyzeSneak(array, 2, 2, 0.2, ReadScheme::FloatingLines);
  const auto half = analyzeSneak(array, 2, 2, 0.2, ReadScheme::HalfBias);
  // The cost of the scheme: half-selected cells burn power.
  EXPECT_GT(half.halfSelectPower, floating.halfSelectPower);
}

TEST(Sneak, SelectedCurrentTracksState) {
  CrossbarArray array(config(5));
  array.fill(CellState::Hrs);
  array.setState(2, 2, CellState::Lrs);
  const auto lrs = analyzeSneak(array, 2, 2, 0.2, ReadScheme::HalfBias);
  array.setState(2, 2, CellState::Hrs);
  const auto hrs = analyzeSneak(array, 2, 2, 0.2, ReadScheme::HalfBias);
  EXPECT_GT(lrs.selectedCurrent, 20.0 * hrs.selectedCurrent);
}

TEST(Sneak, ReadMarginDegradesWithArraySize) {
  // The classic passive-crossbar scaling limit, under both schemes.
  for (const auto scheme : {ReadScheme::FloatingLines, ReadScheme::HalfBias}) {
    const auto m5 = worstCaseReadMargin(config(5), 0.2, scheme);
    const auto m9 = worstCaseReadMargin(config(9), 0.2, scheme);
    EXPECT_GT(m5.margin, m9.margin);
    EXPECT_GT(m9.margin, 0.0);
  }
}

TEST(Sneak, SneakCurrentGrowsWithArraySize) {
  for (const std::size_t n : {5u, 9u}) {
    CrossbarArray small(config(5));
    CrossbarArray larger(config(n));
    small.fill(CellState::Lrs);
    larger.fill(CellState::Lrs);
    const auto a = analyzeSneak(small, 2, 2, 0.2, ReadScheme::FloatingLines);
    const auto b =
        analyzeSneak(larger, n / 2, n / 2, 0.2, ReadScheme::FloatingLines);
    if (n > 5) EXPECT_GT(std::abs(b.sneakCurrent), std::abs(a.sneakCurrent));
  }
}

TEST(Sneak, MarginCurrentsOrdered) {
  const auto m = worstCaseReadMargin(config(5), 0.2, ReadScheme::HalfBias);
  EXPECT_GT(m.iSelectedLrs, m.iSelectedHrs);
  EXPECT_GT(m.iSelectedHrs, 0.0);
}

TEST(Sneak, Validation) {
  CrossbarArray array(config(3));
  EXPECT_THROW(analyzeSneak(array, 5, 0, 0.2, ReadScheme::HalfBias),
               std::out_of_range);
  EXPECT_THROW(analyzeSneak(array, 0, 0, 0.0, ReadScheme::HalfBias),
               std::invalid_argument);
}

// ---- energy accounting ------------------------------------------------------

TEST(Energy, AccumulatesDuringPulsesOnly) {
  CrossbarArray array(config(3));
  array.fill(CellState::Hrs);
  array.setState(1, 1, CellState::Lrs);
  FastEngine engine(array, AlphaTable::analytic(50e-9));
  EXPECT_DOUBLE_EQ(engine.totalEnergy(), 0.0);

  const LineBias bias = selectBias(BiasScheme::Half, 3, 3, 1, 1, 1.05);
  engine.applyPulse(bias, 50e-9, 50e-9);
  const double onePulse = engine.totalEnergy();
  // LRS aggressor at ~1 V / ~120 uA for 50 ns ~ a few pJ.
  EXPECT_GT(onePulse, 1e-13);
  EXPECT_LT(onePulse, 1e-10);

  // Idle time adds (almost) nothing.
  engine.applyBias(idleBias(3, 3), 1e-6);
  EXPECT_NEAR(engine.totalEnergy(), onePulse, onePulse * 1e-6);
}

TEST(Energy, AggressorDominatesTheBreakdown) {
  CrossbarArray array(config(3));
  array.fill(CellState::Hrs);
  array.setState(1, 1, CellState::Lrs);
  FastEngine engine(array, AlphaTable::analytic(50e-9));
  engine.applyPulse(selectBias(BiasScheme::Half, 3, 3, 1, 1, 1.05), 50e-9, 50e-9);
  const auto& byCell = engine.energyByCell();
  EXPECT_GT(byCell(1, 1), 10.0 * byCell(1, 0));
  EXPECT_GT(byCell(1, 0), byCell(0, 0));  // half-selected > unselected
}

TEST(Energy, BatchedTrainsExtrapolateEnergy) {
  const auto run = [](bool batching) {
    CrossbarArray array(config(3));
    array.fill(CellState::Hrs);
    array.setState(1, 1, CellState::Lrs);
    FastEngineOptions opt;
    opt.enableBatching = batching;
    FastEngine engine(array, AlphaTable::analytic(50e-9), opt);
    engine.applyPulseTrain(selectBias(BiasScheme::Half, 3, 3, 1, 1, 1.05),
                           50e-9, 50e-9, 200);
    return engine.totalEnergy();
  };
  const double exact = run(false);
  const double batched = run(true);
  EXPECT_NEAR(batched / exact, 1.0, 0.05);
}

TEST(Energy, ResetClearsCounters) {
  CrossbarArray array(config(3));
  FastEngine engine(array, AlphaTable::analytic(50e-9));
  engine.applyPulse(selectBias(BiasScheme::Half, 3, 3, 1, 1, 1.05), 50e-9, 0.0);
  EXPECT_GT(engine.totalEnergy(), 0.0);
  engine.resetEnergy();
  EXPECT_DOUBLE_EQ(engine.totalEnergy(), 0.0);
  EXPECT_DOUBLE_EQ(engine.energyByCell()(1, 1), 0.0);
}

}  // namespace
}  // namespace nh::xbar
