#include <gtest/gtest.h>

#include "xbar/array.hpp"
#include "xbar/controller.hpp"
#include "xbar/files.hpp"
#include "xbar/vmm.hpp"

namespace nh::xbar {
namespace {

ArrayConfig smallConfig() {
  ArrayConfig cfg;
  cfg.rows = 3;
  cfg.cols = 3;
  return cfg;
}

TEST(CrossbarArray, ConstructionAndAccess) {
  CrossbarArray array(smallConfig());
  EXPECT_EQ(array.rows(), 3u);
  EXPECT_EQ(array.cols(), 3u);
  EXPECT_EQ(array.cellCount(), 9u);
  EXPECT_THROW(array.cell(3, 0), std::out_of_range);
  EXPECT_THROW(array.cell(0, 3), std::out_of_range);
  ArrayConfig bad = smallConfig();
  bad.rows = 0;
  EXPECT_THROW(CrossbarArray a(bad), std::invalid_argument);
}

TEST(CrossbarArray, FillAndStateOf) {
  CrossbarArray array(smallConfig());
  array.fill(CellState::Lrs);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(array.stateOf(r, c), CellState::Lrs);
    }
  }
  array.setState(1, 2, CellState::Hrs);
  EXPECT_EQ(array.stateOf(1, 2), CellState::Hrs);
  EXPECT_EQ(array.stateOf(1, 1), CellState::Lrs);
}

TEST(CrossbarArray, SnapshotsHaveRightShape) {
  CrossbarArray array(smallConfig());
  array.fill(CellState::Hrs);
  array.setState(0, 0, CellState::Lrs);
  const auto x = array.normalisedStates();
  EXPECT_DOUBLE_EQ(x(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(x(2, 2), 0.0);
  const auto t = array.temperatures();
  EXPECT_DOUBLE_EQ(t(1, 1), 300.0);
  const auto r = array.readResistances();
  EXPECT_LT(r(0, 0), r(1, 1));
}

TEST(CrossbarArray, AmbientPropagates) {
  CrossbarArray array(smallConfig());
  array.setAmbient(350.0);
  EXPECT_DOUBLE_EQ(array.cell(2, 2).ambient(), 350.0);
  EXPECT_DOUBLE_EQ(array.temperatures()(0, 0), 350.0);
}

// ---- controller ----------------------------------------------------------------

struct ControllerFixture : ::testing::Test {
  ControllerFixture()
      : array(smallConfig()),
        engine(array, AlphaTable::analytic(50e-9)),
        controller(engine) {
    array.fill(CellState::Hrs);
  }
  CrossbarArray array;
  FastEngine engine;
  MemoryController controller;
};

TEST_F(ControllerFixture, WriteAndReadBack) {
  const std::size_t attempts = controller.writeBit(1, 1, true);
  EXPECT_GE(attempts, 1u);
  EXPECT_LE(attempts, controller.config().maxWriteAttempts);
  EXPECT_EQ(controller.readBit(1, 1).state, CellState::Lrs);
  controller.writeBit(1, 1, false);
  EXPECT_EQ(controller.readBit(1, 1).state, CellState::Hrs);
}

TEST_F(ControllerFixture, WriteImageRoundTrip) {
  const std::vector<bool> image{true, false, true,  false, true,
                                false, true, false, true};
  controller.writeImage(image);
  EXPECT_EQ(controller.readImage(), image);
}

TEST_F(ControllerFixture, ReadDoesNotDisturb) {
  controller.writeBit(0, 0, true);
  controller.writeBit(2, 2, false);
  for (int i = 0; i < 200; ++i) {
    controller.readBit(0, 0);
    controller.readBit(2, 2);
  }
  EXPECT_EQ(controller.readBit(0, 0).state, CellState::Lrs);
  EXPECT_EQ(controller.readBit(2, 2).state, CellState::Hrs);
}

TEST_F(ControllerFixture, ReadResistanceWindow) {
  controller.writeBit(0, 1, true);
  const ReadResult lrs = controller.readBit(0, 1);
  const ReadResult hrs = controller.readBit(2, 0);
  EXPECT_LT(lrs.resistance, 2e5);
  EXPECT_GT(hrs.resistance, 1e6);
  EXPECT_GT(lrs.current, hrs.current);
}

TEST_F(ControllerFixture, ActivationCountersTrackOperations) {
  controller.writeBit(1, 2, true);
  const auto& wl = controller.wordLineActivations();
  const auto& bl = controller.bitLineActivations();
  EXPECT_GT(wl[1], 0u);
  EXPECT_GT(bl[2], 0u);
  EXPECT_EQ(wl[0], 0u);
  const std::size_t hammered = controller.hammer(1, 1, 50, 50e-9);
  EXPECT_EQ(hammered, 50u);
  EXPECT_GE(wl[1], 50u);
  controller.resetActivationCounters();
  EXPECT_EQ(wl[1], 0u);
}

TEST_F(ControllerFixture, ImageSizeValidation) {
  EXPECT_THROW(controller.writeImage(std::vector<bool>(4, false)),
               std::invalid_argument);
}

// ---- init / stimuli files ---------------------------------------------------------

TEST(InitFile, ParseAndApply) {
  const auto entries = parseInit(
      "# comment line\n"
      "0 0 LRS\n"
      "1 2 hrs   # trailing comment\n"
      "2 1 4.0e25\n");
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_TRUE(entries[0].isLrs);
  EXPECT_FALSE(entries[1].isLrs);
  EXPECT_TRUE(entries[2].explicitConcentration);

  CrossbarArray array(smallConfig());
  applyInit(array, entries);
  EXPECT_EQ(array.stateOf(0, 0), CellState::Lrs);
  EXPECT_EQ(array.stateOf(1, 2), CellState::Hrs);
  EXPECT_NEAR(array.cell(2, 1).nDisc(), 4.0e25, 1e15);
}

TEST(InitFile, RejectsMalformedLines) {
  EXPECT_THROW(parseInit("0 0\n"), std::runtime_error);
  EXPECT_THROW(parseInit("0 0 MAYBE\n"), std::invalid_argument);
  EXPECT_THROW(parseInit("-1 0 LRS\n"), std::runtime_error);
  EXPECT_THROW(parseInit("0 0 -5e25\n"), std::runtime_error);
}

TEST(InitFile, ApplyOutOfRangeThrows) {
  CrossbarArray array(smallConfig());
  EXPECT_THROW(applyInit(array, parseInit("5 0 LRS\n")), std::out_of_range);
}

TEST(InitFile, DumpRoundTrips) {
  CrossbarArray array(smallConfig());
  array.fill(CellState::Hrs);
  array.setState(1, 1, CellState::Lrs);
  const auto entries = parseInit(dumpInit(array));
  CrossbarArray copy(smallConfig());
  applyInit(copy, entries);
  EXPECT_EQ(copy.stateOf(1, 1), CellState::Lrs);
  EXPECT_EQ(copy.stateOf(0, 0), CellState::Hrs);
}

TEST(StimuliFile, ParseFields) {
  const auto stimuli = parseStimuli(
      "# WL|BL idx amp lenNs duty count [delayNs]\n"
      "WL 2 1.05 50 0.5 1000\n"
      "BL 0 0.525 50 1.0 -1 10\n");
  ASSERT_EQ(stimuli.size(), 2u);
  EXPECT_TRUE(stimuli[0].isWordLine);
  EXPECT_EQ(stimuli[0].index, 2u);
  EXPECT_DOUBLE_EQ(stimuli[0].pulse.amplitude, 1.05);
  EXPECT_DOUBLE_EQ(stimuli[0].pulse.width, 50e-9);
  EXPECT_DOUBLE_EQ(stimuli[0].pulse.period, 100e-9);
  EXPECT_EQ(stimuli[0].pulse.count, 1000);
  EXPECT_FALSE(stimuli[1].isWordLine);
  EXPECT_DOUBLE_EQ(stimuli[1].pulse.delay, 10e-9);
  EXPECT_DOUBLE_EQ(stimuli[1].pulse.period, 0.0);  // duty 1.0 -> single level
}

TEST(StimuliFile, RejectsBadInput) {
  EXPECT_THROW(parseStimuli("XX 0 1.0 50 0.5 10\n"), std::runtime_error);
  EXPECT_THROW(parseStimuli("WL 0 1.0 -50 0.5 10\n"), std::runtime_error);
  EXPECT_THROW(parseStimuli("WL 0 1.0 50 1.5 10\n"), std::runtime_error);
  EXPECT_THROW(parseStimuli("WL 0 1.0 50 0.5\n"), std::runtime_error);
}

TEST(StimuliFile, ValidationAgainstArray) {
  CrossbarArray array(smallConfig());
  const auto ok = parseStimuli("WL 2 1.0 50 0.5 10\n");
  EXPECT_NO_THROW(validateStimuli(array, ok));
  const auto bad = parseStimuli("BL 7 1.0 50 0.5 10\n");
  EXPECT_THROW(validateStimuli(array, bad), std::out_of_range);
}

// ---- vmm -------------------------------------------------------------------------

TEST(Vmm, CurrentsFollowConductanceMatrix) {
  CrossbarArray array(smallConfig());
  array.fill(CellState::Hrs);
  array.setState(0, 0, CellState::Lrs);
  array.setState(1, 1, CellState::Lrs);

  nh::util::Vector inputs{0.2, 0.1, 0.0};
  const auto currents = vmmCurrents(array, inputs);
  ASSERT_EQ(currents.size(), 3u);
  // Column 0 is driven by the LRS cell at row 0.
  EXPECT_GT(currents[0], 10.0 * currents[2]);
  // Column 1 is driven by the LRS cell at row 1 (half the voltage).
  EXPECT_GT(currents[1], 5.0 * currents[2]);
  EXPECT_GT(currents[0], currents[1]);
}

TEST(Vmm, MonotoneAndSuperlinearInInputs) {
  CrossbarArray array(smallConfig());
  array.fill(CellState::Lrs);
  const auto i1 = vmmCurrents(array, {0.05, 0.0, 0.0});
  const auto i2 = vmmCurrents(array, {0.10, 0.0, 0.0});
  // The Schottky interface makes the cells superlinear: doubling the input
  // at least doubles the current, but stays within one order of magnitude.
  EXPECT_GT(i2[0], 1.8 * i1[0]);
  EXPECT_LT(i2[0], 10.0 * i1[0]);
}

TEST(Vmm, Validation) {
  CrossbarArray array(smallConfig());
  EXPECT_THROW(vmmCurrents(array, {0.1, 0.1}), std::invalid_argument);
  EXPECT_THROW(vmmCurrents(array, {0.5, 0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(conductanceMatrix(array, 0.0), std::invalid_argument);
}

TEST(Vmm, ConductanceMatrixReflectsStates) {
  CrossbarArray array(smallConfig());
  array.fill(CellState::Hrs);
  array.setState(2, 0, CellState::Lrs);
  const auto g = conductanceMatrix(array);
  EXPECT_GT(g(2, 0), 50.0 * g(0, 0));
}

}  // namespace
}  // namespace nh::xbar
