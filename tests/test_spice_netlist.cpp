#include "spice/netlist_parser.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis.hpp"
#include "spice/elements.hpp"

namespace nh::spice {
namespace {

TEST(SpiceValue, PlainNumbers) {
  EXPECT_DOUBLE_EQ(parseSpiceValue("42"), 42.0);
  EXPECT_DOUBLE_EQ(parseSpiceValue("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(parseSpiceValue("1e-9"), 1e-9);
  EXPECT_DOUBLE_EQ(parseSpiceValue("2.5E3"), 2500.0);
}

TEST(SpiceValue, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(parseSpiceValue("1k"), 1e3);
  EXPECT_DOUBLE_EQ(parseSpiceValue("4.7K"), 4700.0);
  EXPECT_DOUBLE_EQ(parseSpiceValue("50n"), 50e-9);
  EXPECT_DOUBLE_EQ(parseSpiceValue("2.2u"), 2.2e-6);
  EXPECT_DOUBLE_EQ(parseSpiceValue("1m"), 1e-3);
  EXPECT_DOUBLE_EQ(parseSpiceValue("3MEG"), 3e6);
  EXPECT_DOUBLE_EQ(parseSpiceValue("1g"), 1e9);
  EXPECT_DOUBLE_EQ(parseSpiceValue("1f"), 1e-15);
  EXPECT_DOUBLE_EQ(parseSpiceValue("1p"), 1e-12);
  EXPECT_DOUBLE_EQ(parseSpiceValue("1t"), 1e12);
}

TEST(SpiceValue, Malformed) {
  EXPECT_THROW(parseSpiceValue(""), std::invalid_argument);
  EXPECT_THROW(parseSpiceValue("abc"), std::invalid_argument);
  EXPECT_THROW(parseSpiceValue("1x"), std::invalid_argument);
  EXPECT_THROW(parseSpiceValue("1kk"), std::invalid_argument);
}

TEST(NetlistParser, DividerSolvesCorrectly) {
  Circuit ckt;
  const auto summary = parseNetlist(ckt,
                                    "* resistor divider\n"
                                    "V1 in 0 DC 10\n"
                                    "R1 in mid 1k\n"
                                    "R2 mid gnd 3k\n"
                                    ".end\n");
  EXPECT_EQ(summary.resistors, 2u);
  EXPECT_EQ(summary.voltageSources, 1u);
  EXPECT_EQ(summary.total(), 3u);

  const auto op = solveDc(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.x[ckt.findNode("mid") - 1], 7.5, 1e-6);
}

TEST(NetlistParser, PulseSourceRoundTrip) {
  Circuit ckt;
  parseNetlist(ckt, "Vp in 0 PULSE(0.525 1.05 10n 1n 1n 50n 100n 3)\n");
  ASSERT_EQ(ckt.elements().size(), 1u);
  const auto* src = dynamic_cast<const VoltageSource*>(ckt.elements()[0].get());
  ASSERT_NE(src, nullptr);
  EXPECT_DOUBLE_EQ(src->waveform().value(0.0), 0.525);
  EXPECT_DOUBLE_EQ(src->waveform().value(40e-9), 1.05);
  // Count = 3: the 4th pulse is absent.
  EXPECT_DOUBLE_EQ(src->waveform().value(10e-9 + 3 * 100e-9 + 25e-9), 0.525);
}

TEST(NetlistParser, PwlSourceWithCommas) {
  Circuit ckt;
  parseNetlist(ckt, "Vw a 0 PWL(0 0, 1u 1, 2u 0)\n");
  const auto* src = dynamic_cast<const VoltageSource*>(ckt.elements()[0].get());
  ASSERT_NE(src, nullptr);
  EXPECT_DOUBLE_EQ(src->waveform().value(0.5e-6), 0.5);
}

TEST(NetlistParser, BareValueIsDc) {
  Circuit ckt;
  parseNetlist(ckt, "V1 a 0 3.3\nI1 0 a 1m\n");
  const auto op = solveDc(ckt);
  EXPECT_TRUE(op.converged);
  // V source pins the node regardless of the current source.
  EXPECT_NEAR(op.x[ckt.findNode("a") - 1], 3.3, 1e-9);
}

TEST(NetlistParser, DiodeDefaultsAndOverrides) {
  Circuit ckt;
  const auto summary = parseNetlist(ckt,
                                    "V1 in 0 DC 5\n"
                                    "R1 in d 1k\n"
                                    "D1 d 0 1e-12 1.5\n");
  EXPECT_EQ(summary.diodes, 1u);
  const auto op = solveDc(ckt);
  ASSERT_TRUE(op.converged);
  const double vd = op.x[ckt.findNode("d") - 1];
  EXPECT_GT(vd, 0.4);
  EXPECT_LT(vd, 1.0);
}

TEST(NetlistParser, CommentsAndTermination) {
  Circuit ckt;
  const auto summary = parseNetlist(ckt,
                                    "* header comment\n"
                                    "R1 a 0 1k ; trailing comment\n"
                                    "\n"
                                    ".end\n"
                                    "R2 b 0 1k  (ignored after .end)\n");
  EXPECT_EQ(summary.resistors, 1u);
}

TEST(NetlistParser, GndAliasesToGround) {
  Circuit ckt;
  parseNetlist(ckt, "R1 a GND 1k\nR2 a 0 1k\n");
  EXPECT_EQ(ckt.nodeCount(), 2u);  // ground + "a" only
}

TEST(NetlistParser, ErrorsCarryLineContext) {
  Circuit ckt;
  try {
    parseNetlist(ckt, "R1 a 0 1k\nXBAD a 0 1\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(parseNetlist(ckt, "R1 a 0\n"), std::runtime_error);
  EXPECT_THROW(parseNetlist(ckt, "V1 a 0 PULSE(1 2 3)\n"), std::runtime_error);
  EXPECT_THROW(parseNetlist(ckt, "V1 a 0 PWL(0 0 1)\n"), std::runtime_error);
  EXPECT_THROW(parseNetlist(ckt, ".tran 1n 1u\n"), std::runtime_error);
}

TEST(NetlistParser, TransientOfParsedRcMatchesAnalytic) {
  Circuit ckt;
  parseNetlist(ckt,
               "Vs in 0 PULSE(0 1 0 1n 1n 1 2)\n"
               "R1 in out 1k\n"
               "C1 out 0 1n\n");
  TransientOptions opt;
  opt.tStop = 2e-6;
  opt.dtMax = 10e-9;
  const auto result = runTransient(ckt, opt, {probeNodeVoltage(ckt, "out")});
  ASSERT_TRUE(result.completed);
  const auto& vout = result.seriesFor("v(out)");
  EXPECT_NEAR(vout.back(), 1.0 - std::exp(-2.0), 0.03);
}

}  // namespace
}  // namespace nh::spice
