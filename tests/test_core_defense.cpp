#include "core/defense.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"

namespace nh::core {
namespace {

StudyConfig fastConfig() {
  StudyConfig cfg;
  cfg.spacing = 10e-9;  // flips within a few hundred pulses
  return cfg;
}

TEST(Scrubbing, FrequentScrubbingPreventsTheFlip) {
  // Scrub well below the undefended pulses-to-flip: attack must fail.
  AttackStudy reference(fastConfig());
  const auto undefended = reference.attackCenter(HammerPulse{}, 100000);
  ASSERT_TRUE(undefended.flipped);

  ScrubbingConfig scrub;
  scrub.intervalPulses = std::max<std::size_t>(undefended.pulsesToFlip / 10, 1);
  const auto outcome = evaluateScrubbing(fastConfig(), HammerPulse{}, scrub,
                                         3 * undefended.pulsesToFlip);
  EXPECT_FALSE(outcome.attackSucceeded);
  EXPECT_GT(outcome.scrubPasses, 0u);
  EXPECT_GT(outcome.cellsRefreshed, 0u);
  EXPECT_EQ(outcome.pulsesSurvived, 3 * undefended.pulsesToFlip);
}

TEST(Scrubbing, SlowScrubbingFails) {
  AttackStudy reference(fastConfig());
  const auto undefended = reference.attackCenter(HammerPulse{}, 100000);
  ASSERT_TRUE(undefended.flipped);

  ScrubbingConfig scrub;
  scrub.intervalPulses = 10 * undefended.pulsesToFlip;  // far too slow
  const auto outcome = evaluateScrubbing(fastConfig(), HammerPulse{}, scrub,
                                         5 * undefended.pulsesToFlip);
  EXPECT_TRUE(outcome.attackSucceeded);
  EXPECT_LE(outcome.pulsesUntilFlip, 2 * undefended.pulsesToFlip);
}

TEST(Scrubbing, Validation) {
  ScrubbingConfig scrub;
  scrub.intervalPulses = 0;
  EXPECT_THROW(evaluateScrubbing(fastConfig(), HammerPulse{}, scrub, 100),
               std::invalid_argument);
}

TEST(Monitor, TightThresholdDetectsBeforeFlip) {
  AttackStudy reference(fastConfig());
  const auto undefended = reference.attackCenter(HammerPulse{}, 100000);
  ASSERT_TRUE(undefended.flipped);

  MonitorConfig monitor;
  monitor.lineThreshold = undefended.pulsesToFlip / 4;
  const auto outcome =
      evaluateMonitor(fastConfig(), HammerPulse{}, monitor, 100000);
  EXPECT_TRUE(outcome.attackDetected);
  EXPECT_FALSE(outcome.flippedBeforeDetection);
  EXPECT_LT(outcome.pulsesUntilDetection, outcome.pulsesUntilFlip);
}

TEST(Monitor, LooseThresholdMissesTheAttack) {
  AttackStudy reference(fastConfig());
  const auto undefended = reference.attackCenter(HammerPulse{}, 100000);
  ASSERT_TRUE(undefended.flipped);

  MonitorConfig monitor;
  monitor.lineThreshold = 10 * undefended.pulsesToFlip;
  const auto outcome =
      evaluateMonitor(fastConfig(), HammerPulse{}, monitor, 100000);
  EXPECT_TRUE(outcome.flippedBeforeDetection);
}

TEST(Monitor, Validation) {
  MonitorConfig monitor;
  monitor.lineThreshold = 0;
  EXPECT_THROW(evaluateMonitor(fastConfig(), HammerPulse{}, monitor, 100),
               std::invalid_argument);
}

TEST(Throttling, DutyCycleBarelyChangesPulsesToFlip) {
  // The key negative result: the victim heating happens within each pulse
  // (thermal time constant ~ ns), so enforcing idle time between pulses
  // does not raise the pulse count materially -- it only stretches wall
  // clock.
  const auto outcomes =
      evaluateThrottling(fastConfig(), 50e-9, {0.5, 0.1}, 100000);
  ASSERT_EQ(outcomes.size(), 2u);
  ASSERT_TRUE(outcomes[0].flipped && outcomes[1].flipped);
  const double ratio = static_cast<double>(outcomes[1].pulses) /
                       static_cast<double>(outcomes[0].pulses);
  EXPECT_NEAR(ratio, 1.0, 0.25);
  // Wall clock stretches with the enforced idle time.
  EXPECT_GT(outcomes[1].wallClockTime, 3.0 * outcomes[0].wallClockTime);
}

TEST(Throttling, Validation) {
  EXPECT_THROW(evaluateThrottling(fastConfig(), 50e-9, {1.5}, 100),
               std::invalid_argument);
}

// ---- scenarios ------------------------------------------------------------------

/// Scenarios run at the paper's default 50 nm spacing: the word-line victim
/// couples twice as strongly as any other neighbour, so the targeted bit
/// flips long before collateral damage appears.
StudyConfig scenarioConfig() {
  StudyConfig cfg;
  cfg.spacing = 50e-9;
  return cfg;
}

TEST(PrivilegeEscalation, FlipsVictimBitWithoutCollateral) {
  PrivilegeEscalationScenario scenario(scenarioConfig());
  const auto report = scenario.run(HammerPulse{}, 200000);
  ASSERT_TRUE(report.succeeded);
  EXPECT_GT(report.pulses, 0u);
  EXPECT_GT(report.attackSeconds, 0.0);
  // The victim bit flipped 0 -> 1.
  const std::size_t cols = 5;
  const std::size_t victimIndex = report.victimBit.row * cols + report.victimBit.col;
  EXPECT_FALSE(report.memoryBefore[victimIndex]);
  EXPECT_TRUE(report.memoryAfter[victimIndex]);
  // Memory isolation was violated surgically: no other bit changed.
  EXPECT_EQ(report.collateralFlips, 0u);
}

TEST(WeightAttack, DegradesAnalogAccuracy) {
  WeightAttackScenario scenario(scenarioConfig());
  EXPECT_EQ(scenario.testSetSize(), 200u);
  const auto report = scenario.run(HammerPulse{}, 500000);
  // The trained ternary classifier must work before the attack.
  EXPECT_GT(report.digitalAccuracy, 0.85);
  EXPECT_GT(report.accuracyBefore, 0.75);
  ASSERT_TRUE(report.weightFlipped);
  // Corrupting the strongest class-1 weight costs accuracy.
  EXPECT_LT(report.accuracyAfter, report.accuracyBefore - 0.05);
}

TEST(WeightAttack, RequiresFiveByFive) {
  StudyConfig cfg = scenarioConfig();
  cfg.rows = 4;
  EXPECT_THROW(WeightAttackScenario s(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace nh::core
