#include "core/baseline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace nh::core {
namespace {

using Shape = ColumnSpec::Shape;
using Tol = ColumnSpec::Tolerance;

std::filesystem::path testDir() {
  const auto dir = std::filesystem::temp_directory_path() /
                   "nh_baseline_test" /
                   ::testing::UnitTest::GetInstance()->current_test_info()->name();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Synthetic result exercising every cell shape and tolerance mode.
ExperimentResult makeResult() {
  ExperimentResult result;
  result.name = "baseline_test";
  result.configDigest = "00000000deadbeef";
  result.fast = true;
  result.maxPulses = 1000;
  result.axes = {{"x", {1.0, 2.0}}};
  result.columns = {
      {"id", "", {}},                                    // exact
      {"value", "", {}, Shape::Scalar, Tol{0.10, 0.0, false}},  // rel 10%
      {"label", "", {}},                                 // text, exact
      {"trace", "", {}, Shape::Trace, Tol{0.0, 0.5, false}},    // abs 0.5
      {"mat", "", {}, Shape::Matrix, Tol{}},             // exact
      {"wall", "", {}, Shape::Scalar, Tol{0.0, 0.0, true}},     // ignored
  };
  result.rows = {
      {ResultValue::num(1.0), ResultValue::num(100.0), ResultValue::str("a"),
       ResultValue::trace({1.0, 2.0, 3.0}),
       ResultValue::matrix(2, 2, {1.0, 2.0, 3.0, 4.0}), ResultValue::num(0.5)},
      {ResultValue::num(2.0), ResultValue::num(-50.0), ResultValue::str("b"),
       ResultValue::trace({4.0, 5.0}),
       ResultValue::matrix(2, 2, {5.0, 6.0, 7.0, 8.0}), ResultValue::num(0.7)},
  };
  result.pointValues = {{1.0}, {2.0}};
  return result;
}

TEST(Baseline, RecordThenCheckMatchesIncludingShapedCells) {
  const auto dir = testDir();
  const ExperimentResult result = makeResult();
  const auto path = writeBaseline(result, dir);
  EXPECT_TRUE(std::filesystem::exists(path));

  // The round trip through JsonWriter -> file -> JsonValue must reproduce
  // every cell, traces and matrices included.
  const BaselineCheck check = checkBaseline(result, dir);
  EXPECT_TRUE(check.passed()) << check.message;
  EXPECT_EQ(check.status, BaselineCheck::Status::Match);
  EXPECT_TRUE(check.diffs.empty());
}

TEST(Baseline, MissingBaselineReportsMissing) {
  const BaselineCheck check = checkBaseline(makeResult(), testDir());
  EXPECT_EQ(check.status, BaselineCheck::Status::Missing);
  EXPECT_NE(check.message.find("nh_sweep record"), std::string::npos);
}

TEST(Baseline, DigestDriftFailsBeforeAnyValueComparison) {
  const auto dir = testDir();
  writeBaseline(makeResult(), dir);
  ExperimentResult drifted = makeResult();
  drifted.configDigest = "ffffffffffffffff";
  // Even bit-identical rows must not pass under a drifted digest: the
  // config changed, so the baseline needs a conscious re-record.
  const BaselineCheck check = checkBaseline(drifted, dir);
  EXPECT_EQ(check.status, BaselineCheck::Status::DigestMismatch);
  EXPECT_EQ(check.expectedDigest, "00000000deadbeef");
  EXPECT_EQ(check.actualDigest, "ffffffffffffffff");
}

TEST(Baseline, ToleranceEdgesExactWithinAndBeyond) {
  const auto dir = testDir();
  writeBaseline(makeResult(), dir);

  // Exactly equal: passes (trivially).
  EXPECT_TRUE(checkBaseline(makeResult(), dir).passed());

  // value has rel 0.10: 100 -> 110 sits exactly on the edge (<=), passes.
  ExperimentResult onEdge = makeResult();
  onEdge.rows[0][1] = ResultValue::num(110.0);
  EXPECT_TRUE(checkBaseline(onEdge, dir).passed());

  // 100 -> 110.5 is beyond the edge: ValueMismatch naming the cell.
  ExperimentResult beyond = makeResult();
  beyond.rows[0][1] = ResultValue::num(110.5);
  const BaselineCheck check = checkBaseline(beyond, dir);
  EXPECT_EQ(check.status, BaselineCheck::Status::ValueMismatch);
  ASSERT_EQ(check.diffs.size(), 1u);
  EXPECT_EQ(check.diffs[0].row, 0u);
  EXPECT_EQ(check.diffs[0].column, "value");

  // Negative expected values tolerate symmetrically: -50 -> -45 passes,
  // -50 -> -44 fails.
  ExperimentResult negative = makeResult();
  negative.rows[1][1] = ResultValue::num(-45.0);
  EXPECT_TRUE(checkBaseline(negative, dir).passed());
  negative.rows[1][1] = ResultValue::num(-44.0);
  EXPECT_FALSE(checkBaseline(negative, dir).passed());
}

TEST(Baseline, TraceElementsCompareElementWiseWithAbsTolerance) {
  const auto dir = testDir();
  writeBaseline(makeResult(), dir);

  // trace has abs 0.5: +0.5 on one element passes, +0.51 fails and the
  // diff names the element index.
  ExperimentResult within = makeResult();
  within.rows[0][3] = ResultValue::trace({1.0, 2.5, 3.0});
  EXPECT_TRUE(checkBaseline(within, dir).passed());

  ExperimentResult beyond = makeResult();
  beyond.rows[0][3] = ResultValue::trace({1.0, 2.51, 3.0});
  const BaselineCheck check = checkBaseline(beyond, dir);
  EXPECT_EQ(check.status, BaselineCheck::Status::ValueMismatch);
  ASSERT_EQ(check.diffs.size(), 1u);
  EXPECT_EQ(check.diffs[0].column, "trace");
  EXPECT_EQ(check.diffs[0].element, 1u);

  // A length change is a dimension diff, not an element-wise flood.
  ExperimentResult shorter = makeResult();
  shorter.rows[0][3] = ResultValue::trace({1.0, 2.0});
  const BaselineCheck dims = checkBaseline(shorter, dir);
  EXPECT_EQ(dims.status, BaselineCheck::Status::ValueMismatch);
  ASSERT_EQ(dims.diffs.size(), 1u);
  EXPECT_NE(dims.diffs[0].what.find("dimensions"), std::string::npos);
}

TEST(Baseline, MatrixCellsCompareExactlyAndDimsAreChecked) {
  const auto dir = testDir();
  writeBaseline(makeResult(), dir);

  ExperimentResult changed = makeResult();
  changed.rows[1][4] = ResultValue::matrix(2, 2, {5.0, 6.0, 7.0, 8.5});
  const BaselineCheck check = checkBaseline(changed, dir);
  EXPECT_EQ(check.status, BaselineCheck::Status::ValueMismatch);
  ASSERT_EQ(check.diffs.size(), 1u);
  EXPECT_EQ(check.diffs[0].row, 1u);
  EXPECT_EQ(check.diffs[0].element, 3u);

  ExperimentResult reshaped = makeResult();
  reshaped.rows[1][4] = ResultValue::matrix(4, 1, {5.0, 6.0, 7.0, 8.0});
  EXPECT_FALSE(checkBaseline(reshaped, dir).passed());
}

TEST(Baseline, IgnoredColumnsAndTextChanges) {
  const auto dir = testDir();
  writeBaseline(makeResult(), dir);

  // wall is ignore=true: any change passes (wall-clock is not reproducible).
  ExperimentResult wall = makeResult();
  wall.rows[0][5] = ResultValue::num(123.0);
  EXPECT_TRUE(checkBaseline(wall, dir).passed());

  // Text cells compare exactly.
  ExperimentResult text = makeResult();
  text.rows[0][2] = ResultValue::str("changed");
  const BaselineCheck check = checkBaseline(text, dir);
  EXPECT_EQ(check.status, BaselineCheck::Status::ValueMismatch);
  ASSERT_EQ(check.diffs.size(), 1u);
  EXPECT_EQ(check.diffs[0].expected, "a");
  EXPECT_EQ(check.diffs[0].actual, "changed");

  // A number replacing a text placeholder (or vice versa) is a kind change.
  ExperimentResult kind = makeResult();
  kind.rows[0][2] = ResultValue::num(1.0);
  EXPECT_FALSE(checkBaseline(kind, dir).passed());
}

TEST(Baseline, RowCountAndColumnChangesAreShapeMismatches) {
  const auto dir = testDir();
  writeBaseline(makeResult(), dir);

  ExperimentResult fewer = makeResult();
  fewer.rows.pop_back();
  EXPECT_EQ(checkBaseline(fewer, dir).status,
            BaselineCheck::Status::ShapeMismatch);

  ExperimentResult renamed = makeResult();
  renamed.columns[1].name = "renamed";
  EXPECT_EQ(checkBaseline(renamed, dir).status,
            BaselineCheck::Status::ShapeMismatch);

  ExperimentResult reshaped = makeResult();
  reshaped.columns[3].shape = Shape::Matrix;
  EXPECT_EQ(checkBaseline(reshaped, dir).status,
            BaselineCheck::Status::ShapeMismatch);
}

TEST(Baseline, DiffJsonIsParseableAndNamesTheCells) {
  const auto dir = testDir();
  writeBaseline(makeResult(), dir);
  ExperimentResult beyond = makeResult();
  beyond.rows[0][1] = ResultValue::num(200.0);
  const BaselineCheck check = checkBaseline(beyond, dir);
  ASSERT_FALSE(check.passed());

  const nh::util::JsonValue doc =
      nh::util::JsonValue::parse(diffJson(beyond, check));
  EXPECT_EQ(doc.at("experiment").asString(), "baseline_test");
  EXPECT_EQ(doc.at("status").asString(), "value_mismatch");
  ASSERT_EQ(doc.at("diffs").size(), 1u);
  EXPECT_EQ(doc.at("diffs").items()[0].at("column").asString(), "value");
  EXPECT_EQ(doc.at("diffs").items()[0].at("row").asNumber(), 0.0);
}

TEST(Baseline, RefusesToRecordNonFiniteCells) {
  // JsonWriter emits NaN/Inf as null, which no later check could read
  // back -- record must fail loudly instead of poisoning the store.
  const auto dir = testDir();
  ExperimentResult nan = makeResult();
  nan.rows[0][1] = ResultValue::num(std::nan(""));
  EXPECT_THROW(writeBaseline(nan, dir), std::runtime_error);

  ExperimentResult inf = makeResult();
  inf.rows[0][3] = ResultValue::trace({1.0, INFINITY, 3.0});
  EXPECT_THROW(writeBaseline(inf, dir), std::runtime_error);
}

TEST(Baseline, WithinToleranceHelperEdges) {
  EXPECT_TRUE(withinTolerance(100.0, 100.0, Tol{}));          // exact
  EXPECT_FALSE(withinTolerance(100.0, 100.0001, Tol{}));      // exact means exact
  EXPECT_TRUE(withinTolerance(100.0, 105.0, Tol{0.05, 0.0, false}));
  EXPECT_FALSE(withinTolerance(100.0, 105.1, Tol{0.05, 0.0, false}));
  EXPECT_TRUE(withinTolerance(0.0, 1.5, Tol{0.0, 1.5, false}));
  EXPECT_FALSE(withinTolerance(0.0, 1.6, Tol{0.0, 1.5, false}));
  EXPECT_TRUE(withinTolerance(1.0, 9999.0, Tol{0.0, 0.0, true}));  // ignored
}

}  // namespace
}  // namespace nh::core
