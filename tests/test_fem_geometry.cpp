#include "fem/geometry.hpp"

#include <gtest/gtest.h>

namespace nh::fem {
namespace {

CrossbarLayout smallLayout() {
  CrossbarLayout layout;
  layout.rows = 3;
  layout.cols = 3;
  layout.spacing = 50e-9;
  layout.margin = 20e-9;
  layout.voxelSize = 5e-9;
  return layout;
}

TEST(CrossbarLayout, DerivedDimensions) {
  const CrossbarLayout layout = smallLayout();
  EXPECT_DOUBLE_EQ(layout.pitch(), 80e-9);
  // 2*20 + 3*30 + 2*50 = 230 nm.
  EXPECT_NEAR(layout.extentX(), 230e-9, 1e-15);
  EXPECT_NEAR(layout.extentY(), 230e-9, 1e-15);
  // 60+40+20+10+20+30 = 180 nm.
  EXPECT_NEAR(layout.extentZ(), 180e-9, 1e-15);
  EXPECT_NEAR(layout.cellCenterX(0), 35e-9, 1e-15);
  EXPECT_NEAR(layout.cellCenterX(1), 115e-9, 1e-15);
}

TEST(CrossbarLayout, ValidationCatchesBadParameters) {
  CrossbarLayout layout = smallLayout();
  layout.filamentRadius = 20e-9;  // diameter 40 > electrode width 30
  EXPECT_THROW(layout.validate(), std::invalid_argument);

  layout = smallLayout();
  layout.filamentHeight = 20e-9;  // taller than oxide (10 nm)
  EXPECT_THROW(layout.validate(), std::invalid_argument);

  layout = smallLayout();
  layout.voxelSize = 40e-9;  // coarser than the electrode width
  EXPECT_THROW(layout.validate(), std::invalid_argument);

  layout = smallLayout();
  layout.spacing = 0.0;
  EXPECT_THROW(layout.validate(), std::invalid_argument);

  layout = smallLayout();
  layout.rows = 0;
  EXPECT_THROW(layout.validate(), std::invalid_argument);
}

TEST(CrossbarModel3D, BuildsExpectedGridSize) {
  const auto model = CrossbarModel3D::build(smallLayout());
  EXPECT_EQ(model.grid().nx(), 46u);  // 230/5
  EXPECT_EQ(model.grid().ny(), 46u);
  EXPECT_EQ(model.grid().nz(), 36u);  // 180/5
  EXPECT_EQ(model.cellCount(), 9u);
}

TEST(CrossbarModel3D, EveryCellHasFilamentVoxels) {
  const auto model = CrossbarModel3D::build(smallLayout());
  const std::size_t reference = model.cell(0, 0).filamentVoxels.size();
  EXPECT_GT(reference, 0u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(model.cell(r, c).filamentVoxels.size(), reference)
          << "cell (" << r << "," << c << ")";
      EXPECT_EQ(model.cell(r, c).row, r);
      EXPECT_EQ(model.cell(r, c).col, c);
    }
  }
}

TEST(CrossbarModel3D, FilamentVoxelsAreFilamentMaterial) {
  const auto model = CrossbarModel3D::build(smallLayout());
  for (const std::size_t v : model.cell(1, 1).filamentVoxels) {
    EXPECT_EQ(model.grid().material(v), Material::Filament);
  }
  EXPECT_EQ(model.grid().countMaterial(Material::Filament),
            9u * model.cell(0, 0).filamentVoxels.size());
}

TEST(CrossbarModel3D, ElectrodeLinesAreDisjointAndMetal) {
  const auto model = CrossbarModel3D::build(smallLayout());
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_GT(model.wordLineVoxels(r).size(), 0u);
    for (const std::size_t v : model.wordLineVoxels(r)) {
      EXPECT_EQ(model.grid().material(v), Material::Electrode);
    }
  }
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_GT(model.bitLineVoxels(c).size(), 0u);
  }
  // Word lines live below bit lines: z ranges must not overlap.
  const auto& grid = model.grid();
  std::size_t maxWordZ = 0, minBitZ = grid.nz();
  for (const std::size_t v : model.wordLineVoxels(0)) {
    maxWordZ = std::max(maxWordZ, grid.voxel(v).k);
  }
  for (const std::size_t v : model.bitLineVoxels(0)) {
    minBitZ = std::min(minBitZ, grid.voxel(v).k);
  }
  EXPECT_LT(maxWordZ, minBitZ);
}

TEST(CrossbarModel3D, CellAverage) {
  const auto model = CrossbarModel3D::build(smallLayout());
  std::vector<double> field(model.grid().voxelCount(), 1.0);
  for (const std::size_t v : model.cell(2, 2).filamentVoxels) field[v] = 5.0;
  EXPECT_DOUBLE_EQ(model.cellAverage(field, 2, 2), 5.0);
  EXPECT_DOUBLE_EQ(model.cellAverage(field, 0, 0), 1.0);
}

TEST(CrossbarModel3D, SpacingChangesGridExtent) {
  CrossbarLayout wide = smallLayout();
  wide.spacing = 90e-9;
  const auto narrow = CrossbarModel3D::build(smallLayout());
  const auto broad = CrossbarModel3D::build(wide);
  EXPECT_GT(broad.grid().nx(), narrow.grid().nx());
}

}  // namespace
}  // namespace nh::fem
