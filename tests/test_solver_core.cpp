/// Equivalence tests for the structure-reusing solver core: cached sparse
/// assembly vs fresh builds (bit-identical), IC(0)- vs Jacobi-preconditioned
/// CG (same solution, fewer iterations), dense LU refactor/solveInPlace vs
/// one-shot factor/solve, chord-Newton SPICE transients vs the seed
/// full-Newton path (within Newton tolerance), and the Schur-complement
/// line-network solve vs the seed dense factorisation.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "fem/geometry.hpp"
#include "fem/thermal.hpp"
#include "spice/analysis.hpp"
#include "spice/elements.hpp"
#include "util/fvstencil.hpp"
#include "util/linsolve.hpp"
#include "util/multigrid.hpp"
#include "util/rng.hpp"
#include "util/sparse.hpp"
#include "xbar/fastsim.hpp"

namespace {

using nh::util::CgOptions;
using nh::util::CgPreconditioner;
using nh::util::CgWorkspace;
using nh::util::Matrix;
using nh::util::Rng;
using nh::util::SparseMatrix;
using nh::util::SparsityPattern;
using nh::util::TripletBuilder;
using nh::util::Vector;

// ---- cached assembly ---------------------------------------------------------

void stampRandom(TripletBuilder& b, Rng& rng, std::size_t n, int entries,
                 double scale) {
  for (int k = 0; k < entries; ++k) {
    b.add(rng.uniformInt(n), rng.uniformInt(n), scale * rng.uniform(-1.0, 1.0));
  }
  for (std::size_t i = 0; i < n; ++i) b.add(i, i, scale * 10.0);
}

TEST(SparsityPattern, CachedRefillBitIdenticalToFreshBuild) {
  const std::size_t n = 30;
  Rng rng(321);
  TripletBuilder builder(n, n);
  stampRandom(builder, rng, n, 200, 1.0);

  const SparsityPattern pattern = SparsityPattern::fromTriplets(builder);
  SparseMatrix cached;
  pattern.assemble(builder, cached);
  const SparseMatrix fresh = SparseMatrix::fromTriplets(builder);

  ASSERT_EQ(cached.rowPtr(), fresh.rowPtr());
  ASSERT_EQ(cached.colIdx(), fresh.colIdx());
  ASSERT_EQ(cached.values(), fresh.values());  // bit-identical

  // Refill with different coefficients but the identical stamp sequence.
  Rng rng2(321);
  builder.clear();
  stampRandom(builder, rng2, n, 200, 3.5);
  pattern.assemble(builder, cached);
  const SparseMatrix fresh2 = SparseMatrix::fromTriplets(builder);
  ASSERT_EQ(cached.rowPtr(), fresh2.rowPtr());
  ASSERT_EQ(cached.colIdx(), fresh2.colIdx());
  ASSERT_EQ(cached.values(), fresh2.values());
}

TEST(SparsityPattern, MismatchedStampSequenceThrows) {
  TripletBuilder builder(4, 4);
  builder.add(0, 0, 1.0);
  builder.add(1, 2, 2.0);
  const SparsityPattern pattern = SparsityPattern::fromTriplets(builder);
  builder.add(3, 3, 4.0);  // extra entry: different sequence
  SparseMatrix out;
  EXPECT_THROW(pattern.assemble(builder, out), std::invalid_argument);
}

TEST(SparsityPattern, EmptyBuilderClearsKeepCapacity) {
  TripletBuilder builder(3, 3);
  builder.add(1, 1, 5.0);
  builder.clear();
  EXPECT_EQ(builder.entryCount(), 0u);
  builder.add(1, 1, 7.0);
  const auto m = SparseMatrix::fromTriplets(builder);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 7.0);
}

// ---- IC(0) preconditioned CG -------------------------------------------------

TEST(IncompleteCholesky, BreaksDownOnIndefiniteMatrix) {
  TripletBuilder b(2, 2);
  b.add(0, 0, -1.0);
  b.add(1, 1, 2.0);
  nh::util::IncompleteCholesky ic;
  EXPECT_FALSE(ic.compute(SparseMatrix::fromTriplets(b)));
  EXPECT_FALSE(ic.valid());
}

TEST(ConjugateGradient, Ic0MatchesJacobiAndConvergesFaster) {
  // The real FEM thermal system of a 3x3 crossbar model.
  nh::fem::CrossbarLayout layout;
  layout.rows = 3;
  layout.cols = 3;
  layout.margin = 20e-9;
  const auto model = nh::fem::CrossbarModel3D::build(layout);
  nh::fem::ThermalScenario scenario;
  scenario.model = &model;
  scenario.cellPower = Matrix(3, 3, 0.0);
  scenario.cellPower(1, 1) = 1e-4;

  nh::fem::DiffusionOptions jacobi;
  jacobi.relTol = 1e-10;
  jacobi.preconditioner = CgPreconditioner::Jacobi;
  nh::fem::DiffusionOptions ic0;
  ic0.relTol = 1e-10;
  ic0.preconditioner = CgPreconditioner::IncompleteCholesky;

  const auto a = nh::fem::solveThermal(scenario, jacobi);
  const auto b = nh::fem::solveThermal(scenario, ic0);
  ASSERT_TRUE(a.converged());
  ASSERT_TRUE(b.converged());
  // Strictly fewer iterations with the stronger preconditioner.
  EXPECT_LT(b.stats.iterations, a.stats.iterations);
  // Same solution within the CG tolerance (fields are O(300..600) K).
  ASSERT_EQ(a.temperature.size(), b.temperature.size());
  for (std::size_t v = 0; v < a.temperature.size(); ++v) {
    EXPECT_NEAR(a.temperature[v], b.temperature[v], 1e-3);
  }
}

TEST(ConjugateGradient, WorkspaceReuseAcrossDifferentSystems) {
  // A shared workspace must not leak state between unrelated solves.
  Rng rng(7);
  CgWorkspace workspace;
  for (std::size_t n : {10u, 25u, 10u}) {
    TripletBuilder b(n, n);
    std::vector<std::vector<double>> dense(n, std::vector<double>(n, 0.0));
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < r; ++c) {
        const double v = rng.uniform(-0.5, 0.5);
        b.add(r, c, v);
        b.add(c, r, v);
        dense[r][c] = dense[c][r] = v;
      }
      b.add(r, r, static_cast<double>(n));
      dense[r][r] = static_cast<double>(n);
    }
    const auto a = SparseMatrix::fromTriplets(b);
    Vector rhs(n);
    for (auto& v : rhs) v = rng.uniform(-1.0, 1.0);

    CgOptions options;
    options.relTol = 1e-12;
    options.preconditioner = CgPreconditioner::IncompleteCholesky;
    Vector x;
    const auto stats = nh::util::solveConjugateGradient(a, rhs, x, options,
                                                        &workspace);
    ASSERT_TRUE(stats.converged);
    const Vector ax = a.multiply(x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], rhs[i], 1e-8);
  }
}

// ---- geometric multigrid -----------------------------------------------------

/// Steady FV heat operator on an m^3 grid: conditioning grows O(m^2), the
/// regime the multigrid preconditioner targets. Shared with the benchmarks
/// (util/fvstencil.hpp) so the asserted iteration scaling and the recorded
/// baseline describe the same operator.
SparseMatrix steadyFvOperator(std::size_t m, double scale) {
  return nh::util::makeSteadyFvOperator3d(m, scale);
}

TEST(GeometricMultigrid, ProlongationRowsSumToOne) {
  // Partition of unity: constants interpolate exactly, the property that
  // makes the coarse correction consistent.
  for (const auto [nx, ny, nz] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{8, 8, 8},
        {7, 5, 9},
        {4, 4, 6}}) {
    const auto p = nh::util::buildTrilinearProlongation(
        nx, ny, nz, (nx + 1) / 2, (ny + 1) / 2, (nz + 1) / 2);
    ASSERT_EQ(p.rows(), nx * ny * nz);
    for (std::size_t r = 0; r < p.rows(); ++r) {
      double sum = 0.0;
      for (std::size_t k = p.rowPtr()[r]; k < p.rowPtr()[r + 1]; ++k) {
        sum += p.values()[k];
      }
      EXPECT_NEAR(sum, 1.0, 1e-14) << "row " << r;
    }
  }
}

TEST(GeometricMultigrid, AgreesWithIc0AndJacobiWithinTolerance) {
  const std::size_t m = 12;
  const std::size_t n = m * m * m;
  const SparseMatrix a = steadyFvOperator(m, 2.0);
  Vector b(n);
  Rng rng(5);
  for (auto& v : b) v = rng.uniform(0.0, 1e-6);

  const auto solveWith = [&](CgPreconditioner pre, std::size_t* iters) {
    CgOptions options;
    options.relTol = 1e-10;
    options.preconditioner = pre;
    options.gridNx = m;
    options.gridNy = m;
    options.gridNz = m;
    Vector x(n, 0.0);
    CgWorkspace ws;
    const auto stats = nh::util::solveConjugateGradient(a, b, x, options, &ws);
    EXPECT_TRUE(stats.converged);
    if (iters != nullptr) *iters = stats.iterations;
    return x;
  };

  std::size_t itersJacobi = 0, itersIc = 0, itersMg = 0;
  const Vector xJacobi = solveWith(CgPreconditioner::Jacobi, &itersJacobi);
  const Vector xIc = solveWith(CgPreconditioner::IncompleteCholesky, &itersIc);
  const Vector xMg = solveWith(CgPreconditioner::Multigrid, &itersMg);
  // Solutions agree within the CG tolerance; the preconditioner ladder
  // strictly cuts iterations at each rung on this operator.
  const double fieldScale = nh::util::normInf(xJacobi);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(xIc[i], xJacobi[i], 1e-8 * fieldScale);
    EXPECT_NEAR(xMg[i], xJacobi[i], 1e-8 * fieldScale);
  }
  EXPECT_LT(itersIc, itersJacobi);
  EXPECT_LT(itersMg, itersIc);
}

TEST(GeometricMultigrid, IterationCountNearGridSizeIndependent) {
  // The whole point of GMG: iteration counts stay (near) flat as the grid
  // is refined, where IC(0)'s grow with the edge length.
  const auto iterationsAt = [](std::size_t m, CgPreconditioner pre) {
    const SparseMatrix a = steadyFvOperator(m, 2.0);
    Vector b(a.rows(), 1e-6);
    Vector x(a.rows(), 0.0);
    CgOptions options;
    options.relTol = 1e-8;
    options.preconditioner = pre;
    options.gridNx = m;
    options.gridNy = m;
    options.gridNz = m;
    CgWorkspace ws;
    const auto stats = nh::util::solveConjugateGradient(a, b, x, options, &ws);
    EXPECT_TRUE(stats.converged) << "m=" << m;
    return stats.iterations;
  };
  const std::size_t mgCoarse = iterationsAt(12, CgPreconditioner::Multigrid);
  const std::size_t mgFine = iterationsAt(24, CgPreconditioner::Multigrid);
  const std::size_t icCoarse =
      iterationsAt(12, CgPreconditioner::IncompleteCholesky);
  const std::size_t icFine =
      iterationsAt(24, CgPreconditioner::IncompleteCholesky);
  // GMG: at most a couple of extra iterations after doubling the edge.
  EXPECT_LE(mgFine, mgCoarse + 3);
  // IC(0): the count visibly grows -- the wall GMG removes.
  EXPECT_GT(icFine, icCoarse + 3);
  EXPECT_LT(mgFine, icFine);
}

TEST(GeometricMultigrid, FallsBackWithoutGridDimensions) {
  // Multigrid requested but no dims supplied: the solve must silently run
  // on the IC(0) rung and still converge to the right answer.
  const std::size_t m = 8;
  const SparseMatrix a = steadyFvOperator(m, 2.0);
  Vector b(a.rows(), 1e-6);
  Vector x(a.rows(), 0.0);
  CgOptions options;
  options.relTol = 1e-10;
  options.preconditioner = CgPreconditioner::Multigrid;  // gridN* left 0
  CgWorkspace ws;
  const auto stats = nh::util::solveConjugateGradient(a, b, x, options, &ws);
  ASSERT_TRUE(stats.converged);
  EXPECT_TRUE(ws.multigrid() == nullptr || !ws.multigrid()->valid());
  const Vector ax = a.multiply(x);
  for (std::size_t i = 0; i < a.rows(); ++i) EXPECT_NEAR(ax[i], b[i], 1e-12);
}

TEST(GeometricMultigrid, RedBlackMatchesLexicographicConvergence) {
  // The opt-in red-black smoother changes smoothing order, which costs a
  // little smoothing power: the GMG-CG solve must converge in nearly the
  // same iteration count (measured: 13 vs 11 at relTol 1e-10 on 16^3, so
  // the bound is +-2) and to the same solution within the CG tolerance.
  const std::size_t m = 16;
  const std::size_t n = m * m * m;
  const SparseMatrix a = steadyFvOperator(m, 2.0);
  Vector b(n);
  Rng rng(29);
  for (auto& v : b) v = rng.uniform(0.0, 1e-6);

  const auto solveWith = [&](nh::util::MultigridSmoother smoother,
                             std::size_t* iters) {
    CgOptions options;
    options.relTol = 1e-10;
    options.preconditioner = CgPreconditioner::Multigrid;
    options.gridNx = options.gridNy = options.gridNz = m;
    options.multigridSmoother = smoother;
    Vector x(n, 0.0);
    CgWorkspace ws;
    const auto stats = nh::util::solveConjugateGradient(a, b, x, options, &ws);
    EXPECT_TRUE(stats.converged);
    // The MG rung must actually be in use, not a silent fallback.
    EXPECT_TRUE(ws.multigrid() != nullptr && ws.multigrid()->valid());
    *iters = stats.iterations;
    return x;
  };

  std::size_t itersLex = 0, itersRb = 0;
  const Vector xLex =
      solveWith(nh::util::MultigridSmoother::Lexicographic, &itersLex);
  const Vector xRb = solveWith(nh::util::MultigridSmoother::RedBlack, &itersRb);
  const double diff = itersLex > itersRb
                          ? static_cast<double>(itersLex - itersRb)
                          : static_cast<double>(itersRb - itersLex);
  EXPECT_LE(diff, 2.0) << "lex " << itersLex << " vs red-black " << itersRb;
  const double fieldScale = nh::util::normInf(xLex);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(xRb[i], xLex[i], 1e-8 * fieldScale);
  }
}

TEST(GeometricMultigrid, FrozenHierarchyRecomputeBitIdenticalToFreshBuild) {
  // Same grid, new operator values: the second compute() refills the
  // Galerkin chain through the cached SpGemm plans. The resulting V-cycle
  // must be bit-identical to one from a from-scratch hierarchy on the same
  // matrix -- the refill replays the exact SpGEMM accumulation order.
  const std::size_t m = 12;
  const SparseMatrix a1 = steadyFvOperator(m, 2.0);
  const SparseMatrix a2 = steadyFvOperator(m, 2.7);  // same structure
  nh::util::GeometricMultigrid::Options options;
  options.nx = options.ny = options.nz = m;

  nh::util::GeometricMultigrid reused;
  ASSERT_TRUE(reused.compute(a1, options));
  ASSERT_TRUE(reused.compute(a2, options));  // frozen-structure recompute

  nh::util::GeometricMultigrid fresh;
  ASSERT_TRUE(fresh.compute(a2, options));

  Vector r(a2.rows());
  Rng rng(31);
  for (auto& v : r) v = rng.uniform(-1.0, 1.0);
  Vector zReused, zFresh;
  reused.apply(r, zReused);
  fresh.apply(r, zFresh);
  EXPECT_EQ(zReused, zFresh);  // bit-identical
}

TEST(GeometricMultigrid, RejectsTinyGrids) {
  nh::util::GeometricMultigrid mg;
  const SparseMatrix a = steadyFvOperator(4, 1.0);  // 64 rows
  nh::util::GeometricMultigrid::Options options;
  options.nx = options.ny = options.nz = 4;
  EXPECT_FALSE(mg.compute(a, options));  // <= maxCoarseRows: IC(0) territory
  EXPECT_FALSE(mg.valid());
}

TEST(GeometricMultigrid, DiffusionSolverAutoUpgradeMatchesExplicitIc0Solution) {
  // A pin-free diffusion problem big enough to trip the auto-upgrade
  // (lowered threshold): the GMG solution must agree with IC(0)'s within
  // tolerance, and the upgrade must leave pinned problems alone.
  nh::fem::VoxelGrid grid(16, 16, 16, 2e-9);
  nh::fem::DiffusionProblem problem;
  problem.grid = &grid;
  problem.coefficient.assign(grid.voxelCount(), 1.5);
  problem.sourcePerVoxel.assign(grid.voxelCount(), 0.0);
  problem.sourcePerVoxel[grid.index(8, 8, 12)] = 3e-6;
  problem.bottomPlaneDirichlet = true;
  problem.bottomPlaneValue = 300.0;

  nh::fem::DiffusionOptions upgraded;
  upgraded.relTol = 1e-10;
  upgraded.multigridMinVoxels = 1024;  // force the upgrade at 16^3
  nh::fem::DiffusionOptions plain;
  plain.relTol = 1e-10;
  plain.multigridMinVoxels = 0;  // stay on IC(0)

  const auto viaMg = nh::fem::solveDiffusion(problem, upgraded);
  const auto viaIc = nh::fem::solveDiffusion(problem, plain);
  ASSERT_TRUE(viaMg.converged());
  ASSERT_TRUE(viaIc.converged());
  EXPECT_LT(viaMg.stats.iterations, viaIc.stats.iterations);
  for (std::size_t v = 0; v < viaMg.field.size(); ++v) {
    EXPECT_NEAR(viaMg.field[v], viaIc.field[v], 1e-6);
  }
}

TEST(GeometricMultigrid, DiffusionSolverRedBlackOptInMatchesLexicographic) {
  // The smoother choice plumbs DiffusionOptions -> CgOptions -> multigrid.
  // Opting into red-black must change only smoothing order: same converged
  // field within tolerance, comparable iteration count.
  nh::fem::VoxelGrid grid(16, 16, 16, 2e-9);
  nh::fem::DiffusionProblem problem;
  problem.grid = &grid;
  problem.coefficient.assign(grid.voxelCount(), 1.5);
  problem.sourcePerVoxel.assign(grid.voxelCount(), 0.0);
  problem.sourcePerVoxel[grid.index(8, 8, 12)] = 3e-6;
  problem.bottomPlaneDirichlet = true;
  problem.bottomPlaneValue = 300.0;

  nh::fem::DiffusionOptions lex;
  lex.relTol = 1e-10;
  lex.multigridMinVoxels = 1024;  // force GMG at 16^3
  nh::fem::DiffusionOptions redBlack = lex;
  redBlack.multigridSmoother = nh::util::MultigridSmoother::RedBlack;

  const auto viaLex = nh::fem::solveDiffusion(problem, lex);
  const auto viaRb = nh::fem::solveDiffusion(problem, redBlack);
  ASSERT_TRUE(viaLex.converged());
  ASSERT_TRUE(viaRb.converged());
  EXPECT_LE(viaRb.stats.iterations, viaLex.stats.iterations + 2);
  for (std::size_t v = 0; v < viaLex.field.size(); ++v) {
    EXPECT_NEAR(viaRb.field[v], viaLex.field[v], 1e-6);
  }
}

// ---- warm-started re-solves --------------------------------------------------

TEST(ConjugateGradient, WarmStartReducesIterationsOnPerturbedResolve) {
  const std::size_t m = 16;
  const std::size_t n = m * m * m;
  const SparseMatrix a = steadyFvOperator(m, 2.0);
  Vector b(n, 1e-6);
  CgOptions options;
  options.relTol = 1e-10;
  options.preconditioner = CgPreconditioner::IncompleteCholesky;
  CgWorkspace ws;

  Vector base(n, 0.0);
  const auto first = nh::util::solveConjugateGradient(a, b, base, options, &ws);
  ASSERT_TRUE(first.converged);

  // Perturb the load by 1% and re-solve cold vs warm.
  Vector bNext = b;
  for (auto& v : bNext) v *= 1.01;
  options.reusePreconditioner = true;  // matrix unchanged

  Vector cold(n, 0.0);
  const auto coldStats =
      nh::util::solveConjugateGradient(a, bNext, cold, options, &ws);
  Vector warm = base;
  const auto warmStats =
      nh::util::solveConjugateGradient(a, bNext, warm, options, &ws);
  ASSERT_TRUE(coldStats.converged);
  ASSERT_TRUE(warmStats.converged);
  EXPECT_LT(warmStats.iterations, coldStats.iterations);
  const double fieldScale = nh::util::normInf(cold);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(warm[i], cold[i], 1e-7 * fieldScale);
  }
}

TEST(ThermalSolver, WarmStartedPowerSweepReducesIterations) {
  // The alpha-extraction pattern: same model, stepped power, each solve
  // seeded with the previous field. The warm-started re-solve must converge
  // in fewer CG iterations and to the same field (within tolerance).
  nh::fem::CrossbarLayout layout;
  layout.rows = 3;
  layout.cols = 3;
  layout.margin = 20e-9;
  const auto model = nh::fem::CrossbarModel3D::build(layout);

  nh::fem::ThermalScenario scenario;
  scenario.model = &model;
  scenario.cellPower = Matrix(3, 3, 0.0);
  scenario.cellPower(1, 1) = 1e-4;

  nh::fem::ThermalSolver solver;
  const auto first = solver.solve(scenario);
  ASSERT_TRUE(first.converged());

  scenario.cellPower(1, 1) = 1.02e-4;  // next sweep point, 2% away
  const auto cold = solver.solve(scenario);
  const auto warm = solver.solve(scenario, {}, &first.temperature);
  ASSERT_TRUE(cold.converged());
  ASSERT_TRUE(warm.converged());
  EXPECT_LT(warm.stats.iterations, cold.stats.iterations);
  // Fields are O(300..600) K solved to relTol 1e-8: different CG
  // trajectories agree to ~1e-4 K absolute, not exactly.
  for (std::size_t v = 0; v < warm.temperature.size(); ++v) {
    EXPECT_NEAR(warm.temperature[v], cold.temperature[v], 5e-4);
  }
}

// ---- dense LU reuse ----------------------------------------------------------

TEST(LuFactorization, RefactorAndSolveInPlaceMatchOneShot) {
  Rng rng(99);
  nh::util::LuFactorization lu;
  for (const std::size_t n : {4u, 12u, 4u}) {  // shrinking size reuses storage
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
      a(r, r) += static_cast<double>(n);
    }
    Vector b(n);
    for (auto& v : b) v = rng.uniform(-1.0, 1.0);

    ASSERT_TRUE(lu.refactor(a));
    ASSERT_TRUE(lu.valid());
    const auto oneShot = nh::util::LuFactorization::factor(a);
    ASSERT_TRUE(oneShot.has_value());
    const Vector xRef = oneShot->solve(b);

    const Vector xSolve = lu.solve(b);
    Vector xInPlace = b;
    lu.solveInPlace(xInPlace);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(xSolve[i], xRef[i]);
      EXPECT_DOUBLE_EQ(xInPlace[i], xRef[i]);
    }
  }
}

TEST(LuFactorization, RefactorSingularReturnsFalse) {
  nh::util::LuFactorization lu;
  EXPECT_FALSE(lu.refactor(Matrix{{1.0, 2.0}, {2.0, 4.0}}));
  EXPECT_FALSE(lu.valid());
  // Recovers on the next nonsingular refactor.
  EXPECT_TRUE(lu.refactor(Matrix{{2.0, 1.0}, {1.0, 3.0}}));
  const Vector x = lu.solve(Vector{3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

// ---- SPICE factorisation reuse ----------------------------------------------

nh::spice::TransientResult runRcTransient(bool reuse) {
  using namespace nh::spice;
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  PulseSpec step;
  step.base = 0.0;
  step.amplitude = 1.0;
  step.delay = 0.0;
  step.rise = 1e-9;
  step.fall = 1e-9;
  step.width = 1.0;
  ckt.emplace<VoltageSource>("V1", in, ckt.ground(),
                             std::make_unique<PulseWaveform>(step));
  ckt.emplace<Resistor>("R1", in, out, 1000.0);
  ckt.emplace<Capacitor>("C1", out, ckt.ground(), 1e-9);
  TransientOptions opt;
  opt.tStop = 3e-6;
  opt.dtMax = 10e-9;
  opt.newton.reuseFactorization = reuse;
  return runTransient(ckt, opt, {probeNodeVoltage(ckt, "out")});
}

TEST(SpiceReuse, LinearTransientBitIdenticalWithFrozenLu) {
  const auto full = runRcTransient(false);
  const auto reused = runRcTransient(true);
  ASSERT_TRUE(full.completed);
  ASSERT_TRUE(reused.completed);
  ASSERT_EQ(full.time.size(), reused.time.size());
  const auto& a = full.seriesFor("v(out)");
  const auto& b = reused.seriesFor("v(out)");
  for (std::size_t k = 0; k < a.size(); ++k) {
    // A frozen LU solved against a freshly stamped rhs is the same
    // arithmetic as re-factoring the identical matrix: exact equality.
    EXPECT_DOUBLE_EQ(a[k], b[k]) << "at sample " << k;
  }
}

/// Minimal memristive model (same shape as the engine tests): conductance
/// grows with the integral of |v|, making every transient step nonlinear.
class ToyMemristor final : public nh::spice::MemristiveModel {
 public:
  double current(double v) const override { return g_ * v; }
  void advance(double v, double dt) override {
    g_ += 1e-2 * std::fabs(v) * dt / 1e-9;
  }
  double conductanceNow() const { return g_; }

 private:
  double g_ = 1e-4;
};

nh::spice::TransientResult runMemristorTransient(bool reuse, double* gFinal) {
  using namespace nh::spice;
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId mid = ckt.node("mid");
  auto owned = std::make_unique<ToyMemristor>();
  PulseSpec pulse;
  pulse.base = 0.0;
  pulse.amplitude = 1.0;
  pulse.delay = 20e-9;
  pulse.rise = 0.5e-9;
  pulse.fall = 0.5e-9;
  pulse.width = 30e-9;
  ckt.emplace<VoltageSource>("V1", in, ckt.ground(),
                             std::make_unique<PulseWaveform>(pulse));
  ckt.emplace<Resistor>("R1", in, mid, 500.0);
  ckt.emplace<Memristor>("M1", mid, ckt.ground(), owned.get());
  TransientOptions opt;
  opt.tStop = 100e-9;
  opt.dtMax = 1e-9;
  opt.newton.reuseFactorization = reuse;
  opt.newton.reuseMinUnknowns = 0;  // force chord even on this tiny system
  auto result = runTransient(ckt, opt, {probeNodeVoltage(ckt, "mid")});
  if (gFinal != nullptr) *gFinal = owned->conductanceNow();
  return result;
}

TEST(SpiceReuse, ChordNewtonMatchesFullNewtonWithinTolerance) {
  double gFull = 0.0;
  double gChord = 0.0;
  const auto full = runMemristorTransient(false, &gFull);
  const auto chord = runMemristorTransient(true, &gChord);
  ASSERT_TRUE(full.completed) << full.failureReason;
  ASSERT_TRUE(chord.completed) << chord.failureReason;

  // Both fixed points satisfy the same KCL residual within the Newton
  // tolerances; step-size control may pick slightly different grids, so
  // compare the physical outcomes rather than sample-by-sample.
  EXPECT_NEAR(gChord, gFull, 1e-3 + 1e-3 * gFull);
  const auto& va = full.seriesFor("v(mid)");
  const auto& vb = chord.seriesFor("v(mid)");
  const auto peak = [](const std::vector<double>& s) {
    double m = 0.0;
    for (const double v : s) m = std::max(m, std::fabs(v));
    return m;
  };
  EXPECT_NEAR(peak(va), peak(vb), 1e-4);
  EXPECT_NEAR(va.back(), vb.back(), 1e-6);
}

// ---- Schur-complement line-network solve ------------------------------------

TEST(SchurComplementSolver, MatchesDenseSolveOnRandomBlockSystems) {
  Rng rng(77);
  nh::util::SchurComplementSolver solver;
  for (const auto [n1, n2] : {std::pair<std::size_t, std::size_t>{5, 5},
                              {12, 7},
                              {3, 9}}) {
    Matrix g(n1, n2);
    Vector d1(n1, 0.02), d2(n2, 0.02);  // driver conductance
    for (std::size_t r = 0; r < n1; ++r) {
      for (std::size_t c = 0; c < n2; ++c) {
        const double gc = std::pow(10.0, rng.uniform(-6.0, -3.0));
        g(r, c) = gc;
        d1[r] += gc;
        d2[c] += gc;
      }
    }
    Vector r(n1 + n2);
    for (auto& v : r) v = rng.uniform(-1e-3, 1e-3);

    // Reference: assemble the full Jacobian and solve densely.
    const std::size_t n = n1 + n2;
    Matrix j(n, n, 0.0);
    for (std::size_t i = 0; i < n1; ++i) j(i, i) = d1[i];
    for (std::size_t c = 0; c < n2; ++c) j(n1 + c, n1 + c) = d2[c];
    for (std::size_t i = 0; i < n1; ++i) {
      for (std::size_t c = 0; c < n2; ++c) {
        j(i, n1 + c) = -g(i, c);
        j(n1 + c, i) = -g(i, c);
      }
    }
    const Vector xRef = nh::util::solveDense(j, r);

    Vector x;
    ASSERT_TRUE(solver.solve(d1, d2, g, r, x));
    ASSERT_EQ(x.size(), xRef.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], xRef[i], 1e-9 * std::max(1.0, std::fabs(xRef[i])));
    }
  }
}

TEST(SchurComplementSolver, ShapeMismatchThrows) {
  nh::util::SchurComplementSolver solver;
  Vector x;
  EXPECT_THROW(solver.solve(Vector(2, 1.0), Vector(3, 1.0), Matrix(2, 2, 0.0),
                            Vector(5, 0.0), x),
               std::invalid_argument);
}

TEST(FastEngineSchur, MatchesDenseSolveOnRandomCrossbars) {
  Rng rng(2024);
  for (int trial = 0; trial < 3; ++trial) {
    nh::xbar::ArrayConfig cfg;
    cfg.rows = 4 + static_cast<std::size_t>(trial);  // non-square too
    cfg.cols = 6;
    nh::xbar::CrossbarArray dense(cfg);
    nh::xbar::CrossbarArray schur(cfg);
    for (std::size_t r = 0; r < cfg.rows; ++r) {
      for (std::size_t c = 0; c < cfg.cols; ++c) {
        const auto state = rng.uniform(0.0, 1.0) < 0.5 ? nh::xbar::CellState::Hrs
                                                       : nh::xbar::CellState::Lrs;
        dense.setState(r, c, state);
        schur.setState(r, c, state);
      }
    }
    nh::xbar::FastEngineOptions denseOpt;
    denseOpt.useSchurSolve = false;
    nh::xbar::FastEngineOptions schurOpt;
    schurOpt.useSchurSolve = true;
    nh::xbar::FastEngine engineDense(dense, nh::xbar::AlphaTable::analytic(50e-9),
                                     denseOpt);
    nh::xbar::FastEngine engineSchur(schur, nh::xbar::AlphaTable::analytic(50e-9),
                                     schurOpt);
    const auto bias = nh::xbar::selectBias(nh::xbar::BiasScheme::Half, cfg.rows,
                                           cfg.cols, 1, 2, 1.05);
    engineDense.applyBias(bias, 10e-9);
    engineSchur.applyBias(bias, 10e-9);

    const auto& lvDense = engineDense.lastLineVoltages();
    const auto& lvSchur = engineSchur.lastLineVoltages();
    ASSERT_EQ(lvDense.size(), lvSchur.size());
    for (std::size_t i = 0; i < lvDense.size(); ++i) {
      EXPECT_NEAR(lvDense[i], lvSchur[i], 1e-9) << "line " << i;
    }
    for (std::size_t r = 0; r < cfg.rows; ++r) {
      for (std::size_t c = 0; c < cfg.cols; ++c) {
        EXPECT_NEAR(dense.cell(r, c).temperature(), schur.cell(r, c).temperature(),
                    1e-6);
      }
    }
  }
}

// ---- FEM structure reuse -----------------------------------------------------

TEST(DiffusionSolver, CachedSolveMatchesFreshSolveBitIdentical) {
  nh::fem::VoxelGrid grid(6, 6, 6, 2e-9);
  nh::fem::DiffusionSolver solver;
  for (int sweep = 0; sweep < 3; ++sweep) {
    nh::fem::DiffusionProblem problem;
    problem.grid = &grid;
    const double kappa = 1.0 + 0.5 * sweep;  // values change, structure fixed
    problem.coefficient.assign(grid.voxelCount(), kappa);
    problem.sourcePerVoxel.assign(grid.voxelCount(), 0.0);
    problem.sourcePerVoxel[grid.index(3, 3, 4)] = 2e-6 * (1 + sweep);
    problem.bottomPlaneDirichlet = true;
    problem.bottomPlaneValue = 300.0;

    const auto cached = solver.solve(problem, {1e-12, 20000});
    const auto fresh = nh::fem::solveDiffusion(problem, {1e-12, 20000});
    ASSERT_TRUE(cached.converged());
    ASSERT_TRUE(fresh.converged());
    ASSERT_EQ(cached.field.size(), fresh.field.size());
    for (std::size_t v = 0; v < cached.field.size(); ++v) {
      // Identical assembly + identical CG trajectory => identical bits.
      EXPECT_DOUBLE_EQ(cached.field[v], fresh.field[v]);
    }
    EXPECT_EQ(cached.stats.iterations, fresh.stats.iterations);
  }
}

TEST(DiffusionSolver, DetectsStructureChange) {
  nh::fem::VoxelGrid gridA(4, 4, 4, 1e-9);
  nh::fem::VoxelGrid gridB(5, 5, 5, 1e-9);
  nh::fem::DiffusionSolver solver;
  for (const auto* grid : {&gridA, &gridB, &gridA}) {
    nh::fem::DiffusionProblem problem;
    problem.grid = grid;
    problem.coefficient.assign(grid->voxelCount(), 2.0);
    problem.sourcePerVoxel.assign(grid->voxelCount(), 0.0);
    problem.sourcePerVoxel[grid->index(1, 1, 2)] = 1e-6;
    problem.bottomPlaneDirichlet = true;
    problem.bottomPlaneValue = 300.0;
    const auto cached = solver.solve(problem);
    const auto fresh = nh::fem::solveDiffusion(problem);
    ASSERT_TRUE(cached.converged());
    for (std::size_t v = 0; v < cached.field.size(); ++v) {
      EXPECT_DOUBLE_EQ(cached.field[v], fresh.field[v]);
    }
  }
}

TEST(DiffusionSolver, PinValueChangesReuseStructure) {
  // Same pin locations, different pin values: the cached structure must be
  // reused and the result must match a fresh solve exactly.
  nh::fem::VoxelGrid grid(5, 5, 5, 1e-9);
  nh::fem::DiffusionSolver solver;
  for (const double pinV : {1.0, 0.5, 2.0}) {
    nh::fem::DiffusionProblem problem;
    problem.grid = &grid;
    problem.coefficient.assign(grid.voxelCount(), 1.0);
    problem.pins.push_back({grid.index(2, 2, 4), pinV});
    problem.pins.push_back({grid.index(0, 0, 0), 0.0});
    const auto cached = solver.solve(problem, {1e-12, 20000});
    const auto fresh = nh::fem::solveDiffusion(problem, {1e-12, 20000});
    ASSERT_TRUE(cached.converged());
    for (std::size_t v = 0; v < cached.field.size(); ++v) {
      EXPECT_DOUBLE_EQ(cached.field[v], fresh.field[v]);
    }
  }
}

// ---- banded / iterative Schur paths ------------------------------------------

// Shared fixture: a random diagonally dominant bipartite block system plus
// its dense reference solution.
struct BlockSystem {
  Vector d1, d2, r, xRef;
  Matrix g;
};

BlockSystem makeBlockSystem(Rng& rng, std::size_t n1, std::size_t n2) {
  BlockSystem s;
  s.g = Matrix(n1, n2);
  s.d1 = Vector(n1, 0.02);
  s.d2 = Vector(n2, 0.02);
  for (std::size_t i = 0; i < n1; ++i) {
    for (std::size_t c = 0; c < n2; ++c) {
      const double gc = std::pow(10.0, rng.uniform(-6.0, -3.0));
      s.g(i, c) = gc;
      s.d1[i] += gc;
      s.d2[c] += gc;
    }
  }
  s.r = Vector(n1 + n2);
  for (auto& v : s.r) v = rng.uniform(-1e-3, 1e-3);
  const std::size_t n = n1 + n2;
  Matrix j(n, n, 0.0);
  for (std::size_t i = 0; i < n1; ++i) j(i, i) = s.d1[i];
  for (std::size_t c = 0; c < n2; ++c) j(n1 + c, n1 + c) = s.d2[c];
  for (std::size_t i = 0; i < n1; ++i) {
    for (std::size_t c = 0; c < n2; ++c) {
      j(i, n1 + c) = -s.g(i, c);
      j(n1 + c, i) = -s.g(i, c);
    }
  }
  s.xRef = nh::util::solveDense(j, s.r);
  return s;
}

TEST(SchurComplementSolver, DegenerateShapesMatchDense) {
  // 1xN, Nx1, and the single-cell 1x1 block system: the Schur complement
  // machinery must not assume either block has more than one entry.
  Rng rng(321);
  nh::util::SchurComplementSolver solver;
  for (const auto [n1, n2] : {std::pair<std::size_t, std::size_t>{1, 9},
                              {9, 1},
                              {1, 1}}) {
    const BlockSystem s = makeBlockSystem(rng, n1, n2);
    Vector x;
    ASSERT_TRUE(solver.solve(s.d1, s.d2, s.g, s.r, x)) << n1 << "x" << n2;
    ASSERT_EQ(x.size(), s.xRef.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(x[i], s.xRef[i], 1e-9 * std::max(1.0, std::fabs(s.xRef[i])))
          << n1 << "x" << n2 << " entry " << i;
    }
    // The banded entry points must handle the same degenerate shapes.
    for (const auto mode : {nh::util::SchurOptions::Mode::Dense,
                            nh::util::SchurOptions::Mode::Iterative}) {
      solver.options().mode = mode;
      Vector xb;
      ASSERT_TRUE(solver.solveBanded(nh::util::TridiagonalView::diagonal(s.d1),
                                     nh::util::TridiagonalView::diagonal(s.d2),
                                     s.g, s.r, xb));
      for (std::size_t i = 0; i < xb.size(); ++i) {
        EXPECT_NEAR(xb[i], s.xRef[i],
                    1e-8 * std::max(1.0, std::fabs(s.xRef[i])));
      }
    }
    solver.options().mode = nh::util::SchurOptions::Mode::Auto;
  }
}

TEST(SchurComplementSolver, BandedAndIterativeMatchDenseReference) {
  Rng rng(99);
  for (const auto [n1, n2] : {std::pair<std::size_t, std::size_t>{24, 16},
                              {7, 31}}) {
    const BlockSystem s = makeBlockSystem(rng, n1, n2);
    for (const auto mode : {nh::util::SchurOptions::Mode::Dense,
                            nh::util::SchurOptions::Mode::Iterative}) {
      nh::util::SchurComplementSolver solver;
      solver.options().mode = mode;
      Vector x;
      ASSERT_TRUE(solver.solveBanded(nh::util::TridiagonalView::diagonal(s.d1),
                                     nh::util::TridiagonalView::diagonal(s.d2),
                                     s.g, s.r, x));
      for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(x[i], s.xRef[i], 1e-8 * std::max(1.0, std::fabs(s.xRef[i])));
      }
      if (mode == nh::util::SchurOptions::Mode::Iterative) {
        EXPECT_TRUE(solver.lastIterative().converged);
        EXPECT_GT(solver.lastIterative().iterations, 0u);
      }
    }
  }
}

TEST(TridiagonalFactor, MatchesOneShotThomasAndDense) {
  Rng rng(5);
  const std::size_t n = 40;
  Vector lower(n - 1), diag(n), upper(n - 1), b(n);
  for (std::size_t i = 0; i < n - 1; ++i) {
    lower[i] = rng.uniform(-1.0, -0.1);
    upper[i] = rng.uniform(-1.0, -0.1);
  }
  for (std::size_t i = 0; i < n; ++i) {
    diag[i] = 4.0 + rng.uniform(0.0, 1.0);  // diagonally dominant
    b[i] = rng.uniform(-1.0, 1.0);
  }
  const Vector xRef = nh::util::solveTridiagonal(lower, diag, upper, b);

  nh::util::TridiagonalFactor f;
  ASSERT_TRUE(f.factor(nh::util::TridiagonalView::tridiagonal(lower, diag, upper)));
  Vector x = b;
  f.solveInPlace(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xRef[i], 1e-12);

  // Multi-RHS row sweep: every column solved exactly like the vector path.
  Matrix rhs(n, 3);
  for (std::size_t i = 0; i < n; ++i) {
    rhs(i, 0) = b[i];
    rhs(i, 1) = 2.0 * b[i];
    rhs(i, 2) = -b[i];
  }
  f.solveRowsInPlace(rhs);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(rhs(i, 0), xRef[i], 1e-12);
    EXPECT_NEAR(rhs(i, 1), 2.0 * xRef[i], 1e-11);
    EXPECT_NEAR(rhs(i, 2), -xRef[i], 1e-12);
  }

  // Diagonal-only view: solve is element-wise division.
  Vector d(4, 2.0), bd(4, 1.0);
  nh::util::TridiagonalFactor fd;
  ASSERT_TRUE(fd.factor(nh::util::TridiagonalView::diagonal(d)));
  fd.solveInPlace(bd);
  for (const double v : bd) EXPECT_DOUBLE_EQ(v, 0.5);

  // Singular diagonal must be rejected.
  Vector dz(3, 0.0);
  nh::util::TridiagonalFactor fz;
  EXPECT_FALSE(fz.factor(nh::util::TridiagonalView::diagonal(dz)));
}

// ---- sparse LU ---------------------------------------------------------------

// 2D grid Laplacian numbered in the fill-hostile order the crossbar MNA
// produces naturally (all of one line family, then the other).
SparseMatrix gridSystem(std::size_t m, Rng& rng) {
  TripletBuilder b(m * m, m * m);
  const auto id = [m](std::size_t r, std::size_t c) { return r * m + c; };
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      const double d = 4.2 + rng.uniform(0.0, 0.4);
      b.add(id(r, c), id(r, c), d);
      if (r + 1 < m) {
        b.add(id(r, c), id(r + 1, c), -1.0);
        b.add(id(r + 1, c), id(r, c), -1.0);
      }
      if (c + 1 < m) {
        b.add(id(r, c), id(r, c + 1), -1.0);
        b.add(id(r, c + 1), id(r, c), -1.0);
      }
    }
  }
  return SparseMatrix::fromTriplets(b);
}

TEST(SparseLu, MatchesDenseLuOnGridSystem) {
  Rng rng(7);
  const std::size_t m = 12;
  const SparseMatrix a = gridSystem(m, rng);
  const std::size_t n = a.rows();
  Matrix dense(n, n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = a.rowPtr()[r]; k < a.rowPtr()[r + 1]; ++k) {
      dense(r, a.colIdx()[k]) += a.values()[k];
    }
  }
  Vector b(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const Vector xRef = nh::util::solveDense(dense, b);

  nh::util::SparseLu lu;
  ASSERT_TRUE(lu.refactor(a));
  Vector x = b;
  lu.solveInPlace(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xRef[i], 1e-10);

  // The RCM ordering must keep the factors sparse: a banded factorisation
  // of an m x m grid stores O(n * m) entries, nowhere near the dense n^2
  // (which the natural-order elimination of this numbering approaches).
  EXPECT_LT(lu.factorNonZeros(), n * (4 * m));
}

TEST(SparseLu, SameStructureRefactorIsBitIdenticalToFresh) {
  Rng rng(11);
  const std::size_t m = 6;
  const SparseMatrix a1 = gridSystem(m, rng);
  const SparseMatrix a2 = gridSystem(m, rng);  // same pattern, new values

  nh::util::SparseLu reused;
  ASSERT_TRUE(reused.refactor(a1));
  ASSERT_TRUE(reused.refactor(a2));  // exercises the cached-ordering path

  nh::util::SparseLu fresh;
  ASSERT_TRUE(fresh.refactor(a2));

  Vector b(a2.rows());
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  Vector xReused = b, xFresh = b;
  reused.solveInPlace(xReused);
  fresh.solveInPlace(xFresh);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_DOUBLE_EQ(xReused[i], xFresh[i]);
  }
}

TEST(SparseLu, SingularMatrixReturnsFalse) {
  TripletBuilder b(3, 3);
  b.add(0, 0, 1.0);
  b.add(0, 1, 1.0);
  b.add(1, 0, 2.0);
  b.add(1, 1, 2.0);  // row 1 = 2 * row 0
  b.add(2, 2, 1.0);
  const SparseMatrix a = SparseMatrix::fromTriplets(b);
  nh::util::SparseLu lu;
  EXPECT_FALSE(lu.refactor(a));
  EXPECT_FALSE(lu.valid());
}

// ---- FastEngine Schur-mode equivalence ---------------------------------------

TEST(FastEngineSchur, AllModesMatchTheSeedDensePath) {
  // Banded, Iterative, and a forced-iterative Auto must reproduce the seed
  // dense line solve on the same crossbar within solver tolerance.
  using SchurMode = nh::xbar::FastEngineOptions::SchurMode;
  nh::xbar::ArrayConfig cfg;
  cfg.rows = 7;
  cfg.cols = 9;

  const auto runWith = [&](SchurMode mode, std::size_t minCols,
                           nh::xbar::CrossbarArray& array) {
    nh::xbar::FastEngineOptions opt;
    opt.useSchurSolve = true;
    opt.schurMode = mode;
    opt.schurIterativeMinCols = minCols;
    nh::xbar::FastEngine engine(array, nh::xbar::AlphaTable::analytic(50e-9),
                                opt);
    const auto bias = nh::xbar::selectBias(nh::xbar::BiasScheme::Half, cfg.rows,
                                           cfg.cols, 3, 4, 1.05);
    engine.applyBias(bias, 10e-9);
    return engine.lastLineVoltages();
  };

  const auto makeArray = [&]() {
    nh::xbar::CrossbarArray array(cfg);
    array.fill(nh::xbar::CellState::Hrs);
    array.setState(3, 4, nh::xbar::CellState::Lrs);
    array.setState(2, 6, nh::xbar::CellState::Lrs);
    return array;
  };

  auto seedArray = makeArray();
  const auto seed = runWith(SchurMode::SeedDense, 128, seedArray);

  // Auto below the crossover threshold is the seed path bit for bit.
  auto autoArray = makeArray();
  const auto autoSmall = runWith(SchurMode::Auto, 128, autoArray);
  ASSERT_EQ(autoSmall.size(), seed.size());
  for (std::size_t i = 0; i < seed.size(); ++i) {
    EXPECT_DOUBLE_EQ(autoSmall[i], seed[i]) << "line " << i;
  }

  for (const auto [mode, minCols] :
       {std::pair<SchurMode, std::size_t>{SchurMode::Banded, 128},
        {SchurMode::Iterative, 128},
        {SchurMode::Auto, 1}}) {  // Auto past the crossover goes iterative
    auto array = makeArray();
    const auto lv = runWith(mode, minCols, array);
    ASSERT_EQ(lv.size(), seed.size());
    for (std::size_t i = 0; i < seed.size(); ++i) {
      EXPECT_NEAR(lv[i], seed[i], 1e-9) << "line " << i;
    }
  }
}

}  // namespace
