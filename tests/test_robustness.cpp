/// \file test_robustness.cpp
/// Fault-tolerance primitives and their end-to-end acceptance: cancellation
/// tokens/scopes, the fault-injection registry, parallelFor's
/// drain-after-throw contract, solver fault sites with their fallback
/// ladders, and the ISSUE acceptance scenarios on a registered experiment
/// (an injected singular factorization flags exactly one grid point; a
/// cancelled-then-resumed run reproduces the uninterrupted result exactly).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/experiment_registry.hpp"
#include "spice/analysis.hpp"
#include "spice/elements.hpp"
#include "util/cancellation.hpp"
#include "util/faultinject.hpp"
#include "util/fvstencil.hpp"
#include "util/linsolve.hpp"
#include "util/multigrid.hpp"
#include "util/sparse.hpp"
#include "util/threadpool.hpp"

namespace {

using nh::util::CancellationScope;
using nh::util::CancellationSource;
using nh::util::CancellationToken;
using nh::util::CancelledError;
using nh::util::CgOptions;
using nh::util::CgPreconditioner;
using nh::util::CgWorkspace;
using nh::util::SparseMatrix;
using nh::util::TripletBuilder;
using nh::util::Vector;

// ---- cancellation primitives ------------------------------------------------

TEST(Cancellation, DefaultTokenIsNeverCancelled) {
  CancellationToken token;
  EXPECT_FALSE(token.attached());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.deadlineExpired());
  EXPECT_NO_THROW(token.throwIfCancelled("unit"));
  // Outside any scope the ambient checkpoint is a no-op.
  EXPECT_NO_THROW(nh::util::checkCancellation("unit"));
}

TEST(Cancellation, ExplicitCancelTripsEveryOutstandingToken) {
  CancellationSource source;
  const CancellationToken token = source.token();
  EXPECT_TRUE(token.attached());
  EXPECT_FALSE(token.cancelled());

  source.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_FALSE(token.deadlineExpired());
  try {
    token.throwIfCancelled("unit test site");
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_NE(std::string(e.what()).find("unit test site"), std::string::npos);
    EXPECT_FALSE(e.deadlineExpired());
  }
}

TEST(Cancellation, ExpiredDeadlineReportsDeadlineExpired) {
  const CancellationSource expired = CancellationSource::withDeadline(-1.0);
  const CancellationToken token = expired.token();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.deadlineExpired());
  try {
    token.throwIfCancelled("deadline site");
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_TRUE(e.deadlineExpired());
  }

  // A generous deadline has not expired yet.
  const CancellationSource future = CancellationSource::withDeadline(3600.0);
  EXPECT_FALSE(future.token().cancelled());
}

TEST(Cancellation, ScopeInstallsNestsAndRestoresTheAmbientToken) {
  EXPECT_FALSE(nh::util::currentCancellation().attached());

  CancellationSource outer;
  {
    CancellationScope outerScope(outer.token());
    EXPECT_TRUE(nh::util::currentCancellation().attached());
    EXPECT_NO_THROW(nh::util::checkCancellation("outer"));

    CancellationSource inner;
    inner.cancel();
    {
      CancellationScope innerScope(inner.token());
      EXPECT_THROW(nh::util::checkCancellation("inner"), CancelledError);
    }
    // The outer (uncancelled) token is restored on inner-scope exit.
    EXPECT_NO_THROW(nh::util::checkCancellation("outer again"));

    outer.cancel();
    EXPECT_THROW(nh::util::checkCancellation("outer cancelled"),
                 CancelledError);
  }
  EXPECT_FALSE(nh::util::currentCancellation().attached());
  EXPECT_NO_THROW(nh::util::checkCancellation("no scope"));
}

// ---- fault-injection registry ----------------------------------------------

/// The registry is process-global: every test arms from and tears down to a
/// clean slate so suites cannot leak policies into each other.
class FaultInject : public ::testing::Test {
 protected:
  void SetUp() override { nh::util::faultinject::clearAll(); }
  void TearDown() override { nh::util::faultinject::clearAll(); }
};

TEST_F(FaultInject, FiresExactlyOnTheNthMatchingCall) {
  namespace fi = nh::util::faultinject;
  EXPECT_FALSE(fi::enabled());
  EXPECT_FALSE(fi::shouldFire("unit.site"));  // unarmed: never fires

  fi::arm("unit.site", 3);
  EXPECT_TRUE(fi::enabled());
  EXPECT_FALSE(fi::fired("unit.site"));
  EXPECT_FALSE(fi::shouldFire("unit.site"));
  EXPECT_FALSE(fi::shouldFire("unit.site"));
  EXPECT_TRUE(fi::shouldFire("unit.site"));  // the 3rd call
  EXPECT_TRUE(fi::fired("unit.site"));
  EXPECT_FALSE(fi::shouldFire("unit.site"));  // fires exactly once
  EXPECT_GE(fi::callCount("unit.site"), 3u);
}

TEST_F(FaultInject, ScopeFilterOnlyCountsMatchingCalls) {
  namespace fi = nh::util::faultinject;
  fi::arm("unit.scoped", 1, "point:7");

  EXPECT_EQ(fi::currentScope(), "");
  EXPECT_FALSE(fi::shouldFire("unit.scoped"));  // unscoped call: not counted
  {
    fi::Scope wrong("point:3");
    EXPECT_EQ(fi::currentScope(), "point:3");
    EXPECT_FALSE(fi::shouldFire("unit.scoped"));
  }
  EXPECT_FALSE(fi::fired("unit.scoped"));
  {
    fi::Scope right("point:7");
    {
      fi::Scope nested("point:9");
      EXPECT_EQ(fi::currentScope(), "point:9");
      EXPECT_FALSE(fi::shouldFire("unit.scoped"));
    }
    EXPECT_EQ(fi::currentScope(), "point:7");  // nesting restores
    EXPECT_TRUE(fi::shouldFire("unit.scoped"));
  }
  EXPECT_TRUE(fi::fired("unit.scoped"));
}

TEST_F(FaultInject, RearmingResetsTheCounterAndDisarmRemoves) {
  namespace fi = nh::util::faultinject;
  fi::arm("unit.rearm", 2);
  EXPECT_FALSE(fi::shouldFire("unit.rearm"));  // call 1 of 2

  fi::arm("unit.rearm", 2);                    // re-arm: counter resets
  EXPECT_FALSE(fi::shouldFire("unit.rearm"));  // back to call 1 of 2
  EXPECT_TRUE(fi::shouldFire("unit.rearm"));

  fi::arm("unit.rearm", 1);
  fi::disarm("unit.rearm");
  EXPECT_FALSE(fi::enabled());
  EXPECT_FALSE(fi::shouldFire("unit.rearm"));
}

// ---- parallelFor fault semantics -------------------------------------------

TEST(ParallelForFaults, DrainsEveryIndexAfterABodyThrows) {
  std::atomic<std::size_t> visited{0};
  try {
    nh::util::parallelFor(
        64,
        [&](std::size_t i) {
          visited.fetch_add(1);
          if (i == 7) throw std::runtime_error("boom at seven");
        },
        4);
    FAIL() << "expected the body's exception at the barrier";
  } catch (const CancelledError&) {
    FAIL() << "a plain failure must not surface as cancellation";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("index 7"), std::string::npos) << what;
    EXPECT_NE(what.find("boom at seven"), std::string::npos) << what;
  }
  // Per-slot isolation: the throw at index 7 must not strand the others.
  EXPECT_EQ(visited.load(), 64u);
}

TEST(ParallelForFaults, AlreadyCancelledAmbientTokenStopsClaimingIndices) {
  CancellationSource source;
  source.cancel();
  CancellationScope scope(source.token());

  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(
      nh::util::parallelFor(16, [&](std::size_t) { ran.fetch_add(1); }, 4),
      CancelledError);
  EXPECT_EQ(ran.load(), 0u);
}

TEST(ParallelForFaults, BodyThrownCancelledErrorPassesThroughUnwrapped) {
  EXPECT_THROW(nh::util::parallelFor(
                   8,
                   [&](std::size_t i) {
                     if (i == 3) throw CancelledError("body stop");
                   },
                   2),
               CancelledError);
}

// ---- solver fault sites and fallback ladders --------------------------------

class SolverFaults : public ::testing::Test {
 protected:
  void SetUp() override { nh::util::faultinject::clearAll(); }
  void TearDown() override { nh::util::faultinject::clearAll(); }
};

TEST_F(SolverFaults, CgFaultSiteReportsBreakdownThenRecovers) {
  namespace fi = nh::util::faultinject;
  const std::size_t m = 4;
  const SparseMatrix a = nh::util::makeSteadyFvOperator3d(m, 1.0);
  Vector b(a.rows(), 1.0);

  fi::arm("linsolve.cg", 1);
  Vector x(a.rows(), 0.0);
  const auto faulted = nh::util::solveConjugateGradient(a, b, x);
  EXPECT_FALSE(faulted.converged);
  EXPECT_TRUE(faulted.breakdown);
  EXPECT_TRUE(fi::fired("linsolve.cg"));

  fi::clearAll();
  Vector x2(a.rows(), 0.0);
  const auto clean = nh::util::solveConjugateGradient(a, b, x2);
  EXPECT_TRUE(clean.converged);
  EXPECT_FALSE(clean.breakdown);
}

TEST_F(SolverFaults, NonFiniteRhsFailsFastAsBreakdown) {
  const SparseMatrix a = nh::util::makeSteadyFvOperator3d(4, 1.0);
  Vector b(a.rows(), 1.0);
  b[5] = std::numeric_limits<double>::quiet_NaN();

  Vector x(a.rows(), 0.0);
  const auto r = nh::util::solveConjugateGradient(a, b, x);
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.breakdown);
  // Fail-fast: the guard trips within the first iterations instead of
  // spinning to maxIter on poisoned values.
  EXPECT_LE(r.iterations, 2u);
}

TEST_F(SolverFaults, MultigridSetupRejectsAZeroDiagonalRecoverably) {
  // 7-point Laplacian on a 5x5x5 grid (125 rows clears the 64-row floor),
  // with one diagonal entry zeroed: the Gauss-Seidel smoothers divide by the
  // diagonal, so setup must report failure instead of building a hierarchy
  // that produces NaNs (the seed asserted here, which NDEBUG silently
  // skipped).
  const std::size_t m = 5;
  const std::size_t n = m * m * m;
  TripletBuilder builder(n, n);
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t i = 0; i < m; ++i) {
        const std::size_t row = (k * m + j) * m + i;
        builder.add(row, row, row == 62 ? 0.0 : 6.0);
        if (i > 0) builder.add(row, row - 1, -1.0);
        if (i + 1 < m) builder.add(row, row + 1, -1.0);
        if (j > 0) builder.add(row, row - m, -1.0);
        if (j + 1 < m) builder.add(row, row + m, -1.0);
        if (k > 0) builder.add(row, row - m * m, -1.0);
        if (k + 1 < m) builder.add(row, row + m * m, -1.0);
      }
    }
  }
  const SparseMatrix bad = SparseMatrix::fromTriplets(builder);

  nh::util::GeometricMultigrid mg;
  nh::util::GeometricMultigrid::Options options;
  options.nx = options.ny = options.nz = m;
  EXPECT_FALSE(mg.compute(bad, options));
  EXPECT_FALSE(mg.valid());

  // Control: the well-formed operator of the same size builds a hierarchy.
  const SparseMatrix good = nh::util::makeSteadyFvOperator3d(m, 1.0);
  EXPECT_TRUE(mg.compute(good, options));
  EXPECT_TRUE(mg.valid());
  EXPECT_GE(mg.levelCount(), 2u);
}

TEST_F(SolverFaults, MultigridSetupFaultTripsTheFallbackLadder) {
  namespace fi = nh::util::faultinject;
  const std::size_t m = 8;
  const std::size_t n = m * m * m;
  const SparseMatrix a = nh::util::makeSteadyFvOperator3d(m, 2.0);
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = 1e-6 * double(i % 17);

  fi::arm("multigrid.setup", 1);
  CgOptions options;
  options.relTol = 1e-10;
  options.preconditioner = CgPreconditioner::Multigrid;
  options.gridNx = options.gridNy = options.gridNz = m;
  Vector x(n, 0.0);
  CgWorkspace workspace;
  const auto stats =
      nh::util::solveConjugateGradient(a, b, x, options, &workspace);

  // The injected setup failure must not fail the solve: the ladder falls
  // back to IC(0)/Jacobi and still converges.
  EXPECT_TRUE(fi::fired("multigrid.setup"));
  ASSERT_TRUE(stats.converged);
  const Vector ax = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

TEST_F(SolverFaults, NewtonFaultSiteFailsTheDcSolveCleanly) {
  namespace fi = nh::util::faultinject;
  // The circuit must be nonlinear: linear circuits take the single-solve
  // fast path that never enters the Newton loop (where the site lives).
  nh::spice::Circuit ckt;
  const nh::spice::NodeId in = ckt.node("in");
  const nh::spice::NodeId mid = ckt.node("mid");
  ckt.emplace<nh::spice::VoltageSource>("V1", in, ckt.ground(), 10.0);
  ckt.emplace<nh::spice::Resistor>("R1", in, mid, 1000.0);
  ckt.emplace<nh::spice::Diode>("D1", mid, ckt.ground());

  fi::arm("spice.newton", 1);
  const nh::spice::SolveResult faulted = nh::spice::solveDc(ckt);
  EXPECT_FALSE(faulted.converged);
  EXPECT_TRUE(fi::fired("spice.newton"));

  fi::clearAll();
  const nh::spice::SolveResult clean = nh::spice::solveDc(ckt);
  ASSERT_TRUE(clean.converged);
  // Forward diode drop: a few hundred millivolts at ~9 mA.
  EXPECT_GT(clean.x[mid - 1], 0.3);
  EXPECT_LT(clean.x[mid - 1], 1.0);
}

// ---- registered-experiment acceptance ---------------------------------------

class RegisteredExperimentFaults : public ::testing::Test {
 protected:
  void SetUp() override { nh::util::faultinject::clearAll(); }
  void TearDown() override { nh::util::faultinject::clearAll(); }
};

TEST_F(RegisteredExperimentFaults, InjectedSingularFactorizationFlagsOneRow) {
  namespace fi = nh::util::faultinject;
  using nh::core::PointOutcome;

  nh::core::RunOptions options;
  options.fast = true;
  options.threads = 2;

  const nh::core::ExperimentResult reference = nh::core::runExperiment(
      nh::core::makeExperiment("fig3b_electrode_spacing"), options);
  ASSERT_TRUE(reference.complete());
  ASSERT_EQ(reference.rows.size(), 3u);

  // Fail the first dense factorization inside grid point 1 only. The scope
  // filter makes this deterministic at any thread count: calls made during
  // study construction or by other points never match "point:1".
  fi::arm("linsolve.dense_lu", 1, "point:1");
  options.onPointFailure = nh::core::PointFailurePolicy::Skip;
  const nh::core::ExperimentResult degraded = nh::core::runExperiment(
      nh::core::makeExperiment("fig3b_electrode_spacing"), options);
  EXPECT_TRUE(fi::fired("linsolve.dense_lu"));

  EXPECT_FALSE(degraded.complete());
  EXPECT_EQ(degraded.pointsFailed, 1u);
  EXPECT_EQ(degraded.pointsOk, 2u);
  ASSERT_EQ(degraded.rows.size(), reference.rows.size());
  ASSERT_EQ(degraded.outcomes.size(), 3u);

  EXPECT_EQ(degraded.outcomes[1].status, PointOutcome::Status::Failed);
  EXPECT_FALSE(degraded.outcomes[1].error.empty());
  for (const auto& cell : degraded.rows[1]) {
    EXPECT_EQ(cell, nh::core::ResultValue::str("-"));
  }
  // Every other row is bit-identical to the fault-free baseline.
  EXPECT_EQ(degraded.outcomes[0].status, PointOutcome::Status::Ok);
  EXPECT_EQ(degraded.outcomes[2].status, PointOutcome::Status::Ok);
  EXPECT_EQ(degraded.rows[0], reference.rows[0]);
  EXPECT_EQ(degraded.rows[2], reference.rows[2]);
}

TEST_F(RegisteredExperimentFaults, CancelledThenResumedRunMatchesExactly) {
  using nh::core::PointOutcome;
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "nh_ckpt_fig3b";
  std::filesystem::remove_all(dir);

  nh::core::RunOptions options;
  options.fast = true;
  options.threads = 1;  // deterministic settle order for the mid-run cancel

  const nh::core::ExperimentResult reference = nh::core::runExperiment(
      nh::core::makeExperiment("fig3b_electrode_spacing"), options);
  ASSERT_TRUE(reference.complete());
  ASSERT_EQ(reference.rows.size(), 3u);

  // Interrupt after two settled points.
  CancellationSource source;
  nh::core::RunOptions interruptedOptions = options;
  interruptedOptions.checkpointDir = dir;
  interruptedOptions.cancel = source.token();
  interruptedOptions.onPointComplete = [&](std::size_t, const PointOutcome&,
                                           std::size_t completed) {
    if (completed == 2) source.cancel();
  };
  const nh::core::ExperimentResult interrupted = nh::core::runExperiment(
      nh::core::makeExperiment("fig3b_electrode_spacing"), interruptedOptions);
  EXPECT_FALSE(interrupted.complete());
  EXPECT_EQ(interrupted.pointsOk, 2u);
  EXPECT_EQ(interrupted.pointsCancelled, 1u);
  const std::filesystem::path ckpt =
      nh::core::checkpointPath(dir, "fig3b_electrode_spacing");
  EXPECT_TRUE(std::filesystem::exists(ckpt));

  // Resume: the two checkpointed rows load, the third runs, and the final
  // table is bit-identical to the uninterrupted reference.
  nh::core::RunOptions resumeOptions = options;
  resumeOptions.checkpointDir = dir;
  resumeOptions.resume = true;
  const nh::core::ExperimentResult resumed = nh::core::runExperiment(
      nh::core::makeExperiment("fig3b_electrode_spacing"), resumeOptions);
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.pointsResumed, 2u);
  ASSERT_EQ(resumed.rows.size(), reference.rows.size());
  for (std::size_t r = 0; r < reference.rows.size(); ++r) {
    EXPECT_EQ(resumed.rows[r], reference.rows[r]) << "row " << r;
  }
  // A completed run cleans its checkpoint up.
  EXPECT_FALSE(std::filesystem::exists(ckpt));
}

}  // namespace
