#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/stringutil.hpp"

namespace nh::util {
namespace {

// ---- stringutil -----------------------------------------------------------

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringUtil, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtil, SplitWhitespace) {
  const auto parts = splitWhitespace("  1   2\t3 \n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "1");
  EXPECT_EQ(parts[2], "3");
}

TEST(StringUtil, CaseHelpers) {
  EXPECT_TRUE(iequals("LRS", "lrs"));
  EXPECT_FALSE(iequals("LRS", "hrs"));
  EXPECT_EQ(toLower("AbC"), "abc");
  EXPECT_TRUE(startsWith("wl3_0", "wl"));
  EXPECT_FALSE(startsWith("a", "ab"));
}

TEST(StringUtil, ParseDouble) {
  EXPECT_DOUBLE_EQ(parseDouble(" 1.5e-9 "), 1.5e-9);
  EXPECT_THROW(parseDouble("abc"), std::invalid_argument);
  EXPECT_THROW(parseDouble("1.5x"), std::invalid_argument);
}

TEST(StringUtil, ParseInt) {
  EXPECT_EQ(parseInt("42"), 42);
  EXPECT_EQ(parseInt("-3"), -3);
  EXPECT_THROW(parseInt("4.2"), std::invalid_argument);
}

// ---- csv --------------------------------------------------------------------

TEST(Csv, RoundTrip) {
  CsvTable t({"a", "b"});
  t.addRow(std::vector<double>{1.5, 2.0});
  t.addRow({std::string("x"), std::string("y")});
  const CsvTable back = CsvTable::fromString(t.toString());
  EXPECT_EQ(back.rowCount(), 2u);
  EXPECT_DOUBLE_EQ(back.cellAsDouble(0, "a"), 1.5);
  EXPECT_EQ(back.cell(1, 1), "y");
}

TEST(Csv, ColumnAccess) {
  const CsvTable t = CsvTable::fromString("x,y\n1,2\n3,4\n");
  const auto ys = t.columnAsDouble("y");
  ASSERT_EQ(ys.size(), 2u);
  EXPECT_DOUBLE_EQ(ys[1], 4.0);
  EXPECT_THROW(t.columnIndex("z"), std::out_of_range);
}

TEST(Csv, RaggedRowThrows) {
  EXPECT_THROW(CsvTable::fromString("a,b\n1\n"), std::runtime_error);
  CsvTable t({"a", "b"});
  EXPECT_THROW(t.addRow(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Csv, SaveAndLoad) {
  const auto path = std::filesystem::temp_directory_path() / "nh_csv_test.csv";
  CsvTable t({"p"});
  t.addRow(std::vector<double>{3.25});
  t.save(path);
  const CsvTable back = CsvTable::load(path);
  EXPECT_DOUBLE_EQ(back.cellAsDouble(0, "p"), 3.25);
  std::filesystem::remove(path);
}

// ---- config --------------------------------------------------------------------

TEST(Config, ParsesSectionsAndComments) {
  const auto cfg = Config::fromString(
      "# comment\n"
      "top = 1\n"
      "[attack]\n"
      "pulse_ns = 50 ; trailing comment\n"
      "amplitude = 1.05\n"
      "[array]\n"
      "rows=5\n");
  EXPECT_EQ(cfg.getInt("top", 0), 1);
  EXPECT_DOUBLE_EQ(cfg.getDouble("attack.pulse_ns", 0.0), 50.0);
  EXPECT_DOUBLE_EQ(cfg.getDouble("attack.amplitude", 0.0), 1.05);
  EXPECT_EQ(cfg.getInt("array.rows", 0), 5);
  EXPECT_FALSE(cfg.has("array.cols"));
}

TEST(Config, TypedFallbacksAndRequired) {
  const auto cfg = Config::fromString("a = yes\nb = 2.5\n");
  EXPECT_TRUE(cfg.getBool("a", false));
  EXPECT_FALSE(cfg.getBool("missing", false));
  EXPECT_DOUBLE_EQ(cfg.requireDouble("b"), 2.5);
  EXPECT_THROW(cfg.requireDouble("missing"), std::out_of_range);
  EXPECT_THROW(cfg.requireInt("missing"), std::out_of_range);
  EXPECT_THROW(cfg.requireString("missing"), std::out_of_range);
}

TEST(Config, DoubleList) {
  const auto cfg = Config::fromString("spacings = 10, 50, 90\n");
  const auto list = cfg.getDoubleList("spacings");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_DOUBLE_EQ(list[1], 50.0);
  EXPECT_TRUE(cfg.getDoubleList("missing").empty());
}

TEST(Config, MalformedInputThrows) {
  EXPECT_THROW(Config::fromString("[section\nx=1\n"), std::runtime_error);
  EXPECT_THROW(Config::fromString("just a line\n"), std::runtime_error);
  EXPECT_THROW(Config::fromString("= 3\n"), std::runtime_error);
}

TEST(Config, BadBoolThrows) {
  const auto cfg = Config::fromString("a = maybe\n");
  EXPECT_THROW(cfg.getBool("a", false), std::invalid_argument);
}

TEST(Config, RoundTripPreservesSections) {
  const auto cfg = Config::fromString("global = 1\n[s]\nk = v\n[t]\nk2 = 7\n");
  const auto back = Config::fromString(cfg.toString());
  EXPECT_EQ(back.getInt("global", 0), 1);
  EXPECT_EQ(back.getString("s.k", ""), "v");
  EXPECT_EQ(back.getInt("t.k2", 0), 7);
}

TEST(Config, SetOverwrites) {
  Config cfg;
  cfg.set("a.b", "1");
  cfg.set("a.b", "2");
  EXPECT_EQ(cfg.getInt("a.b", 0), 2);
  EXPECT_EQ(cfg.keys().size(), 1u);
}

}  // namespace
}  // namespace nh::util
