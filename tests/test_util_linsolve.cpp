#include "util/linsolve.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace nh::util {
namespace {

Matrix randomSpdDense(std::size_t n, Rng& rng) {
  // A = B^T B + n*I is SPD.
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.uniform(-1.0, 1.0);
  }
  Matrix a = b.transposed().multiply(b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

SparseMatrix toSparse(const Matrix& a) {
  TripletBuilder builder(a.rows(), a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      if (a(r, c) != 0.0) builder.add(r, c, a(r, c));
    }
  }
  return SparseMatrix::fromTriplets(builder);
}

TEST(LuFactorization, SolvesKnownSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector x = solveDense(a, Vector{3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(LuFactorization, PivotsZeroDiagonal) {
  // Leading zero forces a row swap.
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vector x = solveDense(a, Vector{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LuFactorization, SingularReturnsNullopt) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_FALSE(LuFactorization::factor(a).has_value());
  EXPECT_THROW(solveDense(a, Vector{1.0, 1.0}), std::runtime_error);
}

TEST(LuFactorization, ReusableForMultipleRhs) {
  const Matrix a{{4.0, 1.0}, {2.0, 3.0}};
  const auto lu = LuFactorization::factor(a);
  ASSERT_TRUE(lu.has_value());
  const Vector x1 = lu->solve(Vector{1.0, 0.0});
  const Vector x2 = lu->solve(Vector{0.0, 1.0});
  // A * x1 == e1, A * x2 == e2.
  EXPECT_NEAR(4 * x1[0] + 1 * x1[1], 1.0, 1e-12);
  EXPECT_NEAR(2 * x2[0] + 3 * x2[1], 1.0, 1e-12);
}

class SolverSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SolverSizes, LuResidualSmallOnRandomSystems) {
  Rng rng(17 + GetParam());
  const std::size_t n = GetParam();
  const Matrix a = randomSpdDense(n, rng);
  Vector b(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const Vector x = solveDense(a, b);
  const Vector ax = a.multiply(x);
  EXPECT_LT(norm2(subtract(ax, b)) / norm2(b), 1e-10);
}

TEST_P(SolverSizes, ConjugateGradientMatchesLu) {
  Rng rng(99 + GetParam());
  const std::size_t n = GetParam();
  const Matrix a = randomSpdDense(n, rng);
  Vector b(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const Vector xRef = solveDense(a, b);

  Vector x;
  const auto result = solveConjugateGradient(toSparse(a), b, x, 1e-12, 10000);
  EXPECT_TRUE(result.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xRef[i], 1e-7);
}

TEST_P(SolverSizes, BiCgStabMatchesLu) {
  Rng rng(1234 + GetParam());
  const std::size_t n = GetParam();
  // Nonsymmetric diagonally dominant system.
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += static_cast<double>(n) + 1.0;
  }
  Vector b(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const Vector xRef = solveDense(a, b);

  Vector x;
  const auto result = solveBiCgStab(toSparse(a), b, x, 1e-12, 10000);
  EXPECT_TRUE(result.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xRef[i], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolverSizes,
                         ::testing::Values<std::size_t>(2, 5, 10, 25, 50));

TEST(ConjugateGradient, ZeroRhsGivesZero) {
  TripletBuilder builder(3, 3);
  for (std::size_t i = 0; i < 3; ++i) builder.add(i, i, 2.0);
  const auto a = SparseMatrix::fromTriplets(builder);
  Vector x{1.0, 1.0, 1.0};
  const auto result = solveConjugateGradient(a, Vector(3, 0.0), x);
  EXPECT_TRUE(result.converged);
  for (const double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Tridiagonal, SolvesKnownSystem) {
  // [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8] -> x = [1; 2; 3].
  const Vector x = solveTridiagonal({1.0, 1.0}, {2.0, 2.0, 2.0}, {1.0, 1.0},
                                    {4.0, 8.0, 8.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(Tridiagonal, SizeMismatchThrows) {
  EXPECT_THROW(solveTridiagonal({1.0}, {2.0, 2.0, 2.0}, {1.0, 1.0}, {1.0, 1.0, 1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace nh::util
