#include "util/linreg.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace nh::util {
namespace {

TEST(FitLinear, ExactLine) {
  const auto fit = fitLinear({0.0, 1.0, 2.0}, {1.0, 3.0, 5.0});
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.rSquared, 1.0, 1e-12);
  EXPECT_EQ(fit.samples, 3u);
}

TEST(FitLinear, NoisyLineHasHighR2) {
  Rng rng(5);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    const double xi = static_cast<double>(i) / 10.0;
    x.push_back(xi);
    y.push_back(300.0 + 2.5e6 * xi + rng.normal(0.0, 0.5));
  }
  const auto fit = fitLinear(x, y);
  EXPECT_NEAR(fit.slope, 2.5e6, 1e3);
  EXPECT_GT(fit.rSquared, 0.999);
}

TEST(FitLinear, ConstantYIsPerfectFit) {
  const auto fit = fitLinear({0.0, 1.0, 2.0}, {4.0, 4.0, 4.0});
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.rSquared, 1.0, 1e-12);
}

TEST(FitLinear, DegenerateInputsThrow) {
  EXPECT_THROW(fitLinear({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fitLinear({1.0, 1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(fitLinear({1.0, 2.0}, {1.0}), std::invalid_argument);
}

TEST(FitProportional, ZeroInterceptFit) {
  const auto fit = fitProportional({1.0, 2.0, 4.0}, {2.0, 4.0, 8.0});
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit.intercept, 0.0);
  EXPECT_NEAR(fit.rSquared, 1.0, 1e-12);
}

TEST(Pearson, PerfectCorrelation) {
  EXPECT_NEAR(pearson({1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1.0, 2.0, 3.0}, {6.0, 4.0, 2.0}), -1.0, 1e-12);
}

TEST(Pearson, UncorrelatedNearZero) {
  Rng rng(11);
  std::vector<double> x, y;
  for (int i = 0; i < 2000; ++i) {
    x.push_back(rng.uniform());
    y.push_back(rng.uniform());
  }
  EXPECT_LT(std::abs(pearson(x, y)), 0.1);
}

}  // namespace
}  // namespace nh::util
