#include "core/attack.hpp"

#include <gtest/gtest.h>

#include "core/study.hpp"

namespace nh::core {
namespace {

/// 10 nm spacing keeps flip times at a few hundred pulses: fast tests.
StudyConfig fastConfig() {
  StudyConfig cfg;
  cfg.spacing = 10e-9;
  return cfg;
}

TEST(AttackEngine, CentreAttackFlipsWordLineNeighbour) {
  AttackStudy study(fastConfig());
  HammerPulse pulse;  // 1.05 V, 50 ns, 50% duty
  const AttackResult r = study.attackCenter(pulse, 100000);
  ASSERT_TRUE(r.flipped);
  // Strongest coupling is along the word line: the flipped victim is one of
  // the row neighbours of the aggressor (2,2).
  EXPECT_EQ(r.flippedCell.row, 2u);
  EXPECT_TRUE(r.flippedCell.col == 1 || r.flippedCell.col == 3);
  EXPECT_GT(r.pulsesToFlip, 10u);
  EXPECT_LT(r.pulsesToFlip, 20000u);
  EXPECT_DOUBLE_EQ(r.stressTime, static_cast<double>(r.pulsesToFlip) * 50e-9);
  EXPECT_GE(r.pulsesApplied, r.pulsesToFlip);
}

TEST(AttackEngine, NoFlipWithinTinyBudget) {
  AttackStudy study(fastConfig());
  HammerPulse pulse;
  const AttackResult r = study.attackCenter(pulse, 5);
  EXPECT_FALSE(r.flipped);
  EXPECT_EQ(r.pulsesApplied, 5u);
}

TEST(AttackEngine, TraceRecordsFourPhases) {
  AttackStudy study(fastConfig());
  HammerPulse pulse;
  AttackConfig cfg;
  cfg.aggressors = {{2, 2}};
  cfg.pulse = pulse;
  cfg.maxPulses = 20000;  // keeps the trace interval fine-grained
  cfg.victims = {{2, 1}};
  cfg.traceSamples = 1000;
  const AttackResult r = study.attack(cfg);
  ASSERT_TRUE(r.flipped);
  ASSERT_GT(r.tracePulse.size(), 3u);
  ASSERT_EQ(r.traceVictimState.size(), r.tracePulse.size());
  // Victim state is monotically increasing toward the flip.
  for (std::size_t i = 1; i < r.traceVictimState.size(); ++i) {
    EXPECT_GE(r.traceVictimState[i], r.traceVictimState[i - 1] - 1e-9);
  }
  EXPECT_GT(r.traceVictimState.back(), r.traceVictimState.front());
}

TEST(AttackEngine, ExplicitVictimRespected) {
  AttackStudy study(fastConfig());
  AttackConfig cfg;
  cfg.aggressors = {{2, 2}};
  cfg.pulse = HammerPulse{};
  cfg.maxPulses = 200000;
  cfg.victims = {{1, 2}};  // bit-line neighbour (weaker coupling)
  const AttackResult r = study.attack(cfg);
  ASSERT_TRUE(r.flipped);
  EXPECT_EQ(r.flippedCell, (xbar::CellCoord{1, 2}));
}

TEST(AttackEngine, InputValidation) {
  AttackStudy study(fastConfig());
  auto bench = study.makeBench();
  AttackEngine engine(*bench.engine);

  AttackConfig cfg;  // no aggressors
  EXPECT_THROW(engine.run(cfg), std::invalid_argument);

  cfg.aggressors = {{9, 9}};
  EXPECT_THROW(engine.run(cfg), std::out_of_range);

  cfg.aggressors = {{2, 2}};
  cfg.pulse.dutyCycle = 0.0;
  EXPECT_THROW(engine.run(cfg), std::invalid_argument);
}

TEST(AttackEngine, AllLrsArrayHasNoVictims) {
  AttackStudy study(fastConfig());
  auto bench = study.makeBench();
  bench.array->fill(xbar::CellState::Lrs);
  AttackEngine engine(*bench.engine);
  AttackConfig cfg;
  cfg.aggressors = {{2, 2}};
  EXPECT_THROW(engine.run(cfg), std::invalid_argument);
}

TEST(AttackEngine, AggressorsPreparedLrs) {
  AttackStudy study(fastConfig());
  auto bench = study.makeBench();
  AttackEngine engine(*bench.engine);
  AttackConfig cfg;
  cfg.aggressors = {{2, 2}};
  cfg.maxPulses = 1;  // one pulse is enough to check preparation
  const AttackResult r = engine.run(cfg);
  (void)r;
  EXPECT_EQ(bench.array->stateOf(2, 2), xbar::CellState::Lrs);
}

TEST(AttackEngine, HammerPulseDerivedQuantities) {
  HammerPulse p;
  p.width = 50e-9;
  p.dutyCycle = 0.5;
  EXPECT_DOUBLE_EQ(p.period(), 100e-9);
  EXPECT_DOUBLE_EQ(p.gap(), 50e-9);
  p.dutyCycle = 0.25;
  EXPECT_DOUBLE_EQ(p.period(), 200e-9);
}

// ---- shape properties of the paper's figures (cheap versions) --------------------

TEST(AttackShape, LongerPulsesNeedFewerPulses) {
  // Fig. 3a downward trend.
  AttackStudy study(fastConfig());
  HammerPulse shortPulse;
  shortPulse.width = 20e-9;
  HammerPulse longPulse;
  longPulse.width = 80e-9;
  const auto a = study.attackCenter(shortPulse, 500000);
  const auto b = study.attackCenter(longPulse, 500000);
  ASSERT_TRUE(a.flipped && b.flipped);
  EXPECT_GT(a.pulsesToFlip, b.pulsesToFlip);
}

TEST(AttackShape, TighterSpacingFlipsFaster) {
  // Fig. 3b ordering (10 nm vs 50 nm; 90 nm is covered by the bench).
  StudyConfig near = fastConfig();
  StudyConfig far = fastConfig();
  far.spacing = 50e-9;
  const auto a = AttackStudy(near).attackCenter(HammerPulse{}, 2000000);
  const auto b = AttackStudy(far).attackCenter(HammerPulse{}, 2000000);
  ASSERT_TRUE(a.flipped && b.flipped);
  EXPECT_LT(a.pulsesToFlip * 5, b.pulsesToFlip);
}

TEST(AttackShape, HotterAmbientFlipsFaster) {
  // Fig. 3c ordering.
  StudyConfig cold = fastConfig();
  cold.ambientK = 273.0;
  StudyConfig hot = fastConfig();
  hot.ambientK = 348.0;
  const auto a = AttackStudy(cold).attackCenter(HammerPulse{}, 2000000);
  const auto b = AttackStudy(hot).attackCenter(HammerPulse{}, 2000000);
  ASSERT_TRUE(a.flipped && b.flipped);
  EXPECT_GT(a.pulsesToFlip, 10 * b.pulsesToFlip);
}

TEST(AttackShape, MoreAggressorsFlipFaster) {
  // Fig. 3d ordering: the ring pattern beats the single aggressor.
  StudyConfig cfg = fastConfig();
  AttackStudy study(cfg);
  const auto single =
      study.attackPattern(AttackPattern::SingleAggressor, HammerPulse{}, 500000);
  const auto ring = study.attackPattern(AttackPattern::Ring, HammerPulse{}, 500000);
  ASSERT_TRUE(single.flipped && ring.flipped);
  EXPECT_LT(ring.pulsesToFlip, single.pulsesToFlip);
}

TEST(AttackShape, ColumnPairSlowerThanRowPair) {
  // Word-line coupling dominates (filament sits on the bottom electrode).
  AttackStudy study(fastConfig());
  const auto row = study.attackPattern(AttackPattern::RowPair, HammerPulse{}, 500000);
  const auto col =
      study.attackPattern(AttackPattern::ColumnPair, HammerPulse{}, 2000000);
  ASSERT_TRUE(row.flipped && col.flipped);
  EXPECT_LT(row.pulsesToFlip, col.pulsesToFlip);
}

}  // namespace
}  // namespace nh::core
