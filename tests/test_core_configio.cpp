#include "core/configio.hpp"

#include <gtest/gtest.h>

namespace nh::core {
namespace {

TEST(ConfigIo, DefaultsWhenEmpty) {
  const auto cfg = studyConfigFrom(nh::util::Config::fromString(""));
  EXPECT_EQ(cfg.rows, 5u);
  EXPECT_DOUBLE_EQ(cfg.spacing, 50e-9);
  EXPECT_DOUBLE_EQ(cfg.ambientK, 300.0);
  EXPECT_FALSE(cfg.useFemAlphas);
}

TEST(ConfigIo, ParsesStudySections) {
  const auto cfg = studyConfigFrom(nh::util::Config::fromString(
      "[array]\nrows = 7\ncols = 7\n"
      "[geometry]\nspacing_nm = 10\nfem_alphas = true\nfem_voxel_nm = 10\n"
      "[environment]\nambient_K = 348\n"
      "[cell]\nactivation_energy_set_eV = 1.2\ntau_thermal_ns = 4\n"
      "[engine]\nbatching = false\n"));
  EXPECT_EQ(cfg.rows, 7u);
  EXPECT_DOUBLE_EQ(cfg.spacing, 10e-9);
  EXPECT_TRUE(cfg.useFemAlphas);
  EXPECT_DOUBLE_EQ(cfg.femVoxelSize, 10e-9);
  EXPECT_DOUBLE_EQ(cfg.ambientK, 348.0);
  EXPECT_DOUBLE_EQ(cfg.cellParams.activationEnergySet, 1.2);
  EXPECT_DOUBLE_EQ(cfg.cellParams.tauThermal, 4e-9);
  EXPECT_FALSE(cfg.engineOptions.enableBatching);
}

TEST(ConfigIo, InvalidCellParamsThrow) {
  EXPECT_THROW(studyConfigFrom(nh::util::Config::fromString(
                   "[cell]\nrth_eff_K_per_W = -1\n")),
               std::invalid_argument);
}

TEST(ConfigIo, RoundTripThroughText) {
  StudyConfig cfg;
  cfg.rows = 7;
  cfg.spacing = 30e-9;
  cfg.ambientK = 323.0;
  cfg.cellParams.activationEnergySet = 1.17;
  const auto back = studyConfigFrom(nh::util::Config::fromString(toConfigText(cfg)));
  EXPECT_EQ(back.rows, 7u);
  EXPECT_NEAR(back.spacing, 30e-9, 1e-18);
  EXPECT_DOUBLE_EQ(back.ambientK, 323.0);
  EXPECT_DOUBLE_EQ(back.cellParams.activationEnergySet, 1.17);
}

TEST(ConfigIo, AttackFromConfigPatternAndPulse) {
  const auto cfg = nh::util::Config::fromString(
      "[attack]\npattern = cross\namplitude_V = 1.2\nwidth_ns = 30\n"
      "duty = 0.25\nmax_pulses = 1234\nscheme = third\n");
  const auto attack = attackConfigFrom(cfg, 5, 5);
  EXPECT_EQ(attack.aggressors.size(), 4u);
  EXPECT_EQ(attack.victims.size(), 1u);
  EXPECT_EQ(attack.victims[0], (xbar::CellCoord{2, 2}));
  EXPECT_DOUBLE_EQ(attack.pulse.amplitude, 1.2);
  EXPECT_DOUBLE_EQ(attack.pulse.width, 30e-9);
  EXPECT_DOUBLE_EQ(attack.pulse.dutyCycle, 0.25);
  EXPECT_EQ(attack.maxPulses, 1234u);
  EXPECT_EQ(attack.scheme, xbar::BiasScheme::Third);
}

TEST(ConfigIo, AttackDefaultsToCentreHammer) {
  const auto attack = attackConfigFrom(nh::util::Config::fromString(""), 5, 5);
  ASSERT_EQ(attack.aggressors.size(), 1u);
  EXPECT_EQ(attack.aggressors[0], (xbar::CellCoord{2, 2}));
  EXPECT_TRUE(attack.victims.empty());  // monitor every HRS cell
  EXPECT_EQ(attack.scheme, xbar::BiasScheme::Half);
}

TEST(ConfigIo, BadPatternOrSchemeThrows) {
  EXPECT_THROW(patternFromName("spiral"), std::invalid_argument);
  EXPECT_THROW(attackConfigFrom(nh::util::Config::fromString(
                   "[attack]\nscheme = quarter\n"),
               5, 5),
               std::invalid_argument);
}

TEST(ConfigIo, EndToEndConfiguredAttackRuns) {
  const auto ini = nh::util::Config::fromString(
      "[geometry]\nspacing_nm = 10\n"
      "[attack]\nmax_pulses = 100000\n");
  AttackStudy study(studyConfigFrom(ini));
  const auto attack = attackConfigFrom(ini, 5, 5);
  const auto r = study.attack(attack);
  EXPECT_TRUE(r.flipped);
}

}  // namespace
}  // namespace nh::core
