#include "core/experiment_registry.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <stdexcept>
#include <string>

#include "core/baseline.hpp"

namespace nh::core {
namespace {

TEST(ExperimentRegistry, CatalogCoversThePaperEvaluation) {
  const auto entries = registeredExperiments();
  EXPECT_GE(entries.size(), 17u);

  std::set<std::string> names;
  for (const auto& e : entries) {
    names.insert(e.name);
    EXPECT_FALSE(e.summary.empty()) << e.name;
  }
  EXPECT_EQ(names.size(), entries.size()) << "duplicate registrations";

  for (const char* required :
       {"fig1_mechanics_trace", "fig2a_thermal_matrix", "fig3a_pulse_length",
        "fig3b_electrode_spacing", "fig3c_ambient_temperature",
        "fig3d_attack_patterns", "kinetics_landscape",
        "ablation_alpha_truncation", "ablation_batching",
        "ablation_hammer_amplitude", "ablation_scheme_defense",
        "ablation_thermal_tau", "ablation_variability",
        "scaling_victim_distance", "attack_energy", "sneak_path_margin",
        "endurance_half_select"}) {
    EXPECT_TRUE(names.count(required)) << "missing experiment: " << required;
    EXPECT_TRUE(hasExperiment(required));
  }
}

TEST(ExperimentRegistry, UnknownNameThrowsWithTheCatalog) {
  EXPECT_FALSE(hasExperiment("no_such_experiment"));
  try {
    makeExperiment("no_such_experiment");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    // The message lists the registered names to help CLI users.
    EXPECT_NE(std::string(e.what()).find("fig3a_pulse_length"),
              std::string::npos);
  }
}

TEST(ExperimentRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(
      registerExperiment("fig3a_pulse_length", "dup", [] {
        return ExperimentSpec{};
      }),
      std::invalid_argument);
}

TEST(ExperimentRegistry, EverySpecIsWellFormed) {
  for (const auto& entry : registeredExperiments()) {
    const ExperimentSpec spec = makeExperiment(entry.name);
    EXPECT_EQ(spec.name, entry.name);
    EXPECT_FALSE(spec.title.empty()) << entry.name;
    EXPECT_FALSE(spec.paperShape.empty()) << entry.name;
    EXPECT_FALSE(spec.axes.empty()) << entry.name;
    EXPECT_FALSE(spec.columns.empty()) << entry.name;
    EXPECT_TRUE(static_cast<bool>(spec.run)) << entry.name;
    EXPECT_GT(spec.maxPulses, 0u) << entry.name;
    // Trace and matrix columns cannot mix in one spec (the CSV long-form
    // expansion has no joint encoding for them).
    bool anyTrace = false;
    bool anyMatrix = false;
    for (const auto& col : spec.columns) {
      anyTrace = anyTrace || col.shape == ColumnSpec::Shape::Trace;
      anyMatrix = anyMatrix || col.shape == ColumnSpec::Shape::Matrix;
    }
    EXPECT_FALSE(anyTrace && anyMatrix) << entry.name;
    // A pivot must name real axes and a real scalar column.
    if (spec.pivot.enabled()) {
      const auto axisExists = [&](const std::string& name) {
        for (const auto& axis : spec.axes) {
          if (axis.name == name) return true;
        }
        return false;
      };
      EXPECT_TRUE(axisExists(spec.pivot.rowAxis)) << entry.name;
      EXPECT_TRUE(axisExists(spec.pivot.colAxis)) << entry.name;
      bool columnExists = false;
      for (const auto& col : spec.columns) {
        columnExists = columnExists || col.name == spec.pivot.valueColumn;
      }
      EXPECT_TRUE(columnExists) << entry.name;
    }
  }
}

/// The self-documenting catalog must cover every registered experiment and
/// stay regenerable: docs/experiments.md is this string checked in, and CI
/// diffs the two.
TEST(ExperimentRegistry, MarkdownCatalogCoversEveryExperiment) {
  const std::string md = registryMarkdown();
  EXPECT_NE(md.find("AUTO-GENERATED"), std::string::npos);
  for (const auto& entry : registeredExperiments()) {
    EXPECT_NE(md.find("\n## " + entry.name + "\n"), std::string::npos)
        << entry.name;
  }
  // Deterministic: two renderings are byte-identical (the CI diff relies
  // on it).
  EXPECT_EQ(md, registryMarkdown());
  // Shape and tolerance vocabulary shows up (self-documenting columns).
  EXPECT_NE(md.find("| trace |"), std::string::npos);
  EXPECT_NE(md.find("| matrix |"), std::string::npos);
  EXPECT_NE(md.find("Fast config digest"), std::string::npos);
}

/// The acceptance smoke: every registered experiment runs end to end in
/// fast mode and produces non-empty, header-consistent rows plus a valid
/// CSV/JSON rendering. (Fast mode is the CI-smoke contract: the whole
/// catalog completes in well under a minute on a few cores.)
TEST(ExperimentRegistry, EveryExperimentRunsInFastMode) {
  RunOptions options;
  options.fast = true;
  options.threads = 4;
  for (const auto& entry : registeredExperiments()) {
    SCOPED_TRACE(entry.name);
    const ExperimentSpec spec = makeExperiment(entry.name);
    // The scaling sweep's fast grid tops out at 1024x1024 (its acceptance
    // point, exercised by the CLI and `check --all --fast`); the unit-test
    // smoke only needs the machinery, so shrink the axis here.
    RunOptions pointOptions = options;
    if (entry.name == "scaling_array_size") {
      pointOptions.axisOverrides = {{"size", {8, 16}}};
    }
    const ExperimentResult result = runExperiment(spec, pointOptions);

    ASSERT_FALSE(result.rows.empty());
    std::size_t expected = 1;
    for (const auto& axis : result.axes) expected *= axis.values.size();
    EXPECT_EQ(result.rows.size(), expected);
    for (const auto& row : result.rows) {
      ASSERT_EQ(row.size(), result.columns.size());
    }
    EXPECT_EQ(result.name, entry.name);
    EXPECT_EQ(result.configDigest.size(), 16u);

    const auto csv = toCsvTable(result);
    bool shaped = false;
    for (const auto& col : result.columns) {
      shaped = shaped || col.shape != ColumnSpec::Shape::Scalar;
    }
    if (shaped) {
      // Long-form expansion: index columns in front, one line per element.
      EXPECT_GE(csv.rowCount(), result.rows.size());
      EXPECT_GT(csv.columnCount(), result.columns.size());
    } else {
      EXPECT_EQ(csv.rowCount(), result.rows.size());
      EXPECT_EQ(csv.columnCount(), result.columns.size());
    }

    const std::string json = toJson(result);
    EXPECT_NE(json.find("\"experiment\":\"" + entry.name + "\""),
              std::string::npos);

    // The ASCII render applies every column formatter at least once.
    for (const auto& table : toAsciiTables(result)) {
      EXPECT_FALSE(table.render().empty());
    }
  }
}

/// End-to-end baseline round trip through a real registered experiment:
/// record in a temp dir, re-run, check -- must match.
TEST(ExperimentRegistry, KineticsLandscapeBaselineRoundTrips) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "nh_registry_baseline_test";
  std::filesystem::remove_all(dir);
  RunOptions options;
  options.fast = true;
  options.threads = 2;
  const ExperimentSpec spec = makeExperiment("kinetics_landscape");
  const ExperimentResult first = runExperiment(spec, options);
  writeBaseline(first, dir);

  const ExperimentResult second = runExperiment(spec, options);
  const BaselineCheck check = checkBaseline(second, dir);
  EXPECT_TRUE(check.passed()) << check.message;

  // A perturbed result must fail with a named cell.
  ExperimentResult broken = second;
  broken.rows[0][2].number *= 2.0;  // t_set well past the 15% tolerance
  const BaselineCheck fail = checkBaseline(broken, dir);
  EXPECT_EQ(fail.status, BaselineCheck::Status::ValueMismatch);
  ASSERT_FALSE(fail.diffs.empty());
  EXPECT_EQ(fail.diffs[0].column, "t_set_s");
  std::filesystem::remove_all(dir);
}

/// Cross-product determinism through the registry path: a real two-axis
/// grid (fig3b in fast mode) must be bit-identical for 1 vs N threads.
TEST(ExperimentRegistry, Fig3bFastGridIsThreadCountInvariant) {
  const ExperimentSpec spec = makeExperiment("fig3b_electrode_spacing");
  RunOptions serial;
  serial.fast = true;
  serial.threads = 1;
  RunOptions parallel;
  parallel.fast = true;
  parallel.threads = 4;
  const ExperimentResult a = runExperiment(spec, serial);
  const ExperimentResult b = runExperiment(spec, parallel);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.configDigest, b.configDigest);
}

}  // namespace
}  // namespace nh::core
