#include "core/experiment_registry.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

namespace nh::core {
namespace {

TEST(ExperimentRegistry, CatalogCoversThePaperEvaluation) {
  const auto entries = registeredExperiments();
  EXPECT_GE(entries.size(), 12u);

  std::set<std::string> names;
  for (const auto& e : entries) {
    names.insert(e.name);
    EXPECT_FALSE(e.summary.empty()) << e.name;
  }
  EXPECT_EQ(names.size(), entries.size()) << "duplicate registrations";

  for (const char* required :
       {"fig3a_pulse_length", "fig3b_electrode_spacing",
        "fig3c_ambient_temperature", "fig3d_attack_patterns",
        "ablation_alpha_truncation", "ablation_batching",
        "ablation_hammer_amplitude", "ablation_scheme_defense",
        "ablation_thermal_tau", "ablation_variability",
        "scaling_victim_distance", "attack_energy", "sneak_path_margin",
        "endurance_half_select"}) {
    EXPECT_TRUE(names.count(required)) << "missing experiment: " << required;
    EXPECT_TRUE(hasExperiment(required));
  }
}

TEST(ExperimentRegistry, UnknownNameThrowsWithTheCatalog) {
  EXPECT_FALSE(hasExperiment("no_such_experiment"));
  try {
    makeExperiment("no_such_experiment");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    // The message lists the registered names to help CLI users.
    EXPECT_NE(std::string(e.what()).find("fig3a_pulse_length"),
              std::string::npos);
  }
}

TEST(ExperimentRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(
      registerExperiment("fig3a_pulse_length", "dup", [] {
        return ExperimentSpec{};
      }),
      std::invalid_argument);
}

TEST(ExperimentRegistry, EverySpecIsWellFormed) {
  for (const auto& entry : registeredExperiments()) {
    const ExperimentSpec spec = makeExperiment(entry.name);
    EXPECT_EQ(spec.name, entry.name);
    EXPECT_FALSE(spec.title.empty()) << entry.name;
    EXPECT_FALSE(spec.paperShape.empty()) << entry.name;
    EXPECT_FALSE(spec.axes.empty()) << entry.name;
    EXPECT_FALSE(spec.columns.empty()) << entry.name;
    EXPECT_TRUE(static_cast<bool>(spec.run)) << entry.name;
    EXPECT_GT(spec.maxPulses, 0u) << entry.name;
  }
}

/// The acceptance smoke: every registered experiment runs end to end in
/// fast mode and produces non-empty, header-consistent rows plus a valid
/// CSV/JSON rendering. (Fast mode is the CI-smoke contract: the whole
/// catalog completes in well under a minute on a few cores.)
TEST(ExperimentRegistry, EveryExperimentRunsInFastMode) {
  RunOptions options;
  options.fast = true;
  options.threads = 4;
  for (const auto& entry : registeredExperiments()) {
    SCOPED_TRACE(entry.name);
    const ExperimentSpec spec = makeExperiment(entry.name);
    const ExperimentResult result = runExperiment(spec, options);

    ASSERT_FALSE(result.rows.empty());
    std::size_t expected = 1;
    for (const auto& axis : result.axes) expected *= axis.values.size();
    EXPECT_EQ(result.rows.size(), expected);
    for (const auto& row : result.rows) {
      ASSERT_EQ(row.size(), result.columns.size());
    }
    EXPECT_EQ(result.name, entry.name);
    EXPECT_EQ(result.configDigest.size(), 16u);

    const auto csv = toCsvTable(result);
    EXPECT_EQ(csv.rowCount(), result.rows.size());
    EXPECT_EQ(csv.columnCount(), result.columns.size());

    const std::string json = toJson(result);
    EXPECT_NE(json.find("\"experiment\":\"" + entry.name + "\""),
              std::string::npos);

    // The ASCII render applies every column formatter at least once.
    EXPECT_FALSE(toAsciiTable(result).render().empty());
  }
}

/// Cross-product determinism through the registry path: a real two-axis
/// grid (fig3b in fast mode) must be bit-identical for 1 vs N threads.
TEST(ExperimentRegistry, Fig3bFastGridIsThreadCountInvariant) {
  const ExperimentSpec spec = makeExperiment("fig3b_electrode_spacing");
  RunOptions serial;
  serial.fast = true;
  serial.threads = 1;
  RunOptions parallel;
  parallel.fast = true;
  parallel.threads = 4;
  const ExperimentResult a = runExperiment(spec, serial);
  const ExperimentResult b = runExperiment(spec, parallel);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.configDigest, b.configDigest);
}

}  // namespace
}  // namespace nh::core
