#include "jart/device.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nh::jart {
namespace {

Params params() { return Params::paperDefaults(); }

TEST(JartDevice, StartsInDeepHrsAtAmbient) {
  const JartDevice d(params(), 300.0);
  EXPECT_DOUBLE_EQ(d.nDisc(), params().nDiscMin);
  EXPECT_DOUBLE_EQ(d.temperature(), 300.0);
  EXPECT_DOUBLE_EQ(d.normalisedState(), 0.0);
  EXPECT_DOUBLE_EQ(d.selfExcessTemperature(), 0.0);
}

TEST(JartDevice, RejectsNonPositiveAmbient) {
  EXPECT_THROW(JartDevice(params(), 0.0), std::invalid_argument);
  JartDevice d(params(), 300.0);
  EXPECT_THROW(d.setAmbient(-10.0), std::invalid_argument);
}

TEST(JartDevice, SetNDiscClampsToWindow) {
  JartDevice d(params(), 300.0);
  d.setNDisc(1e30);
  EXPECT_DOUBLE_EQ(d.nDisc(), params().nDiscMax);
  d.setNDisc(1.0);
  EXPECT_DOUBLE_EQ(d.nDisc(), params().nDiscMin);
  d.setLrs();
  EXPECT_DOUBLE_EQ(d.normalisedState(), 1.0);
  d.setHrs();
  EXPECT_DOUBLE_EQ(d.normalisedState(), 0.0);
}

TEST(JartDevice, SelfHeatingReachesSteadyStateWithinPulse) {
  JartDevice d(params(), 300.0);
  d.setLrs();
  d.advance(1.05, 50e-9);  // >> tauThermal
  // Steady self-heating: RthEff * P. For the calibrated LRS this is a few
  // hundred kelvin of excess.
  EXPECT_GT(d.selfExcessTemperature(), 100.0);
  const double steady = d.selfExcessTemperature();
  d.advance(1.05, 10e-9);
  EXPECT_NEAR(d.selfExcessTemperature(), steady, 2.0);
}

TEST(JartDevice, CoolsBackToAmbientWhenIdle) {
  JartDevice d(params(), 300.0);
  d.setLrs();
  d.advance(1.05, 50e-9);
  ASSERT_GT(d.temperature(), 400.0);
  d.advance(0.0, 50e-9);  // 25 thermal time constants
  EXPECT_NEAR(d.temperature(), 300.0, 0.5);
}

TEST(JartDevice, CrosstalkAddsToTemperature) {
  JartDevice d(params(), 300.0);
  d.setCrosstalk(75.0);
  EXPECT_DOUBLE_EQ(d.temperature(), 375.0);
  EXPECT_DOUBLE_EQ(d.excessTemperature(), 75.0);
  EXPECT_DOUBLE_EQ(d.selfExcessTemperature(), 0.0);
  d.setCrosstalk(0.0);
  EXPECT_DOUBLE_EQ(d.temperature(), 300.0);
}

TEST(JartDevice, RelaxDropsOnlySelfHeat) {
  JartDevice d(params(), 300.0);
  d.setLrs();
  d.setCrosstalk(40.0);
  d.advance(1.05, 30e-9);
  ASSERT_GT(d.selfExcessTemperature(), 50.0);
  d.relaxTemperature();
  EXPECT_DOUBLE_EQ(d.selfExcessTemperature(), 0.0);
  EXPECT_DOUBLE_EQ(d.temperature(), 340.0);  // crosstalk input remains
}

TEST(JartDevice, AmbientShiftKeepsExcess) {
  JartDevice d(params(), 300.0);
  d.setLrs();
  d.advance(1.05, 30e-9);
  const double excess = d.selfExcessTemperature();
  d.setAmbient(350.0);
  EXPECT_DOUBLE_EQ(d.ambient(), 350.0);
  EXPECT_NEAR(d.temperature(), 350.0 + excess, 1e-9);
}

TEST(JartDevice, SetStressMovesStateTowardLrs) {
  JartDevice d(params(), 300.0);
  d.setCrosstalk(80.0);  // hot victim
  const double before = d.normalisedState();
  d.advance(0.525, 1e-6);
  EXPECT_GT(d.normalisedState(), before);
}

TEST(JartDevice, ResetStressMovesStateTowardHrs) {
  JartDevice d(params(), 300.0);
  d.setLrs();
  d.advance(-1.3, 1e-5);
  EXPECT_LT(d.normalisedState(), 0.2);
}

TEST(JartDevice, IdleBiasDoesNotMoveState) {
  JartDevice d(params(), 300.0);
  d.setNDisc(1e25);
  const double before = d.nDisc();
  d.advance(0.0, 1e-3);
  EXPECT_DOUBLE_EQ(d.nDisc(), before);
}

TEST(JartDevice, AdvanceIsStepSizeInsensitive) {
  // One 100 ns advance must agree with 100 x 1 ns advances within the
  // explicit integrator's documented tolerance (the substep controller
  // bounds the state move per step to 1% of the window).
  JartDevice coarse(params(), 300.0);
  JartDevice fine(params(), 300.0);
  coarse.setCrosstalk(80.0);
  fine.setCrosstalk(80.0);
  coarse.advance(0.525, 100e-9);
  for (int i = 0; i < 100; ++i) fine.advance(0.525, 1e-9);
  EXPECT_NEAR(coarse.normalisedState(), fine.normalisedState(),
              0.08 * std::max(1e-3, fine.normalisedState()));
  EXPECT_NEAR(coarse.temperature(), fine.temperature(), 1.0);
}

TEST(JartDevice, ReadResistanceTracksState) {
  JartDevice d(params(), 300.0);
  d.setHrs();
  const double rHrs = d.readResistance();
  d.setLrs();
  const double rLrs = d.readResistance();
  EXPECT_GT(rHrs, 50.0 * rLrs);
}

TEST(JartDevice, CurrentUsesFrozenState) {
  JartDevice d(params(), 300.0);
  d.setHrs();
  const double i1 = d.current(0.5);
  const double i2 = d.current(0.5);
  EXPECT_DOUBLE_EQ(i1, i2);  // no state advance through current()
  EXPECT_DOUBLE_EQ(d.normalisedState(), 0.0);
}

TEST(JartDevice, ConductancePositive) {
  JartDevice d(params(), 300.0);
  for (const double v : {-1.0, -0.5, 0.2, 0.525, 1.05}) {
    EXPECT_GT(d.conductance(v), 0.0) << "v=" << v;
  }
}

}  // namespace
}  // namespace nh::jart
