#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace nh::util {
namespace {

TEST(JsonWriter, EmptyObjectAndArray) {
  JsonWriter o;
  o.beginObject().endObject();
  EXPECT_EQ(o.str(), "{}");

  JsonWriter a;
  a.beginArray().endArray();
  EXPECT_EQ(a.str(), "[]");
}

TEST(JsonWriter, ObjectWithMixedValues) {
  JsonWriter w;
  w.beginObject();
  w.key("name").value("fig3a");
  w.key("threads").value(std::size_t{4});
  w.key("fast").value(true);
  w.key("score").value(1.5);
  w.key("missing").null();
  w.endObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"fig3a\",\"threads\":4,\"fast\":true,"
            "\"score\":1.5,\"missing\":null}");
}

TEST(JsonWriter, NestedArraysGetCommasRight) {
  JsonWriter w;
  w.beginObject();
  w.key("rows").beginArray();
  w.beginArray().value(1.0).value(2.0).endArray();
  w.beginArray().value("a").value("b").endArray();
  w.endArray();
  w.endObject();
  EXPECT_EQ(w.str(), "{\"rows\":[[1,2],[\"a\",\"b\"]]}");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.beginObject();
  w.key("text").value("a\"b\\c\nd\te");
  w.endObject();
  EXPECT_EQ(w.str(), "{\"text\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriter, EscapesControlCharacters) {
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(jsonEscape("plain"), "plain");
}

TEST(JsonWriter, NumbersRoundTripAndNonFiniteIsNull) {
  EXPECT_EQ(jsonNumber(1e-8), "1e-08");
  EXPECT_EQ(jsonNumber(42.0), "42");
  EXPECT_EQ(jsonNumber(std::nan("")), "null");
  EXPECT_EQ(jsonNumber(INFINITY), "null");
}

TEST(JsonReader, ParsesScalarsAndContainers) {
  const JsonValue doc = JsonValue::parse(
      R"({"name":"fig1","fast":true,"n":3,"x":1e-08,"none":null,)"
      R"("list":[1,-2.5,"s"],"nested":{"k":[{}]}})");
  EXPECT_EQ(doc.type(), JsonValue::Type::Object);
  EXPECT_EQ(doc.at("name").asString(), "fig1");
  EXPECT_TRUE(doc.at("fast").asBool());
  EXPECT_EQ(doc.at("n").asNumber(), 3.0);
  EXPECT_EQ(doc.at("x").asNumber(), 1e-8);
  EXPECT_TRUE(doc.at("none").isNull());
  ASSERT_EQ(doc.at("list").size(), 3u);
  EXPECT_EQ(doc.at("list").items()[1].asNumber(), -2.5);
  EXPECT_EQ(doc.at("list").items()[2].asString(), "s");
  EXPECT_EQ(doc.at("nested").at("k").items()[0].size(), 0u);
  EXPECT_EQ(doc.find("absent"), nullptr);
  EXPECT_THROW(doc.at("absent"), std::runtime_error);
}

TEST(JsonReader, DecodesStringEscapes) {
  const JsonValue doc =
      JsonValue::parse(R"(["a\"b\\c\nd\te", "Aé€"])");
  EXPECT_EQ(doc.items()[0].asString(), "a\"b\\c\nd\te");
  EXPECT_EQ(doc.items()[1].asString(), "A\xc3\xa9\xe2\x82\xac");
}

TEST(JsonReader, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\":1} x"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{'a':1}"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1 2]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("nul"), std::runtime_error);
}

TEST(JsonReader, TypeMismatchThrows) {
  const JsonValue doc = JsonValue::parse("[1]");
  EXPECT_THROW(doc.asNumber(), std::runtime_error);
  EXPECT_THROW(doc.members(), std::runtime_error);
  EXPECT_THROW(doc.items()[0].asString(), std::runtime_error);
}

/// Writer output must parse back to the same values -- the contract the
/// baseline store depends on (it writes with JsonWriter, reads with
/// JsonValue).
TEST(JsonReader, RoundTripsWriterOutput) {
  JsonWriter w;
  w.beginObject();
  w.key("text").value("a\"b\\c\nd");
  w.key("values").beginArray();
  for (const double v : {1.0, -2.5e-7, 3.0000000000000004}) w.value(v);
  w.endArray();
  w.endObject();
  const JsonValue doc = JsonValue::parse(w.str());
  EXPECT_EQ(doc.at("text").asString(), "a\"b\\c\nd");
  EXPECT_EQ(doc.at("values").items()[0].asNumber(), 1.0);
  EXPECT_EQ(doc.at("values").items()[1].asNumber(), -2.5e-7);
  // formatDouble precision 17 means even the last ulp survives the trip.
  EXPECT_EQ(doc.at("values").items()[2].asNumber(), 3.0000000000000004);
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter w;
    w.beginObject();
    EXPECT_THROW(w.str(), std::logic_error);  // still open
  }
  {
    JsonWriter w;
    w.beginArray();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key inside an array
  }
  {
    JsonWriter w;
    w.beginObject();
    EXPECT_THROW(w.value(1.0), std::logic_error);  // value without a key
  }
  {
    JsonWriter w;
    w.beginObject();
    EXPECT_THROW(w.endArray(), std::logic_error);  // mismatched close
  }
}

}  // namespace
}  // namespace nh::util
