#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace nh::util {
namespace {

TEST(JsonWriter, EmptyObjectAndArray) {
  JsonWriter o;
  o.beginObject().endObject();
  EXPECT_EQ(o.str(), "{}");

  JsonWriter a;
  a.beginArray().endArray();
  EXPECT_EQ(a.str(), "[]");
}

TEST(JsonWriter, ObjectWithMixedValues) {
  JsonWriter w;
  w.beginObject();
  w.key("name").value("fig3a");
  w.key("threads").value(std::size_t{4});
  w.key("fast").value(true);
  w.key("score").value(1.5);
  w.key("missing").null();
  w.endObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"fig3a\",\"threads\":4,\"fast\":true,"
            "\"score\":1.5,\"missing\":null}");
}

TEST(JsonWriter, NestedArraysGetCommasRight) {
  JsonWriter w;
  w.beginObject();
  w.key("rows").beginArray();
  w.beginArray().value(1.0).value(2.0).endArray();
  w.beginArray().value("a").value("b").endArray();
  w.endArray();
  w.endObject();
  EXPECT_EQ(w.str(), "{\"rows\":[[1,2],[\"a\",\"b\"]]}");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.beginObject();
  w.key("text").value("a\"b\\c\nd\te");
  w.endObject();
  EXPECT_EQ(w.str(), "{\"text\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriter, EscapesControlCharacters) {
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(jsonEscape("plain"), "plain");
}

TEST(JsonWriter, NumbersRoundTripAndNonFiniteIsNull) {
  EXPECT_EQ(jsonNumber(1e-8), "1e-08");
  EXPECT_EQ(jsonNumber(42.0), "42");
  EXPECT_EQ(jsonNumber(std::nan("")), "null");
  EXPECT_EQ(jsonNumber(INFINITY), "null");
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter w;
    w.beginObject();
    EXPECT_THROW(w.str(), std::logic_error);  // still open
  }
  {
    JsonWriter w;
    w.beginArray();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key inside an array
  }
  {
    JsonWriter w;
    w.beginObject();
    EXPECT_THROW(w.value(1.0), std::logic_error);  // value without a key
  }
  {
    JsonWriter w;
    w.beginObject();
    EXPECT_THROW(w.endArray(), std::logic_error);  // mismatched close
  }
}

}  // namespace
}  // namespace nh::util
