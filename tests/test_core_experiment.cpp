#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "fem/diffusion.hpp"
#include "jart/params.hpp"
#include "util/cancellation.hpp"
#include "xbar/fastsim.hpp"

namespace nh::core {
namespace {

/// ---- config equality (the study-dedup cache key) -------------------------

TEST(ConfigEquality, DefaultConstructedPairsCompareEqual) {
  EXPECT_EQ(StudyConfig{}, StudyConfig{});
  EXPECT_EQ(DetectorConfig{}, DetectorConfig{});
  EXPECT_EQ(fem::DiffusionOptions{}, fem::DiffusionOptions{});
  EXPECT_EQ(xbar::FastEngineOptions{}, xbar::FastEngineOptions{});
  EXPECT_EQ(jart::Params::paperDefaults(), jart::Params::paperDefaults());
}

TEST(ConfigEquality, PerturbedFieldBreaksEquality) {
  StudyConfig a;
  StudyConfig b;
  b.spacing = 10e-9;
  EXPECT_NE(a, b);

  StudyConfig c;
  c.cellParams.activationEnergySet += 1e-3;  // nested jart::Params member
  EXPECT_NE(a, c);

  StudyConfig d;
  d.femOptions.relTol *= 10.0;  // nested fem::DiffusionOptions member
  EXPECT_NE(a, d);

  StudyConfig e;
  e.engineOptions.batchDriftLimit *= 2.0;  // nested FastEngineOptions member
  EXPECT_NE(a, e);

  StudyConfig f;
  f.detector.rHrsMin *= 2.0;  // nested DetectorConfig member
  EXPECT_NE(a, f);

  DetectorConfig g;
  g.readVoltage = 0.3;
  EXPECT_NE(DetectorConfig{}, g);

  fem::DiffusionOptions h;
  h.maxIterations += 1;
  EXPECT_NE(fem::DiffusionOptions{}, h);

  xbar::FastEngineOptions i;
  i.useSchurSolve = false;
  EXPECT_NE(xbar::FastEngineOptions{}, i);

  jart::Params j = jart::Params::paperDefaults();
  j.rFilament *= 1.01;
  EXPECT_NE(jart::Params::paperDefaults(), j);
}

/// ---- engine mechanics (no studies involved) ------------------------------

/// Two-axis spec whose run function just echoes its slot and values; used
/// to pin down the row-major cross-product order and the override plumbing.
ExperimentSpec echoSpec() {
  ExperimentSpec spec;
  spec.name = "echo";
  spec.buildStudies = false;
  spec.axes = {{"outer", {1.0, 2.0}, {}, {}}, {"inner", {10.0, 20.0, 30.0}, {}, {}}};
  spec.columns = {{"index", "", {}}, {"outer", "", {}}, {"inner", "", {}}};
  spec.run = [](const PointContext& ctx) {
    return std::vector<ResultValue>{
        ResultValue::num(static_cast<double>(ctx.index)),
        ResultValue::num(ctx.value("outer")),
        ResultValue::num(ctx.value("inner"))};
  };
  return spec;
}

TEST(ExperimentEngine, CrossProductIsRowMajorFirstAxisOutermost) {
  const ExperimentResult result = runExperiment(echoSpec());
  ASSERT_EQ(result.rows.size(), 6u);
  for (std::size_t o = 0; o < 2; ++o) {
    for (std::size_t i = 0; i < 3; ++i) {
      const auto& row = result.rows[o * 3 + i];
      EXPECT_EQ(row[0].number, static_cast<double>(o * 3 + i));
      EXPECT_EQ(row[1].number, (o + 1) * 1.0);
      EXPECT_EQ(row[2].number, (i + 1) * 10.0);
    }
  }
  EXPECT_EQ(result.studiesConstructed, 0u);  // buildStudies = false
  ASSERT_EQ(result.axes.size(), 2u);
  EXPECT_EQ(result.axes[0].name, "outer");
  EXPECT_EQ(result.axes[1].values, (std::vector<double>{10.0, 20.0, 30.0}));
}

TEST(ExperimentEngine, AxisOverrideReplacesValuesAndUnknownAxisThrows) {
  RunOptions options;
  options.axisOverrides["inner"] = {99.0};
  const ExperimentResult result = runExperiment(echoSpec(), options);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0][2].number, 99.0);
  EXPECT_EQ(result.rows[1][1].number, 2.0);

  RunOptions bad;
  bad.axisOverrides["no_such_axis"] = {1.0};
  EXPECT_THROW(runExperiment(echoSpec(), bad), std::out_of_range);

  RunOptions empty;
  empty.axisOverrides["inner"] = {};
  EXPECT_THROW(runExperiment(echoSpec(), empty), std::invalid_argument);
}

/// The CLI surfaces this message verbatim: a mistyped --set axis must name
/// every valid axis, not leave the user guessing (and must never be
/// silently ignored).
TEST(ExperimentEngine, UnknownAxisErrorListsTheValidAxes) {
  RunOptions bad;
  bad.axisOverrides["no_such_axis"] = {1.0};
  try {
    runExperiment(echoSpec(), bad);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no_such_axis"), std::string::npos);
    EXPECT_NE(what.find("outer"), std::string::npos);
    EXPECT_NE(what.find("inner"), std::string::npos);
  }
}

TEST(ExperimentEngine, FastModeUsesAxisSubsetsAndShrunkBudget) {
  ExperimentSpec spec = echoSpec();
  spec.axes[1].fastValues = {20.0};
  spec.maxPulses = 1000;
  spec.fastMaxPulses = 10;
  std::size_t seenBudget = 0;
  spec.run = [&seenBudget](const PointContext& ctx) {
    seenBudget = ctx.maxPulses;
    return std::vector<ResultValue>{ResultValue::num(0.0),
                                    ResultValue::num(ctx.value("outer")),
                                    ResultValue::num(ctx.value("inner"))};
  };
  RunOptions options;
  options.fast = true;
  options.threads = 1;
  const ExperimentResult result = runExperiment(spec, options);
  EXPECT_EQ(result.rows.size(), 2u);  // 2 outer x 1 fast inner
  EXPECT_EQ(seenBudget, 10u);
  EXPECT_TRUE(result.fast);
}

TEST(ExperimentEngine, RowWidthMismatchThrows) {
  ExperimentSpec spec = echoSpec();
  spec.run = [](const PointContext&) {
    return std::vector<ResultValue>{ResultValue::num(0.0)};  // 1 cell, 3 columns
  };
  RunOptions options;
  options.threads = 1;
  EXPECT_THROW(runExperiment(spec, options), std::runtime_error);
}

TEST(ExperimentEngine, DigestIsStableAndInputSensitive) {
  const std::string digest = configDigest(echoSpec(), {});
  EXPECT_EQ(digest.size(), 16u);
  EXPECT_EQ(digest, configDigest(echoSpec(), {}));

  ExperimentSpec other = echoSpec();
  other.base.spacing = 10e-9;
  EXPECT_NE(digest, configDigest(other, {}));

  RunOptions override1;
  override1.axisOverrides["inner"] = {99.0};
  EXPECT_NE(digest, configDigest(echoSpec(), override1));
}

/// ---- study-dedup cache + determinism over real attacks -------------------

/// Small, fast two-axis grid: tight spacing flips in O(10^2..10^3) pulses.
ExperimentSpec attackGridSpec() {
  ExperimentSpec spec;
  spec.name = "attack_grid";
  spec.base.rows = 3;
  spec.base.cols = 3;
  spec.maxPulses = 100'000;
  spec.axes = {{"spacing",
                {10e-9, 20e-9},
                {},
                [](StudyConfig& cfg, double v) { cfg.spacing = v; }},
               {"width", {50e-9, 80e-9}, {}, {}}};
  spec.columns = {{"spacing_nm", "", {}},
                  {"pulse_length_ns", "", {}},
                  {"pulses", "", {}},
                  {"flipped", "", {}}};
  spec.run = [](const PointContext& ctx) {
    HammerPulse pulse;
    pulse.width = ctx.value("width");
    const AttackResult r = ctx.study->attackCenter(pulse, ctx.maxPulses);
    return std::vector<ResultValue>{
        ResultValue::num(ctx.value("spacing") * 1e9),
        ResultValue::num(pulse.width * 1e9),
        ResultValue::num(static_cast<double>(r.pulsesToFlip)),
        ResultValue::boolean(r.flipped)};
  };
  return spec;
}

TEST(ExperimentEngine, TwoAxisGridConstructsOneStudyPerUniqueConfig) {
  clearStudyCache();  // cold start: earlier tests may have warmed the cache
  const std::size_t before = AttackStudy::constructionCount();
  const ExperimentResult result = runExperiment(attackGridSpec(), {});
  const std::size_t built = AttackStudy::constructionCount() - before;

  // 2 spacings x 2 widths = 4 points, but the width axis has no StudyConfig
  // setter, so the dedup cache must build exactly one study per spacing.
  ASSERT_EQ(result.rows.size(), 4u);
  EXPECT_EQ(built, 2u);
  EXPECT_EQ(result.studiesConstructed, 2u);
  EXPECT_EQ(result.studiesReused, 0u);
  for (const auto& row : result.rows) {
    EXPECT_EQ(row[3].number, 1.0) << "point did not flip within budget";
  }
}

/// The study cache is process-wide: a second run of the same grid (and any
/// other experiment sharing a config) must construct zero new studies and
/// still return bit-identical rows.
TEST(ExperimentEngine, ProcessWideCacheServesRepeatRunsWarm) {
  clearStudyCache();
  const ExperimentResult cold = runExperiment(attackGridSpec(), {});
  EXPECT_EQ(cold.studiesReused, 0u);
  EXPECT_EQ(studyCacheSize(), 2u);

  const std::size_t before = AttackStudy::constructionCount();
  const ExperimentResult warm = runExperiment(attackGridSpec(), {});
  EXPECT_EQ(AttackStudy::constructionCount(), before) << "cache missed";
  EXPECT_EQ(warm.studiesConstructed, 2u);
  EXPECT_EQ(warm.studiesReused, 2u);
  EXPECT_EQ(warm.rows, cold.rows);

  clearStudyCache();
  EXPECT_EQ(studyCacheSize(), 0u);
}

/// The process-wide cache is LRU-bounded: capacity caps the entry count,
/// shrinking evicts immediately, and the *least recently used* study is the
/// one to go -- a recently re-touched entry must survive an insert at
/// capacity.
TEST(ExperimentEngine, StudyCacheIsLruBounded) {
  clearStudyCache();
  const std::size_t defaultCapacity = studyCacheCapacity();
  EXPECT_GE(defaultCapacity, 2u);

  // Warm the cache with the two unique studies of the attack grid.
  runExperiment(attackGridSpec(), {});
  ASSERT_EQ(studyCacheSize(), 2u);

  // Shrinking the capacity below the population evicts immediately.
  setStudyCacheCapacity(1);
  EXPECT_EQ(studyCacheCapacity(), 1u);
  EXPECT_EQ(studyCacheSize(), 1u);

  // With room for one study, the two-study grid must stay bounded (the
  // second insert evicts the first) and still produce correct rows: every
  // point re-runs against a freshly built study when its entry is gone.
  const std::size_t before = AttackStudy::constructionCount();
  const ExperimentResult bounded = runExperiment(attackGridSpec(), {});
  EXPECT_EQ(studyCacheSize(), 1u);
  EXPECT_GT(AttackStudy::constructionCount(), before);
  for (const auto& row : bounded.rows) {
    EXPECT_EQ(row[3].number, 1.0) << "point did not flip within budget";
  }

  // Restore a roomy capacity and check LRU recency: re-running the grid
  // touches both entries, so they must both survive further activity below
  // the cap.
  setStudyCacheCapacity(defaultCapacity);
  clearStudyCache();
  runExperiment(attackGridSpec(), {});
  const ExperimentResult warm = runExperiment(attackGridSpec(), {});
  EXPECT_EQ(warm.studiesReused, 2u);

  // Capacity is clamped to >= 1 so the cache never degenerates to "throw
  // on insert".
  setStudyCacheCapacity(0);
  EXPECT_EQ(studyCacheCapacity(), 1u);
  setStudyCacheCapacity(defaultCapacity);
  clearStudyCache();
}

TEST(ExperimentEngine, SerialAndParallelRunsAreBitIdentical) {
  RunOptions serial;
  serial.threads = 1;
  RunOptions parallel;
  parallel.threads = 4;
  const ExperimentResult a = runExperiment(attackGridSpec(), serial);
  const ExperimentResult b = runExperiment(attackGridSpec(), parallel);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  EXPECT_EQ(a.rows, b.rows);  // ResultValue::operator== is exact
  EXPECT_EQ(a.pointValues, b.pointValues);
  EXPECT_EQ(a.configDigest, b.configDigest);
}

/// ---- shaped results (trace / matrix / pivot) -----------------------------

/// One-axis spec whose rows carry a scalar, a trace, and nothing else.
ExperimentSpec traceSpec() {
  ExperimentSpec spec;
  spec.name = "trace_echo";
  spec.buildStudies = false;
  spec.axes = {{"x", {1.0, 2.0}, {}, {}}};
  spec.columns = {{"x", "", {}},
                  {"series", "", {}, ColumnSpec::Shape::Trace}};
  spec.run = [](const PointContext& ctx) {
    const double x = ctx.value("x");
    return std::vector<ResultValue>{
        ResultValue::num(x), ResultValue::trace({x, 10.0 * x, 100.0 * x})};
  };
  return spec;
}

ExperimentSpec matrixSpec() {
  ExperimentSpec spec;
  spec.name = "matrix_echo";
  spec.buildStudies = false;
  spec.axes = {{"x", {3.0}, {}, {}}};
  spec.columns = {{"x", "", {}},
                  {"grid", "", {}, ColumnSpec::Shape::Matrix}};
  spec.run = [](const PointContext& ctx) {
    const double x = ctx.value("x");
    return std::vector<ResultValue>{
        ResultValue::num(x),
        ResultValue::matrix(2, 3, {x, x + 1, x + 2, x + 3, x + 4, x + 5})};
  };
  return spec;
}

TEST(ShapedResults, TraceRowsExpandToLongFormCsv) {
  const ExperimentResult result = runExperiment(traceSpec(), {});
  const auto csv = toCsvTable(result);
  // 2 points x 3 samples, with a leading sample index column; the scalar
  // cell repeats on every expanded line.
  ASSERT_EQ(csv.rowCount(), 6u);
  EXPECT_EQ(csv.header()[0], "sample");
  EXPECT_EQ(csv.header()[2], "series");
  EXPECT_EQ(csv.cellAsDouble(0, 0), 0.0);
  EXPECT_EQ(csv.cellAsDouble(2, 0), 2.0);
  EXPECT_EQ(csv.cellAsDouble(2, 1), 1.0);   // scalar repeated
  EXPECT_EQ(csv.cellAsDouble(2, 2), 100.0); // third sample of the first point
  EXPECT_EQ(csv.cellAsDouble(5, 2), 200.0);
}

TEST(ShapedResults, MatrixRowsExpandWithRowColIndexColumns) {
  const ExperimentResult result = runExperiment(matrixSpec(), {});
  const auto csv = toCsvTable(result);
  ASSERT_EQ(csv.rowCount(), 6u);  // one 2x3 matrix
  EXPECT_EQ(csv.header()[0], "row");
  EXPECT_EQ(csv.header()[1], "col");
  EXPECT_EQ(csv.cellAsDouble(4, 0), 1.0);  // element 4 -> (1, 1)
  EXPECT_EQ(csv.cellAsDouble(4, 1), 1.0);
  EXPECT_EQ(csv.cellAsDouble(4, 3), 7.0);  // 3 + 4
}

TEST(ShapedResults, JsonEncodesShapedCellsAndShapes) {
  const std::string traceJson = toJson(runExperiment(traceSpec(), {}));
  EXPECT_NE(traceJson.find("\"column_shapes\":[\"scalar\",\"trace\"]"),
            std::string::npos);
  EXPECT_NE(traceJson.find("{\"shape\":\"trace\",\"values\":[1,10,100]}"),
            std::string::npos);

  const std::string matrixJson = toJson(runExperiment(matrixSpec(), {}));
  EXPECT_NE(matrixJson.find("{\"shape\":\"matrix\",\"rows\":2,\"cols\":3,"
                            "\"values\":[3,4,5,6,7,8]}"),
            std::string::npos);
}

TEST(ShapedResults, AsciiRendersTraceLinesAndMatrixGrids) {
  const auto traceTables = toAsciiTables(runExperiment(traceSpec(), {}));
  ASSERT_EQ(traceTables.size(), 1u);
  const std::string traceAscii = traceTables[0].render();
  EXPECT_NE(traceAscii.find("100"), std::string::npos);

  const auto matrixTables = toAsciiTables(runExperiment(matrixSpec(), {}));
  // Main table (scalar column) + one grid per matrix cell.
  ASSERT_EQ(matrixTables.size(), 2u);
  const std::string grid = matrixTables[1].render();
  EXPECT_NE(grid.find("row\\col"), std::string::npos);
  EXPECT_NE(grid.find("8"), std::string::npos);
}

TEST(ShapedResults, ShapeMismatchedCellThrows) {
  ExperimentSpec spec = traceSpec();
  spec.run = [](const PointContext& ctx) {
    // Scalar where the column declares Trace.
    return std::vector<ResultValue>{ResultValue::num(ctx.value("x")),
                                    ResultValue::num(0.0)};
  };
  RunOptions options;
  options.threads = 1;
  EXPECT_THROW(runExperiment(spec, options), std::runtime_error);

  // Text placeholders are allowed in shaped columns ("-" convention).
  ExperimentSpec placeholder = traceSpec();
  placeholder.run = [](const PointContext& ctx) {
    return std::vector<ResultValue>{ResultValue::num(ctx.value("x")),
                                    ResultValue::str("-")};
  };
  EXPECT_EQ(runExperiment(placeholder, options).rows.size(), 2u);
}

TEST(ShapedResults, PivotRendersARowByColumnGrid) {
  ExperimentSpec spec = echoSpec();
  spec.pivot.rowAxis = "outer";
  spec.pivot.colAxis = "inner";
  spec.pivot.valueColumn = "index";
  spec.pivot.title = "pivoted";
  const auto tables = toAsciiTables(runExperiment(spec, {}));
  ASSERT_EQ(tables.size(), 2u);  // main + pivot
  const std::string pivot = tables[1].render();
  EXPECT_NE(pivot.find("outer \\ inner"), std::string::npos);
  EXPECT_NE(pivot.find("pivoted"), std::string::npos);

  ExperimentSpec bad = echoSpec();
  bad.pivot.rowAxis = "outer";
  bad.pivot.colAxis = "no_such_axis";
  bad.pivot.valueColumn = "index";
  EXPECT_THROW(toAsciiTables(runExperiment(bad, {})), std::logic_error);
}

TEST(ExperimentEngine, ResultSinkEmitsConsistentAsciiCsvJson) {
  const ExperimentResult result = runExperiment(echoSpec(), {});
  const auto csv = toCsvTable(result);
  EXPECT_EQ(csv.rowCount(), result.rows.size());
  EXPECT_EQ(csv.columnCount(), result.columns.size());
  EXPECT_EQ(csv.header()[0], "index");

  const std::string ascii = toAsciiTable(result).render();
  EXPECT_NE(ascii.find("outer"), std::string::npos);

  const std::string json = toJson(result);
  EXPECT_NE(json.find("\"experiment\":\"echo\""), std::string::npos);
  EXPECT_NE(json.find("\"config_digest\":\"" + result.configDigest + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"rows\":[["), std::string::npos);
}

/// ---- fault tolerance: isolation, retries, cancellation, resume -----------

/// echoSpec variant whose run function throws at one serial index.
ExperimentSpec failingSpec(std::size_t failIndex) {
  ExperimentSpec spec = echoSpec();
  spec.run = [failIndex](const PointContext& ctx) {
    if (ctx.index == failIndex) {
      throw std::runtime_error("injected point failure");
    }
    return std::vector<ResultValue>{
        ResultValue::num(static_cast<double>(ctx.index)),
        ResultValue::num(ctx.value("outer")),
        ResultValue::num(ctx.value("inner"))};
  };
  return spec;
}

TEST(FaultTolerance, SkipPolicyIsolatesTheFailedPoint) {
  RunOptions options;
  options.onPointFailure = PointFailurePolicy::Skip;
  const ExperimentResult degraded = runExperiment(failingSpec(2), options);
  const ExperimentResult clean = runExperiment(echoSpec(), {});

  ASSERT_EQ(degraded.rows.size(), 6u);
  ASSERT_EQ(degraded.outcomes.size(), 6u);
  EXPECT_EQ(degraded.pointsFailed, 1u);
  EXPECT_EQ(degraded.pointsOk, 5u);
  EXPECT_FALSE(degraded.complete());
  EXPECT_EQ(degraded.outcomes[2].status, PointOutcome::Status::Failed);
  EXPECT_NE(degraded.outcomes[2].error.find("injected point failure"),
            std::string::npos);

  // The failed row holds "-" placeholders; every other row is bit-identical
  // to the fault-free run.
  for (const auto& cell : degraded.rows[2]) {
    EXPECT_EQ(cell, ResultValue::str("-"));
  }
  for (std::size_t i = 0; i < 6; ++i) {
    if (i == 2) continue;
    EXPECT_EQ(degraded.rows[i], clean.rows[i]) << "row " << i;
  }
}

TEST(FaultTolerance, AbortPolicyStillThrowsAfterRetriesExhaust) {
  RunOptions options;
  options.threads = 1;
  options.pointRetries = 2;
  EXPECT_THROW(runExperiment(failingSpec(1), options), std::runtime_error);
}

TEST(FaultTolerance, RetriesRecoverATransientFailure) {
  ExperimentSpec spec = echoSpec();
  auto attempts = std::make_shared<std::atomic<int>>(0);
  spec.run = [attempts](const PointContext& ctx) {
    if (ctx.index == 1 && attempts->fetch_add(1) == 0) {
      throw std::runtime_error("transient");
    }
    return std::vector<ResultValue>{
        ResultValue::num(static_cast<double>(ctx.index)),
        ResultValue::num(ctx.value("outer")),
        ResultValue::num(ctx.value("inner"))};
  };
  RunOptions options;
  options.pointRetries = 1;
  const ExperimentResult result = runExperiment(spec, options);
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.pointsOk, 6u);
  EXPECT_EQ(result.outcomes[1].status, PointOutcome::Status::Ok);
  EXPECT_EQ(result.outcomes[1].attempts, 2u);
  EXPECT_EQ(result.outcomes[0].attempts, 1u);
}

TEST(FaultTolerance, DegradedSinksGrowAStatusColumnCompleteOnesDoNot) {
  RunOptions options;
  options.onPointFailure = PointFailurePolicy::Skip;
  const ExperimentResult degraded = runExperiment(failingSpec(2), options);
  const ExperimentResult clean = runExperiment(echoSpec(), {});

  const auto degradedCsv = toCsvTable(degraded);
  const auto cleanCsv = toCsvTable(clean);
  ASSERT_EQ(degradedCsv.columnCount(), cleanCsv.columnCount() + 1);
  EXPECT_EQ(degradedCsv.header().back(), "status");
  EXPECT_EQ(degradedCsv.cell(2, degradedCsv.columnCount() - 1), "failed");
  EXPECT_EQ(degradedCsv.cell(0, degradedCsv.columnCount() - 1), "ok");

  const std::string ascii = toAsciiTable(degraded).render();
  EXPECT_NE(ascii.find("status"), std::string::npos);
  EXPECT_NE(ascii.find("failed"), std::string::npos);
  EXPECT_EQ(toAsciiTable(clean).render().find("status"), std::string::npos);

  const std::string json = toJson(degraded);
  EXPECT_NE(json.find("\"points_failed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"complete\":false"), std::string::npos);
  EXPECT_NE(json.find("\"row_status\":[\"ok\",\"ok\",\"failed\""),
            std::string::npos);
  const std::string cleanJson = toJson(clean);
  EXPECT_NE(cleanJson.find("\"complete\":true"), std::string::npos);
  EXPECT_EQ(cleanJson.find("row_status"), std::string::npos);
}

TEST(FaultTolerance, CancelMidRunMarksPendingPointsAndKeepsDoneRows) {
  nh::util::CancellationSource source;
  ExperimentSpec spec = echoSpec();
  RunOptions options;
  options.threads = 1;  // serial: settle order == index order
  options.cancel = source.token();
  options.onPointComplete = [&](std::size_t, const PointOutcome&,
                                std::size_t completed) {
    if (completed == 2) source.cancel();
  };
  const ExperimentResult result = runExperiment(spec, options);
  EXPECT_EQ(result.pointsOk, 2u);
  EXPECT_EQ(result.pointsCancelled, 4u);
  EXPECT_FALSE(result.complete());
  EXPECT_EQ(result.outcomes[0].status, PointOutcome::Status::Ok);
  EXPECT_EQ(result.outcomes[3].status, PointOutcome::Status::Cancelled);
  EXPECT_EQ(result.rows[1][0].number, 1.0);          // kept
  EXPECT_EQ(result.rows[4][0], ResultValue::str("-"));  // never ran
}

TEST(FaultTolerance, ExpiredDeadlineMapsToTimedOut) {
  RunOptions options;
  options.threads = 1;
  options.cancel = nh::util::CancellationSource::withDeadline(-1.0).token();
  const ExperimentResult result = runExperiment(echoSpec(), options);
  EXPECT_EQ(result.pointsOk, 0u);
  EXPECT_EQ(result.pointsCancelled, 6u);
  for (const auto& outcome : result.outcomes) {
    EXPECT_EQ(outcome.status, PointOutcome::Status::TimedOut);
  }
  const auto csv = toCsvTable(result);
  EXPECT_EQ(csv.cell(0, csv.columnCount() - 1), "timed-out");
}

TEST(FaultTolerance, CancelThenResumeIsBitIdenticalToAnUninterruptedRun) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "nh_ckpt_echo";
  std::filesystem::remove_all(dir);

  // Uninterrupted serial reference.
  RunOptions serial;
  serial.threads = 1;
  const ExperimentResult reference = runExperiment(echoSpec(), serial);

  // Interrupted run: cancel once three points have settled.
  nh::util::CancellationSource source;
  RunOptions interrupted;
  interrupted.threads = 1;
  interrupted.cancel = source.token();
  interrupted.checkpointDir = dir;
  interrupted.onPointComplete = [&](std::size_t, const PointOutcome&,
                                    std::size_t completed) {
    if (completed == 3) source.cancel();
  };
  const ExperimentResult partial = runExperiment(echoSpec(), interrupted);
  EXPECT_EQ(partial.pointsOk, 3u);
  EXPECT_FALSE(partial.complete());
  EXPECT_TRUE(std::filesystem::exists(checkpointPath(dir, "echo")));

  // Resume: the three checkpointed points are restored, the rest run.
  RunOptions resumed;
  resumed.threads = 1;
  resumed.checkpointDir = dir;
  resumed.resume = true;
  const ExperimentResult result = runExperiment(echoSpec(), resumed);
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.pointsResumed, 3u);
  EXPECT_EQ(result.pointsOk, 6u);
  EXPECT_EQ(result.rows, reference.rows);
  EXPECT_EQ(result.pointValues, reference.pointValues);
  // A completed run owes nobody a checkpoint.
  EXPECT_FALSE(std::filesystem::exists(checkpointPath(dir, "echo")));
  // And its sinks carry no status column: resumed-but-complete renders
  // byte-identically to the uninterrupted run.
  EXPECT_EQ(toAsciiTable(result).render(), toAsciiTable(reference).render());
}

TEST(FaultTolerance, MismatchedDigestInvalidatesTheCheckpoint) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "nh_ckpt_digest";
  std::filesystem::remove_all(dir);

  nh::util::CancellationSource source;
  RunOptions interrupted;
  interrupted.threads = 1;
  interrupted.cancel = source.token();
  interrupted.checkpointDir = dir;
  interrupted.onPointComplete = [&](std::size_t, const PointOutcome&,
                                    std::size_t completed) {
    if (completed == 2) source.cancel();
  };
  runExperiment(echoSpec(), interrupted);
  ASSERT_TRUE(std::filesystem::exists(checkpointPath(dir, "echo")));

  // A different grid (axis override) changes the digest: nothing resumes.
  RunOptions other;
  other.threads = 1;
  other.checkpointDir = dir;
  other.resume = true;
  other.axisOverrides["inner"] = {10.0, 20.0};
  const ExperimentResult result = runExperiment(echoSpec(), other);
  EXPECT_EQ(result.pointsResumed, 0u);
  EXPECT_TRUE(result.complete());
}

TEST(FaultTolerance, CheckpointWriteFailureDegradesInsteadOfAborting) {
  // A regular file where the checkpoint directory should go: every write
  // attempt fails at create_directories. Checkpointing must degrade (warn
  // and disable) -- a checkpoint I/O error is a resumability problem, never
  // a reason to lose the partial result of an otherwise healthy run.
  const std::filesystem::path blocker =
      std::filesystem::path(::testing::TempDir()) / "nh_ckpt_blocker";
  std::filesystem::remove_all(blocker);
  {
    std::ofstream out(blocker);
    out << "not a directory\n";
  }

  nh::util::CancellationSource source;
  RunOptions options;
  options.threads = 1;
  options.cancel = source.token();
  options.checkpointDir = blocker / "checkpoints";  // parent is a file
  options.onPointComplete = [&](std::size_t, const PointOutcome&,
                                std::size_t completed) {
    if (completed == 2) source.cancel();
  };
  const ExperimentResult result = runExperiment(echoSpec(), options);
  EXPECT_EQ(result.pointsOk, 2u);
  EXPECT_FALSE(result.complete());
  EXPECT_FALSE(
      std::filesystem::exists(checkpointPath(options.checkpointDir, "echo")));
}

}  // namespace
}  // namespace nh::core
