#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/interp.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace nh::util {
namespace {

// ---- rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.nextU64() == b.nextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, NormalMomentsReasonable) {
  Rng rng(11);
  double sum = 0.0, sumSq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumSq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumSq / n, 1.0, 0.03);
}

// ---- interp ----------------------------------------------------------------

TEST(PiecewiseLinear, InterpolatesAndClamps) {
  const PiecewiseLinear f({0.0, 1.0, 2.0}, {0.0, 10.0, 0.0});
  EXPECT_DOUBLE_EQ(f(0.5), 5.0);
  EXPECT_DOUBLE_EQ(f(1.5), 5.0);
  EXPECT_DOUBLE_EQ(f(-1.0), 0.0);   // clamp left
  EXPECT_DOUBLE_EQ(f(10.0), 0.0);   // clamp right
}

TEST(PiecewiseLinear, RejectsBadKnots) {
  EXPECT_THROW(PiecewiseLinear({1.0, 1.0}, {0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinear({2.0, 1.0}, {0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinear({}, {}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinear({1.0}, {0.0, 1.0}), std::invalid_argument);
}

TEST(FirstCrossing, FindsInterpolatedCrossing) {
  const double x = firstCrossing({0.0, 1.0, 2.0}, {0.0, 2.0, 4.0}, 1.0);
  EXPECT_NEAR(x, 0.5, 1e-12);
}

TEST(FirstCrossing, NanWhenNoCrossing) {
  EXPECT_TRUE(std::isnan(firstCrossing({0.0, 1.0}, {0.0, 0.5}, 2.0)));
  EXPECT_TRUE(std::isnan(firstCrossing({0.0}, {1.0}, 0.5)));
}

// ---- table ------------------------------------------------------------------

TEST(AsciiTable, RendersAlignedRows) {
  AsciiTable t({"name", "value"});
  t.setTitle("Title");
  t.addRow({"a", "1"});
  t.addRow({"longer", "2"});
  t.addNote("note");
  const std::string s = t.render();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| a      |"), std::string::npos);
  EXPECT_NE(s.find("| longer |"), std::string::npos);
  EXPECT_NE(s.find("note"), std::string::npos);
}

TEST(AsciiTable, WidthMismatchThrows) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(AsciiTable, Formatters) {
  EXPECT_EQ(AsciiTable::fixed(1.234, 2), "1.23");
  EXPECT_EQ(AsciiTable::si(5e-8, "s", 0), "50 ns");
  EXPECT_EQ(AsciiTable::si(1.93e6, "K/W", 2), "1.93 MK/W");
  EXPECT_EQ(AsciiTable::grouped(1234567), "1,234,567");
  EXPECT_EQ(AsciiTable::grouped(-42), "-42");
}

// ---- units ------------------------------------------------------------------

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(nm(50.0), 50e-9);
  EXPECT_DOUBLE_EQ(ns(10.0), 1e-8);
  EXPECT_DOUBLE_EQ(celsius(26.85), 300.0);
  EXPECT_NEAR(thermalVoltage(300.0), 0.025852, 1e-5);
  EXPECT_NEAR(eV(1.0), 1.602176634e-19, 1e-28);
}

}  // namespace
}  // namespace nh::util
