#include "jart/kinetics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nh::jart {
namespace {

const Params& params() {
  static const Params p = Params::paperDefaults();
  return p;
}

TEST(SwitchingTime, FullSelectSetIsNanoseconds) {
  // V_SET = 1.05 V at room temperature: the write the controller performs.
  SwitchingOptions opt;
  opt.maxTime = 1e-5;
  const auto r = switchingTime(params(), 1.05, opt);
  ASSERT_TRUE(r.switched);
  EXPECT_LT(r.time, 200e-9);
  EXPECT_GT(r.time, 0.5e-9);
}

TEST(SwitchingTime, HalfSelectColdIsMilliseconds) {
  // The disturb margin of normal operation: V/2 at 300 K must be at least
  // four orders of magnitude slower than a full-select write.
  SwitchingOptions opt;
  opt.maxTime = 10.0;
  const auto full = switchingTime(params(), 1.05, opt);
  const auto half = switchingTime(params(), 0.525, opt);
  ASSERT_TRUE(full.switched);
  ASSERT_TRUE(half.switched);
  EXPECT_GT(half.time / full.time, 1e4);
  EXPECT_GT(half.time, 1e-3);
}

TEST(SwitchingTime, ReadVoltageDoesNotDisturb) {
  SwitchingOptions opt;
  opt.maxTime = 1.0;  // one full second of continuous read stress
  const auto r = switchingTime(params(), 0.2, opt);
  EXPECT_FALSE(r.switched);
}

TEST(SwitchingTime, CrosstalkHeatingAcceleratesHalfSelect) {
  // The core NeuroHammer effect: tens of kelvin of crosstalk collapse the
  // half-select switching time by orders of magnitude.
  SwitchingOptions cold;
  cold.maxTime = 10.0;
  SwitchingOptions hot = cold;
  hot.crosstalkK = 60.0;
  const auto tCold = switchingTime(params(), 0.525, cold);
  const auto tHot = switchingTime(params(), 0.525, hot);
  ASSERT_TRUE(tCold.switched && tHot.switched);
  EXPECT_GT(tCold.time / tHot.time, 1e2);
}

TEST(SwitchingTime, ResetWorksAtNegativeVoltage) {
  SwitchingOptions opt;
  opt.maxTime = 1e-3;
  const auto r = switchingTime(params(), -1.3, opt);
  ASSERT_TRUE(r.switched);
  EXPECT_LT(r.time, 1e-4);
  // Final state is toward HRS.
  EXPECT_LT(params().normalisedState(r.finalNDisc), 0.5);
}

TEST(SwitchingTime, HalfResetSafeAtRoomTemperature) {
  SwitchingOptions opt;
  opt.maxTime = 0.1;
  const auto r = switchingTime(params(), -0.65, opt);
  EXPECT_FALSE(r.switched);
}

class VoltageMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(VoltageMonotonicity, HigherVoltageSwitchesFaster) {
  const double t0 = GetParam();
  SwitchingOptions opt;
  opt.ambientK = t0;
  opt.crosstalkK = 40.0;  // keep the sweep fast
  opt.maxTime = 10.0;
  double previous = 1e30;
  for (const double v : {0.5, 0.65, 0.8, 0.95, 1.1}) {
    const auto r = switchingTime(params(), v, opt);
    ASSERT_TRUE(r.switched) << "v=" << v << " T0=" << t0;
    EXPECT_LT(r.time, previous) << "v=" << v << " T0=" << t0;
    previous = r.time;
  }
}

INSTANTIATE_TEST_SUITE_P(AmbientTemps, VoltageMonotonicity,
                         ::testing::Values(273.0, 300.0, 348.0));

class TemperatureMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(TemperatureMonotonicity, HotterSwitchesFaster) {
  const double v = GetParam();
  double previous = 1e30;
  for (const double t0 : {273.0, 300.0, 323.0, 348.0, 373.0}) {
    SwitchingOptions opt;
    opt.ambientK = t0;
    opt.crosstalkK = 30.0;
    opt.maxTime = 100.0;
    const auto r = switchingTime(params(), v, opt);
    ASSERT_TRUE(r.switched) << "v=" << v << " T0=" << t0;
    EXPECT_LT(r.time, previous) << "v=" << v << " T0=" << t0;
    previous = r.time;
  }
}

INSTANTIATE_TEST_SUITE_P(Voltages, TemperatureMonotonicity,
                         ::testing::Values(0.55, 0.65, 0.8));

TEST(SwitchingTime, TargetStateRespected) {
  SwitchingOptions early;
  early.targetState = 0.2;
  early.crosstalkK = 60.0;
  early.maxTime = 1.0;
  SwitchingOptions late = early;
  late.targetState = 0.8;
  const auto a = switchingTime(params(), 0.525, early);
  const auto b = switchingTime(params(), 0.525, late);
  ASSERT_TRUE(a.switched && b.switched);
  EXPECT_LT(a.time, b.time);
}

TEST(KineticsLandscape, GridShapeAndMonotoneRows) {
  const auto points = kineticsLandscape(params(), {0.6, 0.8, 1.0},
                                        {300.0, 350.0}, 1.0);
  ASSERT_EQ(points.size(), 6u);
  // Within a temperature row, time decreases with voltage.
  EXPECT_GT(points[0].time, points[1].time);
  EXPECT_GT(points[1].time, points[2].time);
  // Hotter row is faster at equal voltage.
  EXPECT_GT(points[0].time, points[3].time);
  EXPECT_DOUBLE_EQ(points[3].temperatureK, 350.0);
}

}  // namespace
}  // namespace nh::jart
