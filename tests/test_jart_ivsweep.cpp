#include "jart/ivsweep.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nh::jart {
namespace {

const Params& params() {
  static const Params p = Params::paperDefaults();
  return p;
}

IvSweepOptions quickSweep() {
  IvSweepOptions o;
  o.samples = 200;
  return o;
}

TEST(IvSweep, BipolarLoopSwitchesBothWays) {
  const auto loop = sweepIV(params(), quickSweep());
  ASSERT_EQ(loop.size(), 200u);
  const auto metrics = analyseLoop(params(), loop);
  EXPECT_TRUE(metrics.switchedToLrs);
  EXPECT_TRUE(metrics.switchedBack);
}

TEST(IvSweep, SetVoltageNearOperatingPoint) {
  const auto loop = sweepIV(params(), quickSweep());
  const auto metrics = analyseLoop(params(), loop);
  // The paper hammers at V_SET = 1.05 V; the DC-swept SET transition must
  // sit below that (slow sweeps switch earlier) but above the half-select.
  EXPECT_GT(metrics.vSet, 0.55);
  EXPECT_LT(metrics.vSet, 1.3);
}

TEST(IvSweep, HysteresisWindowIsLarge) {
  const auto loop = sweepIV(params(), quickSweep());
  const auto metrics = analyseLoop(params(), loop);
  EXPECT_GT(metrics.hysteresis, 10.0);
}

TEST(IvSweep, ResetHappensOnNegativeBranch) {
  const auto loop = sweepIV(params(), quickSweep());
  const auto metrics = analyseLoop(params(), loop);
  EXPECT_LT(metrics.vReset, -0.3);
}

TEST(IvSweep, CurrentSignFollowsVoltage) {
  const auto loop = sweepIV(params(), quickSweep());
  for (const auto& p : loop) {
    if (p.voltage > 0.01) EXPECT_GE(p.current, 0.0) << "V=" << p.voltage;
    if (p.voltage < -0.01) EXPECT_LE(p.current, 0.0) << "V=" << p.voltage;
  }
}

TEST(IvSweep, FilamentHeatsDuringSwitching) {
  const auto loop = sweepIV(params(), quickSweep());
  double tMax = 0.0;
  for (const auto& p : loop) tMax = std::max(tMax, p.temperatureK);
  EXPECT_GT(tMax, 400.0);  // Joule heating during SET/RESET
}

TEST(IvSweep, SlowerSweepSwitchesAtLowerVoltage) {
  // Voltage-time dilemma: more time under bias -> earlier SET.
  IvSweepOptions fast = quickSweep();
  fast.rampRate = 1e8;
  IvSweepOptions slow = quickSweep();
  slow.rampRate = 1e6;
  const auto vFast = analyseLoop(params(), sweepIV(params(), fast)).vSet;
  const auto vSlow = analyseLoop(params(), sweepIV(params(), slow)).vSet;
  ASSERT_GT(vFast, 0.0);
  ASSERT_GT(vSlow, 0.0);
  EXPECT_LT(vSlow, vFast);
}

TEST(IvSweep, Validation) {
  IvSweepOptions bad = quickSweep();
  bad.vMax = -1.0;
  EXPECT_THROW(sweepIV(params(), bad), std::invalid_argument);
  bad = quickSweep();
  bad.vMin = 0.5;
  EXPECT_THROW(sweepIV(params(), bad), std::invalid_argument);
  bad = quickSweep();
  bad.rampRate = 0.0;
  EXPECT_THROW(sweepIV(params(), bad), std::invalid_argument);
  bad = quickSweep();
  bad.samples = 2;
  EXPECT_THROW(sweepIV(params(), bad), std::invalid_argument);
}

TEST(IvSweep, EmptyLoopAnalysisIsBenign) {
  const auto metrics = analyseLoop(params(), {});
  EXPECT_FALSE(metrics.switchedToLrs);
  EXPECT_DOUBLE_EQ(metrics.vSet, 0.0);
}

}  // namespace
}  // namespace nh::jart
