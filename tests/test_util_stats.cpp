#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace nh::util {
namespace {

TEST(Stats, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({5.0}), 0.0);
  // Var of {2, 4, 4, 4, 5, 5, 7, 9} with n-1 denominator: 32/7.
  EXPECT_DOUBLE_EQ(variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0);
}

TEST(Stats, QuantileType7KnownAnswers) {
  const std::vector<double> sorted{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantileSorted(sorted, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantileSorted(sorted, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantileSorted(sorted, 0.5), 25.0);   // h = 1.5
  EXPECT_DOUBLE_EQ(quantileSorted(sorted, 0.25), 17.5);  // h = 0.75
  EXPECT_DOUBLE_EQ(quantileSorted({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantileSorted({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(quantileSorted({7.0}, 1.0), 7.0);
}

TEST(Stats, QuantileUnsortedOverloadSorts) {
  EXPECT_DOUBLE_EQ(quantile({40.0, 10.0, 30.0, 20.0}, 0.5), 25.0);
}

TEST(Stats, QuantileValidation) {
  EXPECT_THROW(quantileSorted({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantileSorted({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(quantileSorted({1.0}, 1.1), std::invalid_argument);
}

TEST(Stats, NormalQuantileKnownValues) {
  // Reference values to ~1e-6 (Acklam's approximation is good to ~1e-9).
  EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normalQuantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normalQuantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(normalQuantile(0.995), 2.575829, 1e-5);
  EXPECT_NEAR(normalQuantile(0.84134474), 1.0, 1e-5);
  // Tail branch (p < 0.02425).
  EXPECT_NEAR(normalQuantile(0.001), -3.090232, 1e-4);
  EXPECT_THROW(normalQuantile(0.0), std::invalid_argument);
  EXPECT_THROW(normalQuantile(1.0), std::invalid_argument);
}

TEST(Stats, WilsonIntervalKnownAnswer) {
  // 8/10 at 95%: Wilson gives [0.4901, 0.9433] (to 4 decimals).
  const Interval ci = wilsonInterval(8, 10, 0.95);
  EXPECT_NEAR(ci.lo, 0.4901, 5e-4);
  EXPECT_NEAR(ci.hi, 0.9433, 5e-4);
}

TEST(Stats, WilsonIntervalEdgeCases) {
  // 0/n and n/n stay inside [0, 1] and are non-degenerate (the reason to
  // prefer Wilson over Wald for flip rates near 0 or 1).
  const Interval zero = wilsonInterval(0, 20);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  EXPECT_LT(zero.hi, 0.25);
  const Interval full = wilsonInterval(20, 20);
  EXPECT_DOUBLE_EQ(full.hi, 1.0);
  EXPECT_LT(full.lo, 1.0);
  EXPECT_GT(full.lo, 0.75);
  // Wider confidence -> wider interval.
  EXPECT_LT(wilsonInterval(8, 10, 0.99).lo, wilsonInterval(8, 10, 0.95).lo);
  EXPECT_THROW(wilsonInterval(1, 0), std::invalid_argument);
  EXPECT_THROW(wilsonInterval(5, 4), std::invalid_argument);
  EXPECT_THROW(wilsonInterval(1, 10, 0.0), std::invalid_argument);
  EXPECT_THROW(wilsonInterval(1, 10, 1.0), std::invalid_argument);
}

TEST(Stats, BootstrapIntervalBracketsTheEstimateAndIsDeterministic) {
  std::vector<double> samples;
  for (int i = 1; i <= 40; ++i) samples.push_back(100.0 * i);
  const double med = quantile(samples, 0.5);
  const Interval a = bootstrapQuantileInterval(samples, 0.5, 300, 2026);
  const Interval b = bootstrapQuantileInterval(samples, 0.5, 300, 2026);
  EXPECT_EQ(a, b);  // counter-based streams: exactly reproducible
  EXPECT_LE(a.lo, med);
  EXPECT_GE(a.hi, med);
  EXPECT_GT(a.hi, a.lo);
  // A different seed gives a (slightly) different interval but still a
  // bracket.
  const Interval c = bootstrapQuantileInterval(samples, 0.5, 300, 77);
  EXPECT_LE(c.lo, med);
  EXPECT_GE(c.hi, med);
}

TEST(Stats, BootstrapIntervalSingletonCollapses) {
  const Interval ci = bootstrapQuantileInterval({42.0}, 0.5, 50, 1);
  EXPECT_DOUBLE_EQ(ci.lo, 42.0);
  EXPECT_DOUBLE_EQ(ci.hi, 42.0);
}

TEST(Stats, BootstrapIntervalValidation) {
  EXPECT_THROW(bootstrapQuantileInterval({}, 0.5, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(bootstrapQuantileInterval({1.0}, 0.5, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(bootstrapQuantileInterval({1.0}, 1.5, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(bootstrapQuantileInterval({1.0}, 0.5, 10, 1, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace nh::util
