#include "util/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/linsolve.hpp"

namespace nh::util {
namespace {

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(defaultThreadCount(), 1u);
}

TEST(ThreadPool, SizeMatchesRequestedThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, SubmitAndWaitRunsEveryJob) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForVisitsEachIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    const std::size_t count = 257;  // deliberately not a multiple of threads
    std::vector<std::atomic<int>> visits(count);
    parallelFor(count, [&visits](std::size_t i) { visits[i].fetch_add(1); },
                threads);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << ", " << threads
                                     << " threads";
    }
  }
}

TEST(ThreadPool, ParallelForZeroAndOneCounts) {
  int calls = 0;
  parallelFor(0, [&calls](std::size_t) { ++calls; }, 4);
  EXPECT_EQ(calls, 0);
  parallelFor(1, [&calls](std::size_t) { ++calls; }, 4);
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, SlotIndexedResultsAreThreadCountInvariant) {
  // The sweep-harness contract: bodies write f(i) into slot i, so the result
  // vector is identical however the iterations were scheduled.
  auto run = [](std::size_t threads) {
    std::vector<double> out(1000);
    parallelFor(out.size(),
                [&out](std::size_t i) {
                  out[i] = static_cast<double>(i) * 1.5 + 1.0;
                },
                threads);
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(7));
}

TEST(ThreadPool, ParallelForPropagatesTheFirstException) {
  EXPECT_THROW(
      parallelFor(100,
                  [](std::size_t i) {
                    if (i == 42) throw std::runtime_error("boom");
                  },
                  4),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForPassesSolverErrorThroughUnwrapped) {
  // The structured diagnosis must survive the barrier on both the serial
  // and the pooled path: callers read iterations()/residualNorm() off the
  // concrete type, so wrapping it in a plain runtime_error would erase
  // exactly what SolverError exists to carry.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    try {
      parallelFor(50,
                  [](std::size_t i) {
                    if (i == 7) {
                      throw SolverError("test.solve", "diverged", 12, 3.5);
                    }
                  },
                  threads);
      FAIL() << "expected a SolverError (" << threads << " threads)";
    } catch (const SolverError& e) {
      EXPECT_EQ(e.solve(), "test.solve");
      EXPECT_EQ(e.iterations(), 12u);
      EXPECT_DOUBLE_EQ(e.residualNorm(), 3.5);
    }
  }
}

TEST(ThreadPool, PoolParallelForUsesWorkers) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  pool.parallelFor(1000, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i));
  });
  EXPECT_EQ(sum.load(), 1000LL * 999LL / 2LL);
}

TEST(ThreadPool, SequentialParallelForCallsReuseThePool) {
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::vector<int> out(50, -1);
    pool.parallelFor(out.size(),
                     [&out](std::size_t i) { out[i] = static_cast<int>(i); });
    const long long expected = 50LL * 49LL / 2LL;
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0LL), expected);
  }
}

TEST(ThreadPool, NestedParallelForOnTheSamePoolCompletes) {
  // A body calling parallelFor on its own pool must not deadlock: the inner
  // loop runs inline on the worker. 4 outer x 25 inner on a 2-worker pool
  // forces every worker into the nested case.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallelFor(4, [&pool, &counter](std::size_t) {
    pool.parallelFor(25, [&counter](std::size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SharedPoolIsUsable) {
  std::atomic<int> counter{0};
  ThreadPool::shared().parallelFor(10,
                                   [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace nh::util
