#include "fem/diffusion.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nh::fem {
namespace {

/// 1-D column of uniform material with the bottom held at T0 and a heat
/// source Q in the top voxel: the analytic steady profile through n voxels
/// of conductance g = kappa*h is T(k) = T0 + Q * (k + 1/2) / g... verified
/// against the finite-volume solution below.
TEST(Diffusion, OneDimensionalColumnMatchesAnalytic) {
  const std::size_t nz = 20;
  const double h = 1e-9;
  const double kappa = 2.0;
  VoxelGrid grid(1, 1, nz, h);

  DiffusionProblem problem;
  problem.grid = &grid;
  problem.coefficient.assign(nz, kappa);
  problem.sourcePerVoxel.assign(nz, 0.0);
  const double q = 1e-6;  // 1 uW into the top voxel
  problem.sourcePerVoxel[nz - 1] = q;
  problem.bottomPlaneDirichlet = true;
  problem.bottomPlaneValue = 300.0;

  const auto sol = solveDiffusion(problem);
  ASSERT_TRUE(sol.converged());

  // Face conductance g = kappa*h; bottom half-cell conductance 2*kappa*h.
  const double g = kappa * h;
  for (std::size_t k = 0; k < nz; ++k) {
    // Heat q flows down through all faces below voxel k.
    double expected = 300.0 + q / (2.0 * g);  // half cell to the boundary
    expected += q * static_cast<double>(k) / g;
    EXPECT_NEAR(sol.field[grid.index(0, 0, k)], expected, expected * 1e-6);
  }
}

TEST(Diffusion, EnergyConservationFluxEqualsSource) {
  // Total flux into the Dirichlet bottom must equal the injected power.
  VoxelGrid grid(6, 6, 6, 2e-9);
  DiffusionProblem problem;
  problem.grid = &grid;
  problem.coefficient.assign(grid.voxelCount(), 1.5);
  problem.sourcePerVoxel.assign(grid.voxelCount(), 0.0);
  problem.sourcePerVoxel[grid.index(3, 3, 4)] = 2e-6;
  problem.bottomPlaneDirichlet = true;
  problem.bottomPlaneValue = 300.0;
  const auto sol = solveDiffusion(problem, {1e-12, 20000});
  ASSERT_TRUE(sol.converged());

  // Flux through the bottom faces: sum over k=0 voxels of 2*kappa*h*(T-T0).
  double flux = 0.0;
  for (std::size_t j = 0; j < grid.ny(); ++j) {
    for (std::size_t i = 0; i < grid.nx(); ++i) {
      const double t = sol.field[grid.index(i, j, 0)];
      flux += 2.0 * 1.5 * grid.voxelSize() * (t - 300.0);
    }
  }
  EXPECT_NEAR(flux, 2e-6, 2e-6 * 1e-5);
}

TEST(Diffusion, SymmetricSourceGivesSymmetricField) {
  VoxelGrid grid(7, 7, 4, 1e-9);
  DiffusionProblem problem;
  problem.grid = &grid;
  problem.coefficient.assign(grid.voxelCount(), 1.0);
  problem.sourcePerVoxel.assign(grid.voxelCount(), 0.0);
  problem.sourcePerVoxel[grid.index(3, 3, 2)] = 1e-6;
  problem.bottomPlaneDirichlet = true;
  problem.bottomPlaneValue = 0.0;
  const auto sol = solveDiffusion(problem, {1e-11, 20000});
  ASSERT_TRUE(sol.converged());
  for (std::size_t k = 0; k < 4; ++k) {
    for (std::size_t d = 1; d <= 3; ++d) {
      const double left = sol.field[grid.index(3 - d, 3, k)];
      const double right = sol.field[grid.index(3 + d, 3, k)];
      const double up = sol.field[grid.index(3, 3 - d, k)];
      const double down = sol.field[grid.index(3, 3 + d, k)];
      EXPECT_NEAR(left, right, 1e-9 * std::max(1.0, left));
      EXPECT_NEAR(up, down, 1e-9 * std::max(1.0, up));
      EXPECT_NEAR(left, up, 1e-9 * std::max(1.0, left));
    }
  }
}

TEST(Diffusion, TemperatureDecaysAwayFromSource) {
  VoxelGrid grid(9, 9, 4, 1e-9);
  DiffusionProblem problem;
  problem.grid = &grid;
  problem.coefficient.assign(grid.voxelCount(), 1.0);
  problem.sourcePerVoxel.assign(grid.voxelCount(), 0.0);
  problem.sourcePerVoxel[grid.index(4, 4, 3)] = 1e-6;
  problem.bottomPlaneDirichlet = true;
  problem.bottomPlaneValue = 300.0;
  const auto sol = solveDiffusion(problem);
  ASSERT_TRUE(sol.converged());
  double previous = sol.field[grid.index(4, 4, 3)];
  for (std::size_t d = 1; d <= 4; ++d) {
    const double t = sol.field[grid.index(4 + d, 4, 3)];
    EXPECT_LT(t, previous);
    EXPECT_GE(t, 300.0 - 1e-9);
    previous = t;
  }
}

TEST(Diffusion, PinnedVoxelsHoldValueAndSourceCurrent) {
  // Potential solve: two pinned plates with a conductive column between.
  VoxelGrid grid(1, 1, 5, 1e-9);
  DiffusionProblem problem;
  problem.grid = &grid;
  problem.coefficient.assign(5, 100.0);
  problem.pins.push_back({grid.index(0, 0, 0), 0.0});
  problem.pins.push_back({grid.index(0, 0, 4), 1.0});
  const auto sol = solveDiffusion(problem, {1e-12, 1000});
  ASSERT_TRUE(sol.converged());
  EXPECT_DOUBLE_EQ(sol.field[grid.index(0, 0, 0)], 0.0);
  EXPECT_DOUBLE_EQ(sol.field[grid.index(0, 0, 4)], 1.0);
  // Linear ramp between the plates.
  EXPECT_NEAR(sol.field[grid.index(0, 0, 2)], 0.5, 1e-9);

  // Current from the top pin: g = sigma*h = 1e-7 S per face, 4 faces in
  // series between pins -> I = V * g / 4.
  const double current = sol.fluxFromPins(problem, {grid.index(0, 0, 4)});
  EXPECT_NEAR(current, 1.0 * 100.0 * 1e-9 / 4.0, 1e-12);

  // Dissipation sums to V*I.
  const auto power = sol.dissipationPerVoxel(problem);
  double total = 0.0;
  for (const double p : power) total += p;
  EXPECT_NEAR(total, current * 1.0, current * 1e-9);
}

TEST(Diffusion, ConflictingPinsThrow) {
  VoxelGrid grid(2, 1, 1, 1e-9);
  DiffusionProblem problem;
  problem.grid = &grid;
  problem.coefficient.assign(2, 1.0);
  problem.pins.push_back({0, 1.0});
  problem.pins.push_back({0, 2.0});
  EXPECT_THROW(solveDiffusion(problem), std::invalid_argument);
}

TEST(Diffusion, PureNeumannRejected) {
  VoxelGrid grid(2, 2, 2, 1e-9);
  DiffusionProblem problem;
  problem.grid = &grid;
  problem.coefficient.assign(8, 1.0);
  EXPECT_THROW(solveDiffusion(problem), std::invalid_argument);
}

TEST(Diffusion, WrongSizesRejected) {
  VoxelGrid grid(2, 2, 2, 1e-9);
  DiffusionProblem problem;
  problem.grid = &grid;
  problem.coefficient.assign(3, 1.0);  // wrong size
  problem.bottomPlaneDirichlet = true;
  EXPECT_THROW(solveDiffusion(problem), std::invalid_argument);
}

TEST(Diffusion, WarmStartConvergesFaster) {
  VoxelGrid grid(10, 10, 8, 1e-9);
  DiffusionProblem problem;
  problem.grid = &grid;
  problem.coefficient.assign(grid.voxelCount(), 1.0);
  problem.sourcePerVoxel.assign(grid.voxelCount(), 0.0);
  problem.sourcePerVoxel[grid.index(5, 5, 6)] = 1e-6;
  problem.bottomPlaneDirichlet = true;
  problem.bottomPlaneValue = 300.0;

  const auto cold = solveDiffusion(problem);
  ASSERT_TRUE(cold.converged());
  const auto warm = solveDiffusion(problem, {}, &cold.field);
  ASSERT_TRUE(warm.converged());
  EXPECT_LT(warm.stats.iterations, cold.stats.iterations / 2 + 2);
}

}  // namespace
}  // namespace nh::fem
