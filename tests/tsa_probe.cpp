/// \file tsa_probe.cpp
/// Negative-compile probe for the thread-safety analysis -- this file MUST
/// FAIL to compile under clang with -Werror=thread-safety-analysis.
///
/// It is deliberately named outside the tests/test_*.cpp glob: no CMake
/// target compiles it. scripts/check-tsa-probe compiles it directly and
/// *inverts* the exit code, which is how the smoke check in
/// docs/static-analysis.md works: strip NH_GUARDED_BY(mutex_) off
/// ThreadPool::jobs_ and this probe starts compiling cleanly, so the gate
/// fails. An annotation that can be deleted without breaking this probe is
/// an annotation the analysis was not actually checking.
///
/// ThreadPool befriends ThreadPoolTsaProbe for exactly this file; the friend
/// grant buys field *visibility*, not lock exemption -- the guarded-by
/// violation below is still diagnosed.

#include "util/threadpool.hpp"

namespace nh::util {

class ThreadPoolTsaProbe {
 public:
  static std::size_t readJobsUnlocked(ThreadPool& pool) {
    // ERROR (intended): reading jobs_ without holding mutex_. If clang
    // accepts this line, the NH_GUARDED_BY(mutex_) annotation on jobs_ is
    // gone or inert.
    return pool.jobs_.size();
  }
};

std::size_t tsaProbeEntry(ThreadPool& pool) {
  return ThreadPoolTsaProbe::readJobsUnlocked(pool);
}

}  // namespace nh::util
