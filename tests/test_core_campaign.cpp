#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/experiment_registry.hpp"
#include "util/cancellation.hpp"
#include "util/faultinject.hpp"
#include "util/json.hpp"

namespace nh::core {
namespace {

using nh::util::CancellationScope;
using nh::util::CancellationSource;
using nh::util::CancelledError;

/// Small, fast campaign: a 3x3 array at 10 nm spacing flips in O(10^2)
/// pulses, so a trial costs ~a millisecond.
CampaignConfig quickCampaign(std::size_t trials = 12) {
  CampaignConfig cfg;
  cfg.base.rows = 3;
  cfg.base.cols = 3;
  cfg.base.spacing = 10e-9;
  cfg.trials = trials;
  cfg.budget = 100'000;
  cfg.threads = 1;
  cfg.bootstrapResamples = 50;
  return cfg;
}

// ---- the stream-plan reproducibility contract -----------------------------

TEST(Campaign, BitIdenticalAcrossThreadCounts) {
  CampaignConfig cfg = quickCampaign();
  cfg.threads = 1;
  const CampaignResult serial = runCampaign(cfg);
  cfg.threads = 4;
  const CampaignResult four = runCampaign(cfg);
  cfg.threads = 16;
  const CampaignResult sixteen = runCampaign(cfg);
  EXPECT_EQ(serial, four);    // CampaignResult::operator== is exact
  EXPECT_EQ(serial, sixteen);
}

TEST(Campaign, BitIdenticalAcrossBatchSizes) {
  CampaignConfig cfg = quickCampaign();
  cfg.threads = 4;
  cfg.batchSize = 1;
  const CampaignResult perTrial = runCampaign(cfg);
  cfg.batchSize = 64;
  const CampaignResult coarse = runCampaign(cfg);
  cfg.batchSize = 5;  // trials not divisible by the batch
  const CampaignResult ragged = runCampaign(cfg);
  EXPECT_EQ(perTrial, coarse);
  EXPECT_EQ(perTrial, ragged);
}

TEST(Campaign, HealthMatrixBitIdenticalAcrossThreadsAndBatches) {
  CampaignConfig cfg = quickCampaign(8);
  cfg.recordCellHealth = true;
  cfg.threads = 1;
  const CampaignResult serial = runCampaign(cfg);
  cfg.threads = 4;
  cfg.batchSize = 1;
  const CampaignResult parallel = runCampaign(cfg);
  EXPECT_EQ(serial, parallel);
  ASSERT_EQ(serial.cellDisturbRate.size(), 9u);
}

// ---- statistics -----------------------------------------------------------

TEST(Campaign, ConfidenceIntervalsBracketTheEstimates) {
  const CampaignResult r = runCampaign(quickCampaign());
  EXPECT_EQ(r.trials, 12u);
  EXPECT_EQ(r.trialsOk, 12u);
  EXPECT_EQ(r.flips, 12u);  // 10 nm fast regime: every trial flips
  EXPECT_DOUBLE_EQ(r.flipRate, 1.0);
  EXPECT_LE(r.flipRateCI.lo, r.flipRate);
  EXPECT_GE(r.flipRateCI.hi, r.flipRate);
  EXPECT_GT(r.flipRateCI.lo, 0.5);  // 12/12 at 95%: lo ~ 0.76
  EXPECT_DOUBLE_EQ(r.flipRateCI.hi, 1.0);
  EXPECT_LE(r.p10Pulses, r.medianPulses);
  EXPECT_LE(r.medianPulses, r.p90Pulses);
  EXPECT_LE(r.medianPulsesCI.lo, r.medianPulses);
  EXPECT_GE(r.medianPulsesCI.hi, r.medianPulses);
  EXPECT_EQ(r.pulsesPerFlip.size(), 12u);
}

TEST(Campaign, NoFlipsGivesDefinedDegenerateStatistics) {
  CampaignConfig cfg = quickCampaign(4);
  cfg.budget = 5;  // far below any flip threshold
  const CampaignResult r = runCampaign(cfg);
  EXPECT_EQ(r.flips, 0u);
  EXPECT_DOUBLE_EQ(r.flipRate, 0.0);
  EXPECT_DOUBLE_EQ(r.flipRateCI.lo, 0.0);
  EXPECT_GT(r.flipRateCI.hi, 0.0);  // Wilson: 0/4 still has upside mass
  EXPECT_TRUE(r.pulsesPerFlip.empty());
  EXPECT_DOUBLE_EQ(r.p10Pulses, 0.0);
  EXPECT_DOUBLE_EQ(r.medianPulses, 0.0);
  EXPECT_DOUBLE_EQ(r.p90Pulses, 0.0);
  EXPECT_EQ(r.medianPulsesCI, (nh::util::Interval{0.0, 0.0}));
  EXPECT_DOUBLE_EQ(r.spreadDecades, 0.0);
}

TEST(Campaign, SingleTrialCollapsesQuantiles) {
  const CampaignResult r = runCampaign(quickCampaign(1));
  ASSERT_EQ(r.flips, 1u);
  EXPECT_DOUBLE_EQ(r.p10Pulses, r.medianPulses);
  EXPECT_DOUBLE_EQ(r.p90Pulses, r.medianPulses);
  EXPECT_EQ(r.medianPulsesCI,
            (nh::util::Interval{r.medianPulses, r.medianPulses}));
  EXPECT_DOUBLE_EQ(r.spreadDecades, 0.0);
}

TEST(Campaign, Validation) {
  CampaignConfig cfg = quickCampaign();
  cfg.trials = 0;
  EXPECT_THROW(runCampaign(cfg), std::invalid_argument);
  cfg = quickCampaign();
  cfg.batchSize = 0;
  EXPECT_THROW(runCampaign(cfg), std::invalid_argument);
  cfg = quickCampaign();
  cfg.confidence = 1.0;
  EXPECT_THROW(runCampaign(cfg), std::invalid_argument);
}

TEST(Campaign, HealthMatrixConcentratesOnNeighbours) {
  CampaignConfig cfg = quickCampaign(6);
  cfg.base.rows = 5;
  cfg.base.cols = 5;
  cfg.recordCellHealth = true;
  const CampaignResult r = runCampaign(cfg);
  ASSERT_EQ(r.healthRows, 5u);
  ASSERT_EQ(r.healthCols, 5u);
  ASSERT_EQ(r.cellDisturbRate.size(), 25u);
  auto rate = [&](std::size_t row, std::size_t col) {
    return r.cellDisturbRate[row * 5 + col];
  };
  // The aggressor itself is excluded by definition.
  EXPECT_DOUBLE_EQ(rate(2, 2), 0.0);
  // Word-line neighbours of the centre see the strongest coupling; far
  // corners are essentially untouched.
  EXPECT_GT(rate(2, 1), rate(0, 0));
  EXPECT_GT(rate(2, 3), rate(4, 4));
  EXPECT_GT(rate(2, 1), 0.5);
  EXPECT_LT(rate(0, 0), 0.2);
}

// ---- fault tolerance x campaigns ------------------------------------------

class CampaignFaults : public ::testing::Test {
 protected:
  void SetUp() override { nh::util::faultinject::clearAll(); }
  void TearDown() override { nh::util::faultinject::clearAll(); }
};

TEST_F(CampaignFaults, InjectedFaultIsIsolatedToItsTrial) {
  namespace fi = nh::util::faultinject;
  CampaignConfig cfg = quickCampaign(6);
  cfg.threads = 2;
  cfg.batchSize = 1;
  const CampaignResult reference = runCampaign(cfg);
  ASSERT_EQ(reference.trialsOk, 6u);

  // Fail the first dense factorization inside trial 2 only; the per-trial
  // faultinject scope makes the match deterministic at any thread count.
  fi::arm("linsolve.dense_lu", 1, "trial:2");
  cfg.onTrialFailure = TrialFailurePolicy::Skip;
  const CampaignResult degraded = runCampaign(cfg);
  EXPECT_TRUE(fi::fired("linsolve.dense_lu"));

  EXPECT_EQ(degraded.trialsFailed, 1u);
  EXPECT_EQ(degraded.trialsOk, 5u);
  ASSERT_EQ(degraded.outcomes.size(), 6u);
  EXPECT_EQ(degraded.outcomes[2].status, TrialOutcome::Status::Failed);
  EXPECT_FALSE(degraded.outcomes[2].error.empty());
  for (const std::size_t trial : {0u, 1u, 3u, 4u, 5u}) {
    EXPECT_EQ(degraded.outcomes[trial], reference.outcomes[trial])
        << "trial " << trial;
  }
  // Statistics are over the surviving trials.
  EXPECT_EQ(degraded.flips, 5u);
  EXPECT_DOUBLE_EQ(degraded.flipRate, 1.0);
}

TEST_F(CampaignFaults, AbortPolicyPropagatesTheFault) {
  namespace fi = nh::util::faultinject;
  fi::arm("linsolve.dense_lu", 1, "trial:1");
  CampaignConfig cfg = quickCampaign(4);
  cfg.onTrialFailure = TrialFailurePolicy::Abort;  // the default
  EXPECT_THROW(runCampaign(cfg), std::exception);
}

TEST_F(CampaignFaults, CancellationMidCampaignUnwindsCleanly) {
  CancellationSource source;
  CampaignConfig cfg = quickCampaign(16);
  cfg.threads = 2;
  cfg.batchSize = 1;
  cfg.onTrialComplete = [&](std::size_t, std::size_t completed) {
    if (completed == 3) source.cancel();
  };
  const CancellationScope scope(source.token());
  EXPECT_THROW(runCampaign(cfg), CancelledError);
  // The ambient scope unwound; a fresh campaign afterwards runs fine.
}

TEST_F(CampaignFaults, FreshCampaignAfterCancellationSucceeds) {
  const CampaignResult r = runCampaign(quickCampaign(2));
  EXPECT_EQ(r.trialsOk, 2u);
}

// ---- blinded A/B ----------------------------------------------------------

BlindedAbStudy quickBlindStudy() {
  CampaignConfig attack = quickCampaign(4);
  CampaignConfig defended = attack;
  defended.scheme = xbar::BiasScheme::Third;
  defended.budget = 2'000;  // V/3 cannot flip within this budget
  return BlindedAbStudy("attack (V/2)", attack, "defended (V/3)", defended,
                        /*salt=*/1234);
}

TEST(BlindedAb, LabelsAreUnreachableBeforeUnblind) {
  BlindedAbStudy study = quickBlindStudy();
  const auto names = BlindedAbStudy::armNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "arm A");
  EXPECT_EQ(names[1], "arm B");
  EXPECT_FALSE(study.unblinded());
  EXPECT_THROW(study.trueLabel("arm A"), std::logic_error);
  EXPECT_THROW(study.trueLabel("arm B"), std::logic_error);
  EXPECT_THROW(study.analysisRecord(), std::logic_error);
  study.run();
  // Still blinded after running: results are reachable, labels are not.
  EXPECT_NO_THROW(study.result("arm A"));
  EXPECT_THROW(study.trueLabel("arm A"), std::logic_error);
  EXPECT_THROW(study.analysisRecord(), std::logic_error);
}

TEST(BlindedAb, UnblindFreezesTheRecordFirst) {
  BlindedAbStudy study = quickBlindStudy();
  study.run();
  const auto mapping = study.unblind();
  EXPECT_TRUE(study.unblinded());
  ASSERT_EQ(mapping.size(), 2u);
  // The two registered labels both appear exactly once.
  std::vector<std::string> labels;
  for (const auto& [arm, label] : mapping) labels.push_back(label);
  std::sort(labels.begin(), labels.end());
  EXPECT_EQ(labels[0], "attack (V/2)");
  EXPECT_EQ(labels[1], "defended (V/3)");
  // The frozen record speaks only in opaque arm names -- never labels.
  const std::string& record = study.analysisRecord();
  EXPECT_NE(record.find("arm_a"), std::string::npos);
  EXPECT_NE(record.find("arm_b"), std::string::npos);
  EXPECT_EQ(record.find("V/2"), std::string::npos);
  EXPECT_EQ(record.find("V/3"), std::string::npos);
  EXPECT_EQ(record.find("attack"), std::string::npos);
  EXPECT_EQ(record.find("defended"), std::string::npos);
  // Idempotent, and the record does not change after the reveal.
  const std::string frozen = record;
  EXPECT_EQ(study.unblind(), mapping);
  EXPECT_EQ(study.analysisRecord(), frozen);
}

TEST(BlindedAb, ArmsSeparateAndTheMappingIsDeterministic) {
  BlindedAbStudy a = quickBlindStudy();
  a.run();
  EXPECT_TRUE(a.separated());
  // The attack arm flips everything, the defended arm nothing, so the delta
  // magnitude is 1 -- its sign depends only on the salted assignment.
  EXPECT_DOUBLE_EQ(std::abs(a.flipRateDelta()), 1.0);
  const auto mappingA = a.unblind();

  BlindedAbStudy b = quickBlindStudy();
  b.run();
  EXPECT_EQ(b.unblind(), mappingA);  // same salt -> same assignment

  EXPECT_THROW(a.result("arm C"), std::invalid_argument);
}

TEST(BlindedAb, RunIsRequiredAndLabelsMustDiffer) {
  BlindedAbStudy study = quickBlindStudy();
  EXPECT_THROW(study.result("arm A"), std::logic_error);
  EXPECT_THROW(study.flipRateDelta(), std::logic_error);
  EXPECT_THROW(study.separated(), std::logic_error);
  EXPECT_THROW(study.unblind(), std::logic_error);
  const CampaignConfig cfg = quickCampaign(1);
  EXPECT_THROW(BlindedAbStudy("same", cfg, "same", cfg, 1),
               std::invalid_argument);
}

// ---- registered campaign experiments --------------------------------------

/// Serialize just the data rows (the full toJson document embeds run
/// metadata -- thread count, resume counters -- that legitimately differs
/// between otherwise identical runs).
std::string rowsJson(const ExperimentResult& result) {
  nh::util::JsonWriter w;
  w.beginArray();
  for (const auto& row : result.rows) {
    w.beginArray();
    for (const auto& cell : row) writeCellJson(w, cell);
    w.endArray();
  }
  w.endArray();
  return w.str();
}

TEST(CampaignExperiments, FlipRateJsonIsByteIdenticalAcrossThreads) {
  RunOptions options;
  options.fast = true;
  options.axisOverrides = {{"trials", {8.0}}};
  options.threads = 1;
  const ExperimentResult serial =
      runExperiment(makeExperiment("campaign_flip_rate"), options);
  options.threads = 4;
  const ExperimentResult parallel =
      runExperiment(makeExperiment("campaign_flip_rate"), options);
  ASSERT_TRUE(serial.complete());
  ASSERT_TRUE(parallel.complete());
  EXPECT_EQ(serial.rows, parallel.rows);
  EXPECT_EQ(rowsJson(serial), rowsJson(parallel));  // byte-identical data
}

TEST(CampaignExperiments, AblationVariabilitySerialPathJsonIsThreadInvariant) {
  // The legacy sequential RNG plan stays serial *within* a point; the grid
  // points still run on the pool. 1-vs-4-thread documents must match byte
  // for byte.
  RunOptions options;
  options.fast = true;
  options.threads = 1;
  const ExperimentResult serial =
      runExperiment(makeExperiment("ablation_variability"), options);
  options.threads = 4;
  const ExperimentResult parallel =
      runExperiment(makeExperiment("ablation_variability"), options);
  ASSERT_TRUE(serial.complete());
  EXPECT_EQ(serial.rows, parallel.rows);
  EXPECT_EQ(rowsJson(serial), rowsJson(parallel));
}

TEST(CampaignExperiments, BlindExperimentNeverEmitsLabelsWithoutSeparation) {
  RunOptions options;
  options.fast = true;
  options.threads = 2;
  const ExperimentResult r =
      runExperiment(makeExperiment("campaign_defense_blind"), options);
  ASSERT_TRUE(r.complete());
  ASSERT_EQ(r.rows.size(), 2u);
  // Column order: arm, trials, flip_rate, flip_lo, flip_hi, separated, label.
  EXPECT_EQ(r.rows[0][0], ResultValue::str("arm A"));
  EXPECT_EQ(r.rows[1][0], ResultValue::str("arm B"));
  // The arms must separate at 95% -- the defence works within the budget.
  EXPECT_DOUBLE_EQ(r.rows[0][5].number, 1.0);
  EXPECT_DOUBLE_EQ(r.rows[1][5].number, 1.0);
  // Exactly one arm is the defended one, and it is the one that never flips.
  const bool armADefended =
      r.rows[0][6].text.find("defended") != std::string::npos;
  const std::size_t defended = armADefended ? 0 : 1;
  const std::size_t attack = 1 - defended;
  EXPECT_NE(r.rows[attack][6].text.find("attack"), std::string::npos);
  EXPECT_DOUBLE_EQ(r.rows[defended][2].number, 0.0);
  EXPECT_DOUBLE_EQ(r.rows[attack][2].number, 1.0);
}

TEST(CampaignExperiments, InterruptedCampaignResumesBitIdentically) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "nh_ckpt_campaign";
  std::filesystem::remove_all(dir);

  RunOptions options;
  options.fast = true;
  options.threads = 1;  // deterministic settle order for the mid-run cancel
  // Two grid points so there is something left to resume.
  options.axisOverrides = {{"sigma", {0.04, 0.06}}, {"trials", {6.0}}};

  const ExperimentResult reference =
      runExperiment(makeExperiment("campaign_flip_rate"), options);
  ASSERT_TRUE(reference.complete());
  ASSERT_EQ(reference.rows.size(), 2u);

  CancellationSource source;
  RunOptions interruptedOptions = options;
  interruptedOptions.checkpointDir = dir;
  interruptedOptions.cancel = source.token();
  interruptedOptions.onPointComplete = [&](std::size_t, const PointOutcome&,
                                           std::size_t completed) {
    if (completed == 1) source.cancel();
  };
  const ExperimentResult interrupted = runExperiment(
      makeExperiment("campaign_flip_rate"), interruptedOptions);
  EXPECT_FALSE(interrupted.complete());
  EXPECT_EQ(interrupted.pointsOk, 1u);

  RunOptions resumeOptions = options;
  resumeOptions.checkpointDir = dir;
  resumeOptions.resume = true;
  const ExperimentResult resumed =
      runExperiment(makeExperiment("campaign_flip_rate"), resumeOptions);
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.pointsResumed, 1u);
  ASSERT_EQ(resumed.rows.size(), reference.rows.size());
  for (std::size_t row = 0; row < reference.rows.size(); ++row) {
    EXPECT_EQ(resumed.rows[row], reference.rows[row]) << "row " << row;
  }
  EXPECT_EQ(rowsJson(resumed), rowsJson(reference));
}

}  // namespace
}  // namespace nh::core
