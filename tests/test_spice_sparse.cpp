/// Sparse-vs-dense MNA stamping equivalence. NewtonOptions::sparseMinUnknowns
/// picks the matrix target (dense Jacobian + dense LU below, triplet-stream
/// CSR + Gilbert-Peierls LU at or above); these tests force both paths over
/// every netlist shape the seed suite builds -- linear dividers, stacked
/// sources, diodes, gmin-only floating nodes, and the distributed-segment
/// crossbar (DC and transient) -- and require the same solution. The sparse
/// LU pivots in a different order than the dense factorisation, so the
/// comparison is within Newton/solver tolerance rather than bit-exact.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "spice/analysis.hpp"
#include "spice/elements.hpp"
#include "xbar/array.hpp"
#include "xbar/fastsim.hpp"
#include "xbar/scheme.hpp"
#include "xbar/spicesim.hpp"

namespace nh::spice {
namespace {

NewtonOptions denseForced() {
  NewtonOptions opt;
  opt.sparseMinUnknowns = SIZE_MAX;
  return opt;
}

NewtonOptions sparseForced() {
  NewtonOptions opt;
  opt.sparseMinUnknowns = 0;
  return opt;
}

/// Solve the circuit built by \p build twice (fresh circuit each time, since
/// nonlinear elements keep state) and compare the full solution vectors.
template <typename BuildFn>
void expectDcEquivalence(BuildFn build, double tol = 1e-9) {
  Circuit dense;
  build(dense);
  const SolveResult refResult = solveDc(dense, denseForced());
  ASSERT_TRUE(refResult.converged);

  Circuit sparse;
  build(sparse);
  const SolveResult sparseResult = solveDc(sparse, sparseForced());
  ASSERT_TRUE(sparseResult.converged);

  ASSERT_EQ(refResult.x.size(), sparseResult.x.size());
  for (std::size_t i = 0; i < refResult.x.size(); ++i) {
    EXPECT_NEAR(sparseResult.x[i], refResult.x[i],
                tol * std::max(1.0, std::fabs(refResult.x[i])))
        << "unknown " << i;
  }
}

TEST(SparseStamping, ResistorDividerMatchesDense) {
  expectDcEquivalence([](Circuit& ckt) {
    const NodeId in = ckt.node("in");
    const NodeId mid = ckt.node("mid");
    ckt.emplace<VoltageSource>("V1", in, ckt.ground(), 10.0);
    ckt.emplace<Resistor>("R1", in, mid, 1000.0);
    ckt.emplace<Resistor>("R2", mid, ckt.ground(), 3000.0);
  });
}

TEST(SparseStamping, StackedSourcesAndCurrentSourceMatchDense) {
  expectDcEquivalence([](Circuit& ckt) {
    const NodeId a = ckt.node("a");
    const NodeId b = ckt.node("b");
    const NodeId n = ckt.node("n");
    ckt.emplace<VoltageSource>("V1", a, ckt.ground(), 1.0);
    ckt.emplace<VoltageSource>("V2", b, a, 2.0);
    ckt.emplace<Resistor>("RL", b, ckt.ground(), 1e4);
    ckt.emplace<CurrentSource>("I1", ckt.ground(), n, 1e-3);
    ckt.emplace<Resistor>("R1", n, ckt.ground(), 2000.0);
  });
}

TEST(SparseStamping, NonlinearDiodeNetworkMatchesDense) {
  // Forward and reverse diodes in one netlist: the sparse path must track
  // the dense Newton iteration through the exponential.
  expectDcEquivalence([](Circuit& ckt) {
    const NodeId in = ckt.node("in");
    const NodeId d = ckt.node("d");
    const NodeId rn = ckt.node("rn");
    ckt.emplace<VoltageSource>("V1", in, ckt.ground(), 5.0);
    ckt.emplace<Resistor>("R1", in, d, 1000.0);
    ckt.emplace<Diode>("D1", d, ckt.ground());
    ckt.emplace<Resistor>("R2", in, rn, 1000.0);
    ckt.emplace<Diode>("D2", ckt.ground(), rn);  // reverse-biased
  });
}

TEST(SparseStamping, FloatingNodeGminOnlyRowMatchesDense) {
  // A never-connected node leaves an all-gmin row: the weakest diagonal the
  // stamper produces, and a pivoting stress for the sparse LU.
  expectDcEquivalence([](Circuit& ckt) {
    const NodeId a = ckt.node("a");
    ckt.node("floating");
    ckt.emplace<VoltageSource>("V1", a, ckt.ground(), 1.0);
    ckt.emplace<Resistor>("R1", a, ckt.ground(), 1000.0);
  });
}

TEST(SparseStamping, DistributedCrossbarDcMatchesDense) {
  // The real seed netlist: SpiceCrossbar's distributed-segment crossbar
  // with drivers, line-segment chains, and memristor bridges.
  using namespace nh::xbar;
  ArrayConfig cfg;
  cfg.rows = 4;
  cfg.cols = 4;

  const auto solveWith = [&](const NewtonOptions& newton) {
    CrossbarArray array(cfg);
    array.fill(CellState::Hrs);
    array.setState(1, 2, CellState::Lrs);
    SpiceEngineOptions opt;
    opt.traceCells = false;
    SpiceCrossbar spice(array, AlphaTable::analytic(50e-9), opt);
    spice.programDrivers(selectBias(BiasScheme::Half, cfg.rows, cfg.cols, 1, 2, 1.05),
                         {});
    return solveDc(spice.circuit(), newton);
  };

  const SolveResult ref = solveWith(denseForced());
  const SolveResult sparse = solveWith(sparseForced());
  ASSERT_TRUE(ref.converged);
  ASSERT_TRUE(sparse.converged);
  ASSERT_EQ(ref.x.size(), sparse.x.size());
  for (std::size_t i = 0; i < ref.x.size(); ++i) {
    EXPECT_NEAR(sparse.x[i], ref.x[i], 1e-8 * std::max(1.0, std::fabs(ref.x[i])))
        << "unknown " << i;
  }
}

TEST(SparseStamping, CrossbarTransientHammerMatchesDense) {
  // Full transient through the sparse path: same pulse train, same victim
  // drift as the dense seed run within solver tolerance.
  using namespace nh::xbar;
  ArrayConfig cfg;
  cfg.rows = 3;
  cfg.cols = 3;

  const auto runWith = [&](const NewtonOptions& newton, double& victim) {
    CrossbarArray array(cfg);
    array.fill(CellState::Hrs);
    array.setState(1, 1, CellState::Lrs);
    SpiceEngineOptions opt;
    opt.traceCells = false;
    opt.newton = newton;
    SpiceCrossbar spice(array, AlphaTable::analytic(10e-9), opt);
    spice.programHammer(1, 1, 1.05, 50e-9, 100e-9, 3);
    const auto result = spice.run(300e-9);
    victim = array.cell(1, 0).normalisedState();
    return result.completed;
  };

  double victimDense = 0.0, victimSparse = 0.0;
  ASSERT_TRUE(runWith(denseForced(), victimDense));
  ASSERT_TRUE(runWith(sparseForced(), victimSparse));
  EXPECT_GT(victimDense, 0.0);
  EXPECT_NEAR(victimSparse, victimDense,
              1e-6 * std::max(1.0, std::fabs(victimDense)) + 1e-12);
}

TEST(SparseStamping, ChordNewtonSemanticsSurviveTheSparsePath) {
  // reuseFactorization + chord thresholds compose with the sparse target:
  // forcing chord-Newton (reuseMinUnknowns = 0) on the sparse LU must land
  // on the same operating point as classic full Newton on the dense one.
  Circuit chordCkt;
  const auto build = [](Circuit& ckt) {
    const NodeId in = ckt.node("in");
    NodeId prev = in;
    ckt.emplace<VoltageSource>("V1", in, ckt.ground(), 3.0);
    for (int k = 0; k < 4; ++k) {
      const NodeId next = ckt.node("n" + std::to_string(k));
      ckt.emplace<Resistor>("R" + std::to_string(k), prev, next, 500.0);
      ckt.emplace<Diode>("D" + std::to_string(k), next, ckt.ground());
      prev = next;
    }
  };
  build(chordCkt);
  NewtonOptions chordSparse = sparseForced();
  chordSparse.reuseMinUnknowns = 0;
  chordSparse.reuseFactorization = true;
  const SolveResult chord = solveDc(chordCkt, chordSparse);
  ASSERT_TRUE(chord.converged);

  Circuit refCkt;
  build(refCkt);
  NewtonOptions fullDense = denseForced();
  fullDense.reuseFactorization = false;
  const SolveResult ref = solveDc(refCkt, fullDense);
  ASSERT_TRUE(ref.converged);

  ASSERT_EQ(chord.x.size(), ref.x.size());
  for (std::size_t i = 0; i < ref.x.size(); ++i) {
    EXPECT_NEAR(chord.x[i], ref.x[i], 1e-6 * std::max(1.0, std::fabs(ref.x[i])));
  }
}

}  // namespace
}  // namespace nh::spice
