#include <gtest/gtest.h>

#include <cmath>

#include "jart/model.hpp"

namespace nh::jart {
namespace {

Model defaultModel() { return Model(Params::paperDefaults()); }

TEST(Params, DerivedQuantities) {
  const Params p = Params::paperDefaults();
  EXPECT_NEAR(p.filamentArea(), 7.0686e-16, 1e-19);
  EXPECT_GT(p.conductivity(p.nDiscMax), 1000.0 * p.conductivity(p.nDiscMin));
  EXPECT_GT(p.discResistance(p.nDiscMin), 1e6);
  EXPECT_LT(p.discResistance(p.nDiscMax), 5e3);
  EXPECT_GT(p.fieldCoefficient(), 1e3);  // K/V
  EXPECT_NEAR(p.normalisedState(p.nDiscMin), 0.0, 1e-12);
  EXPECT_NEAR(p.normalisedState(p.nDiscMax), 1.0, 1e-12);
  EXPECT_NEAR(p.normalisedState(std::sqrt(p.nDiscMin * p.nDiscMax)), 0.5, 1e-12);
}

TEST(Params, ValidationCatchesBadValues) {
  Params p = Params::paperDefaults();
  p.lDisc = 2e-9;  // breaks lDisc + lPlug == lCell
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = Params::paperDefaults();
  p.nDiscMin = p.nDiscMax;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = Params::paperDefaults();
  p.rThEff = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = Params::paperDefaults();
  p.activationEnergySet = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Params, VariabilityStaysValidAndDeterministic) {
  const Params base = Params::paperDefaults();
  nh::util::Rng rngA(7), rngB(7);
  const Params a = base.withVariability(rngA, 0.05);
  const Params b = base.withVariability(rngB, 0.05);
  EXPECT_DOUBLE_EQ(a.rFilament, b.rFilament);
  EXPECT_NE(a.rFilament, base.rFilament);
  EXPECT_NO_THROW(a.validate());
  EXPECT_THROW(base.withVariability(rngA, -0.1), std::invalid_argument);
}

TEST(Conduction, ZeroVoltageZeroCurrent) {
  const Model m = defaultModel();
  const auto c = m.solveConduction(0.0, 1e25, 300.0);
  EXPECT_DOUBLE_EQ(c.current, 0.0);
  EXPECT_DOUBLE_EQ(c.powerFilament, 0.0);
}

TEST(Conduction, MonotoneInVoltage) {
  const Model m = defaultModel();
  const Params& p = m.params();
  for (const double n : {p.nDiscMin, 1e25, p.nDiscMax}) {
    double prev = 0.0;
    for (double v = 0.05; v <= 1.5; v += 0.05) {
      const auto c = m.solveConduction(v, n, 300.0);
      EXPECT_TRUE(c.converged);
      EXPECT_GT(c.current, prev) << "n=" << n << " v=" << v;
      prev = c.current;
    }
  }
}

TEST(Conduction, MonotoneInState) {
  const Model m = defaultModel();
  double prev = 0.0;
  for (double n = m.params().nDiscMin; n <= m.params().nDiscMax; n *= 3.0) {
    const auto c = m.solveConduction(0.525, n, 300.0);
    EXPECT_GT(c.current, prev);
    prev = c.current;
  }
}

TEST(Conduction, LrsHrsWindowAtReadVoltage) {
  const Model m = defaultModel();
  const Params& p = m.params();
  const double rHrs = m.resistance(0.2, p.nDiscMin, 300.0);
  const double rLrs = m.resistance(0.2, p.nDiscMax, 300.0);
  EXPECT_GT(rHrs, 5e6);    // deep HRS reads in the MOhm range
  EXPECT_LT(rLrs, 1e5);    // deep LRS reads in the 10-kOhm range
  EXPECT_GT(rHrs / rLrs, 50.0);
}

TEST(Conduction, PolarityAsymmetry) {
  // Same |V|: the device is a bipolar (asymmetric) stack.
  const Model m = defaultModel();
  const auto fwd = m.solveConduction(0.6, 1e26, 300.0);
  const auto rev = m.solveConduction(-0.6, 1e26, 300.0);
  EXPECT_GT(fwd.current, 0.0);
  EXPECT_LT(rev.current, 0.0);
  EXPECT_NE(std::fabs(fwd.current / rev.current), 1.0);
}

TEST(Conduction, VoltageDivisionSumsToApplied) {
  const Model m = defaultModel();
  const Params& p = m.params();
  for (const double n : {p.nDiscMin, 4e25, p.nDiscMax}) {
    for (const double v : {0.2, 0.525, 1.05}) {
      const auto c = m.solveConduction(v, n, 300.0);
      const double vOhmic =
          c.current * (p.discResistance(n) + p.plugResistance() + p.rSeries);
      EXPECT_NEAR(c.vSchottky + vOhmic, v, 1e-6 * v);
      EXPECT_GT(c.vDisc, 0.0);
      EXPECT_LT(c.vDisc, v);
    }
  }
}

TEST(Conduction, HigherTemperatureMoreCurrent) {
  // Thermionic emission grows steeply with T.
  const Model m = defaultModel();
  const auto cold = m.solveConduction(0.525, 1e25, 300.0);
  const auto hot = m.solveConduction(0.525, 1e25, 400.0);
  EXPECT_GT(hot.current, cold.current);
}

TEST(Conduction, HrsDropsMostVoltageOnDisc) {
  const Model m = defaultModel();
  const Params& p = m.params();
  const auto hrs = m.solveConduction(1.05, p.nDiscMin, 300.0);
  const auto lrs = m.solveConduction(1.05, p.nDiscMax, 300.0);
  EXPECT_GT(hrs.vDisc, 0.4);  // disc dominates in HRS
  EXPECT_LT(lrs.vDisc, 0.3);  // interface/series dominate in LRS
}

TEST(Thermal, SteadyTemperatureEquation) {
  const Model m = defaultModel();
  const double rth = m.params().rThEff;
  EXPECT_DOUBLE_EQ(m.steadyTemperature(0.0, 300.0, 0.0), 300.0);
  EXPECT_DOUBLE_EQ(m.steadyTemperature(1e-4, 300.0, 50.0), 350.0 + rth * 1e-4);
}

TEST(Window, SoftClampBehaviour) {
  const Model m = defaultModel();
  const Params& p = m.params();
  EXPECT_NEAR(m.windowSet(p.nDiscMax), 0.0, 1e-12);
  EXPECT_GT(m.windowSet(p.nDiscMin), 0.99);
  EXPECT_NEAR(m.windowReset(p.nDiscMin), 0.0, 1e-12);
  EXPECT_GT(m.windowReset(p.nDiscMax), 0.99);
}

TEST(Kinetics, RateSignsFollowPolarity) {
  const Model m = defaultModel();
  EXPECT_GT(m.ionicRate(0.3, 1e25, 400.0), 0.0);   // SET direction
  EXPECT_LT(m.ionicRate(-0.3, 1e25, 400.0), 0.0);  // RESET direction
  EXPECT_DOUBLE_EQ(m.ionicRate(0.0, 1e25, 400.0), 0.0);
}

TEST(Kinetics, ArrheniusAcceleration) {
  const Model m = defaultModel();
  const double cold = m.ionicRate(0.25, 1e25, 300.0);
  const double hot = m.ionicRate(0.25, 1e25, 375.0);
  // ~3 decades per 75 K is the calibrated regime of the attack.
  EXPECT_GT(hot / cold, 1e2);
  EXPECT_LT(hot / cold, 1e5);
}

TEST(Kinetics, FieldNonlinearity) {
  const Model m = defaultModel();
  const double low = m.ionicRate(0.15, 1e25, 350.0);
  const double high = m.ionicRate(0.30, 1e25, 350.0);
  // Doubling the disc voltage must accelerate switching far more than 2x
  // (ultra-nonlinear kinetics, Menzel et al.).
  EXPECT_GT(high / low, 50.0);
}

TEST(Resistance, RejectsZeroReadVoltage) {
  const Model m = defaultModel();
  EXPECT_THROW(m.resistance(0.0, 1e25, 300.0), std::invalid_argument);
}

}  // namespace
}  // namespace nh::jart
