#include <gtest/gtest.h>

#include <cmath>

#include "xbar/fastsim.hpp"
#include "xbar/spicesim.hpp"

namespace nh::xbar {
namespace {

ArrayConfig config3x3() {
  ArrayConfig cfg;
  cfg.rows = 3;
  cfg.cols = 3;
  return cfg;
}

TEST(FastEngine, IdealAndNetworkVoltagesClose) {
  // With a 50-Ohm driver and uA-level currents the line nodes sit within a
  // few mV of the ideal bias.
  CrossbarArray array(config3x3());
  array.fill(CellState::Hrs);
  array.setState(1, 1, CellState::Lrs);
  FastEngineOptions opt;
  FastEngine engine(array, AlphaTable::analytic(50e-9), opt);
  const LineBias bias = selectBias(BiasScheme::Half, 3, 3, 1, 1, 1.05);
  engine.applyBias(bias, 10e-9);
  const auto& lv = engine.lastLineVoltages();
  EXPECT_NEAR(lv[1], 1.05, 0.02);      // selected word line
  EXPECT_NEAR(lv[3 + 1], 0.0, 0.02);   // selected bit line
  EXPECT_NEAR(lv[0], 0.525, 0.02);     // half bias lines
  EXPECT_GT(engine.newtonIterationsTotal(), 0u);
}

TEST(FastEngine, IdealModeSkipsNetworkSolve) {
  CrossbarArray array(config3x3());
  FastEngineOptions opt;
  opt.solveLineNetwork = false;
  FastEngine engine(array, AlphaTable::analytic(50e-9), opt);
  const LineBias bias = selectBias(BiasScheme::Half, 3, 3, 1, 1, 1.05);
  engine.applyBias(bias, 10e-9);
  EXPECT_DOUBLE_EQ(engine.lastLineVoltages()[1], 1.05);
  EXPECT_EQ(engine.newtonIterationsTotal(), 0u);
}

TEST(FastEngine, TimeAdvances) {
  CrossbarArray array(config3x3());
  FastEngine engine(array, AlphaTable::analytic(50e-9));
  engine.applyPulse(selectBias(BiasScheme::Half, 3, 3, 1, 1, 1.05), 50e-9, 50e-9);
  EXPECT_NEAR(engine.time(), 100e-9, 1e-15);
}

TEST(FastEngine, HammeringHeatsWordLineNeighbourMost) {
  CrossbarArray array(config3x3());
  array.fill(CellState::Hrs);
  array.setState(1, 1, CellState::Lrs);
  FastEngine engine(array, AlphaTable::analytic(50e-9));
  const LineBias bias = selectBias(BiasScheme::Half, 3, 3, 1, 1, 1.05);
  engine.applyBias(bias, 50e-9);  // stay inside the pulse: temps are hot

  const double tAggressor = array.cell(1, 1).temperature();
  const double tWordNeighbour = array.cell(1, 0).temperature();
  const double tBitNeighbour = array.cell(0, 1).temperature();
  const double tDiagonal = array.cell(0, 0).temperature();
  EXPECT_GT(tAggressor, 450.0);
  EXPECT_GT(tWordNeighbour, tBitNeighbour);
  EXPECT_GT(tBitNeighbour, tDiagonal);
  EXPECT_GT(tDiagonal, 300.0);
}

TEST(FastEngine, GapCoolsArray) {
  CrossbarArray array(config3x3());
  array.setState(1, 1, CellState::Lrs);
  FastEngine engine(array, AlphaTable::analytic(50e-9));
  engine.applyPulse(selectBias(BiasScheme::Half, 3, 3, 1, 1, 1.05), 50e-9, 50e-9);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(array.cell(r, c).temperature(), 300.0, 1.0);
    }
  }
}

TEST(FastEngine, UnselectedCellsDoNotDrift) {
  CrossbarArray array(config3x3());
  array.fill(CellState::Hrs);
  array.setState(1, 1, CellState::Lrs);
  FastEngine engine(array, AlphaTable::analytic(50e-9));
  const LineBias bias = selectBias(BiasScheme::Half, 3, 3, 1, 1, 1.05);
  engine.applyPulseTrain(bias, 50e-9, 50e-9, 200);
  // Cells sharing no line with (1,1) see no voltage; they must stay put.
  EXPECT_LT(array.cell(0, 0).normalisedState(), 1e-6);
  EXPECT_LT(array.cell(2, 0).normalisedState(), 1e-6);
  // Half-selected neighbours have started to drift.
  EXPECT_GT(array.cell(1, 0).normalisedState(), 1e-5);
}

TEST(FastEngine, BatchingMatchesUnbatchedPulseCount) {
  // The accelerated train must flip within a few percent of the exact one.
  const auto runAttack = [](bool batching) {
    CrossbarArray array(config3x3());
    array.fill(CellState::Hrs);
    array.setState(1, 1, CellState::Lrs);
    FastEngineOptions opt;
    opt.enableBatching = batching;
    FastEngine engine(array, AlphaTable::analytic(10e-9), opt);
    const LineBias bias = selectBias(BiasScheme::Half, 3, 3, 1, 1, 1.05);
    std::size_t flipAt = 0;
    engine.applyPulseTrain(bias, 50e-9, 50e-9, 20000, [&](std::size_t pulse) {
      if (array.cell(1, 0).normalisedState() >= 0.5) {
        flipAt = pulse;
        return true;
      }
      return false;
    });
    return flipAt;
  };
  const std::size_t exact = runAttack(false);
  const std::size_t batched = runAttack(true);
  ASSERT_GT(exact, 0u);
  ASSERT_GT(batched, 0u);
  EXPECT_NEAR(static_cast<double>(batched), static_cast<double>(exact),
              0.08 * static_cast<double>(exact) + 3.0);
}

TEST(FastEngine, PulseTrainStopsEarlyViaCallback) {
  // Without batching the stop is exact; with batching the callback still
  // fires and stops the train, but only at batch granularity.
  CrossbarArray array(config3x3());
  FastEngineOptions opt;
  opt.enableBatching = false;
  FastEngine exact(array, AlphaTable::analytic(50e-9), opt);
  const LineBias bias = idleBias(3, 3);
  const auto precise = exact.applyPulseTrain(bias, 10e-9, 10e-9, 100,
                                             [](std::size_t p) { return p >= 7; });
  EXPECT_TRUE(precise.stoppedEarly);
  EXPECT_EQ(precise.pulsesApplied, 7u);

  FastEngine batched(array, AlphaTable::analytic(50e-9));
  const auto coarse = batched.applyPulseTrain(
      bias, 10e-9, 10e-9, 100, [](std::size_t p) { return p >= 7; });
  EXPECT_TRUE(coarse.stoppedEarly);
  EXPECT_LE(coarse.pulsesApplied, 100u);
}

TEST(FastEngine, OptionValidation) {
  CrossbarArray array(config3x3());
  FastEngineOptions opt;
  opt.substepsPerPulse = 0;
  EXPECT_THROW(FastEngine(array, AlphaTable::analytic(50e-9), opt),
               std::invalid_argument);
  FastEngineOptions opt2;
  opt2.batchDriftLimit = 0.0;
  EXPECT_THROW(FastEngine(array, AlphaTable::analytic(50e-9), opt2),
               std::invalid_argument);
  FastEngine ok(array, AlphaTable::analytic(50e-9));
  LineBias wrong;
  wrong.wordLine.assign(2, 0.0);
  wrong.bitLine.assign(3, 0.0);
  EXPECT_THROW(ok.applyBias(wrong, 1e-9), std::invalid_argument);
}

// ---- SPICE engine ------------------------------------------------------------------

TEST(SpiceCrossbar, DcLevelsMatchScheme) {
  CrossbarArray array(config3x3());
  array.fill(CellState::Hrs);
  array.setState(1, 1, CellState::Lrs);
  SpiceEngineOptions opt;
  opt.traceCells = false;
  SpiceCrossbar spice(array, AlphaTable::analytic(50e-9), opt);
  spice.programDrivers(selectBias(BiasScheme::Half, 3, 3, 1, 1, 1.05), {});

  auto& ckt = spice.circuit();
  const auto result = nh::spice::solveDc(ckt);
  ASSERT_TRUE(result.converged);
  const auto v = [&](const std::string& name) {
    const auto id = ckt.findNode(name);
    return id == 0 ? 0.0 : result.x[id - 1];
  };
  EXPECT_NEAR(v(spice.wordLineNode(1, 1)), 1.05, 0.02);
  EXPECT_NEAR(v(spice.bitLineNode(1, 1)), 0.0, 0.02);
  EXPECT_NEAR(v(spice.wordLineNode(0, 0)), 0.525, 0.02);
}

TEST(SpiceCrossbar, TransientHammerAdvancesVictim) {
  CrossbarArray array(config3x3());
  array.fill(CellState::Hrs);
  array.setState(1, 1, CellState::Lrs);
  SpiceEngineOptions opt;
  opt.traceCells = true;
  SpiceCrossbar spice(array, AlphaTable::analytic(10e-9), opt);
  spice.programHammer(1, 1, 1.05, 50e-9, 100e-9, 5);
  const auto result = spice.run(500e-9);
  ASSERT_TRUE(result.completed) << result.failureReason;
  // Victim drifted up, unselected cell did not.
  EXPECT_GT(array.cell(1, 0).normalisedState(), 1e-5);
  EXPECT_LT(array.cell(0, 0).normalisedState(), 1e-6);
  // Traces exist and show the aggressor heating during pulses.
  const auto& tAgg = result.seriesFor("T(1,1)");
  double maxT = 0.0;
  for (const double t : tAgg) maxT = std::max(maxT, t);
  EXPECT_GT(maxT, 450.0);
}

TEST(SpiceVsFast, VictimDriftAgreesOverShortTrain) {
  // The quasi-static engine must agree with the full transient on the
  // victim state drift over a short pulse train (10 pulses, 10 nm spacing).
  const std::size_t pulses = 10;

  CrossbarArray arrayFast(config3x3());
  arrayFast.fill(CellState::Hrs);
  arrayFast.setState(1, 1, CellState::Lrs);
  FastEngine fast(arrayFast, AlphaTable::analytic(10e-9));
  fast.applyPulseTrain(selectBias(BiasScheme::Half, 3, 3, 1, 1, 1.05), 50e-9,
                       50e-9, pulses);

  CrossbarArray arraySpice(config3x3());
  arraySpice.fill(CellState::Hrs);
  arraySpice.setState(1, 1, CellState::Lrs);
  SpiceEngineOptions opt;
  opt.traceCells = false;
  SpiceCrossbar spice(arraySpice, AlphaTable::analytic(10e-9), opt);
  spice.programHammer(1, 1, 1.05, 50e-9, 100e-9,
                      static_cast<long long>(pulses));
  const auto result = spice.run(static_cast<double>(pulses) * 100e-9);
  ASSERT_TRUE(result.completed) << result.failureReason;

  const double xFast = arrayFast.cell(1, 0).normalisedState();
  const double xSpice = arraySpice.cell(1, 0).normalisedState();
  ASSERT_GT(xSpice, 0.0);
  EXPECT_NEAR(xFast / xSpice, 1.0, 0.30);
}

TEST(SpiceCrossbar, StimulusValidation) {
  CrossbarArray array(config3x3());
  SpiceEngineOptions opt;
  opt.traceCells = false;
  SpiceCrossbar spice(array, AlphaTable::analytic(50e-9), opt);
  LineStimulus bad;
  bad.isWordLine = false;
  bad.index = 9;
  bad.pulse.amplitude = 1.0;
  bad.pulse.width = 10e-9;
  EXPECT_THROW(spice.programDrivers(idleBias(3, 3), {bad}), std::out_of_range);
  LineBias wrong;
  wrong.wordLine.assign(2, 0.0);
  wrong.bitLine.assign(3, 0.0);
  EXPECT_THROW(spice.programDrivers(wrong, {}), std::invalid_argument);
}

}  // namespace
}  // namespace nh::xbar
