#include "xbar/scheme.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nh::xbar {
namespace {

TEST(HalfScheme, SetPolarityVoltageMap) {
  const LineBias bias = selectBias(BiasScheme::Half, 5, 5, 2, 2, 1.05);
  const auto map = cellVoltageMap(bias);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      const double v = map(r, c);
      if (r == 2 && c == 2) {
        EXPECT_DOUBLE_EQ(v, 1.05);  // selected
      } else if (r == 2 || c == 2) {
        EXPECT_DOUBLE_EQ(v, 0.525);  // half-selected
      } else {
        EXPECT_DOUBLE_EQ(v, 0.0);  // unselected: no voltage drop
      }
    }
  }
}

TEST(HalfScheme, ResetPolarityVoltageMap) {
  const LineBias bias = selectBias(BiasScheme::Half, 5, 5, 1, 3, -1.3);
  const auto map = cellVoltageMap(bias);
  EXPECT_DOUBLE_EQ(map(1, 3), -1.3);
  EXPECT_DOUBLE_EQ(map(1, 0), -0.65);  // row half-selected
  EXPECT_DOUBLE_EQ(map(4, 3), -0.65);  // column half-selected
  EXPECT_DOUBLE_EQ(map(0, 0), 0.0);
}

TEST(ThirdScheme, SetPolarityVoltageMap) {
  const LineBias bias = selectBias(BiasScheme::Third, 5, 5, 2, 2, 0.9);
  const auto map = cellVoltageMap(bias);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      const double v = map(r, c);
      if (r == 2 && c == 2) {
        EXPECT_NEAR(v, 0.9, 1e-12);
      } else if (r == 2 || c == 2) {
        EXPECT_NEAR(v, 0.3, 1e-12);  // V/3 stress on half-selected
      } else {
        EXPECT_NEAR(v, -0.3, 1e-12);  // unselected stressed at -V/3
      }
    }
  }
}

TEST(ThirdScheme, ResetPolarityVoltageMap) {
  const LineBias bias = selectBias(BiasScheme::Third, 5, 5, 2, 2, -0.9);
  const auto map = cellVoltageMap(bias);
  EXPECT_NEAR(map(2, 2), -0.9, 1e-12);
  EXPECT_NEAR(map(2, 0), -0.3, 1e-12);
  EXPECT_NEAR(map(0, 2), -0.3, 1e-12);
  EXPECT_NEAR(map(0, 0), 0.3, 1e-12);
}

TEST(Scheme, HalfSelectSetIsExactlyHalfAmplitude) {
  // The property the attack exploits (paper Sec. III phase 1).
  for (const double v : {0.8, 1.05, 1.3}) {
    const LineBias bias = selectBias(BiasScheme::Half, 3, 3, 0, 0, v);
    const auto map = cellVoltageMap(bias);
    EXPECT_DOUBLE_EQ(map(0, 1), v / 2.0);
    EXPECT_DOUBLE_EQ(map(1, 0), v / 2.0);
  }
}

TEST(Scheme, OutOfRangeSelectionThrows) {
  EXPECT_THROW(selectBias(BiasScheme::Half, 3, 3, 3, 0, 1.0), std::out_of_range);
  EXPECT_THROW(selectBias(BiasScheme::Half, 3, 3, 0, 7, 1.0), std::out_of_range);
}

TEST(Scheme, IdleBiasIsAllZero) {
  const LineBias bias = idleBias(4, 6);
  EXPECT_EQ(bias.wordLine.size(), 4u);
  EXPECT_EQ(bias.bitLine.size(), 6u);
  const auto map = cellVoltageMap(bias);
  EXPECT_DOUBLE_EQ(map.maxAbs(), 0.0);
}

TEST(Scheme, ReadBiasUsesHalfScheme) {
  const LineBias bias = readBias(5, 5, 2, 2, 0.2);
  const auto map = cellVoltageMap(bias);
  EXPECT_DOUBLE_EQ(map(2, 2), 0.2);
  EXPECT_DOUBLE_EQ(map(2, 0), 0.1);
  EXPECT_DOUBLE_EQ(map(0, 0), 0.0);
}

}  // namespace
}  // namespace nh::xbar
