#include "fem/alpha.hpp"

#include <gtest/gtest.h>

#include "fem/thermal.hpp"

namespace nh::fem {
namespace {

/// Small, coarse model so the extraction runs in well under a second.
CrossbarModel3D smallModel(double spacing = 50e-9) {
  CrossbarLayout layout;
  layout.rows = 3;
  layout.cols = 3;
  layout.spacing = spacing;
  layout.margin = 20e-9;
  layout.voxelSize = 5e-9;
  return CrossbarModel3D::build(layout);
}

TEST(SolveThermal, HeatsSelectedCellAboveNeighbours) {
  const auto model = smallModel();
  ThermalScenario scenario;
  scenario.model = &model;
  scenario.ambientK = 300.0;
  scenario.cellPower = nh::util::Matrix(3, 3, 0.0);
  scenario.cellPower(1, 1) = 0.1e-3;
  const auto sol = solveThermal(scenario);
  ASSERT_TRUE(sol.converged());
  const double centre = sol.cellTemperature(1, 1);
  EXPECT_GT(centre, 400.0);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_GE(sol.cellTemperature(r, c), 300.0 - 1e-6);
      if (!(r == 1 && c == 1)) EXPECT_LT(sol.cellTemperature(r, c), centre);
    }
  }
}

TEST(SolveThermal, LinearInPower) {
  const auto model = smallModel();
  ThermalScenario scenario;
  scenario.model = &model;
  scenario.cellPower = nh::util::Matrix(3, 3, 0.0);
  scenario.cellPower(1, 1) = 0.05e-3;
  const auto a = solveThermal(scenario, {1e-10, 40000});
  scenario.cellPower(1, 1) = 0.10e-3;
  const auto b = solveThermal(scenario, {1e-10, 40000});
  ASSERT_TRUE(a.converged() && b.converged());
  const double riseA = a.cellTemperature(1, 1) - 300.0;
  const double riseB = b.cellTemperature(1, 1) - 300.0;
  EXPECT_NEAR(riseB / riseA, 2.0, 1e-3);
}

TEST(SolveThermal, InputValidation) {
  const auto model = smallModel();
  ThermalScenario scenario;
  scenario.model = &model;
  scenario.cellPower = nh::util::Matrix(2, 2, 0.0);  // wrong shape
  EXPECT_THROW(solveThermal(scenario), std::invalid_argument);
  scenario.cellPower = nh::util::Matrix(3, 3, 0.0);
  scenario.cellPower(0, 0) = -1.0;
  EXPECT_THROW(solveThermal(scenario), std::invalid_argument);
}

TEST(ExtractAlpha, LinearFitsAreNearPerfect) {
  const auto model = smallModel();
  const auto result = extractAlpha(model, MaterialTable::defaults(), 1, 1,
                                   {0.05e-3, 0.1e-3, 0.15e-3}, 300.0);
  EXPECT_GT(result.rTh, 1e5);
  EXPECT_GT(result.rThRSquared, 0.9999);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_GT(result.alphaRSquared(r, c), 0.999) << r << "," << c;
    }
  }
}

TEST(ExtractAlpha, AlphaStructure) {
  const auto model = smallModel();
  const auto result = extractAlpha(model, MaterialTable::defaults(), 1, 1,
                                   {0.05e-3, 0.1e-3}, 300.0);
  EXPECT_DOUBLE_EQ(result.alpha(1, 1), 1.0);
  // Same-word-line neighbours couple more strongly than same-bit-line ones
  // (the filament sits on the bottom electrode).
  EXPECT_GT(result.alpha(1, 0), result.alpha(0, 1));
  // Nearest neighbours couple more strongly than diagonal ones.
  EXPECT_GT(result.alpha(1, 0), result.alpha(0, 0));
  EXPECT_GT(result.alpha(0, 1), result.alpha(0, 0));
  // All couplings in (0, 1).
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      if (r == 1 && c == 1) continue;
      EXPECT_GT(result.alpha(r, c), 0.0);
      EXPECT_LT(result.alpha(r, c), 1.0);
    }
  }
  // Geometry is mirror symmetric around the centre cell.
  EXPECT_NEAR(result.alpha(1, 0), result.alpha(1, 2), 0.02);
  EXPECT_NEAR(result.alpha(0, 1), result.alpha(2, 1), 0.02);
}

TEST(ExtractAlpha, TighterSpacingCouplesMore) {
  const auto near = smallModel(10e-9);
  const auto far = smallModel(90e-9);
  const auto alphaNear = extractAlpha(near, MaterialTable::defaults(), 1, 1,
                                      {0.05e-3, 0.1e-3}, 300.0);
  const auto alphaFar = extractAlpha(far, MaterialTable::defaults(), 1, 1,
                                     {0.05e-3, 0.1e-3}, 300.0);
  EXPECT_GT(alphaNear.alpha(1, 0), 1.2 * alphaFar.alpha(1, 0));
  EXPECT_GT(alphaNear.alpha(0, 1), 1.2 * alphaFar.alpha(0, 1));
}

TEST(ExtractAlpha, PredictTemperaturesMatchesSolution) {
  const auto model = smallModel();
  const auto result = extractAlpha(model, MaterialTable::defaults(), 1, 1,
                                   {0.05e-3, 0.1e-3, 0.15e-3}, 300.0);
  const auto predicted = result.predictTemperatures(0.1e-3);
  const auto& actual = result.temperatureMatrices[1];
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(predicted(r, c), actual(r, c),
                  0.01 * (actual(r, c) - 300.0) + 0.05);
    }
  }
}

TEST(ExtractAlpha, Validation) {
  const auto model = smallModel();
  EXPECT_THROW(
      extractAlpha(model, MaterialTable::defaults(), 5, 1, {1e-4, 2e-4}, 300.0),
      std::out_of_range);
  EXPECT_THROW(extractAlpha(model, MaterialTable::defaults(), 1, 1, {1e-4}, 300.0),
               std::invalid_argument);
}

TEST(SolveCoupled, SelectedLrsCellDominatesHeating) {
  const auto model = smallModel();
  CoupledScenario scenario;
  scenario.model = &model;
  scenario.ambientK = 300.0;
  // V/2 scheme around centre cell at 1.0 V.
  scenario.wordLineVoltage.assign(3, 0.5);
  scenario.bitLineVoltage.assign(3, 0.5);
  scenario.wordLineVoltage[1] = 1.0;
  scenario.bitLineVoltage[1] = 0.0;
  scenario.cellSigma = nh::util::Matrix(3, 3, 1.5e2);  // HRS-ish
  scenario.cellSigma(1, 1) = 1.5e5;                    // LRS
  const auto sol = solveCoupled(scenario);
  ASSERT_TRUE(sol.converged());
  EXPECT_GT(sol.cellPower(1, 1), 10.0 * sol.cellPower(0, 0));
  EXPECT_GT(sol.cellTemperature(1, 1), sol.cellTemperature(0, 1));
  EXPECT_GT(sol.totalPower, sol.cellPower(1, 1));
}

TEST(ExtractAlphaCoupled, ProducesPositiveCouplings) {
  const auto model = smallModel();
  const auto result = extractAlphaCoupled(model, MaterialTable::defaults(), 1, 1,
                                          {0.8, 1.0, 1.2}, 1.5e5, 1.5e2, 300.0);
  EXPECT_GT(result.rTh, 0.0);
  EXPECT_GT(result.rThRSquared, 0.99);
  EXPECT_GT(result.alpha(1, 0), 0.0);
  EXPECT_GT(result.alpha(1, 0), result.alpha(0, 0));
}

}  // namespace
}  // namespace nh::fem
