/// \file test_concurrency_stress.cpp
/// Multi-thread stress suites for the concurrent machinery: parallelFor
/// (reentrancy, throwing bodies, cancellation mid-drain), the process-wide
/// LRU study cache under getOrBuildStudy churn, and the fault-injection
/// registry under arm/fire/scope churn. Deterministic assertions only --
/// these exist to give ThreadSanitizer (NH_SANITIZE=thread) real
/// interleavings to chew on, and to fail loudly when a protocol regresses
/// even without TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/study.hpp"
#include "util/cancellation.hpp"
#include "util/faultinject.hpp"
#include "util/fvstencil.hpp"
#include "util/multigrid.hpp"
#include "util/threadpool.hpp"

namespace nh {
namespace {

// ---- parallelFor ----------------------------------------------------------

TEST(ConcurrencyStress, NestedParallelForChurn) {
  // Every outer body re-enters parallelFor on the same pool while siblings
  // are doing the same; repeated rounds vary which workers hit the inline
  // reentrant path vs the queued-helper path.
  util::ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> counter{0};
    pool.parallelFor(6, [&pool, &counter](std::size_t) {
      pool.parallelFor(17, [&counter](std::size_t) {
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    });
    EXPECT_EQ(counter.load(), 6 * 17) << "round " << round;
  }
}

TEST(ConcurrencyStress, ThrowingBodiesDoNotStopSiblingIndices) {
  // Several bodies throw per round; the drain-after-throw isolation contract
  // says every index still runs exactly once, and the barrier rethrows one
  // of the failures.
  for (int round = 0; round < 10; ++round) {
    const std::size_t count = 101;
    std::vector<std::atomic<int>> visits(count);
    try {
      util::parallelFor(
          count,
          [&visits](std::size_t i) {
            visits[i].fetch_add(1, std::memory_order_relaxed);
            if (i % 13 == 5) throw std::runtime_error("stress failure");
          },
          4);
      FAIL() << "expected the barrier to rethrow";
    } catch (const std::runtime_error&) {
      // expected: first failure wins, message tagged with its index
    }
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ConcurrencyStress, CancellationMidDrainStopsClaimingWithinOneBody) {
  // A sibling thread cancels while the loop drains. Every body that *did*
  // run must have run exactly once, and the barrier must surface
  // CancelledError (not a wrapped runtime_error).
  for (int round = 0; round < 5; ++round) {
    util::CancellationSource source;
    std::atomic<int> started{0};
    const std::size_t count = 400;
    std::vector<std::atomic<int>> visits(count);
    std::thread canceller([&source, &started] {
      // Wait until the drain is demonstrably in flight, then cancel.
      while (started.load() < 8) std::this_thread::yield();
      source.cancel();
    });
    try {
      const util::CancellationScope scope(source.token());
      util::parallelFor(
          count,
          [&](std::size_t i) {
            started.fetch_add(1, std::memory_order_relaxed);
            visits[i].fetch_add(1, std::memory_order_relaxed);
            std::this_thread::yield();
          },
          4);
      // A 400-point drain on 4 threads should not finish before 8 bodies
      // have started; if it somehow does, that is not a correctness bug.
    } catch (const util::CancelledError& e) {
      EXPECT_FALSE(e.deadlineExpired());
    }
    canceller.join();
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_LE(visits[i].load(), 1) << "index " << i;
    }
  }
}

// ---- process-wide study cache ---------------------------------------------

TEST(ConcurrencyStress, GetOrBuildStudyUnderLruChurn) {
  // More distinct configs than cache capacity, hammered by several threads:
  // every lookup races insert/evict/find-refresh on the shared LRU. The
  // returned study must always match the requested config, whatever the
  // cache decided to keep.
  core::clearStudyCache();
  const std::size_t savedCapacity = core::studyCacheCapacity();
  core::setStudyCacheCapacity(2);

  const std::vector<double> spacings = {10e-9, 20e-9, 40e-9, 80e-9};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&spacings, &failed, t] {
      for (int iter = 0; iter < 12; ++iter) {
        core::StudyConfig cfg;
        cfg.rows = 3;
        cfg.cols = 3;
        cfg.spacing = spacings[(t + static_cast<std::size_t>(iter)) %
                               spacings.size()];
        const auto study = core::getOrBuildStudy(cfg);
        if (!study || !(study->config() == cfg)) failed.store(true);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  EXPECT_LE(core::studyCacheSize(), 2u);

  core::setStudyCacheCapacity(savedCapacity);
  core::clearStudyCache();
}

TEST(ConcurrencyStress, RacingBuildersForOneConfigConverge) {
  // All threads request the same cold config at once. insert() returns the
  // cache's winner, so after the first publish every caller must observe the
  // one retained instance.
  core::clearStudyCache();
  core::StudyConfig cfg;
  cfg.rows = 3;
  cfg.cols = 3;
  cfg.spacing = 15e-9;

  std::vector<std::shared_ptr<const core::AttackStudy>> seen(6);
  std::vector<std::thread> threads;
  threads.reserve(seen.size());
  for (std::size_t t = 0; t < seen.size(); ++t) {
    threads.emplace_back([&seen, &cfg, t] {
      seen[t] = core::getOrBuildStudy(cfg);
    });
  }
  for (auto& thread : threads) thread.join();

  // Everyone got the config they asked for, and a second lookup now serves
  // the single cached instance.
  for (const auto& study : seen) {
    ASSERT_TRUE(study);
    EXPECT_TRUE(study->config() == cfg);
  }
  const auto warm = core::getOrBuildStudy(cfg);
  const auto again = core::getOrBuildStudy(cfg);
  EXPECT_EQ(warm.get(), again.get());
  core::clearStudyCache();
}

// ---- fault-injection registry ---------------------------------------------

TEST(ConcurrencyStress, FaultRegistryArmFireScopeChurn) {
  // Threads concurrently arm, probe, fire, and disarm disjoint per-thread
  // sites while flipping thread-local scopes; a final sweep checks each
  // site's lifecycle stayed coherent. Scoped policies must only fire inside
  // the matching scope even while the registry is being mutated around them.
  util::faultinject::clearAll();
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([t, &failed] {
      const std::string site = "stress.site." + std::to_string(t);
      for (int iter = 0; iter < 50; ++iter) {
        util::faultinject::arm(site, 2, "stress.scope");
        // Outside the scope: never fires, never counts.
        if (util::faultinject::shouldFire(site.c_str())) failed.store(true);
        {
          const util::faultinject::Scope scope("stress.scope");
          if (util::faultinject::shouldFire(site.c_str())) {
            failed.store(true);  // first matching call, nthCall is 2
          }
          if (!util::faultinject::shouldFire(site.c_str())) {
            failed.store(true);  // second matching call must fire
          }
        }
        if (!util::faultinject::fired(site)) failed.store(true);
        util::faultinject::disarm(site);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  util::faultinject::clearAll();
}

TEST(ConcurrencyStress, FaultSpecParsingRacesProbes) {
  // armFromSpec (the NH_FAULT parser) holds the registry lock across a whole
  // multi-entry spec while other threads hammer shouldFire/enabled; the
  // suite is a TSan target more than an assertion farm.
  util::faultinject::clearAll();
  std::atomic<bool> stop{false};
  std::thread prober([&stop] {
    while (!stop.load()) {
      util::faultinject::shouldFire("spec.a");
      util::faultinject::shouldFire("spec.b");
      util::faultinject::enabled();
    }
  });
  for (int iter = 0; iter < 200; ++iter) {
    EXPECT_EQ(util::faultinject::armFromSpec("spec.a:1,spec.b:3@pt"), 2u);
    util::faultinject::disarm("spec.a");
    util::faultinject::disarm("spec.b");
  }
  stop.store(true);
  prober.join();
  util::faultinject::clearAll();
}

// ---- NH_FAULT spec diagnostics (satellite: malformed-entry warnings) ------

TEST(FaultSpecWarnings, MalformedEntriesWarnOnceEachAndAreSkipped) {
  util::faultinject::clearAll();
  testing::internal::CaptureStderr();
  // One good entry sandwiched between four distinct malformations.
  const std::size_t armed = util::faultinject::armFromSpec(
      "noColon,:emptySite,good.site:2,bad.count:x,trailing.junk:3zz");
  const std::string err = testing::internal::GetCapturedStderr();

  EXPECT_EQ(armed, 1u);
  EXPECT_FALSE(util::faultinject::fired("good.site"));
  EXPECT_NE(err.find("NH_FAULT: ignoring malformed entry 'noColon'"),
            std::string::npos)
      << err;
  EXPECT_NE(err.find("':emptySite'"), std::string::npos) << err;
  EXPECT_NE(err.find("'bad.count:x'"), std::string::npos) << err;
  EXPECT_NE(err.find("'trailing.junk:3zz'"), std::string::npos) << err;
  EXPECT_NE(err.find("expected site:n[@scope]"), std::string::npos) << err;

  // The well-formed entry really is armed: second call fires.
  EXPECT_FALSE(util::faultinject::shouldFire("good.site"));
  EXPECT_TRUE(util::faultinject::shouldFire("good.site"));
  util::faultinject::clearAll();
}

TEST(FaultSpecWarnings, StrayCommasAndZeroCountsAreHandled) {
  util::faultinject::clearAll();
  testing::internal::CaptureStderr();
  const std::size_t armed =
      util::faultinject::armFromSpec(",site.ok:1,,site.zero:0,");
  const std::string err = testing::internal::GetCapturedStderr();

  // Empty segments are stray commas, not entries -- silently skipped.
  EXPECT_EQ(armed, 1u);
  EXPECT_EQ(err.find("''"), std::string::npos) << err;
  // A zero call count can never fire; it is malformed, not "disabled".
  EXPECT_NE(err.find("'site.zero:0'"), std::string::npos) << err;
  EXPECT_NE(err.find("bad call count"), std::string::npos) << err;
  EXPECT_TRUE(util::faultinject::shouldFire("site.ok"));
  util::faultinject::clearAll();
}

// ---- Red-black smoother: per-color parallel sweeps under TSan ------------

// A 32^3 grid has 32768 rows; the 7-point FV operator two-colors, so each
// color holds ~16384 rows -- past the per-color parallelFor threshold, which
// puts the multicolor sweep on the shared thread pool. Repeated V-cycles
// must be deterministic (bit-identical) and race-free: within one color no
// two rows are neighbors, so concurrent updates never read each other.
TEST(RedBlackSmootherStress, ParallelColorSweepsAreDeterministic) {
  const std::size_t m = 32;
  const std::size_t n = m * m * m;
  const util::SparseMatrix a = util::makeSteadyFvOperator3d(m, 2.0);
  util::GeometricMultigrid::Options options;
  options.nx = options.ny = options.nz = m;
  options.smoother = util::MultigridSmoother::RedBlack;
  util::GeometricMultigrid mg;
  ASSERT_TRUE(mg.compute(a, options));

  util::Vector r(n);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = 1e-6 * static_cast<double>((i * 2654435761u) % 1000);
  }
  util::Vector first;
  mg.apply(r, first);
  for (const double v : first) ASSERT_TRUE(std::isfinite(v));
  for (int iter = 0; iter < 8; ++iter) {
    util::Vector z;
    mg.apply(r, z);
    ASSERT_EQ(z, first) << "V-cycle " << iter << " diverged from first run";
  }
}

}  // namespace
}  // namespace nh
