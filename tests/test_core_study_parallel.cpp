#include "core/study.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nh::core {
namespace {

/// Small, fast sweep setup: tight spacing flips in O(10^3) pulses, and the
/// budget caps the slow points without losing comparability.
StudyConfig smallConfig() {
  StudyConfig cfg;
  cfg.rows = 3;
  cfg.cols = 3;
  cfg.spacing = 10e-9;
  return cfg;
}

TEST(StudyParallel, SweepPulseLengthMatchesSerial) {
  const StudyConfig cfg = smallConfig();
  const std::vector<double> widths = {30e-9, 50e-9, 80e-9, 100e-9};
  const auto serial = sweepPulseLength(cfg, widths, 100'000, 1);
  const auto parallel = sweepPulseLength(cfg, widths, 100'000, 4);
  ASSERT_EQ(serial.size(), widths.size());
  EXPECT_EQ(serial, parallel);  // bit-identical, see SweepPoint::operator==
}

TEST(StudyParallel, SweepSpacingMatchesSerial) {
  const StudyConfig cfg = smallConfig();
  const std::vector<double> spacings = {10e-9, 50e-9};
  const std::vector<double> widths = {50e-9, 100e-9};
  const auto serial = sweepSpacing(cfg, spacings, widths, 200'000, 1);
  const auto parallel = sweepSpacing(cfg, spacings, widths, 200'000, 4);
  ASSERT_EQ(serial.size(), spacings.size() * widths.size());
  EXPECT_EQ(serial, parallel);

  // Slot order is the serial loop order: outer spacing, inner width.
  for (std::size_t si = 0; si < spacings.size(); ++si) {
    for (std::size_t wi = 0; wi < widths.size(); ++wi) {
      const SweepPoint& p = serial[si * widths.size() + wi];
      EXPECT_DOUBLE_EQ(p.parameter, spacings[si]);
      EXPECT_DOUBLE_EQ(p.series, widths[wi]);
    }
  }
}

TEST(StudyParallel, SweepAmbientMatchesSerial) {
  const StudyConfig cfg = smallConfig();
  const std::vector<double> ambients = {300.0, 350.0};
  const std::vector<double> widths = {50e-9};
  const auto serial = sweepAmbient(cfg, ambients, widths, 100'000, 1);
  const auto parallel = sweepAmbient(cfg, ambients, widths, 100'000, 4);
  ASSERT_EQ(serial.size(), ambients.size());
  EXPECT_EQ(serial, parallel);
}

TEST(StudyParallel, SweepPatternsMatchesSerial) {
  const StudyConfig cfg = smallConfig();
  const HammerPulse pulse;  // 1.05 V / 50 ns / 50% duty
  const auto serial = sweepPatterns(cfg, pulse, 50'000, 1);
  const auto parallel = sweepPatterns(cfg, pulse, 50'000, 4);
  ASSERT_EQ(serial.size(), allPatterns().size());
  EXPECT_EQ(serial, parallel);
}

TEST(StudyParallel, FemAlphaWarmStartedSweepMatchesSerial) {
  // The FEM-alpha path: every study construction runs a warm-started power
  // sweep (each CG solve seeded with the previous point's field). The chain
  // lives entirely inside one construction, so the parallel outer sweep must
  // stay bit-identical to the serial run.
  StudyConfig cfg = smallConfig();
  cfg.useFemAlphas = true;
  const std::vector<double> ambients = {300.0, 340.0};
  const std::vector<double> widths = {50e-9};
  const auto serial = sweepAmbient(cfg, ambients, widths, 50'000, 1);
  const auto parallel = sweepAmbient(cfg, ambients, widths, 50'000, 4);
  ASSERT_EQ(serial.size(), ambients.size());
  EXPECT_EQ(serial, parallel);
}

TEST(StudyParallel, DefaultThreadCountMatchesSerialToo) {
  // threads = 0 routes through the shared pool; same contract.
  const StudyConfig cfg = smallConfig();
  const std::vector<double> widths = {50e-9, 100e-9};
  const auto serial = sweepPulseLength(cfg, widths, 100'000, 1);
  const auto pooled = sweepPulseLength(cfg, widths, 100'000, 0);
  EXPECT_EQ(serial, pooled);
}

}  // namespace
}  // namespace nh::core
