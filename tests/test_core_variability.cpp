#include "core/variability.hpp"

#include <gtest/gtest.h>

namespace nh::core {
namespace {

VariabilityConfig quickConfig() {
  VariabilityConfig cfg;
  cfg.base.spacing = 10e-9;  // fast flips
  cfg.trials = 6;
  cfg.sigma = 0.05;
  cfg.budget = 500'000;
  return cfg;
}

TEST(Variability, DeterministicForSeed) {
  const auto a = runVariabilityStudy(quickConfig());
  const auto b = runVariabilityStudy(quickConfig());
  EXPECT_EQ(a.pulsesPerTrial, b.pulsesPerTrial);
}

TEST(Variability, AllTrialsFlipAtModerateSigma) {
  const auto r = runVariabilityStudy(quickConfig());
  EXPECT_EQ(r.trials, 6u);
  EXPECT_EQ(r.flips, 6u);
  EXPECT_DOUBLE_EQ(r.flipRate, 1.0);
  EXPECT_GE(r.medianPulses, r.minPulses);
  EXPECT_GE(r.maxPulses, r.medianPulses);
}

TEST(Variability, TrialsActuallyDiffer) {
  const auto r = runVariabilityStudy(quickConfig());
  ASSERT_GE(r.pulsesPerTrial.size(), 2u);
  EXPECT_GT(r.maxPulses, r.minPulses);
  EXPECT_GT(r.spreadDecades, 0.0);
}

TEST(Variability, LargerSigmaSpreadsMore) {
  VariabilityConfig narrow = quickConfig();
  narrow.sigma = 0.01;
  VariabilityConfig wide = quickConfig();
  wide.sigma = 0.10;
  wide.budget = 5'000'000;  // slow corners need more budget
  const auto a = runVariabilityStudy(narrow);
  const auto b = runVariabilityStudy(wide);
  ASSERT_GT(a.flips, 0u);
  ASSERT_GT(b.flips, 0u);
  EXPECT_GT(b.spreadDecades, a.spreadDecades);
}

TEST(Variability, ZeroSigmaCollapsesSpread) {
  VariabilityConfig cfg = quickConfig();
  cfg.sigma = 0.0;
  const auto r = runVariabilityStudy(cfg);
  ASSERT_EQ(r.flips, r.trials);
  EXPECT_EQ(r.minPulses, r.maxPulses);
  EXPECT_NEAR(r.spreadDecades, 0.0, 1e-12);
}

TEST(Variability, Validation) {
  VariabilityConfig cfg = quickConfig();
  cfg.trials = 0;
  EXPECT_THROW(runVariabilityStudy(cfg), std::invalid_argument);
}

// ---- degenerate statistics (defined on VariabilityResult) -----------------

TEST(Variability, ZeroFlipsGivesAllZeroStatistics) {
  VariabilityConfig cfg = quickConfig();
  cfg.budget = 5;  // far below any flip threshold
  const auto r = runVariabilityStudy(cfg);
  EXPECT_EQ(r.flips, 0u);
  EXPECT_TRUE(r.pulsesPerTrial.empty());
  EXPECT_DOUBLE_EQ(r.flipRate, 0.0);
  EXPECT_EQ(r.minPulses, 0u);
  EXPECT_EQ(r.medianPulses, 0u);
  EXPECT_EQ(r.maxPulses, 0u);
  EXPECT_DOUBLE_EQ(r.spreadDecades, 0.0);
}

TEST(Variability, SingleFlipCollapsesTheDistribution) {
  VariabilityConfig cfg = quickConfig();
  cfg.trials = 1;
  const auto r = runVariabilityStudy(cfg);
  ASSERT_EQ(r.flips, 1u);
  ASSERT_EQ(r.pulsesPerTrial.size(), 1u);
  EXPECT_DOUBLE_EQ(r.flipRate, 1.0);
  EXPECT_EQ(r.minPulses, r.pulsesPerTrial.front());
  EXPECT_EQ(r.medianPulses, r.pulsesPerTrial.front());
  EXPECT_EQ(r.maxPulses, r.pulsesPerTrial.front());
  EXPECT_DOUBLE_EQ(r.spreadDecades, 0.0);
}

// ---- RNG plans ------------------------------------------------------------

TEST(Variability, SequentialPlanIsTheDefaultAndDeterministic) {
  VariabilityConfig cfg = quickConfig();
  EXPECT_EQ(cfg.plan, TrialRngPlan::Sequential);
  const auto a = runVariabilityStudy(cfg);
  const auto b = runVariabilityStudy(cfg);
  EXPECT_EQ(a.pulsesPerTrial, b.pulsesPerTrial);
}

TEST(Variability, PerTrialStreamPlanIsThreadInvariant) {
  VariabilityConfig cfg = quickConfig();
  cfg.plan = TrialRngPlan::PerTrialStream;
  cfg.threads = 1;
  const auto serial = runVariabilityStudy(cfg);
  cfg.threads = 4;
  const auto parallel = runVariabilityStudy(cfg);
  EXPECT_EQ(serial.pulsesPerTrial, parallel.pulsesPerTrial);
  EXPECT_EQ(serial.flips, parallel.flips);
  EXPECT_EQ(serial.medianPulses, parallel.medianPulses);
  // Same regime as the sequential plan even though the draws differ.
  EXPECT_EQ(serial.trials, cfg.trials);
  EXPECT_EQ(serial.flips, cfg.trials);
}

}  // namespace
}  // namespace nh::core
