#include "core/variability.hpp"

#include <gtest/gtest.h>

namespace nh::core {
namespace {

VariabilityConfig quickConfig() {
  VariabilityConfig cfg;
  cfg.base.spacing = 10e-9;  // fast flips
  cfg.trials = 6;
  cfg.sigma = 0.05;
  cfg.budget = 500'000;
  return cfg;
}

TEST(Variability, DeterministicForSeed) {
  const auto a = runVariabilityStudy(quickConfig());
  const auto b = runVariabilityStudy(quickConfig());
  EXPECT_EQ(a.pulsesPerTrial, b.pulsesPerTrial);
}

TEST(Variability, AllTrialsFlipAtModerateSigma) {
  const auto r = runVariabilityStudy(quickConfig());
  EXPECT_EQ(r.trials, 6u);
  EXPECT_EQ(r.flips, 6u);
  EXPECT_DOUBLE_EQ(r.flipRate, 1.0);
  EXPECT_GE(r.medianPulses, r.minPulses);
  EXPECT_GE(r.maxPulses, r.medianPulses);
}

TEST(Variability, TrialsActuallyDiffer) {
  const auto r = runVariabilityStudy(quickConfig());
  ASSERT_GE(r.pulsesPerTrial.size(), 2u);
  EXPECT_GT(r.maxPulses, r.minPulses);
  EXPECT_GT(r.spreadDecades, 0.0);
}

TEST(Variability, LargerSigmaSpreadsMore) {
  VariabilityConfig narrow = quickConfig();
  narrow.sigma = 0.01;
  VariabilityConfig wide = quickConfig();
  wide.sigma = 0.10;
  wide.budget = 5'000'000;  // slow corners need more budget
  const auto a = runVariabilityStudy(narrow);
  const auto b = runVariabilityStudy(wide);
  ASSERT_GT(a.flips, 0u);
  ASSERT_GT(b.flips, 0u);
  EXPECT_GT(b.spreadDecades, a.spreadDecades);
}

TEST(Variability, ZeroSigmaCollapsesSpread) {
  VariabilityConfig cfg = quickConfig();
  cfg.sigma = 0.0;
  const auto r = runVariabilityStudy(cfg);
  ASSERT_EQ(r.flips, r.trials);
  EXPECT_EQ(r.minPulses, r.maxPulses);
  EXPECT_NEAR(r.spreadDecades, 0.0, 1e-12);
}

TEST(Variability, Validation) {
  VariabilityConfig cfg = quickConfig();
  cfg.trials = 0;
  EXPECT_THROW(runVariabilityStudy(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace nh::core
