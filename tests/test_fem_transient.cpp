#include "fem/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nh::fem {
namespace {

CrossbarModel3D smallModel() {
  CrossbarLayout layout;
  layout.rows = 3;
  layout.cols = 3;
  layout.margin = 20e-9;
  return CrossbarModel3D::build(layout);
}

TransientScenario quickScenario(const CrossbarModel3D& model) {
  TransientScenario s;
  s.model = &model;
  s.heatedRow = 1;
  s.heatedCol = 1;
  s.power = 1e-4;
  s.tStop = 10e-9;
  s.dt = 0.5e-9;
  return s;
}

TEST(HeatCapacity, DefaultsArePositive) {
  const auto t = HeatCapacityTable::defaults();
  for (int m = 0; m < static_cast<int>(Material::Count); ++m) {
    EXPECT_GT(t.capacity(static_cast<Material>(m)), 1e5);
  }
}

TEST(TransientThermal, MonotoneRiseTowardSteadyState) {
  const auto model = smallModel();
  const auto scenario = quickScenario(model);
  const auto sol = solveThermalStep(scenario);
  ASSERT_TRUE(sol.converged);
  ASSERT_GE(sol.cellTemperature.size(), 3u);
  const auto& heated = sol.cellTemperature[0];
  for (std::size_t i = 1; i < heated.size(); ++i) {
    EXPECT_GE(heated[i], heated[i - 1] - 1e-9);
  }
  // Final value matches the steady solver within a few percent.
  ThermalScenario steady;
  steady.model = &model;
  steady.cellPower = nh::util::Matrix(3, 3, 0.0);
  steady.cellPower(1, 1) = scenario.power;
  const auto ss = solveThermal(steady);
  ASSERT_TRUE(ss.converged());
  const double steadyRise = ss.cellTemperature(1, 1) - 300.0;
  const double transientRise = heated.back() - 300.0;
  EXPECT_GT(transientRise, 0.85 * steadyRise);
  EXPECT_LT(transientRise, 1.02 * steadyRise);
}

TEST(TransientThermal, FilamentTauIsNanoseconds) {
  const auto model = smallModel();
  const auto sol = solveThermalStep(quickScenario(model));
  ASSERT_TRUE(sol.converged);
  const double tau = sol.riseTimeConstant(0);
  ASSERT_FALSE(std::isnan(tau));
  // The compact model assumes tauThermal ~ 2 ns; the FEM should agree on
  // the order of magnitude.
  EXPECT_GT(tau, 0.2e-9);
  EXPECT_LT(tau, 10e-9);
}

TEST(TransientThermal, NeighbourLagsTheHeatedCell) {
  const auto model = smallModel();
  TransientScenario scenario = quickScenario(model);
  scenario.tStop = 20e-9;
  const auto sol = solveThermalStep(scenario);
  ASSERT_TRUE(sol.converged);
  const double tauHeated = sol.riseTimeConstant(0);
  const double tauNeighbour = sol.riseTimeConstant(1);
  ASSERT_FALSE(std::isnan(tauHeated));
  ASSERT_FALSE(std::isnan(tauNeighbour));
  EXPECT_GT(tauNeighbour, tauHeated);
}

TEST(TransientThermal, NeighbourOrderingMatchesAlphas) {
  const auto model = smallModel();
  TransientScenario scenario = quickScenario(model);
  scenario.tStop = 20e-9;
  const auto sol = solveThermalStep(scenario);
  ASSERT_TRUE(sol.converged);
  // Word-line neighbour ends hotter than bit-line, which ends hotter than
  // the diagonal -- same ordering as the steady alpha extraction.
  const double word = sol.cellTemperature[1].back();
  const double bit = sol.cellTemperature[2].back();
  const double diag = sol.cellTemperature[3].back();
  EXPECT_GT(word, bit);
  EXPECT_GT(bit, diag);
  EXPECT_GT(diag, 300.0);
}

TEST(TransientThermal, Validation) {
  const auto model = smallModel();
  TransientScenario bad = quickScenario(model);
  bad.dt = 0.0;
  EXPECT_THROW(solveThermalStep(bad), std::invalid_argument);
  bad = quickScenario(model);
  bad.heatedRow = 9;
  EXPECT_THROW(solveThermalStep(bad), std::out_of_range);
  bad = quickScenario(model);
  bad.model = nullptr;
  EXPECT_THROW(solveThermalStep(bad), std::invalid_argument);
}

}  // namespace
}  // namespace nh::fem
