#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "spice/analysis.hpp"
#include "spice/elements.hpp"

namespace nh::spice {
namespace {

TEST(Transient, RcChargingMatchesAnalytic) {
  // 1 V step into R = 1k, C = 1 nF: tau = 1 us.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  PulseSpec step;
  step.base = 0.0;
  step.amplitude = 1.0;
  step.delay = 0.0;
  step.rise = 1e-9;
  step.fall = 1e-9;
  step.width = 1.0;  // effectively a step
  ckt.emplace<VoltageSource>("V1", in, ckt.ground(),
                             std::make_unique<PulseWaveform>(step));
  ckt.emplace<Resistor>("R1", in, out, 1000.0);
  ckt.emplace<Capacitor>("C1", out, ckt.ground(), 1e-9);

  TransientOptions opt;
  opt.tStop = 3e-6;
  opt.dtMax = 10e-9;
  const auto result = runTransient(ckt, opt, {probeNodeVoltage(ckt, "out")});
  ASSERT_TRUE(result.completed) << result.failureReason;

  const auto& vout = result.seriesFor("v(out)");
  for (std::size_t k = 0; k < result.time.size(); k += 25) {
    const double t = result.time[k];
    if (t < 5e-9) continue;
    const double expected = 1.0 - std::exp(-t / 1e-6);
    EXPECT_NEAR(vout[k], expected, 0.02) << "at t=" << t;
  }
  // After 3 tau the capacitor is ~95% charged.
  EXPECT_GT(vout.back(), 0.94);
}

TEST(Transient, PulseEdgesAreResolved) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  PulseSpec pulse;
  pulse.base = 0.0;
  pulse.amplitude = 1.0;
  pulse.delay = 100e-9;
  pulse.rise = 1e-9;
  pulse.fall = 1e-9;
  pulse.width = 50e-9;
  ckt.emplace<VoltageSource>("V1", in, ckt.ground(),
                             std::make_unique<PulseWaveform>(pulse));
  ckt.emplace<Resistor>("R1", in, ckt.ground(), 1000.0);

  TransientOptions opt;
  opt.tStop = 300e-9;
  opt.dtMax = 20e-9;  // coarser than the edges; breakpoints must kick in
  const auto result = runTransient(ckt, opt, {probeNodeVoltage(ckt, "in")});
  ASSERT_TRUE(result.completed);

  // The recorded series must contain the exact plateau values.
  const auto& vin = result.seriesFor("v(in)");
  double maxV = 0.0;
  for (std::size_t k = 0; k < result.time.size(); ++k) {
    maxV = std::max(maxV, vin[k]);
    if (result.time[k] < 100e-9 - 1e-12) {
      EXPECT_NEAR(vin[k], 0.0, 1e-9) << "before delay at t=" << result.time[k];
    }
  }
  EXPECT_NEAR(maxV, 1.0, 1e-9);
}

TEST(Transient, CapacitorHoldsChargeWhenDisconnected) {
  // Charged capacitor with only gmin leakage keeps its voltage over 1 us.
  Circuit ckt;
  const NodeId n = ckt.node("n");
  ckt.emplace<Capacitor>("C1", n, ckt.ground(), 1e-9);
  ckt.emplace<CurrentSource>(
      "I1", ckt.ground(), n,
      std::make_unique<PwlWaveform>(std::vector<double>{0.0, 10e-9, 11e-9},
                                    std::vector<double>{1e-3, 1e-3, 0.0}));
  TransientOptions opt;
  opt.tStop = 1e-6;
  opt.dtMax = 5e-9;
  const auto result = runTransient(ckt, opt, {probeNodeVoltage(ckt, "n")});
  ASSERT_TRUE(result.completed);
  const auto& vn = result.seriesFor("v(n)");
  // Charge delivered ~ 1 mA * 10.5 ns / 1 nF ~ 10.5 mV; held afterwards.
  EXPECT_GT(vn.back(), 0.009);
}

/// Minimal memristive model for engine tests: conductance grows linearly
/// with the time integral of |v| (no temperature).
class ToyMemristor final : public MemristiveModel {
 public:
  double current(double v) const override { return g_ * v; }
  void advance(double v, double dt) override {
    g_ += 1e-2 * std::fabs(v) * dt / 1e-9;  // 10 mS per V*ns
  }
  double conductanceNow() const { return g_; }

 private:
  double g_ = 1e-4;
};

TEST(Transient, MemristorStateAdvancesOnlyWithBias) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  ToyMemristor model;
  PulseSpec pulse;
  pulse.base = 0.0;
  pulse.amplitude = 1.0;
  pulse.delay = 20e-9;
  pulse.rise = 0.5e-9;
  pulse.fall = 0.5e-9;
  pulse.width = 30e-9;
  ckt.emplace<VoltageSource>("V1", in, ckt.ground(),
                             std::make_unique<PulseWaveform>(pulse));
  ckt.emplace<Memristor>("M1", in, ckt.ground(), &model);

  TransientOptions opt;
  opt.tStop = 100e-9;
  opt.dtMax = 1e-9;
  const auto result = runTransient(ckt, opt);
  ASSERT_TRUE(result.completed);
  // Integral of |v| dt ~ 1 V * ~30.5 ns -> dG ~ 0.305 S.
  EXPECT_NEAR(model.conductanceNow(), 1e-4 + 0.305, 0.02);
}

TEST(Transient, RejectsNonPositiveStopTime) {
  Circuit ckt;
  TransientOptions opt;
  opt.tStop = 0.0;
  EXPECT_THROW(runTransient(ckt, opt), std::invalid_argument);
}

TEST(Transient, StepHookFires) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  ckt.emplace<VoltageSource>("V1", in, ckt.ground(), 1.0);
  ckt.emplace<Resistor>("R1", in, ckt.ground(), 1000.0);
  TransientOptions opt;
  opt.tStop = 10e-9;
  opt.dtMax = 1e-9;
  std::size_t calls = 0;
  double lastTime = 0.0;
  opt.onStepAccepted = [&](const nh::util::Vector&, double t, double) {
    ++calls;
    EXPECT_GT(t, lastTime);
    lastTime = t;
  };
  const auto result = runTransient(ckt, opt);
  ASSERT_TRUE(result.completed);
  EXPECT_GE(calls, 10u);
  EXPECT_NEAR(lastTime, 10e-9, 1e-12);
}

}  // namespace
}  // namespace nh::spice
