#include "fem/grid.hpp"

#include <gtest/gtest.h>

#include "fem/materials.hpp"

namespace nh::fem {
namespace {

TEST(VoxelGrid, IndexRoundTrip) {
  const VoxelGrid grid(4, 5, 6, 1e-9);
  for (std::size_t k = 0; k < 6; ++k) {
    for (std::size_t j = 0; j < 5; ++j) {
      for (std::size_t i = 0; i < 4; ++i) {
        const std::size_t linear = grid.index(i, j, k);
        const Voxel v = grid.voxel(linear);
        EXPECT_EQ(v.i, i);
        EXPECT_EQ(v.j, j);
        EXPECT_EQ(v.k, k);
      }
    }
  }
  EXPECT_EQ(grid.voxelCount(), 120u);
}

TEST(VoxelGrid, IndexIsXFastest) {
  const VoxelGrid grid(4, 5, 6, 1e-9);
  EXPECT_EQ(grid.index(1, 0, 0), 1u);
  EXPECT_EQ(grid.index(0, 1, 0), 4u);
  EXPECT_EQ(grid.index(0, 0, 1), 20u);
}

TEST(VoxelGrid, CentersAtHalfVoxel) {
  const VoxelGrid grid(2, 2, 2, 10e-9);
  EXPECT_DOUBLE_EQ(grid.xCenter(0), 5e-9);
  EXPECT_DOUBLE_EQ(grid.yCenter(1), 15e-9);
  EXPECT_DOUBLE_EQ(grid.zCenter(0), 5e-9);
}

TEST(VoxelGrid, MaterialSetAndCount) {
  VoxelGrid grid(3, 3, 3, 1e-9, Material::SiO2);
  EXPECT_EQ(grid.countMaterial(Material::SiO2), 27u);
  grid.setMaterial(1, 1, 1, Material::Filament);
  EXPECT_EQ(grid.countMaterial(Material::Filament), 1u);
  EXPECT_EQ(grid.countMaterial(Material::SiO2), 26u);
  EXPECT_EQ(grid.material(1, 1, 1), Material::Filament);
}

TEST(VoxelGrid, RejectsInvalidConstruction) {
  EXPECT_THROW(VoxelGrid(0, 1, 1, 1e-9), std::invalid_argument);
  EXPECT_THROW(VoxelGrid(1, 1, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(VoxelGrid(1, 1, 1, -1e-9), std::invalid_argument);
}

TEST(MaterialTable, DefaultsArePhysical) {
  const MaterialTable t = MaterialTable::defaults();
  // Metal conducts heat and charge far better than the oxides.
  EXPECT_GT(t.kappa(Material::Electrode), 10.0 * t.kappa(Material::SiO2));
  EXPECT_GT(t.sigma(Material::Electrode), 1e10 * t.sigma(Material::SiO2));
  EXPECT_GT(t.kappa(Material::SiSubstrate), t.kappa(Material::SiO2));
  EXPECT_GT(t.kappa(Material::Filament), t.kappa(Material::SwitchingOxide));
}

TEST(MaterialTable, WiedemannFranz) {
  // kappa = L * sigma * T; for sigma = 1e6 S/m at 300 K: ~7.3 W/mK.
  EXPECT_NEAR(MaterialTable::wiedemannFranz(1e6, 300.0), 7.32, 0.01);
}

}  // namespace
}  // namespace nh::fem
