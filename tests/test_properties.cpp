/// Cross-module property tests: randomised and parameterised invariants
/// that the physics and numerics must satisfy regardless of operating
/// point. These complement the per-module suites with wide sweeps.

#include <gtest/gtest.h>

#include <cmath>

#include "jart/model.hpp"
#include "util/rng.hpp"
#include "xbar/crosstalk.hpp"
#include "xbar/scheme.hpp"

namespace nh {
namespace {

// ---- conduction-solver invariants over random operating points ---------------

class ConductionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConductionProperty, SolveIsConsistentAndSmooth) {
  util::Rng rng(GetParam());
  const jart::Model model(jart::Params::paperDefaults());
  const auto& p = model.params();
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform();
    const double n = p.nDiscMin * std::pow(p.nDiscMax / p.nDiscMin, x);
    const double v = rng.uniform(-1.5, 1.5);
    const double t = rng.uniform(250.0, 600.0);
    const auto c = model.solveConduction(v, n, t);
    ASSERT_TRUE(c.converged) << "v=" << v << " n=" << n << " T=" << t;
    // Sign consistency.
    if (v > 0.01) EXPECT_GT(c.current, 0.0);
    if (v < -0.01) EXPECT_LT(c.current, 0.0);
    // Voltage division adds up.
    const double rOhmic = p.discResistance(n) + p.plugResistance() + p.rSeries;
    EXPECT_NEAR(c.vSchottky + c.current * rOhmic, v,
                1e-6 * std::max(1.0, std::fabs(v)));
    // Power is non-negative and bounded by |V*I|.
    EXPECT_GE(c.powerFilament, 0.0);
    EXPECT_LE(c.powerFilament, std::fabs(v * c.current) + 1e-18);
    // Local smoothness: a tiny voltage perturbation moves the current
    // continuously (no solver branch jumps).
    const double h = 1e-4;
    const auto cPlus = model.solveConduction(v + h, n, t);
    EXPECT_GE((cPlus.current - c.current) * (v >= 0 ? 1.0 : 1.0), 0.0)
        << "monotonicity at v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConductionProperty,
                         ::testing::Values(1u, 2u, 3u));

// ---- kinetics invariants ----------------------------------------------------------

class KineticsProperty : public ::testing::TestWithParam<double> {};

TEST_P(KineticsProperty, RateMonotoneInFieldAndTemperature) {
  const jart::Model model(jart::Params::paperDefaults());
  const double n = GetParam();
  double prevRate = 0.0;
  for (double v = 0.05; v <= 0.8; v += 0.05) {
    const double rate = model.ionicRate(v, n, 350.0);
    EXPECT_GT(rate, prevRate) << "v=" << v;
    prevRate = rate;
  }
  prevRate = 0.0;
  for (double t = 280.0; t <= 500.0; t += 20.0) {
    const double rate = model.ionicRate(0.3, n, t);
    EXPECT_GT(rate, prevRate) << "T=" << t;
    prevRate = rate;
  }
}

INSTANTIATE_TEST_SUITE_P(States, KineticsProperty,
                         ::testing::Values(1e24, 1e25, 1e26));

// ---- biasing-scheme invariants over random selections --------------------------

TEST(SchemeProperty, EveryCellLevelIsInTheSchemeSet) {
  util::Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t rows = 2 + rng.uniformInt(6);
    const std::size_t cols = 2 + rng.uniformInt(6);
    const std::size_t sr = rng.uniformInt(rows);
    const std::size_t sc = rng.uniformInt(cols);
    const double v = rng.bernoulli(0.5) ? 1.05 : -1.3;

    const auto half = xbar::cellVoltageMap(
        xbar::selectBias(xbar::BiasScheme::Half, rows, cols, sr, sc, v));
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        const double level = half(r, c);
        if (r == sr && c == sc) {
          EXPECT_NEAR(level, v, 1e-12);
        } else if (r == sr || c == sc) {
          EXPECT_NEAR(std::fabs(level), std::fabs(v) / 2.0, 1e-12);
        } else {
          EXPECT_NEAR(level, 0.0, 1e-12);
        }
      }
    }
    // V/3: no unselected cell may exceed |V|/3 (the scheme's guarantee).
    const auto third = xbar::cellVoltageMap(
        xbar::selectBias(xbar::BiasScheme::Third, rows, cols, sr, sc, v));
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        if (r == sr && c == sc) continue;
        EXPECT_LE(std::fabs(third(r, c)), std::fabs(v) / 3.0 + 1e-12);
      }
    }
  }
}

// ---- crosstalk-hub invariants ----------------------------------------------------

TEST(HubProperty, LinearityAndPositivity) {
  util::Rng rng(99);
  xbar::CrosstalkHub hub(5, 5, xbar::AlphaTable::analytic(50e-9));
  for (int trial = 0; trial < 50; ++trial) {
    util::Matrix a(5, 5, 0.0), b(5, 5, 0.0), sum(5, 5, 0.0);
    for (std::size_t r = 0; r < 5; ++r) {
      for (std::size_t c = 0; c < 5; ++c) {
        a(r, c) = rng.uniform(0.0, 300.0);
        b(r, c) = rng.uniform(0.0, 300.0);
        sum(r, c) = a(r, c) + b(r, c);
      }
    }
    const auto ta = hub.inputTemperatures(a);
    const auto tb = hub.inputTemperatures(b);
    const auto tSum = hub.inputTemperatures(sum);
    for (std::size_t r = 0; r < 5; ++r) {
      for (std::size_t c = 0; c < 5; ++c) {
        EXPECT_NEAR(tSum(r, c), ta(r, c) + tb(r, c), 1e-9);  // linearity
        EXPECT_GE(ta(r, c), 0.0);                            // positivity
      }
    }
  }
}

TEST(HubProperty, ScalingHomogeneity) {
  xbar::CrosstalkHub hub(5, 5, xbar::AlphaTable::analytic(30e-9));
  util::Matrix excess(5, 5, 0.0);
  excess(2, 2) = 100.0;
  const auto t1 = hub.inputTemperatures(excess);
  excess(2, 2) = 250.0;
  const auto t2 = hub.inputTemperatures(excess);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(t2(r, c), 2.5 * t1(r, c), 1e-9);
    }
  }
}

// ---- alpha-table invariants across the full spacing range -------------------------

class AlphaTableProperty : public ::testing::TestWithParam<double> {};

TEST_P(AlphaTableProperty, StructureHoldsAtEverySpacing) {
  const xbar::AlphaTable t = xbar::AlphaTable::analytic(GetParam() * 1e-9);
  // Decay with distance along every ray.
  EXPECT_GT(t.at(0, 1), t.at(0, 2));
  EXPECT_GT(t.at(1, 0), t.at(2, 0));
  EXPECT_GT(t.at(1, 1), t.at(2, 2));
  // Word-line dominance.
  EXPECT_GT(t.at(0, 1), t.at(1, 0));
  // All couplings within (0, 1); R_th positive.
  for (long long dr = -2; dr <= 2; ++dr) {
    for (long long dc = -2; dc <= 2; ++dc) {
      if (dr == 0 && dc == 0) continue;
      EXPECT_GT(t.at(dr, dc), 0.0);
      EXPECT_LT(t.at(dr, dc), 1.0);
    }
  }
  EXPECT_GT(t.rTh(), 1e5);
}

INSTANTIATE_TEST_SUITE_P(Spacings, AlphaTableProperty,
                         ::testing::Values(10.0, 20.0, 35.0, 50.0, 65.0, 80.0,
                                           90.0));

}  // namespace
}  // namespace nh
