/// End-to-end pipeline tests: FEM extraction -> crosstalk table -> circuit
/// engine -> attack, plus cross-checks between the analytic alpha tables and
/// fresh FEM extractions, and the normal-operation safety property the
/// security claim rests on.

#include <gtest/gtest.h>

#include "core/study.hpp"
#include "xbar/controller.hpp"

namespace nh::core {
namespace {

TEST(Pipeline, FemAlphasDriveTheAttack) {
  // Full paper flow on a coarse 3x3 geometry: extract alphas with the FEM,
  // hand R_th to the compact model, run the attack.
  StudyConfig cfg;
  cfg.rows = 3;
  cfg.cols = 3;
  cfg.spacing = 10e-9;
  cfg.useFemAlphas = true;
  AttackStudy study(cfg);

  // The FEM extraction produced a usable table.
  EXPECT_GT(study.alphas().at(0, 1), 0.05);
  EXPECT_LT(study.alphas().at(0, 1), 0.9);
  EXPECT_GT(study.rThEff(), 1e5);

  const AttackResult r = study.attackCenter(HammerPulse{}, 500000);
  ASSERT_TRUE(r.flipped);
  EXPECT_EQ(r.flippedCell.row, 1u);  // word-line neighbour of (1,1)
}

TEST(Pipeline, AnalyticTableTracksFemExtraction) {
  // The shipped analytic table was calibrated against the 5x5 extraction;
  // a fresh 5x5 run must stay within a few percent.
  StudyConfig cfg;
  cfg.spacing = 50e-9;
  cfg.useFemAlphas = true;
  AttackStudy fem(cfg);
  const xbar::AlphaTable analytic = xbar::AlphaTable::analytic(50e-9);
  EXPECT_NEAR(fem.alphas().at(0, 1), analytic.at(0, 1), 0.05 * analytic.at(0, 1));
  EXPECT_NEAR(fem.alphas().at(1, 0), analytic.at(1, 0), 0.05 * analytic.at(1, 0));
  EXPECT_NEAR(fem.rThEff(), analytic.rTh(), 0.05 * analytic.rTh());
}

TEST(Pipeline, NormalOperationIsSafeAttackIsNot) {
  // The security property: writing ordinary data (including rewriting the
  // aggressor cell a modest number of times) leaves neighbours intact;
  // hammering flips one.
  StudyConfig cfg;
  cfg.spacing = 10e-9;
  AttackStudy study(cfg);
  auto bench = study.makeBench();
  xbar::MemoryController controller(*bench.engine);

  // Regular use: write a pattern, rewrite some cells, read everything.
  controller.writeBit(2, 2, true);
  controller.writeBit(2, 0, true);
  for (int i = 0; i < 10; ++i) {
    controller.writeBit(2, 2, i % 2 == 0);
  }
  controller.writeBit(2, 2, true);
  EXPECT_EQ(controller.readBit(2, 1).state, xbar::CellState::Hrs);
  EXPECT_EQ(controller.readBit(2, 3).state, xbar::CellState::Hrs);

  // Now hammer: the neighbour flips within the budget.
  BitFlipDetector detector;
  bool flipped = false;
  controller.hammer(2, 2, 100000, 50e-9, 0.0, [&](std::size_t) {
    flipped = detector.classify(bench.array->cell(2, 1)) == ReadState::Lrs ||
              detector.classify(bench.array->cell(2, 3)) == ReadState::Lrs;
    return flipped;
  });
  EXPECT_TRUE(flipped);
}

TEST(Pipeline, VictimFollowsFourPhaseMechanics) {
  // Fig. 1 storyline: aggressor hot during hammering, victim temperature
  // elevated via crosstalk, victim state ratchets up, flip occurs.
  StudyConfig cfg;
  cfg.spacing = 10e-9;
  AttackStudy study(cfg);
  AttackConfig attack;
  attack.aggressors = {{2, 2}};
  attack.victims = {{2, 1}};
  attack.maxPulses = 100000;
  attack.traceSamples = 2000;
  const AttackResult r = study.attack(attack);
  ASSERT_TRUE(r.flipped);
  ASSERT_GT(r.tracePulse.size(), 5u);

  // Phase 2: aggressor filament runs hundreds of kelvin above ambient
  // somewhere in the trace (trace samples after the gap read ~ambient, but
  // the in-pulse callback samples catch hot instants).
  double maxAggressor = 0.0;
  double maxVictim = 0.0;
  for (std::size_t i = 0; i < r.tracePulse.size(); ++i) {
    maxAggressor = std::max(maxAggressor, r.traceAggressorTemperature[i]);
    maxVictim = std::max(maxVictim, r.traceVictimTemperature[i]);
  }
  EXPECT_GT(maxAggressor, 450.0);
  EXPECT_GT(maxVictim, 350.0);
  // Phase 4: state ends beyond the detection level.
  EXPECT_GT(r.traceVictimState.back(), 0.4);
}

TEST(Pipeline, StudyRejectsTinyArrays) {
  StudyConfig cfg;
  cfg.rows = 2;
  EXPECT_THROW(AttackStudy{cfg}, std::invalid_argument);
}

TEST(Pipeline, SweepHarnessesProduceOrderedSeries) {
  StudyConfig cfg;
  cfg.spacing = 10e-9;  // fast regime for the harness smoke test
  const auto byLength = sweepPulseLength(cfg, {30e-9, 90e-9}, 300000);
  ASSERT_EQ(byLength.size(), 2u);
  ASSERT_TRUE(byLength[0].flipped && byLength[1].flipped);
  EXPECT_GT(byLength[0].pulses, byLength[1].pulses);

  const auto bySpacing = sweepSpacing(cfg, {10e-9, 30e-9}, {50e-9}, 2000000);
  ASSERT_EQ(bySpacing.size(), 2u);
  ASSERT_TRUE(bySpacing[0].flipped && bySpacing[1].flipped);
  EXPECT_LT(bySpacing[0].pulses, bySpacing[1].pulses);

  const auto byAmbient = sweepAmbient(cfg, {300.0, 348.0}, {50e-9}, 2000000);
  ASSERT_EQ(byAmbient.size(), 2u);
  ASSERT_TRUE(byAmbient[0].flipped && byAmbient[1].flipped);
  EXPECT_GT(byAmbient[0].pulses, byAmbient[1].pulses);

  const auto byPattern = sweepPatterns(cfg, HammerPulse{}, 500000);
  ASSERT_EQ(byPattern.size(), 5u);
  // Ring (8 aggressors) is the most effective pattern.
  std::size_t ringPulses = 0, singlePulses = 0;
  for (const auto& p : byPattern) {
    ASSERT_TRUE(p.flipped) << patternName(p.pattern);
    if (p.pattern == AttackPattern::Ring) ringPulses = p.pulses;
    if (p.pattern == AttackPattern::SingleAggressor) singlePulses = p.pulses;
  }
  EXPECT_LT(ringPulses, singlePulses);
}

}  // namespace
}  // namespace nh::core
