#include "util/sparse.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/spmv.hpp"

namespace nh::util {
namespace {

TEST(TripletBuilder, AccumulatesDuplicates) {
  TripletBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.0);
  b.add(1, 1, 5.0);
  const auto m = SparseMatrix::fromTriplets(b);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  EXPECT_EQ(m.nonZeros(), 2u);
}

TEST(TripletBuilder, OutOfRangeThrows) {
  TripletBuilder b(2, 2);
  EXPECT_THROW(b.add(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(b.add(0, 2, 1.0), std::out_of_range);
}

TEST(SparseMatrix, RowsSortedByColumn) {
  TripletBuilder b(1, 4);
  b.add(0, 3, 3.0);
  b.add(0, 1, 1.0);
  b.add(0, 2, 2.0);
  const auto m = SparseMatrix::fromTriplets(b);
  ASSERT_EQ(m.colIdx().size(), 3u);
  EXPECT_EQ(m.colIdx()[0], 1u);
  EXPECT_EQ(m.colIdx()[1], 2u);
  EXPECT_EQ(m.colIdx()[2], 3u);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  Rng rng(7);
  const std::size_t n = 20;
  TripletBuilder b(n, n);
  std::vector<std::vector<double>> dense(n, std::vector<double>(n, 0.0));
  for (int k = 0; k < 120; ++k) {
    const std::size_t r = rng.uniformInt(n);
    const std::size_t c = rng.uniformInt(n);
    const double v = rng.uniform(-1.0, 1.0);
    b.add(r, c, v);
    dense[r][c] += v;
  }
  const auto m = SparseMatrix::fromTriplets(b);
  Vector x(n);
  for (auto& xi : x) xi = rng.uniform(-1.0, 1.0);
  const Vector y = m.multiply(x);
  for (std::size_t r = 0; r < n; ++r) {
    double expect = 0.0;
    for (std::size_t c = 0; c < n; ++c) expect += dense[r][c] * x[c];
    EXPECT_NEAR(y[r], expect, 1e-12);
  }
}

TEST(SparseMatrix, Diagonal) {
  TripletBuilder b(3, 3);
  b.add(0, 0, 1.0);
  b.add(2, 2, 3.0);
  b.add(0, 1, 9.0);
  const auto m = SparseMatrix::fromTriplets(b);
  const Vector d = m.diagonal();
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], 3.0);
}

TEST(SparseMatrix, SymmetryCheck) {
  TripletBuilder b(2, 2);
  b.add(0, 1, 2.0);
  b.add(1, 0, 2.0);
  EXPECT_TRUE(SparseMatrix::fromTriplets(b).isSymmetric());

  TripletBuilder b2(2, 2);
  b2.add(0, 1, 2.0);
  EXPECT_FALSE(SparseMatrix::fromTriplets(b2).isSymmetric());
}

TEST(SparseMatrix, AtOutOfRangeThrows) {
  TripletBuilder b(2, 2);
  const auto m = SparseMatrix::fromTriplets(b);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
}

TEST(SparseMatrix, TransposedMatchesAt) {
  Rng rng(11);
  TripletBuilder b(6, 9);
  for (int k = 0; k < 25; ++k) {
    b.add(rng.uniformInt(6), rng.uniformInt(9), rng.uniform(-2.0, 2.0));
  }
  const auto m = SparseMatrix::fromTriplets(b);
  const auto t = m.transposed();
  ASSERT_EQ(t.rows(), m.cols());
  ASSERT_EQ(t.cols(), m.rows());
  ASSERT_EQ(t.nonZeros(), m.nonZeros());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      EXPECT_DOUBLE_EQ(t.at(c, r), m.at(r, c));
    }
  }
  // CSR invariant: every transposed row keeps strictly increasing columns.
  for (std::size_t r = 0; r < t.rows(); ++r) {
    for (std::size_t k = t.rowPtr()[r] + 1; k < t.rowPtr()[r + 1]; ++k) {
      EXPECT_LT(t.colIdx()[k - 1], t.colIdx()[k]);
    }
  }
}

TEST(SparseMatrix, MultiplySparseMatchesDenseProduct) {
  Rng rng(23);
  TripletBuilder ba(5, 7);
  TripletBuilder bb(7, 4);
  for (int k = 0; k < 20; ++k) {
    ba.add(rng.uniformInt(5), rng.uniformInt(7), rng.uniform(-1.0, 1.0));
    bb.add(rng.uniformInt(7), rng.uniformInt(4), rng.uniform(-1.0, 1.0));
  }
  const auto a = SparseMatrix::fromTriplets(ba);
  const auto b = SparseMatrix::fromTriplets(bb);
  const auto c = multiplySparse(a, b);
  ASSERT_EQ(c.rows(), 5u);
  ASSERT_EQ(c.cols(), 4u);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t col = 0; col < 4; ++col) {
      double ref = 0.0;
      for (std::size_t k = 0; k < 7; ++k) ref += a.at(r, k) * b.at(k, col);
      EXPECT_NEAR(c.at(r, col), ref, 1e-14) << r << "," << col;
    }
  }
  // Sorted-column invariant holds for the product rows too.
  for (std::size_t r = 0; r < c.rows(); ++r) {
    for (std::size_t k = c.rowPtr()[r] + 1; k < c.rowPtr()[r + 1]; ++k) {
      EXPECT_LT(c.colIdx()[k - 1], c.colIdx()[k]);
    }
  }
}

TEST(SparseMatrix, MultiplySparseShapeMismatchThrows) {
  TripletBuilder ba(2, 3);
  TripletBuilder bb(2, 2);
  EXPECT_THROW(multiplySparse(SparseMatrix::fromTriplets(ba),
                              SparseMatrix::fromTriplets(bb)),
               std::invalid_argument);
}

// ---- SpMV kernel dispatch ---------------------------------------------------

/// Matrix whose row r has exactly rowWidths[r] entries at distinct random
/// columns -- the shape harness for the SIMD-vs-reference agreement sweep.
SparseMatrix matrixWithRowWidths(const std::vector<std::size_t>& rowWidths,
                                 std::size_t cols, Rng& rng) {
  TripletBuilder b(rowWidths.size(), cols);
  std::vector<std::size_t> perm(cols);
  for (std::size_t r = 0; r < rowWidths.size(); ++r) {
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    for (std::size_t i = 0; i < rowWidths[r]; ++i) {  // partial Fisher-Yates
      const std::size_t j = i + rng.uniformInt(cols - i);
      std::swap(perm[i], perm[j]);
      b.add(r, perm[i], rng.uniform(-2.0, 2.0));
    }
  }
  return SparseMatrix::fromTriplets(b);
}

TEST(SpMvKernel, DispatchedKernelMatchesReferenceOnAdversarialShapes) {
  // Every row shape the dispatch logic branches on: empty rows, single
  // entries, widths straddling the 4-wide unroll (3/4/5), the wide-row
  // threshold (15/16/17), the 8-wide block boundary (23/24/25), stencil
  // widths (7, 27), and unaligned widths past the threshold. The dispatched
  // kernel (AVX2 where the CPU has it) must agree with the scalar reference
  // BIT-FOR-BIT on all of them -- the reference is the specification.
  const std::vector<std::size_t> widths = {0,  1,  2,  3,  4,  5,  7,  8,
                                           9,  15, 16, 17, 23, 24, 25, 27,
                                           31, 32, 33, 0,  16, 1,  40, 27};
  Rng rng(913);
  const std::size_t cols = 64;
  const SparseMatrix m = matrixWithRowWidths(widths, cols, rng);
  Vector x(cols);
  for (auto& v : x) v = rng.uniform(-3.0, 3.0);

  Vector yRef(m.rows(), -1.0);
  spmv::rowRangeReference(m.rowPtr().data(), m.colIdx().data(),
                          m.values().data(), x.data(), yRef.data(), 0,
                          m.rows());
  Vector yDispatch(m.rows(), -2.0);
  spmv::activeKernel()(m.rowPtr().data(), m.colIdx().data(),
                       m.values().data(), x.data(), yDispatch.data(), 0,
                       m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    EXPECT_EQ(yDispatch[r], yRef[r]) << "row " << r << " width "
                                     << m.rowPtr()[r + 1] - m.rowPtr()[r];
  }
  // Empty rows must write an exact 0.0, not skip the slot.
  EXPECT_EQ(yRef[0], 0.0);
  EXPECT_EQ(yDispatch[0], 0.0);

  // And the blocked accumulation agrees with the naive ordered sum within
  // float tolerance (catches a kernel that is self-consistent but wrong).
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double naive = 0.0;
    for (std::size_t k = m.rowPtr()[r]; k < m.rowPtr()[r + 1]; ++k) {
      naive += m.values()[k] * x[m.colIdx()[k]];
    }
    EXPECT_NEAR(yRef[r], naive, 1e-12) << "row " << r;
  }
}

TEST(SpMvKernel, MultiplyIntoMatchesReferenceEntryPoint) {
  // The matrix-level entry points route through the same kernels: the
  // dispatched multiplyInto must be bit-identical to multiplyIntoReference
  // on a mixed narrow/wide operator with an unaligned nnz total.
  Rng rng(77);
  std::vector<std::size_t> widths;
  for (std::size_t r = 0; r < 300; ++r) widths.push_back(r % 41);
  const std::size_t cols = 64;
  const SparseMatrix m = matrixWithRowWidths(widths, cols, rng);
  Vector x(cols);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  Vector yFast(m.rows(), 0.0), yRef(m.rows(), 0.0);
  m.multiplyInto(x, yFast);
  m.multiplyIntoReference(x, yRef);
  EXPECT_EQ(yFast, yRef);  // bit-identical
}

// ---- SpGemm / transpose plans ----------------------------------------------

/// Stamp the same random structure with values scaled by \p scale: re-runs
/// produce structurally identical matrices whose values differ -- the
/// frozen-hierarchy rebuild shape the plans exist for.
SparseMatrix stampScaled(std::size_t rows, std::size_t cols, int entries,
                         double scale, unsigned seed) {
  Rng rng(seed);
  TripletBuilder b(rows, cols);
  for (int k = 0; k < entries; ++k) {
    b.add(rng.uniformInt(rows), rng.uniformInt(cols),
          scale * rng.uniform(-1.0, 1.0));
  }
  return SparseMatrix::fromTriplets(b);
}

TEST(SpGemmPlan, RefillBitIdenticalToFreshSpGemm) {
  const auto a1 = stampScaled(40, 30, 220, 1.0, 5);
  const auto b1 = stampScaled(30, 35, 200, 1.0, 6);
  SpGemmPlan plan;
  SparseMatrix c;
  plan.multiply(a1, b1, c);
  EXPECT_FALSE(plan.lastWasRefill());
  EXPECT_EQ(plan.symbolicCount(), 1u);

  // Same structures, new values: the refill must be bit-identical to a
  // fresh Gustavson product (it replays the same accumulation order).
  const auto a2 = stampScaled(40, 30, 220, 1.7, 5);
  const auto b2 = stampScaled(30, 35, 200, -0.3, 6);
  ASSERT_EQ(a2.colIdx(), a1.colIdx());  // harness sanity: structure reused
  const double* valuesPtr = c.values().data();
  plan.multiply(a2, b2, c);
  EXPECT_TRUE(plan.lastWasRefill());
  EXPECT_EQ(plan.symbolicCount(), 1u);
  EXPECT_EQ(c.values().data(), valuesPtr);  // no reallocation

  const SparseMatrix fresh = multiplySparse(a2, b2);
  EXPECT_EQ(c.rowPtr(), fresh.rowPtr());
  EXPECT_EQ(c.colIdx(), fresh.colIdx());
  EXPECT_EQ(c.values(), fresh.values());  // bit-identical
}

TEST(SpGemmPlan, StructureChangeFallsBackToSymbolic) {
  SpGemmPlan plan;
  SparseMatrix c;
  plan.multiply(stampScaled(20, 20, 80, 1.0, 9), stampScaled(20, 20, 80, 1.0, 10),
                c);
  const auto aNew = stampScaled(20, 20, 95, 1.0, 11);  // different pattern
  const auto bNew = stampScaled(20, 20, 80, 1.0, 10);
  plan.multiply(aNew, bNew, c);
  EXPECT_FALSE(plan.lastWasRefill());
  EXPECT_EQ(plan.symbolicCount(), 2u);
  const SparseMatrix fresh = multiplySparse(aNew, bNew);
  EXPECT_EQ(c.colIdx(), fresh.colIdx());
  EXPECT_EQ(c.values(), fresh.values());

  // A fresh output matrix fed to a matching plan gets the cached structure
  // copied in (the SparsityPattern::assemble contract).
  SparseMatrix other;
  plan.multiply(aNew, bNew, other);
  EXPECT_TRUE(plan.lastWasRefill());
  EXPECT_EQ(other.colIdx(), fresh.colIdx());
  EXPECT_EQ(other.values(), fresh.values());
}

TEST(SpGemmPlan, ShapeMismatchThrows) {
  SpGemmPlan plan;
  SparseMatrix c;
  EXPECT_THROW(plan.multiply(stampScaled(4, 3, 6, 1.0, 1),
                             stampScaled(2, 2, 3, 1.0, 2), c),
               std::invalid_argument);
}

TEST(TransposePlan, RefillBitIdenticalToTransposed) {
  TransposePlan plan;
  SparseMatrix t;
  const auto a1 = stampScaled(25, 40, 160, 1.0, 21);
  plan.transpose(a1, t);
  EXPECT_FALSE(plan.lastWasRefill());
  EXPECT_EQ(plan.symbolicCount(), 1u);

  const auto a2 = stampScaled(25, 40, 160, 2.5, 21);  // values changed only
  const double* valuesPtr = t.values().data();
  plan.transpose(a2, t);
  EXPECT_TRUE(plan.lastWasRefill());
  EXPECT_EQ(plan.symbolicCount(), 1u);
  EXPECT_EQ(t.values().data(), valuesPtr);  // no reallocation
  const SparseMatrix fresh = a2.transposed();
  EXPECT_EQ(t.rowPtr(), fresh.rowPtr());
  EXPECT_EQ(t.colIdx(), fresh.colIdx());
  EXPECT_EQ(t.values(), fresh.values());  // bit-identical

  const auto aWider = stampScaled(25, 40, 200, 1.0, 22);  // new structure
  plan.transpose(aWider, t);
  EXPECT_FALSE(plan.lastWasRefill());
  EXPECT_EQ(plan.symbolicCount(), 2u);
  const SparseMatrix freshWider = aWider.transposed();
  EXPECT_EQ(t.colIdx(), freshWider.colIdx());
  EXPECT_EQ(t.values(), freshWider.values());
}

}  // namespace
}  // namespace nh::util
