#include "util/sparse.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.hpp"

namespace nh::util {
namespace {

TEST(TripletBuilder, AccumulatesDuplicates) {
  TripletBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.0);
  b.add(1, 1, 5.0);
  const auto m = SparseMatrix::fromTriplets(b);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  EXPECT_EQ(m.nonZeros(), 2u);
}

TEST(TripletBuilder, OutOfRangeThrows) {
  TripletBuilder b(2, 2);
  EXPECT_THROW(b.add(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(b.add(0, 2, 1.0), std::out_of_range);
}

TEST(SparseMatrix, RowsSortedByColumn) {
  TripletBuilder b(1, 4);
  b.add(0, 3, 3.0);
  b.add(0, 1, 1.0);
  b.add(0, 2, 2.0);
  const auto m = SparseMatrix::fromTriplets(b);
  ASSERT_EQ(m.colIdx().size(), 3u);
  EXPECT_EQ(m.colIdx()[0], 1u);
  EXPECT_EQ(m.colIdx()[1], 2u);
  EXPECT_EQ(m.colIdx()[2], 3u);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  Rng rng(7);
  const std::size_t n = 20;
  TripletBuilder b(n, n);
  std::vector<std::vector<double>> dense(n, std::vector<double>(n, 0.0));
  for (int k = 0; k < 120; ++k) {
    const std::size_t r = rng.uniformInt(n);
    const std::size_t c = rng.uniformInt(n);
    const double v = rng.uniform(-1.0, 1.0);
    b.add(r, c, v);
    dense[r][c] += v;
  }
  const auto m = SparseMatrix::fromTriplets(b);
  Vector x(n);
  for (auto& xi : x) xi = rng.uniform(-1.0, 1.0);
  const Vector y = m.multiply(x);
  for (std::size_t r = 0; r < n; ++r) {
    double expect = 0.0;
    for (std::size_t c = 0; c < n; ++c) expect += dense[r][c] * x[c];
    EXPECT_NEAR(y[r], expect, 1e-12);
  }
}

TEST(SparseMatrix, Diagonal) {
  TripletBuilder b(3, 3);
  b.add(0, 0, 1.0);
  b.add(2, 2, 3.0);
  b.add(0, 1, 9.0);
  const auto m = SparseMatrix::fromTriplets(b);
  const Vector d = m.diagonal();
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], 3.0);
}

TEST(SparseMatrix, SymmetryCheck) {
  TripletBuilder b(2, 2);
  b.add(0, 1, 2.0);
  b.add(1, 0, 2.0);
  EXPECT_TRUE(SparseMatrix::fromTriplets(b).isSymmetric());

  TripletBuilder b2(2, 2);
  b2.add(0, 1, 2.0);
  EXPECT_FALSE(SparseMatrix::fromTriplets(b2).isSymmetric());
}

TEST(SparseMatrix, AtOutOfRangeThrows) {
  TripletBuilder b(2, 2);
  const auto m = SparseMatrix::fromTriplets(b);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
}

TEST(SparseMatrix, TransposedMatchesAt) {
  Rng rng(11);
  TripletBuilder b(6, 9);
  for (int k = 0; k < 25; ++k) {
    b.add(rng.uniformInt(6), rng.uniformInt(9), rng.uniform(-2.0, 2.0));
  }
  const auto m = SparseMatrix::fromTriplets(b);
  const auto t = m.transposed();
  ASSERT_EQ(t.rows(), m.cols());
  ASSERT_EQ(t.cols(), m.rows());
  ASSERT_EQ(t.nonZeros(), m.nonZeros());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      EXPECT_DOUBLE_EQ(t.at(c, r), m.at(r, c));
    }
  }
  // CSR invariant: every transposed row keeps strictly increasing columns.
  for (std::size_t r = 0; r < t.rows(); ++r) {
    for (std::size_t k = t.rowPtr()[r] + 1; k < t.rowPtr()[r + 1]; ++k) {
      EXPECT_LT(t.colIdx()[k - 1], t.colIdx()[k]);
    }
  }
}

TEST(SparseMatrix, MultiplySparseMatchesDenseProduct) {
  Rng rng(23);
  TripletBuilder ba(5, 7);
  TripletBuilder bb(7, 4);
  for (int k = 0; k < 20; ++k) {
    ba.add(rng.uniformInt(5), rng.uniformInt(7), rng.uniform(-1.0, 1.0));
    bb.add(rng.uniformInt(7), rng.uniformInt(4), rng.uniform(-1.0, 1.0));
  }
  const auto a = SparseMatrix::fromTriplets(ba);
  const auto b = SparseMatrix::fromTriplets(bb);
  const auto c = multiplySparse(a, b);
  ASSERT_EQ(c.rows(), 5u);
  ASSERT_EQ(c.cols(), 4u);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t col = 0; col < 4; ++col) {
      double ref = 0.0;
      for (std::size_t k = 0; k < 7; ++k) ref += a.at(r, k) * b.at(k, col);
      EXPECT_NEAR(c.at(r, col), ref, 1e-14) << r << "," << col;
    }
  }
  // Sorted-column invariant holds for the product rows too.
  for (std::size_t r = 0; r < c.rows(); ++r) {
    for (std::size_t k = c.rowPtr()[r] + 1; k < c.rowPtr()[r + 1]; ++k) {
      EXPECT_LT(c.colIdx()[k - 1], c.colIdx()[k]);
    }
  }
}

TEST(SparseMatrix, MultiplySparseShapeMismatchThrows) {
  TripletBuilder ba(2, 3);
  TripletBuilder bb(2, 2);
  EXPECT_THROW(multiplySparse(SparseMatrix::fromTriplets(ba),
                              SparseMatrix::fromTriplets(bb)),
               std::invalid_argument);
}

}  // namespace
}  // namespace nh::util
