#include "xbar/crosstalk.hpp"

#include <gtest/gtest.h>

#include "fem/geometry.hpp"

namespace nh::xbar {
namespace {

TEST(AlphaTable, AnalyticMatchesCanonicalSpacings) {
  // At the canonical FEM spacings the interpolation must return the
  // extracted values themselves.
  const AlphaTable at50 = AlphaTable::analytic(50e-9);
  EXPECT_NEAR(at50.at(0, 1), 0.2572, 1e-4);
  EXPECT_NEAR(at50.at(1, 0), 0.1265, 1e-4);
  EXPECT_NEAR(at50.at(1, 1), 0.1011, 1e-4);
  EXPECT_NEAR(at50.at(2, 2), 0.0577, 1e-4);
  EXPECT_NEAR(at50.rTh(), 1.93e6, 1e4);

  const AlphaTable at10 = AlphaTable::analytic(10e-9);
  EXPECT_NEAR(at10.at(0, 1), 0.4362, 1e-4);
  const AlphaTable at90 = AlphaTable::analytic(90e-9);
  EXPECT_NEAR(at90.at(0, 1), 0.1609, 1e-4);
}

TEST(AlphaTable, AnalyticInterpolatesMonotonically) {
  double previous = 1.0;
  for (const double s : {10e-9, 30e-9, 50e-9, 70e-9, 90e-9}) {
    const AlphaTable t = AlphaTable::analytic(s);
    EXPECT_LT(t.at(0, 1), previous) << "spacing " << s;
    previous = t.at(0, 1);
    // Structure holds at every spacing.
    EXPECT_GT(t.at(0, 1), t.at(1, 0));   // word-line > bit-line coupling
    EXPECT_GT(t.at(1, 0), t.at(2, 2));   // near > far
    EXPECT_DOUBLE_EQ(t.at(0, 0), 0.0);   // self-coupling excluded
  }
}

TEST(AlphaTable, SymmetryOfOffsets) {
  const AlphaTable t = AlphaTable::analytic(50e-9);
  EXPECT_DOUBLE_EQ(t.at(0, 1), t.at(0, -1));
  EXPECT_DOUBLE_EQ(t.at(1, 0), t.at(-1, 0));
  EXPECT_DOUBLE_EQ(t.at(1, -2), t.at(-1, 2));
}

TEST(AlphaTable, OutsideRadiusIsZero) {
  const AlphaTable t = AlphaTable::analytic(50e-9);
  EXPECT_DOUBLE_EQ(t.at(3, 0), 0.0);
  EXPECT_DOUBLE_EQ(t.at(0, -3), 0.0);
}

TEST(AlphaTable, SetAndTruncate) {
  AlphaTable t = AlphaTable::analytic(50e-9);
  t.set(2, 2, 0.5);
  EXPECT_DOUBLE_EQ(t.at(2, 2), 0.5);
  EXPECT_THROW(t.set(0, 0, 0.1), std::invalid_argument);
  EXPECT_THROW(t.set(5, 0, 0.1), std::out_of_range);
  const double before = t.totalCoupling();
  t.truncate(1);
  EXPECT_LT(t.totalCoupling(), before);
  EXPECT_DOUBLE_EQ(t.at(2, 2), 0.0);
  EXPECT_GT(t.at(1, 1), 0.0);
}

TEST(AlphaTable, FromExtractionPreservesOffsets) {
  fem::CrossbarLayout layout;
  layout.rows = 3;
  layout.cols = 3;
  layout.margin = 20e-9;
  const auto model = fem::CrossbarModel3D::build(layout);
  const auto extraction = fem::extractAlpha(model, fem::MaterialTable::defaults(),
                                            1, 1, {0.05e-3, 0.1e-3}, 300.0);
  const AlphaTable table = AlphaTable::fromExtraction(extraction);
  EXPECT_DOUBLE_EQ(table.at(0, 1), extraction.alpha(1, 2));
  EXPECT_DOUBLE_EQ(table.at(-1, -1), extraction.alpha(0, 0));
  EXPECT_DOUBLE_EQ(table.rTh(), extraction.rTh);
  EXPECT_DOUBLE_EQ(table.at(0, 0), 0.0);
}

TEST(CrosstalkHub, Eq5MatchesHandComputation) {
  AlphaTable t = AlphaTable::analytic(50e-9);
  CrosstalkHub hub(5, 5, t);
  nh::util::Matrix excess(5, 5, 0.0);
  excess(2, 2) = 200.0;  // only the centre cell is hot
  const auto tin = hub.inputTemperatures(excess);
  EXPECT_DOUBLE_EQ(tin(2, 2), 0.0);  // no self-coupling
  EXPECT_NEAR(tin(2, 1), t.at(0, 1) * 200.0, 1e-9);
  EXPECT_NEAR(tin(1, 2), t.at(1, 0) * 200.0, 1e-9);
  EXPECT_NEAR(tin(0, 0), t.at(2, 2) * 200.0, 1e-9);
}

TEST(CrosstalkHub, SuperpositionOfTwoSources) {
  AlphaTable t = AlphaTable::analytic(50e-9);
  CrosstalkHub hub(5, 5, t);
  nh::util::Matrix a(5, 5, 0.0), b(5, 5, 0.0), both(5, 5, 0.0);
  a(2, 1) = 100.0;
  b(2, 3) = 150.0;
  both(2, 1) = 100.0;
  both(2, 3) = 150.0;
  const auto ta = hub.inputTemperatures(a);
  const auto tb = hub.inputTemperatures(b);
  const auto tBoth = hub.inputTemperatures(both);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(tBoth(r, c), ta(r, c) + tb(r, c), 1e-9);
    }
  }
}

TEST(CrosstalkHub, EdgeCellsSeeFewerNeighbours) {
  AlphaTable t = AlphaTable::analytic(50e-9);
  CrosstalkHub hub(5, 5, t);
  nh::util::Matrix uniform(5, 5, 100.0);
  const auto tin = hub.inputTemperatures(uniform);
  EXPECT_GT(tin(2, 2), tin(0, 0));  // interior receives from all sides
}

TEST(CrosstalkHub, SolveCoupledExcessIncludesSelfAndNeighbours) {
  AlphaTable t = AlphaTable::analytic(50e-9);
  CrosstalkHub hub(5, 5, t);
  nh::util::Matrix power(5, 5, 0.0);
  power(2, 2) = 1e-4;
  const double rth = 2e6;
  const auto excess = hub.solveCoupledExcess(power, rth);
  EXPECT_NEAR(excess(2, 2), rth * 1e-4, 1e-6);
  EXPECT_NEAR(excess(2, 1), t.at(0, 1) * rth * 1e-4, 1e-6);
}

TEST(CrosstalkHub, ShapeValidation) {
  CrosstalkHub hub(3, 3, AlphaTable::analytic(50e-9));
  nh::util::Matrix wrong(2, 3, 0.0);
  EXPECT_THROW(hub.inputTemperatures(wrong), std::invalid_argument);
  EXPECT_THROW(hub.solveCoupledExcess(wrong, 1e6), std::invalid_argument);
  EXPECT_THROW(CrosstalkHub(0, 3, AlphaTable::analytic(50e-9)),
               std::invalid_argument);
}

TEST(AlphaTable, InvalidSpacingThrows) {
  EXPECT_THROW(AlphaTable::analytic(0.0), std::invalid_argument);
  EXPECT_THROW(AlphaTable::analytic(-1e-9), std::invalid_argument);
}

}  // namespace
}  // namespace nh::xbar
