/// Statistical campaign: seed-stable Monte-Carlo over device variability
/// with Wilson / bootstrap confidence intervals on the flip statistics.
/// Declared in the experiment registry ("campaign_flip_rate").

#include "bench_common.hpp"

int main() { return nh::bench::runRegistered("campaign_flip_rate"); }
