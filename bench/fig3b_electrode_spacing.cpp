/// Fig. 3b reproduction: pulses-to-flip vs electrode spacing (10/50/90 nm)
/// for pulse lengths 50/75/100 ns at 300 K. Paper: the closer the cells,
/// the more vulnerable -- roughly 10^3 pulses at 10 nm up to 10^5 at 90 nm.

#include <cstdio>

#include "bench_common.hpp"
#include "core/study.hpp"

int main() {
  using namespace nh;
  bench::banner("Fig. 3b -- impact of the electrode spacing",
                "centre-cell attack, pulse lengths {50, 75, 100} ns, T0 = 300 K",
                "pulses-to-flip rises ~2 decades from 10 nm to 90 nm; longer "
                "pulses need proportionally fewer");

  core::StudyConfig cfg;
  const std::vector<double> spacings = {10e-9, 50e-9, 90e-9};
  const std::vector<double> widths =
      bench::fastMode() ? std::vector<double>{50e-9}
                        : std::vector<double>{50e-9, 75e-9, 100e-9};
  const auto points = core::sweepSpacing(cfg, spacings, widths, 5'000'000,
                                         bench::sweepThreads());

  util::AsciiTable table({"spacing", "pulse length", "# pulses to flip", "flipped"});
  table.setTitle("Fig. 3b: pulses to trigger a bit-flip vs electrode spacing");
  util::CsvTable csv({"spacing_nm", "pulse_length_ns", "pulses", "flipped"});
  for (const auto& p : points) {
    table.addRow({util::AsciiTable::si(p.parameter, "m", 0),
                  util::AsciiTable::si(p.series, "s", 0),
                  util::AsciiTable::grouped(static_cast<long long>(p.pulses)),
                  p.flipped ? "yes" : "NO (budget)"});
    csv.addRow(std::vector<double>{p.parameter * 1e9, p.series * 1e9,
                                   static_cast<double>(p.pulses),
                                   p.flipped ? 1.0 : 0.0});
  }
  table.addNote("paper @50 ns: ~10^3 (10 nm) -> ~10^4 (50 nm) -> ~10^5 (90 nm)");
  table.print();
  bench::saveCsv(csv, "fig3b_electrode_spacing.csv");
  return 0;
}
