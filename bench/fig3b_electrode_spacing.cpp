/// Fig. 3b reproduction: pulses-to-flip vs electrode spacing (10/50/90 nm)
/// for pulse lengths 50/75/100 ns at 300 K. Declared in the experiment
/// registry ("fig3b_electrode_spacing"); the engine's study-dedup cache
/// builds one AttackStudy per spacing and shares it across the width
/// series.

#include "bench_common.hpp"

int main() { return nh::bench::runRegistered("fig3b_electrode_spacing"); }
