/// Fig. 2a reproduction: the temperature matrix of the 5x5 memristive
/// crossbar while the centre cell is driven in LRS at V_SET. The paper's
/// matrix (COMSOL) shows the hammered cell at 947.2 K with the same-word-
/// line neighbours hottest (394/373/375/394 K row) and the far corners near
/// 320 K. We solve the same PDEs on our FEM substrate and print the cell
/// temperature matrix at the dissipated power that brings the centre cell
/// to the paper's 947 K operating point.

#include <cstdio>

#include "bench_common.hpp"
#include "fem/alpha.hpp"

int main() {
  using namespace nh;
  bench::banner(
      "Fig. 2a -- thermal coupling in a 5x5 memristive crossbar",
      "FEM solve (Eq. 1/2 discretised), electrode spacing 50 nm, T0 = 300 K",
      "centre cell ~947 K >> same-word-line neighbours > bit-line neighbours "
      "> diagonal > far corners (~320 K)");

  // Paper defaults: 5x5, 50 nm spacing. The 5 nm voxel is required to
  // resolve the 5 nm filament, and the solve takes only a few seconds, so
  // fast mode does not coarsen it.
  fem::CrossbarLayout layout;
  const auto model = fem::CrossbarModel3D::build(layout);
  std::printf("grid: %zu x %zu x %zu voxels (%.0f nm resolution)\n",
              model.grid().nx(), model.grid().ny(), model.grid().nz(),
              layout.voxelSize * 1e9);

  const auto extraction = fem::extractAlpha(
      model, fem::MaterialTable::defaults(), 2, 2,
      {0.05e-3, 0.10e-3, 0.15e-3}, 300.0);
  std::printf("extracted R_th = %.3e K/W (R^2 = %.6f)\n", extraction.rTh,
              extraction.rThRSquared);

  // Paper operating point: centre cell at 947.2 K.
  const double power = (947.2 - 300.0) / extraction.rTh;
  std::printf("dissipated power for T_centre = 947.2 K: %.3e W\n\n", power);

  util::AsciiTable table({"row\\col", "0", "1", "2", "3", "4"});
  table.setTitle("Temperature values of the 5x5 crossbar [K] (measured)");
  const auto temps = extraction.predictTemperatures(power);
  util::CsvTable csv({"row", "col", "temperature_K", "alpha"});
  for (std::size_t r = 0; r < 5; ++r) {
    std::vector<std::string> row{std::to_string(r)};
    for (std::size_t c = 0; c < 5; ++c) {
      row.push_back(util::AsciiTable::fixed(temps(r, c), 1));
      csv.addRow(std::vector<double>{static_cast<double>(r),
                                     static_cast<double>(c), temps(r, c),
                                     extraction.alpha(r, c)});
    }
    table.addRow(row);
  }
  table.addNote("paper (row containing the hammered cell): 394.4  373.0  947.2  375.6  393.8");
  table.addNote("paper (far corners): 319.9 .. 321.0");
  table.print();

  util::AsciiTable alphaTable({"row\\col", "0", "1", "2", "3", "4"});
  alphaTable.setTitle("\nExtracted alpha values (Eq. 4)");
  for (std::size_t r = 0; r < 5; ++r) {
    std::vector<std::string> row{std::to_string(r)};
    for (std::size_t c = 0; c < 5; ++c) {
      row.push_back(util::AsciiTable::fixed(extraction.alpha(r, c), 4));
    }
    alphaTable.addRow(row);
  }
  alphaTable.print();

  bench::saveCsv(csv, "fig2a_thermal_matrix.csv");
  return 0;
}
