/// Fig. 2a reproduction: the temperature matrix of the 5x5 memristive
/// crossbar while the centre cell is driven in LRS at V_SET, plus the
/// extracted alpha matrix (Eq. 4). The paper's matrix (COMSOL) shows the
/// hammered cell at 947.2 K with the same-word-line neighbours hottest.
/// Registered as "fig2a_thermal_matrix" with matrix-shaped result cells;
/// this driver is banner + registry lookup + shared result emission.

#include "bench_common.hpp"

int main() { return nh::bench::runRegistered("fig2a_thermal_matrix"); }
