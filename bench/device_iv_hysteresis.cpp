/// Compact-model documentation artefact: the quasi-static bipolar I-V
/// hysteresis ("butterfly") loop of one cell -- SET on the positive branch,
/// RESET on the negative branch. Not a paper figure, but the standard
/// fingerprint any ReRAM compact model is judged by, and the direct way to
/// see the V_SET ~ 1.05 V operating point the attack pulses use.

#include <cstdio>

#include "bench_common.hpp"
#include "jart/ivsweep.hpp"

int main() {
  using namespace nh;
  bench::banner("device I-V hysteresis (JART-style compact model)",
                "triangular sweep 0 -> +1.3 V -> -1.5 V -> 0 at 10 V/us",
                "abrupt SET near ~1 V on the up-branch, gradual RESET on the "
                "negative branch, >10x read-current hysteresis at +0.2 V");

  const jart::Params params = jart::Params::paperDefaults();
  jart::IvSweepOptions options;
  if (bench::fastMode()) options.samples = 120;
  const auto loop = jart::sweepIV(params, options);
  const auto metrics = jart::analyseLoop(params, loop);

  util::AsciiTable table({"t [us]", "V [V]", "I [A]", "state x", "T [K]"});
  table.setTitle("I-V loop (decimated)");
  util::CsvTable csv({"time_s", "voltage_V", "current_A", "nDisc", "T_K"});
  const std::size_t every = loop.size() / 24 + 1;
  for (std::size_t i = 0; i < loop.size(); ++i) {
    const auto& p = loop[i];
    csv.addRow(std::vector<double>{p.time, p.voltage, p.current, p.nDisc,
                                   p.temperatureK});
    if (i % every == 0) {
      table.addRow({util::AsciiTable::fixed(p.time * 1e6, 3),
                    util::AsciiTable::fixed(p.voltage, 3),
                    util::AsciiTable::scientific(p.current, 2),
                    util::AsciiTable::fixed(params.normalisedState(p.nDisc), 3),
                    util::AsciiTable::fixed(p.temperatureK, 1)});
    }
  }
  table.print();

  std::printf("\nloop metrics: V_SET ~ %.2f V, V_RESET ~ %.2f V, read-current "
              "hysteresis at +0.2 V: %.1fx, SET ok: %s, RESET ok: %s\n",
              metrics.vSet, metrics.vReset, metrics.hysteresis,
              metrics.switchedToLrs ? "yes" : "no",
              metrics.switchedBack ? "yes" : "no");
  bench::saveCsv(csv, "device_iv_hysteresis.csv");
  return 0;
}
