/// Ablation: the filament thermal time constant tau_th. DESIGN.md calls out
/// the thermal lag as the source of the extra pulse-count penalty at short
/// pulse lengths (Fig. 3a curvature). Sweeping tau_th confirms: with a
/// slower filament the 10 ns attack pays a large warm-up tax per pulse,
/// while 100 ns pulses barely notice.

#include <cstdio>

#include "bench_common.hpp"
#include "core/study.hpp"

int main() {
  using namespace nh;
  bench::banner("ablation -- filament thermal time constant tau_th",
                "centre attack at 50 nm / 300 K, pulse lengths 10 and 100 ns",
                "larger tau_th inflates pulses-to-flip at short pulse lengths "
                "far more than at long ones");

  util::AsciiTable table({"tau_th", "pulses @10 ns", "pulses @100 ns",
                          "ratio 10ns/100ns"});
  table.setTitle("pulses-to-flip vs thermal time constant");
  util::CsvTable csv({"tau_ns", "pulses_10ns", "pulses_100ns"});

  const std::vector<double> taus =
      bench::fastMode() ? std::vector<double>{2e-9}
                        : std::vector<double>{0.5e-9, 2e-9, 5e-9};
  for (const double tau : taus) {
    core::StudyConfig cfg;
    cfg.cellParams.tauThermal = tau;
    std::size_t pulses[2] = {0, 0};
    const double widths[2] = {10e-9, 100e-9};
    for (int i = 0; i < 2; ++i) {
      core::AttackStudy study(cfg);
      core::HammerPulse pulse;
      pulse.width = widths[i];
      const auto r = study.attackCenter(pulse, 20'000'000);
      pulses[i] = r.flipped ? r.pulsesToFlip : 0;
    }
    table.addRow({util::AsciiTable::si(tau, "s", 1),
                  util::AsciiTable::grouped(static_cast<long long>(pulses[0])),
                  util::AsciiTable::grouped(static_cast<long long>(pulses[1])),
                  util::AsciiTable::fixed(
                      pulses[1] ? static_cast<double>(pulses[0]) /
                                      static_cast<double>(pulses[1])
                                : 0.0,
                      1)});
    csv.addRow(std::vector<double>{tau * 1e9, static_cast<double>(pulses[0]),
                                   static_cast<double>(pulses[1])});
  }
  table.addNote("a pure 1/length law would give ratio 10; the excess is the warm-up tax");
  table.print();
  bench::saveCsv(csv, "ablation_thermal_tau.csv");
  return 0;
}
