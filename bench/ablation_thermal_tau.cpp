/// Ablation: the filament thermal time constant tau_th -- the source of
/// the extra pulse-count penalty at short pulse lengths (Fig. 3a
/// curvature). Declared in the experiment registry ("ablation_thermal_tau").

#include "bench_common.hpp"

int main() { return nh::bench::runRegistered("ablation_thermal_tau"); }
