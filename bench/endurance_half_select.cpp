/// Security-margin quantification: how many V/2 half-select pulses does an
/// *un-hammered* cell survive -- the denominator of the attack's advantage.
/// Declared in the experiment registry ("endurance_half_select").

#include "bench_common.hpp"

int main() { return nh::bench::runRegistered("endurance_half_select"); }
