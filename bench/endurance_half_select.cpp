/// Security-margin quantification: how many V/2 half-select pulses does an
/// *un-hammered* cell survive at room temperature? This is the disturb
/// endurance of normal operation -- every legitimate write half-selects the
/// cells of its row and column -- and the denominator of the attack's
/// advantage: NeuroHammer wins because crosstalk heating shrinks this
/// number by orders of magnitude.

#include <cstdio>

#include "bench_common.hpp"
#include "core/study.hpp"

int main() {
  using namespace nh;
  bench::banner("security margin -- half-select endurance without crosstalk",
                "cold V/2 stress on an HRS cell (alpha table zeroed) vs the "
                "hammered flip at 50 nm / 300 K / 50 ns",
                "cold disturb needs >10^6 pulses; hammering cuts that by "
                "~2 orders of magnitude at 50 nm and ~4 at 10 nm");

  core::StudyConfig base;  // 50 nm / 300 K
  const std::size_t budget = bench::fastMode() ? 1'000'000 : 20'000'000;

  // Hammered reference.
  core::AttackStudy study(base);
  const auto hot = study.attackCenter(core::HammerPulse{}, budget);

  // Cold disturb: same machinery, thermal coupling removed.
  auto bench2 = study.makeBench();
  xbar::AlphaTable noCoupling = study.alphas();
  noCoupling.truncate(0);
  xbar::FastEngine engine(*bench2.array, noCoupling, base.engineOptions);
  core::AttackEngine attack(engine, base.detector);
  core::AttackConfig cfg;
  cfg.aggressors = {{2, 2}};
  cfg.maxPulses = budget;
  const auto cold = attack.run(cfg);

  util::AsciiTable table({"condition", "# pulses to flip", "flipped",
                          "stress time"});
  table.setTitle("half-select disturb: hammered vs normal operation");
  table.addRow({"hammered (crosstalk on)",
                util::AsciiTable::grouped(static_cast<long long>(hot.pulsesToFlip)),
                hot.flipped ? "yes" : "NO (budget)",
                util::AsciiTable::si(hot.stressTime, "s", 2)});
  table.addRow({"normal operation (no crosstalk)",
                util::AsciiTable::grouped(static_cast<long long>(cold.pulsesToFlip)),
                cold.flipped ? "yes" : "NO (budget)",
                util::AsciiTable::si(cold.stressTime, "s", 2)});
  if (hot.flipped && cold.flipped) {
    table.addNote("attack advantage: " +
                  util::AsciiTable::fixed(
                      static_cast<double>(cold.pulsesToFlip) /
                          static_cast<double>(hot.pulsesToFlip),
                      0) +
                  "x fewer pulses than the intrinsic disturb limit");
  }
  table.addNote("the cold number also bounds write-disturb endurance: a row");
  table.addNote("tolerates that many writes before an unrelated HRS cell drifts.");
  table.print();

  util::CsvTable csv({"condition", "pulses", "flipped"});
  csv.addRow({std::string("hammered"), std::to_string(hot.pulsesToFlip),
              hot.flipped ? "1" : "0"});
  csv.addRow({std::string("cold"), std::to_string(cold.pulsesToFlip),
              cold.flipped ? "1" : "0"});
  bench::saveCsv(csv, "endurance_half_select.csv");
  return 0;
}
