/// Fig. 1 reproduction: the four-phase mechanics of NeuroHammer on one
/// attack run -- (1) hammering pulses on the aggressor, (2) temperature
/// increase of aggressor and victim filaments, (3) accelerated switching
/// kinetics, (4) the bit-flip. Prints a decimated trace of the victim state
/// and the per-pulse peak temperatures, plus the phase summary.

#include <cstdio>

#include "bench_common.hpp"
#include "core/study.hpp"

int main() {
  using namespace nh;
  bench::banner("Fig. 1 -- working principle of NeuroHammer (trace)",
                "single attack run, centre aggressor, word-line victim, "
                "spacing 50 nm, 50 ns pulses",
                "aggressor filament spikes to ~530 K per pulse; victim sits "
                "~60 K above ambient and ratchets toward LRS until the flip");

  core::StudyConfig cfg;
  core::AttackStudy study(cfg);
  core::AttackConfig attack;
  attack.aggressors = {{2, 2}};
  attack.victims = {{2, 1}};
  attack.maxPulses = bench::fastMode() ? 100'000 : 200'000;
  attack.traceSamples = 10'000;  // interval = maxPulses / samples = 20 pulses
  const core::AttackResult r = study.attack(attack);

  std::printf("flipped=%s at pulse %zu (stress time %.3e s, %zu pulses "
              "fully simulated)\n\n",
              r.flipped ? "yes" : "no", r.pulsesToFlip, r.stressTime,
              r.pulsesSimulated);

  util::AsciiTable table({"pulse", "victim x", "victim Tpeak [K]",
                          "aggressor Tpeak [K]"});
  table.setTitle("Victim state / peak filament temperatures along the attack");
  util::CsvTable csv({"pulse", "victim_state", "victim_Tpeak_K",
                      "aggressor_Tpeak_K"});
  const std::size_t n = r.tracePulse.size();
  const std::size_t every = n > 16 ? n / 16 : 1;
  for (std::size_t i = 0; i < n; ++i) {
    csv.addRow(std::vector<double>{r.tracePulse[i], r.traceVictimState[i],
                                   r.traceVictimTemperature[i],
                                   r.traceAggressorTemperature[i]});
    if (i % every == 0 || i + 1 == n) {
      table.addRow({util::AsciiTable::grouped(
                        static_cast<long long>(r.tracePulse[i])),
                    util::AsciiTable::fixed(r.traceVictimState[i], 4),
                    util::AsciiTable::fixed(r.traceVictimTemperature[i], 1),
                    util::AsciiTable::fixed(r.traceAggressorTemperature[i], 1)});
    }
  }
  table.addNote("phase 1: V/2 scheme pulses (hammering)");
  table.addNote("phase 2: aggressor self-heating + victim crosstalk heating");
  table.addNote("phase 3: exponentially accelerated SET kinetics at V/2");
  table.addNote("phase 4: victim crosses the read threshold -> bit-flip");
  table.print();
  bench::saveCsv(csv, "fig1_mechanics_trace.csv");
  return 0;
}
