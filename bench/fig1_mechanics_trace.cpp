/// Fig. 1 reproduction: the four-phase mechanics of NeuroHammer on one
/// attack run -- (1) hammering pulses on the aggressor, (2) temperature
/// increase of aggressor and victim filaments, (3) accelerated switching
/// kinetics, (4) the bit-flip. The trace is a registered experiment
/// ("fig1_mechanics_trace") whose result row carries time-series (Trace)
/// cells; this driver is banner + registry lookup + shared result emission.

#include "bench_common.hpp"

int main() { return nh::bench::runRegistered("fig1_mechanics_trace"); }
