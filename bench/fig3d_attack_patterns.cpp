/// Fig. 3d-h reproduction: impact of different attack patterns. The arXiv
/// preprint references panels (d)-(h) in the Fig. 3 caption ("impact of
/// different attack patterns" and "overview of attack patterns") without
/// rendering them; we implement the natural aggressor arrangements around a
/// centre victim and report the same metric (# pulses to trigger the flip).
/// Aggressors are hammered round-robin, so the per-line stress duty is
/// shared while the thermal input adds up.

#include <cstdio>

#include "bench_common.hpp"
#include "core/study.hpp"

int main() {
  using namespace nh;
  bench::banner("Fig. 3d-h -- impact of the attack pattern",
                "victim = centre cell, aggressors hammered round-robin, "
                "spacing 50 nm, 50 ns pulses, T0 = 300 K",
                "word-line aggressors dominate: the row pair halves the pulse "
                "count; off-line aggressors add heat but dilute the victim's "
                "V/2 stress duty");

  core::StudyConfig cfg;
  core::HammerPulse pulse;  // 1.05 V / 50 ns / 50% duty
  const auto points =
      core::sweepPatterns(cfg, pulse, bench::fastMode() ? 500'000 : 5'000'000,
                          bench::sweepThreads());

  util::AsciiTable table(
      {"pattern", "aggressors", "# pulses to flip", "flipped"});
  table.setTitle("Fig. 3d: pulses to flip the centre victim per attack pattern");
  util::CsvTable csv({"pattern", "aggressors", "pulses", "flipped"});
  for (const auto& p : points) {
    table.addRow({core::patternName(p.pattern), std::to_string(p.aggressorCount),
                  util::AsciiTable::grouped(static_cast<long long>(p.pulses)),
                  p.flipped ? "yes" : "NO (budget)"});
    csv.addRow({core::patternName(p.pattern), std::to_string(p.aggressorCount),
                std::to_string(p.pulses), p.flipped ? "1" : "0"});
  }
  table.addNote("single/row-pair hammer the victim's word line (strong coupling);");
  table.addNote("column-pair works through the weaker top-electrode path; cross/ring");
  table.addNote("add heat but spend pulses on lines that do not stress the victim.");
  table.print();
  bench::saveCsv(csv, "fig3d_attack_patterns.csv");
  return 0;
}
