/// Fig. 3d-h reproduction: impact of different attack patterns around a
/// centre victim (single / row-pair / column-pair / cross / ring hammered
/// round-robin). Declared in the experiment registry
/// ("fig3d_attack_patterns").

#include "bench_common.hpp"

int main() { return nh::bench::runRegistered("fig3d_attack_patterns"); }
