/// Attack-cost accounting: total energy dissipated in the array from the
/// first hammer pulse to the bit-flip, across electrode spacings. Declared
/// in the experiment registry ("attack_energy").

#include "bench_common.hpp"

int main() { return nh::bench::runRegistered("attack_energy"); }
