/// Attack-cost accounting: total energy dissipated in the array from the
/// first hammer pulse to the bit-flip, across electrode spacings. Two
/// defender-relevant readings: (1) the attack costs only nano-to-micro-
/// joules -- no power anomaly a PMIC would notice per pulse; but (2) the
/// *sustained* line energy is concentrated on one word line, which is what
/// a per-line energy monitor could flag (cf. the activation monitor in
/// ablation_scheme_defense).

#include <cstdio>

#include "bench_common.hpp"
#include "core/study.hpp"

int main() {
  using namespace nh;
  bench::banner("attack energy budget",
                "centre attack, 50 ns pulses, 300 K; energy until the flip",
                "total flip energy grows with spacing (more pulses); the "
                "aggressor cell dominates the per-cell breakdown");

  util::AsciiTable table({"spacing", "# pulses", "total energy", "energy/pulse",
                          "aggressor share"});
  table.setTitle("energy to induce one bit-flip");
  util::CsvTable csv({"spacing_nm", "pulses", "energy_J", "aggressor_share"});

  for (const double spacingNm : {10.0, 50.0, 90.0}) {
    core::StudyConfig cfg;
    cfg.spacing = spacingNm * 1e-9;
    core::AttackStudy study(cfg);
    auto bench2 = study.makeBench();
    core::AttackEngine attack(*bench2.engine, cfg.detector);
    core::AttackConfig a;
    a.aggressors = {{2, 2}};
    a.maxPulses = 5'000'000;
    const auto r = attack.run(a);
    const double energy = bench2.engine->totalEnergy();
    const double aggShare =
        energy > 0.0 ? bench2.engine->energyByCell()(2, 2) / energy : 0.0;
    table.addRow({util::AsciiTable::fixed(spacingNm, 0) + " nm",
                  util::AsciiTable::grouped(static_cast<long long>(r.pulsesToFlip)),
                  util::AsciiTable::si(energy, "J", 2),
                  util::AsciiTable::si(
                      energy / static_cast<double>(std::max<std::size_t>(
                                   r.pulsesToFlip, 1)),
                      "J", 2),
                  util::AsciiTable::fixed(100.0 * aggShare, 1) + " %"});
    csv.addRow(std::vector<double>{spacingNm,
                                   static_cast<double>(r.pulsesToFlip), energy,
                                   aggShare});
  }
  table.addNote("per-pulse energy is pJ-scale: invisible to coarse power");
  table.addNote("monitoring; a per-line energy counter is the workable hook.");
  table.print();
  bench::saveCsv(csv, "attack_energy.csv");
  return 0;
}
