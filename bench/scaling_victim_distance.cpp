/// Extension study: attack locality on a larger (7x7) crossbar -- how far
/// from the aggressor can a victim be flipped? Bounds the blast radius an
/// allocator-level guard-banding defence would need. Declared in the
/// experiment registry ("scaling_victim_distance").

#include "bench_common.hpp"

int main() { return nh::bench::runRegistered("scaling_victim_distance"); }
