/// Extension study: attack locality on a larger (7x7) crossbar -- how far
/// from the aggressor can a victim be flipped? Sweeps the monitored victim
/// offset along the word line, the bit line and the diagonal. This bounds
/// the blast radius an allocator-level defence (victim/aggressor guard
/// banding) would need.

#include <cstdio>

#include "bench_common.hpp"
#include "core/study.hpp"

int main() {
  using namespace nh;
  bench::banner("extension -- victim distance / attack blast radius (7x7)",
                "aggressor at the centre of a 7x7 array, 10 nm spacing, 50 ns "
                "pulses, one monitored victim per run",
                "word-line victims flip fastest; two cells away costs ~1-2 "
                "decades; beyond the coupling radius the attack fails");

  core::StudyConfig cfg;
  cfg.rows = 7;
  cfg.cols = 7;
  cfg.spacing = 10e-9;
  core::AttackStudy study(cfg);
  const std::size_t budget = bench::fastMode() ? 500'000 : 10'000'000;

  struct Case {
    const char* label;
    long long dr, dc;
  };
  const Case cases[] = {
      {"word line, 1 away", 0, 1},  {"word line, 2 away", 0, 2},
      {"word line, 3 away", 0, 3},  {"bit line, 1 away", 1, 0},
      {"bit line, 2 away", 2, 0},   {"diagonal, (1,1)", 1, 1},
      {"diagonal, (2,2)", 2, 2},
  };

  util::AsciiTable table({"victim position", "alpha", "shares a line",
                          "# pulses to flip", "flipped"});
  table.setTitle("pulses-to-flip vs victim offset from the aggressor");
  util::CsvTable csv({"dr", "dc", "alpha", "pulses", "flipped"});
  for (const auto& c : cases) {
    const xbar::CellCoord aggressor{3, 3};
    const xbar::CellCoord victim{static_cast<std::size_t>(3 + c.dr),
                                 static_cast<std::size_t>(3 + c.dc)};
    core::AttackConfig attack;
    attack.aggressors = {aggressor};
    attack.victims = {victim};
    attack.maxPulses = budget;
    const auto r = study.attack(attack);
    const double alpha = study.alphas().at(c.dr, c.dc);
    const bool sharesLine = c.dr == 0 || c.dc == 0;
    table.addRow({c.label, util::AsciiTable::fixed(alpha, 4),
                  sharesLine ? "yes (V/2 stress)" : "no (heat only)",
                  util::AsciiTable::grouped(static_cast<long long>(r.pulsesToFlip)),
                  r.flipped ? "yes" : "NO (budget)"});
    csv.addRow(std::vector<double>{static_cast<double>(c.dr),
                                   static_cast<double>(c.dc), alpha,
                                   static_cast<double>(r.pulsesToFlip),
                                   r.flipped ? 1.0 : 0.0});
  }
  table.addNote("diagonal victims receive heat but no half-select stress, so they");
  table.addNote("cannot flip at all under the single-aggressor V/2 pattern --");
  table.addNote("the blast radius is confined to the aggressor's own lines.");
  table.addNote("NOTE the domino effect at 'word line, 3 away' (alpha = 0): nearer");
  table.addNote("victims flip first, then their own LRS half-select Joule heating");
  table.addNote("relays the attack outward along the line.");
  table.print();
  bench::saveCsv(csv, "scaling_victim_distance.csv");
  return 0;
}
