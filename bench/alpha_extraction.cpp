/// Supporting table for Fig. 2a/2b and the Fig. 3b sweep: R_th and the
/// nearest-neighbour alpha values extracted from the FEM crossbar model at
/// the three electrode spacings of the paper (10, 50, 90 nm), via the power
/// sweep + linear regression procedure of Eq. 3/4. These extractions are
/// the source of the calibrated AlphaTable::analytic() constants.

#include <cstdio>

#include "bench_common.hpp"
#include "fem/alpha.hpp"

int main() {
  using namespace nh;
  bench::banner("alpha extraction -- R_th and thermal-coupling coefficients",
                "power sweep 0.05/0.10/0.15 mW, linear regression per cell",
                "alphas grow as spacing shrinks; word-line neighbours couple "
                "~2x stronger than bit-line neighbours");

  util::AsciiTable table({"spacing", "R_th [K/W]", "R^2", "a(0,1) word",
                          "a(1,0) bit", "a(1,1) diag", "a(0,2)", "a(2,2)",
                          "sum(a)"});
  table.setTitle("FEM-extracted crosstalk coefficients (5x5 crossbar)");
  util::CsvTable csv({"spacing_nm", "rth_K_per_W", "alpha_word", "alpha_bit",
                      "alpha_diag", "alpha_word2", "alpha_corner"});

  for (const double spacingNm : {10.0, 50.0, 90.0}) {
    fem::CrossbarLayout layout;
    layout.spacing = spacingNm * 1e-9;
    const auto model = fem::CrossbarModel3D::build(layout);
    const auto r = fem::extractAlpha(model, fem::MaterialTable::defaults(), 2, 2,
                                     {0.05e-3, 0.10e-3, 0.15e-3}, 300.0);
    double total = 0.0;
    for (std::size_t i = 0; i < 5; ++i) {
      for (std::size_t j = 0; j < 5; ++j) {
        if (!(i == 2 && j == 2)) total += r.alpha(i, j);
      }
    }
    table.addRow({util::AsciiTable::fixed(spacingNm, 0) + " nm",
                  util::AsciiTable::scientific(r.rTh, 3),
                  util::AsciiTable::fixed(r.rThRSquared, 6),
                  util::AsciiTable::fixed(r.alpha(2, 1), 4),
                  util::AsciiTable::fixed(r.alpha(1, 2), 4),
                  util::AsciiTable::fixed(r.alpha(1, 1), 4),
                  util::AsciiTable::fixed(r.alpha(2, 0), 4),
                  util::AsciiTable::fixed(r.alpha(0, 0), 4),
                  util::AsciiTable::fixed(total, 3)});
    csv.addRow(std::vector<double>{spacingNm, r.rTh, r.alpha(2, 1), r.alpha(1, 2),
                                   r.alpha(1, 1), r.alpha(2, 0), r.alpha(0, 0)});
  }
  table.addNote("a(dr,dc): dr along a bit line, dc along a word line (the");
  table.addNote("filament sits on the bottom word line, hence the asymmetry).");
  table.print();
  bench::saveCsv(csv, "alpha_extraction.csv");
  return 0;
}
