/// Substrate-level table: why the paper drives unselected lines at V/2.
/// Worst-case read margin (selected cell vs an all-LRS background) as a
/// function of array size and read scheme -- the floating-line scheme
/// collapses with array size because every unselected cell becomes a sneak
/// path; the V/2 scheme holds the margin at the cost of half-select power.

#include <cstdio>

#include "bench_common.hpp"
#include "xbar/sneak.hpp"

int main() {
  using namespace nh;
  bench::banner("substrate -- sneak paths and worst-case read margin",
                "selected cell read at 0.2 V against an all-LRS array",
                "read margin collapses with array size under both schemes "
                "(the passive-crossbar scaling limit); the V/2 scheme's real "
                "guarantee is bounding the disturb voltage on unselected "
                "cells at write levels");

  util::AsciiTable table({"array", "scheme", "I(sel=LRS)", "I(sel=HRS)",
                          "read margin", "half-select power"});
  table.setTitle("worst-case read margin vs array size and scheme");
  util::CsvTable csv({"size", "scheme", "i_lrs", "i_hrs", "margin"});

  const std::vector<std::size_t> sizes =
      bench::fastMode() ? std::vector<std::size_t>{5, 9}
                        : std::vector<std::size_t>{5, 9, 17, 33};
  for (const std::size_t n : sizes) {
    xbar::ArrayConfig cfg;
    cfg.rows = n;
    cfg.cols = n;
    for (const auto scheme :
         {xbar::ReadScheme::FloatingLines, xbar::ReadScheme::HalfBias}) {
      const auto m = xbar::worstCaseReadMargin(cfg, 0.2, scheme);
      // Half-select power at the LRS worst case, for the cost column.
      xbar::CrossbarArray array(cfg);
      array.fill(xbar::CellState::Lrs);
      const auto a = xbar::analyzeSneak(array, n / 2, n / 2, 0.2, scheme);
      const char* name =
          scheme == xbar::ReadScheme::FloatingLines ? "floating" : "V/2";
      table.addRow({std::to_string(n) + "x" + std::to_string(n), name,
                    util::AsciiTable::si(m.iSelectedLrs, "A", 2),
                    util::AsciiTable::si(m.iSelectedHrs, "A", 2),
                    util::AsciiTable::fixed(100.0 * m.margin, 1) + " %",
                    util::AsciiTable::si(a.halfSelectPower, "W", 2)});
      csv.addRow({std::to_string(n), name, util::formatDouble(m.iSelectedLrs),
                  util::formatDouble(m.iSelectedHrs),
                  util::formatDouble(m.margin)});
    }
  }
  table.addNote("margin = (I_lrs - I_hrs) / I_lrs at the selected bit line;");
  table.addNote("a sense amplifier needs a healthy positive margin. The cells'");
  table.addNote("strong nonlinearity self-limits floating-line sneak at 0.2 V,");
  table.addNote("so both schemes degrade similarly on reads.");
  table.print();

  // The write-level disturb bound: the actual reason for the V/2 scheme.
  // Mixed (checkerboard) data is the hazardous case for floating lines: an
  // HRS cell inside a conductive sneak chain takes nearly the full drive.
  util::AsciiTable disturb({"array", "scheme", "max |V| on unselected cells"});
  disturb.setTitle("\nunselected-cell disturb voltage at V_SET = 1.05 V drive "
                   "(checkerboard data)");
  for (const std::size_t n : sizes) {
    xbar::ArrayConfig cfg;
    cfg.rows = n;
    cfg.cols = n;
    xbar::CrossbarArray array(cfg);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        array.setState(r, c, (r + c) % 2 == 0 ? xbar::CellState::Lrs
                                              : xbar::CellState::Hrs);
      }
    }
    for (const auto scheme :
         {xbar::ReadScheme::FloatingLines, xbar::ReadScheme::HalfBias}) {
      const auto a = xbar::analyzeSneak(array, n / 2, n / 2, 1.05, scheme);
      disturb.addRow({std::to_string(n) + "x" + std::to_string(n),
                      scheme == xbar::ReadScheme::FloatingLines ? "floating" : "V/2",
                      util::AsciiTable::fixed(a.maxUnselectedVoltage, 3) + " V"});
    }
  }
  disturb.addNote("the V/2 scheme caps disturb at V/2 *by construction*, for any");
  disturb.addNote("stored data. The floating-line bound lands near V/2 here only");
  disturb.addNote("because the cell's Schottky interface acts as a built-in");
  disturb.addNote("selector -- it is an emergent, data-dependent property.");
  disturb.print();
  bench::saveCsv(csv, "sneak_path_margin.csv");
  return 0;
}
