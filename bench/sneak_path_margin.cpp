/// Substrate-level table: why the paper drives unselected lines at V/2 --
/// worst-case read margin and write-level disturb bound vs array size and
/// scheme. Declared in the experiment registry ("sneak_path_margin").

#include "bench_common.hpp"

int main() { return nh::bench::runRegistered("sneak_path_margin"); }
