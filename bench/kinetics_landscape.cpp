/// Background table for Sec. III: the switching-time landscape t_SET(V, T)
/// of the compact model -- the von Witzleben (temperature) and Menzel
/// (voltage nonlinearity) dependencies the attack exploits. Rows are ambient
/// temperatures, columns applied voltages; entries are times to SET a deep-
/// HRS cell to the half-way state.

#include <cstdio>

#include "bench_common.hpp"
#include "jart/kinetics.hpp"

int main() {
  using namespace nh;
  bench::banner("Sec. III -- switching-kinetics landscape t_SET(V, T)",
                "single JART-style cell, constant stress until x = 0.5",
                "t_SET spans >10 decades: ~ns at full select vs ~s at V/2 and "
                "300 K; each +50 K buys ~2 decades");

  const std::vector<double> voltages = {0.40, 0.525, 0.65, 0.80, 1.05, 1.30};
  const std::vector<double> temperatures =
      bench::fastMode() ? std::vector<double>{300.0, 400.0}
                        : std::vector<double>{273.0, 300.0, 325.0, 350.0,
                                              400.0, 450.0, 500.0};
  const auto points =
      jart::kineticsLandscape(jart::Params::paperDefaults(), voltages,
                              temperatures, /*maxTime=*/50.0);

  std::vector<std::string> header{"T0 \\ V"};
  for (const double v : voltages) {
    header.push_back(nh::util::AsciiTable::fixed(v, 3) + " V");
  }
  util::AsciiTable table(header);
  table.setTitle("t_SET to x = 0.5 [s]  ('>' = did not switch within 50 s)");
  util::CsvTable csv({"temperature_K", "voltage_V", "t_set_s", "switched"});

  std::size_t k = 0;
  for (const double t0 : temperatures) {
    std::vector<std::string> row{util::AsciiTable::fixed(t0, 0) + " K"};
    for (std::size_t i = 0; i < voltages.size(); ++i, ++k) {
      const auto& p = points[k];
      row.push_back(p.switched ? util::AsciiTable::scientific(p.time, 2)
                               : "> 5e+01");
      csv.addRow(std::vector<double>{p.temperatureK, p.voltage, p.time,
                                     p.switched ? 1.0 : 0.0});
    }
    table.addRow(row);
  }
  table.addNote("V/2 = 0.525 V column: harmless at 273-300 K, milliseconds at 350 K+ --");
  table.addNote("exactly the window the thermal crosstalk pushes the victim into.");
  table.print();
  bench::saveCsv(csv, "kinetics_landscape.csv");
  return 0;
}
