/// Background table for Sec. III: the switching-time landscape t_SET(V, T)
/// of the compact model -- the von Witzleben (temperature) and Menzel
/// (voltage nonlinearity) dependencies the attack exploits. Registered as
/// "kinetics_landscape" (flat (T, V) cross-product rows + a pivoted 2-D
/// ASCII table); this driver is banner + registry lookup + shared emission.

#include "bench_common.hpp"

int main() { return nh::bench::runRegistered("kinetics_landscape"); }
