/// Google-benchmark microbenchmarks of the numerical kernels: dense LU
/// (MNA), preconditioned CG on the FEM operator, the JART conduction solve,
/// device state integration, and one full fast-engine pulse on the 5x5
/// crossbar. These bound the cost model behind the sweep budgets quoted in
/// EXPERIMENTS.md.
///
/// The *Fresh/Cached, *Jacobi/Ic0, and reuse/full argument pairs benchmark
/// the structure-reusing solver core against the seed code paths: cached
/// sparse assembly vs sort-and-merge rebuilds, IC(0)- vs Jacobi-
/// preconditioned CG, SPICE transients with vs without factorisation reuse,
/// and the Schur-complement line-network solve vs the dense factorisation.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "fem/alpha.hpp"
#include "jart/device.hpp"
#include "spice/analysis.hpp"
#include "spice/elements.hpp"
#include "util/fvstencil.hpp"
#include "util/linsolve.hpp"
#include "util/multigrid.hpp"
#include "util/rng.hpp"
#include "util/sparse.hpp"
#include "util/spmv.hpp"
#include "xbar/fastsim.hpp"

namespace {

/// 7-point FV stencil on an m^3 grid -- the same structure the FEM thermal
/// solves assemble -- stamped in one fixed sequence.
void stampPoisson3d(nh::util::TripletBuilder& builder, std::size_t m,
                    double scale) {
  const auto idx = [m](std::size_t i, std::size_t j, std::size_t k) {
    return (k * m + j) * m + i;
  };
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t i = 0; i < m; ++i) {
        const std::size_t v = idx(i, j, k);
        double diag = 1.0;  // capacity/Dirichlet lump keeps the system SPD
        const auto visit = [&](std::size_t nv) {
          diag += scale;
          builder.add(v, nv, -scale);
        };
        if (i > 0) visit(idx(i - 1, j, k));
        if (i + 1 < m) visit(idx(i + 1, j, k));
        if (j > 0) visit(idx(i, j - 1, k));
        if (j + 1 < m) visit(idx(i, j + 1, k));
        if (k > 0) visit(idx(i, j, k - 1));
        if (k + 1 < m) visit(idx(i, j, k + 1));
        builder.add(v, v, diag);
      }
    }
  }
}

void BM_DenseLuSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  nh::util::Rng rng(42);
  nh::util::Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += static_cast<double>(n);
  }
  nh::util::Vector b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nh::util::solveDense(a, b));
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(10)->Arg(50);

void BM_FemThermalSolve(benchmark::State& state) {
  nh::fem::CrossbarLayout layout;
  layout.rows = 3;
  layout.cols = 3;
  layout.margin = 20e-9;
  const auto model = nh::fem::CrossbarModel3D::build(layout);
  nh::fem::ThermalScenario scenario;
  scenario.model = &model;
  scenario.cellPower = nh::util::Matrix(3, 3, 0.0);
  scenario.cellPower(1, 1) = 1e-4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nh::fem::solveThermal(scenario));
  }
  state.counters["voxels"] = static_cast<double>(model.grid().voxelCount());
}
BENCHMARK(BM_FemThermalSolve)->Unit(benchmark::kMillisecond);

/// Same solve through a persistent ThermalSolver: after the first iteration
/// every call refills the cached CSR structure and reuses the CG workspace
/// -- the state an alpha-extraction power sweep runs in.
void BM_FemThermalSolveReused(benchmark::State& state) {
  nh::fem::CrossbarLayout layout;
  layout.rows = 3;
  layout.cols = 3;
  layout.margin = 20e-9;
  const auto model = nh::fem::CrossbarModel3D::build(layout);
  nh::fem::ThermalScenario scenario;
  scenario.model = &model;
  scenario.cellPower = nh::util::Matrix(3, 3, 0.0);
  scenario.cellPower(1, 1) = 1e-4;
  nh::fem::ThermalSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(scenario));
  }
  state.counters["voxels"] = static_cast<double>(model.grid().voxelCount());
}
BENCHMARK(BM_FemThermalSolveReused)->Unit(benchmark::kMillisecond);

/// Seed-style assembly: bucket + sort + merge on every call.
void BM_FemAssemblyFresh(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  nh::util::TripletBuilder builder(m * m * m, m * m * m);
  stampPoisson3d(builder, m, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nh::util::SparseMatrix::fromTriplets(builder));
  }
  state.counters["rows"] = static_cast<double>(m * m * m);
}
BENCHMARK(BM_FemAssemblyFresh)->Arg(16)->Unit(benchmark::kMillisecond);

/// Structure-cached assembly: re-stamp and O(nnz) scatter into the cached
/// CSR, no sorting, no allocation.
void BM_FemAssemblyCached(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  nh::util::TripletBuilder builder(m * m * m, m * m * m);
  stampPoisson3d(builder, m, 2.0);
  const auto pattern = nh::util::SparsityPattern::fromTriplets(builder);
  nh::util::SparseMatrix matrix;
  pattern.assemble(builder, matrix);
  for (auto _ : state) {
    builder.clear();
    stampPoisson3d(builder, m, 2.0);
    pattern.assemble(builder, matrix);
    benchmark::DoNotOptimize(matrix);
  }
  state.counters["rows"] = static_cast<double>(m * m * m);
}
BENCHMARK(BM_FemAssemblyCached)->Arg(16)->Unit(benchmark::kMillisecond);

/// CG on the frozen FV operator, Jacobi vs IC(0) (arg: 0 = Jacobi, 1 = IC0),
/// with a persistent workspace as in the transient marching loop.
void BM_CgPreconditioner(benchmark::State& state) {
  const std::size_t m = 16;
  const std::size_t n = m * m * m;
  nh::util::TripletBuilder builder(n, n);
  stampPoisson3d(builder, m, 2.0);
  const auto matrix = nh::util::SparseMatrix::fromTriplets(builder);
  nh::util::Vector b(n, 1.0);
  nh::util::CgWorkspace workspace;
  nh::util::CgOptions options;
  options.relTol = 1e-8;
  options.preconditioner = state.range(0) == 0
                               ? nh::util::CgPreconditioner::Jacobi
                               : nh::util::CgPreconditioner::IncompleteCholesky;
  std::size_t iterations = 0;
  nh::util::Vector x;
  for (auto _ : state) {
    x.assign(n, 0.0);
    const auto result =
        nh::util::solveConjugateGradient(matrix, b, x, options, &workspace);
    options.reusePreconditioner = true;  // operator frozen, as in a transient
    iterations = result.iterations;
    benchmark::DoNotOptimize(x);
  }
  // Not "iterations": that key would collide with benchmark's own field in
  // the JSON output and corrupt the tracked baseline.
  state.counters["cg_iterations"] = static_cast<double>(iterations);
}
BENCHMARK(BM_CgPreconditioner)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// The large-grid scaling wall: CG on the *steady* FV heat operator at
/// 32^3 / 64^3 / 96^3 voxels, IC(0) vs geometric multigrid (arg0: grid
/// edge, arg1: 0 = IC0, 1 = GMG). The cg_iterations counter is the story:
/// IC(0) grows with the edge length, GMG stays (near) flat, which is what
/// opens the 10^5-10^6-voxel regime. One untimed priming solve builds the
/// preconditioner, then the timed loop re-solves with it frozen -- the
/// state every transient march and sweep chain runs in (the one-time
/// hierarchy cost is BM_GmgHierarchySetup).
void BM_CgFvSteadyLargeGrid(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const std::size_t n = m * m * m;
  const auto matrix = nh::util::makeSteadyFvOperator3d(m, 2.0);
  nh::util::Vector b(n, 1e-6);  // uniform heat load
  nh::util::CgWorkspace workspace;
  nh::util::CgOptions options;
  options.relTol = 1e-8;
  options.maxIter = 50000;
  options.preconditioner = state.range(1) == 0
                               ? nh::util::CgPreconditioner::IncompleteCholesky
                               : nh::util::CgPreconditioner::Multigrid;
  options.gridNx = m;
  options.gridNy = m;
  options.gridNz = m;
  nh::util::Vector x(n, 0.0);
  nh::util::solveConjugateGradient(matrix, b, x, options, &workspace);
  options.reusePreconditioner = true;

  std::size_t iterations = 0;
  bool converged = true;
  for (auto _ : state) {
    x.assign(n, 0.0);
    const auto result =
        nh::util::solveConjugateGradient(matrix, b, x, options, &workspace);
    iterations = result.iterations;
    converged = converged && result.converged;
    benchmark::DoNotOptimize(x);
  }
  state.counters["cg_iterations"] = static_cast<double>(iterations);
  state.counters["converged"] = converged ? 1.0 : 0.0;
  state.counters["rows"] = static_cast<double>(n);
}
BENCHMARK(BM_CgFvSteadyLargeGrid)
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({96, 0})
    ->Args({96, 1})
    ->Unit(benchmark::kMillisecond);

/// One-time cost of building the GMG hierarchy (transfers + Galerkin
/// products + coarse LU) per grid size; amortised over a sweep or march it
/// is repaid after a handful of solves, but it is not free -- this keeps
/// the tradeoff visible in the baseline.
void BM_GmgHierarchySetup(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const std::size_t n = m * m * m;
  const auto matrix = nh::util::makeSteadyFvOperator3d(m, 2.0);
  nh::util::GeometricMultigrid::Options options;
  options.nx = options.ny = options.nz = m;
  for (auto _ : state) {
    nh::util::GeometricMultigrid mg;  // fresh: no transfer-operator reuse
    const bool ok = mg.compute(matrix, options);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["rows"] = static_cast<double>(n);
}
BENCHMARK(BM_GmgHierarchySetup)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

/// Frozen-structure hierarchy recompute: the state a sweep or transient
/// march is in when the operator's *values* changed but the grid did not.
/// The transfers are reused (pre-existing) and the Galerkin chain refills
/// through the per-level SpGemm plans in O(nnz) -- compare against
/// BM_GmgHierarchySetup/64, which pays the full symbolic SpGEMM each time.
void BM_GmgHierarchyRecompute(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const auto matrix = nh::util::makeSteadyFvOperator3d(m, 2.0);
  nh::util::GeometricMultigrid::Options options;
  options.nx = options.ny = options.nz = m;
  nh::util::GeometricMultigrid mg;  // persistent: transfers + plans reused
  if (!mg.compute(matrix, options)) {
    state.SkipWithError("GMG setup failed");
    return;
  }
  for (auto _ : state) {
    const bool ok = mg.compute(matrix, options);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["rows"] = static_cast<double>(m * m * m);
}
BENCHMARK(BM_GmgHierarchyRecompute)->Arg(64)->Unit(benchmark::kMillisecond);

/// Direct row-kernel A/B on the 7-point fine FV operator at 64^3 (arg:
/// 0 = scalar reference, 1 = the dispatched kernel -- AVX2 gather where the
/// CPU has it, see the spmv_kernel context entry). Rows here are <= 7
/// entries wide, so both arms use the 4-accumulator pattern; the SIMD win
/// is the vectorised gather+multiply itself.
void BM_SpMvSimdFine(benchmark::State& state) {
  const std::size_t m = 64;
  const std::size_t n = m * m * m;
  const auto matrix = nh::util::makeSteadyFvOperator3d(m, 2.0);
  const nh::util::spmv::RowRangeFn kernel =
      state.range(0) == 0 ? &nh::util::spmv::rowRangeReference
                          : nh::util::spmv::activeKernel();
  nh::util::Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 1.0 + 1e-6 * static_cast<double>(i % 997);
  }
  nh::util::Vector y(n, 0.0);
  for (auto _ : state) {
    kernel(matrix.rowPtr().data(), matrix.colIdx().data(),
           matrix.values().data(), x.data(), y.data(), 0, n);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["rows"] = static_cast<double>(n);
  state.counters["nnz"] = static_cast<double>(matrix.nonZeros());
}
BENCHMARK(BM_SpMvSimdFine)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Same A/B on the 27-point Galerkin coarse operator of the 64^3 hierarchy
/// (32^3 rows, ~27 entries each): these rows clear the wide-row threshold,
/// so the dispatched arm runs the register-blocked 8-accumulator path --
/// the dense-ish shape the ISSUE targets for the double-digit SpMV gain.
void BM_SpMvSimdGalerkin(benchmark::State& state) {
  const std::size_t m = 64;
  const std::size_t mc = (m + 1) / 2;
  const auto fine = nh::util::makeSteadyFvOperator3d(m, 2.0);
  const auto p = nh::util::buildTrilinearProlongation(m, m, m, mc, mc, mc);
  const auto coarse =
      nh::util::multiplySparse(p.transposed(), nh::util::multiplySparse(fine, p));
  const std::size_t n = coarse.rows();
  const nh::util::spmv::RowRangeFn kernel =
      state.range(0) == 0 ? &nh::util::spmv::rowRangeReference
                          : nh::util::spmv::activeKernel();
  nh::util::Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 1.0 + 1e-6 * static_cast<double>(i % 997);
  }
  nh::util::Vector y(n, 0.0);

  // The dispatched kernel must agree with the reference bit-for-bit; a
  // mismatch would mean the A/B compares different arithmetic.
  nh::util::Vector yRef(n, 0.0);
  nh::util::spmv::rowRangeReference(coarse.rowPtr().data(),
                                    coarse.colIdx().data(),
                                    coarse.values().data(), x.data(),
                                    yRef.data(), 0, n);
  kernel(coarse.rowPtr().data(), coarse.colIdx().data(),
         coarse.values().data(), x.data(), y.data(), 0, n);
  if (y != yRef) {
    state.SkipWithError("SIMD kernel disagrees with the scalar reference");
    return;
  }

  for (auto _ : state) {
    kernel(coarse.rowPtr().data(), coarse.colIdx().data(),
           coarse.values().data(), x.data(), y.data(), 0, n);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["rows"] = static_cast<double>(n);
  state.counters["nnz"] = static_cast<double>(coarse.nonZeros());
}
BENCHMARK(BM_SpMvSimdGalerkin)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// GMG-preconditioned CG at 64^3 with the lexicographic vs the red-black
/// smoother (arg: 0 = lex, 1 = red-black), frozen preconditioner as in
/// BM_CgFvSteadyLargeGrid. Red-black multiplies by the cached inverse
/// diagonal instead of dividing per row and sweeps each color in parallel
/// when threads are available; cg_iterations shows the (near-identical)
/// convergence, time/iteration shows the V-cycle constant.
void BM_RedBlackVsLex(benchmark::State& state) {
  const std::size_t m = 64;
  const std::size_t n = m * m * m;
  const auto matrix = nh::util::makeSteadyFvOperator3d(m, 2.0);
  nh::util::Vector b(n, 1e-6);
  nh::util::CgWorkspace workspace;
  nh::util::CgOptions options;
  options.relTol = 1e-8;
  options.maxIter = 50000;
  options.preconditioner = nh::util::CgPreconditioner::Multigrid;
  options.gridNx = options.gridNy = options.gridNz = m;
  options.multigridSmoother = state.range(0) == 0
                                  ? nh::util::MultigridSmoother::Lexicographic
                                  : nh::util::MultigridSmoother::RedBlack;
  nh::util::Vector x(n, 0.0);
  nh::util::solveConjugateGradient(matrix, b, x, options, &workspace);
  options.reusePreconditioner = true;

  std::size_t iterations = 0;
  bool converged = true;
  for (auto _ : state) {
    x.assign(n, 0.0);
    const auto result =
        nh::util::solveConjugateGradient(matrix, b, x, options, &workspace);
    iterations = result.iterations;
    converged = converged && result.converged;
    benchmark::DoNotOptimize(x);
  }
  state.counters["cg_iterations"] = static_cast<double>(iterations);
  state.counters["converged"] = converged ? 1.0 : 0.0;
  state.counters["rows"] = static_cast<double>(n);
}
BENCHMARK(BM_RedBlackVsLex)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// One level of the Galerkin chain A_c = R (A P) at 64^3 -> 32^3, fresh
/// SpGEMM vs plan refill (arg: 0 = fresh, 1 = refill). The refill arm also
/// carries the allocation-count assertion for the old multigrid.cpp
/// every-compute() reallocation: after the timed loop the plans must report
/// exactly one symbolic run each and the product's value storage must not
/// have moved -- any reallocation or re-run fails the bench.
void BM_GalerkinRefill(benchmark::State& state) {
  const std::size_t m = 64;
  const std::size_t mc = (m + 1) / 2;
  const auto fine = nh::util::makeSteadyFvOperator3d(m, 2.0);
  const auto p = nh::util::buildTrilinearProlongation(m, m, m, mc, mc, mc);
  const auto r = p.transposed();

  if (state.range(0) == 0) {
    for (auto _ : state) {
      const auto coarse =
          nh::util::multiplySparse(r, nh::util::multiplySparse(fine, p));
      benchmark::DoNotOptimize(coarse.values().data());
    }
    state.counters["rows"] = static_cast<double>(mc * mc * mc);
    return;
  }

  nh::util::SpGemmPlan apPlan, rapPlan;
  nh::util::SparseMatrix ap, coarse;
  apPlan.multiply(fine, p, ap);       // symbolic prime
  rapPlan.multiply(r, ap, coarse);
  const auto freshCoarse =
      nh::util::multiplySparse(r, nh::util::multiplySparse(fine, p));
  if (coarse.values() != freshCoarse.values() ||
      coarse.colIdx() != freshCoarse.colIdx()) {
    state.SkipWithError("plan product disagrees with fresh SpGEMM");
    return;
  }
  const double* valuesPtr = coarse.values().data();
  for (auto _ : state) {
    apPlan.multiply(fine, p, ap);
    rapPlan.multiply(r, ap, coarse);
    benchmark::DoNotOptimize(coarse.values().data());
  }
  if (apPlan.symbolicCount() != 1 || rapPlan.symbolicCount() != 1 ||
      !apPlan.lastWasRefill() || !rapPlan.lastWasRefill()) {
    state.SkipWithError("refill arm re-ran the symbolic SpGEMM");
    return;
  }
  if (coarse.values().data() != valuesPtr) {
    state.SkipWithError("refill arm reallocated the product storage");
    return;
  }
  state.counters["rows"] = static_cast<double>(mc * mc * mc);
}
BENCHMARK(BM_GalerkinRefill)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Warm-started sweep re-solve: the steady FV system solved to convergence,
/// then re-solved after a small load change, starting CG from the previous
/// field vs from zero (arg: 0 = cold, 1 = warm) -- the state the Fig. 3
/// sweeps' chained alpha extractions run in.
void BM_CgWarmStartResolve(benchmark::State& state) {
  const std::size_t m = 32;
  const std::size_t n = m * m * m;
  const auto matrix = nh::util::makeSteadyFvOperator3d(m, 2.0);
  nh::util::CgWorkspace workspace;
  nh::util::CgOptions options;
  options.relTol = 1e-8;
  options.maxIter = 50000;
  options.preconditioner = nh::util::CgPreconditioner::IncompleteCholesky;

  // Converged base field for load 1.0.
  nh::util::Vector b(n, 1e-6);
  nh::util::Vector base(n, 0.0);
  nh::util::solveConjugateGradient(matrix, b, base, options, &workspace);
  options.reusePreconditioner = true;
  // The next sweep point: 5% more power.
  nh::util::Vector bNext = b;
  for (auto& v : bNext) v *= 1.05;

  const bool warm = state.range(0) == 1;
  std::size_t iterations = 0;
  nh::util::Vector x;
  for (auto _ : state) {
    if (warm) {
      x = base;
    } else {
      x.assign(n, 0.0);
    }
    const auto result =
        nh::util::solveConjugateGradient(matrix, bNext, x, options, &workspace);
    iterations = result.iterations;
    benchmark::DoNotOptimize(x);
  }
  state.counters["cg_iterations"] = static_cast<double>(iterations);
}
BENCHMARK(BM_CgWarmStartResolve)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_JartConduction(benchmark::State& state) {
  const nh::jart::Model model(nh::jart::Params::paperDefaults());
  double n = 1e25;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.solveConduction(0.525, n, 360.0));
  }
}
BENCHMARK(BM_JartConduction);

void BM_JartAdvancePulse(benchmark::State& state) {
  nh::jart::JartDevice device(nh::jart::Params::paperDefaults(), 300.0);
  device.setCrosstalk(60.0);
  for (auto _ : state) {
    device.advance(0.525, 50e-9);
    if (device.normalisedState() > 0.9) device.setHrs();  // keep mid-window
  }
}
BENCHMARK(BM_JartAdvancePulse);

void BM_FastEnginePulse(benchmark::State& state) {
  nh::xbar::ArrayConfig cfg;
  nh::xbar::CrossbarArray array(cfg);
  array.fill(nh::xbar::CellState::Hrs);
  array.setState(2, 2, nh::xbar::CellState::Lrs);
  nh::xbar::FastEngine engine(array, nh::xbar::AlphaTable::analytic(50e-9));
  const auto bias =
      nh::xbar::selectBias(nh::xbar::BiasScheme::Half, 5, 5, 2, 2, 1.05);
  for (auto _ : state) {
    engine.applyPulse(bias, 50e-9, 50e-9);
    // Reset drifting victims occasionally so the workload stays stationary.
    if (array.cell(2, 1).normalisedState() > 0.5) {
      array.fill(nh::xbar::CellState::Hrs);
      array.setState(2, 2, nh::xbar::CellState::Lrs);
    }
  }
}
BENCHMARK(BM_FastEnginePulse)->Unit(benchmark::kMicrosecond);

/// Toy memristive load for the ladder bench: conductance grows with the
/// time integral of |v| (cheap to evaluate, keeps the circuit nonlinear).
class BenchMemristor final : public nh::spice::MemristiveModel {
 public:
  double current(double v) const override { return g_ * v; }
  void advance(double v, double dt) override {
    g_ += 1e-2 * std::fabs(v) * dt / 1e-9;
  }

 private:
  double g_ = 1e-4;
};

/// Linear SPICE transient of a 40-stage RC ladder (~42 MNA unknowns): with
/// factorisation reuse the Jacobian is factored once per (dt, analysis) and
/// never re-stamped, vs the seed's factor-every-step
/// (arg: 0 = refactor every step, 1 = frozen LU).
void BM_SpiceTransientLinear(benchmark::State& state) {
  using namespace nh::spice;
  constexpr std::size_t kStages = 40;
  for (auto _ : state) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    PulseSpec pulse;
    pulse.base = 0.0;
    pulse.amplitude = 1.0;
    pulse.delay = 5e-9;
    pulse.rise = 0.5e-9;
    pulse.fall = 0.5e-9;
    pulse.width = 30e-9;
    ckt.emplace<VoltageSource>("V1", in, ckt.ground(),
                               std::make_unique<PulseWaveform>(pulse));
    NodeId prev = in;
    for (std::size_t s = 0; s < kStages; ++s) {
      const NodeId node = ckt.node("n" + std::to_string(s));
      ckt.emplace<Resistor>("R" + std::to_string(s), prev, node, 50.0);
      ckt.emplace<Capacitor>("C" + std::to_string(s), node, ckt.ground(), 1e-12);
      prev = node;
    }
    TransientOptions opt;
    opt.tStop = 60e-9;
    opt.dtMax = 0.5e-9;
    opt.newton.reuseFactorization = state.range(0) == 1;
    benchmark::DoNotOptimize(runTransient(ckt, opt));
  }
}
BENCHMARK(BM_SpiceTransientLinear)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// SPICE transient of an 80-stage RC/memristor ladder (~82 MNA unknowns)
/// with chord-Newton forced on vs the default full Newton (arg: 0 = full,
/// 1 = chord). This is the measurement behind NewtonOptions::
/// reuseMinUnknowns' conservative default: chord trades factorisations for
/// extra stamped iterations and loses at this size on commodity hardware.
void BM_SpiceTransientNewton(benchmark::State& state) {
  using namespace nh::spice;
  constexpr std::size_t kStages = 80;
  for (auto _ : state) {
    Circuit ckt;
    std::vector<BenchMemristor> models(kStages);
    const NodeId in = ckt.node("in");
    PulseSpec pulse;
    pulse.base = 0.0;
    pulse.amplitude = 1.0;
    pulse.delay = 5e-9;
    pulse.rise = 0.5e-9;
    pulse.fall = 0.5e-9;
    pulse.width = 30e-9;
    ckt.emplace<VoltageSource>("V1", in, ckt.ground(),
                               std::make_unique<PulseWaveform>(pulse));
    NodeId prev = in;
    for (std::size_t s = 0; s < kStages; ++s) {
      const NodeId node = ckt.node("n" + std::to_string(s));
      ckt.emplace<Resistor>("R" + std::to_string(s), prev, node, 50.0);
      ckt.emplace<Memristor>("M" + std::to_string(s), node, ckt.ground(),
                             &models[s]);
      prev = node;
    }
    TransientOptions opt;
    opt.tStop = 60e-9;
    opt.dtMax = 0.5e-9;
    opt.newton.reuseFactorization = state.range(0) == 1;
    opt.newton.reuseMinUnknowns = 0;  // force chord for the comparison
    benchmark::DoNotOptimize(runTransient(ckt, opt));
  }
}
BENCHMARK(BM_SpiceTransientNewton)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// The line-network Newton update kernel in isolation (device model
/// evaluation excluded): dense factorisation of the full (rows+cols)
/// Jacobian vs the Schur complement on the bit-line block
/// (arg0: array edge, arg1: 0 = dense, 1 = Schur).
void BM_LineNetworkSolve(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const bool schur = state.range(1) == 1;
  nh::util::Rng rng(7);
  nh::util::Matrix g(m, m);
  nh::util::Vector d1(m, 0.02), d2(m, 0.02);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      const double gc = std::pow(10.0, rng.uniform(-6.0, -3.0));
      g(r, c) = gc;
      d1[r] += gc;
      d2[c] += gc;
    }
  }
  nh::util::Vector residual(2 * m);
  for (auto& v : residual) v = rng.uniform(-1e-3, 1e-3);

  if (schur) {
    nh::util::SchurComplementSolver solver;
    nh::util::Vector x;
    for (auto _ : state) {
      solver.solve(d1, d2, g, residual, x);
      benchmark::DoNotOptimize(x);
    }
  } else {
    nh::util::Matrix j(2 * m, 2 * m, 0.0);
    for (auto _ : state) {
      j.fill(0.0);
      for (std::size_t i = 0; i < m; ++i) j(i, i) = d1[i];
      for (std::size_t c = 0; c < m; ++c) j(m + c, m + c) = d2[c];
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t c = 0; c < m; ++c) {
          j(i, m + c) = -g(i, c);
          j(m + c, i) = -g(i, c);
        }
      }
      benchmark::DoNotOptimize(nh::util::solveDense(j, residual));
    }
  }
}
BENCHMARK(BM_LineNetworkSolve)
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Unit(benchmark::kMicrosecond);

/// The Schur backends head to head at real part sizes (arg0: array edge,
/// arg1: 0 = seed dense complement, 1 = banded Thomas + dense complement,
/// 2 = matrix-free Jacobi-CG). The dense complement is O(m^3) assembly +
/// factorisation per Newton update; the CG path is O(m^2) per iteration
/// with an iteration count that stays in the tens for these diagonally
/// dominant networks -- the crossover is what makes the 1024x1024
/// scaling_array_size row tractable, and the win is already decisive at
/// 256x256.
void BM_SchurLineSolveLarge(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const int mode = static_cast<int>(state.range(1));
  nh::util::Rng rng(7);
  nh::util::Matrix g(m, m);
  nh::util::Vector d1(m, 0.02), d2(m, 0.02);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      const double gc = std::pow(10.0, rng.uniform(-6.0, -3.0));
      g(r, c) = gc;
      d1[r] += gc;
      d2[c] += gc;
    }
  }
  nh::util::Vector residual(2 * m);
  for (auto& v : residual) v = rng.uniform(-1e-3, 1e-3);

  nh::util::SchurComplementSolver solver;
  solver.options().mode = mode == 2 ? nh::util::SchurOptions::Mode::Iterative
                                    : nh::util::SchurOptions::Mode::Dense;
  const auto a1 = nh::util::TridiagonalView::diagonal(d1);
  const auto a2 = nh::util::TridiagonalView::diagonal(d2);
  nh::util::Vector x;
  for (auto _ : state) {
    const bool ok = mode == 0 ? solver.solve(d1, d2, g, residual, x)
                              : solver.solveBanded(a1, a2, g, residual, x);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(x);
  }
  if (mode == 2) {
    state.counters["cg_iterations"] =
        static_cast<double>(solver.lastIterative().iterations);
  }
  state.counters["rows"] = static_cast<double>(2 * m);
}
BENCHMARK(BM_SchurLineSolveLarge)
    ->Args({64, 0})
    ->Args({64, 2})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({512, 0})
    ->Args({512, 2})
    ->Unit(benchmark::kMillisecond);

/// Full-array distributed-line MNA DC solve, dense vs sparse stamping
/// (arg0: array edge m, arg1: 0 = dense jacobian + dense LU, 1 = triplet
/// stamping + cached CSR + Gilbert-Peierls LU). The netlist mirrors
/// xbar::SpiceCrossbar: every line is a chain of per-cell segments, the
/// device at (r, c) bridges word segment (r, c) and bit segment (c, r) --
/// ~2 m^2 unknowns with node degree <= 4, the genuinely sparse shape
/// NewtonOptions::sparseMinUnknowns routes to the sparse backend. The dense
/// arm's O(n^2) re-stamp + O(n^3) factorisation is the seed scaling wall:
/// already at m = 32 (~2.2k unknowns) it loses by orders of magnitude, and
/// a 256x256 netlist (~132k unknowns) would need a ~140 GB dense jacobian
/// -- representable only by the sparse arm, which is the point.
void BM_CrossbarDcMna(benchmark::State& state) {
  using namespace nh::spice;
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const bool sparse = state.range(1) == 1;
  Circuit ckt;
  std::vector<BenchMemristor> models(m * m);
  const auto wl = [m](std::size_t r, std::size_t c) {
    return "wl" + std::to_string(r) + "_" + std::to_string(c);
  };
  const auto bl = [m](std::size_t c, std::size_t r) {
    return "bl" + std::to_string(c) + "_" + std::to_string(r);
  };
  for (std::size_t r = 0; r < m; ++r) {
    const NodeId src = ckt.node("vw" + std::to_string(r));
    ckt.emplace<VoltageSource>("Vw" + std::to_string(r), src, ckt.ground(),
                               std::make_unique<DcWaveform>(0.2));
    ckt.emplace<Resistor>("Rwdrv" + std::to_string(r), src,
                          ckt.node(wl(r, 0)), 50.0);
    for (std::size_t c = 0; c + 1 < m; ++c) {
      ckt.emplace<Resistor>("Rw" + std::to_string(r * m + c),
                            ckt.node(wl(r, c)), ckt.node(wl(r, c + 1)), 2.5);
    }
  }
  for (std::size_t c = 0; c < m; ++c) {
    ckt.emplace<Resistor>("Rbdrv" + std::to_string(c), ckt.node(bl(c, 0)),
                          ckt.ground(), 50.0);
    for (std::size_t r = 0; r + 1 < m; ++r) {
      ckt.emplace<Resistor>("Rb" + std::to_string(c * m + r),
                            ckt.node(bl(c, r)), ckt.node(bl(c, r + 1)), 2.5);
    }
  }
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      ckt.emplace<Memristor>("M" + std::to_string(r * m + c),
                             ckt.node(wl(r, c)), ckt.node(bl(c, r)),
                             &models[r * m + c]);
    }
  }
  NewtonOptions opt;
  opt.sparseMinUnknowns = sparse ? 0 : SIZE_MAX;
  std::size_t iterations = 0;
  std::size_t unknowns = 0;
  for (auto _ : state) {
    const SolveResult result = solveDc(ckt, opt);
    iterations = result.iterations;
    unknowns = result.x.size();
    benchmark::DoNotOptimize(result.x);
  }
  state.counters["newton_iterations"] = static_cast<double>(iterations);
  state.counters["rows"] = static_cast<double>(unknowns);
}
BENCHMARK(BM_CrossbarDcMna)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({64, 1})
    ->Args({128, 1})
    ->Unit(benchmark::kMillisecond);

void BM_AlphaTableHub(benchmark::State& state) {
  nh::xbar::CrosstalkHub hub(5, 5, nh::xbar::AlphaTable::analytic(50e-9));
  nh::util::Matrix excess(5, 5, 10.0);
  excess(2, 2) = 230.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hub.inputTemperatures(excess));
  }
}
BENCHMARK(BM_AlphaTableHub);

}  // namespace

/// Custom main (instead of benchmark_main): every run also writes the
/// machine-readable perf baseline BENCH_perf_solvers.json (overridable with
/// NH_BENCH_OUT or an explicit --benchmark_out=...), so successive PRs have
/// a kernel-cost trajectory to compare against.
///
/// The JSON's own context.library_build_type describes the *installed
/// libbenchmark*, not this code -- a Release nh linked against a Debian
/// debug libbenchmark reports "debug" there, which mislabelled the perf
/// trajectory. nh_build_type records how the nh kernels themselves were
/// compiled (CMAKE_BUILD_TYPE, with an NDEBUG-derived fallback).
int main(int argc, char** argv) {
#ifdef NH_BUILD_TYPE
  const char* nhBuildType = NH_BUILD_TYPE[0] != '\0' ? NH_BUILD_TYPE : nullptr;
#else
  const char* nhBuildType = nullptr;
#endif
  if (nhBuildType == nullptr) {
#ifdef NDEBUG
    nhBuildType = "release(ndebug)";
#else
    nhBuildType = "debug(assertions)";
#endif
  }
  benchmark::AddCustomContext("nh_build_type", nhBuildType);
  // Which SpMV row kernel the dispatcher picked on this machine ("avx2" or
  // "scalar") -- the BM_SpMvSimd* arg-1 arms measure this kernel.
  benchmark::AddCustomContext("spmv_kernel",
                              nh::util::spmv::activeKernelName());
  std::vector<std::string> args(argv, argv + argc);
  bool hasOut = false;
  bool hasFormat = false;
  for (const std::string& arg : args) {
    if (arg.rfind("--benchmark_out=", 0) == 0) hasOut = true;
    if (arg.rfind("--benchmark_out_format=", 0) == 0) hasFormat = true;
  }
  if (!hasOut) {
    const char* out = std::getenv("NH_BENCH_OUT");
    args.push_back(std::string("--benchmark_out=") +
                   (out ? out : "BENCH_perf_solvers.json"));
  }
  if (!hasFormat) args.push_back("--benchmark_out_format=json");

  std::vector<char*> rewritten;
  rewritten.reserve(args.size());
  for (std::string& arg : args) rewritten.push_back(arg.data());
  int rewrittenCount = static_cast<int>(rewritten.size());
  benchmark::Initialize(&rewrittenCount, rewritten.data());
  if (benchmark::ReportUnrecognizedArguments(rewrittenCount, rewritten.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
