/// Google-benchmark microbenchmarks of the numerical kernels: dense LU
/// (MNA), preconditioned CG on the FEM operator, the JART conduction solve,
/// device state integration, and one full fast-engine pulse on the 5x5
/// crossbar. These bound the cost model behind the sweep budgets quoted in
/// EXPERIMENTS.md.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "fem/alpha.hpp"
#include "jart/device.hpp"
#include "util/linsolve.hpp"
#include "util/rng.hpp"
#include "xbar/fastsim.hpp"

namespace {

void BM_DenseLuSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  nh::util::Rng rng(42);
  nh::util::Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += static_cast<double>(n);
  }
  nh::util::Vector b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nh::util::solveDense(a, b));
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(10)->Arg(50);

void BM_FemThermalSolve(benchmark::State& state) {
  nh::fem::CrossbarLayout layout;
  layout.rows = 3;
  layout.cols = 3;
  layout.margin = 20e-9;
  const auto model = nh::fem::CrossbarModel3D::build(layout);
  nh::fem::ThermalScenario scenario;
  scenario.model = &model;
  scenario.cellPower = nh::util::Matrix(3, 3, 0.0);
  scenario.cellPower(1, 1) = 1e-4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nh::fem::solveThermal(scenario));
  }
  state.counters["voxels"] = static_cast<double>(model.grid().voxelCount());
}
BENCHMARK(BM_FemThermalSolve)->Unit(benchmark::kMillisecond);

void BM_JartConduction(benchmark::State& state) {
  const nh::jart::Model model(nh::jart::Params::paperDefaults());
  double n = 1e25;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.solveConduction(0.525, n, 360.0));
  }
}
BENCHMARK(BM_JartConduction);

void BM_JartAdvancePulse(benchmark::State& state) {
  nh::jart::JartDevice device(nh::jart::Params::paperDefaults(), 300.0);
  device.setCrosstalk(60.0);
  for (auto _ : state) {
    device.advance(0.525, 50e-9);
    if (device.normalisedState() > 0.9) device.setHrs();  // keep mid-window
  }
}
BENCHMARK(BM_JartAdvancePulse);

void BM_FastEnginePulse(benchmark::State& state) {
  nh::xbar::ArrayConfig cfg;
  nh::xbar::CrossbarArray array(cfg);
  array.fill(nh::xbar::CellState::Hrs);
  array.setState(2, 2, nh::xbar::CellState::Lrs);
  nh::xbar::FastEngine engine(array, nh::xbar::AlphaTable::analytic(50e-9));
  const auto bias =
      nh::xbar::selectBias(nh::xbar::BiasScheme::Half, 5, 5, 2, 2, 1.05);
  for (auto _ : state) {
    engine.applyPulse(bias, 50e-9, 50e-9);
    // Reset drifting victims occasionally so the workload stays stationary.
    if (array.cell(2, 1).normalisedState() > 0.5) {
      array.fill(nh::xbar::CellState::Hrs);
      array.setState(2, 2, nh::xbar::CellState::Lrs);
    }
  }
}
BENCHMARK(BM_FastEnginePulse)->Unit(benchmark::kMicrosecond);

void BM_AlphaTableHub(benchmark::State& state) {
  nh::xbar::CrosstalkHub hub(5, 5, nh::xbar::AlphaTable::analytic(50e-9));
  nh::util::Matrix excess(5, 5, 10.0);
  excess(2, 2) = 230.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hub.inputTemperatures(excess));
  }
}
BENCHMARK(BM_AlphaTableHub);

}  // namespace

/// Custom main (instead of benchmark_main): every run also writes the
/// machine-readable perf baseline BENCH_perf_solvers.json (overridable with
/// NH_BENCH_OUT or an explicit --benchmark_out=...), so successive PRs have
/// a kernel-cost trajectory to compare against.
int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  bool hasOut = false;
  bool hasFormat = false;
  for (const std::string& arg : args) {
    if (arg.rfind("--benchmark_out=", 0) == 0) hasOut = true;
    if (arg.rfind("--benchmark_out_format=", 0) == 0) hasFormat = true;
  }
  if (!hasOut) {
    const char* out = std::getenv("NH_BENCH_OUT");
    args.push_back(std::string("--benchmark_out=") +
                   (out ? out : "BENCH_perf_solvers.json"));
  }
  if (!hasFormat) args.push_back("--benchmark_out_format=json");

  std::vector<char*> rewritten;
  rewritten.reserve(args.size());
  for (std::string& arg : args) rewritten.push_back(arg.data());
  int rewrittenCount = static_cast<int>(rewritten.size());
  benchmark::Initialize(&rewrittenCount, rewritten.data());
  if (benchmark::ReportUnrecognizedArguments(rewrittenCount, rewritten.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
