/// Statistical campaign: per-cell array-health (disturb-rate) matrix over
/// Monte-Carlo variability trials -- a CMS-style per-channel quality map.
/// Declared in the experiment registry ("campaign_array_health").

#include "bench_common.hpp"

int main() { return nh::bench::runRegistered("campaign_array_health"); }
