/// Fig. 3c reproduction: pulses-to-flip vs ambient temperature (273..373 K)
/// for pulse lengths 10/30/50 ns at 50 nm spacing. Declared in the
/// experiment registry ("fig3c_ambient_temperature").

#include "bench_common.hpp"

int main() { return nh::bench::runRegistered("fig3c_ambient_temperature"); }
