/// Fig. 3c reproduction: pulses-to-flip vs ambient temperature (273..373 K)
/// for pulse lengths 10/30/50 ns at 50 nm spacing. Paper: strong Arrhenius
/// dependence -- ~10^5 pulses at 273 K down to ~10^2 at 373 K.

#include <cstdio>

#include "bench_common.hpp"
#include "core/study.hpp"

int main() {
  using namespace nh;
  bench::banner("Fig. 3c -- impact of the ambient temperature",
                "centre-cell attack, spacing 50 nm, pulse lengths {10, 30, 50} ns",
                "~3 decades fewer pulses from 273 K to 373 K (Arrhenius "
                "switching kinetics)");

  core::StudyConfig cfg;
  const std::vector<double> ambients =
      bench::fastMode() ? std::vector<double>{298.0, 348.0}
                        : std::vector<double>{273.0, 298.0, 323.0, 348.0, 373.0};
  const std::vector<double> widths =
      bench::fastMode() ? std::vector<double>{50e-9}
                        : std::vector<double>{10e-9, 30e-9, 50e-9};
  // 273 K at 10 ns needs a few million pulses -- cap the budget there.
  const auto points = core::sweepAmbient(cfg, ambients, widths, 20'000'000,
                                         bench::sweepThreads());

  util::AsciiTable table(
      {"ambient", "pulse length", "# pulses to flip", "flipped"});
  table.setTitle("Fig. 3c: pulses to trigger a bit-flip vs ambient temperature");
  util::CsvTable csv({"ambient_K", "pulse_length_ns", "pulses", "flipped"});
  for (const auto& p : points) {
    table.addRow({util::AsciiTable::fixed(p.parameter, 0) + " K",
                  util::AsciiTable::si(p.series, "s", 0),
                  util::AsciiTable::grouped(static_cast<long long>(p.pulses)),
                  p.flipped ? "yes" : "NO (budget)"});
    csv.addRow(std::vector<double>{p.parameter, p.series * 1e9,
                                   static_cast<double>(p.pulses),
                                   p.flipped ? 1.0 : 0.0});
  }
  table.addNote("paper @10 ns: ~10^5 (273 K) -> ~10^2..10^3 (373 K)");
  table.print();
  bench::saveCsv(csv, "fig3c_ambient_temperature.csv");
  return 0;
}
