/// Statistical campaign: blinded A/B comparison of the V/2 attack against
/// the V/3 countermeasure -- opaque arms, record frozen before unblinding.
/// Declared in the experiment registry ("campaign_defense_blind").

#include "bench_common.hpp"

int main() { return nh::bench::runRegistered("campaign_defense_blind"); }
