/// Ablation + countermeasure evaluation (paper future work): (a) the biasing
/// scheme -- V/3 reduces the half-select stress from V/2 to V/3, pushing the
/// victim out of the exploitable kinetics window; (b) refresh scrubbing
/// intervals; (c) per-line hammer-count monitoring; (d) duty-cycle
/// throttling (shown ineffective: the heating is intra-pulse).

#include <cstdio>

#include "bench_common.hpp"
#include "core/defense.hpp"

int main() {
  using namespace nh;
  bench::banner("countermeasures -- scheme, scrubbing, monitoring, throttling",
                "reference attack: centre cell, 10 nm spacing (fast regime), "
                "50 ns pulses, 300 K",
                "V/3 scheme and fast scrubbing stop the attack; activation "
                "monitors detect it early; throttling does not help");

  core::StudyConfig cfg;
  cfg.spacing = 10e-9;
  core::HammerPulse pulse;
  const std::size_t budget = bench::fastMode() ? 200'000 : 1'000'000;

  // (a) biasing scheme.
  core::AttackStudy study(cfg);
  const auto v2 = study.attackCenter(pulse, budget);
  core::AttackConfig v3attack;
  v3attack.aggressors = {{2, 2}};
  v3attack.scheme = xbar::BiasScheme::Third;
  v3attack.pulse = pulse;
  v3attack.maxPulses = budget;
  const auto v3 = study.attack(v3attack);

  util::AsciiTable scheme({"bias scheme", "half-select stress", "pulses", "flipped"});
  scheme.setTitle("(a) V/2 vs V/3 biasing scheme");
  scheme.addRow({"V/2", "0.525 V",
                 util::AsciiTable::grouped(static_cast<long long>(v2.pulsesToFlip)),
                 v2.flipped ? "yes" : "NO (budget)"});
  scheme.addRow({"V/3", "0.350 V",
                 util::AsciiTable::grouped(static_cast<long long>(v3.pulsesToFlip)),
                 v3.flipped ? "yes" : "NO (budget)"});
  scheme.addNote("V/3 trades attack immunity for stress on *all* cells and");
  scheme.addNote("3x the driver effort -- the classic scheme trade-off.");
  scheme.print();

  // (b) scrubbing interval sweep.
  util::AsciiTable scrub({"scrub interval", "attack flipped", "pulses survived",
                          "scrub passes", "cells refreshed"});
  scrub.setTitle("\n(b) refresh scrubbing");
  const std::size_t reference = v2.flipped ? v2.pulsesToFlip : budget;
  for (const double frac : {0.25, 1.0, 4.0}) {
    core::ScrubbingConfig s;
    s.intervalPulses =
        std::max<std::size_t>(1, static_cast<std::size_t>(frac * reference));
    const auto outcome = core::evaluateScrubbing(cfg, pulse, s, 3 * reference);
    scrub.addRow({util::AsciiTable::grouped(static_cast<long long>(s.intervalPulses)),
                  outcome.attackSucceeded ? "YES" : "no",
                  util::AsciiTable::grouped(static_cast<long long>(
                      outcome.attackSucceeded ? outcome.pulsesUntilFlip
                                              : outcome.pulsesSurvived)),
                  std::to_string(outcome.scrubPasses),
                  std::to_string(outcome.cellsRefreshed)});
  }
  scrub.addNote("scrubbing faster than ~the flip time defeats the attack at the");
  scrub.addNote("cost of continuous refresh traffic (interval in hammer pulses).");
  scrub.print();

  // (c) hammer-count monitor.
  util::AsciiTable mon({"line threshold", "detected", "detection pulse",
                        "flip pulse", "flip first?"});
  mon.setTitle("\n(c) per-line activation monitor (ReRAM analogue of TRR)");
  for (const double frac : {0.2, 2.0}) {
    core::MonitorConfig m;
    m.lineThreshold =
        std::max<std::size_t>(1, static_cast<std::size_t>(frac * reference));
    const auto outcome = core::evaluateMonitor(cfg, pulse, m, budget);
    mon.addRow({util::AsciiTable::grouped(static_cast<long long>(m.lineThreshold)),
                outcome.attackDetected ? "yes" : "no",
                util::AsciiTable::grouped(
                    static_cast<long long>(outcome.pulsesUntilDetection)),
                util::AsciiTable::grouped(
                    static_cast<long long>(outcome.pulsesUntilFlip)),
                outcome.flippedBeforeDetection ? "YES (defence too slow)" : "no"});
  }
  mon.print();

  // (d) duty-cycle throttling.
  util::AsciiTable thr({"duty cycle", "pulses-to-flip", "attack wall clock"});
  thr.setTitle("\n(d) duty-cycle throttling (negative result)");
  const auto outcomes = core::evaluateThrottling(cfg, pulse.width,
                                                 {0.5, 0.2, 0.05}, budget);
  for (const auto& o : outcomes) {
    thr.addRow({util::AsciiTable::fixed(o.dutyCycle, 2),
                util::AsciiTable::grouped(static_cast<long long>(o.pulses)),
                util::AsciiTable::si(o.wallClockTime, "s", 2)});
  }
  thr.addNote("pulse count is flat: victim heating settles within each pulse");
  thr.addNote("(tau_th ~ 2 ns << period), so idle time between pulses is no defence.");
  thr.print();
  return 0;
}
