/// Ablation + countermeasure evaluation (paper future work): V/3 biasing,
/// refresh scrubbing, per-line hammer-count monitoring, and duty-cycle
/// throttling against the reference attack, one row per countermeasure
/// case. Declared in the experiment registry ("ablation_scheme_defense").

#include "bench_common.hpp"

int main() { return nh::bench::runRegistered("ablation_scheme_defense"); }
