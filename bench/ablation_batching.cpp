/// Ablation: the pulse-batching accelerator of the fast engine -- batched
/// pulse counts must track the exact (unbatched) result within a few
/// percent at ~10x less wall-clock. Declared in the experiment registry
/// ("ablation_batching").

#include "bench_common.hpp"

int main() { return nh::bench::runRegistered("ablation_batching"); }
