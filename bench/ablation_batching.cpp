/// Ablation: the pulse-batching accelerator of the fast engine. Verifies
/// the accuracy/speed trade-off of the drift-bounded extrapolation that
/// makes the 10^5..10^6-pulse sweeps tractable: pulses-to-flip with batching
/// must track the exact (unbatched) result within a few percent while
/// running an order of magnitude faster.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/study.hpp"

namespace {

struct Run {
  std::size_t pulses = 0;
  double wallSeconds = 0.0;
};

Run runAttack(bool batching, double driftLimit) {
  nh::core::StudyConfig cfg;
  cfg.spacing = 30e-9;  // flips in a few thousand pulses: exact run feasible
  cfg.engineOptions.enableBatching = batching;
  cfg.engineOptions.batchDriftLimit = driftLimit;
  nh::core::AttackStudy study(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = study.attackCenter(nh::core::HammerPulse{}, 2'000'000);
  const auto t1 = std::chrono::steady_clock::now();
  return {r.flipped ? r.pulsesToFlip : 0,
          std::chrono::duration<double>(t1 - t0).count()};
}

}  // namespace

int main() {
  using namespace nh;
  bench::banner("ablation -- pulse-batching accelerator",
                "centre attack at 30 nm / 300 K / 50 ns; exact vs batched",
                "batched pulse counts within a few % of exact at ~10x less "
                "wall-clock");

  const Run exact = runAttack(false, 0.002);
  util::AsciiTable table({"mode", "drift limit", "pulses-to-flip",
                          "error vs exact", "wall [s]", "speedup"});
  table.setTitle("batching accuracy / speed trade-off");
  util::CsvTable csv({"drift_limit", "pulses", "error_frac", "wall_s"});
  table.addRow({"exact", "-", util::AsciiTable::grouped(
                                  static_cast<long long>(exact.pulses)),
                "-", util::AsciiTable::fixed(exact.wallSeconds, 2), "1.0x"});
  csv.addRow(std::vector<double>{0.0, static_cast<double>(exact.pulses), 0.0,
                                 exact.wallSeconds});

  const std::vector<double> limits =
      bench::fastMode() ? std::vector<double>{0.002}
                        : std::vector<double>{0.0005, 0.002, 0.01};
  for (const double limit : limits) {
    const Run b = runAttack(true, limit);
    const double err =
        exact.pulses
            ? std::abs(static_cast<double>(b.pulses) -
                       static_cast<double>(exact.pulses)) /
                  static_cast<double>(exact.pulses)
            : 0.0;
    table.addRow({"batched", util::AsciiTable::fixed(limit, 4),
                  util::AsciiTable::grouped(static_cast<long long>(b.pulses)),
                  util::AsciiTable::fixed(100.0 * err, 2) + " %",
                  util::AsciiTable::fixed(b.wallSeconds, 2),
                  util::AsciiTable::fixed(
                      b.wallSeconds > 0 ? exact.wallSeconds / b.wallSeconds : 0.0,
                      1) + "x"});
    csv.addRow(std::vector<double>{limit, static_cast<double>(b.pulses), err,
                                   b.wallSeconds});
  }
  table.print();
  bench::saveCsv(csv, "ablation_batching.csv");
  return 0;
}
