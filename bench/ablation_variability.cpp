/// Extension study: device-to-device variability -- Monte-Carlo over
/// perturbed JART parameters; the attacker needs the *weakest* neighbour,
/// so variability helps the attack. Declared in the experiment registry
/// ("ablation_variability").

#include "bench_common.hpp"

int main() { return nh::bench::runRegistered("ablation_variability"); }
