/// Extension study: device-to-device variability. The paper evaluates the
/// deterministic JART variant; real arrays vary in filament radius, window
/// and activation energy. This Monte-Carlo quantifies how the attack budget
/// spreads across device corners -- the attacker needs the *weakest*
/// neighbour, so variability helps the attack.

#include <cstdio>

#include "bench_common.hpp"
#include "core/variability.hpp"

int main() {
  using namespace nh;
  bench::banner("extension -- device-to-device variability",
                "Monte-Carlo over perturbed JART parameters, centre attack at "
                "30 nm / 300 K / 50 ns",
                "pulses-to-flip spreads over ~1 decade at sigma = 5%; flip "
                "rate stays 100% (the attack is robust to variability)");

  util::AsciiTable table({"sigma", "trials", "flip rate", "min", "median",
                          "max", "spread [dec]"});
  table.setTitle("pulses-to-flip distribution under parameter variability");
  util::CsvTable csv({"sigma", "trials", "flip_rate", "min", "median", "max"});

  core::VariabilityConfig cfg;
  cfg.base.spacing = 30e-9;
  cfg.trials = bench::fastMode() ? 5 : 25;
  for (const double sigma : {0.02, 0.05, 0.10}) {
    cfg.sigma = sigma;
    const auto r = core::runVariabilityStudy(cfg);
    table.addRow({util::AsciiTable::fixed(sigma, 2), std::to_string(r.trials),
                  util::AsciiTable::fixed(100.0 * r.flipRate, 0) + " %",
                  util::AsciiTable::grouped(static_cast<long long>(r.minPulses)),
                  util::AsciiTable::grouped(static_cast<long long>(r.medianPulses)),
                  util::AsciiTable::grouped(static_cast<long long>(r.maxPulses)),
                  util::AsciiTable::fixed(r.spreadDecades, 2)});
    csv.addRow(std::vector<double>{sigma, static_cast<double>(r.trials),
                                   r.flipRate, static_cast<double>(r.minPulses),
                                   static_cast<double>(r.medianPulses),
                                   static_cast<double>(r.maxPulses)});
  }
  table.addNote("spread comes almost entirely from the activation-energy jitter");
  table.addNote("(kinetics are exponential in Ea/kT).");
  table.print();
  bench::saveCsv(csv, "ablation_variability.csv");
  return 0;
}
