/// Fig. 3a reproduction: number of hammer pulses required to trigger a
/// bit-flip vs pulse length (10..100 ns), centre-cell attack on the 5x5
/// crossbar, 50 nm electrode spacing, 300 K ambient. Paper: monotone
/// decrease from ~10^4 at 10 ns to ~10^3 at 100 ns (log-log slope ~ -1,
/// i.e. a constant integrated-stress-time budget).

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/study.hpp"

int main() {
  using namespace nh;
  bench::banner("Fig. 3a -- impact of the pulse length",
                "centre-cell attack, V_SET = 1.05 V, 50% duty, spacing 50 nm, "
                "T0 = 300 K",
                "pulses-to-flip falls ~1/length (10^4 -> 10^3 in the paper); "
                "extra penalty at short pulses from the thermal ramp");

  core::StudyConfig cfg;  // 50 nm, 300 K defaults
  std::vector<double> widths;
  if (bench::fastMode()) {
    widths = {20e-9, 50e-9, 100e-9};
  } else {
    for (int ns = 10; ns <= 100; ns += 10) widths.push_back(ns * 1e-9);
  }
  const auto points =
      core::sweepPulseLength(cfg, widths, 5'000'000, bench::sweepThreads());

  util::AsciiTable table(
      {"pulse length", "# pulses to flip", "stress time", "flipped"});
  table.setTitle("Fig. 3a: pulses to trigger a bit-flip vs pulse length");
  util::CsvTable csv({"pulse_length_ns", "pulses", "stress_time_s", "flipped"});
  for (const auto& p : points) {
    table.addRow({util::AsciiTable::si(p.parameter, "s", 0),
                  util::AsciiTable::grouped(static_cast<long long>(p.pulses)),
                  util::AsciiTable::si(p.stressTime, "s", 2),
                  p.flipped ? "yes" : "NO (budget)"});
    csv.addRow(std::vector<double>{p.parameter * 1e9,
                                   static_cast<double>(p.pulses), p.stressTime,
                                   p.flipped ? 1.0 : 0.0});
  }
  // Log-log slope between the endpoints.
  if (points.size() >= 2 && points.front().flipped && points.back().flipped) {
    const double slope =
        std::log10(static_cast<double>(points.back().pulses) /
                   static_cast<double>(points.front().pulses)) /
        std::log10(points.back().parameter / points.front().parameter);
    table.addNote("log-log slope (first->last point): " +
                  util::AsciiTable::fixed(slope, 2) + "  (paper: ~ -1)");
  }
  table.print();
  bench::saveCsv(csv, "fig3a_pulse_length.csv");
  return 0;
}
