/// Fig. 3a reproduction: number of hammer pulses required to trigger a
/// bit-flip vs pulse length (10..100 ns), centre-cell attack on the 5x5
/// crossbar, 50 nm electrode spacing, 300 K ambient. The whole study is
/// declared in the experiment registry ("fig3a_pulse_length"); this driver
/// is banner + registry lookup + shared result emission.

#include "bench_common.hpp"

int main() { return nh::bench::runRegistered("fig3a_pulse_length"); }
