#pragma once
/// Shared helpers for the figure-reproduction benches: result directory
/// handling, a consistent "paper vs measured" banner, and the one-call
/// registry runner every experiment-backed driver reduces to.

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <string>

#include "core/experiment.hpp"
#include "core/experiment_registry.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

namespace nh::bench {

/// Directory CSV series are written to (NH_RESULTS_DIR or ./bench_results).
/// The convention has one home: core/experiment's defaultResultsDir().
inline std::filesystem::path resultsDir() {
  return nh::core::defaultResultsDir();
}

/// Save a CSV table and report the location on stdout.
inline void saveCsv(const nh::util::CsvTable& table, const std::string& name) {
  const auto path = resultsDir() / name;
  table.save(path);
  std::printf("  series written to %s\n", path.string().c_str());
}

/// Standard banner for each reproduced artefact (shared renderer in
/// core/experiment so the nh_sweep CLI prints the identical header).
inline void banner(const char* figure, const char* description,
                   const char* paperShape) {
  nh::core::printBanner(figure, description, paperShape);
}

/// True when NH_FAST_BENCH is set: benches shrink budgets/grids so the whole
/// suite completes quickly (CI smoke mode).
inline bool fastMode() { return std::getenv("NH_FAST_BENCH") != nullptr; }

/// Sweep worker count for the Fig. 3 harnesses (NH_THREADS override, else
/// hardware concurrency), reported once on stdout so logged runs record it.
/// The one-time report lives in a function-local static initializer, which
/// the language runs exactly once under a lock -- safe to call from
/// concurrent sweep workers (a plain `static bool reported` flag would be a
/// data race on first use).
inline std::size_t sweepThreads() {
  static const std::size_t threads = [] {
    const std::size_t t = nh::util::defaultThreadCount();
    std::printf("sweep threads: %zu (override with NH_THREADS)\n", t);
    return t;
  }();
  return threads;
}

/// The whole body of an experiment-backed bench driver: look the experiment
/// up in the registry, print the banner, run the grid on the pool (fast
/// mode via NH_FAST_BENCH), render the ASCII table, and emit the CSV + JSON
/// series into resultsDir(). Returns the process exit code.
inline int runRegistered(const std::string& name) try {
  const nh::core::ExperimentSpec spec = nh::core::makeExperiment(name);
  nh::core::printBanner(spec);

  nh::core::RunOptions options;
  options.threads = sweepThreads();
  options.fast = fastMode();
  const nh::core::ExperimentResult result =
      nh::core::runExperiment(spec, options);

  // Shaped results render as several tables (main + matrix grids + pivot).
  for (const auto& table : nh::core::toAsciiTables(result)) table.print();
  const auto files = nh::core::writeResultFiles(result, resultsDir());
  std::printf("  series written to %s\n", files.csv.string().c_str());
  std::printf("  json written to %s (config digest %s)\n",
              files.json.string().c_str(), result.configDigest.c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "%s: %s\n", name.c_str(), e.what());
  return 1;
}

}  // namespace nh::bench
