#pragma once
/// Shared helpers for the figure-reproduction benches: result directory
/// handling and a consistent "paper vs measured" banner.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

namespace nh::bench {

/// Directory CSV series are written to (NH_RESULTS_DIR or ./bench_results).
inline std::filesystem::path resultsDir() {
  if (const char* env = std::getenv("NH_RESULTS_DIR")) {
    return std::filesystem::path(env);
  }
  return std::filesystem::path("bench_results");
}

/// Save a CSV table and report the location on stdout.
inline void saveCsv(const nh::util::CsvTable& table, const std::string& name) {
  const auto path = resultsDir() / name;
  table.save(path);
  std::printf("  series written to %s\n", path.string().c_str());
}

/// Standard banner for each reproduced artefact.
inline void banner(const char* figure, const char* description,
                   const char* paperShape) {
  std::printf("=====================================================================\n");
  std::printf("NeuroHammer reproduction -- %s\n", figure);
  std::printf("%s\n", description);
  std::printf("paper shape: %s\n", paperShape);
  std::printf("=====================================================================\n");
}

/// True when NH_FAST_BENCH is set: benches shrink budgets/grids so the whole
/// suite completes quickly (CI smoke mode).
inline bool fastMode() { return std::getenv("NH_FAST_BENCH") != nullptr; }

/// Sweep worker count for the Fig. 3 harnesses (NH_THREADS override, else
/// hardware concurrency), reported once on stdout so logged runs record it.
/// The one-time report lives in a function-local static initializer, which
/// the language runs exactly once under a lock -- safe to call from
/// concurrent sweep workers (a plain `static bool reported` flag would be a
/// data race on first use).
inline std::size_t sweepThreads() {
  static const std::size_t threads = [] {
    const std::size_t t = nh::util::defaultThreadCount();
    std::printf("sweep threads: %zu (override with NH_THREADS)\n", t);
    return t;
  }();
  return threads;
}

}  // namespace nh::bench
