/// Ablation: crosstalk-matrix truncation radius -- whether a cheaper
/// nearest-neighbour-only hub would bias the results. Declared in the
/// experiment registry ("ablation_alpha_truncation").

#include "bench_common.hpp"

int main() { return nh::bench::runRegistered("ablation_alpha_truncation"); }
