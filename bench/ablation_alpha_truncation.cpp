/// Ablation: crosstalk-matrix truncation radius. The hub sums Eq. 5 over
/// the full extracted table (Chebyshev radius 2 on the 5x5 array); this
/// quantifies how much of the attack each coupling shell contributes --
/// i.e. whether a cheaper nearest-neighbour-only hub would bias the results.

#include <cstdio>

#include "bench_common.hpp"
#include "core/study.hpp"

int main() {
  using namespace nh;
  bench::banner("ablation -- crosstalk truncation radius",
                "centre attack at 10 nm / 300 K / 50 ns, alpha table truncated",
                "radius 0 kills the attack (it is thermal); radius 1 misses "
                "the mutual heating of the two word-line victims (they sit "
                "two columns apart) and overestimates the pulse count");

  util::AsciiTable table({"kept couplings", "pulses-to-flip", "flipped",
                          "vs full table"});
  table.setTitle("pulses-to-flip vs coupling truncation");
  util::CsvTable csv({"radius", "pulses", "flipped"});

  core::StudyConfig base;
  base.spacing = 10e-9;
  const std::size_t budget = 2'000'000;

  // Full table first (radius 2).
  std::size_t fullPulses = 0;
  for (const long long radius : {2LL, 1LL, 0LL}) {
    core::AttackStudy study(base);
    auto bench = study.makeBench();
    // Rebuild the engine with a truncated copy of the table.
    xbar::AlphaTable table2 = study.alphas();
    table2.truncate(radius);
    xbar::FastEngine engine(*bench.array, table2, base.engineOptions);
    core::AttackEngine attack(engine, base.detector);
    core::AttackConfig cfg;
    cfg.aggressors = {{2, 2}};
    cfg.maxPulses = budget;
    const auto r = attack.run(cfg);

    if (radius == 2) fullPulses = r.pulsesToFlip;
    const std::string label = radius == 2   ? "radius 2 (full)"
                              : radius == 1 ? "radius 1 (direct ring)"
                                            : "radius 0 (no crosstalk)";
    table.addRow({label,
                  util::AsciiTable::grouped(static_cast<long long>(r.pulsesToFlip)),
                  r.flipped ? "yes" : "NO (budget)",
                  r.flipped && fullPulses
                      ? util::AsciiTable::fixed(
                            static_cast<double>(r.pulsesToFlip) /
                                static_cast<double>(fullPulses),
                            2) + "x"
                      : "-"});
    csv.addRow(std::vector<double>{static_cast<double>(radius),
                                   static_cast<double>(r.pulsesToFlip),
                                   r.flipped ? 1.0 : 0.0});
  }
  table.addNote("radius 0 removes the thermal coupling entirely: the half-select");
  table.addNote("stress alone cannot flip the victim within the budget -- the");
  table.addNote("attack is thermal, not electrical (paper Sec. III).");
  table.addNote("radius 1 drops the (0,2) coupling between the two word-line");
  table.addNote("victims, losing their cooperative self-heating near the flip.");
  table.print();
  bench::saveCsv(csv, "ablation_alpha_truncation.csv");
  return 0;
}
