/// Ablation: the hammer amplitude around the nominal V_SET = 1.05 V --
/// the attacker's amplitude trade-off and the defender's write-voltage
/// margining lever. Declared in the experiment registry
/// ("ablation_hammer_amplitude").

#include "bench_common.hpp"

int main() { return nh::bench::runRegistered("ablation_hammer_amplitude"); }
