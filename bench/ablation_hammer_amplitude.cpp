/// Ablation: the hammer amplitude. The paper fixes V_SET = 1.05 V; this
/// sweep shows the attacker's trade-off -- higher amplitude means more
/// aggressor Joule heat (quadratic-ish) *and* more half-select stress
/// (exponential), so pulses-to-flip collapses steeply with amplitude. The
/// defender-side reading: write-voltage margining is a lever against the
/// attack.

#include <cstdio>

#include "bench_common.hpp"
#include "core/study.hpp"

int main() {
  using namespace nh;
  bench::banner("ablation -- hammer pulse amplitude",
                "centre attack at 50 nm / 300 K / 50 ns, amplitude swept "
                "around the nominal V_SET = 1.05 V",
                "each +0.1 V cuts pulses-to-flip by roughly an order of "
                "magnitude (sinh field term + hotter aggressor)");

  core::StudyConfig cfg;  // 50 nm / 300 K
  util::AsciiTable table({"amplitude", "half-select stress",
                          "# pulses to flip", "flipped"});
  table.setTitle("pulses-to-flip vs hammer amplitude");
  util::CsvTable csv({"amplitude_V", "pulses", "flipped"});

  core::AttackStudy study(cfg);
  const std::vector<double> amplitudes =
      bench::fastMode() ? std::vector<double>{1.05, 1.25}
                        : std::vector<double>{0.85, 0.95, 1.05, 1.15, 1.25};
  for (const double v : amplitudes) {
    core::HammerPulse pulse;
    pulse.amplitude = v;
    const auto r = study.attackCenter(pulse, 30'000'000);
    table.addRow({util::AsciiTable::fixed(v, 2) + " V",
                  util::AsciiTable::fixed(v / 2.0, 3) + " V",
                  util::AsciiTable::grouped(static_cast<long long>(r.pulsesToFlip)),
                  r.flipped ? "yes" : "NO (budget)"});
    csv.addRow(std::vector<double>{v, static_cast<double>(r.pulsesToFlip),
                                   r.flipped ? 1.0 : 0.0});
  }
  table.addNote("amplitudes above ~1.3 V start disturbing unselected cells in");
  table.addNote("normal operation, so the attacker cannot raise V arbitrarily.");
  table.print();
  bench::saveCsv(csv, "ablation_hammer_amplitude.csv");
  return 0;
}
