/// Validation artefact: the transient FEM step response that justifies the
/// circuit-level thermal treatment. The compact model assumes a first-order
/// filament lag (tauThermal ~ 2 ns) and the fast engine assumes crosstalk
/// settles within the first few ns of each pulse; this bench derives both
/// time constants from the time-dependent heat equation on the real
/// geometry.

#include <cstdio>

#include "bench_common.hpp"
#include "fem/transient.hpp"

int main() {
  using namespace nh;
  bench::banner("validation -- transient FEM thermal step response",
                "c dT/dt = div(kappa grad T) + q, implicit Euler, 5x5 "
                "crossbar at 50 nm, 0.1 mW step into the centre filament",
                "filament tau ~ ns, neighbour crosstalk settles within a few "
                "ns -- both well below the 10-100 ns pulse lengths");

  fem::CrossbarLayout layout;  // 5x5 / 50 nm defaults
  const auto model = fem::CrossbarModel3D::build(layout);

  fem::TransientScenario scenario;
  scenario.model = &model;
  scenario.tStop = bench::fastMode() ? 10e-9 : 30e-9;
  scenario.dt = 0.25e-9;
  const auto sol = fem::solveThermalStep(scenario);
  if (!sol.converged) {
    std::printf("transient solve did not converge\n");
    return 1;
  }

  util::AsciiTable table({"cell", "final T [K]", "rise tau (63%) [ns]"});
  table.setTitle("step-response time constants");
  util::CsvTable csv({"t_ns", "heated_K", "word_K", "bit_K", "diag_K"});
  for (std::size_t s = 0; s < sol.cellLabels.size(); ++s) {
    const double tau = sol.riseTimeConstant(s);
    table.addRow({sol.cellLabels[s],
                  util::AsciiTable::fixed(sol.cellTemperature[s].back(), 1),
                  util::AsciiTable::fixed(tau * 1e9, 2)});
  }
  for (std::size_t i = 0; i < sol.time.size(); ++i) {
    csv.addRow(std::vector<double>{sol.time[i] * 1e9, sol.cellTemperature[0][i],
                                   sol.cellTemperature[1][i],
                                   sol.cellTemperature[2][i],
                                   sol.cellTemperature[3][i]});
  }
  table.addNote("the compact model's tauThermal (2 ns) and the fast engine's");
  table.addNote("short first substep are justified when these taus << pulse");
  table.addNote("length; see ablation_thermal_tau for the sensitivity.");
  table.print();
  bench::saveCsv(csv, "fem_thermal_transient.csv");
  return 0;
}
