/// Countermeasure exploration (the paper's stated future work): evaluates
/// the defences implemented in nh::core against the reference attack and
/// prints a deployment-oriented summary -- what stops the attack, what only
/// detects it, and what does not work at all.
///
/// Build & run:  ./examples/countermeasures

#include <cstdio>

#include "core/defense.hpp"

int main() {
  using namespace nh;
  std::printf("=== NeuroHammer countermeasure evaluation ===\n\n");

  core::StudyConfig config;
  config.spacing = 10e-9;  // dense (most vulnerable) technology point
  core::HammerPulse pulse;

  core::AttackStudy reference(config);
  const auto undefended = reference.attackCenter(pulse, 1'000'000);
  if (!undefended.flipped) {
    std::printf("reference attack did not flip -- nothing to defend against\n");
    return 1;
  }
  std::printf("reference attack (no defence): flip after %zu pulses\n\n",
              undefended.pulsesToFlip);

  // 1. Refresh scrubbing at a quarter of the flip time.
  core::ScrubbingConfig scrub;
  scrub.intervalPulses = undefended.pulsesToFlip / 4;
  const auto scrubbed =
      core::evaluateScrubbing(config, pulse, scrub, 4 * undefended.pulsesToFlip);
  std::printf("[scrubbing]   interval %zu pulses: %s (%zu passes, %zu refreshes)\n",
              scrub.intervalPulses,
              scrubbed.attackSucceeded ? "FLIPPED -- too slow"
                                       : "attack defeated",
              scrubbed.scrubPasses, scrubbed.cellsRefreshed);

  // 2. Hammer-count monitoring at 10% of the flip count.
  core::MonitorConfig monitor;
  monitor.lineThreshold = undefended.pulsesToFlip / 10;
  const auto monitored =
      core::evaluateMonitor(config, pulse, monitor, 2 * undefended.pulsesToFlip);
  std::printf("[monitoring]  threshold %zu activations: detected at pulse %zu, "
              "flip at %zu -> %s\n",
              monitor.lineThreshold, monitored.pulsesUntilDetection,
              monitored.pulsesUntilFlip,
              monitored.flippedBeforeDetection ? "TOO LATE" : "in time");

  // 3. Duty-cycle throttling (does not work -- heating is intra-pulse).
  const auto throttled = core::evaluateThrottling(
      config, pulse.width, {0.5, 0.05}, 2 * undefended.pulsesToFlip);
  std::printf("[throttling]  duty 0.50: %zu pulses; duty 0.05: %zu pulses "
              "(ratio %.2f -> no protection, only slower wall clock)\n",
              throttled[0].pulses, throttled[1].pulses,
              static_cast<double>(throttled[1].pulses) /
                  static_cast<double>(throttled[0].pulses));

  // 4. Layout-level defence: wider electrode spacing.
  core::StudyConfig wide = config;
  wide.spacing = 90e-9;
  const auto spaced = core::AttackStudy(wide).attackCenter(pulse, 10'000'000);
  std::printf("[layout]      spacing 10 nm -> 90 nm: %zu -> %zu pulses "
              "(%.0fx more attacker effort, at a 2.5x area cost)\n\n",
              undefended.pulsesToFlip, spaced.pulsesToFlip,
              static_cast<double>(spaced.pulsesToFlip) /
                  static_cast<double>(undefended.pulsesToFlip));

  std::printf("summary: scrubbing and V/3 biasing stop the attack; activation\n");
  std::printf("monitors detect it early; throttling is useless; spacing trades\n");
  std::printf("density for attacker effort (see bench/ablation_scheme_defense).\n");
  return 0;
}
