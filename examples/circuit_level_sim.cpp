/// Circuit-level (SPICE) walkthrough of the paper's simulation framework
/// (Fig. 2c): init file -> crossbar netlist with distributed line parasitics
/// -> stimuli file -> transient run with the crosstalk hub exchanging
/// filament temperatures -- the full "Cadence Virtuoso" path, validated
/// against the fast quasi-static engine on the same pulse train.
///
/// Build & run:  ./examples/circuit_level_sim

#include <cstdio>

#include "xbar/controller.hpp"
#include "xbar/files.hpp"
#include "xbar/spicesim.hpp"

int main() {
  using namespace nh;
  std::printf("=== circuit-level crossbar simulation (paper Fig. 2c) ===\n\n");

  // The paper's framework is parameterised by an init file (initial ReRAM
  // states) and a stimuli file (per-line pulse programming).
  const char* initText =
      "# row col state -- attacked cell in LRS, everything else HRS\n"
      "2 2 LRS\n";
  const char* stimuliText =
      "# type idx amplitude lengthNs duty count\n"
      "WL 2 1.05 50 0.5 10    # hammer the selected word line\n";

  xbar::ArrayConfig arrayConfig;  // 5x5, line R/C + driver impedance defaults
  xbar::CrossbarArray array(arrayConfig);
  array.fill(xbar::CellState::Hrs);
  xbar::applyInit(array, xbar::parseInit(initText));

  const auto stimuli = xbar::parseStimuli(stimuliText);
  xbar::validateStimuli(array, stimuli);

  xbar::SpiceEngineOptions options;
  options.traceCells = true;
  xbar::SpiceCrossbar spice(array, xbar::AlphaTable::analytic(10e-9), options);
  std::printf("netlist: %zu nodes, %zu elements (distributed RC lines, %zu "
              "memristors)\n",
              spice.circuit().nodeCount(), spice.circuit().elements().size(),
              array.cellCount());

  // Resting bias = V/2 scheme around the attacked cell; the word-line
  // stimulus from the file pulses base->V on top of it.
  xbar::LineBias resting = xbar::selectBias(xbar::BiasScheme::Half, 5, 5, 2, 2, 1.05);
  std::vector<xbar::LineStimulus> programmed = stimuli;
  programmed[0].pulse.base = 0.525;  // pulse between V/2 and V
  spice.programDrivers(resting, programmed);

  const auto result = spice.run(10 * 100e-9);
  if (!result.completed) {
    std::printf("transient failed: %s\n", result.failureReason.c_str());
    return 1;
  }
  std::printf("transient: %zu accepted steps over %.0f ns\n\n",
              result.time.size(), result.time.back() * 1e9);

  // Peak aggressor temperature and victim drift from the traces.
  const auto& tAgg = result.seriesFor("T(2,2)");
  const auto& xVic = result.seriesFor("x(2,1)");
  double tPeak = 0.0;
  for (const double t : tAgg) tPeak = std::max(tPeak, t);
  std::printf("aggressor (2,2): peak filament temperature %.0f K\n", tPeak);
  std::printf("victim (2,1):    state drift 0 -> %.2e after 10 pulses\n",
              xVic.back());

  std::printf("\ncross-check against the fast quasi-static engine:\n");
  xbar::CrossbarArray fastArray(arrayConfig);
  fastArray.fill(xbar::CellState::Hrs);
  xbar::applyInit(fastArray, xbar::parseInit(initText));
  xbar::FastEngine fast(fastArray, xbar::AlphaTable::analytic(10e-9));
  fast.applyPulseTrain(resting, 50e-9, 50e-9, 10);
  std::printf("victim drift: SPICE %.3e vs fast %.3e (same order; the fast\n"
              "engine powers the 10^5-pulse sweeps of Fig. 3)\n",
              xVic.back(), fastArray.cell(2, 1).normalisedState());
  return 0;
}
