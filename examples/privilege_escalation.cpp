/// RowHammer-style privilege escalation transferred to ReRAM (paper
/// Sec. VI): a page-table fragment lives in the crossbar; the attacker owns
/// one cell on the same word line as a kernel page's write-permission bit
/// and may write it as often as it likes. Repeated legitimate SET writes to
/// its own cell heat the neighbourhood until the permission bit flips --
/// memory isolation is violated without ever addressing the victim.
///
/// Build & run:  ./examples/privilege_escalation

#include <cstdio>

#include "core/scenario.hpp"

namespace {

void printImage(const char* title, const std::vector<bool>& bits,
                std::size_t cols, const nh::xbar::CellCoord& victim,
                const nh::xbar::CellCoord& attacker) {
  std::printf("%s\n", title);
  for (std::size_t r = 0; r < bits.size() / cols; ++r) {
    std::printf("    ");
    for (std::size_t c = 0; c < cols; ++c) {
      const char* decoration = "";
      if (r == victim.row && c == victim.col) decoration = "*";   // victim
      if (r == attacker.row && c == attacker.col) decoration = "&";  // attacker
      std::printf("%d%-1s ", bits[r * cols + c] ? 1 : 0, decoration);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace nh;
  std::printf("=== NeuroHammer privilege-escalation scenario ===\n");
  std::printf("page-table fragment in a 5x5 ReRAM crossbar; '*' = kernel\n");
  std::printf("write-permission bit (must stay 0), '&' = attacker-owned cell\n\n");

  core::StudyConfig config;  // 50 nm / 300 K defaults
  core::PrivilegeEscalationScenario scenario(config);
  core::HammerPulse pulse;  // 1.05 V / 50 ns / 50% duty
  const auto report = scenario.run(pulse, 1'000'000);

  printImage("memory before the attack:", report.memoryBefore, 5,
             report.victimBit, report.attackerCell);
  std::printf("\nhammering cell (%zu,%zu) with V_SET writes...\n\n",
              report.attackerCell.row, report.attackerCell.col);
  printImage("memory after the attack:", report.memoryAfter, 5,
             report.victimBit, report.attackerCell);

  if (report.succeeded) {
    std::printf("\npermission bit (%zu,%zu) flipped 0 -> 1 after %zu hammer "
                "writes (%.2f ms at the hammer duty cycle)\n",
                report.victimBit.row, report.victimBit.col, report.pulses,
                report.attackSeconds * 1e3);
    std::printf("collateral bit-flips: %zu %s\n", report.collateralFlips,
                report.collateralFlips == 0
                    ? "(surgical: only the targeted bit changed)"
                    : "(noisy attack)");
    std::printf("\n=> the attacker-writable cell never shared an address with\n"
                "   the victim; isolation was broken purely by thermal\n"
                "   crosstalk, the ReRAM analogue of Seaborn's PTE attack.\n");
  } else {
    std::printf("\nattack failed within the pulse budget.\n");
  }
  return report.succeeded ? 0 : 1;
}
