/// nh_perf_gate: tolerance-checked comparator for perf_solvers JSON runs.
///
/// Compares a fresh Google-Benchmark JSON emission (NH_BENCH_OUT) against
/// the tracked BENCH_perf_solvers.json baseline, per benchmark name, on CPU
/// time. The default mode is a *warn-only* gate for CI: regressions print a
/// clearly grep-able `PERF REGRESSION` line and a summary, but the exit
/// code stays 0 because smoke runs on shared runners are too noisy to block
/// merges on. `--strict` turns regressions into exit 1 for local use on a
/// quiet machine.
///
///   nh_perf_gate <baseline.json> <current.json> [--tolerance X] [--strict]
///               [--filter <regex>]
///
/// Tolerance is a ratio: a benchmark regresses when
///   current_cpu_time > tolerance * baseline_cpu_time   (default 2.0).
/// Improvements past the same ratio are reported too, as a nudge to
/// re-record the baseline so the gate keeps teeth after a speedup.
///
/// Benchmarks present in the baseline but absent from the candidate run are
/// reported as `PERF MISSING` lines and counted: a silently vanished
/// benchmark (renamed, crashed, or filtered out of the run) must not read
/// as a pass. Missing benchmarks fail a --strict gate like regressions do.
/// `--filter <regex>` restricts the comparison (and the MISSING check) to
/// matching benchmark names -- for local single-kernel A/B loops, e.g.
/// --filter 'BM_SpMvSimd.*'.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace {

struct Sample {
  double cpuNs = 0.0;
};

double unitToNs(const std::string& unit) {
  if (unit == "ns") return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  throw std::runtime_error("nh_perf_gate: unknown time_unit '" + unit + "'");
}

std::map<std::string, Sample> loadRun(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("nh_perf_gate: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  const nh::util::JsonValue doc = nh::util::JsonValue::parse(text.str());
  const nh::util::JsonValue& benches = doc.at("benchmarks");
  std::map<std::string, Sample> out;
  for (const auto& b : benches.items()) {
    // Skip aggregate rows (mean/median/stddev) when repetitions are on.
    if (const auto* runType = b.find("run_type")) {
      if (runType->asString() != "iteration") continue;
    }
    Sample s;
    s.cpuNs = b.at("cpu_time").asNumber() * unitToNs(b.at("time_unit").asString());
    out[b.at("name").asString()] = s;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double tolerance = 2.0;
  bool strict = false;
  std::string filterPattern;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--filter") == 0 && i + 1 < argc) {
      filterPattern = argv[++i];
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "nh_perf_gate: unknown option %s\n", argv[i]);
      return 2;
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.size() != 2 || tolerance <= 1.0) {
    std::fprintf(stderr,
                 "usage: nh_perf_gate <baseline.json> <current.json>"
                 " [--tolerance X>1] [--strict] [--filter <regex>]\n");
    return 2;
  }

  try {
    auto baseline = loadRun(paths[0]);
    auto current = loadRun(paths[1]);
    if (!filterPattern.empty()) {
      // ECMAScript partial match, like benchmark's own --benchmark_filter.
      const std::regex filter(filterPattern);
      const auto prune = [&](std::map<std::string, Sample>& run) {
        for (auto it = run.begin(); it != run.end();) {
          it = std::regex_search(it->first, filter) ? std::next(it)
                                                    : run.erase(it);
        }
      };
      prune(baseline);
      prune(current);
    }

    std::size_t compared = 0, regressions = 0, improvements = 0;
    std::vector<std::string> onlyBaseline, onlyCurrent;
    for (const auto& [name, base] : baseline) {
      const auto it = current.find(name);
      if (it == current.end()) {
        onlyBaseline.push_back(name);
        continue;
      }
      ++compared;
      const double ratio = it->second.cpuNs / base.cpuNs;
      if (ratio > tolerance) {
        ++regressions;
        std::printf("PERF REGRESSION  %-40s %8.3f ms -> %8.3f ms  (%.2fx > %.2fx)\n",
                    name.c_str(), base.cpuNs / 1e6, it->second.cpuNs / 1e6,
                    ratio, tolerance);
      } else if (ratio < 1.0 / tolerance) {
        ++improvements;
        std::printf("perf improvement %-40s %8.3f ms -> %8.3f ms  (%.2fx)"
                    "  [consider re-recording the baseline]\n",
                    name.c_str(), base.cpuNs / 1e6, it->second.cpuNs / 1e6,
                    ratio);
      }
    }
    for (const auto& [name, s] : current) {
      (void)s;
      if (!baseline.count(name)) onlyCurrent.push_back(name);
    }

    for (const auto& name : onlyBaseline) {
      std::printf("PERF MISSING     %-40s in baseline but absent from the"
                  " candidate run (removed, renamed, or crashed?)\n",
                  name.c_str());
    }
    for (const auto& name : onlyCurrent) {
      std::printf("note: new benchmark %s (absent from the baseline)\n",
                  name.c_str());
    }
    std::printf(
        "nh_perf_gate: %zu compared, %zu regression(s), %zu missing, "
        "%zu improvement(s), tolerance %.2fx%s\n",
        compared, regressions, onlyBaseline.size(), improvements, tolerance,
        strict ? " [strict]" : " [warn-only]");
    if (compared == 0) {
      std::fprintf(stderr, "nh_perf_gate: no overlapping benchmarks\n");
      return 2;
    }
    return (strict && (regressions > 0 || !onlyBaseline.empty())) ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nh_perf_gate: %s\n", e.what());
    return 2;
  }
}
