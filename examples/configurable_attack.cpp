/// Config-file-driven experiment runner (paper Sec. IV-B: "The platform can
/// be parameterized based on configuration files"): pass an INI file to run
/// any attack variant without recompiling; without arguments a documented
/// default configuration is used and printed.
///
/// Usage:  ./examples/configurable_attack [experiment.ini]

#include <cstdio>

#include "core/configio.hpp"

namespace {

const char* kDefaultIni = R"ini(
; NeuroHammer experiment configuration (defaults shown)
[array]
rows = 5
cols = 5
[geometry]
spacing_nm = 10          ; Fig. 3b sweep point: dense technology
fem_alphas = false       ; true = run the FEM extraction for this geometry
[environment]
ambient_K = 300
[attack]
pattern = row-pair       ; single|row-pair|column-pair|cross|ring
amplitude_V = 1.05
width_ns = 50
duty = 0.5
max_pulses = 1000000
scheme = half            ; half|third
)ini";

}  // namespace

int main(int argc, char** argv) {
  using namespace nh;
  util::Config ini;
  if (argc > 1) {
    std::printf("loading configuration from %s\n\n", argv[1]);
    ini = util::Config::load(argv[1]);
  } else {
    std::printf("no config given -- using the built-in default:\n%s\n",
                kDefaultIni);
    ini = util::Config::fromString(kDefaultIni);
  }

  const core::StudyConfig studyConfig = core::studyConfigFrom(ini);
  core::AttackStudy study(studyConfig);
  const core::AttackConfig attack =
      core::attackConfigFrom(ini, studyConfig.rows, studyConfig.cols);

  std::printf("study: %zux%zu crossbar, spacing %.0f nm, T0 = %.0f K, "
              "R_th = %.3g K/W\n",
              studyConfig.rows, studyConfig.cols, studyConfig.spacing * 1e9,
              studyConfig.ambientK, study.rThEff());
  std::printf("attack: %zu aggressor(s), %.2f V / %.0f ns pulses at %.0f%% "
              "duty, budget %zu pulses\n\n",
              attack.aggressors.size(), attack.pulse.amplitude,
              attack.pulse.width * 1e9, 100.0 * attack.pulse.dutyCycle,
              attack.maxPulses);

  const core::AttackResult result = study.attack(attack);
  if (result.flipped) {
    std::printf("bit-flip at cell (%zu,%zu) after %zu pulses "
                "(%.3g s of victim stress)\n",
                result.flippedCell.row, result.flippedCell.col,
                result.pulsesToFlip, result.stressTime);
  } else {
    std::printf("no flip within %zu pulses\n", result.pulsesApplied);
  }

  std::printf("\nequivalent INI of the resolved study config:\n%s",
              core::toConfigText(studyConfig).c_str());
  return result.flipped ? 0 : 1;
}
