/// Quickstart: the NeuroHammer pipeline in ~40 lines of user code.
///  1. pick a crossbar geometry (electrode spacing) and environment,
///  2. build an AttackStudy (alpha extraction + compact-model wiring),
///  3. hammer the centre cell and see which neighbour flips.
///
/// Build & run:  ./examples/quickstart

#include <cstdio>

#include "core/study.hpp"

int main() {
  using namespace nh;

  // 1. Experiment setup: 5x5 crossbar, 50 nm electrode spacing, room
  //    temperature. The study wires the FEM-calibrated thermal-crosstalk
  //    table and the JART-style compact model together.
  core::StudyConfig config;
  config.spacing = 50e-9;
  config.ambientK = 300.0;
  core::AttackStudy study(config);

  std::printf("NeuroHammer quickstart\n");
  std::printf("  crossbar:      %zux%zu, spacing %.0f nm\n", config.rows,
              config.cols, config.spacing * 1e9);
  std::printf("  R_th (FEM):    %.3g K/W\n", study.rThEff());
  std::printf("  alpha to word-line neighbour: %.3f\n", study.alphas().at(0, 1));
  std::printf("  alpha to bit-line neighbour:  %.3f\n\n", study.alphas().at(1, 0));

  // 2. The attack: rectangular V_SET pulses on the centre cell under the
  //    V/2 scheme (paper Sec. III). Every other cell starts as HRS ('0').
  core::HammerPulse pulse;  // 1.05 V, 50 ns, 50% duty cycle
  const core::AttackResult result = study.attackCenter(pulse, 1'000'000);

  // 3. Outcome.
  if (result.flipped) {
    std::printf("bit-flip! cell (%zu,%zu) went HRS -> LRS after %zu pulses\n",
                result.flippedCell.row, result.flippedCell.col,
                result.pulsesToFlip);
    std::printf("  victim stress time: %.3g s of V/2 pulses\n", result.stressTime);
    std::printf("  attack wall clock at 50%% duty: %.3g s\n",
                2.0 * result.stressTime);
  } else {
    std::printf("no flip within %zu pulses -- try a tighter spacing or a\n"
                "hotter ambient (see bench/fig3b_electrode_spacing).\n",
                result.pulsesApplied);
  }
  return result.flipped ? 0 : 1;
}
