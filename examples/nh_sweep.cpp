/// Generic experiment CLI: the command-line front end of the experiment
/// registry, plus the original INI-driven sweep mode.
///
/// Usage:
///   nh_sweep list
///       List every registered experiment with its one-line summary.
///   nh_sweep run <name> [--fast] [--threads N] [--max-pulses N]
///                       [--set axis=v1,v2,...] [--out DIR]
///       Run a registered experiment: prints the banner + ASCII table and
///       writes <name>.csv and <name>.json into DIR (default: the bench
///       results directory -- NH_RESULTS_DIR or ./bench_results). --fast
///       (or NH_FAST_BENCH=1) selects the shrunk CI-smoke grids; --set
///       replaces a named axis's value list (repeatable).
///   nh_sweep [sweep.ini]
///       Legacy INI mode: any of the four Fig. 3 sweeps (pulse-length,
///       spacing, ambient, patterns) with configurable grids; see the
///       built-in default config printed when run without arguments. The
///       CSV lands in the bench results directory unless [sweep] output
///       gives an explicit path.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/configio.hpp"
#include "core/experiment.hpp"
#include "core/experiment_registry.hpp"
#include "core/study.hpp"
#include "util/csv.hpp"
#include "util/stringutil.hpp"
#include "util/threadpool.hpp"

namespace {

const char* kDefaultIni = R"ini(
; nh_sweep default: the Fig. 3b electrode-spacing sweep
[array]
rows = 5
cols = 5
[environment]
ambient_K = 300
[sweep]
type = spacing
spacings_nm = 10, 50, 90
widths_ns = 50, 75, 100
max_pulses = 5000000
threads = 0
output = sweep.csv
)ini";

int listExperiments() {
  const auto entries = nh::core::registeredExperiments();
  std::printf("%zu registered experiments:\n\n", entries.size());
  std::size_t width = 0;
  for (const auto& e : entries) width = std::max(width, e.name.size());
  for (const auto& e : entries) {
    std::printf("  %-*s  %s\n", static_cast<int>(width), e.name.c_str(),
                e.summary.c_str());
  }
  std::printf("\nrun one with: nh_sweep run <name> [--fast] "
              "[--set axis=v1,v2,...]\n");
  return 0;
}

/// Parse "axis=v1,v2,..." into an axis-override entry.
void parseAxisOverride(const std::string& arg, nh::core::RunOptions& options) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= arg.size()) {
    throw std::invalid_argument("--set expects axis=v1,v2,... (got '" + arg +
                                "')");
  }
  const std::string axis = arg.substr(0, eq);
  std::vector<double> values;
  for (const auto& token : nh::util::split(arg.substr(eq + 1), ',')) {
    values.push_back(nh::util::parseDouble(nh::util::trim(token),
                                           "--set " + axis));
  }
  options.axisOverrides[axis] = std::move(values);
}

int runExperimentCommand(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "nh_sweep run: missing experiment name "
                 "(see 'nh_sweep list')\n");
    return 2;
  }
  const std::string name = argv[2];
  nh::core::RunOptions options;
  options.fast = std::getenv("NH_FAST_BENCH") != nullptr;
  std::filesystem::path outDir = nh::core::defaultResultsDir();
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(std::string(what) + " expects a value");
      }
      return argv[++i];
    };
    // Counts accept "5e6"-style doubles but must be non-negative integers
    // (a negative double-to-size_t cast would be undefined behaviour).
    auto nextCount = [&](const char* what, double max) -> std::size_t {
      const double v = nh::util::parseDouble(next(what), what);
      if (!(v >= 0.0) || v > max || v != std::floor(v)) {
        throw std::invalid_argument(std::string(what) +
                                    " expects a non-negative integer");
      }
      return static_cast<std::size_t>(v);
    };
    if (arg == "--fast") {
      options.fast = true;
    } else if (arg == "--threads") {
      // Same oversubscription guard the NH_THREADS path applies.
      options.threads = nh::util::clampThreadCount(
          nextCount("--threads", 1e9), "nh_sweep: --threads ");
    } else if (arg == "--max-pulses") {
      options.maxPulsesOverride = nextCount("--max-pulses", 1e15);
    } else if (arg == "--set") {
      parseAxisOverride(next("--set"), options);
    } else if (arg == "--out") {
      outDir = next("--out");
    } else {
      throw std::invalid_argument("unknown option '" + arg + "'");
    }
  }

  const nh::core::ExperimentSpec spec = nh::core::makeExperiment(name);
  nh::core::printBanner(spec);
  if (options.threads == 0) options.threads = nh::util::defaultThreadCount();
  std::printf("threads: %zu (override with --threads or NH_THREADS)%s\n",
              options.threads, options.fast ? "  [fast mode]" : "");

  const nh::core::ExperimentResult result =
      nh::core::runExperiment(spec, options);
  nh::core::toAsciiTable(result).print();
  const auto files = nh::core::writeResultFiles(result, outDir);
  std::printf("nh_sweep: %zu row(s); series written to %s and %s "
              "(config digest %s)\n",
              result.rows.size(), files.csv.string().c_str(),
              files.json.string().c_str(), result.configDigest.c_str());
  return 0;
}

// ---- legacy INI mode ------------------------------------------------------

std::vector<double> scaled(const std::vector<double>& values, double factor) {
  std::vector<double> out;
  out.reserve(values.size());
  for (const double v : values) out.push_back(v * factor);
  return out;
}

nh::util::CsvTable sweepPointCsv(const std::vector<nh::core::SweepPoint>& points,
                                 const std::string& parameterColumn,
                                 double parameterScale) {
  nh::util::CsvTable csv({parameterColumn, "pulse_length_ns", "pulses",
                          "flipped", "stress_time_s"});
  for (const auto& p : points) {
    csv.addRow(std::vector<double>{p.parameter * parameterScale, p.series * 1e9,
                                   static_cast<double>(p.pulses),
                                   p.flipped ? 1.0 : 0.0, p.stressTime});
  }
  return csv;
}

int runIniMode(int argc, char** argv) {
  using namespace nh;

  util::Config ini;
  if (argc > 1) {
    std::printf("nh_sweep: loading %s\n", argv[1]);
    ini = util::Config::load(argv[1]);
  } else {
    std::printf("nh_sweep: no config given -- using the built-in default:\n%s\n",
                kDefaultIni);
    ini = util::Config::fromString(kDefaultIni);
  }

  const core::StudyConfig base = core::studyConfigFrom(ini);
  const std::string type = ini.getString("sweep.type", "spacing");
  const std::size_t maxPulses =
      static_cast<std::size_t>(ini.getInt("sweep.max_pulses", 5'000'000));
  std::size_t threads =
      static_cast<std::size_t>(ini.getInt("sweep.threads", 0));
  if (threads == 0) threads = util::defaultThreadCount();
  // A bare filename (the default sweep.csv included) lands in the bench
  // results directory instead of littering the CWD; explicit paths with a
  // directory component are honoured as given.
  const std::filesystem::path requested =
      ini.getString("sweep.output", "sweep.csv");
  const std::filesystem::path output =
      requested.has_parent_path() ? requested : nh::core::defaultResultsDir() / requested;

  const std::vector<double> widths =
      ini.has("sweep.widths_ns")
          ? scaled(ini.getDoubleList("sweep.widths_ns"), 1e-9)
          : std::vector<double>{50e-9};

  std::printf("nh_sweep: type=%s, %zux%zu array, budget %zu pulses, "
              "%zu thread(s)\n",
              type.c_str(), base.rows, base.cols, maxPulses, threads);

  util::CsvTable csv;
  if (type == "pulse-length") {
    const auto points = core::sweepPulseLength(base, widths, maxPulses, threads);
    csv = sweepPointCsv(points, "pulse_length_ns", 1e9);
  } else if (type == "spacing") {
    const auto spacings =
        ini.has("sweep.spacings_nm")
            ? scaled(ini.getDoubleList("sweep.spacings_nm"), 1e-9)
            : std::vector<double>{10e-9, 50e-9, 90e-9};
    const auto points =
        core::sweepSpacing(base, spacings, widths, maxPulses, threads);
    csv = sweepPointCsv(points, "spacing_nm", 1e9);
  } else if (type == "ambient") {
    const auto ambients =
        ini.has("sweep.ambients_K")
            ? ini.getDoubleList("sweep.ambients_K")
            : std::vector<double>{273.0, 298.0, 323.0, 348.0, 373.0};
    const auto points =
        core::sweepAmbient(base, ambients, widths, maxPulses, threads);
    csv = sweepPointCsv(points, "ambient_K", 1.0);
  } else if (type == "patterns") {
    core::HammerPulse pulse;
    pulse.amplitude = ini.getDouble("sweep.amplitude_V", pulse.amplitude);
    pulse.width = ini.getDouble("sweep.width_ns", 50.0) * 1e-9;
    pulse.dutyCycle = ini.getDouble("sweep.duty", pulse.dutyCycle);
    const auto points = core::sweepPatterns(base, pulse, maxPulses, threads);
    csv = util::CsvTable({"pattern", "aggressors", "pulses", "flipped"});
    for (const auto& p : points) {
      csv.addRow({core::patternName(p.pattern),
                  std::to_string(p.aggressorCount), std::to_string(p.pulses),
                  p.flipped ? "1" : "0"});
    }
  } else {
    std::fprintf(stderr,
                 "nh_sweep: unknown sweep.type '%s' "
                 "(expected pulse-length|spacing|ambient|patterns)\n",
                 type.c_str());
    return 2;
  }

  csv.save(output);
  std::printf("nh_sweep: %zu point(s) written to %s\n", csv.rowCount(),
              output.string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc > 1 && std::strcmp(argv[1], "list") == 0) return listExperiments();
  if (argc > 1 && std::strcmp(argv[1], "run") == 0) {
    return runExperimentCommand(argc, argv);
  }
  if (argc > 1 && (std::strcmp(argv[1], "--help") == 0 ||
                   std::strcmp(argv[1], "-h") == 0 ||
                   std::strcmp(argv[1], "help") == 0)) {
    std::printf(
        "usage:\n"
        "  nh_sweep list                         list registered experiments\n"
        "  nh_sweep run <name> [options]         run a registered experiment\n"
        "    --fast                              shrunk CI-smoke grids "
        "(also: NH_FAST_BENCH=1)\n"
        "    --threads N                         worker count (default "
        "NH_THREADS / hardware)\n"
        "    --max-pulses N                      override the pulse budget\n"
        "    --set axis=v1,v2,...                replace an axis's values "
        "(repeatable)\n"
        "    --out DIR                           output directory (default "
        "NH_RESULTS_DIR / bench_results)\n"
        "  nh_sweep [sweep.ini]                  legacy INI sweep mode\n");
    return 0;
  }
  return runIniMode(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "nh_sweep: %s\n", e.what());
  return 1;
}
