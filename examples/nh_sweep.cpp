/// Config-file-driven sweep runner: executes any of the four Fig. 3 sweeps
/// (pulse-length, spacing, ambient, patterns) on the thread pool and writes
/// the series as CSV -- the batch-mode complement to the fixed-grid
/// bench/fig3* binaries.
///
/// Usage:  ./examples/nh_sweep [sweep.ini]
///
/// The [study] keys follow configurable_attack (array/geometry/environment
/// sections via core::studyConfigFrom); the sweep itself is described by a
/// [sweep] section:
///
///   [sweep]
///   type = spacing            ; pulse-length|spacing|ambient|patterns
///   widths_ns = 50, 75, 100   ; pulse-length series (all types but patterns)
///   spacings_nm = 10, 50, 90  ; swept values for type = spacing
///   ambients_K = 273, 323, 373; swept values for type = ambient
///   width_ns = 50             ; single pulse width for type = patterns
///   max_pulses = 5000000
///   threads = 0               ; 0 = NH_THREADS or hardware concurrency
///   output = sweep.csv

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/configio.hpp"
#include "core/study.hpp"
#include "util/csv.hpp"
#include "util/threadpool.hpp"

namespace {

const char* kDefaultIni = R"ini(
; nh_sweep default: the Fig. 3b electrode-spacing sweep
[array]
rows = 5
cols = 5
[environment]
ambient_K = 300
[sweep]
type = spacing
spacings_nm = 10, 50, 90
widths_ns = 50, 75, 100
max_pulses = 5000000
threads = 0
output = sweep.csv
)ini";

std::vector<double> scaled(const std::vector<double>& values, double factor) {
  std::vector<double> out;
  out.reserve(values.size());
  for (const double v : values) out.push_back(v * factor);
  return out;
}

nh::util::CsvTable sweepPointCsv(const std::vector<nh::core::SweepPoint>& points,
                                 const std::string& parameterColumn,
                                 double parameterScale) {
  nh::util::CsvTable csv({parameterColumn, "pulse_length_ns", "pulses",
                          "flipped", "stress_time_s"});
  for (const auto& p : points) {
    csv.addRow(std::vector<double>{p.parameter * parameterScale, p.series * 1e9,
                                   static_cast<double>(p.pulses),
                                   p.flipped ? 1.0 : 0.0, p.stressTime});
  }
  return csv;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace nh;

  util::Config ini;
  if (argc > 1) {
    std::printf("nh_sweep: loading %s\n", argv[1]);
    ini = util::Config::load(argv[1]);
  } else {
    std::printf("nh_sweep: no config given -- using the built-in default:\n%s\n",
                kDefaultIni);
    ini = util::Config::fromString(kDefaultIni);
  }

  const core::StudyConfig base = core::studyConfigFrom(ini);
  const std::string type = ini.getString("sweep.type", "spacing");
  const std::size_t maxPulses =
      static_cast<std::size_t>(ini.getInt("sweep.max_pulses", 5'000'000));
  std::size_t threads =
      static_cast<std::size_t>(ini.getInt("sweep.threads", 0));
  if (threads == 0) threads = util::defaultThreadCount();
  const std::string output = ini.getString("sweep.output", "sweep.csv");

  const std::vector<double> widths =
      ini.has("sweep.widths_ns")
          ? scaled(ini.getDoubleList("sweep.widths_ns"), 1e-9)
          : std::vector<double>{50e-9};

  std::printf("nh_sweep: type=%s, %zux%zu array, budget %zu pulses, "
              "%zu thread(s)\n",
              type.c_str(), base.rows, base.cols, maxPulses, threads);

  util::CsvTable csv;
  if (type == "pulse-length") {
    const auto points = core::sweepPulseLength(base, widths, maxPulses, threads);
    csv = sweepPointCsv(points, "pulse_length_ns", 1e9);
  } else if (type == "spacing") {
    const auto spacings =
        ini.has("sweep.spacings_nm")
            ? scaled(ini.getDoubleList("sweep.spacings_nm"), 1e-9)
            : std::vector<double>{10e-9, 50e-9, 90e-9};
    const auto points =
        core::sweepSpacing(base, spacings, widths, maxPulses, threads);
    csv = sweepPointCsv(points, "spacing_nm", 1e9);
  } else if (type == "ambient") {
    const auto ambients =
        ini.has("sweep.ambients_K")
            ? ini.getDoubleList("sweep.ambients_K")
            : std::vector<double>{273.0, 298.0, 323.0, 348.0, 373.0};
    const auto points =
        core::sweepAmbient(base, ambients, widths, maxPulses, threads);
    csv = sweepPointCsv(points, "ambient_K", 1.0);
  } else if (type == "patterns") {
    core::HammerPulse pulse;
    pulse.amplitude = ini.getDouble("sweep.amplitude_V", pulse.amplitude);
    pulse.width = ini.getDouble("sweep.width_ns", 50.0) * 1e-9;
    pulse.dutyCycle = ini.getDouble("sweep.duty", pulse.dutyCycle);
    const auto points = core::sweepPatterns(base, pulse, maxPulses, threads);
    csv = util::CsvTable({"pattern", "aggressors", "pulses", "flipped"});
    for (const auto& p : points) {
      csv.addRow({core::patternName(p.pattern),
                  std::to_string(p.aggressorCount), std::to_string(p.pulses),
                  p.flipped ? "1" : "0"});
    }
  } else {
    std::fprintf(stderr,
                 "nh_sweep: unknown sweep.type '%s' "
                 "(expected pulse-length|spacing|ambient|patterns)\n",
                 type.c_str());
    return 2;
  }

  csv.save(output);
  std::printf("nh_sweep: %zu point(s) written to %s\n", csv.rowCount(),
              output.c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "nh_sweep: %s\n", e.what());
  return 1;
}
