/// Generic experiment CLI: the command-line front end of the experiment
/// registry and the tracked baseline store, plus the original INI-driven
/// sweep mode.
///
/// Usage:
///   nh_sweep list
///       List every registered experiment with its one-line summary.
///   nh_sweep run <name> | run-all [options]
///       Run one registered experiment (banner + ASCII tables) or the whole
///       catalog; writes <name>.csv and <name>.json into the output
///       directory. run-all batches the catalog against the process-wide
///       study cache, so experiments sharing a StudyConfig reuse one warm
///       study set.
///   nh_sweep check <name> | check --all [options]
///       Run the experiment(s) and diff the result against the tracked
///       baseline in baselines/ (per-column tolerances, digest-keyed).
///       Non-zero exit and a machine-readable <out>/diffs/<name>.diff.json
///       on any mismatch -- the CI figure-regression gate. With --update,
///       only the out-of-tolerance baselines are re-recorded (in-tolerance
///       files stay byte-identical) and the changes are summarised.
///   nh_sweep record <name> | record --all [options]
///       Run the experiment(s) and (re-)write baselines/<name>.json.
///   nh_sweep describe [--markdown] [--out FILE]
///       Render the self-documenting registry catalog (docs/experiments.md
///       is this output checked in; CI fails when the two drift).
///   nh_sweep [sweep.ini]
///       Legacy INI mode: any of the four Fig. 3 sweeps (pulse-length,
///       spacing, ambient, patterns) with configurable grids; see the
///       built-in default config printed when run without arguments.
///
/// Shared options: --fast (or NH_FAST_BENCH=1) selects the shrunk CI-smoke
/// grids; --threads N, --max-pulses N; --set axis=v1,v2,... replaces a
/// named axis's value list (repeatable; unknown axis names are an error
/// listing the valid axes); --out DIR (default NH_RESULTS_DIR or
/// ./bench_results); --baselines DIR (default NH_BASELINE_DIR or
/// ./baselines).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/baseline.hpp"
#include "core/configio.hpp"
#include "core/experiment.hpp"
#include "core/experiment_registry.hpp"
#include "core/study.hpp"
#include "util/cancellation.hpp"
#include "util/csv.hpp"
#include "util/stringutil.hpp"
#include "util/threadpool.hpp"

namespace {

const char* kDefaultIni = R"ini(
; nh_sweep default: the Fig. 3b electrode-spacing sweep
[array]
rows = 5
cols = 5
[environment]
ambient_K = 300
[sweep]
type = spacing
spacings_nm = 10, 50, 90
widths_ns = 50, 75, 100
max_pulses = 5000000
threads = 0
output = sweep.csv
)ini";

int listExperiments() {
  const auto entries = nh::core::registeredExperiments();
  std::printf("%zu registered experiments:\n\n", entries.size());
  std::size_t width = 0;
  for (const auto& e : entries) width = std::max(width, e.name.size());
  for (const auto& e : entries) {
    std::printf("  %-*s  %s\n", static_cast<int>(width), e.name.c_str(),
                e.summary.c_str());
  }
  std::printf("\nrun one with: nh_sweep run <name> [--fast] "
              "[--set axis=v1,v2,...]\n");
  return 0;
}

/// Parse "axis=v1,v2,..." into an axis-override entry.
void parseAxisOverride(const std::string& arg, nh::core::RunOptions& options) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= arg.size()) {
    throw std::invalid_argument("--set expects axis=v1,v2,... (got '" + arg +
                                "')");
  }
  const std::string axis = arg.substr(0, eq);
  std::vector<double> values;
  for (const auto& token : nh::util::split(arg.substr(eq + 1), ',')) {
    values.push_back(nh::util::parseDouble(nh::util::trim(token),
                                           "--set " + axis));
  }
  options.axisOverrides[axis] = std::move(values);
}

/// Options shared by run / run-all / check / record.
struct CliOptions {
  nh::core::RunOptions run;
  std::filesystem::path outDir = nh::core::defaultResultsDir();
  std::filesystem::path baselineDir = nh::core::defaultBaselineDir();
  bool all = false;              ///< --all (check / record).
  bool update = false;           ///< --update (check): re-record mismatches.
  double deadlineSeconds = 0.0;  ///< --deadline: wall-clock budget (0 = off).
  bool resume = false;           ///< --resume: restart from the checkpoint.
  std::vector<std::string> names;
};

/// Parse everything after the subcommand: positional experiment names plus
/// the shared option set.
CliOptions parseCliOptions(int argc, char** argv, int start) {
  CliOptions cli;
  cli.run.fast = std::getenv("NH_FAST_BENCH") != nullptr;
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(std::string(what) + " expects a value");
      }
      return argv[++i];
    };
    // Counts accept "5e6"-style doubles but must be non-negative integers
    // (a negative double-to-size_t cast would be undefined behaviour).
    auto nextCount = [&](const char* what, double max) -> std::size_t {
      const double v = nh::util::parseDouble(next(what), what);
      if (!(v >= 0.0) || v > max || v != std::floor(v)) {
        throw std::invalid_argument(std::string(what) +
                                    " expects a non-negative integer");
      }
      return static_cast<std::size_t>(v);
    };
    if (arg == "--fast") {
      cli.run.fast = true;
    } else if (arg == "--threads") {
      // Same oversubscription guard the NH_THREADS path applies.
      cli.run.threads = nh::util::clampThreadCount(
          nextCount("--threads", 1e9), "nh_sweep: --threads ");
    } else if (arg == "--max-pulses") {
      cli.run.maxPulsesOverride = nextCount("--max-pulses", 1e15);
    } else if (arg == "--set") {
      parseAxisOverride(next("--set"), cli.run);
    } else if (arg == "--out") {
      cli.outDir = next("--out");
    } else if (arg == "--baselines") {
      cli.baselineDir = next("--baselines");
    } else if (arg == "--all") {
      cli.all = true;
    } else if (arg == "--update") {
      cli.update = true;
    } else if (arg == "--deadline") {
      cli.deadlineSeconds =
          nh::util::parseDouble(next("--deadline"), "--deadline");
      if (!(cli.deadlineSeconds > 0.0)) {
        throw std::invalid_argument("--deadline expects seconds > 0");
      }
    } else if (arg == "--resume") {
      cli.resume = true;
    } else if (arg == "--retries") {
      cli.run.pointRetries = nextCount("--retries", 100);
    } else if (arg == "--keep-going") {
      cli.run.onPointFailure = nh::core::PointFailurePolicy::Skip;
    } else if (!arg.empty() && arg[0] == '-') {
      throw std::invalid_argument("unknown option '" + arg + "'");
    } else {
      cli.names.push_back(arg);
    }
  }
  return cli;
}

/// Experiment names a subcommand operates on: the positional names, or the
/// whole catalog under --all.
std::vector<std::string> resolveNames(const CliOptions& cli,
                                      const char* command) {
  if (cli.all) {
    if (!cli.names.empty()) {
      throw std::invalid_argument(std::string("nh_sweep ") + command +
                                  ": give experiment names or --all, not both");
    }
    std::vector<std::string> names;
    for (const auto& entry : nh::core::registeredExperiments()) {
      names.push_back(entry.name);
    }
    return names;
  }
  if (cli.names.empty()) {
    throw std::invalid_argument(std::string("nh_sweep ") + command +
                                ": missing experiment name "
                                "(see 'nh_sweep list', or use --all)");
  }
  return cli.names;
}

nh::core::ExperimentResult runOne(const std::string& name,
                                  const CliOptions& cli, bool printTables) {
  const nh::core::ExperimentSpec spec = nh::core::makeExperiment(name);
  nh::core::printBanner(spec);
  nh::core::RunOptions options = cli.run;
  if (options.threads == 0) options.threads = nh::util::defaultThreadCount();
  std::printf("threads: %zu (override with --threads or NH_THREADS)%s\n",
              options.threads, options.fast ? "  [fast mode]" : "");

  // --deadline / --resume turn on checkpointing: completed rows persist
  // across interruptions, keyed by the config digest.
  nh::util::CancellationSource deadline;  // must outlive runExperiment
  if (cli.deadlineSeconds > 0.0 || cli.resume) {
    options.checkpointDir = cli.outDir / "checkpoints";
    options.resume = cli.resume;
  }
  if (cli.deadlineSeconds > 0.0) {
    deadline = nh::util::CancellationSource::withDeadline(cli.deadlineSeconds);
    options.cancel = deadline.token();
    std::printf("deadline: %.3g s (completed rows checkpoint to %s)\n",
                cli.deadlineSeconds,
                (options.checkpointDir / (name + ".json")).string().c_str());
  }

  const nh::core::ExperimentResult result =
      nh::core::runExperiment(spec, options);
  if (printTables) {
    for (const auto& table : nh::core::toAsciiTables(result)) table.print();
  }
  const auto files = nh::core::writeResultFiles(result, cli.outDir);
  std::printf("nh_sweep: %zu row(s); series written to %s and %s\n"
              "  config digest %s; %zu unique stud%s (%zu from the "
              "process-wide cache)\n",
              result.rows.size(), files.csv.string().c_str(),
              files.json.string().c_str(), result.configDigest.c_str(),
              result.studiesConstructed,
              result.studiesConstructed == 1 ? "y" : "ies",
              result.studiesReused);
  if (result.pointsResumed > 0) {
    std::printf("  resumed %zu point(s) from the checkpoint\n",
                result.pointsResumed);
  }
  if (!result.complete()) {
    const std::size_t total = result.rows.size();
    std::printf("nh_sweep: INCOMPLETE -- %zu/%zu point(s) done (%zu failed, "
                "%zu cancelled/timed-out)%s\n",
                result.pointsOk, total, result.pointsFailed,
                result.pointsCancelled,
                options.checkpointDir.empty()
                    ? ""
                    : "; checkpoint kept, rerun with --resume");
  }
  return result;
}

int runCommand(int argc, char** argv, bool all) {
  CliOptions cli = parseCliOptions(argc, argv, 2);
  cli.all = cli.all || all;
  const auto names = resolveNames(cli, all ? "run-all" : "run");
  std::size_t incomplete = 0;
  for (const auto& name : names) {
    if (!runOne(name, cli, /*printTables=*/true).complete()) ++incomplete;
    if (names.size() > 1) std::printf("\n");
  }
  if (names.size() > 1) {
    std::printf("nh_sweep: ran %zu experiments; study cache holds %zu "
                "studies\n",
                names.size(), nh::core::studyCacheSize());
  }
  // Partial results (deadline expiry / failed points) exit nonzero so
  // scripted callers notice; the JSON/CSV and checkpoint were still written.
  return incomplete == 0 ? 0 : 1;
}

int checkCommand(int argc, char** argv) {
  const CliOptions cli = parseCliOptions(argc, argv, 2);
  const auto names = resolveNames(cli, "check");
  std::size_t failures = 0;
  // --update: names whose baseline was re-recorded, with the mismatch kind
  // that triggered it (the end-of-run summary).
  std::vector<std::pair<std::string, std::string>> updated;
  for (const auto& name : names) {
    // One corrupt baseline file (or one throwing experiment) must not
    // abort the gate: report it as a failure and keep checking the rest.
    try {
      const nh::core::ExperimentResult result =
          runOne(name, cli, /*printTables=*/false);
      const nh::core::BaselineCheck check =
          nh::core::checkBaseline(result, cli.baselineDir);
      if (check.passed()) {
        std::printf("CHECK PASS  %-28s %s\n", name.c_str(),
                    check.message.c_str());
        continue;
      }
      if (cli.update) {
        // Re-record only the out-of-tolerance baseline; in-tolerance ones
        // above were left byte-identical.
        const auto path = nh::core::writeBaseline(result, cli.baselineDir);
        updated.emplace_back(name, nh::core::baselineStatusName(check.status));
        std::printf("CHECK UPDATE %-27s [%s] re-recorded %s\n", name.c_str(),
                    nh::core::baselineStatusName(check.status),
                    path.string().c_str());
        continue;
      }
      ++failures;
      std::printf("CHECK FAIL  %-28s [%s] %s\n", name.c_str(),
                  nh::core::baselineStatusName(check.status),
                  check.message.c_str());
      for (std::size_t i = 0; i < check.diffs.size() && i < 10; ++i) {
        const auto& d = check.diffs[i];
        std::printf("  row %zu col %s[%zu]: expected %s, got %s (%s)\n",
                    d.row, d.column.c_str(), d.element, d.expected.c_str(),
                    d.actual.c_str(), d.what.c_str());
      }
      if (check.diffs.size() > 10) {
        std::printf("  ... %zu more (see the diff document)\n",
                    check.diffs.size() - 10);
      }
      // Machine-readable diff for CI artifacts.
      const std::filesystem::path diffDir = cli.outDir / "diffs";
      std::filesystem::create_directories(diffDir);
      const std::filesystem::path diffPath = diffDir / (name + ".diff.json");
      std::ofstream out(diffPath, std::ios::binary);
      out << nh::core::diffJson(result, check) << "\n";
      out.flush();
      if (!out) {
        std::fprintf(stderr, "nh_sweep check: cannot write %s\n",
                     diffPath.string().c_str());
      } else {
        std::printf("  diff written to %s\n", diffPath.string().c_str());
      }
    } catch (const std::exception& e) {
      ++failures;
      std::printf("CHECK FAIL  %-28s [error] %s\n", name.c_str(), e.what());
    }
  }
  if (cli.update) {
    if (updated.empty()) {
      std::printf("nh_sweep check --update: every baseline already in "
                  "tolerance; nothing re-recorded\n");
    } else {
      std::printf("nh_sweep check --update: re-recorded %zu baseline(s):\n",
                  updated.size());
      for (const auto& [name, reason] : updated) {
        std::printf("  %-28s (%s)\n", name.c_str(), reason.c_str());
      }
    }
  }
  std::printf("nh_sweep check: %zu/%zu experiment(s) match their baselines\n",
              names.size() - failures, names.size());
  return failures == 0 ? 0 : 1;
}

int recordCommand(int argc, char** argv) {
  const CliOptions cli = parseCliOptions(argc, argv, 2);
  const auto names = resolveNames(cli, "record");
  for (const auto& name : names) {
    const nh::core::ExperimentResult result =
        runOne(name, cli, /*printTables=*/false);
    const auto path = nh::core::writeBaseline(result, cli.baselineDir);
    std::printf("baseline recorded: %s (digest %s)\n", path.string().c_str(),
                result.configDigest.c_str());
  }
  return 0;
}

int describeCommand(int argc, char** argv) {
  std::filesystem::path outFile;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--markdown") {
      // The only (and default) format; accepted for self-documenting CLI
      // lines in CI configs and docs.
    } else if (arg == "--out") {
      if (i + 1 >= argc) {
        throw std::invalid_argument("--out expects a file path");
      }
      outFile = argv[++i];
    } else {
      throw std::invalid_argument("nh_sweep describe: unknown option '" + arg +
                                  "'");
    }
  }
  const std::string markdown = nh::core::registryMarkdown();
  if (outFile.empty()) {
    std::fputs(markdown.c_str(), stdout);
    return 0;
  }
  if (outFile.has_parent_path()) {
    std::filesystem::create_directories(outFile.parent_path());
  }
  std::ofstream out(outFile, std::ios::binary);
  out << markdown;
  out.flush();
  if (!out) {
    throw std::runtime_error("nh_sweep describe: cannot write " +
                             outFile.string());
  }
  std::printf("nh_sweep: catalog written to %s\n", outFile.string().c_str());
  return 0;
}

// ---- legacy INI mode ------------------------------------------------------

std::vector<double> scaled(const std::vector<double>& values, double factor) {
  std::vector<double> out;
  out.reserve(values.size());
  for (const double v : values) out.push_back(v * factor);
  return out;
}

nh::util::CsvTable sweepPointCsv(const std::vector<nh::core::SweepPoint>& points,
                                 const std::string& parameterColumn,
                                 double parameterScale) {
  nh::util::CsvTable csv({parameterColumn, "pulse_length_ns", "pulses",
                          "flipped", "stress_time_s"});
  for (const auto& p : points) {
    csv.addRow(std::vector<double>{p.parameter * parameterScale, p.series * 1e9,
                                   static_cast<double>(p.pulses),
                                   p.flipped ? 1.0 : 0.0, p.stressTime});
  }
  return csv;
}

int runIniMode(int argc, char** argv) {
  using namespace nh;

  util::Config ini;
  if (argc > 1) {
    std::printf("nh_sweep: loading %s\n", argv[1]);
    ini = util::Config::load(argv[1]);
  } else {
    std::printf("nh_sweep: no config given -- using the built-in default:\n%s\n",
                kDefaultIni);
    ini = util::Config::fromString(kDefaultIni);
  }

  const core::StudyConfig base = core::studyConfigFrom(ini);
  const std::string type = ini.getString("sweep.type", "spacing");
  const std::size_t maxPulses =
      static_cast<std::size_t>(ini.getInt("sweep.max_pulses", 5'000'000));
  std::size_t threads =
      static_cast<std::size_t>(ini.getInt("sweep.threads", 0));
  if (threads == 0) threads = util::defaultThreadCount();
  // A bare filename (the default sweep.csv included) lands in the bench
  // results directory instead of littering the CWD; explicit paths with a
  // directory component are honoured as given.
  const std::filesystem::path requested =
      ini.getString("sweep.output", "sweep.csv");
  const std::filesystem::path output =
      requested.has_parent_path() ? requested : nh::core::defaultResultsDir() / requested;

  const std::vector<double> widths =
      ini.has("sweep.widths_ns")
          ? scaled(ini.getDoubleList("sweep.widths_ns"), 1e-9)
          : std::vector<double>{50e-9};

  std::printf("nh_sweep: type=%s, %zux%zu array, budget %zu pulses, "
              "%zu thread(s)\n",
              type.c_str(), base.rows, base.cols, maxPulses, threads);

  util::CsvTable csv;
  if (type == "pulse-length") {
    const auto points = core::sweepPulseLength(base, widths, maxPulses, threads);
    csv = sweepPointCsv(points, "pulse_length_ns", 1e9);
  } else if (type == "spacing") {
    const auto spacings =
        ini.has("sweep.spacings_nm")
            ? scaled(ini.getDoubleList("sweep.spacings_nm"), 1e-9)
            : std::vector<double>{10e-9, 50e-9, 90e-9};
    const auto points =
        core::sweepSpacing(base, spacings, widths, maxPulses, threads);
    csv = sweepPointCsv(points, "spacing_nm", 1e9);
  } else if (type == "ambient") {
    const auto ambients =
        ini.has("sweep.ambients_K")
            ? ini.getDoubleList("sweep.ambients_K")
            : std::vector<double>{273.0, 298.0, 323.0, 348.0, 373.0};
    const auto points =
        core::sweepAmbient(base, ambients, widths, maxPulses, threads);
    csv = sweepPointCsv(points, "ambient_K", 1.0);
  } else if (type == "patterns") {
    core::HammerPulse pulse;
    pulse.amplitude = ini.getDouble("sweep.amplitude_V", pulse.amplitude);
    pulse.width = ini.getDouble("sweep.width_ns", 50.0) * 1e-9;
    pulse.dutyCycle = ini.getDouble("sweep.duty", pulse.dutyCycle);
    const auto points = core::sweepPatterns(base, pulse, maxPulses, threads);
    csv = util::CsvTable({"pattern", "aggressors", "pulses", "flipped"});
    for (const auto& p : points) {
      csv.addRow({core::patternName(p.pattern),
                  std::to_string(p.aggressorCount), std::to_string(p.pulses),
                  p.flipped ? "1" : "0"});
    }
  } else {
    std::fprintf(stderr,
                 "nh_sweep: unknown sweep.type '%s' "
                 "(expected pulse-length|spacing|ambient|patterns)\n",
                 type.c_str());
    return 2;
  }

  csv.save(output);
  std::printf("nh_sweep: %zu point(s) written to %s\n", csv.rowCount(),
              output.string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc > 1 && std::strcmp(argv[1], "list") == 0) return listExperiments();
  if (argc > 1 && std::strcmp(argv[1], "run") == 0) {
    return runCommand(argc, argv, /*all=*/false);
  }
  if (argc > 1 && std::strcmp(argv[1], "run-all") == 0) {
    return runCommand(argc, argv, /*all=*/true);
  }
  if (argc > 1 && std::strcmp(argv[1], "check") == 0) {
    return checkCommand(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "record") == 0) {
    return recordCommand(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "describe") == 0) {
    return describeCommand(argc, argv);
  }
  if (argc > 1 && (std::strcmp(argv[1], "--help") == 0 ||
                   std::strcmp(argv[1], "-h") == 0 ||
                   std::strcmp(argv[1], "help") == 0)) {
    std::printf(
        "usage:\n"
        "  nh_sweep list                         list registered experiments\n"
        "  nh_sweep run <name> [options]         run a registered experiment\n"
        "  nh_sweep run-all [options]            run the whole catalog "
        "(batched against the study cache)\n"
        "  nh_sweep check <name>|--all [options] run + diff against the "
        "tracked baseline (exit 1 on mismatch;\n"
        "                                        diff JSON lands in "
        "<out>/diffs/; --update re-records only\n"
        "                                        the out-of-tolerance "
        "baselines and summarises the changes)\n"
        "  nh_sweep record <name>|--all [options]"
        " run + (re-)write baselines/<name>.json\n"
        "  nh_sweep describe [--markdown] [--out FILE]\n"
        "                                        render the registry catalog "
        "(docs/experiments.md)\n"
        "  options:\n"
        "    --fast                              shrunk CI-smoke grids "
        "(also: NH_FAST_BENCH=1)\n"
        "    --threads N                         worker count (default "
        "NH_THREADS / hardware)\n"
        "    --max-pulses N                      override the pulse budget\n"
        "    --set axis=v1,v2,...                replace an axis's values "
        "(repeatable; unknown names error\n"
        "                                        out listing the valid axes)\n"
        "    --out DIR                           output directory (default "
        "NH_RESULTS_DIR / bench_results)\n"
        "    --baselines DIR                     baseline directory (default "
        "NH_BASELINE_DIR / baselines)\n"
        "    --deadline SECONDS                  wall-clock budget; on expiry "
        "the partial result and a\n"
        "                                        checkpoint are written and "
        "the exit code is nonzero\n"
        "    --resume                            skip points a digest-matching "
        "checkpoint already holds\n"
        "    --retries N                         re-run a failed point up to N "
        "times before flagging it\n"
        "    --keep-going                        record failed points as "
        "flagged rows instead of aborting\n"
        "  nh_sweep [sweep.ini]                  legacy INI sweep mode\n");
    return 0;
  }
  return runIniMode(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "nh_sweep: %s\n", e.what());
  return 1;
}
