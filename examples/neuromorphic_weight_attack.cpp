/// Neuromorphic-accelerator threat (paper Sec. VI: "the proposed attack
/// poses a supplementary threat to emerging neuromorphic-based systems"):
/// a ternary-weight linear classifier is deployed in the crossbar as
/// computing-in-memory conductances (differential column pairs). A
/// co-located attacker hammers a scratch cell adjacent to the victim
/// model's most important weight, flips it, and degrades inference
/// accuracy -- without any access to the model's weights or inputs.
///
/// Build & run:  ./examples/neuromorphic_weight_attack

#include <cstdio>

#include "core/scenario.hpp"

int main() {
  using namespace nh;
  std::printf("=== NeuroHammer neuromorphic weight-corruption scenario ===\n\n");

  core::StudyConfig config;  // 50 nm / 300 K
  core::WeightAttackScenario scenario(config, /*seed=*/42);
  std::printf("victim model: 2-class ternary linear classifier, 4 features +\n");
  std::printf("bias, mapped to differential column pairs of a 5x5 crossbar\n");
  std::printf("evaluation:   %zu held-out samples, analog VMM readout\n\n",
              scenario.testSetSize());

  core::HammerPulse pulse;
  const auto report = scenario.run(pulse, 1'000'000);

  std::printf("accuracy (digital float weights): %.1f %%\n",
              100.0 * report.digitalAccuracy);
  std::printf("accuracy (crossbar, before attack): %.1f %%\n",
              100.0 * report.accuracyBefore);
  if (report.weightFlipped) {
    std::printf("\nattack: flipped weight cell (%zu,%zu) [%s] after %zu pulses\n",
                report.flippedWeightCell.row, report.flippedWeightCell.col,
                report.flippedWeightDescription.c_str(), report.pulses);
    std::printf("accuracy (crossbar, after attack):  %.1f %%\n",
                100.0 * report.accuracyAfter);
    std::printf("\n=> one bit-flip cost %.1f accuracy points; in a deployed\n"
                "   accelerator this is a silent integrity failure -- the\n"
                "   device still 'works', it just misclassifies.\n",
                100.0 * (report.accuracyBefore - report.accuracyAfter));
  } else {
    std::printf("\nweight cell did not flip within the budget.\n");
  }
  return report.weightFlipped ? 0 : 1;
}
