#pragma once
/// \file elements.hpp
/// Concrete circuit elements: resistor, capacitor, independent sources, an
/// ideal diode (used to validate Newton convergence on exponential I-V), and
/// the behavioural memristor that hosts compact models such as JART VCM.

#include <functional>
#include <memory>

#include "spice/circuit.hpp"
#include "spice/waveform.hpp"

namespace nh::spice {

/// Linear resistor between nodes a and b.
class Resistor final : public Element {
 public:
  /// \p resistance must be > 0.
  Resistor(std::string name, NodeId a, NodeId b, double resistance);
  void stamp(StampContext& ctx) const override;
  double resistance() const { return resistance_; }
  /// Current flowing a -> b given an accepted solution.
  double current(const nh::util::Vector& x) const;
  NodeId nodeA() const { return a_; }
  NodeId nodeB() const { return b_; }

 private:
  NodeId a_, b_;
  double resistance_;
};

/// Linear capacitor; companion model is backward-Euler in transient and an
/// open circuit in DC.
class Capacitor final : public Element {
 public:
  Capacitor(std::string name, NodeId a, NodeId b, double capacitance);
  void stamp(StampContext& ctx) const override;
  double capacitance() const { return capacitance_; }

 private:
  NodeId a_, b_;
  double capacitance_;
};

/// Independent voltage source V(a) - V(b) = waveform(t). Adds one auxiliary
/// unknown: its branch current (positive current flows from a through the
/// source to b).
class VoltageSource final : public Element {
 public:
  VoltageSource(std::string name, NodeId a, NodeId b,
                std::unique_ptr<Waveform> waveform);
  /// DC convenience constructor.
  VoltageSource(std::string name, NodeId a, NodeId b, double dcValue);

  std::size_t auxiliaryCount() const override { return 1; }
  void stamp(StampContext& ctx) const override;
  double nextBreakpoint(double t) const override;

  /// Replace the waveform (the memory controller re-programs line drivers
  /// between operations).
  void setWaveform(std::unique_ptr<Waveform> waveform);
  const Waveform& waveform() const { return *waveform_; }

  /// Branch current from the accepted solution (needs finalize() to have
  /// assigned the auxiliary index).
  double branchCurrent(const nh::util::Vector& x) const { return x[aux_]; }

 private:
  NodeId a_, b_;
  std::unique_ptr<Waveform> waveform_;
};

/// Independent current source injecting waveform(t) from a to b.
class CurrentSource final : public Element {
 public:
  CurrentSource(std::string name, NodeId a, NodeId b,
                std::unique_ptr<Waveform> waveform);
  CurrentSource(std::string name, NodeId a, NodeId b, double dcValue);
  void stamp(StampContext& ctx) const override;
  double nextBreakpoint(double t) const override;

 private:
  NodeId a_, b_;
  std::unique_ptr<Waveform> waveform_;
};

/// Shockley diode (anode a, cathode b): i = Is*(exp(v/(n*Vt)) - 1).
/// Exercises the Newton solver on a stiff exponential, mirroring the
/// Schottky branch inside the memristor model.
class Diode final : public Element {
 public:
  Diode(std::string name, NodeId a, NodeId b, double saturationCurrent = 1e-14,
        double emissionCoefficient = 1.0, double temperatureK = 300.0);
  void stamp(StampContext& ctx) const override;
  bool isNonlinear() const override { return true; }
  double current(double v) const;

 private:
  NodeId a_, b_;
  double is_, n_, vt_;
};

/// Interface a compact memristive model exposes to the circuit engine.
/// Implemented by nh::jart::JartDevice; kept abstract here so nh::spice has
/// no dependency on the model library.
class MemristiveModel {
 public:
  virtual ~MemristiveModel() = default;
  /// Device current at terminal voltage \p v with the *current* internal
  /// state (state is frozen within a Newton solve).
  virtual double current(double v) const = 0;
  /// dI/dV at \p v. Default: symmetric finite difference.
  virtual double conductance(double v) const;
  /// Integrate internal state (ionic concentration, filament temperature)
  /// over an accepted step of length \p dt at terminal voltage \p v.
  virtual void advance(double v, double dt) = 0;
};

/// Two-terminal behavioural memristor hosting a MemristiveModel.
/// Non-owning: several analyses can share one model/state.
class Memristor final : public Element {
 public:
  Memristor(std::string name, NodeId a, NodeId b, MemristiveModel* model);
  void stamp(StampContext& ctx) const override;
  void acceptStep(const AcceptContext& ctx) override;
  bool isNonlinear() const override { return true; }
  /// Terminal voltage a-b from a solution vector.
  double terminalVoltage(const nh::util::Vector& x) const;
  MemristiveModel* model() const { return model_; }

 private:
  NodeId a_, b_;
  MemristiveModel* model_;
};

}  // namespace nh::spice
