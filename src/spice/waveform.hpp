#pragma once
/// \file waveform.hpp
/// Time-domain stimulus descriptions for independent sources. The memory
/// controller drives word/bit lines with rectangular pulse trains exactly as
/// the paper defines them: "a rectangular electrical pulse with a fixed
/// amplitude ... and a given pulse length", plus duty cycle and pulse count.

#include <memory>
#include <vector>

#include "util/interp.hpp"

namespace nh::spice {

/// Rectangular/trapezoidal pulse train (SPICE PULSE-style).
struct PulseSpec {
  double base = 0.0;      ///< Level before delay / between pulses [V].
  double amplitude = 0.0; ///< Active level [V].
  double delay = 0.0;     ///< Time of first rising edge [s].
  double rise = 1e-10;    ///< Rise time [s] (>0 keeps the waveform continuous).
  double fall = 1e-10;    ///< Fall time [s].
  double width = 0.0;     ///< Time at the active level per pulse [s].
  double period = 0.0;    ///< Pulse repetition period [s]; 0 = single pulse.
  long long count = -1;   ///< Number of pulses; -1 = unlimited.

  /// Duty cycle = active width / period (0 when period is 0).
  double dutyCycle() const { return period > 0.0 ? width / period : 0.0; }
};

/// Polymorphic waveform: value as a function of time.
class Waveform {
 public:
  virtual ~Waveform() = default;
  /// Instantaneous value at time \p t [s].
  virtual double value(double t) const = 0;
  /// Next time > \p t at which the waveform has a breakpoint (edge); the
  /// transient engine aligns timesteps to these so edges are not smeared.
  /// Returns +inf when no further breakpoints exist.
  virtual double nextBreakpoint(double t) const;
  virtual std::unique_ptr<Waveform> clone() const = 0;
};

/// Constant value.
class DcWaveform final : public Waveform {
 public:
  explicit DcWaveform(double value) : value_(value) {}
  double value(double) const override { return value_; }
  std::unique_ptr<Waveform> clone() const override {
    return std::make_unique<DcWaveform>(value_);
  }

 private:
  double value_;
};

/// Pulse train per PulseSpec.
class PulseWaveform final : public Waveform {
 public:
  explicit PulseWaveform(const PulseSpec& spec);
  double value(double t) const override;
  double nextBreakpoint(double t) const override;
  const PulseSpec& spec() const { return spec_; }
  std::unique_ptr<Waveform> clone() const override {
    return std::make_unique<PulseWaveform>(spec_);
  }

 private:
  PulseSpec spec_;
};

/// Piecewise-linear waveform from (t, v) knots.
class PwlWaveform final : public Waveform {
 public:
  PwlWaveform(std::vector<double> times, std::vector<double> values);
  double value(double t) const override;
  double nextBreakpoint(double t) const override;
  std::unique_ptr<Waveform> clone() const override;

 private:
  nh::util::PiecewiseLinear fn_;
};

}  // namespace nh::spice
