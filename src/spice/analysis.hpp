#pragma once
/// \file analysis.hpp
/// MNA analyses: Newton-Raphson DC operating point and a backward-Euler
/// transient engine with breakpoint-aware, convergence-adaptive timestep
/// control. This is the "Cadence Virtuoso" substitute for the paper's
/// circuit-level simulation flow.

#include <functional>
#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace nh::spice {

/// Newton-Raphson controls.
struct NewtonOptions {
  std::size_t maxIterations = 100;
  double absTol = 1e-9;        ///< Absolute voltage tolerance [V].
  double relTol = 1e-6;        ///< Relative voltage tolerance.
  double maxStepVoltage = 0.5; ///< Per-iteration voltage-update limiter [V].
  /// Reuse the LU factorisation of the Jacobian while it is (effectively)
  /// frozen. Linear circuits factor once per (dt, analysis) and skip the
  /// matrix re-stamp entirely -- bit-identical to re-factoring. Nonlinear
  /// circuits run chord-Newton on the true KCL residual: the update
  /// direction uses a stale factorisation until convergence stalls, at which
  /// point the safeguard re-factors with the current Jacobian; the fixed
  /// point is the same nonlinear solution within the Newton tolerances.
  /// Set false for the classic factor-every-iteration Newton (the seed
  /// behaviour, used as the reference in equivalence tests).
  bool reuseFactorization = true;
  /// Nonlinear circuits only use chord-Newton at or above this unknown
  /// count. Linear circuits reuse their frozen LU at any size (pure win,
  /// bit-identical); for nonlinear circuits the chord's stale-LU probe
  /// spends an extra stamp + O(n^2) solve whenever it misses, and
  /// bench/perf_solvers (BM_SpiceTransientNewton) measures full Newton as
  /// faster up to several hundred unknowns on commodity hardware -- so the
  /// default keeps chord off for every MNA system this project builds.
  /// Lower the threshold (0 = always chord) for very large netlists or to
  /// reproduce the benchmark comparison.
  std::size_t reuseMinUnknowns = 512;
  /// At or above this unknown count the engine stamps into a triplet stream
  /// (cached SparsityPattern, CSR assembly) and factors with the sparse
  /// Gilbert-Peierls LU instead of allocating and eliminating a dense n x n
  /// Jacobian. Crossbar MNA matrices have O(n) nonzeros, so this turns the
  /// O(n^3)/O(n^2) dense wall into near-linear work; the Newton/chord
  /// iteration logic and the frozen-factorisation semantics are unchanged.
  /// Set to SIZE_MAX to force the dense seed path at any size, 0 to force
  /// sparse everywhere (equivalence tests exercise both).
  std::size_t sparseMinUnknowns = 512;
};

/// Result of a Newton solve.
struct SolveResult {
  bool converged = false;
  std::size_t iterations = 0;
  double maxUpdate = 0.0;  ///< Largest |delta-x| on the last iteration.
  nh::util::Vector x;      ///< Solution (node voltages then branch currents).
};

/// DC operating point: solves the nonlinear MNA system at time 0 with
/// capacitors open. \p initialGuess may be empty (starts from zero).
SolveResult solveDc(Circuit& circuit, const NewtonOptions& options = {},
                    const nh::util::Vector& initialGuess = {});

/// A probe records one scalar per accepted transient step.
struct Probe {
  std::string label;
  std::function<double(const nh::util::Vector& x, double time)> extract;
};

/// Transient controls.
struct TransientOptions {
  double tStop = 0.0;          ///< End time [s]. Required.
  double dtInitial = 1e-10;    ///< First step [s].
  double dtMax = 1e-9;         ///< Ceiling [s].
  double dtMin = 1e-15;        ///< Floor before declaring failure [s].
  NewtonOptions newton;
  bool alignToBreakpoints = true;  ///< Clip steps to waveform edges.
  /// Invoked after every accepted step (x, time, dt). Used for inter-element
  /// couplings outside the MNA system -- the crosstalk hub exchanges
  /// filament temperatures between memristor models here, mirroring the
  /// paper's interface variables between Virtuoso and the hub.
  std::function<void(const nh::util::Vector&, double, double)> onStepAccepted;
};

/// Recorded transient results: time vector plus one series per probe.
struct TransientResult {
  bool completed = false;      ///< Reached tStop with all steps converged.
  std::string failureReason;
  std::vector<double> time;
  std::vector<std::string> labels;
  std::vector<std::vector<double>> series;  ///< series[p][k] at time[k].

  /// Series index for \p label; throws std::out_of_range when absent.
  std::size_t seriesIndex(const std::string& label) const;
  const std::vector<double>& seriesFor(const std::string& label) const;
};

/// Run a transient analysis. Stateful elements (capacitors, memristors) are
/// advanced via Element::acceptStep after each converged step.
TransientResult runTransient(Circuit& circuit, const TransientOptions& options,
                             const std::vector<Probe>& probes = {});

/// Convenience probe factories.
Probe probeNodeVoltage(const Circuit& circuit, const std::string& nodeName);
Probe probeDifferentialVoltage(const Circuit& circuit, const std::string& nodeA,
                               const std::string& nodeB);

}  // namespace nh::spice
