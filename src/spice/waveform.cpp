#include "spice/waveform.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace nh::spice {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

double Waveform::nextBreakpoint(double) const { return kInf; }

PulseWaveform::PulseWaveform(const PulseSpec& spec) : spec_(spec) {
  if (spec_.rise <= 0.0 || spec_.fall <= 0.0) {
    throw std::invalid_argument("PulseWaveform: rise/fall must be > 0");
  }
  if (spec_.width < 0.0) throw std::invalid_argument("PulseWaveform: negative width");
  const double minPeriod = spec_.rise + spec_.width + spec_.fall;
  if (spec_.period != 0.0 && spec_.period < minPeriod) {
    throw std::invalid_argument("PulseWaveform: period shorter than pulse shape");
  }
}

double PulseWaveform::value(double t) const {
  const auto& s = spec_;
  if (t < s.delay) return s.base;
  double local = t - s.delay;
  if (s.period > 0.0) {
    const double k = std::floor(local / s.period);
    if (s.count >= 0 && k >= static_cast<double>(s.count)) return s.base;
    local -= k * s.period;
  } else if (s.count == 0) {
    return s.base;
  }
  if (local < s.rise) {
    return s.base + (s.amplitude - s.base) * (local / s.rise);
  }
  if (local < s.rise + s.width) return s.amplitude;
  if (local < s.rise + s.width + s.fall) {
    const double f = (local - s.rise - s.width) / s.fall;
    return s.amplitude + (s.base - s.amplitude) * f;
  }
  return s.base;
}

double PulseWaveform::nextBreakpoint(double t) const {
  const auto& s = spec_;
  // Breakpoints within one period, relative to the pulse start.
  const double marks[4] = {0.0, s.rise, s.rise + s.width, s.rise + s.width + s.fall};
  const double eps = 1e-18;
  if (t < s.delay - eps) return s.delay;

  const double local = t - s.delay;
  double k = 0.0;
  double inPeriod = local;
  if (s.period > 0.0) {
    k = std::floor(local / s.period);
    inPeriod = local - k * s.period;
  }
  // Next mark in this period -- only if this period's pulse exists.
  const bool pulseExists =
      s.count < 0 || (s.period > 0.0 ? k < static_cast<double>(s.count) : k == 0.0);
  if (pulseExists) {
    for (double m : marks) {
      if (inPeriod < m - eps) {
        return s.delay + k * s.period + m;
      }
    }
  }
  // Otherwise the start of the next period, if any pulses remain.
  if (s.period > 0.0) {
    const double nextK = k + 1.0;
    if (s.count < 0 || nextK < static_cast<double>(s.count)) {
      return s.delay + nextK * s.period;
    }
  }
  return kInf;
}

PwlWaveform::PwlWaveform(std::vector<double> times, std::vector<double> values)
    : fn_(std::move(times), std::move(values)) {}

double PwlWaveform::value(double t) const { return fn_(t); }

double PwlWaveform::nextBreakpoint(double t) const {
  for (double knot : fn_.xs()) {
    if (knot > t + 1e-18) return knot;
  }
  return kInf;
}

std::unique_ptr<Waveform> PwlWaveform::clone() const {
  return std::make_unique<PwlWaveform>(fn_.xs(), fn_.ys());
}

}  // namespace nh::spice
