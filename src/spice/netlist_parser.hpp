#pragma once
/// \file netlist_parser.hpp
/// SPICE-style netlist text parser for the circuit engine. Supports the
/// element cards the engine implements, with standard engineering suffixes:
///
///   * comment                          ; '*' or ';' start a comment
///   R<name> <n+> <n-> <value>          ; resistor [Ohm]
///   C<name> <n+> <n-> <value>          ; capacitor [F]
///   V<name> <n+> <n-> DC <value>       ; DC voltage source [V]
///   V<name> <n+> <n-> PULSE(v0 v1 delay rise fall width period [count])
///   V<name> <n+> <n-> PWL(t0 v0 t1 v1 ...)
///   I<name> <n+> <n-> DC <value>       ; DC current source [A]
///   D<name> <anode> <cathode> [Is] [n] ; diode
///   .end                               ; optional terminator
///
/// Values accept suffixes f p n u m k meg g t (case-insensitive), e.g.
/// "1k", "50n", "2.5meg". Node "0" (or "gnd") is ground.

#include <string>

#include "spice/circuit.hpp"

namespace nh::spice {

/// Result of parsing: the number of each element kind instantiated.
struct NetlistSummary {
  std::size_t resistors = 0;
  std::size_t capacitors = 0;
  std::size_t voltageSources = 0;
  std::size_t currentSources = 0;
  std::size_t diodes = 0;
  std::size_t total() const {
    return resistors + capacitors + voltageSources + currentSources + diodes;
  }
};

/// Parse \p text into \p circuit (appending to whatever it already holds).
/// Throws std::runtime_error with line context on malformed input.
NetlistSummary parseNetlist(Circuit& circuit, const std::string& text);

/// Parse a SPICE value with engineering suffix ("4.7k" -> 4700).
/// Throws std::invalid_argument on malformed values.
double parseSpiceValue(const std::string& token);

}  // namespace nh::spice
