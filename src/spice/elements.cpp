#include "spice/elements.hpp"

#include <cmath>
#include <stdexcept>

namespace nh::spice {

// ---- Resistor ---------------------------------------------------------------

Resistor::Resistor(std::string name, NodeId a, NodeId b, double resistance)
    : Element(std::move(name)), a_(a), b_(b), resistance_(resistance) {
  if (!(resistance > 0.0)) {
    throw std::invalid_argument("Resistor '" + this->name() + "': resistance must be > 0");
  }
}

void Resistor::stamp(StampContext& ctx) const {
  ctx.stampConductance(a_, b_, 1.0 / resistance_);
}

double Resistor::current(const nh::util::Vector& x) const {
  const double va = a_ == 0 ? 0.0 : x[a_ - 1];
  const double vb = b_ == 0 ? 0.0 : x[b_ - 1];
  return (va - vb) / resistance_;
}

// ---- Capacitor --------------------------------------------------------------

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double capacitance)
    : Element(std::move(name)), a_(a), b_(b), capacitance_(capacitance) {
  if (!(capacitance > 0.0)) {
    throw std::invalid_argument("Capacitor '" + this->name() + "': capacitance must be > 0");
  }
}

void Capacitor::stamp(StampContext& ctx) const {
  if (!ctx.transient || ctx.dt <= 0.0) {
    return;  // open circuit in DC
  }
  // Backward-Euler companion: i = C/dt * (v - vPrev)  ==>  geq = C/dt,
  // ieq = -C/dt * vPrev (a current source restoring the previous voltage).
  const double geq = capacitance_ / ctx.dt;
  const double vPrev = ctx.prevVoltage(a_) - ctx.prevVoltage(b_);
  ctx.stampConductance(a_, b_, geq);
  ctx.stampCurrentSource(a_, b_, -geq * vPrev);
}

// ---- VoltageSource ----------------------------------------------------------

VoltageSource::VoltageSource(std::string name, NodeId a, NodeId b,
                             std::unique_ptr<Waveform> waveform)
    : Element(std::move(name)), a_(a), b_(b), waveform_(std::move(waveform)) {
  if (!waveform_) throw std::invalid_argument("VoltageSource: null waveform");
}

VoltageSource::VoltageSource(std::string name, NodeId a, NodeId b, double dcValue)
    : VoltageSource(std::move(name), a, b, std::make_unique<DcWaveform>(dcValue)) {}

void VoltageSource::stamp(StampContext& ctx) const {
  const std::size_t ia = ctx.indexOf(a_);
  const std::size_t ib = ctx.indexOf(b_);
  const std::size_t br = aux_;
  // KCL rows pick up the branch current; the branch row enforces the value.
  if (ia != StampContext::kGround) {
    ctx.stampJacobian(ia, br, 1.0);
    ctx.stampJacobian(br, ia, 1.0);
  }
  if (ib != StampContext::kGround) {
    ctx.stampJacobian(ib, br, -1.0);
    ctx.stampJacobian(br, ib, -1.0);
  }
  ctx.addRhs(br, waveform_->value(ctx.time));
}

double VoltageSource::nextBreakpoint(double t) const {
  return waveform_->nextBreakpoint(t);
}

void VoltageSource::setWaveform(std::unique_ptr<Waveform> waveform) {
  if (!waveform) throw std::invalid_argument("VoltageSource::setWaveform: null");
  waveform_ = std::move(waveform);
}

// ---- CurrentSource ----------------------------------------------------------

CurrentSource::CurrentSource(std::string name, NodeId a, NodeId b,
                             std::unique_ptr<Waveform> waveform)
    : Element(std::move(name)), a_(a), b_(b), waveform_(std::move(waveform)) {
  if (!waveform_) throw std::invalid_argument("CurrentSource: null waveform");
}

CurrentSource::CurrentSource(std::string name, NodeId a, NodeId b, double dcValue)
    : CurrentSource(std::move(name), a, b, std::make_unique<DcWaveform>(dcValue)) {}

void CurrentSource::stamp(StampContext& ctx) const {
  ctx.stampCurrentSource(a_, b_, waveform_->value(ctx.time));
}

double CurrentSource::nextBreakpoint(double t) const {
  return waveform_->nextBreakpoint(t);
}

// ---- Diode ------------------------------------------------------------------

Diode::Diode(std::string name, NodeId a, NodeId b, double saturationCurrent,
             double emissionCoefficient, double temperatureK)
    : Element(std::move(name)),
      a_(a),
      b_(b),
      is_(saturationCurrent),
      n_(emissionCoefficient),
      vt_(1.380649e-23 * temperatureK / 1.602176634e-19) {
  if (is_ <= 0.0 || n_ <= 0.0) {
    throw std::invalid_argument("Diode: Is and n must be > 0");
  }
}

double Diode::current(double v) const {
  // Exponent clamp keeps the Newton iteration finite for large trial
  // voltages; the limiter in the solver keeps us out of this region anyway.
  const double arg = std::min(v / (n_ * vt_), 80.0);
  return is_ * (std::exp(arg) - 1.0);
}

void Diode::stamp(StampContext& ctx) const {
  const double v = ctx.voltage(a_) - ctx.voltage(b_);
  const double arg = std::min(v / (n_ * vt_), 80.0);
  const double expTerm = std::exp(arg);
  const double i = is_ * (expTerm - 1.0);
  const double g = std::max(is_ * expTerm / (n_ * vt_), 1e-15);
  // Linearised: i(v*) approx i0 + g*(v* - v)  ->  conductance g plus a
  // current source of (i0 - g*v).
  ctx.stampConductance(a_, b_, g);
  ctx.stampCurrentSource(a_, b_, i - g * v);
}

// ---- Memristor --------------------------------------------------------------

double MemristiveModel::conductance(double v) const {
  const double h = 1e-5 + 1e-7 * std::fabs(v);
  return (current(v + h) - current(v - h)) / (2.0 * h);
}

Memristor::Memristor(std::string name, NodeId a, NodeId b, MemristiveModel* model)
    : Element(std::move(name)), a_(a), b_(b), model_(model) {
  if (model_ == nullptr) throw std::invalid_argument("Memristor: null model");
}

void Memristor::stamp(StampContext& ctx) const {
  const double v = ctx.voltage(a_) - ctx.voltage(b_);
  const double i = model_->current(v);
  double g = model_->conductance(v);
  if (!(g > 0.0)) g = 1e-12;  // keep the Jacobian well-conditioned
  ctx.stampConductance(a_, b_, g);
  ctx.stampCurrentSource(a_, b_, i - g * v);
}

void Memristor::acceptStep(const AcceptContext& ctx) {
  const double v = ctx.voltage(a_) - ctx.voltage(b_);
  model_->advance(v, ctx.dt);
}

double Memristor::terminalVoltage(const nh::util::Vector& x) const {
  const double va = a_ == 0 ? 0.0 : x[a_ - 1];
  const double vb = b_ == 0 ? 0.0 : x[b_ - 1];
  return va - vb;
}

}  // namespace nh::spice
