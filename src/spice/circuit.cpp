#include "spice/circuit.hpp"

#include <limits>
#include <stdexcept>

#include "util/sparse.hpp"

namespace nh::spice {

void StampContext::stampConductance(NodeId a, NodeId b, double g) {
  if (!stampMatrix) return;
  const std::size_t ia = indexOf(a);
  const std::size_t ib = indexOf(b);
  if (triplets) {
    if (ia != kGround) triplets->add(ia, ia, g);
    if (ib != kGround) triplets->add(ib, ib, g);
    if (ia != kGround && ib != kGround) {
      triplets->add(ia, ib, -g);
      triplets->add(ib, ia, -g);
    }
    return;
  }
  if (ia != kGround) (*jacobian)(ia, ia) += g;
  if (ib != kGround) (*jacobian)(ib, ib) += g;
  if (ia != kGround && ib != kGround) {
    (*jacobian)(ia, ib) -= g;
    (*jacobian)(ib, ia) -= g;
  }
}

void StampContext::stampCurrentSource(NodeId a, NodeId b, double i) {
  const std::size_t ia = indexOf(a);
  const std::size_t ib = indexOf(b);
  if (ia != kGround) rhs[ia] -= i;
  if (ib != kGround) rhs[ib] += i;
}

void StampContext::stampJacobian(std::size_t row, std::size_t col, double value) {
  if (!stampMatrix) return;
  if (triplets) {
    triplets->add(row, col, value);
    return;
  }
  (*jacobian)(row, col) += value;
}

void StampContext::addRhs(std::size_t row, double value) { rhs[row] += value; }

double Element::nextBreakpoint(double) const {
  return std::numeric_limits<double>::infinity();
}

Circuit::Circuit() {
  nodeNames_.push_back("0");
  nodeIndex_["0"] = 0;
}

NodeId Circuit::node(const std::string& name) {
  const auto it = nodeIndex_.find(name);
  if (it != nodeIndex_.end()) return it->second;
  const NodeId id = nodeNames_.size();
  nodeNames_.push_back(name);
  nodeIndex_[name] = id;
  return id;
}

NodeId Circuit::findNode(const std::string& name) const {
  const auto it = nodeIndex_.find(name);
  if (it == nodeIndex_.end()) {
    throw std::out_of_range("Circuit::findNode: unknown node '" + name + "'");
  }
  return it->second;
}

void Circuit::addElement(std::unique_ptr<Element> element) {
  auxCount_ += element->auxiliaryCount();
  nonlinear_ = nonlinear_ || element->isNonlinear();
  elements_.push_back(std::move(element));
}

void Circuit::finalize() {
  // Auxiliary unknowns live after all node voltages; their absolute index
  // depends on the final node count, so assignment is deferred to here.
  std::size_t next = nodeCount() - 1;
  for (auto& e : elements_) {
    const std::size_t aux = e->auxiliaryCount();
    if (aux > 0) {
      e->assignAuxiliary(next);
      next += aux;
    }
  }
}

double Circuit::nextBreakpoint(double t) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& e : elements_) {
    const double b = e->nextBreakpoint(t);
    if (b < best) best = b;
  }
  return best;
}

}  // namespace nh::spice
