#pragma once
/// \file circuit.hpp
/// Netlist container and the element stamping interface of the modified
/// nodal analysis (MNA) engine. Node 0 is ground. Every non-ground node
/// contributes one unknown (its voltage); elements may request auxiliary
/// unknowns (branch currents, e.g. for voltage sources).

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/matrix.hpp"

namespace nh::util {
class TripletBuilder;  // util/sparse.hpp
}

namespace nh::spice {

/// Opaque node identifier (0 = ground).
using NodeId = std::size_t;

/// Everything an element needs to stamp its Newton-linearised companion
/// model into the MNA system G*x = rhs at the candidate solution \p x.
/// Exactly one of the two matrix targets is set: \p jacobian for the dense
/// path (small netlists), \p triplets for the sparse path (large netlists,
/// where the analyses assemble a CSR through a cached SparsityPattern and
/// factor it with SparseLu). Elements only stamp through the methods below,
/// so they are target-agnostic; because every element issues the same stamp
/// sequence each rebuild, the triplet stream satisfies the
/// SparsityPattern::assemble refill contract.
struct StampContext {
  nh::util::Matrix* jacobian = nullptr;        ///< Dense target (or null).
  nh::util::TripletBuilder* triplets = nullptr;///< Sparse target (or null).
  nh::util::Vector& rhs;        ///< Right-hand side.
  const nh::util::Vector& x;    ///< Candidate solution this Newton iteration.
  const nh::util::Vector& xPrev;///< Accepted solution of the previous timestep.
  double time = 0.0;            ///< Absolute time of the step being solved [s].
  double dt = 0.0;              ///< Timestep [s]; 0 for DC analyses.
  bool transient = false;       ///< False during DC operating-point solves.
  /// False when the analysis re-uses a frozen Jacobian (linear circuit with
  /// an unchanged timestep): matrix stamps become no-ops and only the
  /// right-hand side is rebuilt.
  bool stampMatrix = true;

  /// Row/column of node \p n, or npos for ground.
  static constexpr std::size_t kGround = static_cast<std::size_t>(-1);
  std::size_t indexOf(NodeId n) const { return n == 0 ? kGround : n - 1; }

  /// Voltage of node \p n in the candidate solution (0 for ground).
  double voltage(NodeId n) const { return n == 0 ? 0.0 : x[n - 1]; }
  /// Voltage of node \p n in the previous accepted solution.
  double prevVoltage(NodeId n) const { return n == 0 ? 0.0 : xPrev[n - 1]; }

  /// Stamp a conductance \p g between nodes \p a and \p b.
  void stampConductance(NodeId a, NodeId b, double g);
  /// Stamp a current \p i flowing out of node \p a into node \p b
  /// (adds to the RHS as an injection).
  void stampCurrentSource(NodeId a, NodeId b, double i);
  /// Stamp an entry for an auxiliary (branch-current) unknown.
  void stampJacobian(std::size_t row, std::size_t col, double value);
  void addRhs(std::size_t row, double value);
};

/// Context passed when a timestep has been accepted; stateful devices
/// (capacitors, memristors) integrate their state here.
struct AcceptContext {
  const nh::util::Vector& x;  ///< Accepted solution.
  double time = 0.0;          ///< End time of the accepted step [s].
  double dt = 0.0;            ///< Length of the accepted step [s].
  double voltage(NodeId n) const { return n == 0 ? 0.0 : x[n - 1]; }
};

/// Base class for all circuit elements.
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}
  virtual ~Element() = default;
  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  const std::string& name() const { return name_; }

  /// Number of auxiliary MNA unknowns this element needs (0 for most).
  virtual std::size_t auxiliaryCount() const { return 0; }
  /// Called once by the circuit with the index of the first auxiliary
  /// unknown assigned to this element.
  virtual void assignAuxiliary(std::size_t firstIndex) { aux_ = firstIndex; }

  /// Stamp the (linearised) element equations.
  virtual void stamp(StampContext& ctx) const = 0;
  /// Commit internal state after an accepted step. Default: stateless.
  virtual void acceptStep(const AcceptContext&) {}
  /// True when the element's I-V relation is nonlinear (forces Newton
  /// iteration instead of a single linear solve).
  virtual bool isNonlinear() const { return false; }
  /// Earliest waveform breakpoint after time \p t (+inf if none).
  virtual double nextBreakpoint(double t) const;

 protected:
  std::size_t aux_ = static_cast<std::size_t>(-1);

 private:
  std::string name_;
};

/// Netlist: a set of named nodes and the elements connecting them.
class Circuit {
 public:
  Circuit();

  /// Ground node (always id 0, name "0").
  NodeId ground() const { return 0; }
  /// Get-or-create a named node.
  NodeId node(const std::string& name);
  /// Lookup an existing node; throws std::out_of_range when absent.
  NodeId findNode(const std::string& name) const;
  /// Name of node \p id.
  const std::string& nodeName(NodeId id) const { return nodeNames_.at(id); }
  /// Total node count including ground.
  std::size_t nodeCount() const { return nodeNames_.size(); }

  /// Add an element; returns a non-owning pointer for probing.
  /// Must not be called after analyses started using the circuit.
  template <typename T, typename... Args>
  T* emplace(Args&&... args) {
    auto elem = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = elem.get();
    addElement(std::move(elem));
    return raw;
  }
  void addElement(std::unique_ptr<Element> element);

  const std::vector<std::unique_ptr<Element>>& elements() const { return elements_; }

  /// Number of MNA unknowns: (nodeCount-1) node voltages + auxiliaries.
  std::size_t unknownCount() const { return nodeCount() - 1 + auxCount_; }
  /// Assign auxiliary unknown indices. Called by the analyses before any
  /// stamping; idempotent, and safe to call again after netlist edits.
  void finalize();
  /// True when any element is nonlinear.
  bool hasNonlinear() const { return nonlinear_; }
  /// Earliest element breakpoint after \p t.
  double nextBreakpoint(double t) const;

  /// Minimum conductance from every node to ground, added by the analyses
  /// for numerical robustness (keeps the Jacobian non-singular when nodes
  /// would otherwise float). Default 1e-12 S.
  double gmin() const { return gmin_; }
  void setGmin(double g) { gmin_ = g; }

 private:
  std::vector<std::string> nodeNames_;
  std::map<std::string, NodeId> nodeIndex_;
  std::vector<std::unique_ptr<Element>> elements_;
  std::size_t auxCount_ = 0;
  bool nonlinear_ = false;
  double gmin_ = 1e-12;
};

}  // namespace nh::spice
