#include "spice/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/cancellation.hpp"
#include "util/faultinject.hpp"
#include "util/linsolve.hpp"
#include "util/log.hpp"
#include "util/sparse.hpp"

namespace nh::spice {

namespace {

using nh::util::Matrix;
using nh::util::Vector;

/// Newton solver with persistent storage and LU reuse. One engine lives for
/// a whole analysis (every timestep of a transient), so the Jacobian, the
/// right-hand side, and the factorisation survive between solves:
///  * linear circuits re-factor only when dt (or the analysis kind) changes;
///    with a frozen Jacobian the matrix is not even re-stamped -- elements
///    only rebuild the rhs (time-dependent sources);
///  * nonlinear circuits run chord-Newton on the true KCL residual
///    r = b(x) - J(x) x, which converges to the same solution for any
///    (nonsingular) frozen factorisation; the stale factorisation gets the
///    first iteration of a solve, every later iteration re-factors, and an
///    adaptive probe skips even that shot while it keeps missing.
class NewtonEngine {
 public:
  SolveResult solve(Circuit& circuit, double time, double dt, bool transient,
                    const Vector& xPrev, const NewtonOptions& options,
                    const Vector& initialGuess) {
    const std::size_t n = circuit.unknownCount();
    const std::size_t nodeUnknowns = circuit.nodeCount() - 1;

    SolveResult result;
    result.x = initialGuess.size() == n ? initialGuess : Vector(n, 0.0);

    // Storage-mode selection. Crossbar netlists grow past the point where a
    // dense n x n Jacobian is even allocatable (1024x1024 arrays -> n ~ 10^6),
    // so large systems stamp triplets and factor sparsely; small systems keep
    // the seed's dense path bit-for-bit.
    const bool wantSparse = n >= options.sparseMinUnknowns;
    if (n != sysN_ || wantSparse != useSparse_) {
      sysN_ = n;
      useSparse_ = wantSparse;
      rhs_.assign(n, 0.0);
      luValid_ = false;
      if (useSparse_) {
        jacobian_.resize(0, 0, 0.0);  // release the dense storage
        triplets_ = nh::util::TripletBuilder(n, n);
        patternValid_ = false;
      } else {
        jacobian_.resize(n, n, 0.0);
      }
    }
    const bool frozenLuUsable = options.reuseFactorization && luValid_ &&
                                dt == luDt_ && transient == luTransient_;

    if (!circuit.hasNonlinear()) {
      return solveLinear(circuit, time, dt, transient, xPrev, frozenLuUsable,
                         std::move(result), nodeUnknowns);
    }
    // Below the size threshold the factorisation is cheaper than the extra
    // chord iterations: run the classic full Newton.
    NewtonOptions effective = options;
    if (n < options.reuseMinUnknowns) effective.reuseFactorization = false;
    // Adaptive chord: when the last solve's stale-LU shot missed, the
    // Jacobian is drifting too fast between steps -- skip the wasted stale
    // iteration and re-factor upfront, re-probing the chord every few steps
    // in case the circuit has settled.
    bool tryStale = frozenLuUsable && effective.reuseFactorization;
    if (tryStale && !chordTrusted_) {
      if (++chordProbeCountdown_ >= kChordProbeInterval) {
        chordProbeCountdown_ = 0;  // probe the stale LU this step
      } else {
        tryStale = false;
      }
    }
    return solveNewton(circuit, time, dt, transient, xPrev, effective, tryStale,
                       std::move(result), nodeUnknowns);
  }

 private:
  SolveResult solveLinear(Circuit& circuit, double time, double dt,
                          bool transient, const Vector& xPrev, bool reuseLu,
                          SolveResult result, std::size_t nodeUnknowns) {
    const std::size_t n = sysN_;
    std::fill(rhs_.begin(), rhs_.end(), 0.0);
    if (!reuseLu) clearMatrixTarget();
    // With a frozen LU the conductance stamps are no-ops (stampMatrix
    // false): only the rhs is rebuilt, and the previous factorisation is
    // solved against it -- bit-identical to re-stamping and re-factoring
    // the identical matrix.
    StampContext ctx{useSparse_ ? nullptr : &jacobian_,
                     useSparse_ ? &triplets_ : nullptr,
                     rhs_,      result.x, xPrev,
                     time,      dt,       transient, /*stampMatrix=*/!reuseLu};
    for (const auto& e : circuit.elements()) e->stamp(ctx);
    if (!reuseLu) {
      // gmin from every node to ground keeps otherwise-floating nodes defined.
      stampGmin(circuit.gmin(), nodeUnknowns);
      if (useSparse_) assembleSparse();
      if (!factorSystem()) {
        luValid_ = false;
        result.converged = false;
        return result;
      }
      luValid_ = true;
      luDt_ = dt;
      luTransient_ = transient;
    }
    // solveInPlace into the persistent scratch: the same substitution
    // sequence as solve(), without the per-step allocation.
    xNew_.assign(rhs_.begin(), rhs_.end());
    solveSystem(xNew_);
    double maxUpdate = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = xNew_[i] - result.x[i];
      result.x[i] += delta;
      if (i < nodeUnknowns) maxUpdate = std::max(maxUpdate, std::fabs(delta));
    }
    result.iterations = 1;
    result.maxUpdate = maxUpdate;
    result.converged = true;
    return result;
  }

  SolveResult solveNewton(Circuit& circuit, double time, double dt,
                          bool transient, const Vector& xPrev,
                          const NewtonOptions& options, bool frozenLuUsable,
                          SolveResult result, std::size_t nodeUnknowns) {
    const std::size_t n = sysN_;
    bool refactor = !frozenLuUsable;
    bool refactoredThisSolve = !frozenLuUsable;

    // Fault site: tests force a non-converged Newton solve to exercise the
    // timestep-shrink and per-point isolation paths above this loop.
    if (nh::util::faultinject::shouldFire("spice.newton")) {
      result.converged = false;
      return result;
    }

    for (std::size_t iter = 0; iter < options.maxIterations; ++iter) {
      nh::util::checkCancellation("newton iteration");
      clearMatrixTarget();
      std::fill(rhs_.begin(), rhs_.end(), 0.0);

      StampContext ctx{useSparse_ ? nullptr : &jacobian_,
                       useSparse_ ? &triplets_ : nullptr,
                       rhs_, result.x, xPrev, time, dt, transient};
      for (const auto& e : circuit.elements()) e->stamp(ctx);
      // gmin from every node to ground keeps otherwise-floating nodes defined.
      stampGmin(circuit.gmin(), nodeUnknowns);
      // The chord residual needs J(x) even on iterations that keep a stale
      // factorisation, so the CSR is refreshed every pass.
      if (useSparse_) assembleSparse();

      double maxUpdate = 0.0;
      if (options.reuseFactorization) {
        // Chord-Newton: delta = LU^{-1} (b - J x) with a possibly stale LU.
        // The companion-model linearisation makes b - J x the true KCL
        // residual at x, so any nonsingular LU yields the same fixed point.
        if (refactor) {
          if (!factorSystem()) {
            luValid_ = false;
            result.converged = false;
            return result;
          }
          luValid_ = true;
          luDt_ = dt;
          luTransient_ = transient;
          refactor = false;
          refactoredThisSolve = true;
        }
        delta_.resize(n);
        if (useSparse_) {
          aCsr_.multiplyInto(result.x, delta_);  // delta = J x ...
          for (std::size_t r = 0; r < n; ++r) delta_[r] = rhs_[r] - delta_[r];
        } else {
          const double* j = jacobian_.data();
          for (std::size_t r = 0; r < n; ++r) {
            double acc = rhs_[r];
            const double* row = j + r * n;
            for (std::size_t c = 0; c < n; ++c) acc -= row[c] * result.x[c];
            delta_[r] = acc;
          }
        }
        solveSystem(delta_);
        for (std::size_t i = 0; i < n; ++i) {
          double delta = delta_[i];
          if (i < nodeUnknowns) {
            delta = std::clamp(delta, -options.maxStepVoltage,
                               options.maxStepVoltage);
            maxUpdate = std::max(maxUpdate, std::fabs(delta));
          }
          result.x[i] += delta;
        }
      } else {
        // Classic full Newton (seed behaviour): factor every iteration and
        // solve the companion system for the next iterate directly. The
        // persistent lu_/xNew_ replace the seed's per-iteration allocations;
        // refactor()+solveInPlace() run the identical elimination and
        // substitution sequences, so the results are bit-identical.
        if (!factorSystem()) {
          luValid_ = false;
          result.converged = false;
          return result;
        }
        luValid_ = true;
        luDt_ = dt;
        luTransient_ = transient;
        xNew_.assign(rhs_.begin(), rhs_.end());
        solveSystem(xNew_);
        // Voltage limiting: clamp node-voltage updates to keep the
        // exponential devices inside a trust region (standard SPICE
        // practice).
        for (std::size_t i = 0; i < n; ++i) {
          double delta = xNew_[i] - result.x[i];
          if (i < nodeUnknowns) {
            delta = std::clamp(delta, -options.maxStepVoltage,
                               options.maxStepVoltage);
            maxUpdate = std::max(maxUpdate, std::fabs(delta));
          }
          result.x[i] += delta;
        }
      }
      result.iterations = iter + 1;
      result.maxUpdate = maxUpdate;
      // NaN/Inf guard: a poisoned update can never meet the tolerance, so
      // iterating to the cap just burns factorisations -- fail fast and let
      // the caller (timestep control, per-point isolation) recover.
      if (!std::isfinite(maxUpdate)) {
        result.converged = false;
        if (frozenLuUsable) chordTrusted_ = false;
        return result;
      }
      double tolerance = options.absTol;
      for (std::size_t i = 0; i < nodeUnknowns; ++i) {
        tolerance = std::max(
            tolerance, options.absTol + options.relTol * std::fabs(result.x[i]));
      }
      if (maxUpdate < tolerance) {
        result.converged = true;
        // Re-grade the chord only when a stale shot was actually taken:
        // solves that started with a refactor (first step, changed dt,
        // skipped probe) say nothing about the frozen LU's accuracy.
        if (options.reuseFactorization && frozenLuUsable) {
          chordTrusted_ = !refactoredThisSolve;
        }
        return result;
      }
      // Safeguard: the stale factorisation only ever gets the first
      // iteration of a solve. When the frozen Jacobian is still accurate
      // (small state drift between timesteps) that shot converges and the
      // whole step costs zero factorisations; otherwise every remaining
      // iteration re-factors -- exactly full Newton plus at most one cheap
      // O(n^2) probe. Iterating further on a stale LU would trade one
      // O(n^3) factorisation for many linearly-convergent iterations and
      // lose whenever element stamping is non-trivial.
      refactor = true;
    }
    result.converged = false;
    if (frozenLuUsable) chordTrusted_ = false;
    return result;
  }

  /// Zero the active matrix target before a (re-)stamp.
  void clearMatrixTarget() {
    if (useSparse_) {
      triplets_.clear();
    } else {
      jacobian_.fill(0.0);
    }
  }

  /// gmin from every node to ground, appended after the element stamps so
  /// the triplet sequence stays fixed per netlist (pattern-refill contract).
  void stampGmin(double gmin, std::size_t nodeUnknowns) {
    if (useSparse_) {
      for (std::size_t i = 0; i < nodeUnknowns; ++i) triplets_.add(i, i, gmin);
    } else {
      for (std::size_t i = 0; i < nodeUnknowns; ++i) jacobian_(i, i) += gmin;
    }
  }

  /// Rebuild the CSR from the freshly-stamped triplets. A fixed netlist
  /// issues the same stamp sequence every pass, so after the first symbolic
  /// analysis this is an O(nnz) value refill; a changed entry count (edited
  /// netlist between solves) re-runs the symbolic phase.
  void assembleSparse() {
    if (!patternValid_ || pattern_.entryCount() != triplets_.entryCount()) {
      pattern_ = nh::util::SparsityPattern::fromTriplets(triplets_);
      patternValid_ = true;
    }
    pattern_.assemble(triplets_, aCsr_);
  }

  /// Factor the freshly-assembled system with the active backend.
  bool factorSystem() {
    return useSparse_ ? sparseLu_.refactor(aCsr_) : lu_.refactor(jacobian_);
  }

  /// Substitute against the last successful factorisation.
  void solveSystem(Vector& v) {
    if (useSparse_) {
      sparseLu_.solveInPlace(v);
    } else {
      lu_.solveInPlace(v);
    }
  }

  /// Steps between stale-LU probes once the chord has been distrusted.
  static constexpr std::size_t kChordProbeInterval = 8;

  Matrix jacobian_;
  Vector rhs_;
  Vector delta_;
  Vector xNew_;
  nh::util::LuFactorization lu_;
  // Sparse backend (n >= NewtonOptions::sparseMinUnknowns): elements stamp a
  // triplet stream, a cached SparsityPattern refills the CSR without
  // allocation, and the Gilbert-Peierls SparseLu replaces the dense
  // factorisation. The Newton/chord logic above is shared between backends.
  bool useSparse_ = false;
  std::size_t sysN_ = 0;
  nh::util::TripletBuilder triplets_{0, 0};
  nh::util::SparsityPattern pattern_;
  bool patternValid_ = false;
  nh::util::SparseMatrix aCsr_;
  nh::util::SparseLu sparseLu_;
  bool luValid_ = false;
  double luDt_ = 0.0;
  bool luTransient_ = false;
  bool chordTrusted_ = true;   ///< Last stale-LU shot converged unaided.
  std::size_t chordProbeCountdown_ = 0;
};

/// One Newton solve of the MNA system at a fixed (time, dt) without
/// cross-call reuse (DC operating points, one-shot callers).
SolveResult newtonSolve(Circuit& circuit, double time, double dt, bool transient,
                        const Vector& xPrev, const NewtonOptions& options,
                        const Vector& initialGuess) {
  NewtonEngine engine;
  return engine.solve(circuit, time, dt, transient, xPrev, options, initialGuess);
}

}  // namespace

SolveResult solveDc(Circuit& circuit, const NewtonOptions& options,
                    const Vector& initialGuess) {
  circuit.finalize();
  const Vector xPrev(circuit.unknownCount(), 0.0);
  return newtonSolve(circuit, /*time=*/0.0, /*dt=*/0.0, /*transient=*/false,
                     xPrev, options, initialGuess);
}

std::size_t TransientResult::seriesIndex(const std::string& label) const {
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) return i;
  }
  throw std::out_of_range("TransientResult: no series '" + label + "'");
}

const std::vector<double>& TransientResult::seriesFor(const std::string& label) const {
  return series[seriesIndex(label)];
}

TransientResult runTransient(Circuit& circuit, const TransientOptions& options,
                             const std::vector<Probe>& probes) {
  if (!(options.tStop > 0.0)) {
    throw std::invalid_argument("runTransient: tStop must be > 0");
  }
  circuit.finalize();

  TransientResult result;
  result.labels.reserve(probes.size());
  for (const auto& p : probes) result.labels.push_back(p.label);
  result.series.assign(probes.size(), {});

  // Initial condition: DC operating point at t = 0.
  SolveResult op = solveDc(circuit, options.newton);
  if (!op.converged) {
    result.failureReason = "initial DC operating point did not converge";
    return result;
  }
  Vector x = op.x;

  // One engine for the whole transient: the Jacobian storage and its LU
  // factorisation persist across timesteps (see NewtonEngine).
  NewtonEngine engine;

  const auto record = [&](double t, const Vector& sol) {
    result.time.push_back(t);
    for (std::size_t p = 0; p < probes.size(); ++p) {
      result.series[p].push_back(probes[p].extract(sol, t));
    }
  };
  record(0.0, x);

  double t = 0.0;
  double dt = std::min(options.dtInitial, options.dtMax);
  while (t < options.tStop - 1e-18) {
    nh::util::checkCancellation("transient step");
    double step = std::min(dt, options.tStop - t);
    if (options.alignToBreakpoints) {
      const double bp = circuit.nextBreakpoint(t + 1e-18);
      if (bp > t && bp < t + step) step = bp - t;
    }

    const SolveResult sr = engine.solve(circuit, t + step, step,
                                        /*transient=*/true, x, options.newton, x);
    if (!sr.converged) {
      // Convergence failure: shrink the step and retry.
      dt *= 0.25;
      if (dt < options.dtMin) {
        result.failureReason = "timestep underflow at t=" + std::to_string(t);
        return result;
      }
      continue;
    }

    t += step;
    x = sr.x;
    const AcceptContext acc{x, t, step};
    for (const auto& e : circuit.elements()) e->acceptStep(acc);
    if (options.onStepAccepted) options.onStepAccepted(x, t, step);
    record(t, x);

    // Gentle step growth after easy Newton solves.
    if (sr.iterations <= 5) {
      dt = std::min(dt * 1.5, options.dtMax);
    } else if (sr.iterations > 20) {
      dt = std::max(dt * 0.5, options.dtMin);
    }
  }
  result.completed = true;
  return result;
}

Probe probeNodeVoltage(const Circuit& circuit, const std::string& nodeName) {
  const NodeId id = circuit.findNode(nodeName);
  return Probe{"v(" + nodeName + ")", [id](const Vector& x, double) {
                 return id == 0 ? 0.0 : x[id - 1];
               }};
}

Probe probeDifferentialVoltage(const Circuit& circuit, const std::string& nodeA,
                               const std::string& nodeB) {
  const NodeId a = circuit.findNode(nodeA);
  const NodeId b = circuit.findNode(nodeB);
  return Probe{"v(" + nodeA + "," + nodeB + ")", [a, b](const Vector& x, double) {
                 const double va = a == 0 ? 0.0 : x[a - 1];
                 const double vb = b == 0 ? 0.0 : x[b - 1];
                 return va - vb;
               }};
}

}  // namespace nh::spice
