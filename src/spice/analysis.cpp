#include "spice/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/linsolve.hpp"
#include "util/log.hpp"

namespace nh::spice {

namespace {

using nh::util::Matrix;
using nh::util::Vector;

/// One Newton solve of the MNA system at a fixed (time, dt).
SolveResult newtonSolve(Circuit& circuit, double time, double dt, bool transient,
                        const Vector& xPrev, const NewtonOptions& options,
                        const Vector& initialGuess) {
  const std::size_t n = circuit.unknownCount();
  const std::size_t nodeUnknowns = circuit.nodeCount() - 1;

  SolveResult result;
  result.x = initialGuess.size() == n ? initialGuess : Vector(n, 0.0);

  Matrix jacobian(n, n);
  Vector rhs(n);

  const std::size_t maxIter = circuit.hasNonlinear() ? options.maxIterations : 1;
  for (std::size_t iter = 0; iter < maxIter; ++iter) {
    jacobian.fill(0.0);
    std::fill(rhs.begin(), rhs.end(), 0.0);

    StampContext ctx{jacobian, rhs, result.x, xPrev, time, dt, transient};
    for (const auto& e : circuit.elements()) e->stamp(ctx);
    // gmin from every node to ground keeps otherwise-floating nodes defined.
    for (std::size_t i = 0; i < nodeUnknowns; ++i) jacobian(i, i) += circuit.gmin();

    auto lu = nh::util::LuFactorization::factor(jacobian);
    if (!lu) {
      result.converged = false;
      return result;
    }
    Vector xNew = lu->solve(rhs);

    // Voltage limiting: clamp node-voltage updates to keep the exponential
    // devices inside a trust region (standard SPICE practice). Linear
    // circuits take the exact solve -- limiting would truncate it.
    double maxUpdate = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double delta = xNew[i] - result.x[i];
      if (circuit.hasNonlinear() && i < nodeUnknowns) {
        delta = std::clamp(delta, -options.maxStepVoltage, options.maxStepVoltage);
      }
      result.x[i] += delta;
      if (i < nodeUnknowns) maxUpdate = std::max(maxUpdate, std::fabs(delta));
    }
    result.iterations = iter + 1;
    result.maxUpdate = maxUpdate;

    if (!circuit.hasNonlinear()) {
      result.converged = true;
      return result;
    }
    double tolerance = options.absTol;
    for (std::size_t i = 0; i < nodeUnknowns; ++i) {
      tolerance = std::max(tolerance,
                           options.absTol + options.relTol * std::fabs(result.x[i]));
    }
    if (maxUpdate < tolerance) {
      result.converged = true;
      return result;
    }
  }
  result.converged = !circuit.hasNonlinear();
  return result;
}

}  // namespace

SolveResult solveDc(Circuit& circuit, const NewtonOptions& options,
                    const Vector& initialGuess) {
  circuit.finalize();
  const Vector xPrev(circuit.unknownCount(), 0.0);
  return newtonSolve(circuit, /*time=*/0.0, /*dt=*/0.0, /*transient=*/false,
                     xPrev, options, initialGuess);
}

std::size_t TransientResult::seriesIndex(const std::string& label) const {
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) return i;
  }
  throw std::out_of_range("TransientResult: no series '" + label + "'");
}

const std::vector<double>& TransientResult::seriesFor(const std::string& label) const {
  return series[seriesIndex(label)];
}

TransientResult runTransient(Circuit& circuit, const TransientOptions& options,
                             const std::vector<Probe>& probes) {
  if (!(options.tStop > 0.0)) {
    throw std::invalid_argument("runTransient: tStop must be > 0");
  }
  circuit.finalize();

  TransientResult result;
  result.labels.reserve(probes.size());
  for (const auto& p : probes) result.labels.push_back(p.label);
  result.series.assign(probes.size(), {});

  // Initial condition: DC operating point at t = 0.
  SolveResult op = solveDc(circuit, options.newton);
  if (!op.converged) {
    result.failureReason = "initial DC operating point did not converge";
    return result;
  }
  Vector x = op.x;

  const auto record = [&](double t, const Vector& sol) {
    result.time.push_back(t);
    for (std::size_t p = 0; p < probes.size(); ++p) {
      result.series[p].push_back(probes[p].extract(sol, t));
    }
  };
  record(0.0, x);

  double t = 0.0;
  double dt = std::min(options.dtInitial, options.dtMax);
  while (t < options.tStop - 1e-18) {
    double step = std::min(dt, options.tStop - t);
    if (options.alignToBreakpoints) {
      const double bp = circuit.nextBreakpoint(t + 1e-18);
      if (bp > t && bp < t + step) step = bp - t;
    }

    const SolveResult sr = newtonSolve(circuit, t + step, step, /*transient=*/true,
                                       x, options.newton, x);
    if (!sr.converged) {
      // Convergence failure: shrink the step and retry.
      dt *= 0.25;
      if (dt < options.dtMin) {
        result.failureReason = "timestep underflow at t=" + std::to_string(t);
        return result;
      }
      continue;
    }

    t += step;
    x = sr.x;
    const AcceptContext acc{x, t, step};
    for (const auto& e : circuit.elements()) e->acceptStep(acc);
    if (options.onStepAccepted) options.onStepAccepted(x, t, step);
    record(t, x);

    // Gentle step growth after easy Newton solves.
    if (sr.iterations <= 5) {
      dt = std::min(dt * 1.5, options.dtMax);
    } else if (sr.iterations > 20) {
      dt = std::max(dt * 0.5, options.dtMin);
    }
  }
  result.completed = true;
  return result;
}

Probe probeNodeVoltage(const Circuit& circuit, const std::string& nodeName) {
  const NodeId id = circuit.findNode(nodeName);
  return Probe{"v(" + nodeName + ")", [id](const Vector& x, double) {
                 return id == 0 ? 0.0 : x[id - 1];
               }};
}

Probe probeDifferentialVoltage(const Circuit& circuit, const std::string& nodeA,
                               const std::string& nodeB) {
  const NodeId a = circuit.findNode(nodeA);
  const NodeId b = circuit.findNode(nodeB);
  return Probe{"v(" + nodeA + "," + nodeB + ")", [a, b](const Vector& x, double) {
                 const double va = a == 0 ? 0.0 : x[a - 1];
                 const double vb = b == 0 ? 0.0 : x[b - 1];
                 return va - vb;
               }};
}

}  // namespace nh::spice
