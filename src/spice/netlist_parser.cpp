#include "spice/netlist_parser.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

#include "spice/elements.hpp"
#include "util/stringutil.hpp"

namespace nh::spice {

using nh::util::iequals;
using nh::util::split;
using nh::util::splitWhitespace;
using nh::util::toLower;
using nh::util::trim;

double parseSpiceValue(const std::string& token) {
  const std::string t = toLower(trim(token));
  if (t.empty()) throw std::invalid_argument("parseSpiceValue: empty value");

  // Split the numeric prefix from the suffix.
  std::size_t pos = 0;
  while (pos < t.size() &&
         (std::isdigit(static_cast<unsigned char>(t[pos])) || t[pos] == '.' ||
          t[pos] == '+' || t[pos] == '-' ||
          ((t[pos] == 'e') && pos + 1 < t.size() &&
           (std::isdigit(static_cast<unsigned char>(t[pos + 1])) ||
            t[pos + 1] == '+' || t[pos + 1] == '-')))) {
    if (t[pos] == 'e') ++pos;  // consume exponent marker, then sign/digits
    ++pos;
  }
  const std::string number = t.substr(0, pos);
  const std::string suffix = t.substr(pos);

  double value = 0.0;
  try {
    std::size_t used = 0;
    value = std::stod(number, &used);
    if (used != number.size()) throw std::invalid_argument("trailing");
  } catch (const std::exception&) {
    throw std::invalid_argument("parseSpiceValue: cannot parse '" + token + "'");
  }

  if (suffix.empty()) return value;
  if (suffix == "f") return value * 1e-15;
  if (suffix == "p") return value * 1e-12;
  if (suffix == "n") return value * 1e-9;
  if (suffix == "u") return value * 1e-6;
  if (suffix == "m") return value * 1e-3;
  if (suffix == "k") return value * 1e3;
  if (suffix == "meg") return value * 1e6;
  if (suffix == "g") return value * 1e9;
  if (suffix == "t") return value * 1e12;
  throw std::invalid_argument("parseSpiceValue: unknown suffix '" + suffix +
                              "' in '" + token + "'");
}

namespace {

[[noreturn]] void fail(std::size_t lineNo, const std::string& line,
                       const std::string& what) {
  throw std::runtime_error("netlist line " + std::to_string(lineNo) + ": " +
                           what + " ('" + line + "')");
}

NodeId nodeFor(Circuit& circuit, const std::string& name) {
  if (name == "0" || iequals(name, "gnd")) return circuit.ground();
  return circuit.node(name);
}

/// Extract the argument list of "FN(a b c)" or "FN(a, b, c)".
std::vector<double> functionArgs(const std::string& text, std::size_t lineNo,
                                 const std::string& line) {
  const auto open = text.find('(');
  const auto close = text.rfind(')');
  if (open == std::string::npos || close == std::string::npos || close < open) {
    fail(lineNo, line, "malformed source function '" + text + "'");
  }
  std::string inner = text.substr(open + 1, close - open - 1);
  for (char& c : inner) {
    if (c == ',') c = ' ';
  }
  std::vector<double> args;
  for (const auto& tok : splitWhitespace(inner)) args.push_back(parseSpiceValue(tok));
  return args;
}

std::unique_ptr<Waveform> parseSourceWaveform(const std::vector<std::string>& fields,
                                              std::size_t lineNo,
                                              const std::string& line) {
  // fields[3..] describe the waveform. Accept: "DC <v>", bare "<v>",
  // "PULSE(...)", "PWL(...)" -- the function text may be split across
  // whitespace, so re-join first.
  std::string spec;
  for (std::size_t i = 3; i < fields.size(); ++i) {
    if (i > 3) spec += " ";
    spec += fields[i];
  }
  const std::string lowered = toLower(trim(spec));
  if (lowered.empty()) fail(lineNo, line, "missing source value");

  if (lowered.rfind("pulse", 0) == 0) {
    const auto a = functionArgs(spec, lineNo, line);
    if (a.size() < 7 || a.size() > 8) {
      fail(lineNo, line, "PULSE needs v0 v1 delay rise fall width period [count]");
    }
    PulseSpec p;
    p.base = a[0];
    p.amplitude = a[1];
    p.delay = a[2];
    p.rise = a[3];
    p.fall = a[4];
    p.width = a[5];
    p.period = a[6];
    p.count = a.size() == 8 ? static_cast<long long>(a[7]) : -1;
    return std::make_unique<PulseWaveform>(p);
  }
  if (lowered.rfind("pwl", 0) == 0) {
    const auto a = functionArgs(spec, lineNo, line);
    if (a.size() < 2 || a.size() % 2 != 0) {
      fail(lineNo, line, "PWL needs pairs t0 v0 t1 v1 ...");
    }
    std::vector<double> times, values;
    for (std::size_t i = 0; i < a.size(); i += 2) {
      times.push_back(a[i]);
      values.push_back(a[i + 1]);
    }
    return std::make_unique<PwlWaveform>(std::move(times), std::move(values));
  }
  // "DC <v>" or a bare value.
  const auto tokens = splitWhitespace(lowered);
  if (tokens.size() == 2 && tokens[0] == "dc") {
    return std::make_unique<DcWaveform>(parseSpiceValue(tokens[1]));
  }
  if (tokens.size() == 1) {
    return std::make_unique<DcWaveform>(parseSpiceValue(tokens[0]));
  }
  fail(lineNo, line, "unrecognised source specification '" + spec + "'");
}

}  // namespace

NetlistSummary parseNetlist(Circuit& circuit, const std::string& text) {
  NetlistSummary summary;
  std::istringstream in(text);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    // Comments: whole-line '*' (SPICE style) or trailing ';'.
    const auto semi = line.find(';');
    if (semi != std::string::npos) line.erase(semi);
    const std::string t = trim(line);
    if (t.empty() || t[0] == '*') continue;
    if (t[0] == '.') {
      if (iequals(t, ".end")) break;
      fail(lineNo, line, "unsupported directive '" + t + "'");
    }

    const auto fields = splitWhitespace(t);
    if (fields.size() < 3) fail(lineNo, line, "too few fields");
    const std::string& name = fields[0];
    const char kind = static_cast<char>(std::tolower(static_cast<unsigned char>(name[0])));

    switch (kind) {
      case 'r': {
        if (fields.size() != 4) fail(lineNo, line, "R needs: name n+ n- value");
        circuit.emplace<Resistor>(name, nodeFor(circuit, fields[1]),
                                  nodeFor(circuit, fields[2]),
                                  parseSpiceValue(fields[3]));
        ++summary.resistors;
        break;
      }
      case 'c': {
        if (fields.size() != 4) fail(lineNo, line, "C needs: name n+ n- value");
        circuit.emplace<Capacitor>(name, nodeFor(circuit, fields[1]),
                                   nodeFor(circuit, fields[2]),
                                   parseSpiceValue(fields[3]));
        ++summary.capacitors;
        break;
      }
      case 'v': {
        if (fields.size() < 4) fail(lineNo, line, "V needs: name n+ n- spec");
        circuit.emplace<VoltageSource>(name, nodeFor(circuit, fields[1]),
                                       nodeFor(circuit, fields[2]),
                                       parseSourceWaveform(fields, lineNo, line));
        ++summary.voltageSources;
        break;
      }
      case 'i': {
        if (fields.size() < 4) fail(lineNo, line, "I needs: name n+ n- spec");
        circuit.emplace<CurrentSource>(name, nodeFor(circuit, fields[1]),
                                       nodeFor(circuit, fields[2]),
                                       parseSourceWaveform(fields, lineNo, line));
        ++summary.currentSources;
        break;
      }
      case 'd': {
        if (fields.size() < 3 || fields.size() > 5) {
          fail(lineNo, line, "D needs: name anode cathode [Is] [n]");
        }
        const double is = fields.size() >= 4 ? parseSpiceValue(fields[3]) : 1e-14;
        const double n = fields.size() == 5 ? parseSpiceValue(fields[4]) : 1.0;
        circuit.emplace<Diode>(name, nodeFor(circuit, fields[1]),
                               nodeFor(circuit, fields[2]), is, n);
        ++summary.diodes;
        break;
      }
      default:
        fail(lineNo, line, std::string("unsupported element kind '") + name[0] + "'");
    }
  }
  return summary;
}

}  // namespace nh::spice
