#pragma once
/// \file grid.hpp
/// Uniform structured voxel grid for the finite-volume discretisation of the
/// crossbar. Cartesian, cubic voxels of edge length h; material id per voxel.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fem/materials.hpp"

namespace nh::fem {

/// Integer voxel coordinates.
struct Voxel {
  std::size_t i = 0;  ///< x index.
  std::size_t j = 0;  ///< y index.
  std::size_t k = 0;  ///< z index (0 = substrate bottom).
  bool operator==(const Voxel&) const = default;
};

/// Uniform voxel grid with per-voxel material ids.
class VoxelGrid {
 public:
  VoxelGrid() = default;
  /// Create an nx x ny x nz grid of voxels with edge \p h [m], filled with
  /// \p fill material.
  VoxelGrid(std::size_t nx, std::size_t ny, std::size_t nz, double h,
            Material fill = Material::SiO2);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  double voxelSize() const { return h_; }
  std::size_t voxelCount() const { return nx_ * ny_ * nz_; }

  /// Linear index of voxel (i, j, k); x fastest, z slowest.
  std::size_t index(std::size_t i, std::size_t j, std::size_t k) const {
    return (k * ny_ + j) * nx_ + i;
  }
  std::size_t index(const Voxel& v) const { return index(v.i, v.j, v.k); }
  /// Inverse of index().
  Voxel voxel(std::size_t linear) const;

  Material material(std::size_t linear) const { return material_[linear]; }
  Material material(std::size_t i, std::size_t j, std::size_t k) const {
    return material_[index(i, j, k)];
  }
  void setMaterial(std::size_t i, std::size_t j, std::size_t k, Material m) {
    material_[index(i, j, k)] = m;
  }

  /// Physical centre coordinate of a voxel along each axis [m].
  double xCenter(std::size_t i) const { return (static_cast<double>(i) + 0.5) * h_; }
  double yCenter(std::size_t j) const { return (static_cast<double>(j) + 0.5) * h_; }
  double zCenter(std::size_t k) const { return (static_cast<double>(k) + 0.5) * h_; }

  /// Count voxels of a given material (diagnostics / tests).
  std::size_t countMaterial(Material m) const;

 private:
  std::size_t nx_ = 0, ny_ = 0, nz_ = 0;
  double h_ = 0.0;
  std::vector<Material> material_;
};

}  // namespace nh::fem
