#include "fem/geometry.hpp"

#include <cmath>
#include <stdexcept>

namespace nh::fem {

double CrossbarLayout::extentX() const {
  return 2.0 * margin + static_cast<double>(cols) * electrodeWidth +
         static_cast<double>(cols - 1) * spacing;
}

double CrossbarLayout::extentY() const {
  return 2.0 * margin + static_cast<double>(rows) * electrodeWidth +
         static_cast<double>(rows - 1) * spacing;
}

double CrossbarLayout::extentZ() const {
  return tSubstrate + tBuriedOxide + tBottomElectrode + tOxide + tTopElectrode +
         tCapping;
}

double CrossbarLayout::cellCenterX(std::size_t col) const {
  return margin + static_cast<double>(col) * pitch() + 0.5 * electrodeWidth;
}

double CrossbarLayout::cellCenterY(std::size_t row) const {
  return margin + static_cast<double>(row) * pitch() + 0.5 * electrodeWidth;
}

void CrossbarLayout::validate() const {
  const auto check = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string("CrossbarLayout: ") + what);
  };
  check(rows >= 1 && cols >= 1, "need >= 1 rows and cols");
  check(electrodeWidth > 0.0, "electrodeWidth must be > 0");
  check(spacing > 0.0, "spacing must be > 0");
  check(margin >= 0.0, "margin must be >= 0");
  check(voxelSize > 0.0, "voxelSize must be > 0");
  check(tSubstrate > 0.0 && tBuriedOxide > 0.0 && tBottomElectrode > 0.0 &&
            tOxide > 0.0 && tTopElectrode > 0.0 && tCapping > 0.0,
        "all layer thicknesses must be > 0");
  check(2.0 * filamentRadius <= electrodeWidth + 1e-15,
        "filament must fit inside the electrode crossing");
  check(filamentHeight <= tOxide + 1e-15, "filament taller than the oxide");
  check(electrodeWidth >= voxelSize && spacing >= voxelSize,
        "voxelSize too coarse for the lateral features");
  check(filamentHeight >= voxelSize, "voxelSize too coarse for the filament");
}

CrossbarModel3D CrossbarModel3D::build(const CrossbarLayout& layout) {
  layout.validate();

  CrossbarModel3D model;
  model.layout_ = layout;

  const double h = layout.voxelSize;
  const auto cellsAlong = [h](double extent) {
    return static_cast<std::size_t>(std::llround(extent / h));
  };
  const std::size_t nx = cellsAlong(layout.extentX());
  const std::size_t ny = cellsAlong(layout.extentY());
  const std::size_t nz = cellsAlong(layout.extentZ());
  model.grid_ = VoxelGrid(nx, ny, nz, h, Material::SiO2);
  VoxelGrid& grid = model.grid_;

  // Layer boundaries (z, from the substrate bottom upward).
  const double zSi = layout.tSubstrate;
  const double zBox = zSi + layout.tBuriedOxide;
  const double zBe = zBox + layout.tBottomElectrode;
  const double zOx = zBe + layout.tOxide;
  const double zTe = zOx + layout.tTopElectrode;

  // Stripe membership: bottom word lines run along x (stripes in y), top bit
  // lines run along y (stripes in x).
  const auto stripeIndex = [&](double coord) -> long long {
    // Returns the line index when the coordinate is inside a stripe, else -1.
    const double local = coord - layout.margin;
    if (local < 0.0) return -1;
    const long long idx = static_cast<long long>(std::floor(local / layout.pitch()));
    const double offset = local - static_cast<double>(idx) * layout.pitch();
    return offset <= layout.electrodeWidth ? idx : -1;
  };

  model.wordLines_.assign(layout.rows, {});
  model.bitLines_.assign(layout.cols, {});
  model.cells_.reserve(layout.rows * layout.cols);
  for (std::size_t r = 0; r < layout.rows; ++r) {
    for (std::size_t c = 0; c < layout.cols; ++c) {
      model.cells_.push_back(CellRegion{r, c, {}});
    }
  }

  const double rFil2 = layout.filamentRadius * layout.filamentRadius;
  for (std::size_t k = 0; k < nz; ++k) {
    const double z = grid.zCenter(k);
    for (std::size_t j = 0; j < ny; ++j) {
      const double y = grid.yCenter(j);
      const long long rowIdx = stripeIndex(y);
      const bool inRow = rowIdx >= 0 && rowIdx < static_cast<long long>(layout.rows);
      for (std::size_t i = 0; i < nx; ++i) {
        const double x = grid.xCenter(i);
        const long long colIdx = stripeIndex(x);
        const bool inCol = colIdx >= 0 && colIdx < static_cast<long long>(layout.cols);
        const std::size_t linear = grid.index(i, j, k);

        Material m = Material::SiO2;
        if (z < zSi) {
          m = Material::SiSubstrate;
        } else if (z < zBox) {
          m = Material::SiO2;
        } else if (z < zBe) {
          if (inRow) {
            m = Material::Electrode;
            model.wordLines_[static_cast<std::size_t>(rowIdx)].push_back(linear);
          }
        } else if (z < zOx) {
          m = Material::SwitchingOxide;
          if (inRow && inCol && z < zBe + layout.filamentHeight) {
            const double dx = x - layout.cellCenterX(static_cast<std::size_t>(colIdx));
            const double dy = y - layout.cellCenterY(static_cast<std::size_t>(rowIdx));
            if (dx * dx + dy * dy <= rFil2) {
              m = Material::Filament;
              auto& cell = model.cells_[static_cast<std::size_t>(rowIdx) * layout.cols +
                                        static_cast<std::size_t>(colIdx)];
              cell.filamentVoxels.push_back(linear);
            }
          }
        } else if (z < zTe) {
          if (inCol) {
            m = Material::Electrode;
            model.bitLines_[static_cast<std::size_t>(colIdx)].push_back(linear);
          }
        }
        grid.setMaterial(i, j, k, m);
      }
    }
  }

  // Every cell must have resolved filament voxels, otherwise the voxel size
  // is too coarse for this layout.
  for (const auto& cell : model.cells_) {
    if (cell.filamentVoxels.empty()) {
      throw std::runtime_error("CrossbarModel3D: filament not resolved; refine voxelSize");
    }
  }
  return model;
}

const CellRegion& CrossbarModel3D::cell(std::size_t row, std::size_t col) const {
  return cells_.at(row * layout_.cols + col);
}

const std::vector<std::size_t>& CrossbarModel3D::wordLineVoxels(std::size_t row) const {
  return wordLines_.at(row);
}

const std::vector<std::size_t>& CrossbarModel3D::bitLineVoxels(std::size_t col) const {
  return bitLines_.at(col);
}

double CrossbarModel3D::cellAverage(const std::vector<double>& field,
                                    std::size_t row, std::size_t col) const {
  const CellRegion& region = cell(row, col);
  double acc = 0.0;
  for (const std::size_t v : region.filamentVoxels) acc += field[v];
  return acc / static_cast<double>(region.filamentVoxels.size());
}

}  // namespace nh::fem
