#pragma once
/// \file geometry.hpp
/// Parametric 3-D geometry of the memristive crossbar (paper Fig. 2b):
/// Si/SiO2 substrate, Pt bottom word lines (along x), HfO2 cell oxide with a
/// conducting filament at every crossing (default: diameter 30 nm, height
/// 5 nm), Pt top bit lines (along y), SiO2 capping. The electrode spacing --
/// the distance between electrodes of adjacent cells -- is the sweep
/// parameter of Fig. 3b.

#include <vector>

#include "fem/grid.hpp"

namespace nh::fem {

/// All geometric parameters [m]. Defaults reproduce the paper's setup.
struct CrossbarLayout {
  std::size_t rows = 5;
  std::size_t cols = 5;
  double electrodeWidth = 30e-9;   ///< Line width (matches filament diameter).
  double spacing = 50e-9;          ///< Electrode spacing (Fig. 3b: 10..90 nm).
  double margin = 40e-9;           ///< Lateral margin around the array.
  double tSubstrate = 60e-9;       ///< Si handle thickness in the model box.
  double tBuriedOxide = 40e-9;     ///< SiO2 between Si and bottom lines.
  double tBottomElectrode = 20e-9; ///< Pt word-line thickness.
  double tOxide = 10e-9;           ///< HfO2 cell-oxide thickness.
  double tTopElectrode = 20e-9;    ///< Pt bit-line thickness.
  double tCapping = 30e-9;         ///< SiO2 capping thickness.
  double filamentRadius = 15e-9;   ///< Fig. 2b: diameter 30 nm.
  double filamentHeight = 5e-9;    ///< Fig. 2b: height 5 nm.
  double voxelSize = 5e-9;         ///< Discretisation resolution.

  /// Cell pitch = electrode width + spacing.
  double pitch() const { return electrodeWidth + spacing; }
  /// Lateral extents of the simulation box [m].
  double extentX() const;
  double extentY() const;
  /// Vertical extent (sum of layer thicknesses) [m].
  double extentZ() const;

  /// Centre coordinate of cell (row, col) [m].
  double cellCenterX(std::size_t col) const;
  double cellCenterY(std::size_t row) const;

  /// Throws std::invalid_argument on inconsistent parameters (zero sizes,
  /// filament larger than the cell, layers not resolvable by the voxel
  /// size, ...).
  void validate() const;
};

/// A cell's voxel bookkeeping inside the built grid.
struct CellRegion {
  std::size_t row = 0;
  std::size_t col = 0;
  std::vector<std::size_t> filamentVoxels;  ///< Linear voxel indices.
};

/// The voxelised crossbar: grid plus per-cell and per-line voxel sets.
class CrossbarModel3D {
 public:
  /// Voxelise \p layout. Throws on invalid layouts.
  static CrossbarModel3D build(const CrossbarLayout& layout);

  const CrossbarLayout& layout() const { return layout_; }
  const VoxelGrid& grid() const { return grid_; }
  VoxelGrid& grid() { return grid_; }

  /// Cell bookkeeping; cells are indexed row-major.
  const CellRegion& cell(std::size_t row, std::size_t col) const;
  std::size_t cellCount() const { return cells_.size(); }

  /// All voxels of bottom word line \p row / top bit line \p col.
  const std::vector<std::size_t>& wordLineVoxels(std::size_t row) const;
  const std::vector<std::size_t>& bitLineVoxels(std::size_t col) const;

  /// Mean value of \p field over the filament voxels of cell (row, col).
  double cellAverage(const std::vector<double>& field, std::size_t row,
                     std::size_t col) const;

 private:
  CrossbarLayout layout_;
  VoxelGrid grid_;
  std::vector<CellRegion> cells_;
  std::vector<std::vector<std::size_t>> wordLines_;
  std::vector<std::vector<std::size_t>> bitLines_;
};

}  // namespace nh::fem
