#include "fem/thermal.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nh::fem {

namespace {

void kappaFieldInto(const CrossbarModel3D& model, const MaterialTable& materials,
                    std::vector<double>& kappa) {
  const VoxelGrid& grid = model.grid();
  kappa.resize(grid.voxelCount());
  for (std::size_t v = 0; v < grid.voxelCount(); ++v) {
    kappa[v] = materials.kappa(grid.material(v));
  }
}

nh::util::Matrix cellAverages(const CrossbarModel3D& model,
                              const std::vector<double>& field) {
  const auto& layout = model.layout();
  nh::util::Matrix out(layout.rows, layout.cols, 0.0);
  for (std::size_t r = 0; r < layout.rows; ++r) {
    for (std::size_t c = 0; c < layout.cols; ++c) {
      out(r, c) = model.cellAverage(field, r, c);
    }
  }
  return out;
}

}  // namespace

ThermalSolution ThermalSolver::solve(const ThermalScenario& scenario,
                                     const DiffusionOptions& options,
                                     const std::vector<double>* initialGuess) {
  if (scenario.model == nullptr) throw std::invalid_argument("solveThermal: null model");
  const CrossbarModel3D& model = *scenario.model;
  const auto& layout = model.layout();
  if (scenario.cellPower.rows() != layout.rows ||
      scenario.cellPower.cols() != layout.cols) {
    throw std::invalid_argument("solveThermal: cellPower shape mismatch");
  }

  problem_.grid = &model.grid();
  kappaFieldInto(model, scenario.materials, problem_.coefficient);
  problem_.bottomPlaneDirichlet = true;
  problem_.bottomPlaneValue = scenario.ambientK;
  problem_.sourcePerVoxel.assign(model.grid().voxelCount(), 0.0);
  for (std::size_t r = 0; r < layout.rows; ++r) {
    for (std::size_t c = 0; c < layout.cols; ++c) {
      const double p = scenario.cellPower(r, c);
      if (p == 0.0) continue;
      if (p < 0.0) throw std::invalid_argument("solveThermal: negative cell power");
      const auto& voxels = model.cell(r, c).filamentVoxels;
      const double perVoxel = p / static_cast<double>(voxels.size());
      for (const std::size_t v : voxels) problem_.sourcePerVoxel[v] += perVoxel;
    }
  }

  const DiffusionSolution sol = diffusion_.solve(problem_, options, initialGuess);

  ThermalSolution out;
  out.temperature = sol.field;
  out.stats = sol.stats;
  out.cellTemperature = cellAverages(model, sol.field);
  return out;
}

ThermalSolution solveThermal(const ThermalScenario& scenario,
                             const DiffusionOptions& options,
                             const std::vector<double>* initialGuess) {
  ThermalSolver solver;
  return solver.solve(scenario, options, initialGuess);
}

CoupledSolution CoupledSolver::solve(const CoupledScenario& scenario,
                                     const DiffusionOptions& options,
                                     const CoupledSolution* warmStart) {
  if (scenario.model == nullptr) throw std::invalid_argument("solveCoupled: null model");
  const CrossbarModel3D& model = *scenario.model;
  const auto& layout = model.layout();
  const VoxelGrid& grid = model.grid();
  if (scenario.wordLineVoltage.size() != layout.rows ||
      scenario.bitLineVoltage.size() != layout.cols) {
    throw std::invalid_argument("solveCoupled: line voltage size mismatch");
  }
  if (scenario.cellSigma.rows() != layout.rows ||
      scenario.cellSigma.cols() != layout.cols) {
    throw std::invalid_argument("solveCoupled: cellSigma shape mismatch");
  }

  // ---- potential solve (Eq. 2) ---------------------------------------------
  electric_.grid = &grid;
  electric_.coefficient.assign(grid.voxelCount(), 0.0);
  double sigmaMax = 0.0;
  for (std::size_t v = 0; v < grid.voxelCount(); ++v) {
    electric_.coefficient[v] = scenario.materials.sigma(grid.material(v));
    sigmaMax = std::max(sigmaMax, electric_.coefficient[v]);
  }
  for (std::size_t r = 0; r < layout.rows; ++r) {
    for (std::size_t c = 0; c < layout.cols; ++c) {
      const double s = scenario.cellSigma(r, c);
      if (!(s > 0.0)) throw std::invalid_argument("solveCoupled: cellSigma must be > 0");
      sigmaMax = std::max(sigmaMax, s);
      for (const std::size_t v : model.cell(r, c).filamentVoxels) {
        electric_.coefficient[v] = s;
      }
    }
  }
  // Conductivity floor bounds the condition number (see header).
  const double sigmaFloor = sigmaMax * scenario.sigmaFloorRatio;
  for (auto& s : electric_.coefficient) s = std::max(s, sigmaFloor);

  // Ideal line drivers: pin every electrode voxel at its line voltage. The
  // pin *sequence* is identical for every solve on this model, so the cached
  // assembly structure stays valid across voltage sweeps.
  electric_.pins.clear();
  for (std::size_t r = 0; r < layout.rows; ++r) {
    for (const std::size_t v : model.wordLineVoxels(r)) {
      electric_.pins.push_back({v, scenario.wordLineVoltage[r]});
    }
  }
  for (std::size_t c = 0; c < layout.cols; ++c) {
    for (const std::size_t v : model.bitLineVoxels(c)) {
      electric_.pins.push_back({v, scenario.bitLineVoltage[c]});
    }
  }

  const DiffusionSolution phi = electricSolver_.solve(
      electric_, options,
      warmStart != nullptr && warmStart->potential.size() == grid.voxelCount()
          ? &warmStart->potential
          : nullptr);
  const std::vector<double> joule = phi.dissipationPerVoxel(electric_);

  // ---- heat solve (Eq. 1) -----------------------------------------------------
  heat_.grid = &grid;
  heat_.coefficient.resize(grid.voxelCount());
  for (std::size_t v = 0; v < grid.voxelCount(); ++v) {
    heat_.coefficient[v] = scenario.materials.kappa(grid.material(v));
  }
  // Filament kappa from Wiedemann-Franz at ambient (per-cell sigma).
  for (std::size_t r = 0; r < layout.rows; ++r) {
    for (std::size_t c = 0; c < layout.cols; ++c) {
      const double kWf = MaterialTable::wiedemannFranz(scenario.cellSigma(r, c),
                                                       scenario.ambientK);
      const double kBase = scenario.materials.kappa(Material::Filament);
      for (const std::size_t v : model.cell(r, c).filamentVoxels) {
        heat_.coefficient[v] = std::max(kBase, kWf);
      }
    }
  }
  heat_.bottomPlaneDirichlet = true;
  heat_.bottomPlaneValue = scenario.ambientK;
  heat_.sourcePerVoxel = joule;

  const DiffusionSolution temp = heatSolver_.solve(
      heat_, options,
      warmStart != nullptr && warmStart->temperature.size() == grid.voxelCount()
          ? &warmStart->temperature
          : nullptr);

  CoupledSolution out;
  out.potential = phi.field;
  out.temperature = temp.field;
  out.potentialStats = phi.stats;
  out.thermalStats = temp.stats;
  out.cellTemperature = nh::util::Matrix(layout.rows, layout.cols, 0.0);
  out.cellPower = nh::util::Matrix(layout.rows, layout.cols, 0.0);
  for (std::size_t r = 0; r < layout.rows; ++r) {
    for (std::size_t c = 0; c < layout.cols; ++c) {
      out.cellTemperature(r, c) = model.cellAverage(temp.field, r, c);
    }
  }
  // Attribute Joule power to cells: sum over each cell's oxide column
  // (filament voxels plus the oxide immediately around them carry the
  // current between the pinned electrodes).
  for (double p : joule) out.totalPower += p;
  for (std::size_t r = 0; r < layout.rows; ++r) {
    for (std::size_t c = 0; c < layout.cols; ++c) {
      double acc = 0.0;
      for (const std::size_t v : model.cell(r, c).filamentVoxels) acc += joule[v];
      out.cellPower(r, c) = acc;
    }
  }
  return out;
}

CoupledSolution solveCoupled(const CoupledScenario& scenario,
                             const DiffusionOptions& options) {
  CoupledSolver solver;
  return solver.solve(scenario, options);
}

}  // namespace nh::fem
