#pragma once
/// \file thermal.hpp
/// High-level electro-thermal solves on the voxelised crossbar:
///  * solveThermal():   prescribed per-cell filament power -> temperature
///                      field (heat equation only, linear in power).
///  * solveCoupled():   line voltages + per-cell filament conductivity ->
///                      potential solve (Eq. 2), Joule heat, then heat solve
///                      (Eq. 1) -- the paper's COMSOL flow.
/// Boundary conditions follow the paper: the substrate bottom is held at the
/// ambient temperature, every other surface is thermally and electrically
/// insulated.

#include "fem/diffusion.hpp"
#include "fem/geometry.hpp"
#include "util/matrix.hpp"

namespace nh::fem {

/// Prescribed-power thermal scenario.
struct ThermalScenario {
  const CrossbarModel3D* model = nullptr;
  MaterialTable materials = MaterialTable::defaults();
  double ambientK = 300.0;
  /// Dissipated power per cell [W], rows x cols; heat is deposited uniformly
  /// over the cell's filament voxels.
  nh::util::Matrix cellPower;
};

/// Temperature solution.
struct ThermalSolution {
  std::vector<double> temperature;      ///< Per-voxel T [K].
  nh::util::Matrix cellTemperature;     ///< Filament-averaged T per cell [K].
  nh::util::IterativeResult stats;
  bool converged() const { return stats.converged; }
};

ThermalSolution solveThermal(const ThermalScenario& scenario,
                             const DiffusionOptions& options = {},
                             const std::vector<double>* initialGuess = nullptr);

/// Structure-reusing form of solveThermal(): repeated solves on the same
/// model (power sweeps, alpha extraction) reuse the cached FV assembly,
/// coefficient/source buffers, and CG workspace of one DiffusionSolver.
class ThermalSolver {
 public:
  ThermalSolution solve(const ThermalScenario& scenario,
                        const DiffusionOptions& options = {},
                        const std::vector<double>* initialGuess = nullptr);

 private:
  DiffusionSolver diffusion_;
  DiffusionProblem problem_;  ///< Reused coefficient/source storage.
};

/// Coupled electro-thermal scenario: the word/bit lines are ideal contacts
/// pinned at their driver voltages (the V/2 scheme in the experiments), and
/// each cell's filament has a state-dependent conductivity.
struct CoupledScenario {
  const CrossbarModel3D* model = nullptr;
  MaterialTable materials = MaterialTable::defaults();
  double ambientK = 300.0;
  nh::util::Vector wordLineVoltage;  ///< Size rows [V].
  nh::util::Vector bitLineVoltage;   ///< Size cols [V].
  /// Filament conductivity per cell [S/m] (LRS: ~1e5, HRS: orders lower).
  nh::util::Matrix cellSigma;
  /// Conductivity floor, as a fraction of the largest sigma present, applied
  /// to insulators to bound the system's condition number. The resulting
  /// parasitic leakage is negligible (<< filament conductance).
  double sigmaFloorRatio = 1e-8;
};

struct CoupledSolution {
  std::vector<double> potential;     ///< Per-voxel phi [V].
  std::vector<double> temperature;   ///< Per-voxel T [K].
  nh::util::Matrix cellTemperature;  ///< Filament-averaged T per cell [K].
  nh::util::Matrix cellPower;        ///< Joule power per cell region [W].
  double totalPower = 0.0;           ///< Total dissipated power [W].
  nh::util::IterativeResult potentialStats;
  nh::util::IterativeResult thermalStats;
  bool converged() const {
    return potentialStats.converged && thermalStats.converged;
  }
};

CoupledSolution solveCoupled(const CoupledScenario& scenario,
                             const DiffusionOptions& options = {});

/// Structure-reusing form of solveCoupled(): the potential and heat systems
/// each keep their own cached assembly across solves on the same model
/// (voltage sweeps in extractAlphaCoupled re-pin values, not locations).
class CoupledSolver {
 public:
  /// \p warmStart (optional): a previous solution on the same model whose
  /// potential and temperature fields seed the two CG iterations -- voltage
  /// sweeps chain each point from its predecessor.
  CoupledSolution solve(const CoupledScenario& scenario,
                        const DiffusionOptions& options = {},
                        const CoupledSolution* warmStart = nullptr);

 private:
  DiffusionSolver electricSolver_;
  DiffusionSolver heatSolver_;
  DiffusionProblem electric_;  ///< Reused coefficient/pin storage.
  DiffusionProblem heat_;      ///< Reused coefficient/source storage.
};

}  // namespace nh::fem
