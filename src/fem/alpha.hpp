#pragma once
/// \file alpha.hpp
/// Thermal-crosstalk coefficient ("alpha value") extraction, implementing
/// the paper's Eq. 3 / Eq. 4 procedure: sweep the dissipated power of a
/// selected cell, record the temperature matrix of the whole array for every
/// power point, then
///   T(P)    = T0 + Rth * P            (selected cell -> Rth by regression)
///   Tij(P)  = T0 + Rth * P * alpha_ij (every neighbour -> alpha_ij)
/// Because the heat equation is linear, R^2 of these fits is ~1; the fits
/// are still performed (and reported) to mirror the paper's methodology and
/// to catch discretisation artefacts.

#include <vector>

#include "fem/thermal.hpp"
#include "util/linreg.hpp"
#include "util/matrix.hpp"

namespace nh::fem {

/// Result of an alpha extraction around one selected cell.
struct AlphaResult {
  std::size_t selectedRow = 0;
  std::size_t selectedCol = 0;
  double ambientK = 300.0;
  /// Thermal resistance of the selected cell [K/W] (Eq. 3 slope).
  double rTh = 0.0;
  double rThRSquared = 0.0;
  /// alpha_ij per cell (selected cell reads 1 by construction).
  nh::util::Matrix alpha;
  /// R^2 of each neighbour fit.
  nh::util::Matrix alphaRSquared;
  /// The swept powers [W] and the cell-temperature matrix per power point.
  std::vector<double> powers;
  std::vector<nh::util::Matrix> temperatureMatrices;

  /// Temperature matrix predicted by the linear model at power \p p [W].
  nh::util::Matrix predictTemperatures(double p) const;
};

/// Extract Rth and the alpha matrix by sweeping the selected cell's
/// dissipated power (prescribed-power mode; heat equation only).
AlphaResult extractAlpha(const CrossbarModel3D& model,
                         const MaterialTable& materials, std::size_t selectedRow,
                         std::size_t selectedCol, const std::vector<double>& powers,
                         double ambientK, const DiffusionOptions& options = {});

/// Extract via the coupled flow (closer to the paper: a V_SET voltage sweep
/// on the selected LRS cell under the V/2 scheme; P = dissipated power of
/// the selected cell from the potential solve).
AlphaResult extractAlphaCoupled(const CrossbarModel3D& model,
                                const MaterialTable& materials,
                                std::size_t selectedRow, std::size_t selectedCol,
                                const std::vector<double>& setVoltages,
                                double lrsSigma, double hrsSigma, double ambientK,
                                const DiffusionOptions& options = {});

}  // namespace nh::fem
