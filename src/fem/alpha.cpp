#include "fem/alpha.hpp"

#include <stdexcept>

namespace nh::fem {

namespace {

/// Shared regression step: given powers and temperature matrices, fit Eq. 3
/// on the selected cell and Eq. 4 on every other cell.
void fitAlphas(AlphaResult& result) {
  const std::size_t rows = result.temperatureMatrices.front().rows();
  const std::size_t cols = result.temperatureMatrices.front().cols();

  std::vector<double> tSelected;
  tSelected.reserve(result.powers.size());
  for (const auto& tm : result.temperatureMatrices) {
    tSelected.push_back(tm(result.selectedRow, result.selectedCol));
  }
  const nh::util::LinearFit rthFit = nh::util::fitLinear(result.powers, tSelected);
  result.rTh = rthFit.slope;
  result.rThRSquared = rthFit.rSquared;

  result.alpha.resize(rows, cols, 0.0);
  result.alphaRSquared.resize(rows, cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (r == result.selectedRow && c == result.selectedCol) {
        result.alpha(r, c) = 1.0;
        result.alphaRSquared(r, c) = rthFit.rSquared;
        continue;
      }
      std::vector<double> tCell;
      tCell.reserve(result.powers.size());
      for (const auto& tm : result.temperatureMatrices) tCell.push_back(tm(r, c));
      const nh::util::LinearFit fit = nh::util::fitLinear(result.powers, tCell);
      // Eq. 4: Tij = T0 + Rth * P * alpha_ij  ->  alpha_ij = slope_ij / Rth.
      result.alpha(r, c) = result.rTh != 0.0 ? fit.slope / result.rTh : 0.0;
      result.alphaRSquared(r, c) = fit.rSquared;
    }
  }
}

}  // namespace

nh::util::Matrix AlphaResult::predictTemperatures(double p) const {
  nh::util::Matrix out(alpha.rows(), alpha.cols(), ambientK);
  for (std::size_t r = 0; r < alpha.rows(); ++r) {
    for (std::size_t c = 0; c < alpha.cols(); ++c) {
      out(r, c) = ambientK + rTh * p * alpha(r, c);
    }
  }
  return out;
}

AlphaResult extractAlpha(const CrossbarModel3D& model,
                         const MaterialTable& materials, std::size_t selectedRow,
                         std::size_t selectedCol, const std::vector<double>& powers,
                         double ambientK, const DiffusionOptions& options) {
  const auto& layout = model.layout();
  if (selectedRow >= layout.rows || selectedCol >= layout.cols) {
    throw std::out_of_range("extractAlpha: selected cell out of range");
  }
  if (powers.size() < 2) {
    throw std::invalid_argument("extractAlpha: need >= 2 power points");
  }

  AlphaResult result;
  result.selectedRow = selectedRow;
  result.selectedCol = selectedCol;
  result.ambientK = ambientK;
  result.powers = powers;

  std::vector<double> guess;
  // One solver for the whole power sweep: the FV assembly is symbolic-phased
  // once and every later power point only refills values.
  ThermalSolver solver;
  for (const double p : powers) {
    ThermalScenario scenario;
    scenario.model = &model;
    scenario.materials = materials;
    scenario.ambientK = ambientK;
    scenario.cellPower = nh::util::Matrix(layout.rows, layout.cols, 0.0);
    scenario.cellPower(selectedRow, selectedCol) = p;

    const ThermalSolution sol =
        solver.solve(scenario, options, guess.empty() ? nullptr : &guess);
    if (!sol.converged()) {
      throw std::runtime_error("extractAlpha: thermal solve did not converge");
    }
    guess = sol.temperature;  // warm start for the next power point
    result.temperatureMatrices.push_back(sol.cellTemperature);
  }

  fitAlphas(result);
  return result;
}

AlphaResult extractAlphaCoupled(const CrossbarModel3D& model,
                                const MaterialTable& materials,
                                std::size_t selectedRow, std::size_t selectedCol,
                                const std::vector<double>& setVoltages,
                                double lrsSigma, double hrsSigma, double ambientK,
                                const DiffusionOptions& options) {
  const auto& layout = model.layout();
  if (selectedRow >= layout.rows || selectedCol >= layout.cols) {
    throw std::out_of_range("extractAlphaCoupled: selected cell out of range");
  }
  if (setVoltages.size() < 2) {
    throw std::invalid_argument("extractAlphaCoupled: need >= 2 voltage points");
  }

  AlphaResult result;
  result.selectedRow = selectedRow;
  result.selectedCol = selectedCol;
  result.ambientK = ambientK;

  // Shared solver: both diffusion systems (potential + heat) keep their
  // cached assemblies across the voltage sweep, and each voltage point
  // warm-starts its CG iterations from the previous point's fields. The
  // sweep is a single serial chain, so results are independent of any
  // caller-side threading.
  CoupledSolver solver;
  CoupledSolution previous;
  bool havePrevious = false;
  for (const double vSet : setVoltages) {
    CoupledScenario scenario;
    scenario.model = &model;
    scenario.materials = materials;
    scenario.ambientK = ambientK;
    // V/2 scheme: selected word line at V, selected bit line at 0, all other
    // lines at V/2 (paper Sec. V).
    scenario.wordLineVoltage.assign(layout.rows, vSet / 2.0);
    scenario.bitLineVoltage.assign(layout.cols, vSet / 2.0);
    scenario.wordLineVoltage[selectedRow] = vSet;
    scenario.bitLineVoltage[selectedCol] = 0.0;
    // Selected cell in LRS ("switched to LRS to maximize the resulting
    // current"), every other cell HRS.
    scenario.cellSigma = nh::util::Matrix(layout.rows, layout.cols, hrsSigma);
    scenario.cellSigma(selectedRow, selectedCol) = lrsSigma;

    CoupledSolution sol =
        solver.solve(scenario, options, havePrevious ? &previous : nullptr);
    if (!sol.converged()) {
      throw std::runtime_error("extractAlphaCoupled: solve did not converge");
    }
    result.powers.push_back(sol.cellPower(selectedRow, selectedCol));
    result.temperatureMatrices.push_back(sol.cellTemperature);
    previous = std::move(sol);
    havePrevious = true;
  }

  fitAlphas(result);
  return result;
}

}  // namespace nh::fem
