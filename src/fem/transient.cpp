#include "fem/transient.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/linsolve.hpp"

namespace nh::fem {

HeatCapacityTable HeatCapacityTable::defaults() {
  HeatCapacityTable t;
  const auto set = [&t](Material m, double v) {
    t.values[static_cast<std::size_t>(m)] = v;
  };
  // rho * c_p [J m^-3 K^-1], thin-film literature values.
  set(Material::SiSubstrate, 1.63e6);    // 2330 * 700
  set(Material::SiO2, 1.63e6);           // 2200 * 740
  set(Material::Electrode, 2.85e6);      // Pt: 21450 * 133
  set(Material::SwitchingOxide, 2.7e6);  // HfO2: 9680 * 280
  set(Material::Filament, 2.7e6);        // oxide-like
  return t;
}

double HeatCapacityTable::capacity(Material m) const {
  const auto i = static_cast<std::size_t>(m);
  if (i >= static_cast<std::size_t>(Material::Count)) {
    throw std::out_of_range("HeatCapacityTable::capacity");
  }
  return values[i];
}

double TransientSolution::riseTimeConstant(std::size_t index) const {
  if (index >= cellTemperature.size() || time.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const auto& series = cellTemperature[index];
  const double start = series.front();
  const double final = series.back();
  const double mark = start + (final - start) * 0.632;
  for (std::size_t i = 1; i < series.size(); ++i) {
    if ((series[i - 1] < mark && series[i] >= mark) ||
        (series[i - 1] > mark && series[i] <= mark)) {
      // Linear interpolation between samples.
      const double f = (mark - series[i - 1]) / (series[i] - series[i - 1]);
      return time[i - 1] + f * (time[i] - time[i - 1]);
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

TransientSolution solveThermalStep(const TransientScenario& scenario,
                                   const DiffusionOptions& options) {
  if (scenario.model == nullptr) {
    throw std::invalid_argument("solveThermalStep: null model");
  }
  if (!(scenario.dt > 0.0) || !(scenario.tStop > scenario.dt)) {
    throw std::invalid_argument("solveThermalStep: need 0 < dt < tStop");
  }
  const CrossbarModel3D& model = *scenario.model;
  const auto& layout = model.layout();
  const VoxelGrid& grid = model.grid();
  if (scenario.heatedRow >= layout.rows || scenario.heatedCol >= layout.cols) {
    throw std::out_of_range("solveThermalStep: heated cell out of range");
  }
  const std::size_t n = grid.voxelCount();
  const double h = grid.voxelSize();
  const double voxelVolume = h * h * h;

  // Assemble the steady FV operator A (same stamps as solveDiffusion, no
  // pinned voxels; Dirichlet bottom plane) plus the capacity lump C/dt.
  std::vector<double> kappa(n), cOverDt(n);
  for (std::size_t v = 0; v < n; ++v) {
    const Material m = grid.material(v);
    kappa[v] = scenario.materials.kappa(m);
    cOverDt[v] = scenario.capacities.capacity(m) * voxelVolume / scenario.dt;
  }

  nh::util::TripletBuilder builder(n, n);
  nh::util::Vector steadyRhs(n, 0.0);
  const auto faceCoefficient = [](double a, double b) {
    return (a <= 0.0 || b <= 0.0) ? 0.0 : 2.0 * a * b / (a + b);
  };
  for (std::size_t k = 0; k < grid.nz(); ++k) {
    for (std::size_t j = 0; j < grid.ny(); ++j) {
      for (std::size_t i = 0; i < grid.nx(); ++i) {
        const std::size_t v = grid.index(i, j, k);
        double diag = cOverDt[v];
        const auto visit = [&](std::size_t nv) {
          const double g = faceCoefficient(kappa[v], kappa[nv]) * h;
          if (g <= 0.0) return;
          diag += g;
          builder.add(v, nv, -g);
        };
        if (i > 0) visit(grid.index(i - 1, j, k));
        if (i + 1 < grid.nx()) visit(grid.index(i + 1, j, k));
        if (j > 0) visit(grid.index(i, j - 1, k));
        if (j + 1 < grid.ny()) visit(grid.index(i, j + 1, k));
        if (k > 0) visit(grid.index(i, j, k - 1));
        if (k + 1 < grid.nz()) visit(grid.index(i, j, k + 1));
        if (k == 0) {  // Dirichlet ambient at the substrate bottom
          const double g = 2.0 * kappa[v] * h;
          diag += g;
          steadyRhs[v] += g * scenario.ambientK;
        }
        builder.add(v, v, diag);
      }
    }
  }
  const auto matrix = nh::util::SparseMatrix::fromTriplets(builder);

  // Heat source.
  const auto& heated = model.cell(scenario.heatedRow, scenario.heatedCol);
  nh::util::Vector source(n, 0.0);
  const double perVoxel =
      scenario.power / static_cast<double>(heated.filamentVoxels.size());
  for (const std::size_t v : heated.filamentVoxels) source[v] += perVoxel;

  // Observed cells: heated + the three characteristic neighbours.
  TransientSolution out;
  std::vector<std::pair<std::size_t, std::size_t>> observed;
  observed.emplace_back(scenario.heatedRow, scenario.heatedCol);
  out.cellLabels.push_back("heated");
  if (scenario.heatedCol + 1 < layout.cols) {
    observed.emplace_back(scenario.heatedRow, scenario.heatedCol + 1);
    out.cellLabels.push_back("word-line neighbour");
  }
  if (scenario.heatedRow + 1 < layout.rows) {
    observed.emplace_back(scenario.heatedRow + 1, scenario.heatedCol);
    out.cellLabels.push_back("bit-line neighbour");
  }
  if (scenario.heatedRow + 1 < layout.rows && scenario.heatedCol + 1 < layout.cols) {
    observed.emplace_back(scenario.heatedRow + 1, scenario.heatedCol + 1);
    out.cellLabels.push_back("diagonal neighbour");
  }
  out.cellTemperature.assign(observed.size(), {});

  // March: (C/dt + A) T_new = C/dt T_old + q + dirichletRhs.
  nh::util::Vector temperature(n, scenario.ambientK);
  nh::util::Vector rhs(n);
  const std::size_t steps =
      static_cast<std::size_t>(std::ceil(scenario.tStop / scenario.dt));
  out.converged = true;
  const auto record = [&](double t) {
    out.time.push_back(t);
    for (std::size_t s = 0; s < observed.size(); ++s) {
      double acc = 0.0;
      const auto& cell = model.cell(observed[s].first, observed[s].second);
      for (const std::size_t v : cell.filamentVoxels) acc += temperature[v];
      out.cellTemperature[s].push_back(
          acc / static_cast<double>(cell.filamentVoxels.size()));
    }
  };
  record(0.0);
  for (std::size_t step = 1; step <= steps; ++step) {
    for (std::size_t v = 0; v < n; ++v) {
      rhs[v] = cOverDt[v] * temperature[v] + source[v] + steadyRhs[v];
    }
    const auto stats = nh::util::solveConjugateGradient(
        matrix, rhs, temperature, options.relTol, options.maxIterations);
    if (!stats.converged) {
      out.converged = false;
      break;
    }
    record(static_cast<double>(step) * scenario.dt);
  }
  return out;
}

}  // namespace nh::fem
