#include "fem/transient.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/linsolve.hpp"

namespace nh::fem {

HeatCapacityTable HeatCapacityTable::defaults() {
  HeatCapacityTable t;
  const auto set = [&t](Material m, double v) {
    t.values[static_cast<std::size_t>(m)] = v;
  };
  // rho * c_p [J m^-3 K^-1], thin-film literature values.
  set(Material::SiSubstrate, 1.63e6);    // 2330 * 700
  set(Material::SiO2, 1.63e6);           // 2200 * 740
  set(Material::Electrode, 2.85e6);      // Pt: 21450 * 133
  set(Material::SwitchingOxide, 2.7e6);  // HfO2: 9680 * 280
  set(Material::Filament, 2.7e6);        // oxide-like
  return t;
}

double HeatCapacityTable::capacity(Material m) const {
  const auto i = static_cast<std::size_t>(m);
  if (i >= static_cast<std::size_t>(Material::Count)) {
    throw std::out_of_range("HeatCapacityTable::capacity");
  }
  return values[i];
}

double TransientSolution::riseTimeConstant(std::size_t index) const {
  if (index >= cellTemperature.size() || time.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const auto& series = cellTemperature[index];
  const double start = series.front();
  const double final = series.back();
  const double mark = start + (final - start) * 0.632;
  for (std::size_t i = 1; i < series.size(); ++i) {
    if ((series[i - 1] < mark && series[i] >= mark) ||
        (series[i - 1] > mark && series[i] <= mark)) {
      // Linear interpolation between samples.
      const double f = (mark - series[i - 1]) / (series[i] - series[i - 1]);
      return time[i - 1] + f * (time[i] - time[i - 1]);
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

struct ThermalTransientSolver::State {
  // Structural cache key: the FV adjacency is a pure function of the grid
  // dimensions (a pointer would falsely match a different grid reusing the
  // same address; voxelCount alone would match permuted dimensions).
  std::size_t nx = 0, ny = 0, nz = 0;
  nh::util::TripletBuilder builder{0, 0};
  nh::util::SparsityPattern pattern;
  nh::util::SparseMatrix matrix;
  nh::util::Vector kappa, cOverDt, steadyRhs, source, temperature, rhs;
  nh::util::CgWorkspace cg;
};

ThermalTransientSolver::ThermalTransientSolver() : state_(std::make_unique<State>()) {}
ThermalTransientSolver::~ThermalTransientSolver() = default;
ThermalTransientSolver::ThermalTransientSolver(ThermalTransientSolver&&) noexcept =
    default;
ThermalTransientSolver& ThermalTransientSolver::operator=(
    ThermalTransientSolver&&) noexcept = default;

TransientSolution ThermalTransientSolver::solve(const TransientScenario& scenario,
                                                const DiffusionOptions& options) {
  if (scenario.model == nullptr) {
    throw std::invalid_argument("solveThermalStep: null model");
  }
  if (!(scenario.dt > 0.0) || !(scenario.tStop > scenario.dt)) {
    throw std::invalid_argument("solveThermalStep: need 0 < dt < tStop");
  }
  const CrossbarModel3D& model = *scenario.model;
  const auto& layout = model.layout();
  const VoxelGrid& grid = model.grid();
  if (scenario.heatedRow >= layout.rows || scenario.heatedCol >= layout.cols) {
    throw std::out_of_range("solveThermalStep: heated cell out of range");
  }
  State& s = *state_;
  const std::size_t n = grid.voxelCount();
  const double h = grid.voxelSize();
  const double voxelVolume = h * h * h;

  // Assemble the steady FV operator A (same stamps as solveDiffusion, no
  // pinned voxels; Dirichlet bottom plane) plus the capacity lump C/dt. The
  // stamp sequence is fixed by the grid, so a repeated run refills the
  // cached CSR structure in O(nnz) without sorting or allocating.
  s.kappa.resize(n);
  s.cOverDt.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    const Material m = grid.material(v);
    s.kappa[v] = scenario.materials.kappa(m);
    s.cOverDt[v] = scenario.capacities.capacity(m) * voxelVolume / scenario.dt;
  }

  const bool reuseStructure =
      s.nx == grid.nx() && s.ny == grid.ny() && s.nz == grid.nz();
  if (!reuseStructure || s.builder.rows() != n) {
    s.builder = nh::util::TripletBuilder(n, n);
  } else {
    s.builder.clear();
  }
  s.steadyRhs.assign(n, 0.0);
  const auto faceCoefficient = [](double a, double b) {
    return (a <= 0.0 || b <= 0.0) ? 0.0 : 2.0 * a * b / (a + b);
  };
  for (std::size_t k = 0; k < grid.nz(); ++k) {
    for (std::size_t j = 0; j < grid.ny(); ++j) {
      for (std::size_t i = 0; i < grid.nx(); ++i) {
        const std::size_t v = grid.index(i, j, k);
        double diag = s.cOverDt[v];
        // Zero-conductance faces are stamped too (explicit zeros), keeping
        // the structure a function of the grid alone.
        const auto visit = [&](std::size_t nv) {
          const double g = faceCoefficient(s.kappa[v], s.kappa[nv]) * h;
          diag += g;
          s.builder.add(v, nv, -g);
        };
        if (i > 0) visit(grid.index(i - 1, j, k));
        if (i + 1 < grid.nx()) visit(grid.index(i + 1, j, k));
        if (j > 0) visit(grid.index(i, j - 1, k));
        if (j + 1 < grid.ny()) visit(grid.index(i, j + 1, k));
        if (k > 0) visit(grid.index(i, j, k - 1));
        if (k + 1 < grid.nz()) visit(grid.index(i, j, k + 1));
        if (k == 0) {  // Dirichlet ambient at the substrate bottom
          const double g = 2.0 * s.kappa[v] * h;
          diag += g;
          s.steadyRhs[v] += g * scenario.ambientK;
        }
        s.builder.add(v, v, diag);
      }
    }
  }
  if (!reuseStructure) {
    s.pattern = nh::util::SparsityPattern::fromTriplets(s.builder);
    s.nx = grid.nx();
    s.ny = grid.ny();
    s.nz = grid.nz();
  }
  s.pattern.assemble(s.builder, s.matrix);

  // Heat source.
  const auto& heated = model.cell(scenario.heatedRow, scenario.heatedCol);
  s.source.assign(n, 0.0);
  const double perVoxel =
      scenario.power / static_cast<double>(heated.filamentVoxels.size());
  for (const std::size_t v : heated.filamentVoxels) s.source[v] += perVoxel;

  // Observed cells: heated + the three characteristic neighbours.
  TransientSolution out;
  std::vector<std::pair<std::size_t, std::size_t>> observed;
  observed.emplace_back(scenario.heatedRow, scenario.heatedCol);
  out.cellLabels.push_back("heated");
  if (scenario.heatedCol + 1 < layout.cols) {
    observed.emplace_back(scenario.heatedRow, scenario.heatedCol + 1);
    out.cellLabels.push_back("word-line neighbour");
  }
  if (scenario.heatedRow + 1 < layout.rows) {
    observed.emplace_back(scenario.heatedRow + 1, scenario.heatedCol);
    out.cellLabels.push_back("bit-line neighbour");
  }
  if (scenario.heatedRow + 1 < layout.rows && scenario.heatedCol + 1 < layout.cols) {
    observed.emplace_back(scenario.heatedRow + 1, scenario.heatedCol + 1);
    out.cellLabels.push_back("diagonal neighbour");
  }
  out.cellTemperature.assign(observed.size(), {});

  // March: (C/dt + A) T_new = C/dt T_old + q + dirichletRhs. The operator is
  // frozen for the whole march, so the preconditioner (IC(0) by default) is
  // computed on the first step and reused afterwards; the CG scratch lives
  // in the persistent workspace.
  s.temperature.assign(n, scenario.ambientK);
  s.rhs.resize(n);
  const std::size_t steps =
      static_cast<std::size_t>(std::ceil(scenario.tStop / scenario.dt));
  out.converged = true;
  const auto record = [&](double t) {
    out.time.push_back(t);
    for (std::size_t si = 0; si < observed.size(); ++si) {
      double acc = 0.0;
      const auto& cell = model.cell(observed[si].first, observed[si].second);
      for (const std::size_t v : cell.filamentVoxels) acc += s.temperature[v];
      out.cellTemperature[si].push_back(
          acc / static_cast<double>(cell.filamentVoxels.size()));
    }
  };
  record(0.0);
  // The transient operator always covers the whole structured grid, so the
  // multigrid auto-upgrade applies exactly as in DiffusionSolver; with the
  // operator frozen across steps the hierarchy is built only once.
  nh::util::CgOptions cgOptions =
      toCgOptions(options, grid.nx(), grid.ny(), grid.nz());
  for (std::size_t step = 1; step <= steps; ++step) {
    for (std::size_t v = 0; v < n; ++v) {
      s.rhs[v] = s.cOverDt[v] * s.temperature[v] + s.source[v] + s.steadyRhs[v];
    }
    const auto stats = nh::util::solveConjugateGradient(s.matrix, s.rhs,
                                                        s.temperature, cgOptions,
                                                        &s.cg);
    cgOptions.reusePreconditioner = true;  // operator frozen across steps
    if (!stats.converged) {
      out.converged = false;
      break;
    }
    record(static_cast<double>(step) * scenario.dt);
  }
  return out;
}

TransientSolution solveThermalStep(const TransientScenario& scenario,
                                   const DiffusionOptions& options) {
  ThermalTransientSolver solver;
  return solver.solve(scenario, options);
}

}  // namespace nh::fem
