#include "fem/grid.hpp"

#include <stdexcept>

namespace nh::fem {

VoxelGrid::VoxelGrid(std::size_t nx, std::size_t ny, std::size_t nz, double h,
                     Material fill)
    : nx_(nx), ny_(ny), nz_(nz), h_(h) {
  if (nx == 0 || ny == 0 || nz == 0) {
    throw std::invalid_argument("VoxelGrid: dimensions must be > 0");
  }
  if (!(h > 0.0)) throw std::invalid_argument("VoxelGrid: voxel size must be > 0");
  material_.assign(nx * ny * nz, fill);
}

Voxel VoxelGrid::voxel(std::size_t linear) const {
  Voxel v;
  v.i = linear % nx_;
  v.j = (linear / nx_) % ny_;
  v.k = linear / (nx_ * ny_);
  return v;
}

std::size_t VoxelGrid::countMaterial(Material m) const {
  std::size_t count = 0;
  for (const Material x : material_) {
    if (x == m) ++count;
  }
  return count;
}

}  // namespace nh::fem
