#include "fem/diffusion.hpp"

#include <cmath>
#include <stdexcept>

namespace nh::fem {

namespace {

/// Harmonic mean of two face coefficients (consistent FV flux across
/// material discontinuities); zero when either side is zero.
double faceCoefficient(double a, double b) {
  if (a <= 0.0 || b <= 0.0) return 0.0;
  return 2.0 * a * b / (a + b);
}

/// Sentinel for "voxel is pinned".
constexpr std::size_t kPinned = static_cast<std::size_t>(-1);

struct Indexer {
  std::vector<std::size_t> toFree;   ///< voxel -> free index or kPinned.
  std::vector<std::size_t> toVoxel;  ///< free index -> voxel.
  std::vector<double> pinValue;      ///< per-voxel pin value (valid when pinned).
};

Indexer buildIndexer(const DiffusionProblem& p) {
  const std::size_t n = p.grid->voxelCount();
  Indexer idx;
  idx.toFree.assign(n, 0);
  idx.pinValue.assign(n, 0.0);
  std::vector<bool> pinned(n, false);
  for (const auto& pin : p.pins) {
    if (pin.voxel >= n) throw std::out_of_range("DiffusionProblem: pin out of range");
    if (pinned[pin.voxel] && idx.pinValue[pin.voxel] != pin.value) {
      throw std::invalid_argument("DiffusionProblem: conflicting pin values");
    }
    pinned[pin.voxel] = true;
    idx.pinValue[pin.voxel] = pin.value;
  }
  idx.toVoxel.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (pinned[v]) {
      idx.toFree[v] = kPinned;
    } else {
      idx.toFree[v] = idx.toVoxel.size();
      idx.toVoxel.push_back(v);
    }
  }
  return idx;
}

/// Apply a function to each (neighbour, faceConductance) of voxel (i,j,k).
/// The face conductance for cubic voxels of edge h is c_face * h (area h^2
/// over distance h).
template <typename Fn>
void forEachNeighbour(const VoxelGrid& grid, const std::vector<double>& coef,
                      std::size_t i, std::size_t j, std::size_t k, Fn&& fn) {
  const double h = grid.voxelSize();
  const std::size_t v = grid.index(i, j, k);
  const double cv = coef[v];
  const auto visit = [&](std::size_t ni, std::size_t nj, std::size_t nk) {
    const std::size_t nv = grid.index(ni, nj, nk);
    const double g = faceCoefficient(cv, coef[nv]) * h;
    if (g > 0.0) fn(nv, g);
  };
  if (i > 0) visit(i - 1, j, k);
  if (i + 1 < grid.nx()) visit(i + 1, j, k);
  if (j > 0) visit(i, j - 1, k);
  if (j + 1 < grid.ny()) visit(i, j + 1, k);
  if (k > 0) visit(i, j, k - 1);
  if (k + 1 < grid.nz()) visit(i, j, k + 1);
}

void validateProblem(const DiffusionProblem& p) {
  if (p.grid == nullptr) throw std::invalid_argument("DiffusionProblem: null grid");
  const std::size_t n = p.grid->voxelCount();
  if (p.coefficient.size() != n) {
    throw std::invalid_argument("DiffusionProblem: coefficient size mismatch");
  }
  if (!p.sourcePerVoxel.empty() && p.sourcePerVoxel.size() != n) {
    throw std::invalid_argument("DiffusionProblem: source size mismatch");
  }
  if (!p.bottomPlaneDirichlet && p.pins.empty()) {
    throw std::invalid_argument(
        "DiffusionProblem: pure-Neumann problem is singular; add a Dirichlet "
        "plane or pins");
  }
}

}  // namespace

DiffusionSolution solveDiffusion(const DiffusionProblem& problem,
                                 const DiffusionOptions& options,
                                 const std::vector<double>* initialGuess) {
  validateProblem(problem);
  const VoxelGrid& grid = *problem.grid;
  const std::size_t n = grid.voxelCount();
  const double h = grid.voxelSize();

  const Indexer idx = buildIndexer(problem);
  const std::size_t nFree = idx.toVoxel.size();

  nh::util::TripletBuilder builder(nFree, nFree);
  nh::util::Vector rhs(nFree, 0.0);

  for (std::size_t f = 0; f < nFree; ++f) {
    const std::size_t v = idx.toVoxel[f];
    const auto vox = grid.voxel(v);
    double diag = 0.0;

    forEachNeighbour(grid, problem.coefficient, vox.i, vox.j, vox.k,
                     [&](std::size_t nv, double g) {
                       diag += g;
                       if (idx.toFree[nv] == kPinned) {
                         rhs[f] += g * idx.pinValue[nv];
                       } else {
                         builder.add(f, idx.toFree[nv], -g);
                       }
                     });

    // Dirichlet bottom plane: half-cell distance to the boundary face.
    if (problem.bottomPlaneDirichlet && vox.k == 0) {
      const double g = 2.0 * problem.coefficient[v] * h;
      diag += g;
      rhs[f] += g * problem.bottomPlaneValue;
    }

    if (!problem.sourcePerVoxel.empty()) rhs[f] += problem.sourcePerVoxel[v];
    // Tiny diagonal shift keeps voxels fully surrounded by zero-coefficient
    // material (e.g. oxide voxels in a potential solve) well-defined.
    builder.add(f, f, diag + 1e-30);
  }

  const auto matrix = nh::util::SparseMatrix::fromTriplets(builder);

  nh::util::Vector x(nFree, 0.0);
  if (initialGuess != nullptr && initialGuess->size() == n) {
    for (std::size_t f = 0; f < nFree; ++f) x[f] = (*initialGuess)[idx.toVoxel[f]];
  } else if (problem.bottomPlaneDirichlet) {
    for (auto& value : x) value = problem.bottomPlaneValue;
  }

  DiffusionSolution solution;
  solution.stats = nh::util::solveConjugateGradient(matrix, rhs, x, options.relTol,
                                                    options.maxIterations);

  solution.field.assign(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    solution.field[v] =
        idx.toFree[v] == kPinned ? idx.pinValue[v] : x[idx.toFree[v]];
  }
  return solution;
}

double DiffusionSolution::fluxFromPins(const DiffusionProblem& problem,
                                       const std::vector<std::size_t>& pinVoxels) const {
  const VoxelGrid& grid = *problem.grid;
  std::vector<bool> inSet(grid.voxelCount(), false);
  for (const std::size_t v : pinVoxels) inSet[v] = true;

  double flux = 0.0;
  for (const std::size_t v : pinVoxels) {
    const auto vox = grid.voxel(v);
    forEachNeighbour(grid, problem.coefficient, vox.i, vox.j, vox.k,
                     [&](std::size_t nv, double g) {
                       if (!inSet[nv]) flux += g * (field[v] - field[nv]);
                     });
  }
  return flux;
}

std::vector<double> DiffusionSolution::dissipationPerVoxel(
    const DiffusionProblem& problem) const {
  const VoxelGrid& grid = *problem.grid;
  std::vector<double> power(grid.voxelCount(), 0.0);
  for (std::size_t k = 0; k < grid.nz(); ++k) {
    for (std::size_t j = 0; j < grid.ny(); ++j) {
      for (std::size_t i = 0; i < grid.nx(); ++i) {
        const std::size_t v = grid.index(i, j, k);
        forEachNeighbour(grid, problem.coefficient, i, j, k,
                         [&](std::size_t nv, double g) {
                           if (nv < v) return;  // visit each face once
                           const double dU = field[v] - field[nv];
                           const double p = g * dU * dU;
                           power[v] += 0.5 * p;
                           power[nv] += 0.5 * p;
                         });
      }
    }
  }
  return power;
}

}  // namespace nh::fem
