#include "fem/diffusion.hpp"

#include <cmath>
#include <stdexcept>

namespace nh::fem {

namespace {

/// Harmonic mean of two face coefficients (consistent FV flux across
/// material discontinuities); zero when either side is zero.
double faceCoefficient(double a, double b) {
  if (a <= 0.0 || b <= 0.0) return 0.0;
  return 2.0 * a * b / (a + b);
}

/// Sentinel for "voxel is pinned".
constexpr std::size_t kPinned = static_cast<std::size_t>(-1);

struct Indexer {
  std::vector<std::size_t> toFree;   ///< voxel -> free index or kPinned.
  std::vector<std::size_t> toVoxel;  ///< free index -> voxel.
  std::vector<double> pinValue;      ///< per-voxel pin value (valid when pinned).
  std::vector<bool> pinned;          ///< per-voxel pinned flag.

  /// (Re)build for \p p, reusing this object's storage.
  void build(const DiffusionProblem& p) {
    const std::size_t n = p.grid->voxelCount();
    toFree.assign(n, 0);
    pinValue.assign(n, 0.0);
    pinned.assign(n, false);
    for (const auto& pin : p.pins) {
      if (pin.voxel >= n) throw std::out_of_range("DiffusionProblem: pin out of range");
      if (pinned[pin.voxel] && pinValue[pin.voxel] != pin.value) {
        throw std::invalid_argument("DiffusionProblem: conflicting pin values");
      }
      pinned[pin.voxel] = true;
      pinValue[pin.voxel] = pin.value;
    }
    toVoxel.clear();
    toVoxel.reserve(n);
    for (std::size_t v = 0; v < n; ++v) {
      if (pinned[v]) {
        toFree[v] = kPinned;
      } else {
        toFree[v] = toVoxel.size();
        toVoxel.push_back(v);
      }
    }
  }
};

/// Apply a function to each (neighbour, faceConductance) of voxel (i,j,k).
/// The face conductance for cubic voxels of edge h is c_face * h (area h^2
/// over distance h). Faces with zero conductance are visited too (g == 0):
/// the assembly stamps them as explicit zeros so the sparsity structure
/// depends only on the grid, never on the coefficient field.
template <typename Fn>
void forEachNeighbour(const VoxelGrid& grid, const std::vector<double>& coef,
                      std::size_t i, std::size_t j, std::size_t k, Fn&& fn) {
  const double h = grid.voxelSize();
  const std::size_t v = grid.index(i, j, k);
  const double cv = coef[v];
  const auto visit = [&](std::size_t ni, std::size_t nj, std::size_t nk) {
    const std::size_t nv = grid.index(ni, nj, nk);
    fn(nv, faceCoefficient(cv, coef[nv]) * h);
  };
  if (i > 0) visit(i - 1, j, k);
  if (i + 1 < grid.nx()) visit(i + 1, j, k);
  if (j > 0) visit(i, j - 1, k);
  if (j + 1 < grid.ny()) visit(i, j + 1, k);
  if (k > 0) visit(i, j, k - 1);
  if (k + 1 < grid.nz()) visit(i, j, k + 1);
}

void validateProblem(const DiffusionProblem& p) {
  if (p.grid == nullptr) throw std::invalid_argument("DiffusionProblem: null grid");
  const std::size_t n = p.grid->voxelCount();
  if (p.coefficient.size() != n) {
    throw std::invalid_argument("DiffusionProblem: coefficient size mismatch");
  }
  if (!p.sourcePerVoxel.empty() && p.sourcePerVoxel.size() != n) {
    throw std::invalid_argument("DiffusionProblem: source size mismatch");
  }
  if (!p.bottomPlaneDirichlet && p.pins.empty()) {
    throw std::invalid_argument(
        "DiffusionProblem: pure-Neumann problem is singular; add a Dirichlet "
        "plane or pins");
  }
}

}  // namespace

nh::util::CgOptions toCgOptions(const DiffusionOptions& options,
                                std::size_t gridNx, std::size_t gridNy,
                                std::size_t gridNz) {
  nh::util::CgOptions cg;
  cg.relTol = options.relTol;
  cg.maxIter = options.maxIterations;
  cg.preconditioner = options.preconditioner;
  cg.gridNx = gridNx;
  cg.gridNy = gridNy;
  cg.gridNz = gridNz;
  cg.multigridSmoother = options.multigridSmoother;
  const std::size_t voxels = gridNx * gridNy * gridNz;
  if (options.multigridMinVoxels > 0 && voxels >= options.multigridMinVoxels &&
      options.preconditioner ==
          nh::util::CgPreconditioner::IncompleteCholesky) {
    cg.preconditioner = nh::util::CgPreconditioner::Multigrid;
  }
  return cg;
}

struct DiffusionSolver::State {
  // ---- structural cache key -------------------------------------------------
  // The FV adjacency is a pure function of the grid *dimensions* plus the
  // pin locations (a grid pointer would falsely match a different grid
  // reusing the same address; voxelCount alone matches permuted dims).
  std::size_t nx = 0, ny = 0, nz = 0;
  bool bottomDirichlet = false;
  std::vector<std::size_t> pinVoxels;  ///< pin locations, in problem order.
  bool structureValid = false;

  // ---- reusable assembly + solve workspace ----------------------------------
  Indexer idx;
  nh::util::TripletBuilder builder{0, 0};
  nh::util::SparsityPattern pattern;
  nh::util::SparseMatrix matrix;
  nh::util::Vector rhs;
  nh::util::Vector x;
  nh::util::CgWorkspace cg;
  /// Matrix values of the previous solve: when a re-assembly reproduces
  /// them bit-for-bit (sweeps that only change sources or pin values), the
  /// cached preconditioner -- IC(0) factor or multigrid hierarchy -- is
  /// still exact and is reused instead of rebuilt.
  std::vector<double> lastValues;

  bool structureMatches(const DiffusionProblem& p) const {
    if (!structureValid || p.grid->nx() != nx || p.grid->ny() != ny ||
        p.grid->nz() != nz || p.bottomPlaneDirichlet != bottomDirichlet ||
        p.pins.size() != pinVoxels.size()) {
      return false;
    }
    for (std::size_t i = 0; i < p.pins.size(); ++i) {
      if (p.pins[i].voxel != pinVoxels[i]) return false;
    }
    return true;
  }

  void captureStructure(const DiffusionProblem& p) {
    nx = p.grid->nx();
    ny = p.grid->ny();
    nz = p.grid->nz();
    bottomDirichlet = p.bottomPlaneDirichlet;
    pinVoxels.clear();
    pinVoxels.reserve(p.pins.size());
    for (const auto& pin : p.pins) pinVoxels.push_back(pin.voxel);
    structureValid = true;
  }
};

DiffusionSolver::DiffusionSolver() : state_(std::make_unique<State>()) {}
DiffusionSolver::~DiffusionSolver() = default;
DiffusionSolver::DiffusionSolver(DiffusionSolver&&) noexcept = default;
DiffusionSolver& DiffusionSolver::operator=(DiffusionSolver&&) noexcept = default;

DiffusionSolution DiffusionSolver::solve(const DiffusionProblem& problem,
                                         const DiffusionOptions& options,
                                         const std::vector<double>* initialGuess) {
  validateProblem(problem);
  State& s = *state_;
  const VoxelGrid& grid = *problem.grid;
  const std::size_t n = grid.voxelCount();
  const double h = grid.voxelSize();

  const bool reuseStructure = s.structureMatches(problem);
  // The indexer is rebuilt every solve (pin *values* may change); with a
  // structural match this touches only preallocated storage.
  s.idx.build(problem);
  const std::size_t nFree = s.idx.toVoxel.size();

  if (!reuseStructure || s.builder.rows() != nFree) {
    s.builder = nh::util::TripletBuilder(nFree, nFree);
  } else {
    s.builder.clear();
  }
  if (s.rhs.size() != nFree) s.rhs.assign(nFree, 0.0);
  std::fill(s.rhs.begin(), s.rhs.end(), 0.0);

  // Numeric stamp: one identical (row, col) sequence per structure, values
  // free to change -- the contract SparsityPattern::assemble relies on.
  for (std::size_t f = 0; f < nFree; ++f) {
    const std::size_t v = s.idx.toVoxel[f];
    const auto vox = grid.voxel(v);
    double diag = 0.0;

    forEachNeighbour(grid, problem.coefficient, vox.i, vox.j, vox.k,
                     [&](std::size_t nv, double g) {
                       diag += g;
                       if (s.idx.toFree[nv] == kPinned) {
                         s.rhs[f] += g * s.idx.pinValue[nv];
                       } else {
                         s.builder.add(f, s.idx.toFree[nv], -g);
                       }
                     });

    // Dirichlet bottom plane: half-cell distance to the boundary face.
    if (problem.bottomPlaneDirichlet && vox.k == 0) {
      const double g = 2.0 * problem.coefficient[v] * h;
      diag += g;
      s.rhs[f] += g * problem.bottomPlaneValue;
    }

    if (!problem.sourcePerVoxel.empty()) s.rhs[f] += problem.sourcePerVoxel[v];
    // Tiny diagonal shift keeps voxels fully surrounded by zero-coefficient
    // material (e.g. oxide voxels in a potential solve) well-defined.
    s.builder.add(f, f, diag + 1e-30);
  }

  if (!reuseStructure) {
    s.pattern = nh::util::SparsityPattern::fromTriplets(s.builder);
    s.captureStructure(problem);
    s.lastValues.clear();
  }
  s.pattern.assemble(s.builder, s.matrix);
  // O(nnz) value comparison: frozen-operator sweep points skip the
  // preconditioner rebuild (the dominant cost of a multigrid solve).
  const bool sameOperator =
      reuseStructure && s.matrix.values() == s.lastValues;
  if (!sameOperator) s.lastValues = s.matrix.values();

  if (s.x.size() != nFree) s.x.resize(nFree);
  if (initialGuess != nullptr && initialGuess->size() == n) {
    for (std::size_t f = 0; f < nFree; ++f) s.x[f] = (*initialGuess)[s.idx.toVoxel[f]];
  } else if (problem.bottomPlaneDirichlet) {
    std::fill(s.x.begin(), s.x.end(), problem.bottomPlaneValue);
  } else {
    std::fill(s.x.begin(), s.x.end(), 0.0);
  }

  // Pin-free systems cover the whole structured grid, so the Multigrid
  // preconditioner is applicable (pinned systems eliminate voxels, leaving
  // an irregular index set GMG cannot coarsen -- its internal fallback to
  // IC(0) covers explicit Multigrid requests there; zero dims disable it).
  nh::util::CgOptions cgOptions =
      problem.pins.empty()
          ? toCgOptions(options, grid.nx(), grid.ny(), grid.nz())
          : toCgOptions(options, 0, 0, 0);
  cgOptions.reusePreconditioner = sameOperator;

  DiffusionSolution solution;
  solution.stats =
      nh::util::solveConjugateGradient(s.matrix, s.rhs, s.x, cgOptions, &s.cg);

  solution.field.assign(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    solution.field[v] =
        s.idx.toFree[v] == kPinned ? s.idx.pinValue[v] : s.x[s.idx.toFree[v]];
  }
  return solution;
}

DiffusionSolution solveDiffusion(const DiffusionProblem& problem,
                                 const DiffusionOptions& options,
                                 const std::vector<double>* initialGuess) {
  DiffusionSolver solver;
  return solver.solve(problem, options, initialGuess);
}

double DiffusionSolution::fluxFromPins(const DiffusionProblem& problem,
                                       const std::vector<std::size_t>& pinVoxels) const {
  const VoxelGrid& grid = *problem.grid;
  std::vector<bool> inSet(grid.voxelCount(), false);
  for (const std::size_t v : pinVoxels) inSet[v] = true;

  double flux = 0.0;
  for (const std::size_t v : pinVoxels) {
    const auto vox = grid.voxel(v);
    forEachNeighbour(grid, problem.coefficient, vox.i, vox.j, vox.k,
                     [&](std::size_t nv, double g) {
                       if (!inSet[nv]) flux += g * (field[v] - field[nv]);
                     });
  }
  return flux;
}

std::vector<double> DiffusionSolution::dissipationPerVoxel(
    const DiffusionProblem& problem) const {
  const VoxelGrid& grid = *problem.grid;
  std::vector<double> power(grid.voxelCount(), 0.0);
  for (std::size_t k = 0; k < grid.nz(); ++k) {
    for (std::size_t j = 0; j < grid.ny(); ++j) {
      for (std::size_t i = 0; i < grid.nx(); ++i) {
        const std::size_t v = grid.index(i, j, k);
        forEachNeighbour(grid, problem.coefficient, i, j, k,
                         [&](std::size_t nv, double g) {
                           if (nv < v) return;  // visit each face once
                           const double dU = field[v] - field[nv];
                           const double p = g * dU * dU;
                           power[v] += 0.5 * p;
                           power[nv] += 0.5 * p;
                         });
      }
    }
  }
  return power;
}

}  // namespace nh::fem
