#pragma once
/// \file transient.hpp
/// Time-dependent heat conduction on the voxel grid:
///   c(x) dT/dt = div( kappa(x) grad T ) + q(x)
/// discretised with implicit (backward) Euler on the same finite-volume
/// operator as the steady solver, so the steady state of the transient run
/// matches solveThermal() exactly.
///
/// Purpose in this project: derive, from first principles, the thermal time
/// constants that the circuit-level engines *assume* -- the filament
/// self-heating tau (jart::Params::tauThermal) and the slower crosstalk
/// propagation delay to the neighbours -- and thereby validate the
/// quasi-static treatment of 10-100 ns pulses.

#include <memory>
#include <vector>

#include "fem/geometry.hpp"
#include "fem/thermal.hpp"

namespace nh::fem {

/// Volumetric heat capacity [J m^-3 K^-1] per material.
struct HeatCapacityTable {
  /// Literature thin-film values (density x specific heat).
  static HeatCapacityTable defaults();
  double capacity(Material m) const;
  double values[static_cast<std::size_t>(Material::Count)] = {};
};

/// Step-response scenario: the selected cell starts dissipating \p power at
/// t = 0 from a uniform ambient temperature field.
struct TransientScenario {
  const CrossbarModel3D* model = nullptr;
  MaterialTable materials = MaterialTable::defaults();
  HeatCapacityTable capacities = HeatCapacityTable::defaults();
  double ambientK = 300.0;
  std::size_t heatedRow = 2;
  std::size_t heatedCol = 2;
  double power = 1e-4;    ///< [W] into the heated cell's filament.
  double tStop = 20e-9;   ///< [s].
  double dt = 0.25e-9;    ///< Implicit-Euler step [s].
};

/// Recorded step response.
struct TransientSolution {
  std::vector<double> time;              ///< Sample times [s].
  /// Filament-averaged temperature of selected cells at each sample:
  /// [0] = heated cell, [1] = word-line neighbour, [2] = bit-line
  /// neighbour, [3] = diagonal neighbour (where they exist).
  std::vector<std::vector<double>> cellTemperature;
  std::vector<std::string> cellLabels;
  bool converged = false;

  /// Time to reach 63.2% of the final rise for series \p index [s];
  /// NaN when the series never crosses.
  double riseTimeConstant(std::size_t index) const;
};

/// Run the step response. Each implicit-Euler step solves the SPD system
/// (C/dt + A) T_new = C/dt T_old + q with conjugate gradients, warm-started
/// from the previous step.
TransientSolution solveThermalStep(const TransientScenario& scenario,
                                   const DiffusionOptions& options = {});

/// Structure-reusing form of solveThermalStep(): repeated runs on the same
/// grid reuse the cached sparsity pattern, CSR matrix, field vectors, and CG
/// scratch. Within one run the implicit-Euler operator is frozen, so the
/// IC(0) preconditioner is factored once and reused for every step.
class ThermalTransientSolver {
 public:
  ThermalTransientSolver();
  ~ThermalTransientSolver();
  ThermalTransientSolver(ThermalTransientSolver&&) noexcept;
  ThermalTransientSolver& operator=(ThermalTransientSolver&&) noexcept;

  TransientSolution solve(const TransientScenario& scenario,
                          const DiffusionOptions& options = {});

 private:
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace nh::fem
