#pragma once
/// \file diffusion.hpp
/// Generic steady-state scalar diffusion solver on a voxel grid:
///   -div( c(x) grad u ) = s(x)
/// discretised with the finite-volume method (harmonic-mean face
/// coefficients, which is the consistent choice across material
/// discontinuities). Used twice:
///  * heat:      c = kappa, u = T, s = Joule power density   (paper Eq. 1)
///  * potential: c = sigma, u = phi, s = 0 with contacts     (paper Eq. 2)
///
/// Boundary conditions: Neumann (insulated) everywhere by default, an
/// optional Dirichlet bottom plane (z = 0), and optional per-voxel Dirichlet
/// pins (electrode contacts). Pinned voxels are eliminated from the system,
/// keeping it symmetric positive definite for the conjugate-gradient solver.

#include <cstddef>
#include <memory>
#include <vector>

#include "fem/grid.hpp"
#include "util/linsolve.hpp"
#include "util/sparse.hpp"

namespace nh::fem {

/// A Dirichlet-pinned voxel.
struct PinnedVoxel {
  std::size_t voxel = 0;
  double value = 0.0;
};

/// Problem description for solveDiffusion().
struct DiffusionProblem {
  const VoxelGrid* grid = nullptr;
  /// Per-voxel coefficient (kappa or sigma); size == voxelCount().
  std::vector<double> coefficient;
  /// Source integrated per voxel [W] or [A]; empty means zero.
  std::vector<double> sourcePerVoxel;
  /// Dirichlet plane at the grid bottom (z=0 outer face).
  bool bottomPlaneDirichlet = false;
  double bottomPlaneValue = 0.0;
  /// Additional pinned voxels (contacts). Duplicate pins must agree.
  std::vector<PinnedVoxel> pins;
};

/// Solver tolerances.
struct DiffusionOptions {
  double relTol = 1e-8;
  std::size_t maxIterations = 20000;
  /// CG preconditioner. IC(0) sharply cuts the iteration count on the FV
  /// operators and falls back to Jacobi automatically on breakdown;
  /// Multigrid keeps the count (near) grid-size independent on pin-free
  /// structured systems and falls back to IC(0) everywhere else.
  nh::util::CgPreconditioner preconditioner =
      nh::util::CgPreconditioner::IncompleteCholesky;
  /// Auto-upgrade IC(0) to the geometric-multigrid preconditioner when the
  /// system is pin-free (the matrix covers the whole structured grid) and
  /// has at least this many voxels -- the regime where IC(0)'s growing
  /// iteration count becomes the scaling wall. 0 disables the upgrade; an
  /// explicit preconditioner other than IC(0) is never overridden.
  std::size_t multigridMinVoxels = 32768;
  /// Smoother for the multigrid V-cycle (whether requested explicitly or by
  /// auto-upgrade). The Lexicographic default keeps the recorded experiment
  /// baselines bit-identical; RedBlack (cached inverse diagonal, per-color
  /// parallel sweeps) is the opt-in fast path. Ignored off the MG path.
  nh::util::MultigridSmoother multigridSmoother =
      nh::util::MultigridSmoother::Lexicographic;

  /// Exact comparison (study-dedup cache key component).
  bool operator==(const DiffusionOptions&) const = default;
};

/// Translate DiffusionOptions into the CG controls for a structured FV
/// system of gridNx x gridNy x gridNz free unknowns (pass zeros when the
/// free set does not cover the whole grid), applying the multigrid
/// auto-upgrade policy. Shared by DiffusionSolver and
/// ThermalTransientSolver so the policy has one home.
nh::util::CgOptions toCgOptions(const DiffusionOptions& options,
                                std::size_t gridNx, std::size_t gridNy,
                                std::size_t gridNz);

/// Result of a diffusion solve.
struct DiffusionSolution {
  std::vector<double> field;            ///< Per-voxel solution (pins included).
  nh::util::IterativeResult stats;      ///< CG convergence report.
  bool converged() const { return stats.converged; }

  /// Total flux [W or A] flowing from the pinned voxel set \p pinVoxels into
  /// the free domain, given the same problem that produced this solution.
  /// Positive = out of the pins.
  double fluxFromPins(const DiffusionProblem& problem,
                      const std::vector<std::size_t>& pinVoxels) const;

  /// Per-voxel dissipation c * |grad u|^2 integrated per voxel [W]; only
  /// meaningful for the potential solve. Face dissipation is split evenly
  /// between the two adjacent voxels.
  std::vector<double> dissipationPerVoxel(const DiffusionProblem& problem) const;
};

/// Structure-reusing diffusion solver. The sparsity structure of the FV
/// system is fixed by the grid and the pin *locations*; sweeps only change
/// coefficients, sources, and pin *values*. This solver runs the symbolic
/// assembly (pattern extraction) once per structure and afterwards refills
/// the cached CSR matrix, right-hand side, solution vector, and CG scratch
/// in place -- repeated solves allocate nothing beyond the returned field.
/// A structural change (different grid or pin locations) is detected
/// automatically and triggers a fresh symbolic phase.
class DiffusionSolver {
 public:
  DiffusionSolver();
  ~DiffusionSolver();
  DiffusionSolver(DiffusionSolver&&) noexcept;
  DiffusionSolver& operator=(DiffusionSolver&&) noexcept;

  /// Solve; equivalent to solveDiffusion() but with cross-call reuse.
  /// \p initialGuess (optional, full-size field) warm-starts the CG
  /// iteration (power sweeps re-use previous solutions).
  DiffusionSolution solve(const DiffusionProblem& problem,
                          const DiffusionOptions& options = {},
                          const std::vector<double>* initialGuess = nullptr);

 private:
  struct State;
  std::unique_ptr<State> state_;
};

/// One-shot convenience wrapper around DiffusionSolver; \p initialGuess
/// (optional, full-size field) warm-starts the CG iteration.
DiffusionSolution solveDiffusion(const DiffusionProblem& problem,
                                 const DiffusionOptions& options = {},
                                 const std::vector<double>* initialGuess = nullptr);

}  // namespace nh::fem
