#pragma once
/// \file materials.hpp
/// Material database for the 3-D crossbar model: thermal conductivity kappa
/// [W m^-1 K^-1] and electrical conductivity sigma [S/m] per material. The
/// filament conductivity is a per-simulation parameter ("the electric
/// conductivity ... of the filament is adjusted so that a certain current
/// flows through the device", paper Sec. IV-A); its thermal conductivity
/// follows from the Wiedemann-Franz law.

#include <array>
#include <cstdint>
#include <string>

namespace nh::fem {

/// Voxel material identifiers.
enum class Material : std::uint8_t {
  SiSubstrate = 0,   ///< Bulk silicon handle wafer.
  SiO2 = 1,          ///< Buried oxide / inter-line fill / capping.
  Electrode = 2,     ///< Pt word/bit lines.
  SwitchingOxide = 3,///< HfO2 cell oxide (off-filament region).
  Filament = 4,      ///< Conducting filament (per-cell sigma).
  Count = 5,
};

/// Bulk properties of one material.
struct MaterialProps {
  std::string name;
  double kappa = 0.0;  ///< Thermal conductivity [W m^-1 K^-1].
  double sigma = 0.0;  ///< Electrical conductivity [S/m].
};

/// Lookup table Material -> properties.
class MaterialTable {
 public:
  /// Thin-film literature values for the Pt/HfO2/TiOx/Ti nanocrossbar stack
  /// the JART model was fitted to. Thin-film kappa is substantially below
  /// bulk (boundary scattering), which is what makes the crosstalk strong
  /// enough to matter.
  static MaterialTable defaults();

  const MaterialProps& props(Material m) const;
  MaterialProps& props(Material m);

  double kappa(Material m) const { return props(m).kappa; }
  double sigma(Material m) const { return props(m).sigma; }

  /// Wiedemann-Franz thermal conductivity for a metal-like conductor:
  /// kappa = L * sigma * T.
  static double wiedemannFranz(double sigma, double temperatureK);

 private:
  std::array<MaterialProps, static_cast<std::size_t>(Material::Count)> table_{};
};

}  // namespace nh::fem
