#include "fem/materials.hpp"

#include <stdexcept>

#include "util/units.hpp"

namespace nh::fem {

MaterialTable MaterialTable::defaults() {
  MaterialTable t;
  // Thin-film values (boundary scattering suppresses kappa vs bulk).
  t.props(Material::SiSubstrate) = {"Si", 90.0, 1e-3};
  t.props(Material::SiO2) = {"SiO2", 1.2, 1e-14};
  t.props(Material::Electrode) = {"Pt", 40.0, 5.0e6};
  t.props(Material::SwitchingOxide) = {"HfO2", 0.8, 1e-8};
  // Filament defaults correspond to an LRS cell passing ~100 uA at ~1 V
  // through a 30 nm x 5 nm plug; overridden per cell in coupled solves.
  t.props(Material::Filament) = {"filament", 4.0, 1.5e5};
  return t;
}

const MaterialProps& MaterialTable::props(Material m) const {
  const auto i = static_cast<std::size_t>(m);
  if (i >= table_.size()) throw std::out_of_range("MaterialTable::props");
  return table_[i];
}

MaterialProps& MaterialTable::props(Material m) {
  const auto i = static_cast<std::size_t>(m);
  if (i >= table_.size()) throw std::out_of_range("MaterialTable::props");
  return table_[i];
}

double MaterialTable::wiedemannFranz(double sigma, double temperatureK) {
  return nh::util::kLorenzNumber * sigma * temperatureK;
}

}  // namespace nh::fem
