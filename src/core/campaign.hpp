#pragma once
/// \file campaign.hpp
/// Statistical campaign layer: Monte-Carlo at scale over device variability.
/// Where core/variability runs a handful of serial trials and reports point
/// estimates, a campaign runs thousands of trials batched through the thread
/// pool and reports *distributions*: flip rates with Wilson confidence
/// intervals, pulses-to-flip quantiles with bootstrap intervals, and an
/// optional CMS-style per-cell array-health matrix (disturb rate per cell
/// over trials). A STAR-style blinding layer (BlindedAbStudy) compares two
/// configurations as opaque arms whose labels stay salted-hashed until an
/// explicit unblind() freezes the analysis record.
///
/// Reproducibility contract: trial i draws every random number from
/// util::Rng::forStream(config.seed, i), a counter-based stream that depends
/// only on (seed, i) — never on which thread ran the trial, the batch size,
/// or the completion order. Results are therefore bit-identical for any
/// thread count and any batch size; tests pin this. See docs/campaigns.md.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "util/stats.hpp"

namespace nh::core {

/// What to do when a trial throws (solver failure, injected fault).
enum class TrialFailurePolicy {
  Abort,  ///< Rethrow: the campaign fails (default).
  Skip,   ///< Record the trial as Failed and keep going; statistics are
          ///< computed over the OK trials only.
};

struct CampaignConfig {
  StudyConfig base;
  HammerPulse pulse;
  /// Monte-Carlo trials. Each trial perturbs base.cellParams with
  /// jart::Params::withVariability under its own counter-based RNG stream
  /// and runs a centre-cell reference attack on a fresh study.
  std::size_t trials = 1000;
  /// Log-normal sigma applied per trial.
  double sigma = 0.05;
  std::uint64_t seed = 2026;
  /// Give-up pulse budget per trial.
  std::size_t budget = 5'000'000;
  /// Bias scheme for the attack (Third models the V/3 countermeasure arm).
  xbar::BiasScheme scheme = xbar::BiasScheme::Half;
  /// Trials per thread-pool work item. Purely a scheduling granularity: the
  /// result is bit-identical for every value (tested).
  std::size_t batchSize = 64;
  /// Worker threads (0 = util::defaultThreadCount(), 1 = serial).
  std::size_t threads = 0;
  /// Two-sided confidence level for every reported interval.
  double confidence = 0.95;
  /// Resamples for the bootstrap interval on the median pulses-to-flip.
  std::size_t bootstrapResamples = 200;
  /// Record the per-cell disturb-rate matrix (CampaignResult::cellDisturbRate)
  /// by snapshotting the detector classification of every cell before and
  /// after each trial's attack. Costs one extra array scan per trial.
  bool recordCellHealth = false;
  TrialFailurePolicy onTrialFailure = TrialFailurePolicy::Abort;
  /// Observer called after each trial settles, with the trial index and the
  /// number of trials completed so far (monotonic, serialized). Runs on
  /// worker threads; must be thread-safe. Intended for progress display and
  /// for tests that cancel mid-campaign.
  std::function<void(std::size_t trial, std::size_t completed)> onTrialComplete;
};

/// Per-trial outcome, in trial order.
struct TrialOutcome {
  enum class Status { Ok, Failed };
  Status status = Status::Ok;
  bool flipped = false;
  std::size_t pulses = 0;  ///< Pulses-to-flip; 0 when not flipped.
  std::string error;       ///< Failure reason (Skip policy only).
  bool operator==(const TrialOutcome&) const = default;
};

/// Campaign outcome. All statistics are computed in a serial reduction over
/// the trial-indexed outcome slots, so the whole struct compares equal
/// across thread counts and batch sizes.
struct CampaignResult {
  std::size_t trials = 0;
  std::size_t trialsOk = 0;
  std::size_t trialsFailed = 0;  ///< Skip-policy failures.
  std::size_t flips = 0;
  /// flips / trialsOk (0 when every trial failed).
  double flipRate = 0.0;
  /// Wilson score interval for the flip rate at `confidence`.
  util::Interval flipRateCI;
  /// Pulses-to-flip of the flipped trials, in trial order.
  std::vector<std::size_t> pulsesPerFlip;
  /// Type-7 quantiles of pulsesPerFlip; all 0 when no trial flipped, and
  /// p10 == median == p90 for a single flip.
  double p10Pulses = 0.0;
  double medianPulses = 0.0;
  double p90Pulses = 0.0;
  /// Percentile-bootstrap interval for the median; {0, 0} when no flips.
  util::Interval medianPulsesCI;
  /// log10(max/min) over pulsesPerFlip; 0 for fewer than 2 flips.
  double spreadDecades = 0.0;
  double confidence = 0.95;
  /// Per-cell disturb rate (row-major healthRows x healthCols): the fraction
  /// of OK trials in which the cell's detector classification changed from
  /// its pre-attack snapshot. Aggressor cells are excluded (their LRS
  /// preparation is not a disturb event) and read exactly 0. Empty unless
  /// CampaignConfig::recordCellHealth.
  std::size_t healthRows = 0;
  std::size_t healthCols = 0;
  std::vector<double> cellDisturbRate;
  /// Per-trial outcomes, trial order.
  std::vector<TrialOutcome> outcomes;
  bool operator==(const CampaignResult&) const = default;
};

/// Run the campaign. Deterministic for (config); bit-identical for any
/// threads/batchSize. Honors the ambient cancellation token between trials
/// and wraps each trial in faultinject::Scope("trial:<i>") so NH_FAULT
/// policies can target a single trial. Per-trial perturbed studies are
/// constructed fresh (never through the process-wide study cache: thousands
/// of unique perturbed configs would evict the warm entries the experiment
/// catalog shares).
CampaignResult runCampaign(const CampaignConfig& config);

/// STAR-style blind A/B comparison (arXiv:1911.00596): two labelled
/// configurations are registered, immediately reduced to opaque arms
/// "arm A"/"arm B" by salted-hash ordering of their labels, and analyzed
/// blind. The true labels are unreachable until unblind(), which first
/// freezes the analysis record (a JSON summary of the blinded statistics)
/// and only then reveals the mapping — so conclusions are committed before
/// anyone knows which arm is which.
class BlindedAbStudy {
 public:
  /// Register two labelled arms. Which label becomes "arm A" is decided by
  /// a salted hash of (salt, label) — deterministic for a given salt, but
  /// uncorrelated with registration order.
  BlindedAbStudy(std::string labelX, CampaignConfig configX,
                 std::string labelY, CampaignConfig configY,
                 std::uint64_t salt);

  /// The opaque arm names, in presentation order: {"arm A", "arm B"}.
  static std::vector<std::string> armNames();

  /// Run both arms' campaigns (serially, arm A first). Idempotent.
  void run();
  bool ran() const { return ran_; }

  /// Blinded campaign result of an arm ("arm A" / "arm B"). Requires run().
  const CampaignResult& result(const std::string& armName) const;

  /// flipRate(arm A) - flipRate(arm B). Requires run().
  double flipRateDelta() const;

  /// True when the two flip-rate Wilson intervals are disjoint — the blinded
  /// statement "the arms differ at the campaign's confidence level".
  bool separated() const;

  bool unblinded() const { return unblinded_; }

  /// The frozen analysis record: a JSON document of the blinded statistics,
  /// rendered at the moment of unblinding and never modified afterwards.
  /// Contains only opaque arm names. Throws std::logic_error before
  /// unblind().
  const std::string& analysisRecord() const;

  /// Freeze the analysis record from the blinded results, then reveal the
  /// arm-name -> true-label mapping. Requires run(); idempotent after the
  /// first call. This is the only way to reach the labels.
  std::map<std::string, std::string> unblind();

  /// True label behind an arm name. Throws std::logic_error until unblind().
  const std::string& trueLabel(const std::string& armName) const;

 private:
  struct Arm {
    std::string label;
    CampaignConfig config;
    CampaignResult result;
  };
  std::size_t armIndex(const std::string& armName) const;

  Arm arms_[2];  // arms_[0] is "arm A".
  bool ran_ = false;
  bool unblinded_ = false;
  std::string record_;
};

}  // namespace nh::core
