#include "core/study.hpp"

#include <memory>
#include <stdexcept>

#include "fem/geometry.hpp"
#include "util/log.hpp"
#include "util/threadpool.hpp"

namespace nh::core {

AttackStudy::AttackStudy(StudyConfig config) : config_(std::move(config)) {
  if (config_.rows < 3 || config_.cols < 3) {
    throw std::invalid_argument("AttackStudy: need at least a 3x3 array");
  }

  if (config_.useFemAlphas) {
    fem::CrossbarLayout layout;
    layout.rows = config_.rows;
    layout.cols = config_.cols;
    layout.spacing = config_.spacing;
    layout.voxelSize = config_.femVoxelSize;
    const auto model = fem::CrossbarModel3D::build(layout);
    // Power sweep bracketing the hammered cell's dissipation (~0.1 mW).
    // extractAlpha chains the sweep's CG solves (each point warm-starts from
    // the previous field) and femOptions picks the preconditioner -- on
    // fine-voxel grids the solves run GMG-preconditioned CG.
    const auto extraction = fem::extractAlpha(
        model, fem::MaterialTable::defaults(), config_.rows / 2, config_.cols / 2,
        {0.05e-3, 0.10e-3, 0.15e-3}, config_.ambientK, config_.femOptions);
    alphas_ = xbar::AlphaTable::fromExtraction(extraction);
    nh::util::logInfo("AttackStudy: FEM alphas extracted, Rth=", extraction.rTh,
                      " K/W, nearest alpha=", alphas_.at(0, 1));
  } else {
    alphas_ = xbar::AlphaTable::analytic(config_.spacing);
  }

  arrayConfig_.rows = config_.rows;
  arrayConfig_.cols = config_.cols;
  arrayConfig_.cellParams = config_.cellParams;
  arrayConfig_.ambientK = config_.ambientK;
  // COMSOL -> Virtuoso hand-off: the FEM-extracted thermal resistance
  // replaces the compact-model default (paper Sec. IV).
  if (alphas_.rTh() > 0.0) arrayConfig_.cellParams.rThEff = alphas_.rTh();
}

AttackStudy::Bench AttackStudy::makeBench() const {
  Bench bench;
  bench.array = std::make_unique<xbar::CrossbarArray>(arrayConfig_);
  bench.array->fill(xbar::CellState::Hrs);
  bench.engine = std::make_unique<xbar::FastEngine>(*bench.array, alphas_,
                                                    config_.engineOptions);
  return bench;
}

AttackResult AttackStudy::attack(const AttackConfig& attackConfig) const {
  Bench bench = makeBench();
  AttackEngine engine(*bench.engine, config_.detector);
  return engine.run(attackConfig);
}

AttackResult AttackStudy::attackCenter(const HammerPulse& pulse,
                                       std::size_t maxPulses,
                                       std::size_t traceSamples) const {
  AttackConfig cfg;
  cfg.aggressors = {{config_.rows / 2, config_.cols / 2}};
  cfg.pulse = pulse;
  cfg.maxPulses = maxPulses;
  cfg.traceSamples = traceSamples;
  // Monitor the aggressor's word-line neighbour explicitly first (strongest
  // coupling; this is the cell Fig. 1 calls M2) plus all remaining HRS cells.
  cfg.victims.clear();
  const std::size_t cr = config_.rows / 2;
  const std::size_t cc = config_.cols / 2;
  if (cc > 0) cfg.victims.push_back({cr, cc - 1});
  if (cc + 1 < config_.cols) cfg.victims.push_back({cr, cc + 1});
  if (cr > 0) cfg.victims.push_back({cr - 1, cc});
  if (cr + 1 < config_.rows) cfg.victims.push_back({cr + 1, cc});
  return attack(cfg);
}

AttackResult AttackStudy::attackPattern(AttackPattern pattern,
                                        const HammerPulse& pulse,
                                        std::size_t maxPulses) const {
  const xbar::CellCoord victim{config_.rows / 2, config_.cols / 2};
  AttackConfig cfg;
  cfg.aggressors = patternAggressors(pattern, victim, config_.rows, config_.cols);
  cfg.pulse = pulse;
  cfg.maxPulses = maxPulses;
  cfg.victims = {victim};
  return attack(cfg);
}

namespace {

/// Shared harness for the Fig. 3b/3c outer-parameter sweeps: build one
/// AttackStudy per outer value (in parallel -- the FEM-alpha path makes
/// construction expensive), then attack every (outer, width) point on the
/// pool. Points land in slot outer*widths.size()+width, the serial order.
/// Warm starts never cross outer points: each study's internal FEM power
/// sweep is its own serial warm-started chain, so the parallel construction
/// stays bit-identical for every thread count.
std::vector<SweepPoint> sweepOuterByWidth(
    const StudyConfig& base, const std::vector<double>& outers,
    const std::vector<double>& widths, std::size_t maxPulses,
    std::size_t threads, const char* tag, const char* outerName,
    void (*applyOuter)(StudyConfig&, double)) {
  std::vector<std::unique_ptr<AttackStudy>> studies(outers.size());
  nh::util::parallelFor(
      outers.size(),
      [&](std::size_t oi) {
        StudyConfig cfg = base;
        applyOuter(cfg, outers[oi]);
        studies[oi] = std::make_unique<AttackStudy>(cfg);
      },
      threads);

  std::vector<SweepPoint> points(outers.size() * widths.size());
  nh::util::parallelFor(
      points.size(),
      [&](std::size_t idx) {
        const std::size_t oi = idx / widths.size();
        const std::size_t wi = idx % widths.size();
        HammerPulse pulse;
        pulse.width = widths[wi];
        const AttackResult r = studies[oi]->attackCenter(pulse, maxPulses);
        points[idx] = {outers[oi], widths[wi], r.pulsesToFlip, r.flipped,
                       r.stressTime};
        nh::util::logInfo(tag, ": ", outerName, "=", outers[oi],
                          " width=", widths[wi], " pulses=", r.pulsesToFlip,
                          " flipped=", r.flipped);
      },
      threads);
  return points;
}

}  // namespace

std::vector<SweepPoint> sweepPulseLength(const StudyConfig& base,
                                         const std::vector<double>& widths,
                                         std::size_t maxPulses,
                                         std::size_t threads) {
  const AttackStudy study(base);
  std::vector<SweepPoint> points(widths.size());
  nh::util::parallelFor(
      widths.size(),
      [&](std::size_t i) {
        HammerPulse pulse;
        pulse.width = widths[i];
        const AttackResult r = study.attackCenter(pulse, maxPulses);
        points[i] = {widths[i], widths[i], r.pulsesToFlip, r.flipped,
                     r.stressTime};
        nh::util::logInfo("fig3a: width=", widths[i],
                          " pulses=", r.pulsesToFlip, " flipped=", r.flipped);
      },
      threads);
  return points;
}

std::vector<SweepPoint> sweepSpacing(const StudyConfig& base,
                                     const std::vector<double>& spacings,
                                     const std::vector<double>& widths,
                                     std::size_t maxPulses,
                                     std::size_t threads) {
  return sweepOuterByWidth(base, spacings, widths, maxPulses, threads, "fig3b",
                           "spacing",
                           [](StudyConfig& cfg, double v) { cfg.spacing = v; });
}

std::vector<SweepPoint> sweepAmbient(const StudyConfig& base,
                                     const std::vector<double>& ambients,
                                     const std::vector<double>& widths,
                                     std::size_t maxPulses,
                                     std::size_t threads) {
  return sweepOuterByWidth(base, ambients, widths, maxPulses, threads, "fig3c",
                           "T0",
                           [](StudyConfig& cfg, double v) { cfg.ambientK = v; });
}

std::vector<PatternPoint> sweepPatterns(const StudyConfig& base,
                                        const HammerPulse& pulse,
                                        std::size_t maxPulses,
                                        std::size_t threads) {
  const AttackStudy study(base);
  const std::vector<AttackPattern> patterns = allPatterns();
  std::vector<PatternPoint> points(patterns.size());
  nh::util::parallelFor(
      patterns.size(),
      [&](std::size_t i) {
        const AttackPattern pattern = patterns[i];
        const AttackResult r = study.attackPattern(pattern, pulse, maxPulses);
        const auto aggressors = patternAggressors(
            pattern, {base.rows / 2, base.cols / 2}, base.rows, base.cols);
        points[i] = {pattern, aggressors.size(), r.pulsesToFlip, r.flipped};
        nh::util::logInfo("fig3d: pattern=", patternName(pattern),
                          " pulses=", r.pulsesToFlip, " flipped=", r.flipped);
      },
      threads);
  return points;
}

}  // namespace nh::core
