#include "core/study.hpp"

#include <atomic>
#include <memory>
#include <stdexcept>

#include "core/experiment.hpp"
#include "fem/geometry.hpp"
#include "util/log.hpp"
#include "util/threadpool.hpp"

namespace nh::core {

namespace {
std::atomic<std::size_t> studyConstructions{0};
}  // namespace

std::size_t AttackStudy::constructionCount() {
  return studyConstructions.load();
}

AttackStudy::AttackStudy(StudyConfig config) : config_(std::move(config)) {
  studyConstructions.fetch_add(1, std::memory_order_relaxed);
  if (config_.rows < 3 || config_.cols < 3) {
    throw std::invalid_argument("AttackStudy: need at least a 3x3 array");
  }

  if (config_.useFemAlphas) {
    fem::CrossbarLayout layout;
    layout.rows = config_.rows;
    layout.cols = config_.cols;
    layout.spacing = config_.spacing;
    layout.voxelSize = config_.femVoxelSize;
    const auto model = fem::CrossbarModel3D::build(layout);
    // Power sweep bracketing the hammered cell's dissipation (~0.1 mW).
    // extractAlpha chains the sweep's CG solves (each point warm-starts from
    // the previous field) and femOptions picks the preconditioner -- on
    // fine-voxel grids the solves run GMG-preconditioned CG.
    const auto extraction = fem::extractAlpha(
        model, fem::MaterialTable::defaults(), config_.rows / 2, config_.cols / 2,
        {0.05e-3, 0.10e-3, 0.15e-3}, config_.ambientK, config_.femOptions);
    alphas_ = xbar::AlphaTable::fromExtraction(extraction);
    nh::util::logInfo("AttackStudy: FEM alphas extracted, Rth=", extraction.rTh,
                      " K/W, nearest alpha=", alphas_.at(0, 1));
  } else {
    alphas_ = xbar::AlphaTable::analytic(config_.spacing);
  }

  arrayConfig_.rows = config_.rows;
  arrayConfig_.cols = config_.cols;
  arrayConfig_.cellParams = config_.cellParams;
  arrayConfig_.ambientK = config_.ambientK;
  // COMSOL -> Virtuoso hand-off: the FEM-extracted thermal resistance
  // replaces the compact-model default (paper Sec. IV).
  if (alphas_.rTh() > 0.0) arrayConfig_.cellParams.rThEff = alphas_.rTh();
}

AttackStudy::Bench AttackStudy::makeBench() const {
  Bench bench;
  bench.array = std::make_unique<xbar::CrossbarArray>(arrayConfig_);
  bench.array->fill(xbar::CellState::Hrs);
  bench.engine = std::make_unique<xbar::FastEngine>(*bench.array, alphas_,
                                                    config_.engineOptions);
  return bench;
}

AttackResult AttackStudy::attack(const AttackConfig& attackConfig) const {
  Bench bench = makeBench();
  AttackEngine engine(*bench.engine, config_.detector);
  return engine.run(attackConfig);
}

AttackResult AttackStudy::attackCenter(const HammerPulse& pulse,
                                       std::size_t maxPulses,
                                       std::size_t traceSamples) const {
  AttackConfig cfg;
  cfg.aggressors = {{config_.rows / 2, config_.cols / 2}};
  cfg.pulse = pulse;
  cfg.maxPulses = maxPulses;
  cfg.traceSamples = traceSamples;
  // Monitor the aggressor's word-line neighbour explicitly first (strongest
  // coupling; this is the cell Fig. 1 calls M2) plus all remaining HRS cells.
  cfg.victims.clear();
  const std::size_t cr = config_.rows / 2;
  const std::size_t cc = config_.cols / 2;
  if (cc > 0) cfg.victims.push_back({cr, cc - 1});
  if (cc + 1 < config_.cols) cfg.victims.push_back({cr, cc + 1});
  if (cr > 0) cfg.victims.push_back({cr - 1, cc});
  if (cr + 1 < config_.rows) cfg.victims.push_back({cr + 1, cc});
  return attack(cfg);
}

AttackResult AttackStudy::attackPattern(AttackPattern pattern,
                                        const HammerPulse& pulse,
                                        std::size_t maxPulses) const {
  const xbar::CellCoord victim{config_.rows / 2, config_.cols / 2};
  AttackConfig cfg;
  cfg.aggressors = patternAggressors(pattern, victim, config_.rows, config_.cols);
  cfg.pulse = pulse;
  cfg.maxPulses = maxPulses;
  cfg.victims = {victim};
  return attack(cfg);
}

namespace {

/// The legacy sweeps are thin wrappers over the experiment engine: the
/// engine provides the pool-parallel, serially-slotted execution and the
/// study-dedup cache; the wrappers collect exact SweepPoint/PatternPoint
/// values through a slot-indexed sink so the public API keeps returning
/// bit-identical vectors for every thread count (the engine's display rows
/// are discarded here). Placeholder columns keep the engine's row-width
/// invariant satisfied.
std::vector<ColumnSpec> sinkColumns() { return {{"sunk", "", {}}}; }

std::vector<ResultValue> sunkRow() { return {ResultValue::num(0.0)}; }

/// Shared spec for the Fig. 3b/3c outer-parameter-by-width sweeps. Slot
/// order is outer * widths.size() + width -- the engine's row-major cross
/// product with the outer axis first reproduces it. The study-dedup cache
/// builds one AttackStudy per unique outer value, exactly what the old
/// hand-rolled harness did (and strictly fewer when the list has
/// duplicates; results are unchanged since equal configs run identically).
std::vector<SweepPoint> runOuterByWidth(
    const StudyConfig& base, const char* tag, const char* outerName,
    const std::vector<double>& outers, const std::vector<double>& widths,
    std::size_t maxPulses, std::size_t threads,
    std::function<void(StudyConfig&, double)> applyOuter) {
  std::vector<SweepPoint> points(outers.size() * widths.size());
  ExperimentSpec spec;
  spec.name = tag;
  spec.base = base;
  spec.axes = {{outerName, outers, {}, std::move(applyOuter)},
               {"width", widths, {}, {}}};
  spec.columns = sinkColumns();
  spec.maxPulses = maxPulses;
  spec.run = [&points, outerName](const PointContext& ctx) {
    HammerPulse pulse;
    pulse.width = ctx.value("width");
    const AttackResult r = ctx.study->attackCenter(pulse, ctx.maxPulses);
    points[ctx.index] = {ctx.value(outerName), pulse.width, r.pulsesToFlip,
                         r.flipped, r.stressTime};
    return sunkRow();
  };
  RunOptions options;
  options.threads = threads;
  runExperiment(spec, options);
  return points;
}

}  // namespace

std::vector<SweepPoint> sweepPulseLength(const StudyConfig& base,
                                         const std::vector<double>& widths,
                                         std::size_t maxPulses,
                                         std::size_t threads) {
  std::vector<SweepPoint> points(widths.size());
  ExperimentSpec spec;
  spec.name = "sweep_pulse_length";
  spec.base = base;
  spec.axes = {{"width", widths, {}, {}}};
  spec.columns = sinkColumns();
  spec.maxPulses = maxPulses;
  spec.run = [&points](const PointContext& ctx) {
    HammerPulse pulse;
    pulse.width = ctx.value("width");
    const AttackResult r = ctx.study->attackCenter(pulse, ctx.maxPulses);
    points[ctx.index] = {pulse.width, pulse.width, r.pulsesToFlip, r.flipped,
                         r.stressTime};
    return sunkRow();
  };
  RunOptions options;
  options.threads = threads;
  runExperiment(spec, options);
  return points;
}

std::vector<SweepPoint> sweepSpacing(const StudyConfig& base,
                                     const std::vector<double>& spacings,
                                     const std::vector<double>& widths,
                                     std::size_t maxPulses,
                                     std::size_t threads) {
  return runOuterByWidth(base, "fig3b", "spacing", spacings, widths, maxPulses,
                         threads,
                         [](StudyConfig& cfg, double v) { cfg.spacing = v; });
}

std::vector<SweepPoint> sweepAmbient(const StudyConfig& base,
                                     const std::vector<double>& ambients,
                                     const std::vector<double>& widths,
                                     std::size_t maxPulses,
                                     std::size_t threads) {
  return runOuterByWidth(base, "fig3c", "T0", ambients, widths, maxPulses,
                         threads,
                         [](StudyConfig& cfg, double v) { cfg.ambientK = v; });
}

std::vector<PatternPoint> sweepPatterns(const StudyConfig& base,
                                        const HammerPulse& pulse,
                                        std::size_t maxPulses,
                                        std::size_t threads) {
  const std::vector<AttackPattern> patterns = allPatterns();
  std::vector<double> indices(patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    indices[i] = static_cast<double>(i);
  }
  std::vector<PatternPoint> points(patterns.size());
  ExperimentSpec spec;
  spec.name = "fig3d";
  spec.base = base;
  spec.axes = {{"pattern", indices, {}, {}}};
  spec.columns = sinkColumns();
  spec.maxPulses = maxPulses;
  spec.run = [&points, &patterns, &pulse, &base](const PointContext& ctx) {
    const AttackPattern pattern = patterns[ctx.index];
    const AttackResult r = ctx.study->attackPattern(pattern, pulse, ctx.maxPulses);
    const auto aggressors = patternAggressors(
        pattern, {base.rows / 2, base.cols / 2}, base.rows, base.cols);
    points[ctx.index] = {pattern, aggressors.size(), r.pulsesToFlip, r.flipped};
    return sunkRow();
  };
  RunOptions options;
  options.threads = threads;
  runExperiment(spec, options);
  return points;
}

}  // namespace nh::core
