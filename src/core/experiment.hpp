#pragma once
/// \file experiment.hpp
/// Declarative experiment engine: the paper's evaluation is one catalog of
/// parameter studies, and this layer runs any of them through a single
/// deterministic pipeline. An ExperimentSpec describes the cross-product of
/// named parameter axes, a per-point run function, paper-shape metadata for
/// the banner, and a fast-mode shrink policy; runExperiment() executes the
/// grid on the thread pool with results written into serially-indexed slots
/// (bit-identical for every thread count) and **deduplicates study
/// construction**: points whose study-relevant StudyConfig compares equal
/// (C++20 defaulted operator==) share one cached AttackStudy, so e.g. a
/// spacing x ambient grid builds one study per unique (spacing, ambient)
/// instead of one per point, and the expensive FEM-alpha extraction is
/// amortised across the whole series.
///
/// Results flow through one ExperimentResult sink that renders the ASCII
/// table, the CSV series, and a machine-readable JSON document (name,
/// config digest, axes, rows, thread count, build type).

#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "util/cancellation.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace nh::util {
class JsonWriter;
class JsonValue;
}

namespace nh::core {

/// One table cell. Cells are *shaped*: a scalar (number or text label), a
/// time-series trace (one value per sample), or a 2-D matrix (row-major).
/// Scalar rows cover the axis-cross-product experiments; traces carry the
/// Fig. 1 mechanics time series; matrices carry the Fig. 2a temperature
/// map. The ASCII/CSV/JSON sinks understand all three shapes.
struct ResultValue {
  enum class Kind { Number, Text, Trace, Matrix };
  Kind kind = Kind::Number;
  double number = 0.0;
  std::string text;
  /// Trace samples, or the matrix payload in row-major order.
  std::vector<double> series;
  std::size_t matrixRows = 0;  ///< Valid for Kind::Matrix.
  std::size_t matrixCols = 0;

  static ResultValue num(double v);
  static ResultValue boolean(bool v);  ///< Stored as 0/1.
  static ResultValue str(std::string s);
  static ResultValue trace(std::vector<double> samples);
  static ResultValue matrix(std::size_t rows, std::size_t cols,
                            std::vector<double> rowMajor);

  bool isShaped() const { return kind == Kind::Trace || kind == Kind::Matrix; }
  /// Elements of a shaped cell (trace samples / matrix entries), 1 otherwise.
  std::size_t elementCount() const;
  /// k-th element of a shaped cell; the scalar number for k == 0 otherwise.
  double element(std::size_t k) const;

  /// CSV cell: util::formatDouble for numbers, the text verbatim otherwise.
  /// Shaped cells render element-wise through the CSV expansion, never
  /// through render() (it throws for them).
  std::string render() const;

  bool operator==(const ResultValue&) const = default;
};

/// How `nh_sweep check` compares one result column against a tracked
/// baseline: numbers match when |actual - expected| <= abs + rel *
/// |expected| (element-wise for shaped cells), text cells compare exactly,
/// and ignore == true skips the column entirely (wall-clock measurements).
struct ColumnTolerance {
  double rel = 0.0;
  double abs = 0.0;
  bool ignore = false;

  bool operator==(const ColumnTolerance&) const = default;
};

/// One result column: machine-readable name (CSV header / JSON), optional
/// display header for the ASCII table, optional ASCII cell formatter
/// (numbers default to formatDouble, text passes through), the declared
/// cell shape, and the baseline comparison tolerance.
struct ColumnSpec {
  /// Declared cell shape. Every row must put a cell of this shape (or a
  /// text placeholder) into the column; runExperiment enforces it.
  enum class Shape { Scalar, Trace, Matrix };
  using Tolerance = ColumnTolerance;

  std::string name;
  std::string display;
  std::function<std::string(const ResultValue&)> format;
  Shape shape = Shape::Scalar;
  Tolerance tolerance;

  ColumnSpec() = default;
  ColumnSpec(std::string name_, std::string display_ = "",
             std::function<std::string(const ResultValue&)> format_ = {},
             Shape shape_ = Shape::Scalar, Tolerance tolerance_ = Tolerance())
      : name(std::move(name_)),
        display(std::move(display_)),
        format(std::move(format_)),
        shape(shape_),
        tolerance(tolerance_) {}

  const std::string& heading() const { return display.empty() ? name : display; }
};

/// Baseline-tolerance helper: |actual - expected| <= abs + rel*|expected|.
bool withinTolerance(double expected, double actual,
                     const ColumnSpec::Tolerance& tolerance);

const char* shapeName(ColumnSpec::Shape shape);

/// Canned ASCII formatters for ColumnSpec::format.
namespace colfmt {
/// Engineering/SI formatting after scaling ("1.2 ns" from 1.2e-9, unit "s").
std::function<std::string(const ResultValue&)> si(std::string unit,
                                                  int decimals = 0);
/// Fixed decimals with an optional suffix ("1.05 V").
std::function<std::string(const ResultValue&)> fixed(int decimals,
                                                     std::string suffix = "");
/// Thousands-grouped integer ("12,345").
std::function<std::string(const ResultValue&)> grouped();
/// 1 -> "yes", 0 -> "NO (budget)" (the flip-outcome convention).
std::function<std::string(const ResultValue&)> flipped();
/// 1 -> "yes", 0 -> "no".
std::function<std::string(const ResultValue&)> yesNo();
}  // namespace colfmt

/// One named parameter axis: a value list plus an optional StudyConfig
/// setter. Axes without a setter (e.g. the hammer pulse width) do not change
/// the study, so every point along them shares one cached AttackStudy.
struct ParamAxis {
  std::string name;
  std::vector<double> values;
  /// Fast-mode (NH_FAST_BENCH / --fast) subset; empty = use \p values.
  std::vector<double> fastValues;
  /// Applies a value to the point's StudyConfig; null when the axis does not
  /// affect study construction.
  std::function<void(StudyConfig&, double)> apply;

  const std::vector<double>& active(bool fast) const {
    return fast && !fastValues.empty() ? fastValues : values;
  }
};

struct ExperimentSpec;

/// Everything a per-point run function sees. The study pointer is null when
/// the spec opts out of study construction (ExperimentSpec::buildStudies).
struct PointContext {
  const ExperimentSpec* spec = nullptr;
  std::size_t index = 0;             ///< Serial slot (row-major over the axes).
  std::vector<double> values;        ///< One value per axis, in axis order.
  StudyConfig config;                ///< base with every axis setter applied.
  const AttackStudy* study = nullptr;
  std::size_t maxPulses = 0;
  bool fast = false;

  /// Value of the named axis at this point; throws std::out_of_range.
  double value(const std::string& axis) const;
};

struct ExperimentResult;

/// Optional pivoted ASCII presentation of a two-axis scalar grid: rows are
/// \p rowAxis values, columns are \p colAxis values, and each cell shows
/// \p valueColumn of the grid point with those axis values -- the paper's
/// "2-D table" look (the kinetics landscape) without giving up the flat,
/// overridable axis cross-product underneath.
struct PivotSpec {
  std::string rowAxis;
  std::string colAxis;
  std::string valueColumn;
  std::string title;
  /// Optional row-aware cell renderer (sees the whole result row, e.g. to
  /// print "> 50 s" when a companion flag column says not-switched);
  /// default: the value column's formatter.
  std::function<std::string(const std::vector<ResultValue>&)> format;
  /// Optional axis-value label formatters for the grid's row/column
  /// headings ("300 K", "0.525 V"); default: util::formatDouble.
  std::function<std::string(double)> rowLabel;
  std::function<std::string(double)> colLabel;

  bool enabled() const { return !rowAxis.empty(); }
};

/// One declarative experiment: metadata + base config + axes + run function.
struct ExperimentSpec {
  std::string name;         ///< Registry key, CSV/JSON stem ("fig3a_pulse_length").
  std::string title;        ///< Banner heading ("Fig. 3a -- ...").
  std::string description;  ///< Banner setup line.
  std::string paperShape;   ///< Banner "paper shape:" line.
  std::string tableTitle;   ///< ASCII table title.

  StudyConfig base;
  std::vector<ParamAxis> axes;  ///< Cross product, first axis outermost.
  std::vector<ColumnSpec> columns;

  std::size_t maxPulses = 5'000'000;
  std::size_t fastMaxPulses = 0;  ///< 0 = maxPulses in fast mode too.

  /// Build (deduplicated) AttackStudy instances for the points. Specs whose
  /// run functions never touch a study (e.g. substrate-level sweeps) opt out.
  bool buildStudies = true;

  /// Force serial (index-ordered, single-worker) point execution regardless
  /// of RunOptions::threads. For experiments whose rows carry wall-clock
  /// measurements (the batching ablation): concurrent points would time
  /// each other under core contention and distort the speedup columns.
  bool serialPoints = false;

  /// Produces one result row (width == columns.size()) per grid point. Must
  /// be deterministic and thread-safe across points (the Fig. 3 attack entry
  /// points are: each run builds a fresh bench from immutable study state).
  std::function<std::vector<ResultValue>(const PointContext&)> run;

  /// Optional post-pass over the complete, serially-ordered result: derived
  /// cross-row columns (ratios vs a reference row) and data-dependent notes.
  /// Runs serially after every point finished.
  std::function<void(ExperimentResult&)> finalize;

  /// Static footnotes appended after finalize's.
  std::vector<std::string> notes;

  /// Optional pivoted grid rendering (see PivotSpec).
  PivotSpec pivot;
};

/// What happens to the run when one grid point throws.
enum class PointFailurePolicy {
  Abort,  ///< Rethrow at the barrier; the whole run fails (legacy behaviour).
  Skip,   ///< Record the failure, fill the row with "-" placeholders, go on.
};

/// Per-point execution record: how the point's run function ended, after how
/// many attempts, and (for non-Ok outcomes) the failure message. Rows whose
/// outcome is not Ok carry "-" text placeholders in every cell. Pending is
/// the in-flight default -- a slot whose point has not settled yet; the
/// checkpoint writer must never serialize (or even read) such a row, which
/// is why the default is NOT Ok.
struct PointOutcome {
  enum class Status { Pending, Ok, Failed, Cancelled, TimedOut, Resumed };
  Status status = Status::Pending;
  std::string error;         ///< Failure message; empty for Ok/Resumed.
  std::size_t attempts = 1;  ///< Executions of the run function (1 + retries).

  bool ok() const { return status == Status::Ok || status == Status::Resumed; }
  bool operator==(const PointOutcome&) const = default;
};

const char* pointStatusName(PointOutcome::Status status);

/// Execution controls.
struct RunOptions {
  std::size_t threads = 0;  ///< 0 = util::defaultThreadCount().
  bool fast = false;        ///< Use the fast-mode axis subsets / budget.
  std::size_t maxPulsesOverride = 0;  ///< 0 = spec budget.
  /// Replace named axes' value lists (the CLI's --set axis=v1,v2,...).
  /// Unknown names throw std::out_of_range before anything runs; the
  /// message lists the experiment's valid axes.
  std::map<std::string, std::vector<double>> axisOverrides;

  /// ---- fault tolerance ----------------------------------------------------

  /// Extra executions of a point's run function after a failure (transient
  /// solver faults). Retries apply per point, before the failure policy.
  std::size_t pointRetries = 0;
  /// Abort (default, legacy): the first failed point kills the run. Skip:
  /// failed points become flagged rows and the grid completes.
  PointFailurePolicy onPointFailure = PointFailurePolicy::Abort;
  /// Cooperative cancellation: installed as the ambient token inside every
  /// point body, so the solver stack unwinds within ~one iteration of
  /// cancel()/deadline expiry. Already-completed rows are kept; pending
  /// points are recorded Cancelled/TimedOut without running.
  util::CancellationToken cancel;
  /// Non-empty: periodically persist completed rows to
  /// <checkpointDir>/<name>.json (digest-keyed) so an interrupted run can
  /// resume. Mid-run writes are throttled (at most one every few seconds --
  /// the file re-serializes every completed row), an interrupted run always
  /// gets one final write covering everything that settled, and a write
  /// failure (unwritable dir, disk full) logs a warning and disables further
  /// checkpointing instead of failing the run. Deleted on full success.
  std::filesystem::path checkpointDir;
  /// Skip points whose rows a digest-matching checkpoint already holds.
  bool resume = false;
  /// Observer called serially (under a lock) after each point settles, with
  /// the serial index, its outcome, and the number of settled points so far.
  /// Used by the CLI for progress lines and by tests to cancel mid-run.
  std::function<void(std::size_t index, const PointOutcome& outcome,
                     std::size_t completed)>
      onPointComplete;
};

/// Complete experiment output: the data plus the provenance the JSON records.
struct ExperimentResult {
  std::string name;
  std::string tableTitle;
  std::vector<ColumnSpec> columns;
  std::vector<std::vector<ResultValue>> rows;   ///< One per point, serial order.
  std::vector<std::vector<double>> pointValues; ///< Axis values per row.
  struct Axis {
    std::string name;
    std::vector<double> values;
  };
  std::vector<Axis> axes;       ///< As resolved (fast subset / overrides).
  std::vector<std::string> notes;
  std::size_t threads = 0;
  bool fast = false;
  std::size_t maxPulses = 0;
  std::size_t studiesConstructed = 0;  ///< Unique configs this run referenced.
  /// Of studiesConstructed, how many were served warm by the process-wide
  /// study cache instead of being built (run-all batching).
  std::size_t studiesReused = 0;
  std::string configDigest;            ///< FNV-1a over base config + axes.
  PivotSpec pivot;                     ///< Copied from the spec.

  /// Per-point execution record, one per row (serial order). Non-Ok rows
  /// hold "-" placeholders; the ASCII/CSV sinks append a synthetic "status"
  /// column whenever any outcome is not Ok, and the JSON document always
  /// records the aggregate counts (plus per-row status when degraded).
  std::vector<PointOutcome> outcomes;
  std::size_t pointsOk = 0;        ///< Includes resumed-from-checkpoint rows.
  std::size_t pointsFailed = 0;
  std::size_t pointsCancelled = 0;  ///< Cancelled + TimedOut.
  std::size_t pointsResumed = 0;    ///< Of pointsOk, served by the checkpoint.

  /// Every point ran to completion (failed/cancelled counts are both zero).
  bool complete() const { return pointsFailed == 0 && pointsCancelled == 0; }
};

/// Run the full cross product on the pool. Deterministic: rows land in
/// serially-indexed slots, studies are deduplicated by config equality in
/// serial point order, and every run function only reads shared immutable
/// state -- so the result is bit-identical for any RunOptions::threads.
ExperimentResult runExperiment(const ExperimentSpec& spec,
                               const RunOptions& options = {});

/// Digest of the study-relevant inputs (base config, axes, budget); stable
/// across runs and thread counts, recorded in the JSON document and keyed
/// against by the tracked baseline store (core/baseline).
std::string configDigest(const ExperimentSpec& spec, const RunOptions& options);

/// ---- process-wide study cache --------------------------------------------

/// The study-dedup cache is process-wide: AttackStudy instances built by any
/// runExperiment() call are kept (keyed by StudyConfig::operator==) and
/// shared with every later run in the process, so `nh_sweep run-all` and
/// `check --all` batch related experiments against one warm study set
/// instead of re-running the expensive FEM-alpha extraction per experiment.

/// Resolve \p config through the cache: return the cached study when warm,
/// otherwise build one and publish it. Safe to call from any number of
/// threads; racing builders for the same config all converge on the single
/// instance the cache kept (insert returns the winner), so callers may
/// compare the returned pointers for identity.
std::shared_ptr<const AttackStudy> getOrBuildStudy(const StudyConfig& config);

/// Number of studies currently cached.
std::size_t studyCacheSize();

/// Drop every cached study (tests; also frees memory after a run-all).
void clearStudyCache();

/// The cache is LRU-bounded: find() refreshes an entry, insert() evicts the
/// least-recently-used entry once the capacity is reached. Megabit-array
/// studies hold per-cell state for 10^6 devices each, so an unbounded cache
/// would pin gigabytes across a run-all; the default keeps the whole seed
/// catalog warm while bounding resident memory.
std::size_t studyCacheCapacity();

/// Set the capacity (minimum 1). Shrinking below the current size evicts
/// the least-recently-used entries immediately. Running experiments keep
/// their studies alive through their own shared_ptr references, so eviction
/// never invalidates in-flight work.
void setStudyCacheCapacity(std::size_t capacity);

/// ---- result sink ---------------------------------------------------------

/// Where experiment series land by default: NH_RESULTS_DIR when set,
/// ./bench_results otherwise. Single home for the convention the benches
/// and the nh_sweep CLI share.
std::filesystem::path defaultResultsDir();

/// Where checkpoints land by default: defaultResultsDir()/checkpoints.
std::filesystem::path defaultCheckpointDir();

/// The checkpoint file runExperiment reads/writes for experiment \p name
/// inside \p dir: <dir>/<name>.json. The file records the config digest;
/// resume ignores (and overwrites) checkpoints whose digest mismatches.
std::filesystem::path checkpointPath(const std::filesystem::path& dir,
                                     const std::string& name);

/// The standard reproduction banner (title, setup line, paper shape).
void printBanner(const std::string& title, const std::string& description,
                 const std::string& paperShape);
inline void printBanner(const ExperimentSpec& spec) {
  printBanner(spec.title, spec.description, spec.paperShape);
}

/// ASCII rendering (title, formatted columns, notes). Shaped results render
/// as several tables: the main table (scalar columns; trace columns expand
/// to decimated sample lines), one grid per matrix cell, and the pivoted
/// grid when the spec asks for one. The first table carries the notes.
std::vector<nh::util::AsciiTable> toAsciiTables(const ExperimentResult& result);

/// The main (first) table of toAsciiTables -- the whole rendering for
/// scalar-only results.
nh::util::AsciiTable toAsciiTable(const ExperimentResult& result);

/// CSV series (machine column names, formatDouble numbers). Shaped results
/// emit long form: each point expands to one line per trace sample (with a
/// leading "sample" index column) or per matrix entry (leading "row"/"col"
/// columns), scalar cells repeated on every line. Trace and matrix columns
/// cannot mix in one experiment.
nh::util::CsvTable toCsvTable(const ExperimentResult& result);

/// Machine-readable JSON document: experiment name, config digest, axes,
/// columns (+ shapes), rows, notes, thread count, fast flag, build type.
/// Shaped cells are encoded as {"shape":"trace","values":[...]} /
/// {"shape":"matrix","rows":R,"cols":C,"values":[...]}.
std::string toJson(const ExperimentResult& result);

/// Append one cell to \p w using the shaped-cell encoding shared by the
/// result JSON and the baseline store (core/baseline reads it back).
void writeCellJson(nh::util::JsonWriter& w, const ResultValue& cell);

/// Inverse of writeCellJson: decode one cell from the shared encoding
/// (number / string / {"shape":...} object). Throws std::runtime_error on
/// malformed input. Used by the baseline store and checkpoint resume.
ResultValue readCellJson(const nh::util::JsonValue& v);

/// Write <name>.csv and <name>.json into \p dir (created when missing).
struct EmittedFiles {
  std::filesystem::path csv;
  std::filesystem::path json;
};
EmittedFiles writeResultFiles(const ExperimentResult& result,
                              const std::filesystem::path& dir);

}  // namespace nh::core
