#include "core/baseline.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace nh::core {

namespace {

/// Mismatch-report cap: a shifted trace would otherwise flood the diff
/// document with one entry per sample.
constexpr std::size_t kMaxDiffs = 200;

std::string readFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read " + path.string());
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string renderScalar(const ResultValue& cell) {
  return cell.kind == ResultValue::Kind::Text ? cell.text
                                              : nh::util::formatDouble(cell.number);
}

/// Element-wise comparison of one cell pair; appends diffs (capped).
void compareCells(const ResultValue& expected, const ResultValue& actual,
                  const ColumnSpec& column, std::size_t row,
                  BaselineCheck& check) {
  const auto addDiff = [&](std::size_t element, std::string expectedText,
                           std::string actualText, std::string what) {
    if (check.diffs.size() >= kMaxDiffs) {
      check.diffsTruncated = true;
      return;
    }
    check.diffs.push_back({row, column.name, element, std::move(expectedText),
                           std::move(actualText), std::move(what)});
  };

  if (column.tolerance.ignore) return;
  if (expected.kind != actual.kind) {
    addDiff(0, renderScalar(expected.isShaped() ? ResultValue::str("<shaped>")
                                                : expected),
            renderScalar(actual.isShaped() ? ResultValue::str("<shaped>")
                                           : actual),
            "cell kind changed");
    return;
  }
  switch (expected.kind) {
    case ResultValue::Kind::Text:
      if (expected.text != actual.text) {
        addDiff(0, expected.text, actual.text, "text differs");
      }
      return;
    case ResultValue::Kind::Number:
      if (!withinTolerance(expected.number, actual.number, column.tolerance)) {
        addDiff(0, nh::util::formatDouble(expected.number),
                nh::util::formatDouble(actual.number), "out of tolerance");
      }
      return;
    case ResultValue::Kind::Trace:
    case ResultValue::Kind::Matrix:
      if (expected.series.size() != actual.series.size() ||
          expected.matrixRows != actual.matrixRows ||
          expected.matrixCols != actual.matrixCols) {
        addDiff(0, std::to_string(expected.series.size()) + " elements",
                std::to_string(actual.series.size()) + " elements",
                "shaped cell dimensions changed");
        return;
      }
      for (std::size_t k = 0; k < expected.series.size(); ++k) {
        if (!withinTolerance(expected.series[k], actual.series[k],
                             column.tolerance)) {
          addDiff(k, nh::util::formatDouble(expected.series[k]),
                  nh::util::formatDouble(actual.series[k]),
                  "element out of tolerance");
        }
      }
      return;
  }
}

}  // namespace

std::filesystem::path defaultBaselineDir() {
  if (const char* env = std::getenv("NH_BASELINE_DIR")) {
    return std::filesystem::path(env);
  }
  return std::filesystem::path("baselines");
}

std::filesystem::path baselinePath(const std::string& experiment,
                                   const std::filesystem::path& dir) {
  return dir / (experiment + ".json");
}

const char* baselineStatusName(BaselineCheck::Status status) {
  switch (status) {
    case BaselineCheck::Status::Match: return "match";
    case BaselineCheck::Status::Missing: return "missing";
    case BaselineCheck::Status::DigestMismatch: return "digest_mismatch";
    case BaselineCheck::Status::ShapeMismatch: return "shape_mismatch";
    case BaselineCheck::Status::ValueMismatch: return "value_mismatch";
  }
  return "unknown";
}

std::string baselineJson(const ExperimentResult& result) {
  nh::util::JsonWriter w;
  w.beginObject();
  w.key("experiment").value(result.name);
  w.key("config_digest").value(result.configDigest);
  w.key("fast").value(result.fast);
  w.key("max_pulses").value(result.maxPulses);
  w.key("columns").beginArray();
  for (const auto& col : result.columns) w.value(col.name);
  w.endArray();
  w.key("column_shapes").beginArray();
  for (const auto& col : result.columns) w.value(shapeName(col.shape));
  w.endArray();
  // Informational: the comparison always uses the *current* spec's
  // tolerances, so a tolerance change takes effect without re-recording.
  w.key("tolerances").beginArray();
  for (const auto& col : result.columns) {
    w.beginObject();
    w.key("rel").value(col.tolerance.rel);
    w.key("abs").value(col.tolerance.abs);
    w.key("ignore").value(col.tolerance.ignore);
    w.endObject();
  }
  w.endArray();
  w.key("axes").beginArray();
  for (const auto& axis : result.axes) {
    w.beginObject();
    w.key("name").value(axis.name);
    w.key("values").beginArray();
    for (const double v : axis.values) w.value(v);
    w.endArray();
    w.endObject();
  }
  w.endArray();
  w.key("rows").beginArray();
  for (const auto& row : result.rows) {
    w.beginArray();
    for (const auto& cell : row) writeCellJson(w, cell);
    w.endArray();
  }
  w.endArray();
  w.endObject();
  return w.str();
}

std::filesystem::path writeBaseline(const ExperimentResult& result,
                                    const std::filesystem::path& dir) {
  // Refuse to record non-finite cells: JsonWriter serialises NaN/Inf as
  // null, which no later check could read back -- the baseline would be
  // permanently poisoned. Failing here makes the bad run visible instead.
  for (std::size_t r = 0; r < result.rows.size(); ++r) {
    for (std::size_t c = 0; c < result.rows[r].size(); ++c) {
      const ResultValue& cell = result.rows[r][c];
      bool finite = true;
      if (cell.kind == ResultValue::Kind::Number) {
        finite = std::isfinite(cell.number);
      } else if (cell.isShaped()) {
        for (const double v : cell.series) finite = finite && std::isfinite(v);
      }
      if (!finite) {
        throw std::runtime_error(
            "writeBaseline: experiment '" + result.name + "' row " +
            std::to_string(r) + " column '" + result.columns[c].name +
            "' holds a non-finite value; refusing to record it");
      }
    }
  }
  std::filesystem::create_directories(dir);
  const std::filesystem::path path = baselinePath(result.name, dir);
  std::ofstream out(path, std::ios::binary);
  out << baselineJson(result) << "\n";
  out.flush();  // surface buffered-write failures (disk full) before the test
  if (!out) {
    throw std::runtime_error("writeBaseline: cannot write " + path.string());
  }
  return path;
}

BaselineCheck checkBaseline(const ExperimentResult& result,
                            const std::filesystem::path& dir) {
  BaselineCheck check;
  check.actualDigest = result.configDigest;
  const std::filesystem::path path = baselinePath(result.name, dir);
  if (!std::filesystem::exists(path)) {
    check.status = BaselineCheck::Status::Missing;
    check.message = "no baseline recorded at " + path.string() +
                    " (record one with: nh_sweep record " + result.name + ")";
    return check;
  }

  const nh::util::JsonValue doc = nh::util::JsonValue::parse(readFile(path));
  check.expectedDigest = doc.at("config_digest").asString();
  if (doc.at("experiment").asString() != result.name) {
    check.status = BaselineCheck::Status::ShapeMismatch;
    check.message = path.string() + " records experiment '" +
                    doc.at("experiment").asString() + "', not '" +
                    result.name + "'";
    return check;
  }
  if (check.expectedDigest != check.actualDigest) {
    check.status = BaselineCheck::Status::DigestMismatch;
    check.message = "config digest drifted (baseline " + check.expectedDigest +
                    ", run " + check.actualDigest +
                    "): the experiment's config or axes changed -- review and "
                    "re-record with: nh_sweep record " +
                    result.name;
    if (const nh::util::JsonValue* fast = doc.find("fast")) {
      if (fast->asBool() != result.fast) {
        check.message += fast->asBool()
                             ? " (the baseline was recorded in fast mode -- "
                               "re-run the check with --fast?)"
                             : " (the baseline was recorded in full mode -- "
                               "re-run the check without --fast?)";
      }
    }
    return check;
  }

  const auto& columns = doc.at("columns").items();
  const auto& shapes = doc.at("column_shapes").items();
  bool columnsMatch = columns.size() == result.columns.size() &&
                      shapes.size() == result.columns.size();
  for (std::size_t c = 0; columnsMatch && c < columns.size(); ++c) {
    columnsMatch = columns[c].asString() == result.columns[c].name &&
                   shapes[c].asString() == shapeName(result.columns[c].shape);
  }
  if (!columnsMatch) {
    check.status = BaselineCheck::Status::ShapeMismatch;
    check.message = "result columns/shapes differ from the recorded baseline "
                    "(same digest -- was the column list changed without a "
                    "config change? re-record with: nh_sweep record " +
                    result.name + ")";
    return check;
  }

  const auto& rows = doc.at("rows").items();
  if (rows.size() != result.rows.size()) {
    check.status = BaselineCheck::Status::ShapeMismatch;
    check.message = "row count changed: baseline has " +
                    std::to_string(rows.size()) + ", run produced " +
                    std::to_string(result.rows.size());
    return check;
  }

  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& cells = rows[r].items();
    if (cells.size() != result.rows[r].size()) {
      check.status = BaselineCheck::Status::ShapeMismatch;
      check.message = "row " + std::to_string(r) + " width changed";
      return check;
    }
    for (std::size_t c = 0; c < cells.size(); ++c) {
      compareCells(readCellJson(cells[c]), result.rows[r][c],
                   result.columns[c], r, check);
    }
  }

  if (!check.diffs.empty()) {
    check.status = BaselineCheck::Status::ValueMismatch;
    check.message = std::to_string(check.diffs.size()) +
                    (check.diffsTruncated ? "+ cells" : " cell(s)") +
                    " out of tolerance vs " + path.string();
  } else {
    check.message = "matches " + path.string();
  }
  return check;
}

std::string diffJson(const ExperimentResult& result,
                     const BaselineCheck& check) {
  nh::util::JsonWriter w;
  w.beginObject();
  w.key("experiment").value(result.name);
  w.key("status").value(baselineStatusName(check.status));
  w.key("message").value(check.message);
  w.key("expected_digest").value(check.expectedDigest);
  w.key("actual_digest").value(check.actualDigest);
  w.key("diffs_truncated").value(check.diffsTruncated);
  w.key("diffs").beginArray();
  for (const auto& diff : check.diffs) {
    w.beginObject();
    w.key("row").value(diff.row);
    w.key("column").value(diff.column);
    w.key("element").value(diff.element);
    w.key("expected").value(diff.expected);
    w.key("actual").value(diff.actual);
    w.key("what").value(diff.what);
    w.endObject();
  }
  w.endArray();
  w.endObject();
  return w.str();
}

}  // namespace nh::core
