#include "core/detector.hpp"

#include <stdexcept>

namespace nh::core {

BitFlipDetector::BitFlipDetector(DetectorConfig config) : config_(config) {
  if (!(config_.rLrsMax > 0.0) || !(config_.rHrsMin > config_.rLrsMax)) {
    throw std::invalid_argument("BitFlipDetector: need 0 < rLrsMax < rHrsMin");
  }
}

ReadState BitFlipDetector::classify(const jart::JartDevice& device) const {
  const double r = device.readResistance(config_.readVoltage);
  if (r <= config_.rLrsMax) return ReadState::Lrs;
  if (r >= config_.rHrsMin) return ReadState::Hrs;
  return ReadState::Intermediate;
}

std::vector<ReadState> BitFlipDetector::snapshot(const xbar::CrossbarArray& array) const {
  std::vector<ReadState> states;
  states.reserve(array.cellCount());
  for (std::size_t r = 0; r < array.rows(); ++r) {
    for (std::size_t c = 0; c < array.cols(); ++c) {
      states.push_back(classify(array.cell(r, c)));
    }
  }
  return states;
}

std::vector<FlipEvent> BitFlipDetector::flipsSince(
    const xbar::CrossbarArray& array, const std::vector<ReadState>& reference) const {
  if (reference.size() != array.cellCount()) {
    throw std::invalid_argument("flipsSince: snapshot size mismatch");
  }
  std::vector<FlipEvent> events;
  for (std::size_t r = 0; r < array.rows(); ++r) {
    for (std::size_t c = 0; c < array.cols(); ++c) {
      const ReadState now = classify(array.cell(r, c));
      const ReadState before = reference[r * array.cols() + c];
      if (now != before) {
        events.push_back({{r, c}, before, now});
      }
    }
  }
  return events;
}

std::optional<xbar::CellCoord> BitFlipDetector::firstLrs(
    const xbar::CrossbarArray& array,
    const std::vector<xbar::CellCoord>& monitored) const {
  for (const auto& coord : monitored) {
    if (classify(array.cell(coord.row, coord.col)) == ReadState::Lrs) {
      return coord;
    }
  }
  return std::nullopt;
}

}  // namespace nh::core
