#pragma once
/// \file patterns.hpp
/// Attack patterns (paper Fig. 3e-h, "overview of attack patterns"): which
/// cells around a chosen victim are hammered, in round-robin order. More
/// aggressors sharing the victim's lines deposit more crosstalk heat per
/// unit time, reducing the pulses-to-flip (Fig. 3d).

#include <string>
#include <vector>

#include "xbar/array.hpp"

namespace nh::core {

enum class AttackPattern {
  SingleAggressor,  ///< (e) one aggressor on the victim's word line.
  RowPair,          ///< (f) both word-line neighbours of the victim.
  ColumnPair,       ///< (g-variant) both bit-line neighbours.
  Cross,            ///< (g) all four direct neighbours.
  Ring,             ///< (h) the full 8-neighbour ring.
};

/// All supported patterns, in figure order.
std::vector<AttackPattern> allPatterns();

/// Human-readable name ("single", "row-pair", ...).
std::string patternName(AttackPattern pattern);

/// Aggressor cells for \p pattern around \p victim, clipped to the array
/// bounds. Throws std::invalid_argument when no aggressor fits (1x1 array).
std::vector<xbar::CellCoord> patternAggressors(AttackPattern pattern,
                                               const xbar::CellCoord& victim,
                                               std::size_t rows, std::size_t cols);

}  // namespace nh::core
