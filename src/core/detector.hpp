#pragma once
/// \file detector.hpp
/// Bit-flip detection: classifies cells by read resistance with a hysteresis
/// band (LRS below rLrsMax, HRS above rHrsMin, Intermediate between), takes
/// array snapshots and reports disturbed/flipped cells against a snapshot.

#include <optional>
#include <vector>

#include "xbar/array.hpp"

namespace nh::core {

/// Read-window thresholds. Defaults bracket the calibrated model: deep LRS
/// reads ~34 kOhm, deep HRS ~20 MOhm at 0.2 V.
struct DetectorConfig {
  double readVoltage = 0.2;
  double rLrsMax = 1.5e5;  ///< R below this reads as logic LRS [Ohm].
  double rHrsMin = 1.0e6;  ///< R above this reads as logic HRS [Ohm].

  /// Exact comparison (study-dedup cache key component).
  bool operator==(const DetectorConfig&) const = default;
};

/// Tri-state read classification.
enum class ReadState { Lrs, Hrs, Intermediate };

/// A detected state change relative to a snapshot.
struct FlipEvent {
  xbar::CellCoord cell;
  ReadState before = ReadState::Hrs;
  ReadState after = ReadState::Hrs;
};

class BitFlipDetector {
 public:
  explicit BitFlipDetector(DetectorConfig config = {});

  const DetectorConfig& config() const { return config_; }

  /// Classify one device by read resistance.
  ReadState classify(const jart::JartDevice& device) const;
  /// Classify the whole array.
  std::vector<ReadState> snapshot(const xbar::CrossbarArray& array) const;

  /// All cells whose classification changed relative to \p reference
  /// (Intermediate counts as a change from either deep state: the cell has
  /// been disturbed even if it has not fully flipped yet).
  std::vector<FlipEvent> flipsSince(const xbar::CrossbarArray& array,
                                    const std::vector<ReadState>& reference) const;

  /// First cell among \p monitored that currently reads LRS (the attack's
  /// success condition: HRS victim flipped to LRS). std::nullopt when none.
  std::optional<xbar::CellCoord> firstLrs(
      const xbar::CrossbarArray& array,
      const std::vector<xbar::CellCoord>& monitored) const;

 private:
  DetectorConfig config_;
};

}  // namespace nh::core
