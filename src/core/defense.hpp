#pragma once
/// \file defense.hpp
/// Countermeasure evaluation (the paper's future work: "explore
/// countermeasures to mitigate the security threat"). Three defences are
/// modelled and evaluated against the reference attack:
///  * refresh scrubbing  -- periodically RESET-refresh disturbed HRS cells,
///  * hammer-count monitoring -- per-line activation counters with an alarm
///    threshold (the ReRAM analogue of DRAM TRR),
///  * duty-cycle throttling -- the controller enforces idle time between
///    pulses to the same line (shown to be ineffective here because the
///    thermal time constant is far below any realistic pulse period).

#include <cstddef>

#include "core/study.hpp"

namespace nh::core {

/// ---- refresh scrubbing -------------------------------------------------------

struct ScrubbingConfig {
  /// Scrub pass every this many hammer pulses.
  std::size_t intervalPulses = 1000;
  /// Cells whose normalised state drifted above this are refreshed.
  double driftThreshold = 0.15;
  /// RESET pulse used for the refresh.
  double refreshVoltage = -1.3;
  double refreshWidth = 10e-6;
};

struct ScrubbingOutcome {
  bool attackSucceeded = false;     ///< Victim flipped despite scrubbing.
  std::size_t pulsesUntilFlip = 0;  ///< Valid when attackSucceeded.
  std::size_t pulsesSurvived = 0;   ///< Attack budget withstood otherwise.
  std::size_t scrubPasses = 0;
  std::size_t cellsRefreshed = 0;   ///< Total refresh operations issued.
};

/// Run the centre-cell reference attack against a scrubbing defence.
ScrubbingOutcome evaluateScrubbing(const StudyConfig& base,
                                   const HammerPulse& pulse,
                                   const ScrubbingConfig& scrub,
                                   std::size_t attackBudget);

/// ---- hammer-count monitoring ---------------------------------------------------

struct MonitorConfig {
  /// Alarm when any line accumulates this many activations within a window.
  std::size_t lineThreshold = 500;
  /// Sliding-window length in pulses (0 = cumulative counters).
  std::size_t windowPulses = 0;
};

struct MonitorOutcome {
  bool attackDetected = false;
  std::size_t pulsesUntilDetection = 0;
  bool flippedBeforeDetection = false;
  std::size_t pulsesUntilFlip = 0;
};

/// Would a per-line activation monitor raise the alarm before the reference
/// attack flips its victim?
MonitorOutcome evaluateMonitor(const StudyConfig& base, const HammerPulse& pulse,
                               const MonitorConfig& monitor,
                               std::size_t attackBudget);

/// ---- duty-cycle throttling ---------------------------------------------------

struct ThrottleOutcome {
  double dutyCycle = 0.0;
  bool flipped = false;
  std::size_t pulses = 0;
  double wallClockTime = 0.0;  ///< Attack duration including enforced idle [s].
};

/// Evaluate pulses-to-flip when the controller enforces the given duty
/// cycles (width / period). The paper's thermal analysis predicts this is
/// no defence: the victim heating happens within each pulse.
std::vector<ThrottleOutcome> evaluateThrottling(const StudyConfig& base,
                                                double pulseWidth,
                                                const std::vector<double>& dutyCycles,
                                                std::size_t attackBudget);

}  // namespace nh::core
