#include "core/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "xbar/controller.hpp"
#include "xbar/vmm.hpp"

namespace nh::core {

// ---- PrivilegeEscalationScenario ---------------------------------------------

PrivilegeEscalationScenario::PrivilegeEscalationScenario(StudyConfig config)
    : config_(std::move(config)) {}

PrivilegeEscalationReport PrivilegeEscalationScenario::run(const HammerPulse& pulse,
                                                           std::size_t budget) {
  AttackStudy study(config_);
  auto bench = study.makeBench();
  auto& array = *bench.array;
  auto& engine = *bench.engine;
  xbar::MemoryController controller(engine);

  // Page-table fragment: the victim bit is the write-permission bit of a
  // kernel page (must stay 0); the attacker legitimately owns the adjacent
  // cell on the same word line and may write it at will.
  PrivilegeEscalationReport report;
  report.victimBit = {config_.rows / 2, config_.cols / 2 - 1};
  report.attackerCell = {config_.rows / 2, config_.cols / 2};

  // Initial memory image: a deterministic checkerboard-ish pattern with the
  // victim bit cleared and the attacker's cell set (it wrote it itself).
  std::vector<bool> image(array.cellCount());
  for (std::size_t r = 0; r < array.rows(); ++r) {
    for (std::size_t c = 0; c < array.cols(); ++c) {
      image[r * array.cols() + c] = ((r * 3 + c * 5) % 7) < 3;
    }
  }
  image[report.victimBit.row * array.cols() + report.victimBit.col] = false;
  image[report.attackerCell.row * array.cols() + report.attackerCell.col] = true;
  controller.writeImage(image);
  report.memoryBefore = controller.readImage();

  // The hammer loop: repeated SET writes to the attacker-owned cell.
  BitFlipDetector detector(config_.detector);
  bool flipped = false;
  std::size_t pulsesToFlip = 0;
  const auto stop = [&](std::size_t pulseIndex) {
    if (detector.classify(array.cell(report.victimBit.row, report.victimBit.col)) ==
        ReadState::Lrs) {
      flipped = true;
      pulsesToFlip = pulseIndex;
      return true;
    }
    return false;
  };
  const std::size_t applied =
      controller.hammer(report.attackerCell.row, report.attackerCell.col, budget,
                        pulse.width, pulse.period(), stop);

  report.succeeded = flipped;
  report.pulses = flipped ? pulsesToFlip : applied;
  report.attackSeconds = static_cast<double>(report.pulses) * pulse.period();
  report.memoryAfter = controller.readImage();

  for (std::size_t i = 0; i < image.size(); ++i) {
    const std::size_t victimIndex =
        report.victimBit.row * array.cols() + report.victimBit.col;
    if (i != victimIndex && report.memoryAfter[i] != report.memoryBefore[i]) {
      ++report.collateralFlips;
    }
  }
  return report;
}

// ---- WeightAttackScenario ------------------------------------------------------

WeightAttackScenario::WeightAttackScenario(StudyConfig config, std::uint64_t seed)
    : config_(std::move(config)), rng_(seed) {
  if (config_.rows != 5 || config_.cols != 5) {
    throw std::invalid_argument("WeightAttackScenario: requires a 5x5 array");
  }
  generateData();
  train();
}

void WeightAttackScenario::generateData() {
  // Two Gaussian blobs in [0,1]^4. Feature 0 carries almost all of the
  // class signal (a deliberately non-redundant model, so corrupting its
  // weight is observable); the rest are weakly informative.
  const double mean0[4] = {0.30, 0.55, 0.47, 0.52};
  const double mean1[4] = {0.70, 0.45, 0.53, 0.48};
  const double sigma = 0.13;
  const auto sample = [&](const double* mean, std::vector<double>& x) {
    x.resize(4);
    for (int d = 0; d < 4; ++d) {
      x[d] = std::clamp(mean[d] + rng_.normal(0.0, sigma), 0.0, 1.0);
    }
  };
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x;
    const int y = i % 2;
    sample(y == 0 ? mean0 : mean1, x);
    trainX_.push_back(x);
    trainY_.push_back(y);
  }
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x;
    const int y = i % 2;
    sample(y == 0 ? mean0 : mean1, x);
    testX_.push_back(x);
    testY_.push_back(y);
  }
}

void WeightAttackScenario::train() {
  // Perceptron-style training of two one-vs-other scorers on (x, bias=1).
  const double lr = 0.05;
  for (int epoch = 0; epoch < 60; ++epoch) {
    for (std::size_t i = 0; i < trainX_.size(); ++i) {
      const auto& x = trainX_[i];
      double score[2];
      for (int k = 0; k < 2; ++k) {
        score[k] = weights_[k][4];
        for (int d = 0; d < 4; ++d) score[k] += weights_[k][d] * x[d];
      }
      const int predicted = score[1] > score[0] ? 1 : 0;
      const int actual = trainY_[i];
      if (predicted != actual) {
        for (int d = 0; d < 4; ++d) {
          weights_[actual][d] += lr * x[d];
          weights_[predicted][d] -= lr * x[d];
        }
        weights_[actual][4] += lr;
        weights_[predicted][4] -= lr;
      }
    }
  }
  // Ternarise: +-1 where the weight is significant, 0 elsewhere.
  double maxAbs = 1e-12;
  for (const auto& row : weights_) {
    for (const double w : row) maxAbs = std::max(maxAbs, std::fabs(w));
  }
  for (int k = 0; k < 2; ++k) {
    for (int d = 0; d < 5; ++d) {
      const double w = weights_[k][d];
      ternary_[k][d] = std::fabs(w) < 0.25 * maxAbs ? 0 : (w > 0 ? 1 : -1);
    }
  }
}

int WeightAttackScenario::digitalPredict(const std::vector<double>& x) const {
  double score[2];
  for (int k = 0; k < 2; ++k) {
    score[k] = weights_[k][4];
    for (int d = 0; d < 4; ++d) score[k] += weights_[k][d] * x[d];
  }
  return score[1] > score[0] ? 1 : 0;
}

int WeightAttackScenario::analogPredict(const xbar::CrossbarArray& array,
                                        const std::vector<double>& x) const {
  // Word-line voltages: features scaled to [0, 0.2 V]. The bias row is
  // driven at the feature midpoint (0.1 V = 0.2 * 0.5): with ternary +-1
  // weights the differential score then crosses zero at the decision
  // boundary of the trained float classifier.
  nh::util::Vector inputs(5, 0.0);
  for (int d = 0; d < 4; ++d) inputs[d] = 0.2 * x[d];
  inputs[4] = 0.1;
  const nh::util::Vector currents = xbar::vmmCurrents(array, inputs);
  // Differential column pairs: class k score = I(2k) - I(2k+1).
  const double score0 = currents[0] - currents[1];
  const double score1 = currents[2] - currents[3];
  return score1 > score0 ? 1 : 0;
}

double WeightAttackScenario::analogAccuracy(const xbar::CrossbarArray& array) const {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < testX_.size(); ++i) {
    if (analogPredict(array, testX_[i]) == testY_[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(testX_.size());
}

WeightAttackReport WeightAttackScenario::run(const HammerPulse& pulse,
                                             std::size_t budget) {
  AttackStudy study(config_);
  auto bench = study.makeBench();
  auto& array = *bench.array;
  auto& engine = *bench.engine;

  // Map ternary weights: weight (k, d) = G(d, 2k) - G(d, 2k+1); column 4 is
  // scratch space the attacker may write.
  for (int k = 0; k < 2; ++k) {
    for (int d = 0; d < 5; ++d) {
      if (ternary_[k][d] > 0) {
        array.setState(static_cast<std::size_t>(d), static_cast<std::size_t>(2 * k),
                       xbar::CellState::Lrs);
      } else if (ternary_[k][d] < 0) {
        array.setState(static_cast<std::size_t>(d),
                       static_cast<std::size_t>(2 * k + 1), xbar::CellState::Lrs);
      }
    }
  }

  WeightAttackReport report;
  {
    std::size_t correct = 0;
    for (std::size_t i = 0; i < testX_.size(); ++i) {
      if (digitalPredict(testX_[i]) == testY_[i]) ++correct;
    }
    report.digitalAccuracy =
        static_cast<double>(correct) / static_cast<double>(testX_.size());
  }
  report.accuracyBefore = analogAccuracy(array);

  // Target: the negative-column cell of the strongest positive class-1
  // weight -- flipping it HRS->LRS cancels that weight differentially.
  int targetRow = -1;
  for (int d = 0; d < 5; ++d) {
    if (ternary_[1][d] > 0 &&
        (targetRow < 0 ||
         std::fabs(weights_[1][d]) > std::fabs(weights_[1][targetRow]))) {
      targetRow = d;
    }
  }
  if (targetRow < 0) {
    // Fall back to any HRS cell in the negative column of class 1.
    for (int d = 0; d < 5; ++d) {
      if (array.stateOf(static_cast<std::size_t>(d), 3) == xbar::CellState::Hrs) {
        targetRow = d;
        break;
      }
    }
  }
  if (targetRow < 0) throw std::runtime_error("WeightAttackScenario: no target cell");

  const xbar::CellCoord victim{static_cast<std::size_t>(targetRow), 3};
  const xbar::CellCoord aggressor{static_cast<std::size_t>(targetRow), 4};
  array.setState(aggressor.row, aggressor.col, xbar::CellState::Lrs);

  const xbar::LineBias bias =
      xbar::selectBias(xbar::BiasScheme::Half, array.rows(), array.cols(),
                       aggressor.row, aggressor.col, pulse.amplitude);
  bool flipped = false;
  std::size_t pulsesToFlip = 0;
  // Hammer until the weight cell saturates near deep LRS: the Schottky
  // barrier depends exponentially on the state, so even x = 0.9 leaves the
  // cell ~2x more resistive than its differential partner and the weight
  // would only shrink, not cancel.
  const auto stop = [&](std::size_t pulseIndex) {
    if (array.cell(victim.row, victim.col).normalisedState() >= 0.98) {
      flipped = true;
      pulsesToFlip = pulseIndex;
      return true;
    }
    return false;
  };
  const auto train =
      engine.applyPulseTrain(bias, pulse.width, pulse.gap(), budget, stop);

  report.weightFlipped = flipped;
  report.pulses = flipped ? pulsesToFlip : train.pulsesApplied;
  report.flippedWeightCell = victim;
  report.flippedWeightDescription =
      "class-1 weight " + std::to_string(targetRow) +
      (targetRow == 4 ? " (bias)" : " (feature " + std::to_string(targetRow) + ")");
  report.accuracyAfter = analogAccuracy(array);
  return report;
}

}  // namespace nh::core
