#pragma once
/// \file configio.hpp
/// Configuration-file front end (paper Sec. IV-B: "The platform can be
/// parameterized based on configuration files"). Maps INI files onto
/// StudyConfig / AttackConfig so experiments are reproducible from plain
/// text, e.g.:
///
///   [array]
///   rows = 5
///   cols = 5
///   [geometry]
///   spacing_nm = 50
///   fem_alphas = false
///   [environment]
///   ambient_K = 300
///   [cell]
///   activation_energy_set_eV = 1.10
///   [attack]
///   pattern = single        ; single|row-pair|column-pair|cross|ring
///   amplitude_V = 1.05
///   width_ns = 50
///   duty = 0.5
///   max_pulses = 1000000

#include <filesystem>

#include "core/study.hpp"
#include "util/config.hpp"

namespace nh::core {

/// Build a StudyConfig from a parsed INI config. Unknown keys are ignored;
/// malformed values throw (std::invalid_argument from the config layer).
StudyConfig studyConfigFrom(const nh::util::Config& config);
StudyConfig studyConfigFromFile(const std::filesystem::path& path);

/// Build the attack description (pattern, pulse, budget) for a study of the
/// given dimensions. The victim is the array centre.
AttackConfig attackConfigFrom(const nh::util::Config& config, std::size_t rows,
                              std::size_t cols);

/// Serialise a StudyConfig back into INI text (round-trips through
/// studyConfigFrom for the supported keys).
std::string toConfigText(const StudyConfig& config);

/// Parse a pattern name ("single", "row-pair", ...). Throws on unknown.
AttackPattern patternFromName(const std::string& name);

}  // namespace nh::core
