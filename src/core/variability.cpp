#include "core/variability.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/campaign.hpp"

namespace nh::core {

namespace {

/// Shared reduction: per-trial pulses -> distribution summary. Defines the
/// degenerate cases documented on VariabilityResult (0 flips -> all-zero
/// stats; 1 flip -> min == median == max, spread 0).
void summarize(VariabilityResult& result) {
  result.flipRate =
      static_cast<double>(result.flips) / static_cast<double>(result.trials);
  if (result.pulsesPerTrial.empty()) return;
  std::vector<std::size_t> sorted = result.pulsesPerTrial;
  std::sort(sorted.begin(), sorted.end());
  result.minPulses = sorted.front();
  result.maxPulses = sorted.back();
  result.medianPulses = sorted[sorted.size() / 2];
  if (result.minPulses > 0)
    result.spreadDecades = std::log10(static_cast<double>(result.maxPulses) /
                                      static_cast<double>(result.minPulses));
}

}  // namespace

VariabilityResult runVariabilityStudy(const VariabilityConfig& config) {
  if (config.trials == 0) {
    throw std::invalid_argument("runVariabilityStudy: trials must be > 0");
  }

  VariabilityResult result;
  result.trials = config.trials;

  if (config.plan == TrialRngPlan::PerTrialStream) {
    // Counter-based streams: delegate to the campaign runner, which batches
    // the trials through the thread pool with bit-identical results for any
    // thread count.
    CampaignConfig campaign;
    campaign.base = config.base;
    campaign.pulse = config.pulse;
    campaign.trials = config.trials;
    campaign.sigma = config.sigma;
    campaign.seed = config.seed;
    campaign.budget = config.budget;
    campaign.threads = config.threads;
    const CampaignResult r = runCampaign(campaign);
    result.flips = r.flips;
    result.pulsesPerTrial = r.pulsesPerFlip;
    summarize(result);
    return result;
  }

  // Sequential plan: one generator, drawn in trial order. The draw order is
  // part of the ablation_variability baseline contract — keep it exactly.
  nh::util::Rng rng(config.seed);
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    StudyConfig cfg = config.base;
    cfg.cellParams = config.base.cellParams.withVariability(rng, config.sigma);
    AttackStudy study(cfg);
    const AttackResult r = study.attackCenter(config.pulse, config.budget);
    if (r.flipped) {
      ++result.flips;
      result.pulsesPerTrial.push_back(r.pulsesToFlip);
    }
  }
  summarize(result);
  return result;
}

}  // namespace nh::core
