#include "core/variability.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nh::core {

VariabilityResult runVariabilityStudy(const VariabilityConfig& config) {
  if (config.trials == 0) {
    throw std::invalid_argument("runVariabilityStudy: trials must be > 0");
  }
  nh::util::Rng rng(config.seed);

  VariabilityResult result;
  result.trials = config.trials;
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    StudyConfig cfg = config.base;
    cfg.cellParams = config.base.cellParams.withVariability(rng, config.sigma);
    AttackStudy study(cfg);
    const AttackResult r = study.attackCenter(config.pulse, config.budget);
    if (r.flipped) {
      ++result.flips;
      result.pulsesPerTrial.push_back(r.pulsesToFlip);
    }
  }
  result.flipRate =
      static_cast<double>(result.flips) / static_cast<double>(result.trials);

  if (!result.pulsesPerTrial.empty()) {
    std::vector<std::size_t> sorted = result.pulsesPerTrial;
    std::sort(sorted.begin(), sorted.end());
    result.minPulses = sorted.front();
    result.maxPulses = sorted.back();
    result.medianPulses = sorted[sorted.size() / 2];
    result.spreadDecades = std::log10(static_cast<double>(result.maxPulses) /
                                      static_cast<double>(result.minPulses));
  }
  return result;
}

}  // namespace nh::core
