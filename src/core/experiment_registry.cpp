#include "core/experiment_registry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <map>
#include <memory>
#include <stdexcept>

#include "core/campaign.hpp"
#include "core/defense.hpp"
#include "core/variability.hpp"
#include "fem/alpha.hpp"
#include "jart/kinetics.hpp"
#include "util/annotations.hpp"
#include "util/csv.hpp"
#include "util/linreg.hpp"
#include "util/table.hpp"
#include "xbar/sneak.hpp"

namespace nh::core {

namespace {

using nh::util::AsciiTable;
using Formatter = std::function<std::string(const ResultValue&)>;
using Shape = ColumnSpec::Shape;
using Tol = ColumnSpec::Tolerance;

/// Baseline tolerance policy (see ColumnTolerance): axis echoes and labels
/// compare exactly (default Tol{}); physical outputs get headroom for
/// cross-compiler floating-point drift -- counts can shift by a few pulses
/// near a flip threshold, FEM/integration results by ~the solver tolerance.
constexpr Tol kCountTol{0.05, 2.0, false};     ///< Pulse/trial counts.
constexpr Tol kTimeTol{0.05, 1e-12, false};    ///< Stress times, energies.
constexpr Tol kTempTol{5e-3, 0.5, false};      ///< Temperatures [K].
constexpr Tol kFracTol{0.02, 5e-3, false};     ///< Fractions, alphas, ratios.
constexpr Tol kRatioTol{0.1, 0.05, false};     ///< Cross-row count ratios.
constexpr Tol kKineticsTol{0.15, 1e-10, false};///< t_SET (exp. sensitivity).
constexpr Tol kIgnoreTol{0.0, 0.0, true};      ///< Wall-clock measurements.

/// SI formatting after scaling the stored cell value (cells keep the CSV
/// unit, e.g. nanoseconds; the ASCII table shows "50 ns" via scale 1e-9).
Formatter siScaled(double scale, std::string unit, int decimals = 0) {
  return [scale, unit = std::move(unit), decimals](const ResultValue& v) {
    if (v.kind == ResultValue::Kind::Text) return v.text;
    return AsciiTable::si(v.number * scale, unit, decimals);
  };
}

/// "12.3 %" from a stored fraction.
Formatter percent(int decimals) {
  return [decimals](const ResultValue& v) {
    if (v.kind == ResultValue::Kind::Text) return v.text;
    return AsciiTable::fixed(100.0 * v.number, decimals) + " %";
  };
}

double pulsesOf(const AttackResult& r) {
  return static_cast<double>(r.pulsesToFlip);
}

/// Validated integer axis value in [lo, hi]: several specs use an axis as
/// a case index or array size, and the CLI's --set can feed it anything --
/// reject instead of indexing out of bounds (or the UB of casting a
/// negative double to an unsigned type).
std::size_t integerAxis(const PointContext& ctx, const std::string& axis,
                        std::size_t lo, std::size_t hi) {
  const double v = ctx.value(axis);
  if (!(v >= static_cast<double>(lo)) || v > static_cast<double>(hi) ||
      v != std::floor(v)) {
    throw std::invalid_argument(
        "experiment '" + ctx.spec->name + "': axis '" + axis +
        "' must be an integer in [" + std::to_string(lo) + ", " +
        std::to_string(hi) + "], got " + nh::util::formatDouble(v));
  }
  return static_cast<std::size_t>(v);
}

/// Case-table index: integerAxis over [0, count-1].
std::size_t caseIndex(const PointContext& ctx, const std::string& axis,
                      std::size_t count) {
  return integerAxis(ctx, axis, 0, count - 1);
}

// ---- Fig. 3 ---------------------------------------------------------------

ExperimentSpec fig3aSpec() {
  ExperimentSpec spec;
  spec.name = "fig3a_pulse_length";
  spec.title = "Fig. 3a -- impact of the pulse length";
  spec.description =
      "centre-cell attack, V_SET = 1.05 V, 50% duty, spacing 50 nm, "
      "T0 = 300 K";
  spec.paperShape =
      "pulses-to-flip falls ~1/length (10^4 -> 10^3 in the paper); "
      "extra penalty at short pulses from the thermal ramp";
  spec.tableTitle = "Fig. 3a: pulses to trigger a bit-flip vs pulse length";
  std::vector<double> widths;
  for (int ns = 10; ns <= 100; ns += 10) widths.push_back(ns * 1e-9);
  spec.axes = {{"width", widths, {20e-9, 50e-9, 100e-9}, {}}};
  spec.columns = {
      {"pulse_length_ns", "pulse length", siScaled(1e-9, "s")},
      {"pulses", "# pulses to flip", colfmt::grouped(), Shape::Scalar,
       kCountTol},
      {"stress_time_s", "stress time", colfmt::si("s", 2), Shape::Scalar,
       kTimeTol},
      {"flipped", "flipped", colfmt::flipped()},
  };
  spec.run = [](const PointContext& ctx) {
    HammerPulse pulse;
    pulse.width = ctx.value("width");
    const AttackResult r = ctx.study->attackCenter(pulse, ctx.maxPulses);
    return std::vector<ResultValue>{
        ResultValue::num(pulse.width * 1e9), ResultValue::num(pulsesOf(r)),
        ResultValue::num(r.stressTime), ResultValue::boolean(r.flipped)};
  };
  spec.finalize = [](ExperimentResult& result) {
    if (result.rows.size() < 2) return;
    const auto& first = result.rows.front();
    const auto& last = result.rows.back();
    if (first[3].number == 0.0 || last[3].number == 0.0) return;
    const double slope = std::log10(last[1].number / first[1].number) /
                         std::log10(last[0].number / first[0].number);
    result.notes.push_back("log-log slope (first->last point): " +
                           AsciiTable::fixed(slope, 2) + "  (paper: ~ -1)");
  };
  return spec;
}

ExperimentSpec fig3bSpec() {
  ExperimentSpec spec;
  spec.name = "fig3b_electrode_spacing";
  spec.title = "Fig. 3b -- impact of the electrode spacing";
  spec.description =
      "centre-cell attack, pulse lengths {50, 75, 100} ns, T0 = 300 K";
  spec.paperShape =
      "pulses-to-flip rises ~2 decades from 10 nm to 90 nm; longer "
      "pulses need proportionally fewer";
  spec.tableTitle =
      "Fig. 3b: pulses to trigger a bit-flip vs electrode spacing";
  spec.axes = {{"spacing",
                {10e-9, 50e-9, 90e-9},
                {},
                [](StudyConfig& cfg, double v) { cfg.spacing = v; }},
               {"width", {50e-9, 75e-9, 100e-9}, {50e-9}, {}}};
  spec.columns = {
      {"spacing_nm", "spacing", siScaled(1e-9, "m")},
      {"pulse_length_ns", "pulse length", siScaled(1e-9, "s")},
      {"pulses", "# pulses to flip", colfmt::grouped(), Shape::Scalar,
       kCountTol},
      {"flipped", "flipped", colfmt::flipped()},
  };
  spec.run = [](const PointContext& ctx) {
    HammerPulse pulse;
    pulse.width = ctx.value("width");
    const AttackResult r = ctx.study->attackCenter(pulse, ctx.maxPulses);
    return std::vector<ResultValue>{
        ResultValue::num(ctx.value("spacing") * 1e9),
        ResultValue::num(pulse.width * 1e9), ResultValue::num(pulsesOf(r)),
        ResultValue::boolean(r.flipped)};
  };
  spec.notes = {
      "paper @50 ns: ~10^3 (10 nm) -> ~10^4 (50 nm) -> ~10^5 (90 nm)"};
  return spec;
}

ExperimentSpec fig3cSpec() {
  ExperimentSpec spec;
  spec.name = "fig3c_ambient_temperature";
  spec.title = "Fig. 3c -- impact of the ambient temperature";
  spec.description =
      "centre-cell attack, spacing 50 nm, pulse lengths {10, 30, 50} ns";
  spec.paperShape =
      "~3 decades fewer pulses from 273 K to 373 K (Arrhenius "
      "switching kinetics)";
  spec.tableTitle =
      "Fig. 3c: pulses to trigger a bit-flip vs ambient temperature";
  // 273 K at 10 ns needs a few million pulses -- the budget caps it there.
  spec.maxPulses = 20'000'000;
  spec.axes = {{"ambient",
                {273.0, 298.0, 323.0, 348.0, 373.0},
                {298.0, 348.0},
                [](StudyConfig& cfg, double v) { cfg.ambientK = v; }},
               {"width", {10e-9, 30e-9, 50e-9}, {50e-9}, {}}};
  spec.columns = {
      {"ambient_K", "ambient", colfmt::fixed(0, " K")},
      {"pulse_length_ns", "pulse length", siScaled(1e-9, "s")},
      {"pulses", "# pulses to flip", colfmt::grouped(), Shape::Scalar,
       kCountTol},
      {"flipped", "flipped", colfmt::flipped()},
  };
  spec.run = [](const PointContext& ctx) {
    HammerPulse pulse;
    pulse.width = ctx.value("width");
    const AttackResult r = ctx.study->attackCenter(pulse, ctx.maxPulses);
    return std::vector<ResultValue>{
        ResultValue::num(ctx.value("ambient")),
        ResultValue::num(pulse.width * 1e9), ResultValue::num(pulsesOf(r)),
        ResultValue::boolean(r.flipped)};
  };
  spec.notes = {"paper @10 ns: ~10^5 (273 K) -> ~10^2..10^3 (373 K)"};
  return spec;
}

ExperimentSpec fig3dSpec() {
  ExperimentSpec spec;
  spec.name = "fig3d_attack_patterns";
  spec.title = "Fig. 3d-h -- impact of the attack pattern";
  spec.description =
      "victim = centre cell, aggressors hammered round-robin, "
      "spacing 50 nm, 50 ns pulses, T0 = 300 K";
  spec.paperShape =
      "word-line aggressors dominate: the row pair halves the pulse "
      "count; off-line aggressors add heat but dilute the victim's "
      "V/2 stress duty";
  spec.tableTitle =
      "Fig. 3d: pulses to flip the centre victim per attack pattern";
  spec.fastMaxPulses = 500'000;
  const std::size_t patternCount = allPatterns().size();
  std::vector<double> indices(patternCount);
  for (std::size_t i = 0; i < patternCount; ++i) {
    indices[i] = static_cast<double>(i);
  }
  spec.axes = {{"pattern", indices, {}, {}}};
  spec.columns = {
      {"pattern", "pattern", {}},
      {"aggressors", "aggressors", {}},
      {"pulses", "# pulses to flip", colfmt::grouped(), Shape::Scalar,
       kCountTol},
      {"flipped", "flipped", colfmt::flipped()},
  };
  spec.run = [](const PointContext& ctx) {
    const AttackPattern pattern =
        allPatterns()[caseIndex(ctx, "pattern", allPatterns().size())];
    const HammerPulse pulse;  // 1.05 V / 50 ns / 50% duty
    const AttackResult r =
        ctx.study->attackPattern(pattern, pulse, ctx.maxPulses);
    const auto aggressors = patternAggressors(
        pattern, {ctx.config.rows / 2, ctx.config.cols / 2}, ctx.config.rows,
        ctx.config.cols);
    return std::vector<ResultValue>{
        ResultValue::str(patternName(pattern)),
        ResultValue::num(static_cast<double>(aggressors.size())),
        ResultValue::num(pulsesOf(r)), ResultValue::boolean(r.flipped)};
  };
  spec.notes = {
      "single/row-pair hammer the victim's word line (strong coupling);",
      "column-pair works through the weaker top-electrode path; cross/ring",
      "add heat but spend pulses on lines that do not stress the victim."};
  return spec;
}

// ---- ablations ------------------------------------------------------------

ExperimentSpec alphaTruncationSpec() {
  ExperimentSpec spec;
  spec.name = "ablation_alpha_truncation";
  spec.title = "ablation -- crosstalk truncation radius";
  spec.description =
      "centre attack at 10 nm / 300 K / 50 ns, alpha table truncated";
  spec.paperShape =
      "radius 0 kills the attack (it is thermal); radius 1 misses "
      "the mutual heating of the two word-line victims (they sit "
      "two columns apart) and overestimates the pulse count";
  spec.tableTitle = "pulses-to-flip vs coupling truncation";
  spec.base.spacing = 10e-9;
  spec.maxPulses = 2'000'000;
  spec.axes = {{"radius", {2.0, 1.0, 0.0}, {}, {}}};
  spec.columns = {
      {"radius", "kept couplings",
       [](const ResultValue& v) {
         if (v.kind == ResultValue::Kind::Text) return v.text;
         if (v.number == 2.0) return std::string("radius 2 (full)");
         if (v.number == 1.0) return std::string("radius 1 (direct ring)");
         return std::string("radius 0 (no crosstalk)");
       }},
      {"pulses", "pulses-to-flip", colfmt::grouped(), Shape::Scalar, kCountTol},
      {"flipped", "flipped", colfmt::flipped()},
      {"vs_full", "vs full table", colfmt::fixed(2, "x"), Shape::Scalar,
       kRatioTol},
  };
  spec.run = [](const PointContext& ctx) {
    const auto radius =
        static_cast<long long>(integerAxis(ctx, "radius", 0, 2));
    auto bench = ctx.study->makeBench();
    xbar::AlphaTable table = ctx.study->alphas();
    table.truncate(radius);
    xbar::FastEngine engine(*bench.array, table, ctx.config.engineOptions);
    AttackEngine attack(engine, ctx.config.detector);
    AttackConfig cfg;
    cfg.aggressors = {{ctx.config.rows / 2, ctx.config.cols / 2}};
    cfg.maxPulses = ctx.maxPulses;
    const AttackResult r = attack.run(cfg);
    return std::vector<ResultValue>{
        ResultValue::num(static_cast<double>(radius)),
        ResultValue::num(pulsesOf(r)), ResultValue::boolean(r.flipped),
        ResultValue::str("-")};
  };
  spec.finalize = [](ExperimentResult& result) {
    // The ratio column compares to the full (radius 2) table; located by
    // axis value so --set reorderings cannot silently shift the reference.
    const std::vector<ResultValue>* full = nullptr;
    for (const auto& row : result.rows) {
      if (row[0].number == 2.0) full = &row;
    }
    if (!full || (*full)[2].number == 0.0 || (*full)[1].number <= 0.0) return;
    const double fullPulses = (*full)[1].number;
    for (auto& row : result.rows) {
      if (row[2].number != 0.0) {
        row[3] = ResultValue::num(row[1].number / fullPulses);
      }
    }
  };
  spec.notes = {
      "radius 0 removes the thermal coupling entirely: the half-select",
      "stress alone cannot flip the victim within the budget -- the",
      "attack is thermal, not electrical (paper Sec. III).",
      "radius 1 drops the (0,2) coupling between the two word-line",
      "victims, losing their cooperative self-heating near the flip."};
  return spec;
}

ExperimentSpec batchingSpec() {
  ExperimentSpec spec;
  spec.name = "ablation_batching";
  spec.title = "ablation -- pulse-batching accelerator";
  spec.description = "centre attack at 30 nm / 300 K / 50 ns; exact vs batched";
  spec.paperShape =
      "batched pulse counts within a few % of exact at ~10x less wall-clock";
  spec.tableTitle = "batching accuracy / speed trade-off";
  spec.base.spacing = 30e-9;  // flips in a few thousand pulses: exact feasible
  spec.maxPulses = 2'000'000;
  // The rows carry wall-clock measurements: points must not run
  // concurrently or they time each other under core contention and the
  // speedup column stops measuring the accelerator.
  spec.serialPoints = true;
  // drift_limit 0 encodes the exact (unbatched) reference run.
  spec.axes = {{"drift_limit", {0.0, 0.0005, 0.002, 0.01}, {0.0, 0.002},
                [](StudyConfig& cfg, double v) {
                  cfg.engineOptions.enableBatching = v > 0.0;
                  if (v > 0.0) cfg.engineOptions.batchDriftLimit = v;
                }}};
  spec.columns = {
      {"drift_limit", "mode / drift limit",
       [](const ResultValue& v) {
         if (v.kind == ResultValue::Kind::Text) return v.text;
         return v.number == 0.0 ? std::string("exact")
                                : AsciiTable::fixed(v.number, 4);
       }},
      {"pulses", "pulses-to-flip", colfmt::grouped(), Shape::Scalar, kCountTol},
      {"error_frac", "error vs exact", percent(2), Shape::Scalar, kRatioTol},
      {"wall_s", "wall [s]", colfmt::fixed(2), Shape::Scalar, kIgnoreTol},
      {"speedup", "speedup", colfmt::fixed(1, "x"), Shape::Scalar, kIgnoreTol},
  };
  spec.run = [](const PointContext& ctx) {
    const auto t0 = std::chrono::steady_clock::now();
    const AttackResult r =
        ctx.study->attackCenter(HammerPulse{}, ctx.maxPulses);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    return std::vector<ResultValue>{
        ResultValue::num(ctx.value("drift_limit")),
        ResultValue::num(r.flipped ? pulsesOf(r) : 0.0), ResultValue::str("-"),
        ResultValue::num(wall), ResultValue::str("-")};
  };
  spec.finalize = [](ExperimentResult& result) {
    // Locate the exact run by its axis value (drift_limit == 0): --set can
    // reorder or drop it, and then the derived columns must stay "-".
    const std::vector<ResultValue>* exact = nullptr;
    for (auto& row : result.rows) {
      if (row[0].number == 0.0) {
        row[4] = ResultValue::num(1.0);
        if (!exact) exact = &row;
      }
    }
    if (!exact) return;
    const double exactPulses = (*exact)[1].number;
    const double exactWall = (*exact)[3].number;
    for (auto& row : result.rows) {
      if (row[0].number == 0.0) continue;
      if (exactPulses > 0.0) {
        row[2] = ResultValue::num(std::abs(row[1].number - exactPulses) /
                                  exactPulses);
      }
      if (row[3].number > 0.0) {
        row[4] = ResultValue::num(exactWall / row[3].number);
      }
    }
  };
  spec.notes = {
      "points run serially (never concurrently) so the wall-clock column is",
      "honest; it still varies run to run -- the pulse counts do not."};
  return spec;
}

ExperimentSpec hammerAmplitudeSpec() {
  ExperimentSpec spec;
  spec.name = "ablation_hammer_amplitude";
  spec.title = "ablation -- hammer pulse amplitude";
  spec.description =
      "centre attack at 50 nm / 300 K / 50 ns, amplitude swept "
      "around the nominal V_SET = 1.05 V";
  spec.paperShape =
      "each +0.1 V cuts pulses-to-flip by roughly an order of "
      "magnitude (sinh field term + hotter aggressor)";
  spec.tableTitle = "pulses-to-flip vs hammer amplitude";
  spec.maxPulses = 30'000'000;
  spec.axes = {
      {"amplitude", {0.85, 0.95, 1.05, 1.15, 1.25}, {1.05, 1.25}, {}}};
  spec.columns = {
      {"amplitude_V", "amplitude", colfmt::fixed(2, " V")},
      {"half_select_V", "half-select stress", colfmt::fixed(3, " V")},
      {"pulses", "# pulses to flip", colfmt::grouped(), Shape::Scalar,
       kCountTol},
      {"flipped", "flipped", colfmt::flipped()},
  };
  spec.run = [](const PointContext& ctx) {
    HammerPulse pulse;
    pulse.amplitude = ctx.value("amplitude");
    const AttackResult r = ctx.study->attackCenter(pulse, ctx.maxPulses);
    return std::vector<ResultValue>{
        ResultValue::num(pulse.amplitude),
        ResultValue::num(pulse.amplitude / 2.0), ResultValue::num(pulsesOf(r)),
        ResultValue::boolean(r.flipped)};
  };
  spec.notes = {
      "amplitudes above ~1.3 V start disturbing unselected cells in",
      "normal operation, so the attacker cannot raise V arbitrarily."};
  return spec;
}

ExperimentSpec thermalTauSpec() {
  ExperimentSpec spec;
  spec.name = "ablation_thermal_tau";
  spec.title = "ablation -- filament thermal time constant tau_th";
  spec.description =
      "centre attack at 50 nm / 300 K, pulse lengths 10 and 100 ns";
  spec.paperShape =
      "larger tau_th inflates pulses-to-flip at short pulse lengths "
      "far more than at long ones";
  spec.tableTitle = "pulses-to-flip vs thermal time constant";
  spec.maxPulses = 20'000'000;
  spec.axes = {{"tau", {0.5e-9, 2e-9, 5e-9}, {2e-9},
                [](StudyConfig& cfg, double v) { cfg.cellParams.tauThermal = v; }}};
  spec.columns = {
      {"tau_ns", "tau_th", siScaled(1e-9, "s", 1)},
      {"pulses_10ns", "pulses @10 ns", colfmt::grouped(), Shape::Scalar,
       kCountTol},
      {"pulses_100ns", "pulses @100 ns", colfmt::grouped(), Shape::Scalar,
       kCountTol},
      {"ratio", "ratio 10ns/100ns", colfmt::fixed(1), Shape::Scalar,
       kRatioTol},
  };
  // Both widths run against the same cached study (the axis only varies
  // tau), so each tau costs one study construction, not two.
  spec.run = [](const PointContext& ctx) {
    double pulses[2] = {0.0, 0.0};
    const double widths[2] = {10e-9, 100e-9};
    for (int i = 0; i < 2; ++i) {
      HammerPulse pulse;
      pulse.width = widths[i];
      const AttackResult r = ctx.study->attackCenter(pulse, ctx.maxPulses);
      pulses[i] = r.flipped ? pulsesOf(r) : 0.0;
    }
    return std::vector<ResultValue>{
        ResultValue::num(ctx.value("tau") * 1e9), ResultValue::num(pulses[0]),
        ResultValue::num(pulses[1]),
        ResultValue::num(pulses[1] > 0.0 ? pulses[0] / pulses[1] : 0.0)};
  };
  spec.notes = {
      "a pure 1/length law would give ratio 10; the excess is the warm-up "
      "tax"};
  return spec;
}

ExperimentSpec schemeDefenseSpec() {
  ExperimentSpec spec;
  spec.name = "ablation_scheme_defense";
  spec.title = "countermeasures -- scheme, scrubbing, monitoring, throttling";
  spec.description =
      "reference attack: centre cell, 10 nm spacing (fast regime), "
      "50 ns pulses, 300 K";
  spec.paperShape =
      "V/3 scheme and fast scrubbing stop the attack; activation "
      "monitors detect it early; throttling does not help";
  spec.tableTitle = "countermeasure effectiveness vs the reference attack";
  spec.base.spacing = 10e-9;
  spec.maxPulses = 1'000'000;
  spec.fastMaxPulses = 200'000;
  // One row per countermeasure case; the scrub/monitor settings scale with
  // the reference (undefended) pulses-to-flip, recomputed per point from the
  // shared cached study -- deterministic, so parallel runs stay
  // bit-identical.
  spec.axes = {{"case", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, {}, {}}};
  // The setting/outcome labels embed counts derived from the reference
  // attack (scrub passes, refresh totals); a single-pulse shift would flip
  // an exact text compare, so the baseline only pins the countermeasure
  // label, the pulse column, and -- via the pulses tolerance -- the verdict.
  spec.columns = {
      {"countermeasure", "countermeasure", {}},
      {"setting", "setting", {}, Shape::Scalar, kIgnoreTol},
      {"pulses", "pulses", colfmt::grouped(), Shape::Scalar, kCountTol},
      {"outcome", "outcome", {}, Shape::Scalar, kIgnoreTol},
  };
  // The undefended reference attack (which the scrub intervals and monitor
  // thresholds scale with) is identical for every point: compute it once
  // per run via a shared memo instead of once per case. call_once keeps the
  // value deterministic under parallel points, so 1-vs-N-thread runs stay
  // bit-identical.
  struct ReferenceMemo {
    nh::util::Mutex mutex;
    std::map<std::size_t, std::size_t> pulsesByBudget
        NH_GUARDED_BY(mutex);  // spec may be re-run
  };
  auto memo = std::make_shared<ReferenceMemo>();
  spec.run = [memo](const PointContext& ctx) {
    const HammerPulse pulse;  // 1.05 V / 50 ns / 50% duty
    const std::size_t budget = ctx.maxPulses;
    const xbar::CellCoord centre{ctx.config.rows / 2, ctx.config.cols / 2};
    auto row = [](std::string what, std::string setting, double pulses,
                  std::string outcome) {
      return std::vector<ResultValue>{
          ResultValue::str(std::move(what)), ResultValue::str(std::move(setting)),
          ResultValue::num(pulses), ResultValue::str(std::move(outcome))};
    };
    const std::size_t which = caseIndex(ctx, "case", 10);
    if (which == 0) {
      const AttackResult r = ctx.study->attackCenter(pulse, budget);
      return row("none (V/2 scheme)", "0.525 V half-select", pulsesOf(r),
                 r.flipped ? "victim flips" : "survives budget");
    }
    if (which == 1) {
      AttackConfig attack;
      attack.aggressors = {centre};
      attack.scheme = xbar::BiasScheme::Third;
      attack.pulse = pulse;
      attack.maxPulses = budget;
      const AttackResult r = ctx.study->attack(attack);
      return row("V/3 biasing scheme", "0.350 V half-select", pulsesOf(r),
                 r.flipped ? "victim flips" : "attack defeated");
    }
    if (which >= 7) {
      const double duty = which == 7 ? 0.5 : which == 8 ? 0.2 : 0.05;
      const auto outcomes =
          evaluateThrottling(ctx.config, pulse.width, {duty}, budget);
      const ThrottleOutcome& o = outcomes.front();
      return row("duty-cycle throttling", "duty " + AsciiTable::fixed(duty, 2),
                 static_cast<double>(o.pulses),
                 o.flipped ? "no help (victim flips)" : "survives budget");
    }
    // Scrub/monitor settings are fractions of the memoised undefended flip
    // count. Computing under the lock serialises the (deterministic)
    // reference attack to exactly one execution per run/budget.
    std::size_t reference;
    {
      const nh::util::MutexLock lock(memo->mutex);
      auto it = memo->pulsesByBudget.find(budget);
      if (it == memo->pulsesByBudget.end()) {
        const AttackResult ref = ctx.study->attackCenter(pulse, budget);
        it = memo->pulsesByBudget
                 .emplace(budget, ref.flipped ? ref.pulsesToFlip : budget)
                 .first;
      }
      reference = it->second;
    }
    if (which >= 2 && which <= 4) {
      const double frac = which == 2 ? 0.25 : which == 3 ? 1.0 : 4.0;
      ScrubbingConfig scrub;
      scrub.intervalPulses = std::max<std::size_t>(
          1, static_cast<std::size_t>(frac * static_cast<double>(reference)));
      const ScrubbingOutcome o =
          evaluateScrubbing(ctx.config, pulse, scrub, 3 * reference);
      return row(
          "refresh scrubbing",
          "interval " + AsciiTable::grouped(
                            static_cast<long long>(scrub.intervalPulses)) +
              " pulses",
          static_cast<double>(o.attackSucceeded ? o.pulsesUntilFlip
                                                : o.pulsesSurvived),
          o.attackSucceeded
              ? "victim flips"
              : "defeated (" + std::to_string(o.scrubPasses) + " passes, " +
                    std::to_string(o.cellsRefreshed) + " refreshes)");
    }
    const double frac = which == 5 ? 0.2 : 2.0;
    MonitorConfig monitor;
    monitor.lineThreshold = std::max<std::size_t>(
        1, static_cast<std::size_t>(frac * static_cast<double>(reference)));
    const MonitorOutcome o = evaluateMonitor(ctx.config, pulse, monitor, budget);
    return row(
        "activation monitor",
        "threshold " +
            AsciiTable::grouped(static_cast<long long>(monitor.lineThreshold)),
        static_cast<double>(o.pulsesUntilDetection),
        !o.attackDetected ? "NOT detected"
        : o.flippedBeforeDetection ? "flip before detection (too slow)"
                                   : "detected before the flip");
  };
  spec.notes = {
      "V/3 trades attack immunity for stress on *all* cells and 3x the",
      "driver effort -- the classic scheme trade-off. Scrubbing faster than",
      "~the flip time defeats the attack at the cost of refresh traffic.",
      "Throttling is flat: victim heating settles within each pulse",
      "(tau_th ~ 2 ns << period), so idle time between pulses is no defence."};
  return spec;
}

ExperimentSpec variabilitySpec() {
  ExperimentSpec spec;
  spec.name = "ablation_variability";
  spec.title = "extension -- device-to-device variability";
  spec.description =
      "Monte-Carlo over perturbed JART parameters, centre attack at "
      "30 nm / 300 K / 50 ns";
  spec.paperShape =
      "pulses-to-flip spreads over ~1 decade at sigma = 5%; flip "
      "rate stays 100% (the attack is robust to variability)";
  spec.tableTitle = "pulses-to-flip distribution under parameter variability";
  spec.base.spacing = 30e-9;
  // Each trial perturbs the cell parameters and builds its own study inside
  // runVariabilityStudy, so the dedup cache has nothing to share here.
  spec.buildStudies = false;
  spec.axes = {{"sigma", {0.02, 0.05, 0.10}, {}, {}}};
  spec.columns = {
      {"sigma", "sigma", colfmt::fixed(2)},
      {"trials", "trials", {}},
      {"flip_rate", "flip rate", percent(0), Shape::Scalar, kFracTol},
      {"min", "min", colfmt::grouped(), Shape::Scalar, kCountTol},
      {"median", "median", colfmt::grouped(), Shape::Scalar, kCountTol},
      {"max", "max", colfmt::grouped(), Shape::Scalar, kCountTol},
      {"spread_decades", "spread [dec]", colfmt::fixed(2), Shape::Scalar,
       kRatioTol},
  };
  spec.run = [](const PointContext& ctx) {
    VariabilityConfig cfg;
    cfg.base = ctx.config;
    cfg.trials = ctx.fast ? 5 : 25;
    cfg.sigma = ctx.value("sigma");
    cfg.budget = ctx.maxPulses;
    const VariabilityResult r = runVariabilityStudy(cfg);
    return std::vector<ResultValue>{
        ResultValue::num(cfg.sigma),
        ResultValue::num(static_cast<double>(r.trials)),
        ResultValue::num(r.flipRate),
        ResultValue::num(static_cast<double>(r.minPulses)),
        ResultValue::num(static_cast<double>(r.medianPulses)),
        ResultValue::num(static_cast<double>(r.maxPulses)),
        ResultValue::num(r.spreadDecades)};
  };
  spec.notes = {
      "spread comes almost entirely from the activation-energy jitter",
      "(kinetics are exponential in Ea/kT)."};
  return spec;
}

// ---- statistical campaigns (core/campaign) --------------------------------

ExperimentSpec campaignFlipRateSpec() {
  ExperimentSpec spec;
  spec.name = "campaign_flip_rate";
  spec.title = "campaign -- flip-rate and pulses-to-flip with intervals";
  spec.description =
      "Monte-Carlo campaign over device variability, centre attack at "
      "30 nm / 300 K / 50 ns; counter-based per-trial RNG streams "
      "(bit-identical for any thread count and batch size)";
  spec.paperShape =
      "flip rate ~100% with a tight Wilson interval; pulses-to-flip "
      "p10..p90 spans about a decade at sigma = 10%";
  spec.tableTitle = "campaign: flip-rate and pulses-to-flip distribution";
  spec.base.spacing = 30e-9;
  // Every trial perturbs the cell parameters and builds its own study inside
  // runCampaign (deliberately bypassing the study-dedup cache).
  spec.buildStudies = false;
  spec.axes = {
      {"sigma", {0.05, 0.10}, {0.05}, {}},
      {"trials", {400.0}, {24.0}, {}},
  };
  spec.columns = {
      {"sigma", "sigma", colfmt::fixed(2)},
      {"trials", "trials", {}},
      {"flip_rate", "flip rate", percent(0), Shape::Scalar, kFracTol},
      {"flip_lo", "Wilson lo", percent(1), Shape::Scalar, kFracTol},
      {"flip_hi", "Wilson hi", percent(1), Shape::Scalar, kFracTol},
      {"p10", "p10", colfmt::grouped(), Shape::Scalar, kCountTol},
      {"median", "median", colfmt::grouped(), Shape::Scalar, kCountTol},
      {"p90", "p90", colfmt::grouped(), Shape::Scalar, kCountTol},
      {"median_lo", "median lo", colfmt::grouped(), Shape::Scalar, kCountTol},
      {"median_hi", "median hi", colfmt::grouped(), Shape::Scalar, kCountTol},
      {"spread_decades", "spread [dec]", colfmt::fixed(2), Shape::Scalar,
       kRatioTol},
  };
  spec.run = [](const PointContext& ctx) {
    CampaignConfig cfg;
    cfg.base = ctx.config;
    cfg.trials = static_cast<std::size_t>(ctx.value("trials"));
    cfg.sigma = ctx.value("sigma");
    cfg.budget = ctx.maxPulses;
    const CampaignResult r = runCampaign(cfg);
    return std::vector<ResultValue>{
        ResultValue::num(cfg.sigma),
        ResultValue::num(static_cast<double>(r.trials)),
        ResultValue::num(r.flipRate),
        ResultValue::num(r.flipRateCI.lo),
        ResultValue::num(r.flipRateCI.hi),
        ResultValue::num(r.p10Pulses),
        ResultValue::num(r.medianPulses),
        ResultValue::num(r.p90Pulses),
        ResultValue::num(r.medianPulsesCI.lo),
        ResultValue::num(r.medianPulsesCI.hi),
        ResultValue::num(r.spreadDecades)};
  };
  spec.notes = {
      "Wilson interval on flips/trials; percentile bootstrap on the median.",
      "Trial i draws from Rng::forStream(seed, i) -- see docs/campaigns.md",
      "for the stream-plan contract the invariance tests pin."};
  return spec;
}

ExperimentSpec campaignDefenseBlindSpec() {
  ExperimentSpec spec;
  spec.name = "campaign_defense_blind";
  spec.title = "campaign -- blinded A/B: V/2 attack vs V/3 countermeasure";
  spec.description =
      "STAR-style blind analysis: two campaign arms (V/2 half-select vs the "
      "V/3 biasing defence) analysed as opaque 'arm A'/'arm B', unblinded "
      "only after the record is frozen; 10 nm / 300 K / 50 ns, paired "
      "per-trial variability streams, 4,000-pulse attacker budget";
  spec.paperShape =
      "the arms separate at 95% confidence: within the budget the V/2 arm "
      "flips every trial (~320 pulses) while V/3 multiplies the required "
      "pulses ~36x past the budget, so the defended arm never flips";
  spec.tableTitle = "blinded A/B campaign: V/2 attack vs V/3 defence";
  spec.base.spacing = 10e-9;
  // The budget sits between the V/2 flip count (~320 pulses) and the V/3
  // flip count (~11.6k; see ablation_scheme_defense): the countermeasure
  // works by pushing the attack past a realistic hammering budget, and the
  // campaign asks whether variability ever closes that gap.
  spec.maxPulses = 4'000;
  spec.fastMaxPulses = 4'000;
  spec.buildStudies = false;
  spec.axes = {
      {"arm", {0.0, 1.0}, {}, {}},
      {"trials", {100.0}, {8.0}, {}},
  };
  spec.columns = {
      {"arm", "blinded arm", {}},
      {"trials", "trials", {}},
      {"flip_rate", "flip rate", percent(0), Shape::Scalar, kFracTol},
      {"flip_lo", "Wilson lo", percent(1), Shape::Scalar, kFracTol},
      {"flip_hi", "Wilson hi", percent(1), Shape::Scalar, kFracTol},
      {"separated", "arms separated", colfmt::yesNo(), Shape::Scalar,
       kFracTol},
      {"label", "unblinded label", {}},
  };
  // One BlindedAbStudy serves both arm rows: memoised per (trials, budget)
  // under a lock, so parallel points run it exactly once and 1-vs-N-thread
  // runs stay bit-identical.
  struct BlindMemo {
    struct Record {
      CampaignResult arms[2];
      std::string labels[2];
      bool separated = false;
    };
    nh::util::Mutex mutex;
    std::map<std::pair<std::size_t, std::size_t>, Record> byKey
        NH_GUARDED_BY(mutex);
  };
  auto memo = std::make_shared<BlindMemo>();
  spec.run = [memo](const PointContext& ctx) {
    const std::size_t arm = caseIndex(ctx, "arm", 2);
    const auto trials = static_cast<std::size_t>(ctx.value("trials"));
    const std::size_t budget = ctx.maxPulses;
    BlindMemo::Record record;
    {
      const nh::util::MutexLock lock(memo->mutex);
      auto it = memo->byKey.find({trials, budget});
      if (it == memo->byKey.end()) {
        CampaignConfig attackArm;
        attackArm.base = ctx.config;
        attackArm.trials = trials;
        attackArm.budget = budget;
        attackArm.scheme = xbar::BiasScheme::Half;
        // The defended arm shares the seed: trial i of both arms sees the
        // same perturbed device (a paired comparison -- lower-variance
        // delta than independent draws).
        CampaignConfig defendedArm = attackArm;
        defendedArm.scheme = xbar::BiasScheme::Third;
        BlindedAbStudy study("V/2 half-select (attack)", attackArm,
                             "V/3 scheme (defended)", defendedArm,
                             /*salt=*/0x57a2b11dULL);
        study.run();
        BlindMemo::Record fresh;
        const auto names = BlindedAbStudy::armNames();
        fresh.arms[0] = study.result(names[0]);
        fresh.arms[1] = study.result(names[1]);
        fresh.separated = study.separated();
        // Freeze the record, then reveal: the labels column below exists
        // only because the analysis is already committed.
        study.unblind();
        fresh.labels[0] = study.trueLabel(names[0]);
        fresh.labels[1] = study.trueLabel(names[1]);
        it = memo->byKey.emplace(std::make_pair(trials, budget), fresh).first;
      }
      record = it->second;
    }
    const CampaignResult& r = record.arms[arm];
    return std::vector<ResultValue>{
        ResultValue::str(BlindedAbStudy::armNames()[arm]),
        ResultValue::num(static_cast<double>(r.trials)),
        ResultValue::num(r.flipRate),
        ResultValue::num(r.flipRateCI.lo),
        ResultValue::num(r.flipRateCI.hi),
        ResultValue::boolean(record.separated),
        ResultValue::str(record.labels[arm])};
  };
  spec.notes = {
      "Which physical configuration is 'arm A' is a salted hash of the",
      "labels -- fixed salt here so the table is reproducible, fresh salt",
      "per analysis in the field. See docs/campaigns.md for when",
      "unblinding is permitted."};
  return spec;
}

ExperimentSpec campaignArrayHealthSpec() {
  ExperimentSpec spec;
  spec.name = "campaign_array_health";
  spec.title = "campaign -- per-cell array-health (disturb-rate) matrix";
  spec.description =
      "CMS-style per-cell quality map: fraction of campaign trials in which "
      "each cell's read classification was disturbed; centre attack at "
      "10 nm / 300 K / 50 ns";
  spec.paperShape =
      "disturbs concentrate on the aggressor's word-line neighbours "
      "(strongest thermal coupling); far corners stay clean";
  spec.tableTitle = "campaign: per-cell disturb rate over variability trials";
  spec.base.spacing = 10e-9;
  spec.maxPulses = 200'000;
  spec.fastMaxPulses = 100'000;
  spec.buildStudies = false;
  spec.axes = {{"trials", {300.0}, {24.0}, {}}};
  spec.columns = {
      {"trials", "trials", {}},
      {"flip_rate", "flip rate", percent(0), Shape::Scalar, kFracTol},
      {"hot_cells", "disturbed cells", {}, Shape::Scalar, kCountTol},
      {"max_cell_rate", "max cell rate", percent(1), Shape::Scalar, kFracTol},
      {"cell_disturb_rate", "disturb rate", colfmt::fixed(3), Shape::Matrix,
       kFracTol},
  };
  spec.run = [](const PointContext& ctx) {
    CampaignConfig cfg;
    cfg.base = ctx.config;
    cfg.trials = static_cast<std::size_t>(ctx.value("trials"));
    cfg.budget = ctx.maxPulses;
    cfg.recordCellHealth = true;
    const CampaignResult r = runCampaign(cfg);
    std::size_t hot = 0;
    double maxRate = 0.0;
    for (const double rate : r.cellDisturbRate) {
      if (rate > 0.0) ++hot;
      maxRate = std::max(maxRate, rate);
    }
    std::vector<double> matrix = r.cellDisturbRate;
    return std::vector<ResultValue>{
        ResultValue::num(static_cast<double>(r.trials)),
        ResultValue::num(r.flipRate),
        ResultValue::num(static_cast<double>(hot)),
        ResultValue::num(maxRate),
        ResultValue::matrix(r.healthRows, r.healthCols, std::move(matrix))};
  };
  spec.notes = {
      "Aggressor cells read exactly 0 (their LRS preparation is not a",
      "disturb event); a cell counts as disturbed when its detector",
      "classification changed from the pre-attack snapshot."};
  return spec;
}

// ---- extension / substrate studies ---------------------------------------

ExperimentSpec victimDistanceSpec() {
  ExperimentSpec spec;
  spec.name = "scaling_victim_distance";
  spec.title = "extension -- victim distance / attack blast radius (7x7)";
  spec.description =
      "aggressor at the centre of a 7x7 array, 10 nm spacing, 50 ns "
      "pulses, one monitored victim per run";
  spec.paperShape =
      "word-line victims flip fastest; two cells away costs ~1-2 "
      "decades; beyond the coupling radius the attack fails";
  spec.tableTitle = "pulses-to-flip vs victim offset from the aggressor";
  spec.base.rows = 7;
  spec.base.cols = 7;
  spec.base.spacing = 10e-9;
  spec.maxPulses = 10'000'000;
  spec.fastMaxPulses = 500'000;
  spec.axes = {{"case", {0, 1, 2, 3, 4, 5, 6}, {}, {}}};
  spec.columns = {
      {"position", "victim position", {}},
      {"dr", "dr", {}},
      {"dc", "dc", {}},
      {"alpha", "alpha", colfmt::fixed(4), Shape::Scalar, kFracTol},
      {"shares_line", "shares a line",
       [](const ResultValue& v) {
         if (v.kind == ResultValue::Kind::Text) return v.text;
         return std::string(v.number != 0.0 ? "yes (V/2 stress)"
                                            : "no (heat only)");
       }},
      {"pulses", "# pulses to flip", colfmt::grouped(), Shape::Scalar,
       kCountTol},
      {"flipped", "flipped", colfmt::flipped()},
  };
  spec.run = [](const PointContext& ctx) {
    struct Case {
      const char* label;
      long long dr, dc;
    };
    static constexpr Case kCases[] = {
        {"word line, 1 away", 0, 1}, {"word line, 2 away", 0, 2},
        {"word line, 3 away", 0, 3}, {"bit line, 1 away", 1, 0},
        {"bit line, 2 away", 2, 0},  {"diagonal, (1,1)", 1, 1},
        {"diagonal, (2,2)", 2, 2},
    };
    const Case& c = kCases[caseIndex(ctx, "case", std::size(kCases))];
    const std::size_t cr = ctx.config.rows / 2;
    const std::size_t cc = ctx.config.cols / 2;
    AttackConfig attack;
    attack.aggressors = {{cr, cc}};
    attack.victims = {{static_cast<std::size_t>(cr + c.dr),
                       static_cast<std::size_t>(cc + c.dc)}};
    attack.maxPulses = ctx.maxPulses;
    const AttackResult r = ctx.study->attack(attack);
    const double alpha = ctx.study->alphas().at(c.dr, c.dc);
    const bool sharesLine = c.dr == 0 || c.dc == 0;
    return std::vector<ResultValue>{
        ResultValue::str(c.label),
        ResultValue::num(static_cast<double>(c.dr)),
        ResultValue::num(static_cast<double>(c.dc)), ResultValue::num(alpha),
        ResultValue::boolean(sharesLine), ResultValue::num(pulsesOf(r)),
        ResultValue::boolean(r.flipped)};
  };
  spec.notes = {
      "diagonal victims receive heat but no half-select stress, so they",
      "cannot flip at all under the single-aggressor V/2 pattern --",
      "the blast radius is confined to the aggressor's own lines.",
      "NOTE the domino effect at 'word line, 3 away' (alpha = 0): nearer",
      "victims flip first, then their own LRS half-select Joule heating",
      "relays the attack outward along the line."};
  return spec;
}

ExperimentSpec attackEnergySpec() {
  ExperimentSpec spec;
  spec.name = "attack_energy";
  spec.title = "attack energy budget";
  spec.description =
      "centre attack, 50 ns pulses, 300 K; energy until the flip";
  spec.paperShape =
      "total flip energy grows with spacing (more pulses); the "
      "aggressor cell dominates the per-cell breakdown";
  spec.tableTitle = "energy to induce one bit-flip";
  spec.axes = {{"spacing",
                {10e-9, 50e-9, 90e-9},
                {10e-9, 50e-9},
                [](StudyConfig& cfg, double v) { cfg.spacing = v; }}};
  spec.columns = {
      {"spacing_nm", "spacing", colfmt::fixed(0, " nm")},
      {"pulses", "# pulses", colfmt::grouped(), Shape::Scalar, kCountTol},
      {"energy_J", "total energy", colfmt::si("J", 2), Shape::Scalar, kTimeTol},
      {"energy_per_pulse_J", "energy/pulse", colfmt::si("J", 2), Shape::Scalar,
       kTimeTol},
      {"aggressor_share", "aggressor share", percent(1), Shape::Scalar,
       kFracTol},
  };
  spec.run = [](const PointContext& ctx) {
    auto bench = ctx.study->makeBench();
    AttackEngine attack(*bench.engine, ctx.config.detector);
    AttackConfig a;
    const std::size_t cr = ctx.config.rows / 2;
    const std::size_t cc = ctx.config.cols / 2;
    a.aggressors = {{cr, cc}};
    a.maxPulses = ctx.maxPulses;
    const AttackResult r = attack.run(a);
    const double energy = bench.engine->totalEnergy();
    const double aggShare =
        energy > 0.0 ? bench.engine->energyByCell()(cr, cc) / energy : 0.0;
    const double perPulse =
        energy / static_cast<double>(std::max<std::size_t>(r.pulsesToFlip, 1));
    return std::vector<ResultValue>{
        ResultValue::num(ctx.value("spacing") * 1e9),
        ResultValue::num(pulsesOf(r)), ResultValue::num(energy),
        ResultValue::num(perPulse), ResultValue::num(aggShare)};
  };
  spec.notes = {
      "per-pulse energy is pJ-scale: invisible to coarse power",
      "monitoring; a per-line energy counter is the workable hook."};
  return spec;
}

ExperimentSpec sneakPathSpec() {
  ExperimentSpec spec;
  spec.name = "sneak_path_margin";
  spec.title = "substrate -- sneak paths and worst-case read margin";
  spec.description = "selected cell read at 0.2 V against an all-LRS array";
  spec.paperShape =
      "read margin collapses with array size under both schemes "
      "(the passive-crossbar scaling limit); the V/2 scheme's real "
      "guarantee is bounding the disturb voltage on unselected "
      "cells at write levels";
  spec.tableTitle = "worst-case read margin vs array size and scheme";
  spec.buildStudies = false;  // pure network analysis, no AttackStudy
  spec.axes = {{"size", {5, 9, 17, 33}, {5, 9}, {}},
               {"scheme", {0, 1}, {}, {}}};
  spec.columns = {
      {"size", "array",
       [](const ResultValue& v) {
         if (v.kind == ResultValue::Kind::Text) return v.text;
         const auto n = std::to_string(static_cast<long long>(v.number));
         return n + "x" + n;
       }},
      {"scheme", "scheme", {}},
      {"i_lrs", "I(sel=LRS)", colfmt::si("A", 2), Shape::Scalar, kFracTol},
      {"i_hrs", "I(sel=HRS)", colfmt::si("A", 2), Shape::Scalar, kFracTol},
      {"margin", "read margin", percent(1), Shape::Scalar, kFracTol},
      {"half_select_power_W", "half-select power", colfmt::si("W", 2),
       Shape::Scalar, kFracTol},
      {"disturb_V", "max disturb @1.05 V", colfmt::fixed(3, " V"),
       Shape::Scalar, kFracTol},
  };
  spec.run = [](const PointContext& ctx) {
    const std::size_t n = integerAxis(ctx, "size", 2, 1024);
    const auto scheme = caseIndex(ctx, "scheme", 2) == 0
                            ? xbar::ReadScheme::FloatingLines
                            : xbar::ReadScheme::HalfBias;
    xbar::ArrayConfig cfg;
    cfg.rows = n;
    cfg.cols = n;
    const auto margin = xbar::worstCaseReadMargin(cfg, 0.2, scheme);
    // Half-select power at the all-LRS worst case (the cost column).
    xbar::CrossbarArray lrsArray(cfg);
    lrsArray.fill(xbar::CellState::Lrs);
    const auto read = xbar::analyzeSneak(lrsArray, n / 2, n / 2, 0.2, scheme);
    // Write-level disturb bound on checkerboard data: the hazardous case
    // for floating lines (an HRS cell inside a conductive sneak chain).
    xbar::CrossbarArray mixed(cfg);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        mixed.setState(r, c, (r + c) % 2 == 0 ? xbar::CellState::Lrs
                                              : xbar::CellState::Hrs);
      }
    }
    const auto write = xbar::analyzeSneak(mixed, n / 2, n / 2, 1.05, scheme);
    return std::vector<ResultValue>{
        ResultValue::num(static_cast<double>(n)),
        ResultValue::str(scheme == xbar::ReadScheme::FloatingLines ? "floating"
                                                                   : "V/2"),
        ResultValue::num(margin.iSelectedLrs),
        ResultValue::num(margin.iSelectedHrs), ResultValue::num(margin.margin),
        ResultValue::num(read.halfSelectPower),
        ResultValue::num(write.maxUnselectedVoltage)};
  };
  spec.notes = {
      "margin = (I_lrs - I_hrs) / I_lrs at the selected bit line; a sense",
      "amplifier needs a healthy positive margin. The cells' strong",
      "nonlinearity self-limits floating-line sneak at 0.2 V, so both",
      "schemes degrade similarly on reads. The V/2 scheme caps the",
      "write-level disturb at V/2 *by construction*, for any stored data;",
      "the floating-line bound lands near V/2 here only because the",
      "Schottky interface acts as a built-in selector (data-dependent)."};
  return spec;
}

ExperimentSpec enduranceSpec() {
  ExperimentSpec spec;
  spec.name = "endurance_half_select";
  spec.title = "security margin -- half-select endurance without crosstalk";
  spec.description =
      "cold V/2 stress on an HRS cell (alpha table zeroed) vs the "
      "hammered flip at 50 nm / 300 K / 50 ns";
  spec.paperShape =
      "cold disturb needs >10^6 pulses; hammering cuts that by "
      "~2 orders of magnitude at 50 nm and ~4 at 10 nm";
  spec.tableTitle = "half-select disturb: hammered vs normal operation";
  spec.maxPulses = 20'000'000;
  spec.fastMaxPulses = 1'000'000;
  spec.axes = {{"condition", {0, 1}, {}, {}}};  // 0 = hammered, 1 = cold
  spec.columns = {
      {"condition", "condition", {}},
      {"pulses", "# pulses to flip", colfmt::grouped(), Shape::Scalar,
       kCountTol},
      {"flipped", "flipped", colfmt::flipped()},
      {"stress_time_s", "stress time", colfmt::si("s", 2), Shape::Scalar,
       kTimeTol},
  };
  spec.run = [](const PointContext& ctx) {
    const bool cold = caseIndex(ctx, "condition", 2) == 1;
    AttackResult r;
    if (!cold) {
      r = ctx.study->attackCenter(HammerPulse{}, ctx.maxPulses);
    } else {
      // Same machinery, thermal coupling removed.
      auto bench = ctx.study->makeBench();
      xbar::AlphaTable noCoupling = ctx.study->alphas();
      noCoupling.truncate(0);
      xbar::FastEngine engine(*bench.array, noCoupling,
                              ctx.config.engineOptions);
      AttackEngine attack(engine, ctx.config.detector);
      AttackConfig cfg;
      cfg.aggressors = {{ctx.config.rows / 2, ctx.config.cols / 2}};
      cfg.maxPulses = ctx.maxPulses;
      r = attack.run(cfg);
    }
    return std::vector<ResultValue>{
        ResultValue::str(cold ? "normal operation (no crosstalk)"
                              : "hammered (crosstalk on)"),
        ResultValue::num(pulsesOf(r)), ResultValue::boolean(r.flipped),
        ResultValue::num(r.stressTime)};
  };
  spec.finalize = [](ExperimentResult& result) {
    // Locate the two conditions by axis value, not row position (--set can
    // reorder or drop one).
    const std::vector<ResultValue>* hot = nullptr;
    const std::vector<ResultValue>* cold = nullptr;
    for (std::size_t i = 0; i < result.rows.size(); ++i) {
      (result.pointValues[i][0] == 0.0 ? hot : cold) = &result.rows[i];
    }
    if (!hot || !cold) return;
    if ((*hot)[2].number != 0.0 && (*cold)[2].number != 0.0 &&
        (*hot)[1].number > 0.0) {
      result.notes.push_back(
          "attack advantage: " +
          AsciiTable::fixed((*cold)[1].number / (*hot)[1].number, 0) +
          "x fewer pulses than the intrinsic disturb limit");
    }
  };
  spec.notes = {
      "the cold number also bounds write-disturb endurance: a row",
      "tolerates that many writes before an unrelated HRS cell drifts."};
  return spec;
}

ExperimentSpec scalingArraySizeSpec() {
  ExperimentSpec spec;
  spec.name = "scaling_array_size";
  spec.title = "scaling -- NeuroHammer at real part sizes";
  spec.description =
      "centre-cell attack + worst-case read analysis vs array dimension, "
      "10 nm spacing, 50 ns pulses, sparse-first solve stack";
  spec.paperShape =
      "time-to-flip is size-independent (the attack mechanism is local) "
      "while the read margin collapses with size; wall-clock grows "
      "~linearly in the cell count, not cubically in the line count";
  spec.tableTitle = "attack + substrate health vs array size";
  spec.base.spacing = 10e-9;
  spec.maxPulses = 200'000;
  // Wall-clock columns: run the grid serially so a point's timing never
  // includes contention from a sibling point.
  spec.serialPoints = true;
  // Fast mode stops at 256: the 1024x1024 point alone costs ~10 minutes,
  // which belongs in the scheduled nightly run (.github/workflows/nightly.yml
  // runs the full grid), not in every PR's `check --all --fast`.
  spec.axes = {{"size",
                {64, 128, 256, 512, 1024},
                {64, 256},
                [](StudyConfig& cfg, double v) {
                  // Validated again in run(); the apply hook only shapes the
                  // study key.
                  cfg.rows = cfg.cols = static_cast<std::size_t>(v);
                }}};
  spec.columns = {
      {"size", "array",
       [](const ResultValue& v) {
         if (v.kind == ResultValue::Kind::Text) return v.text;
         const auto n = std::to_string(static_cast<long long>(v.number));
         return n + "x" + n;
       }},
      {"cells", "cells", colfmt::grouped()},
      {"pulses", "# pulses to flip", colfmt::grouped(), Shape::Scalar,
       kCountTol},
      {"t_flip_s", "stress time", colfmt::si("s", 2), Shape::Scalar, kTimeTol},
      {"reach_cells", "disturbed cells", colfmt::grouped(), Shape::Scalar,
       kCountTol},
      {"reach_cheby", "reach (Chebyshev)", colfmt::grouped(), Shape::Scalar,
       kCountTol},
      {"margin", "read margin", percent(1), Shape::Scalar, kFracTol},
      {"attack_wall_s", "attack wall", colfmt::si("s", 2), Shape::Scalar,
       kIgnoreTol},
      {"sneak_wall_s", "sneak wall", colfmt::si("s", 2), Shape::Scalar,
       kIgnoreTol},
      {"wall_exponent", "local d log t / d log n", colfmt::fixed(2),
       Shape::Scalar, kIgnoreTol},
  };
  spec.run = [](const PointContext& ctx) {
    const std::size_t n = integerAxis(ctx, "size", 4, 4096);
    using Clock = std::chrono::steady_clock;
    const auto seconds = [](Clock::duration d) {
      return std::chrono::duration<double>(d).count();
    };

    const auto attackStart = Clock::now();
    auto bench = ctx.study->makeBench();
    AttackEngine attack(*bench.engine, ctx.config.detector);
    AttackConfig a;
    const std::size_t cr = n / 2;
    const std::size_t cc = n / 2;
    a.aggressors = {{cr, cc}};
    a.maxPulses = ctx.maxPulses;
    const AttackResult r = attack.run(a);
    // Aggressor reach at the moment of the flip: how many HRS neighbours the
    // thermal disturbance has dragged off their initial state, and how far
    // out (Chebyshev distance) the farthest of them sits.
    double disturbed = 0.0;
    double reach = 0.0;
    for (std::size_t row = 0; row < n; ++row) {
      for (std::size_t col = 0; col < n; ++col) {
        if (row == cr && col == cc) continue;
        if (bench.array->cell(row, col).normalisedState() < 0.05) continue;
        disturbed += 1.0;
        const double dr = row > cr ? static_cast<double>(row - cr)
                                   : static_cast<double>(cr - row);
        const double dc = col > cc ? static_cast<double>(col - cc)
                                   : static_cast<double>(cc - col);
        reach = std::max(reach, std::max(dr, dc));
      }
    }
    const double attackWall = seconds(Clock::now() - attackStart);

    const auto sneakStart = Clock::now();
    const auto margin = xbar::worstCaseReadMargin(ctx.study->arrayConfig(),
                                                  0.2, xbar::ReadScheme::HalfBias);
    const double sneakWall = seconds(Clock::now() - sneakStart);

    return std::vector<ResultValue>{
        ResultValue::num(static_cast<double>(n)),
        ResultValue::num(static_cast<double>(n) * static_cast<double>(n)),
        ResultValue::num(pulsesOf(r)),
        ResultValue::num(r.stressTime),
        ResultValue::num(disturbed),
        ResultValue::num(reach),
        ResultValue::num(margin.margin),
        ResultValue::num(attackWall),
        ResultValue::num(sneakWall),
        ResultValue::num(0.0)};  // wall_exponent: filled by finalize
  };
  spec.finalize = [](ExperimentResult& result) {
    // Scaling exponents from the measured wall-clock: a per-row local slope
    // between neighbouring sizes, plus a global log-log linear fit (the
    // MFPT-on-networks style summary -- one exponent, not just a curve).
    constexpr std::size_t kSize = 0, kAttack = 7, kSneak = 8, kExp = 9;
    std::vector<double> logN;
    std::vector<double> logT;
    for (std::size_t i = 0; i < result.rows.size(); ++i) {
      auto& row = result.rows[i];
      const double nNow = row[kSize].number;
      const double tNow = row[kAttack].number + row[kSneak].number;
      if (nNow > 0.0 && tNow > 0.0) {
        logN.push_back(std::log10(nNow));
        logT.push_back(std::log10(tNow));
      }
      if (i == 0) continue;
      const auto& prev = result.rows[i - 1];
      const double nPrev = prev[kSize].number;
      const double tPrev = prev[kAttack].number + prev[kSneak].number;
      if (nPrev > 0.0 && tPrev > 0.0 && nNow > nPrev && tNow > 0.0) {
        row[kExp].number = std::log(tNow / tPrev) / std::log(nNow / nPrev);
      }
    }
    if (logN.size() >= 2) {
      const nh::util::LinearFit fit = nh::util::fitLinear(logN, logT);
      result.notes.push_back(
          "fitted wall-clock scaling exponent: t ~ n^" +
          AsciiTable::fixed(fit.slope, 2) +
          "  (R^2 = " + AsciiTable::fixed(fit.rSquared, 3) +
          "; dense line solves would be >= 3)");
    }
  };
  spec.notes = {
      "the attack column is the security punchline: pulses-to-flip at the",
      "centre cell does not improve with array size, so megabit parts are",
      "exactly as hammerable as the 5x5 test structures. The wall-clock",
      "columns document the solver refactor that makes the 1024x1024 row",
      "tractable (banded Schur + matrix-free CG + sparse MNA)."};
  return spec;
}

// ---- special-format figure reproductions ----------------------------------
// The three experiments below are the reason ResultValue is shaped: Fig. 1
// is a time-series trace, Fig. 2a a pair of 5x5 matrices, and the kinetics
// landscape a pivoted 2-D table over a flat (T, V) cross-product.

ExperimentSpec fig1TraceSpec() {
  ExperimentSpec spec;
  spec.name = "fig1_mechanics_trace";
  spec.title = "Fig. 1 -- working principle of NeuroHammer (trace)";
  spec.description =
      "single attack run, centre aggressor, word-line victim, "
      "spacing 50 nm, 50 ns pulses";
  spec.paperShape =
      "aggressor filament spikes to ~530 K per pulse; victim sits "
      "~60 K above ambient and ratchets toward LRS until the flip";
  spec.tableTitle =
      "Victim state / peak filament temperatures along the attack";
  spec.maxPulses = 200'000;
  spec.fastMaxPulses = 100'000;
  spec.axes = {{"width", {50e-9}, {}, {}}};
  spec.columns = {
      {"pulses", "# pulses to flip", colfmt::grouped(), Shape::Scalar,
       kCountTol},
      {"flipped", "flipped", colfmt::flipped()},
      {"stress_time_s", "stress time", colfmt::si("s", 2), Shape::Scalar,
       kTimeTol},
      {"pulse", "pulse", colfmt::grouped(), Shape::Trace, kCountTol},
      {"victim_state", "victim x", colfmt::fixed(4), Shape::Trace, kFracTol},
      {"victim_Tpeak_K", "victim Tpeak [K]", colfmt::fixed(1), Shape::Trace,
       kTempTol},
      {"aggressor_Tpeak_K", "aggressor Tpeak [K]", colfmt::fixed(1),
       Shape::Trace, kTempTol},
  };
  spec.run = [](const PointContext& ctx) {
    AttackConfig attack;
    const std::size_t cr = ctx.config.rows / 2;
    const std::size_t cc = ctx.config.cols / 2;
    attack.aggressors = {{cr, cc}};
    attack.victims = {{cr, cc - 1}};  // word-line neighbour
    attack.pulse.width = ctx.value("width");
    attack.maxPulses = ctx.maxPulses;
    // Trace interval = maxPulses / samples. Fast mode keeps the series
    // short enough for a checked-in baseline (~200 samples).
    attack.traceSamples = ctx.fast ? 200 : 10'000;
    const AttackResult r = ctx.study->attack(attack);
    return std::vector<ResultValue>{
        ResultValue::num(pulsesOf(r)),
        ResultValue::boolean(r.flipped),
        ResultValue::num(r.stressTime),
        ResultValue::trace(r.tracePulse),
        ResultValue::trace(r.traceVictimState),
        ResultValue::trace(r.traceVictimTemperature),
        ResultValue::trace(r.traceAggressorTemperature)};
  };
  spec.notes = {
      "phase 1: V/2 scheme pulses (hammering)",
      "phase 2: aggressor self-heating + victim crosstalk heating",
      "phase 3: exponentially accelerated SET kinetics at V/2",
      "phase 4: victim crosses the read threshold -> bit-flip"};
  return spec;
}

ExperimentSpec fig2aMatrixSpec() {
  ExperimentSpec spec;
  spec.name = "fig2a_thermal_matrix";
  spec.title = "Fig. 2a -- thermal coupling in a 5x5 memristive crossbar";
  spec.description =
      "FEM solve (Eq. 1/2 discretised), electrode spacing 50 nm, T0 = 300 K";
  spec.paperShape =
      "centre cell ~947 K >> same-word-line neighbours > bit-line "
      "neighbours > diagonal > far corners (~320 K)";
  spec.tableTitle = "Fig. 2a: extracted R_th and the paper operating point";
  spec.buildStudies = false;  // runs the FEM extraction itself
  // The paper's matrix is reported at the power that puts the hammered
  // centre cell at 947.2 K; the axis makes that operating point sweepable.
  // The 5 nm voxel is required to resolve the 5 nm filament and the solve
  // takes only a few seconds, so fast mode runs the full extraction.
  spec.axes = {{"target_K", {947.2}, {}, {}}};
  const Formatter sci3 = [](const ResultValue& v) {
    if (v.kind == ResultValue::Kind::Text) return v.text;
    return AsciiTable::scientific(v.number, 3);
  };
  spec.columns = {
      {"target_K", "T_centre target", colfmt::fixed(1, " K")},
      {"rth_K_per_W", "R_th [K/W]", sci3, Shape::Scalar, Tol{5e-3, 0.0, false}},
      {"rth_r_squared", "R^2", colfmt::fixed(6), Shape::Scalar,
       Tol{1e-3, 1e-6, false}},
      {"power_W", "power [W]", sci3, Shape::Scalar, Tol{5e-3, 0.0, false}},
      {"temperature_K", "temperature [K]", colfmt::fixed(1), Shape::Matrix,
       kTempTol},
      {"alpha", "alpha (Eq. 4)", colfmt::fixed(4), Shape::Matrix, kFracTol},
  };
  spec.run = [](const PointContext& ctx) {
    fem::CrossbarLayout layout;
    const auto model = fem::CrossbarModel3D::build(layout);
    const auto extraction =
        fem::extractAlpha(model, fem::MaterialTable::defaults(), 2, 2,
                          {0.05e-3, 0.10e-3, 0.15e-3}, 300.0);
    const double power = (ctx.value("target_K") - 300.0) / extraction.rTh;
    const auto temps = extraction.predictTemperatures(power);
    std::vector<double> tempValues;
    std::vector<double> alphaValues;
    tempValues.reserve(temps.rows() * temps.cols());
    alphaValues.reserve(temps.rows() * temps.cols());
    for (std::size_t r = 0; r < temps.rows(); ++r) {
      for (std::size_t c = 0; c < temps.cols(); ++c) {
        tempValues.push_back(temps(r, c));
        alphaValues.push_back(extraction.alpha(r, c));
      }
    }
    return std::vector<ResultValue>{
        ResultValue::num(ctx.value("target_K")),
        ResultValue::num(extraction.rTh),
        ResultValue::num(extraction.rThRSquared),
        ResultValue::num(power),
        ResultValue::matrix(temps.rows(), temps.cols(), std::move(tempValues)),
        ResultValue::matrix(temps.rows(), temps.cols(),
                            std::move(alphaValues))};
  };
  spec.notes = {
      "paper (row containing the hammered cell): 394.4  373.0  947.2  "
      "375.6  393.8",
      "paper (far corners): 319.9 .. 321.0"};
  return spec;
}

ExperimentSpec kineticsLandscapeSpec() {
  ExperimentSpec spec;
  spec.name = "kinetics_landscape";
  spec.title = "Sec. III -- switching-kinetics landscape t_SET(V, T)";
  spec.description = "single JART-style cell, constant stress until x = 0.5";
  spec.paperShape =
      "t_SET spans >10 decades: ~ns at full select vs ~s at V/2 and "
      "300 K; each +50 K buys ~2 decades";
  spec.tableTitle = "switching-kinetics landscape (long form)";
  spec.buildStudies = false;  // single-device study, no crossbar
  spec.axes = {{"temperature",
                {273.0, 300.0, 325.0, 350.0, 400.0, 450.0, 500.0},
                {300.0, 400.0},
                {}},
               {"voltage", {0.40, 0.525, 0.65, 0.80, 1.05, 1.30}, {}, {}}};
  spec.columns = {
      {"temperature_K", "T0", colfmt::fixed(0, " K")},
      {"voltage_V", "V", colfmt::fixed(3, " V")},
      {"t_set_s", "t_SET [s]",
       [](const ResultValue& v) {
         if (v.kind == ResultValue::Kind::Text) return v.text;
         return AsciiTable::scientific(v.number, 2);
       },
       Shape::Scalar, kKineticsTol},
      {"switched", "switched", colfmt::yesNo()},
  };
  spec.run = [](const PointContext& ctx) {
    jart::SwitchingOptions options;
    options.ambientK = ctx.value("temperature");
    options.maxTime = 50.0;
    const jart::SwitchingResult r = jart::switchingTime(
        jart::Params::paperDefaults(), ctx.value("voltage"), options);
    return std::vector<ResultValue>{
        ResultValue::num(options.ambientK), ResultValue::num(ctx.value("voltage")),
        ResultValue::num(r.time), ResultValue::boolean(r.switched)};
  };
  // The paper's presentation is the pivoted 2-D table; the flat rows above
  // stay the machine-readable series (and what baselines compare).
  spec.pivot.rowAxis = "temperature";
  spec.pivot.colAxis = "voltage";
  spec.pivot.valueColumn = "t_set_s";
  spec.pivot.title =
      "t_SET to x = 0.5 [s]  ('>' = did not switch within 50 s)";
  spec.pivot.format = [](const std::vector<ResultValue>& row) {
    if (row[3].kind == ResultValue::Kind::Number && row[3].number == 0.0) {
      return std::string("> 5e+01");
    }
    return AsciiTable::scientific(row[2].number, 2);
  };
  spec.pivot.rowLabel = [](double v) { return AsciiTable::fixed(v, 0) + " K"; };
  spec.pivot.colLabel = [](double v) { return AsciiTable::fixed(v, 3) + " V"; };
  spec.notes = {
      "V/2 = 0.525 V column: harmless at 273-300 K, milliseconds at "
      "350 K+ --",
      "exactly the window the thermal crosstalk pushes the victim into."};
  return spec;
}

// ---- registry plumbing ----------------------------------------------------

struct Entry {
  std::string summary;
  std::function<ExperimentSpec()> factory;
};

struct Registry {
  nh::util::Mutex mutex;
  // Guarded after construction; the constructor itself runs single-threaded
  // inside the magic-static initialiser (the analysis exempts constructors).
  std::map<std::string, Entry> entries NH_GUARDED_BY(mutex);

  Registry() {
    // Names are passed explicitly (they are compile-time constants in each
    // factory) so registration does not build and discard 17 full specs.
    auto add = [this](std::string name, std::string summary,
                      std::function<ExperimentSpec()> factory) {
      entries.emplace(std::move(name),
                      Entry{std::move(summary), std::move(factory)});
    };
    add("fig3a_pulse_length", "Fig. 3a: pulses-to-flip vs pulse length",
        fig3aSpec);
    add("fig3b_electrode_spacing",
        "Fig. 3b: pulses-to-flip vs electrode spacing x width", fig3bSpec);
    add("fig3c_ambient_temperature",
        "Fig. 3c: pulses-to-flip vs ambient temperature x width", fig3cSpec);
    add("fig3d_attack_patterns", "Fig. 3d: pulses-to-flip per attack pattern",
        fig3dSpec);
    add("ablation_alpha_truncation",
        "ablation: crosstalk-matrix truncation radius (attack is thermal)",
        alphaTruncationSpec);
    add("ablation_batching",
        "ablation: pulse-batching accelerator accuracy/speed trade-off",
        batchingSpec);
    add("ablation_hammer_amplitude",
        "ablation: hammer amplitude around the nominal V_SET",
        hammerAmplitudeSpec);
    add("ablation_thermal_tau",
        "ablation: filament thermal time constant vs pulse length",
        thermalTauSpec);
    add("ablation_scheme_defense",
        "countermeasures: V/3 scheme, scrubbing, monitoring, throttling",
        schemeDefenseSpec);
    add("ablation_variability",
        "extension: Monte-Carlo device-to-device variability", variabilitySpec);
    add("campaign_flip_rate",
        "campaign: flip-rate Wilson/bootstrap intervals over device "
        "variability",
        campaignFlipRateSpec);
    add("campaign_defense_blind",
        "campaign: STAR-style blinded A/B of the V/3 countermeasure",
        campaignDefenseBlindSpec);
    add("campaign_array_health",
        "campaign: CMS-style per-cell disturb-rate array-health matrix",
        campaignArrayHealthSpec);
    add("scaling_victim_distance",
        "extension: attack blast radius on a 7x7 array", victimDistanceSpec);
    add("attack_energy", "attack energy budget until the bit-flip",
        attackEnergySpec);
    add("sneak_path_margin",
        "substrate: sneak paths, read margin, and disturb bounds",
        sneakPathSpec);
    add("scaling_array_size",
        "array-size scaling: attack + substrate health at real part sizes",
        scalingArraySizeSpec);
    add("endurance_half_select",
        "security margin: half-select endurance without crosstalk",
        enduranceSpec);
    add("fig1_mechanics_trace",
        "Fig. 1: four-phase mechanics trace of one attack run (time series)",
        fig1TraceSpec);
    add("fig2a_thermal_matrix",
        "Fig. 2a: FEM temperature/alpha matrices of the 5x5 crossbar",
        fig2aMatrixSpec);
    add("kinetics_landscape",
        "Sec. III: switching-time landscape t_SET(V, T) (pivoted table)",
        kineticsLandscapeSpec);
  }
};

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace

std::vector<RegisteredExperiment> registeredExperiments() {
  Registry& reg = registry();
  const nh::util::MutexLock lock(reg.mutex);
  std::vector<RegisteredExperiment> out;
  out.reserve(reg.entries.size());
  for (const auto& [name, entry] : reg.entries) {
    out.push_back({name, entry.summary});
  }
  return out;  // std::map iteration is already name-sorted
}

bool hasExperiment(const std::string& name) {
  Registry& reg = registry();
  const nh::util::MutexLock lock(reg.mutex);
  return reg.entries.count(name) != 0;
}

ExperimentSpec makeExperiment(const std::string& name) {
  Registry& reg = registry();
  std::function<ExperimentSpec()> factory;
  {
    const nh::util::MutexLock lock(reg.mutex);
    const auto it = reg.entries.find(name);
    if (it == reg.entries.end()) {
      std::string known;
      for (const auto& [known_name, entry] : reg.entries) {
        known += (known.empty() ? "" : ", ") + known_name;
      }
      throw std::out_of_range("unknown experiment '" + name +
                              "' (registered: " + known + ")");
    }
    factory = it->second.factory;
  }
  return factory();
}

namespace {

std::string markdownEscapePipes(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '|') out += "\\|";
    else if (c == '\n') out += ' ';
    else out += c;
  }
  return out;
}

/// Short human-readable number for the docs ("0.85", "5e-10"); the
/// round-trip 17-digit form belongs in the CSV/JSON series, not here.
std::string shortDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string joinedValues(const std::vector<double>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    out += (i ? ", " : "") + shortDouble(values[i]);
  }
  return out;
}

std::string toleranceText(const Tol& tolerance) {
  if (tolerance.ignore) return "ignored (not reproducible)";
  if (tolerance.rel == 0.0 && tolerance.abs == 0.0) return "exact";
  std::string out;
  if (tolerance.rel != 0.0) {
    out += "rel " + shortDouble(tolerance.rel);
  }
  if (tolerance.abs != 0.0) {
    out += (out.empty() ? "" : " + ") + std::string("abs ") +
           shortDouble(tolerance.abs);
  }
  return out;
}

/// Human summary of the result shape: which of the three cell shapes the
/// columns use, plus the pivot presentation when the spec asks for one.
std::string resultShapeText(const ExperimentSpec& spec) {
  bool trace = false;
  bool matrix = false;
  for (const auto& col : spec.columns) {
    trace = trace || col.shape == Shape::Trace;
    matrix = matrix || col.shape == Shape::Matrix;
  }
  std::string out = "scalar rows";
  if (trace) out += " + time-series trace cells";
  if (matrix) out += " + 2-D matrix cells";
  if (spec.pivot.enabled()) {
    out += " (pivoted " + spec.pivot.rowAxis + " x " + spec.pivot.colAxis +
           " grid)";
  }
  return out;
}

}  // namespace

std::string registryMarkdown() {
  const auto entries = registeredExperiments();
  std::string md;
  md += "<!-- AUTO-GENERATED by `nh_sweep describe --markdown`. Do not edit "
        "by hand:\n     CI regenerates this file and fails when it drifts "
        "from the registry.\n     Refresh with:\n       "
        "./build/examples/nh_sweep describe --markdown --out "
        "docs/experiments.md -->\n\n";
  md += "# Experiment catalog\n\n";
  md += std::to_string(entries.size()) +
        " registered experiments. Run one with `nh_sweep run <name> "
        "[--fast]`,\ncompare it against its tracked baseline with `nh_sweep "
        "check <name> --fast`,\nand see `docs/adding-an-experiment.md` for "
        "how to add the next one.\n";
  for (const auto& entry : entries) {
    const ExperimentSpec spec = makeExperiment(entry.name);
    md += "\n## " + entry.name + "\n\n";
    md += markdownEscapePipes(entry.summary) + "\n\n";
    md += "Setup: " + spec.description + "\n\n";
    md += "Paper shape: " + spec.paperShape + "\n\n";

    std::size_t fullPoints = 1;
    std::size_t fastPoints = 1;
    for (const auto& axis : spec.axes) {
      fullPoints *= axis.values.size();
      fastPoints *= axis.active(true).size();
    }
    RunOptions fastOptions;
    fastOptions.fast = true;
    md += "| | |\n|---|---|\n";
    md += "| Reproduces | " + markdownEscapePipes(spec.title) + " |\n";
    md += "| Result shape | " + resultShapeText(spec) + " |\n";
    md += "| Grid points (full / fast) | " + std::to_string(fullPoints) +
          " / " + std::to_string(fastPoints) + " |\n";
    md += "| Pulse budget (full / fast) | " + std::to_string(spec.maxPulses) +
          " / " +
          std::to_string(spec.fastMaxPulses ? spec.fastMaxPulses
                                            : spec.maxPulses) +
          " |\n";
    md += std::string("| Study construction | ") +
          (spec.buildStudies ? "deduplicated AttackStudy grid (process-wide "
                               "cache)"
                             : "none (runs its own substrate/device solves)") +
          " |\n";
    md += "| Fast config digest | `" + configDigest(spec, fastOptions) +
          "` |\n";

    md += "\nAxes:\n\n";
    md += "| axis | values | fast subset | affects study config |\n";
    md += "|---|---|---|---|\n";
    for (const auto& axis : spec.axes) {
      md += "| " + axis.name + " | " + joinedValues(axis.values) + " | " +
            (axis.fastValues.empty() ? "(full list)"
                                     : joinedValues(axis.fastValues)) +
            " | " + (axis.apply ? "yes" : "no") + " |\n";
    }

    md += "\nColumns:\n\n";
    md += "| column | table heading | shape | baseline tolerance |\n";
    md += "|---|---|---|---|\n";
    for (const auto& col : spec.columns) {
      md += "| " + col.name + " | " + markdownEscapePipes(col.heading()) +
            " | " + shapeName(col.shape) + " | " +
            toleranceText(col.tolerance) + " |\n";
    }
  }
  return md;
}

void registerExperiment(std::string name, std::string summary,
                        std::function<ExperimentSpec()> factory) {
  Registry& reg = registry();
  const nh::util::MutexLock lock(reg.mutex);
  const auto [it, inserted] =
      reg.entries.emplace(std::move(name), Entry{std::move(summary), std::move(factory)});
  if (!inserted) {
    throw std::invalid_argument("experiment '" + it->first +
                                "' is already registered");
  }
}

}  // namespace nh::core
