#include "core/configio.hpp"

#include <sstream>
#include <stdexcept>

namespace nh::core {

AttackPattern patternFromName(const std::string& name) {
  for (const AttackPattern p : allPatterns()) {
    if (patternName(p) == name) return p;
  }
  throw std::invalid_argument("patternFromName: unknown pattern '" + name + "'");
}

StudyConfig studyConfigFrom(const nh::util::Config& config) {
  StudyConfig out;
  out.rows = static_cast<std::size_t>(
      config.getInt("array.rows", static_cast<long long>(out.rows)));
  out.cols = static_cast<std::size_t>(
      config.getInt("array.cols", static_cast<long long>(out.cols)));

  out.spacing = config.getDouble("geometry.spacing_nm", out.spacing * 1e9) * 1e-9;
  out.useFemAlphas = config.getBool("geometry.fem_alphas", out.useFemAlphas);
  out.femVoxelSize =
      config.getDouble("geometry.fem_voxel_nm", out.femVoxelSize * 1e9) * 1e-9;

  out.ambientK = config.getDouble("environment.ambient_K", out.ambientK);

  // Compact-model overrides (subset; everything else keeps paperDefaults).
  jart::Params& p = out.cellParams;
  p.rThEff = config.getDouble("cell.rth_eff_K_per_W", p.rThEff);
  p.tauThermal = config.getDouble("cell.tau_thermal_ns", p.tauThermal * 1e9) * 1e-9;
  p.activationEnergySet =
      config.getDouble("cell.activation_energy_set_eV", p.activationEnergySet);
  p.activationEnergyReset =
      config.getDouble("cell.activation_energy_reset_eV", p.activationEnergyReset);
  p.kineticPrefactorSet =
      config.getDouble("cell.kinetic_prefactor_set", p.kineticPrefactorSet);
  p.rFilament = config.getDouble("cell.filament_radius_nm", p.rFilament * 1e9) * 1e-9;
  p.validate();

  out.detector.readVoltage =
      config.getDouble("detector.read_voltage_V", out.detector.readVoltage);
  out.detector.rLrsMax = config.getDouble("detector.r_lrs_max", out.detector.rLrsMax);
  out.detector.rHrsMin = config.getDouble("detector.r_hrs_min", out.detector.rHrsMin);

  out.engineOptions.enableBatching =
      config.getBool("engine.batching", out.engineOptions.enableBatching);
  out.engineOptions.solveLineNetwork =
      config.getBool("engine.line_network", out.engineOptions.solveLineNetwork);
  return out;
}

StudyConfig studyConfigFromFile(const std::filesystem::path& path) {
  return studyConfigFrom(nh::util::Config::load(path));
}

AttackConfig attackConfigFrom(const nh::util::Config& config, std::size_t rows,
                              std::size_t cols) {
  AttackConfig out;
  const xbar::CellCoord victim{rows / 2, cols / 2};
  const std::string pattern = config.getString("attack.pattern", "single");
  out.aggressors = patternAggressors(patternFromName(pattern), victim, rows, cols);
  out.victims = {victim};
  // The single pattern historically means "hammer the centre, watch the
  // neighbours": keep that behaviour when no explicit pattern was given.
  if (!config.has("attack.pattern")) {
    out.aggressors = {victim};
    out.victims.clear();
  }
  out.pulse.amplitude = config.getDouble("attack.amplitude_V", out.pulse.amplitude);
  out.pulse.width = config.getDouble("attack.width_ns", out.pulse.width * 1e9) * 1e-9;
  out.pulse.dutyCycle = config.getDouble("attack.duty", out.pulse.dutyCycle);
  out.maxPulses = static_cast<std::size_t>(
      config.getInt("attack.max_pulses", static_cast<long long>(out.maxPulses)));
  out.roundRobinChunk = static_cast<std::size_t>(config.getInt(
      "attack.round_robin_chunk", static_cast<long long>(out.roundRobinChunk)));
  const std::string scheme = config.getString("attack.scheme", "half");
  if (scheme == "half") {
    out.scheme = xbar::BiasScheme::Half;
  } else if (scheme == "third") {
    out.scheme = xbar::BiasScheme::Third;
  } else {
    throw std::invalid_argument("attack.scheme must be 'half' or 'third'");
  }
  return out;
}

std::string toConfigText(const StudyConfig& config) {
  std::ostringstream os;
  os.precision(12);
  os << "[array]\n"
     << "rows = " << config.rows << "\n"
     << "cols = " << config.cols << "\n"
     << "[geometry]\n"
     << "spacing_nm = " << config.spacing * 1e9 << "\n"
     << "fem_alphas = " << (config.useFemAlphas ? "true" : "false") << "\n"
     << "fem_voxel_nm = " << config.femVoxelSize * 1e9 << "\n"
     << "[environment]\n"
     << "ambient_K = " << config.ambientK << "\n"
     << "[cell]\n"
     << "rth_eff_K_per_W = " << config.cellParams.rThEff << "\n"
     << "tau_thermal_ns = " << config.cellParams.tauThermal * 1e9 << "\n"
     << "activation_energy_set_eV = " << config.cellParams.activationEnergySet
     << "\n"
     << "activation_energy_reset_eV = "
     << config.cellParams.activationEnergyReset << "\n"
     << "kinetic_prefactor_set = " << config.cellParams.kineticPrefactorSet
     << "\n"
     << "filament_radius_nm = " << config.cellParams.rFilament * 1e9 << "\n"
     << "[detector]\n"
     << "read_voltage_V = " << config.detector.readVoltage << "\n"
     << "r_lrs_max = " << config.detector.rLrsMax << "\n"
     << "r_hrs_min = " << config.detector.rHrsMin << "\n"
     << "[engine]\n"
     << "batching = " << (config.engineOptions.enableBatching ? "true" : "false")
     << "\n"
     << "line_network = "
     << (config.engineOptions.solveLineNetwork ? "true" : "false") << "\n";
  return os.str();
}

}  // namespace nh::core
