#include "core/experiment.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "util/json.hpp"
#include "util/log.hpp"
#include "util/threadpool.hpp"

namespace nh::core {

ResultValue ResultValue::num(double v) {
  ResultValue out;
  out.kind = Kind::Number;
  out.number = v;
  return out;
}

ResultValue ResultValue::boolean(bool v) { return num(v ? 1.0 : 0.0); }

ResultValue ResultValue::str(std::string s) {
  ResultValue out;
  out.kind = Kind::Text;
  out.text = std::move(s);
  return out;
}

ResultValue ResultValue::trace(std::vector<double> samples) {
  ResultValue out;
  out.kind = Kind::Trace;
  out.series = std::move(samples);
  return out;
}

ResultValue ResultValue::matrix(std::size_t rows, std::size_t cols,
                                std::vector<double> rowMajor) {
  if (rowMajor.size() != rows * cols) {
    throw std::invalid_argument(
        "ResultValue::matrix: " + std::to_string(rowMajor.size()) +
        " values for a " + std::to_string(rows) + "x" + std::to_string(cols) +
        " matrix");
  }
  ResultValue out;
  out.kind = Kind::Matrix;
  out.series = std::move(rowMajor);
  out.matrixRows = rows;
  out.matrixCols = cols;
  return out;
}

std::size_t ResultValue::elementCount() const {
  return isShaped() ? series.size() : 1;
}

double ResultValue::element(std::size_t k) const {
  if (isShaped()) return series.at(k);
  if (k != 0) throw std::out_of_range("ResultValue::element on a scalar");
  return number;
}

std::string ResultValue::render() const {
  if (isShaped()) {
    throw std::logic_error(
        "ResultValue::render on a shaped cell (use the CSV/JSON expansion)");
  }
  return kind == Kind::Number ? nh::util::formatDouble(number) : text;
}

bool withinTolerance(double expected, double actual,
                     const ColumnSpec::Tolerance& tolerance) {
  if (tolerance.ignore) return true;
  return std::abs(actual - expected) <=
         tolerance.abs + tolerance.rel * std::abs(expected);
}

const char* shapeName(ColumnSpec::Shape shape) {
  switch (shape) {
    case ColumnSpec::Shape::Trace: return "trace";
    case ColumnSpec::Shape::Matrix: return "matrix";
    case ColumnSpec::Shape::Scalar: break;
  }
  return "scalar";
}

namespace colfmt {

using Formatter = std::function<std::string(const ResultValue&)>;

// Every canned formatter passes text cells through verbatim: finalize hooks
// leave "-" placeholders in cross-row columns when no reference exists.

Formatter si(std::string unit, int decimals) {
  return [unit = std::move(unit), decimals](const ResultValue& v) {
    if (v.kind == ResultValue::Kind::Text) return v.text;
    return nh::util::AsciiTable::si(v.number, unit, decimals);
  };
}

Formatter fixed(int decimals, std::string suffix) {
  return [decimals, suffix = std::move(suffix)](const ResultValue& v) {
    if (v.kind == ResultValue::Kind::Text) return v.text;
    return nh::util::AsciiTable::fixed(v.number, decimals) + suffix;
  };
}

Formatter grouped() {
  return [](const ResultValue& v) {
    if (v.kind == ResultValue::Kind::Text) return v.text;
    return nh::util::AsciiTable::grouped(static_cast<long long>(v.number));
  };
}

Formatter flipped() {
  return [](const ResultValue& v) {
    if (v.kind == ResultValue::Kind::Text) return v.text;
    return std::string(v.number != 0.0 ? "yes" : "NO (budget)");
  };
}

Formatter yesNo() {
  return [](const ResultValue& v) {
    if (v.kind == ResultValue::Kind::Text) return v.text;
    return std::string(v.number != 0.0 ? "yes" : "no");
  };
}

}  // namespace colfmt

double PointContext::value(const std::string& axis) const {
  for (std::size_t i = 0; i < spec->axes.size(); ++i) {
    if (spec->axes[i].name == axis) return values[i];
  }
  throw std::out_of_range("PointContext: no axis named '" + axis + "'");
}

namespace {

/// Axis value lists as actually executed: fast subsets, then CLI overrides.
std::vector<ExperimentResult::Axis> resolveAxes(const ExperimentSpec& spec,
                                                const RunOptions& options) {
  std::vector<ExperimentResult::Axis> axes;
  axes.reserve(spec.axes.size());
  for (const auto& axis : spec.axes) {
    axes.push_back({axis.name, axis.active(options.fast)});
  }
  for (const auto& [name, values] : options.axisOverrides) {
    bool found = false;
    for (auto& axis : axes) {
      if (axis.name == name) {
        axis.values = values;
        found = true;
      }
    }
    if (!found) {
      // List the valid axes: the CLI surfaces this message verbatim, and a
      // bare "no axis 'ambient'" leaves the user guessing at the spelling.
      std::string valid;
      for (const auto& axis : axes) {
        valid += (valid.empty() ? "" : ", ") + axis.name;
      }
      throw std::out_of_range("experiment '" + spec.name + "' has no axis '" +
                              name + "' (valid axes: " + valid + ")");
    }
  }
  for (const auto& axis : axes) {
    if (axis.values.empty()) {
      throw std::invalid_argument("experiment '" + spec.name + "': axis '" +
                                  axis.name + "' has no values");
    }
  }
  return axes;
}

std::size_t resolveBudget(const ExperimentSpec& spec, const RunOptions& options) {
  if (options.maxPulsesOverride) return options.maxPulsesOverride;
  if (options.fast && spec.fastMaxPulses) return spec.fastMaxPulses;
  return spec.maxPulses;
}

/// Mixed-radix decode of a serial point index, first axis outermost -- the
/// same slot order the legacy sweeps used (outer * widths.size() + width).
std::vector<double> pointValuesAt(
    const std::vector<ExperimentResult::Axis>& axes, std::size_t index) {
  std::vector<double> values(axes.size());
  std::size_t rem = index;
  for (std::size_t ai = axes.size(); ai-- > 0;) {
    const auto& list = axes[ai].values;
    values[ai] = list[rem % list.size()];
    rem /= list.size();
  }
  return values;
}

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  // Field separator: without it the hash sees only the concatenation, and
  // e.g. rows=1,cols=25 would collide with rows=12,cols=5.
  h ^= 0x1f;
  h *= 1099511628211ull;
  return h;
}

/// Hash every field that participates in StudyConfig::operator== -- the
/// digest must distinguish any two configs the study-dedup cache would
/// (toConfigText only serialises the INI-supported subset, which would make
/// configs differing in e.g. femOptions or engine options collide). Keep
/// this list in sync when StudyConfig or its nested structs grow fields.
std::uint64_t hashStudyConfig(std::uint64_t h, const StudyConfig& c) {
  const jart::Params& p = c.cellParams;
  const fem::DiffusionOptions& f = c.femOptions;
  const xbar::FastEngineOptions& e = c.engineOptions;
  const DetectorConfig& d = c.detector;
  const double fields[] = {
      static_cast<double>(c.rows), static_cast<double>(c.cols), c.spacing,
      c.ambientK, c.useFemAlphas ? 1.0 : 0.0, c.femVoxelSize,
      // jart::Params
      p.rFilament, p.lCell, p.lDisc, p.lPlug, p.nDiscMin, p.nDiscMax, p.nPlug,
      p.mobility, p.rSeries, p.richardson, p.phiBarrier0, p.phiLowering,
      p.idealityFwd, p.phiBarrierRev, p.idealityRev, p.rThEff, p.tauThermal,
      p.activationEnergySet, p.activationEnergyReset, p.kineticPrefactorSet,
      p.kineticPrefactorReset, p.hopDistance, p.chargeNumber,
      p.fieldEnhancement, p.windowExponent,
      // fem::DiffusionOptions
      f.relTol, static_cast<double>(f.maxIterations),
      static_cast<double>(f.preconditioner),
      static_cast<double>(f.multigridMinVoxels),
      // xbar::FastEngineOptions
      static_cast<double>(e.substepsPerPulse), e.solveLineNetwork ? 1.0 : 0.0,
      e.relaxBetweenPulses ? 1.0 : 0.0, e.enableBatching ? 1.0 : 0.0,
      e.batchDriftLimit, static_cast<double>(e.maxBatch), e.newtonTol,
      static_cast<double>(e.maxNewtonIterations), e.useSchurSolve ? 1.0 : 0.0,
      static_cast<double>(e.schurMode),
      static_cast<double>(e.schurIterativeMinCols),
      // DetectorConfig
      d.readVoltage, d.rLrsMax, d.rHrsMin};
  for (const double v : fields) h = fnv1a(h, nh::util::formatDouble(v));
  return h;
}

std::string digestOf(const ExperimentSpec& spec,
                     const std::vector<ExperimentResult::Axis>& axes,
                     std::size_t maxPulses) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a(h, spec.name);
  h = hashStudyConfig(h, spec.base);
  for (const auto& axis : axes) {
    h = fnv1a(h, axis.name);
    for (const double v : axis.values) h = fnv1a(h, nh::util::formatDouble(v));
  }
  h = fnv1a(h, std::to_string(maxPulses));
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, h);
  return buf;
}

/// Process-wide study cache: configs compared by the same operator== the
/// per-run dedup uses, entries owned by shared_ptr so an eviction cannot
/// pull a study out from under a running experiment. Linear scan -- the
/// catalog holds tens of unique configs, not thousands. LRU-bounded:
/// entries are kept least-recently-used first, a hit moves the entry to the
/// back, and an insert past capacity evicts the front. Megabit-array
/// studies pin per-cell state for 10^6 devices each, so the bound is what
/// keeps a run-all's resident memory flat.
struct StudyCache {
  std::mutex mutex;
  std::vector<std::pair<StudyConfig, std::shared_ptr<const AttackStudy>>>
      entries;  ///< LRU order: front = next eviction victim.
  std::size_t capacity = 32;  ///< Holds the whole seed catalog warm.

  std::shared_ptr<const AttackStudy> find(const StudyConfig& config) {
    const std::lock_guard<std::mutex> lock(mutex);
    for (auto it = entries.begin(); it != entries.end(); ++it) {
      if (it->first == config) {
        std::rotate(it, it + 1, entries.end());  // refresh: move to back
        return entries.back().second;
      }
    }
    return nullptr;
  }

  void insert(const StudyConfig& config,
              std::shared_ptr<const AttackStudy> study) {
    const std::lock_guard<std::mutex> lock(mutex);
    for (const auto& [cached, existing] : entries) {
      if (cached == config) return;  // racing run-all: first insert wins
    }
    while (entries.size() >= capacity && !entries.empty()) {
      entries.erase(entries.begin());
    }
    entries.emplace_back(config, std::move(study));
  }
};

StudyCache& studyCache() {
  static StudyCache instance;
  return instance;
}

}  // namespace

std::size_t studyCacheSize() {
  StudyCache& cache = studyCache();
  const std::lock_guard<std::mutex> lock(cache.mutex);
  return cache.entries.size();
}

void clearStudyCache() {
  StudyCache& cache = studyCache();
  const std::lock_guard<std::mutex> lock(cache.mutex);
  cache.entries.clear();
}

std::size_t studyCacheCapacity() {
  StudyCache& cache = studyCache();
  const std::lock_guard<std::mutex> lock(cache.mutex);
  return cache.capacity;
}

void setStudyCacheCapacity(std::size_t capacity) {
  StudyCache& cache = studyCache();
  const std::lock_guard<std::mutex> lock(cache.mutex);
  cache.capacity = std::max<std::size_t>(1, capacity);
  while (cache.entries.size() > cache.capacity) {
    cache.entries.erase(cache.entries.begin());
  }
}

std::string configDigest(const ExperimentSpec& spec, const RunOptions& options) {
  return digestOf(spec, resolveAxes(spec, options), resolveBudget(spec, options));
}

ExperimentResult runExperiment(const ExperimentSpec& spec,
                               const RunOptions& options) {
  if (!spec.run) {
    throw std::invalid_argument("runExperiment: spec '" + spec.name +
                                "' has no run function");
  }
  const auto axes = resolveAxes(spec, options);
  const std::size_t maxPulses = resolveBudget(spec, options);

  std::size_t pointCount = 1;
  for (const auto& axis : axes) pointCount *= axis.values.size();

  // Materialise every point's StudyConfig and deduplicate in serial point
  // order: points whose study-relevant config compares equal (defaulted
  // operator==) share one cached AttackStudy. Linear search is fine at the
  // grid sizes of the catalog (tens to hundreds of points).
  std::vector<StudyConfig> pointConfigs;
  pointConfigs.reserve(pointCount);
  std::vector<std::size_t> studyIndex(pointCount, 0);
  std::vector<const StudyConfig*> uniqueConfigs;
  for (std::size_t i = 0; i < pointCount; ++i) {
    pointConfigs.push_back([&] {
      StudyConfig cfg = spec.base;
      const std::vector<double> values = pointValuesAt(axes, i);
      for (std::size_t ai = 0; ai < spec.axes.size(); ++ai) {
        if (spec.axes[ai].apply) spec.axes[ai].apply(cfg, values[ai]);
      }
      return cfg;
    }());
  }
  for (std::size_t i = 0; i < pointCount; ++i) {
    std::size_t found = uniqueConfigs.size();
    for (std::size_t u = 0; u < uniqueConfigs.size(); ++u) {
      if (*uniqueConfigs[u] == pointConfigs[i]) {
        found = u;
        break;
      }
    }
    if (found == uniqueConfigs.size()) uniqueConfigs.push_back(&pointConfigs[i]);
    studyIndex[i] = found;
  }

  // Resolve the unique studies through the process-wide cache; misses are
  // constructed on the pool (the FEM-alpha path makes construction
  // expensive) and then published for later runs -- `run-all` and
  // `check --all` batch the whole catalog against one warm study set. Each
  // construction is internally serial and cache hits are immutable, so the
  // parallel build stays bit-identical for every thread count.
  std::vector<std::shared_ptr<const AttackStudy>> studies;
  std::size_t studiesReused = 0;
  if (spec.buildStudies) {
    studies.resize(uniqueConfigs.size());
    for (std::size_t u = 0; u < uniqueConfigs.size(); ++u) {
      studies[u] = studyCache().find(*uniqueConfigs[u]);
      if (studies[u]) ++studiesReused;
    }
    nh::util::parallelFor(
        uniqueConfigs.size(),
        [&](std::size_t u) {
          if (studies[u]) return;
          studies[u] = std::make_shared<const AttackStudy>(*uniqueConfigs[u]);
          studyCache().insert(*uniqueConfigs[u], studies[u]);
        },
        options.threads);
  }

  ExperimentResult result;
  result.name = spec.name;
  result.tableTitle = spec.tableTitle;
  result.columns = spec.columns;
  result.axes = axes;
  // Record what actually executed: serialPoints specs run single-threaded
  // whatever the caller asked for, and their JSON must say so (wall-clock
  // provenance).
  result.threads = spec.serialPoints ? 1
                   : options.threads ? options.threads
                                     : nh::util::defaultThreadCount();
  result.fast = options.fast;
  result.maxPulses = maxPulses;
  result.studiesConstructed = spec.buildStudies ? uniqueConfigs.size() : 0;
  result.studiesReused = studiesReused;
  result.configDigest = digestOf(spec, axes, maxPulses);
  result.pivot = spec.pivot;
  result.rows.resize(pointCount);
  result.pointValues.resize(pointCount);

  // threads == 1 runs in index order on the calling thread -- the mode
  // wall-clock-measuring specs force so points never time each other.
  const std::size_t pointThreads = spec.serialPoints ? 1 : options.threads;
  nh::util::parallelFor(
      pointCount,
      [&](std::size_t i) {
        PointContext ctx;
        ctx.spec = &spec;
        ctx.index = i;
        ctx.values = pointValuesAt(axes, i);
        ctx.config = pointConfigs[i];
        ctx.study = spec.buildStudies ? studies[studyIndex[i]].get() : nullptr;
        ctx.maxPulses = maxPulses;
        ctx.fast = options.fast;
        std::vector<ResultValue> row = spec.run(ctx);
        if (row.size() != spec.columns.size()) {
          throw std::runtime_error("experiment '" + spec.name + "': point " +
                                   std::to_string(i) + " produced " +
                                   std::to_string(row.size()) + " cells for " +
                                   std::to_string(spec.columns.size()) +
                                   " columns");
        }
        // Shape check: every cell must match its column's declared shape
        // (text placeholders are allowed anywhere -- the "-" convention of
        // the finalize hooks).
        for (std::size_t c = 0; c < row.size(); ++c) {
          const ColumnSpec::Shape declared = spec.columns[c].shape;
          const ResultValue::Kind kind = row[c].kind;
          const bool ok =
              kind == ResultValue::Kind::Text ||
              (declared == ColumnSpec::Shape::Scalar &&
               kind == ResultValue::Kind::Number) ||
              (declared == ColumnSpec::Shape::Trace &&
               kind == ResultValue::Kind::Trace) ||
              (declared == ColumnSpec::Shape::Matrix &&
               kind == ResultValue::Kind::Matrix);
          if (!ok) {
            throw std::runtime_error(
                "experiment '" + spec.name + "': point " + std::to_string(i) +
                " put a mismatched cell into the " +
                std::string(shapeName(declared)) + " column '" +
                spec.columns[c].name + "'");
          }
        }
        std::string where;
        for (std::size_t ai = 0; ai < axes.size(); ++ai) {
          where += (ai ? " " : "") + axes[ai].name + "=" +
                   nh::util::formatDouble(ctx.values[ai]);
        }
        nh::util::logInfo(spec.name, ": ", where, " done (point ", i + 1, "/",
                          pointCount, ")");
        result.pointValues[i] = std::move(ctx.values);
        result.rows[i] = std::move(row);
      },
      pointThreads);

  if (spec.finalize) spec.finalize(result);
  for (const auto& note : spec.notes) result.notes.push_back(note);
  return result;
}

std::filesystem::path defaultResultsDir() {
  if (const char* env = std::getenv("NH_RESULTS_DIR")) {
    return std::filesystem::path(env);
  }
  return std::filesystem::path("bench_results");
}

void printBanner(const std::string& title, const std::string& description,
                 const std::string& paperShape) {
  std::printf(
      "=====================================================================\n");
  std::printf("NeuroHammer reproduction -- %s\n", title.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("paper shape: %s\n", paperShape.c_str());
  std::printf(
      "=====================================================================\n");
}

namespace {

bool hasShape(const ExperimentResult& result, ColumnSpec::Shape shape) {
  for (const auto& col : result.columns) {
    if (col.shape == shape) return true;
  }
  return false;
}

/// Format one scalar element through the column's ASCII formatter.
std::string formatElement(const ColumnSpec& column, double v) {
  const ResultValue cell = ResultValue::num(v);
  return column.format ? column.format(cell) : cell.render();
}

std::string formatScalar(const ColumnSpec& column, const ResultValue& cell) {
  return column.format ? column.format(cell) : cell.render();
}

/// Expansion width of one result row: the common element count of its
/// shaped cells (text placeholders excluded). Validates that shaped cells
/// agree in length, and matrices in dimensions; fills in the shared matrix
/// dims when present. \p tracesOnly restricts the count to trace cells --
/// the ASCII main table expands traces but renders matrices as separate
/// grids, so matrix lengths must not drive its line count.
std::size_t rowElementCount(const ExperimentResult& result,
                            const std::vector<ResultValue>& row,
                            bool tracesOnly, std::size_t* matrixRows,
                            std::size_t* matrixCols) {
  std::size_t count = 1;
  bool seenShaped = false;
  for (const auto& cell : row) {
    if (!cell.isShaped()) continue;
    if (tracesOnly && cell.kind != ResultValue::Kind::Trace) continue;
    if (!seenShaped) {
      seenShaped = true;
      count = cell.elementCount();
    } else if (cell.elementCount() != count) {
      throw std::logic_error("experiment '" + result.name +
                             "': shaped cells of one row disagree in length");
    }
    if (cell.kind == ResultValue::Kind::Matrix) {
      if (matrixRows && *matrixRows == 0) {
        *matrixRows = cell.matrixRows;
        *matrixCols = cell.matrixCols;
      } else if (matrixRows && (*matrixRows != cell.matrixRows ||
                                *matrixCols != cell.matrixCols)) {
        throw std::logic_error(
            "experiment '" + result.name +
            "': matrix cells of one row disagree in dimensions");
      }
    }
  }
  return count;
}

}  // namespace

std::vector<nh::util::AsciiTable> toAsciiTables(const ExperimentResult& result) {
  std::vector<nh::util::AsciiTable> tables;
  const bool anyMatrix = hasShape(result, ColumnSpec::Shape::Matrix);
  const bool anyTrace = hasShape(result, ColumnSpec::Shape::Trace);

  // Main table: scalar columns plus trace columns (expanded to decimated
  // sample lines); matrix columns get their own grids below.
  std::vector<std::size_t> mainColumns;
  for (std::size_t c = 0; c < result.columns.size(); ++c) {
    if (result.columns[c].shape != ColumnSpec::Shape::Matrix) {
      mainColumns.push_back(c);
    }
  }
  if (!mainColumns.empty()) {
    std::vector<std::string> header;
    header.reserve(mainColumns.size());
    for (const std::size_t c : mainColumns) {
      header.push_back(result.columns[c].heading());
    }
    nh::util::AsciiTable table(std::move(header));
    if (!result.tableTitle.empty()) table.setTitle(result.tableTitle);
    for (const auto& row : result.rows) {
      // Expansion is driven by the trace cells alone: matrix cells are not
      // part of the main table (they get their own grids below). Same
      // agreement rule (and error) the CSV expansion enforces.
      const std::size_t count =
          rowElementCount(result, row, /*tracesOnly=*/true, nullptr, nullptr);
      // Decimate long traces the way the Fig. 1 bench always did: ~16
      // evenly spaced lines plus the final sample.
      const std::size_t every = (anyTrace && count > 16) ? count / 16 : 1;
      for (std::size_t k = 0; k < count; ++k) {
        if (k % every != 0 && k + 1 != count) continue;
        std::vector<std::string> cells;
        cells.reserve(mainColumns.size());
        for (const std::size_t c : mainColumns) {
          const ResultValue& cell = row[c];
          if (cell.isShaped()) {
            cells.push_back(formatElement(result.columns[c], cell.element(k)));
          } else {
            // Scalar cells print once per point, on its first line.
            cells.push_back(k == 0 ? formatScalar(result.columns[c], cell)
                                   : std::string());
          }
        }
        table.addRow(std::move(cells));
      }
    }
    tables.push_back(std::move(table));
  }

  // One grid per matrix cell, in row/column order.
  if (anyMatrix) {
    for (std::size_t r = 0; r < result.rows.size(); ++r) {
      for (std::size_t c = 0; c < result.columns.size(); ++c) {
        const ResultValue& cell = result.rows[r][c];
        if (cell.kind != ResultValue::Kind::Matrix) continue;
        std::vector<std::string> header{"row\\col"};
        for (std::size_t j = 0; j < cell.matrixCols; ++j) {
          header.push_back(std::to_string(j));
        }
        nh::util::AsciiTable grid(std::move(header));
        std::string title = result.columns[c].heading();
        if (result.rows.size() > 1) {
          title += " (";
          for (std::size_t ai = 0; ai < result.axes.size(); ++ai) {
            title += (ai ? " " : "") + result.axes[ai].name + "=" +
                     nh::util::formatDouble(result.pointValues[r][ai]);
          }
          title += ")";
        }
        grid.setTitle(title);
        for (std::size_t i = 0; i < cell.matrixRows; ++i) {
          std::vector<std::string> line{std::to_string(i)};
          for (std::size_t j = 0; j < cell.matrixCols; ++j) {
            line.push_back(formatElement(result.columns[c],
                                         cell.element(i * cell.matrixCols + j)));
          }
          grid.addRow(std::move(line));
        }
        tables.push_back(std::move(grid));
      }
    }
  }

  // Pivoted grid: rows = rowAxis values, columns = colAxis values, cells =
  // the value column of the matching grid point.
  if (result.pivot.enabled()) {
    const PivotSpec& pivot = result.pivot;
    const ExperimentResult::Axis* rowAxis = nullptr;
    const ExperimentResult::Axis* colAxis = nullptr;
    std::size_t rowAxisIndex = 0;
    std::size_t colAxisIndex = 0;
    for (std::size_t ai = 0; ai < result.axes.size(); ++ai) {
      if (result.axes[ai].name == pivot.rowAxis) {
        rowAxis = &result.axes[ai];
        rowAxisIndex = ai;
      }
      if (result.axes[ai].name == pivot.colAxis) {
        colAxis = &result.axes[ai];
        colAxisIndex = ai;
      }
    }
    std::size_t valueColumn = result.columns.size();
    for (std::size_t c = 0; c < result.columns.size(); ++c) {
      if (result.columns[c].name == pivot.valueColumn) valueColumn = c;
    }
    if (!rowAxis || !colAxis || valueColumn == result.columns.size()) {
      throw std::logic_error("experiment '" + result.name +
                             "': pivot names an unknown axis or column");
    }
    std::vector<std::string> header{pivot.rowAxis + " \\ " + pivot.colAxis};
    for (const double v : colAxis->values) {
      header.push_back(pivot.colLabel ? pivot.colLabel(v)
                                      : nh::util::formatDouble(v));
    }
    nh::util::AsciiTable grid(std::move(header));
    if (!pivot.title.empty()) grid.setTitle(pivot.title);
    for (const double rv : rowAxis->values) {
      std::vector<std::string> line{pivot.rowLabel
                                        ? pivot.rowLabel(rv)
                                        : nh::util::formatDouble(rv)};
      for (const double cv : colAxis->values) {
        std::string cellText = "-";  // stays when --set dropped the point
        for (std::size_t i = 0; i < result.rows.size(); ++i) {
          if (result.pointValues[i][rowAxisIndex] == rv &&
              result.pointValues[i][colAxisIndex] == cv) {
            cellText = pivot.format
                           ? pivot.format(result.rows[i])
                           : formatScalar(result.columns[valueColumn],
                                          result.rows[i][valueColumn]);
            break;
          }
        }
        line.push_back(std::move(cellText));
      }
      grid.addRow(std::move(line));
    }
    tables.push_back(std::move(grid));
  }

  if (tables.empty()) {
    throw std::logic_error("experiment '" + result.name +
                           "': nothing to render");
  }
  for (const auto& note : result.notes) tables.front().addNote(note);
  return tables;
}

nh::util::AsciiTable toAsciiTable(const ExperimentResult& result) {
  return toAsciiTables(result).front();
}

nh::util::CsvTable toCsvTable(const ExperimentResult& result) {
  const bool anyTrace = hasShape(result, ColumnSpec::Shape::Trace);
  const bool anyMatrix = hasShape(result, ColumnSpec::Shape::Matrix);
  if (anyTrace && anyMatrix) {
    throw std::logic_error("experiment '" + result.name +
                           "': trace and matrix columns cannot mix");
  }
  std::vector<std::string> header;
  if (anyTrace) header.push_back("sample");
  if (anyMatrix) {
    header.push_back("row");
    header.push_back("col");
  }
  for (const auto& col : result.columns) header.push_back(col.name);
  nh::util::CsvTable csv(std::move(header));
  for (const auto& row : result.rows) {
    std::size_t matrixRows = 0;
    std::size_t matrixCols = 0;
    const std::size_t count = rowElementCount(result, row, /*tracesOnly=*/false,
                                              &matrixRows, &matrixCols);
    for (std::size_t k = 0; k < count; ++k) {
      std::vector<std::string> cells;
      cells.reserve(csv.columnCount());
      if (anyTrace) cells.push_back(std::to_string(k));
      if (anyMatrix) {
        if (matrixCols > 0) {
          cells.push_back(std::to_string(k / matrixCols));
          cells.push_back(std::to_string(k % matrixCols));
        } else {  // every matrix cell of this row is a text placeholder
          cells.push_back("-");
          cells.push_back("-");
        }
      }
      for (const auto& cell : row) {
        cells.push_back(cell.isShaped()
                            ? nh::util::formatDouble(cell.element(k))
                            : cell.render());
      }
      csv.addRow(cells);
    }
  }
  return csv;
}

void writeCellJson(nh::util::JsonWriter& w, const ResultValue& cell) {
  switch (cell.kind) {
    case ResultValue::Kind::Number:
      w.value(cell.number);
      return;
    case ResultValue::Kind::Text:
      w.value(cell.text);
      return;
    case ResultValue::Kind::Trace:
      w.beginObject();
      w.key("shape").value("trace");
      break;
    case ResultValue::Kind::Matrix:
      w.beginObject();
      w.key("shape").value("matrix");
      w.key("rows").value(cell.matrixRows);
      w.key("cols").value(cell.matrixCols);
      break;
  }
  w.key("values").beginArray();
  for (const double v : cell.series) w.value(v);
  w.endArray();
  w.endObject();
}

std::string toJson(const ExperimentResult& result) {
  nh::util::JsonWriter w;
  w.beginObject();
  w.key("experiment").value(result.name);
  w.key("config_digest").value(result.configDigest);
#ifdef NH_BUILD_TYPE
  w.key("build_type").value(NH_BUILD_TYPE);
#else
  w.key("build_type").value("unknown");
#endif
  w.key("fast").value(result.fast);
  w.key("threads").value(result.threads);
  w.key("max_pulses").value(result.maxPulses);
  w.key("studies_constructed").value(result.studiesConstructed);
  w.key("studies_reused").value(result.studiesReused);
  w.key("axes").beginArray();
  for (const auto& axis : result.axes) {
    w.beginObject();
    w.key("name").value(axis.name);
    w.key("values").beginArray();
    for (const double v : axis.values) w.value(v);
    w.endArray();
    w.endObject();
  }
  w.endArray();
  w.key("columns").beginArray();
  for (const auto& col : result.columns) w.value(col.name);
  w.endArray();
  w.key("column_shapes").beginArray();
  for (const auto& col : result.columns) w.value(shapeName(col.shape));
  w.endArray();
  w.key("rows").beginArray();
  for (const auto& row : result.rows) {
    w.beginArray();
    for (const auto& cell : row) writeCellJson(w, cell);
    w.endArray();
  }
  w.endArray();
  w.key("notes").beginArray();
  for (const auto& note : result.notes) w.value(note);
  w.endArray();
  w.endObject();
  return w.str();
}

EmittedFiles writeResultFiles(const ExperimentResult& result,
                              const std::filesystem::path& dir) {
  EmittedFiles files;
  files.csv = dir / (result.name + ".csv");
  files.json = dir / (result.name + ".json");
  toCsvTable(result).save(files.csv);  // creates parent directories
  std::ofstream out(files.json);
  out << toJson(result) << "\n";
  out.flush();  // surface buffered-write failures (disk full) before the test
  if (!out) {
    throw std::runtime_error("writeResultFiles: cannot write " +
                             files.json.string());
  }
  return files;
}

}  // namespace nh::core
