#include "core/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "util/annotations.hpp"
#include "util/cancellation.hpp"
#include "util/faultinject.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/threadpool.hpp"

namespace nh::core {

ResultValue ResultValue::num(double v) {
  ResultValue out;
  out.kind = Kind::Number;
  out.number = v;
  return out;
}

ResultValue ResultValue::boolean(bool v) { return num(v ? 1.0 : 0.0); }

ResultValue ResultValue::str(std::string s) {
  ResultValue out;
  out.kind = Kind::Text;
  out.text = std::move(s);
  return out;
}

ResultValue ResultValue::trace(std::vector<double> samples) {
  ResultValue out;
  out.kind = Kind::Trace;
  out.series = std::move(samples);
  return out;
}

ResultValue ResultValue::matrix(std::size_t rows, std::size_t cols,
                                std::vector<double> rowMajor) {
  if (rowMajor.size() != rows * cols) {
    throw std::invalid_argument(
        "ResultValue::matrix: " + std::to_string(rowMajor.size()) +
        " values for a " + std::to_string(rows) + "x" + std::to_string(cols) +
        " matrix");
  }
  ResultValue out;
  out.kind = Kind::Matrix;
  out.series = std::move(rowMajor);
  out.matrixRows = rows;
  out.matrixCols = cols;
  return out;
}

std::size_t ResultValue::elementCount() const {
  return isShaped() ? series.size() : 1;
}

double ResultValue::element(std::size_t k) const {
  if (isShaped()) return series.at(k);
  if (k != 0) throw std::out_of_range("ResultValue::element on a scalar");
  return number;
}

std::string ResultValue::render() const {
  if (isShaped()) {
    throw std::logic_error(
        "ResultValue::render on a shaped cell (use the CSV/JSON expansion)");
  }
  return kind == Kind::Number ? nh::util::formatDouble(number) : text;
}

bool withinTolerance(double expected, double actual,
                     const ColumnSpec::Tolerance& tolerance) {
  if (tolerance.ignore) return true;
  return std::abs(actual - expected) <=
         tolerance.abs + tolerance.rel * std::abs(expected);
}

const char* shapeName(ColumnSpec::Shape shape) {
  switch (shape) {
    case ColumnSpec::Shape::Trace: return "trace";
    case ColumnSpec::Shape::Matrix: return "matrix";
    case ColumnSpec::Shape::Scalar: break;
  }
  return "scalar";
}

const char* pointStatusName(PointOutcome::Status status) {
  switch (status) {
    case PointOutcome::Status::Pending: return "pending";
    case PointOutcome::Status::Failed: return "failed";
    case PointOutcome::Status::Cancelled: return "cancelled";
    case PointOutcome::Status::TimedOut: return "timed-out";
    case PointOutcome::Status::Resumed: return "resumed";
    case PointOutcome::Status::Ok: break;
  }
  return "ok";
}

namespace colfmt {

using Formatter = std::function<std::string(const ResultValue&)>;

// Every canned formatter passes text cells through verbatim: finalize hooks
// leave "-" placeholders in cross-row columns when no reference exists.

Formatter si(std::string unit, int decimals) {
  return [unit = std::move(unit), decimals](const ResultValue& v) {
    if (v.kind == ResultValue::Kind::Text) return v.text;
    return nh::util::AsciiTable::si(v.number, unit, decimals);
  };
}

Formatter fixed(int decimals, std::string suffix) {
  return [decimals, suffix = std::move(suffix)](const ResultValue& v) {
    if (v.kind == ResultValue::Kind::Text) return v.text;
    return nh::util::AsciiTable::fixed(v.number, decimals) + suffix;
  };
}

Formatter grouped() {
  return [](const ResultValue& v) {
    if (v.kind == ResultValue::Kind::Text) return v.text;
    return nh::util::AsciiTable::grouped(static_cast<long long>(v.number));
  };
}

Formatter flipped() {
  return [](const ResultValue& v) {
    if (v.kind == ResultValue::Kind::Text) return v.text;
    return std::string(v.number != 0.0 ? "yes" : "NO (budget)");
  };
}

Formatter yesNo() {
  return [](const ResultValue& v) {
    if (v.kind == ResultValue::Kind::Text) return v.text;
    return std::string(v.number != 0.0 ? "yes" : "no");
  };
}

}  // namespace colfmt

double PointContext::value(const std::string& axis) const {
  for (std::size_t i = 0; i < spec->axes.size(); ++i) {
    if (spec->axes[i].name == axis) return values[i];
  }
  throw std::out_of_range("PointContext: no axis named '" + axis + "'");
}

namespace {

/// Axis value lists as actually executed: fast subsets, then CLI overrides.
std::vector<ExperimentResult::Axis> resolveAxes(const ExperimentSpec& spec,
                                                const RunOptions& options) {
  std::vector<ExperimentResult::Axis> axes;
  axes.reserve(spec.axes.size());
  for (const auto& axis : spec.axes) {
    axes.push_back({axis.name, axis.active(options.fast)});
  }
  for (const auto& [name, values] : options.axisOverrides) {
    bool found = false;
    for (auto& axis : axes) {
      if (axis.name == name) {
        axis.values = values;
        found = true;
      }
    }
    if (!found) {
      // List the valid axes: the CLI surfaces this message verbatim, and a
      // bare "no axis 'ambient'" leaves the user guessing at the spelling.
      std::string valid;
      for (const auto& axis : axes) {
        valid += (valid.empty() ? "" : ", ") + axis.name;
      }
      throw std::out_of_range("experiment '" + spec.name + "' has no axis '" +
                              name + "' (valid axes: " + valid + ")");
    }
  }
  for (const auto& axis : axes) {
    if (axis.values.empty()) {
      throw std::invalid_argument("experiment '" + spec.name + "': axis '" +
                                  axis.name + "' has no values");
    }
  }
  return axes;
}

std::size_t resolveBudget(const ExperimentSpec& spec, const RunOptions& options) {
  if (options.maxPulsesOverride) return options.maxPulsesOverride;
  if (options.fast && spec.fastMaxPulses) return spec.fastMaxPulses;
  return spec.maxPulses;
}

/// Mixed-radix decode of a serial point index, first axis outermost -- the
/// same slot order the legacy sweeps used (outer * widths.size() + width).
std::vector<double> pointValuesAt(
    const std::vector<ExperimentResult::Axis>& axes, std::size_t index) {
  std::vector<double> values(axes.size());
  std::size_t rem = index;
  for (std::size_t ai = axes.size(); ai-- > 0;) {
    const auto& list = axes[ai].values;
    values[ai] = list[rem % list.size()];
    rem /= list.size();
  }
  return values;
}

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  // Field separator: without it the hash sees only the concatenation, and
  // e.g. rows=1,cols=25 would collide with rows=12,cols=5.
  h ^= 0x1f;
  h *= 1099511628211ull;
  return h;
}

/// Hash every field that participates in StudyConfig::operator== -- the
/// digest must distinguish any two configs the study-dedup cache would
/// (toConfigText only serialises the INI-supported subset, which would make
/// configs differing in e.g. femOptions or engine options collide). Keep
/// this list in sync when StudyConfig or its nested structs grow fields.
std::uint64_t hashStudyConfig(std::uint64_t h, const StudyConfig& c) {
  const jart::Params& p = c.cellParams;
  const fem::DiffusionOptions& f = c.femOptions;
  const xbar::FastEngineOptions& e = c.engineOptions;
  const DetectorConfig& d = c.detector;
  const double fields[] = {
      static_cast<double>(c.rows), static_cast<double>(c.cols), c.spacing,
      c.ambientK, c.useFemAlphas ? 1.0 : 0.0, c.femVoxelSize,
      // jart::Params
      p.rFilament, p.lCell, p.lDisc, p.lPlug, p.nDiscMin, p.nDiscMax, p.nPlug,
      p.mobility, p.rSeries, p.richardson, p.phiBarrier0, p.phiLowering,
      p.idealityFwd, p.phiBarrierRev, p.idealityRev, p.rThEff, p.tauThermal,
      p.activationEnergySet, p.activationEnergyReset, p.kineticPrefactorSet,
      p.kineticPrefactorReset, p.hopDistance, p.chargeNumber,
      p.fieldEnhancement, p.windowExponent,
      // fem::DiffusionOptions
      f.relTol, static_cast<double>(f.maxIterations),
      static_cast<double>(f.preconditioner),
      static_cast<double>(f.multigridMinVoxels),
      // xbar::FastEngineOptions
      static_cast<double>(e.substepsPerPulse), e.solveLineNetwork ? 1.0 : 0.0,
      e.relaxBetweenPulses ? 1.0 : 0.0, e.enableBatching ? 1.0 : 0.0,
      e.batchDriftLimit, static_cast<double>(e.maxBatch), e.newtonTol,
      static_cast<double>(e.maxNewtonIterations), e.useSchurSolve ? 1.0 : 0.0,
      static_cast<double>(e.schurMode),
      static_cast<double>(e.schurIterativeMinCols),
      // DetectorConfig
      d.readVoltage, d.rLrsMax, d.rHrsMin};
  for (const double v : fields) h = fnv1a(h, nh::util::formatDouble(v));
  // Later-added option fields are hashed only when they differ from their
  // defaults: hashing them unconditionally would shift every digest recorded
  // before the field existed (checkpoints, baseline files), while the
  // conditional keeps old digests stable AND still separates any two configs
  // operator== distinguishes.
  if (f.multigridSmoother != nh::util::MultigridSmoother::Lexicographic) {
    h = fnv1a(h, "multigridSmoother=" +
                     std::to_string(static_cast<int>(f.multigridSmoother)));
  }
  return h;
}

std::string digestOf(const ExperimentSpec& spec,
                     const std::vector<ExperimentResult::Axis>& axes,
                     std::size_t maxPulses) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a(h, spec.name);
  h = hashStudyConfig(h, spec.base);
  for (const auto& axis : axes) {
    h = fnv1a(h, axis.name);
    for (const double v : axis.values) h = fnv1a(h, nh::util::formatDouble(v));
  }
  h = fnv1a(h, std::to_string(maxPulses));
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, h);
  return buf;
}

/// Process-wide study cache: configs compared by the same operator== the
/// per-run dedup uses, entries owned by shared_ptr so an eviction cannot
/// pull a study out from under a running experiment. Linear scan -- the
/// catalog holds tens of unique configs, not thousands. LRU-bounded:
/// entries are kept least-recently-used first, a hit moves the entry to the
/// back, and an insert past capacity evicts the front. Megabit-array
/// studies pin per-cell state for 10^6 devices each, so the bound is what
/// keeps a run-all's resident memory flat.
struct StudyCache {
  nh::util::Mutex mutex;
  std::vector<std::pair<StudyConfig, std::shared_ptr<const AttackStudy>>>
      entries NH_GUARDED_BY(mutex);  ///< LRU order: front = next victim.
  std::size_t capacity NH_GUARDED_BY(mutex) = 32;  ///< Seed catalog stays warm.

  std::shared_ptr<const AttackStudy> find(const StudyConfig& config)
      NH_EXCLUDES(mutex) {
    const nh::util::MutexLock lock(mutex);
    for (auto it = entries.begin(); it != entries.end(); ++it) {
      if (it->first == config) {
        std::rotate(it, it + 1, entries.end());  // refresh: move to back
        return entries.back().second;
      }
    }
    return nullptr;
  }

  /// Publish \p study, returning the entry that ended up cached: when a
  /// racing insert for an equal config got there first, that winner is
  /// returned instead, so concurrent builders converge on one instance.
  std::shared_ptr<const AttackStudy> insert(
      const StudyConfig& config, std::shared_ptr<const AttackStudy> study)
      NH_EXCLUDES(mutex) {
    const nh::util::MutexLock lock(mutex);
    for (const auto& [cached, existing] : entries) {
      if (cached == config) return existing;  // racing run-all: first wins
    }
    while (entries.size() >= capacity && !entries.empty()) {
      entries.erase(entries.begin());
    }
    entries.emplace_back(config, std::move(study));
    return entries.back().second;
  }
};

StudyCache& studyCache() {
  static StudyCache instance;
  return instance;
}

/// ---- checkpoint store ----------------------------------------------------
///
/// One JSON document per experiment: {"experiment", "config_digest",
/// "points", "rows": [{"index": i, "cells": [...]} ...]} holding only the
/// rows whose points completed OK. Row slots are serially indexed, so a
/// resumed run that skips them is bit-identical to an uninterrupted one.

void writeCheckpointFile(const std::filesystem::path& path,
                         const std::string& name, const std::string& digest,
                         std::size_t pointCount,
                         const std::vector<std::vector<ResultValue>>& rows,
                         const std::vector<PointOutcome>& outcomes) {
  nh::util::JsonWriter w;
  w.beginObject();
  w.key("experiment").value(name);
  w.key("config_digest").value(digest);
  w.key("points").value(pointCount);
  w.key("rows").beginArray();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (!outcomes[i].ok()) continue;
    w.beginObject();
    w.key("index").value(i);
    w.key("cells").beginArray();
    for (const auto& cell : rows[i]) writeCellJson(w, cell);
    w.endArray();
    w.endObject();
  }
  w.endArray();
  w.endObject();

  // Write-then-rename: a crash mid-write must never leave a truncated file
  // where the previous good checkpoint was.
  std::filesystem::create_directories(path.parent_path());
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << w.str() << "\n";
    out.flush();
    if (!out) {
      throw std::runtime_error("checkpoint: cannot write " + tmp.string());
    }
  }
  std::filesystem::rename(tmp, path);
}

/// Completed rows of a digest-matching checkpoint, by serial index. A
/// missing, corrupt, or mismatching (digest / point count / row width)
/// checkpoint yields no rows -- resume silently degrades to a full run.
std::vector<std::unique_ptr<std::vector<ResultValue>>> loadCheckpointRows(
    const std::filesystem::path& path, const std::string& digest,
    std::size_t pointCount, std::size_t columnCount) {
  std::vector<std::unique_ptr<std::vector<ResultValue>>> rows(pointCount);
  std::ifstream in(path, std::ios::binary);
  if (!in) return rows;
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    const nh::util::JsonValue doc = nh::util::JsonValue::parse(buf.str());
    if (doc.at("config_digest").asString() != digest) return rows;
    if (static_cast<std::size_t>(doc.at("points").asNumber()) != pointCount) {
      return rows;
    }
    for (const auto& entry : doc.at("rows").items()) {
      const auto i = static_cast<std::size_t>(entry.at("index").asNumber());
      if (i >= pointCount) continue;
      const auto& cells = entry.at("cells").items();
      if (cells.size() != columnCount) continue;
      auto row = std::make_unique<std::vector<ResultValue>>();
      row->reserve(columnCount);
      for (const auto& cell : cells) row->push_back(readCellJson(cell));
      rows[i] = std::move(row);
    }
  } catch (const std::exception&) {
    // Unreadable checkpoint: pretend it does not exist.
    for (auto& row : rows) row.reset();
  }
  return rows;
}

/// Serialises point settlement. A point's row and outcome are assigned
/// *together* under mutex_, so the checkpoint writer -- which runs under the
/// same mutex_ -- can never observe a row a worker is still move-assigning,
/// and unsettled (Pending) slots never reach the file. The PR 7
/// checkpoint-writer race was exactly this protocol enforced only by
/// convention; here the row/outcome stores are pt-guarded by mutex_ and the
/// lock-holding helper carries NH_REQUIRES, so clang rejects a regression at
/// compile time.
///
/// The tracker accesses the result's rows/outcomes through guarded pointers
/// for the whole parallel phase. After the loop's barrier the run is
/// single-threaded again; the caller reads the result directly, outside the
/// tracker, which is the documented single-owner epoch.
class ProgressTracker {
 public:
  ProgressTracker(const ExperimentSpec& spec, ExperimentResult& result,
                  const RunOptions& options, std::filesystem::path ckpt)
      : spec_(spec),
        options_(options),
        ckpt_(std::move(ckpt)),
        pointCount_(result.rows.size()),
        digest_(result.configDigest),
        rows_(&result.rows),
        outcomes_(&result.outcomes) {
    const nh::util::MutexLock lock(mutex_);
    for (const auto& outcome : *outcomes_) {
      if (outcome.status == PointOutcome::Status::Resumed) ++settled_;
    }
    lastWrite_ = std::chrono::steady_clock::now();
  }

  /// Record one settled point: assign its row and outcome, maybe write a
  /// throttled checkpoint, and invoke the (serialised) completion observer.
  void settle(std::size_t i, PointOutcome outcome, std::vector<ResultValue> row)
      NH_EXCLUDES(mutex_) {
    const nh::util::MutexLock lock(mutex_);
    (*rows_)[i] = std::move(row);
    (*outcomes_)[i] = std::move(outcome);
    ++settled_;
    // Checkpoint I/O policy: mid-run writes re-serialize every completed
    // row, so they are throttled to one per interval instead of one per
    // point (an interrupted run still gets a final write via
    // writeFinalCheckpoint covering everything that settled).
    if ((*outcomes_)[i].ok() && !ckpt_.empty() && !checkpointBroken_) {
      const auto now = std::chrono::steady_clock::now();
      if (now - lastWrite_ >= kCheckpointInterval) {
        tryWriteCheckpointLocked();
        lastWrite_ = now;
      }
    }
    if (options_.onPointComplete) {
      options_.onPointComplete(i, (*outcomes_)[i], settled_);
    }
  }

  /// One final write so --resume sees every settled row, including those the
  /// throttled mid-run writes skipped. Called after the loop barrier (the
  /// run is single-threaded again, but an uncontended lock is free and keeps
  /// the analysis honest).
  void writeFinalCheckpoint() NH_EXCLUDES(mutex_) {
    const nh::util::MutexLock lock(mutex_);
    tryWriteCheckpointLocked();
  }

 private:
  /// A write failure (unwritable dir, disk full) is a degraded-resumability
  /// event, not a run failure: log once, stop trying -- later writes would
  /// fail the same way.
  void tryWriteCheckpointLocked() NH_REQUIRES(mutex_) {
    if (ckpt_.empty() || checkpointBroken_) return;
    try {
      writeCheckpointFile(ckpt_, spec_.name, digest_, pointCount_, *rows_,
                          *outcomes_);
    } catch (const std::exception& e) {
      checkpointBroken_ = true;
      nh::util::logWarn("experiment '", spec_.name,
                        "': checkpoint write failed (", e.what(),
                        "); checkpointing disabled for this run");
    }
  }

  static constexpr std::chrono::seconds kCheckpointInterval{5};

  const ExperimentSpec& spec_;
  const RunOptions& options_;
  const std::filesystem::path ckpt_;
  const std::size_t pointCount_;
  const std::string digest_;

  nh::util::Mutex mutex_;
  std::vector<std::vector<ResultValue>>* const rows_ NH_PT_GUARDED_BY(mutex_);
  std::vector<PointOutcome>* const outcomes_ NH_PT_GUARDED_BY(mutex_);
  std::size_t settled_ NH_GUARDED_BY(mutex_) = 0;
  bool checkpointBroken_ NH_GUARDED_BY(mutex_) = false;
  std::chrono::steady_clock::time_point lastWrite_ NH_GUARDED_BY(mutex_);
};

}  // namespace

std::size_t studyCacheSize() {
  StudyCache& cache = studyCache();
  const nh::util::MutexLock lock(cache.mutex);
  return cache.entries.size();
}

void clearStudyCache() {
  StudyCache& cache = studyCache();
  const nh::util::MutexLock lock(cache.mutex);
  cache.entries.clear();
}

std::size_t studyCacheCapacity() {
  StudyCache& cache = studyCache();
  const nh::util::MutexLock lock(cache.mutex);
  return cache.capacity;
}

void setStudyCacheCapacity(std::size_t capacity) {
  StudyCache& cache = studyCache();
  const nh::util::MutexLock lock(cache.mutex);
  cache.capacity = std::max<std::size_t>(1, capacity);
  while (cache.entries.size() > cache.capacity) {
    cache.entries.erase(cache.entries.begin());
  }
}

std::shared_ptr<const AttackStudy> getOrBuildStudy(const StudyConfig& config) {
  if (auto hit = studyCache().find(config)) return hit;
  // Built outside the lock: construction can take seconds (FEM-alpha
  // extraction) and other configs must keep hitting the cache meanwhile.
  // Racing builders for an equal config each construct once; insert()
  // returns the winning instance so every caller converges on it.
  auto study = std::make_shared<const AttackStudy>(config);
  return studyCache().insert(config, std::move(study));
}

std::string configDigest(const ExperimentSpec& spec, const RunOptions& options) {
  return digestOf(spec, resolveAxes(spec, options), resolveBudget(spec, options));
}

ExperimentResult runExperiment(const ExperimentSpec& spec,
                               const RunOptions& options) {
  if (!spec.run) {
    throw std::invalid_argument("runExperiment: spec '" + spec.name +
                                "' has no run function");
  }
  const auto axes = resolveAxes(spec, options);
  const std::size_t maxPulses = resolveBudget(spec, options);

  std::size_t pointCount = 1;
  for (const auto& axis : axes) pointCount *= axis.values.size();

  // Materialise every point's StudyConfig and deduplicate in serial point
  // order: points whose study-relevant config compares equal (defaulted
  // operator==) share one cached AttackStudy. Linear search is fine at the
  // grid sizes of the catalog (tens to hundreds of points).
  std::vector<StudyConfig> pointConfigs;
  pointConfigs.reserve(pointCount);
  std::vector<std::size_t> studyIndex(pointCount, 0);
  std::vector<const StudyConfig*> uniqueConfigs;
  for (std::size_t i = 0; i < pointCount; ++i) {
    pointConfigs.push_back([&] {
      StudyConfig cfg = spec.base;
      const std::vector<double> values = pointValuesAt(axes, i);
      for (std::size_t ai = 0; ai < spec.axes.size(); ++ai) {
        if (spec.axes[ai].apply) spec.axes[ai].apply(cfg, values[ai]);
      }
      return cfg;
    }());
  }
  for (std::size_t i = 0; i < pointCount; ++i) {
    std::size_t found = uniqueConfigs.size();
    for (std::size_t u = 0; u < uniqueConfigs.size(); ++u) {
      if (*uniqueConfigs[u] == pointConfigs[i]) {
        found = u;
        break;
      }
    }
    if (found == uniqueConfigs.size()) uniqueConfigs.push_back(&pointConfigs[i]);
    studyIndex[i] = found;
  }

  // Resolve the unique studies through the process-wide cache; misses are
  // constructed on the pool (the FEM-alpha path makes construction
  // expensive) and then published for later runs -- `run-all` and
  // `check --all` batch the whole catalog against one warm study set. Each
  // construction is internally serial and cache hits are immutable, so the
  // parallel build stays bit-identical for every thread count.
  //
  // Fault tolerance: a construction failure is captured per unique config.
  // Under PointFailurePolicy::Abort it rethrows (legacy behaviour); under
  // Skip every point sharing the config inherits the outcome as a flagged
  // row. Cancellation is recorded, never rethrown -- a cancelled run
  // returns its partial result.
  std::vector<std::shared_ptr<const AttackStudy>> studies;
  std::vector<PointOutcome> studyOutcomes(uniqueConfigs.size());
  std::size_t studiesReused = 0;
  if (spec.buildStudies) {
    studies.resize(uniqueConfigs.size());
    for (std::size_t u = 0; u < uniqueConfigs.size(); ++u) {
      studies[u] = studyCache().find(*uniqueConfigs[u]);
      if (studies[u]) ++studiesReused;
    }
    nh::util::parallelFor(
        uniqueConfigs.size(),
        [&](std::size_t u) {
          if (studies[u]) return;
          const nh::util::CancellationScope scope(options.cancel);
          try {
            nh::util::checkCancellation("study construction");
            studies[u] = getOrBuildStudy(*uniqueConfigs[u]);
          } catch (const nh::util::CancelledError& e) {
            studyOutcomes[u].status = e.deadlineExpired()
                                          ? PointOutcome::Status::TimedOut
                                          : PointOutcome::Status::Cancelled;
            studyOutcomes[u].error = e.what();
          } catch (const std::exception& e) {
            if (options.onPointFailure == PointFailurePolicy::Abort) throw;
            studyOutcomes[u].status = PointOutcome::Status::Failed;
            studyOutcomes[u].error =
                std::string("study construction: ") + e.what();
          }
        },
        options.threads);
    // Outcomes default to Pending; a resolved study (cache hit or fresh
    // construction) marks its config Ok so the per-point doom check below
    // only fires for real construction failures.
    for (std::size_t u = 0; u < studies.size(); ++u) {
      if (studies[u]) studyOutcomes[u].status = PointOutcome::Status::Ok;
    }
  }

  ExperimentResult result;
  result.name = spec.name;
  result.tableTitle = spec.tableTitle;
  result.columns = spec.columns;
  result.axes = axes;
  // Record what actually executed: serialPoints specs run single-threaded
  // whatever the caller asked for, and their JSON must say so (wall-clock
  // provenance).
  result.threads = spec.serialPoints ? 1
                   : options.threads ? options.threads
                                     : nh::util::defaultThreadCount();
  result.fast = options.fast;
  result.maxPulses = maxPulses;
  result.studiesConstructed = spec.buildStudies ? uniqueConfigs.size() : 0;
  result.studiesReused = studiesReused;
  result.configDigest = digestOf(spec, axes, maxPulses);
  result.pivot = spec.pivot;
  result.rows.resize(pointCount);
  result.pointValues.resize(pointCount);
  result.outcomes.assign(pointCount, PointOutcome{});
  // Axis values are known for every slot whether or not its point runs --
  // flagged rows still label their grid position in the sinks.
  for (std::size_t i = 0; i < pointCount; ++i) {
    result.pointValues[i] = pointValuesAt(axes, i);
  }

  const std::filesystem::path ckpt =
      options.checkpointDir.empty()
          ? std::filesystem::path()
          : checkpointPath(options.checkpointDir, spec.name);

  // Resume: pre-fill row slots from a digest-matching checkpoint. Restored
  // rows count as OK (status Resumed) and their points never execute, so
  // the final rows are bit-identical to an uninterrupted run.
  if (options.resume && !ckpt.empty()) {
    auto restored =
        loadCheckpointRows(ckpt, result.configDigest, pointCount,
                           spec.columns.size());
    for (std::size_t i = 0; i < pointCount; ++i) {
      if (!restored[i]) continue;
      result.rows[i] = std::move(*restored[i]);
      result.outcomes[i].status = PointOutcome::Status::Resumed;
      result.outcomes[i].attempts = 0;
    }
  }

  // Progress bookkeeping: the tracker settles a point (row + outcome
  // assigned, both) only under its mutex, so the checkpoint writer -- which
  // runs under the same mutex -- can never observe a row another worker is
  // still writing, and the Pending default keeps unsettled slots out of the
  // file entirely. The observer (CLI progress, test-driven cancellation)
  // runs serially. The locking protocol is thread-safety-annotated; see
  // ProgressTracker.
  ProgressTracker progress(spec, result, options, ckpt);

  // One point's run function plus the row/shape validation; returns the
  // validated row (assigned into the shared result only by settle, under the
  // progress mutex) and throws on any contract violation. Only called with
  // the point's cancellation scope and fault-injection scope installed.
  const auto executePoint = [&](std::size_t i) {
    PointContext ctx;
    ctx.spec = &spec;
    ctx.index = i;
    ctx.values = result.pointValues[i];
    ctx.config = pointConfigs[i];
    ctx.study = spec.buildStudies ? studies[studyIndex[i]].get() : nullptr;
    ctx.maxPulses = maxPulses;
    ctx.fast = options.fast;
    std::vector<ResultValue> row = spec.run(ctx);
    if (row.size() != spec.columns.size()) {
      throw std::runtime_error("experiment '" + spec.name + "': point " +
                               std::to_string(i) + " produced " +
                               std::to_string(row.size()) + " cells for " +
                               std::to_string(spec.columns.size()) +
                               " columns");
    }
    // Shape check: every cell must match its column's declared shape
    // (text placeholders are allowed anywhere -- the "-" convention of
    // the finalize hooks).
    for (std::size_t c = 0; c < row.size(); ++c) {
      const ColumnSpec::Shape declared = spec.columns[c].shape;
      const ResultValue::Kind kind = row[c].kind;
      const bool ok =
          kind == ResultValue::Kind::Text ||
          (declared == ColumnSpec::Shape::Scalar &&
           kind == ResultValue::Kind::Number) ||
          (declared == ColumnSpec::Shape::Trace &&
           kind == ResultValue::Kind::Trace) ||
          (declared == ColumnSpec::Shape::Matrix &&
           kind == ResultValue::Kind::Matrix);
      if (!ok) {
        throw std::runtime_error(
            "experiment '" + spec.name + "': point " + std::to_string(i) +
            " put a mismatched cell into the " +
            std::string(shapeName(declared)) + " column '" +
            spec.columns[c].name + "'");
      }
    }
    std::string where;
    for (std::size_t ai = 0; ai < axes.size(); ++ai) {
      where += (ai ? " " : "") + axes[ai].name + "=" +
               nh::util::formatDouble(ctx.values[ai]);
    }
    nh::util::logInfo(spec.name, ": ", where, " done (point ", i + 1, "/",
                      pointCount, ")");
    return row;
  };

  // threads == 1 runs in index order on the calling thread -- the mode
  // wall-clock-measuring specs force so points never time each other.
  //
  // The cancellation scope is installed INSIDE each point body, never around
  // the parallelFor call: the loop itself must keep claiming slots so every
  // pending point settles with a recorded Cancelled outcome instead of the
  // loop aborting mid-grid.
  const std::size_t pointThreads = spec.serialPoints ? 1 : options.threads;
  nh::util::parallelFor(
      pointCount,
      [&](std::size_t i) {
        if (result.outcomes[i].status == PointOutcome::Status::Resumed) return;

        PointOutcome outcome;
        // A config whose study failed to build dooms every point on it.
        if (spec.buildStudies && !studyOutcomes[studyIndex[i]].ok()) {
          outcome = studyOutcomes[studyIndex[i]];
          outcome.attempts = 0;
          progress.settle(i, std::move(outcome),
                          std::vector<ResultValue>(spec.columns.size(),
                                                   ResultValue::str("-")));
          return;
        }

        std::vector<ResultValue> row;
        std::exception_ptr lastError;
        const std::size_t maxAttempts = 1 + options.pointRetries;
        for (std::size_t attempt = 1; attempt <= maxAttempts; ++attempt) {
          outcome.attempts = attempt;
          try {
            const nh::util::CancellationScope scope(options.cancel);
            // Label solver fault-injection sites with the serial point
            // index, so a test can fail exactly one grid point
            // (NH_FAULT=linsolve.dense_lu:1@point:2) regardless of thread
            // interleaving.
            const nh::util::faultinject::Scope faultScope(
                "point:" + std::to_string(i));
            nh::util::checkCancellation("experiment point");
            row = executePoint(i);
            outcome.status = PointOutcome::Status::Ok;
            outcome.error.clear();
            break;
          } catch (const nh::util::CancelledError& e) {
            outcome.status = e.deadlineExpired()
                                 ? PointOutcome::Status::TimedOut
                                 : PointOutcome::Status::Cancelled;
            outcome.error = e.what();
            break;  // cancellation is never retried
          } catch (const std::exception& e) {
            outcome.status = PointOutcome::Status::Failed;
            outcome.error = e.what();
            lastError = std::current_exception();
          }
        }

        if (outcome.status == PointOutcome::Status::Failed &&
            options.onPointFailure == PointFailurePolicy::Abort) {
          // Legacy behaviour: the original exception unwinds the loop (the
          // pool barrier tags it with the failing index).
          std::rethrow_exception(lastError);
        }
        if (outcome.status != PointOutcome::Status::Ok) {
          row.assign(spec.columns.size(), ResultValue::str("-"));
        }
        progress.settle(i, std::move(outcome), std::move(row));
      },
      pointThreads);

  // Tally the aggregate counts the JSON document records.
  for (const auto& outcome : result.outcomes) {
    switch (outcome.status) {
      case PointOutcome::Status::Ok: ++result.pointsOk; break;
      case PointOutcome::Status::Resumed:
        ++result.pointsOk;
        ++result.pointsResumed;
        break;
      case PointOutcome::Status::Failed: ++result.pointsFailed; break;
      case PointOutcome::Status::Cancelled:
      case PointOutcome::Status::TimedOut:
        ++result.pointsCancelled;
        break;
      case PointOutcome::Status::Pending:
        break;  // unreachable: every non-resumed point settles above
    }
  }

  // A fully completed run owes nobody a checkpoint; an interrupted one gets
  // one final write so --resume sees every settled row, including those the
  // throttled mid-run writes skipped.
  if (!ckpt.empty()) {
    if (result.complete()) {
      std::error_code ec;
      std::filesystem::remove(ckpt, ec);
    } else if (result.pointsOk > 0) {
      progress.writeFinalCheckpoint();
    }
  }

  // finalize computes cross-row derivations (ratios vs a reference row); on
  // a degraded grid it would silently fold placeholder rows into them, so
  // it only sees complete results.
  if (spec.finalize && result.complete()) spec.finalize(result);
  for (const auto& note : spec.notes) result.notes.push_back(note);
  if (!result.complete()) {
    std::string note = "degraded run: " + std::to_string(result.pointsFailed) +
                       " failed, " + std::to_string(result.pointsCancelled) +
                       " cancelled of " + std::to_string(pointCount) +
                       " points (see the status column)";
    result.notes.push_back(std::move(note));
  }
  return result;
}

std::filesystem::path defaultResultsDir() {
  if (const char* env = std::getenv("NH_RESULTS_DIR")) {
    return std::filesystem::path(env);
  }
  return std::filesystem::path("bench_results");
}

std::filesystem::path defaultCheckpointDir() {
  return defaultResultsDir() / "checkpoints";
}

std::filesystem::path checkpointPath(const std::filesystem::path& dir,
                                     const std::string& name) {
  return dir / (name + ".json");
}

void printBanner(const std::string& title, const std::string& description,
                 const std::string& paperShape) {
  std::printf(
      "=====================================================================\n");
  std::printf("NeuroHammer reproduction -- %s\n", title.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("paper shape: %s\n", paperShape.c_str());
  std::printf(
      "=====================================================================\n");
}

namespace {

bool hasShape(const ExperimentResult& result, ColumnSpec::Shape shape) {
  for (const auto& col : result.columns) {
    if (col.shape == shape) return true;
  }
  return false;
}

/// Whether any point ended non-OK. Gates the synthetic "status" column in
/// the ASCII/CSV renderings: fully-OK runs (including resumed ones) render
/// byte-identically to the pre-fault-tolerance format, which is what keeps
/// the tracked CI baselines and the resume bit-identity guarantee honest.
bool anyDegradedOutcome(const ExperimentResult& result) {
  for (const auto& outcome : result.outcomes) {
    if (!outcome.ok()) return true;
  }
  return false;
}

std::string statusText(const ExperimentResult& result, std::size_t row) {
  if (row >= result.outcomes.size() || result.outcomes[row].ok()) return "ok";
  return pointStatusName(result.outcomes[row].status);
}

/// Format one scalar element through the column's ASCII formatter.
std::string formatElement(const ColumnSpec& column, double v) {
  const ResultValue cell = ResultValue::num(v);
  return column.format ? column.format(cell) : cell.render();
}

std::string formatScalar(const ColumnSpec& column, const ResultValue& cell) {
  return column.format ? column.format(cell) : cell.render();
}

/// Expansion width of one result row: the common element count of its
/// shaped cells (text placeholders excluded). Validates that shaped cells
/// agree in length, and matrices in dimensions; fills in the shared matrix
/// dims when present. \p tracesOnly restricts the count to trace cells --
/// the ASCII main table expands traces but renders matrices as separate
/// grids, so matrix lengths must not drive its line count.
std::size_t rowElementCount(const ExperimentResult& result,
                            const std::vector<ResultValue>& row,
                            bool tracesOnly, std::size_t* matrixRows,
                            std::size_t* matrixCols) {
  std::size_t count = 1;
  bool seenShaped = false;
  for (const auto& cell : row) {
    if (!cell.isShaped()) continue;
    if (tracesOnly && cell.kind != ResultValue::Kind::Trace) continue;
    if (!seenShaped) {
      seenShaped = true;
      count = cell.elementCount();
    } else if (cell.elementCount() != count) {
      throw std::logic_error("experiment '" + result.name +
                             "': shaped cells of one row disagree in length");
    }
    if (cell.kind == ResultValue::Kind::Matrix) {
      if (matrixRows && *matrixRows == 0) {
        *matrixRows = cell.matrixRows;
        *matrixCols = cell.matrixCols;
      } else if (matrixRows && (*matrixRows != cell.matrixRows ||
                                *matrixCols != cell.matrixCols)) {
        throw std::logic_error(
            "experiment '" + result.name +
            "': matrix cells of one row disagree in dimensions");
      }
    }
  }
  return count;
}

}  // namespace

std::vector<nh::util::AsciiTable> toAsciiTables(const ExperimentResult& result) {
  std::vector<nh::util::AsciiTable> tables;
  const bool anyMatrix = hasShape(result, ColumnSpec::Shape::Matrix);
  const bool anyTrace = hasShape(result, ColumnSpec::Shape::Trace);

  // Main table: scalar columns plus trace columns (expanded to decimated
  // sample lines); matrix columns get their own grids below.
  std::vector<std::size_t> mainColumns;
  for (std::size_t c = 0; c < result.columns.size(); ++c) {
    if (result.columns[c].shape != ColumnSpec::Shape::Matrix) {
      mainColumns.push_back(c);
    }
  }
  const bool degraded = anyDegradedOutcome(result);
  if (!mainColumns.empty()) {
    std::vector<std::string> header;
    header.reserve(mainColumns.size() + 1);
    for (const std::size_t c : mainColumns) {
      header.push_back(result.columns[c].heading());
    }
    if (degraded) header.push_back("status");
    nh::util::AsciiTable table(std::move(header));
    if (!result.tableTitle.empty()) table.setTitle(result.tableTitle);
    for (std::size_t r = 0; r < result.rows.size(); ++r) {
      const auto& row = result.rows[r];
      // Expansion is driven by the trace cells alone: matrix cells are not
      // part of the main table (they get their own grids below). Same
      // agreement rule (and error) the CSV expansion enforces.
      const std::size_t count =
          rowElementCount(result, row, /*tracesOnly=*/true, nullptr, nullptr);
      // Decimate long traces the way the Fig. 1 bench always did: ~16
      // evenly spaced lines plus the final sample.
      const std::size_t every = (anyTrace && count > 16) ? count / 16 : 1;
      for (std::size_t k = 0; k < count; ++k) {
        if (k % every != 0 && k + 1 != count) continue;
        std::vector<std::string> cells;
        cells.reserve(mainColumns.size() + 1);
        for (const std::size_t c : mainColumns) {
          const ResultValue& cell = row[c];
          if (cell.isShaped()) {
            cells.push_back(formatElement(result.columns[c], cell.element(k)));
          } else {
            // Scalar cells print once per point, on its first line.
            cells.push_back(k == 0 ? formatScalar(result.columns[c], cell)
                                   : std::string());
          }
        }
        if (degraded) {
          cells.push_back(k == 0 ? statusText(result, r) : std::string());
        }
        table.addRow(std::move(cells));
      }
    }
    tables.push_back(std::move(table));
  }

  // One grid per matrix cell, in row/column order.
  if (anyMatrix) {
    for (std::size_t r = 0; r < result.rows.size(); ++r) {
      for (std::size_t c = 0; c < result.columns.size(); ++c) {
        const ResultValue& cell = result.rows[r][c];
        if (cell.kind != ResultValue::Kind::Matrix) continue;
        std::vector<std::string> header{"row\\col"};
        for (std::size_t j = 0; j < cell.matrixCols; ++j) {
          header.push_back(std::to_string(j));
        }
        nh::util::AsciiTable grid(std::move(header));
        std::string title = result.columns[c].heading();
        if (result.rows.size() > 1) {
          title += " (";
          for (std::size_t ai = 0; ai < result.axes.size(); ++ai) {
            title += (ai ? " " : "") + result.axes[ai].name + "=" +
                     nh::util::formatDouble(result.pointValues[r][ai]);
          }
          title += ")";
        }
        grid.setTitle(title);
        for (std::size_t i = 0; i < cell.matrixRows; ++i) {
          std::vector<std::string> line{std::to_string(i)};
          for (std::size_t j = 0; j < cell.matrixCols; ++j) {
            line.push_back(formatElement(result.columns[c],
                                         cell.element(i * cell.matrixCols + j)));
          }
          grid.addRow(std::move(line));
        }
        tables.push_back(std::move(grid));
      }
    }
  }

  // Pivoted grid: rows = rowAxis values, columns = colAxis values, cells =
  // the value column of the matching grid point.
  if (result.pivot.enabled()) {
    const PivotSpec& pivot = result.pivot;
    const ExperimentResult::Axis* rowAxis = nullptr;
    const ExperimentResult::Axis* colAxis = nullptr;
    std::size_t rowAxisIndex = 0;
    std::size_t colAxisIndex = 0;
    for (std::size_t ai = 0; ai < result.axes.size(); ++ai) {
      if (result.axes[ai].name == pivot.rowAxis) {
        rowAxis = &result.axes[ai];
        rowAxisIndex = ai;
      }
      if (result.axes[ai].name == pivot.colAxis) {
        colAxis = &result.axes[ai];
        colAxisIndex = ai;
      }
    }
    std::size_t valueColumn = result.columns.size();
    for (std::size_t c = 0; c < result.columns.size(); ++c) {
      if (result.columns[c].name == pivot.valueColumn) valueColumn = c;
    }
    if (!rowAxis || !colAxis || valueColumn == result.columns.size()) {
      throw std::logic_error("experiment '" + result.name +
                             "': pivot names an unknown axis or column");
    }
    std::vector<std::string> header{pivot.rowAxis + " \\ " + pivot.colAxis};
    for (const double v : colAxis->values) {
      header.push_back(pivot.colLabel ? pivot.colLabel(v)
                                      : nh::util::formatDouble(v));
    }
    nh::util::AsciiTable grid(std::move(header));
    if (!pivot.title.empty()) grid.setTitle(pivot.title);
    for (const double rv : rowAxis->values) {
      std::vector<std::string> line{pivot.rowLabel
                                        ? pivot.rowLabel(rv)
                                        : nh::util::formatDouble(rv)};
      for (const double cv : colAxis->values) {
        std::string cellText = "-";  // stays when --set dropped the point
        for (std::size_t i = 0; i < result.rows.size(); ++i) {
          if (result.pointValues[i][rowAxisIndex] == rv &&
              result.pointValues[i][colAxisIndex] == cv) {
            // Custom pivot formatters assume real data; flagged points show
            // their status instead of "-" placeholders fed through them.
            if (i < result.outcomes.size() && !result.outcomes[i].ok()) {
              cellText = statusText(result, i);
            } else {
              cellText = pivot.format
                             ? pivot.format(result.rows[i])
                             : formatScalar(result.columns[valueColumn],
                                            result.rows[i][valueColumn]);
            }
            break;
          }
        }
        line.push_back(std::move(cellText));
      }
      grid.addRow(std::move(line));
    }
    tables.push_back(std::move(grid));
  }

  if (tables.empty()) {
    throw std::logic_error("experiment '" + result.name +
                           "': nothing to render");
  }
  for (const auto& note : result.notes) tables.front().addNote(note);
  return tables;
}

nh::util::AsciiTable toAsciiTable(const ExperimentResult& result) {
  return toAsciiTables(result).front();
}

nh::util::CsvTable toCsvTable(const ExperimentResult& result) {
  const bool anyTrace = hasShape(result, ColumnSpec::Shape::Trace);
  const bool anyMatrix = hasShape(result, ColumnSpec::Shape::Matrix);
  if (anyTrace && anyMatrix) {
    throw std::logic_error("experiment '" + result.name +
                           "': trace and matrix columns cannot mix");
  }
  const bool degraded = anyDegradedOutcome(result);
  std::vector<std::string> header;
  if (anyTrace) header.push_back("sample");
  if (anyMatrix) {
    header.push_back("row");
    header.push_back("col");
  }
  for (const auto& col : result.columns) header.push_back(col.name);
  if (degraded) header.push_back("status");
  nh::util::CsvTable csv(std::move(header));
  for (std::size_t r = 0; r < result.rows.size(); ++r) {
    const auto& row = result.rows[r];
    std::size_t matrixRows = 0;
    std::size_t matrixCols = 0;
    const std::size_t count = rowElementCount(result, row, /*tracesOnly=*/false,
                                              &matrixRows, &matrixCols);
    for (std::size_t k = 0; k < count; ++k) {
      std::vector<std::string> cells;
      cells.reserve(csv.columnCount());
      if (anyTrace) cells.push_back(std::to_string(k));
      if (anyMatrix) {
        if (matrixCols > 0) {
          cells.push_back(std::to_string(k / matrixCols));
          cells.push_back(std::to_string(k % matrixCols));
        } else {  // every matrix cell of this row is a text placeholder
          cells.push_back("-");
          cells.push_back("-");
        }
      }
      for (const auto& cell : row) {
        cells.push_back(cell.isShaped()
                            ? nh::util::formatDouble(cell.element(k))
                            : cell.render());
      }
      // Repeated on every expanded line, like the scalar cells.
      if (degraded) cells.push_back(statusText(result, r));
      csv.addRow(cells);
    }
  }
  return csv;
}

void writeCellJson(nh::util::JsonWriter& w, const ResultValue& cell) {
  switch (cell.kind) {
    case ResultValue::Kind::Number:
      w.value(cell.number);
      return;
    case ResultValue::Kind::Text:
      w.value(cell.text);
      return;
    case ResultValue::Kind::Trace:
      w.beginObject();
      w.key("shape").value("trace");
      break;
    case ResultValue::Kind::Matrix:
      w.beginObject();
      w.key("shape").value("matrix");
      w.key("rows").value(cell.matrixRows);
      w.key("cols").value(cell.matrixCols);
      break;
  }
  w.key("values").beginArray();
  for (const double v : cell.series) w.value(v);
  w.endArray();
  w.endObject();
}

ResultValue readCellJson(const nh::util::JsonValue& v) {
  using Type = nh::util::JsonValue::Type;
  switch (v.type()) {
    case Type::Number:
      return ResultValue::num(v.asNumber());
    case Type::String:
      return ResultValue::str(v.asString());
    case Type::Object: {
      const std::string shape = v.at("shape").asString();
      std::vector<double> values;
      values.reserve(v.at("values").size());
      for (const auto& e : v.at("values").items()) {
        values.push_back(e.asNumber());
      }
      if (shape == "trace") return ResultValue::trace(std::move(values));
      if (shape == "matrix") {
        return ResultValue::matrix(
            static_cast<std::size_t>(v.at("rows").asNumber()),
            static_cast<std::size_t>(v.at("cols").asNumber()),
            std::move(values));
      }
      throw std::runtime_error("result cell has unknown shape '" + shape +
                               "'");
    }
    default:
      throw std::runtime_error("result cell has an unsupported JSON type");
  }
}

std::string toJson(const ExperimentResult& result) {
  nh::util::JsonWriter w;
  w.beginObject();
  w.key("experiment").value(result.name);
  w.key("config_digest").value(result.configDigest);
#ifdef NH_BUILD_TYPE
  w.key("build_type").value(NH_BUILD_TYPE);
#else
  w.key("build_type").value("unknown");
#endif
  w.key("fast").value(result.fast);
  w.key("threads").value(result.threads);
  w.key("max_pulses").value(result.maxPulses);
  w.key("studies_constructed").value(result.studiesConstructed);
  w.key("studies_reused").value(result.studiesReused);
  // Fault-tolerance provenance: always present so downstream consumers can
  // refuse degraded documents without guessing from the row contents.
  w.key("points_ok").value(result.pointsOk);
  w.key("points_failed").value(result.pointsFailed);
  w.key("points_cancelled").value(result.pointsCancelled);
  w.key("points_resumed").value(result.pointsResumed);
  w.key("complete").value(result.complete());
  w.key("axes").beginArray();
  for (const auto& axis : result.axes) {
    w.beginObject();
    w.key("name").value(axis.name);
    w.key("values").beginArray();
    for (const double v : axis.values) w.value(v);
    w.endArray();
    w.endObject();
  }
  w.endArray();
  w.key("columns").beginArray();
  for (const auto& col : result.columns) w.value(col.name);
  w.endArray();
  w.key("column_shapes").beginArray();
  for (const auto& col : result.columns) w.value(shapeName(col.shape));
  w.endArray();
  w.key("rows").beginArray();
  for (const auto& row : result.rows) {
    w.beginArray();
    for (const auto& cell : row) writeCellJson(w, cell);
    w.endArray();
  }
  w.endArray();
  // Per-row status/error only when some point ended non-OK: complete
  // documents keep the legacy key set.
  if (anyDegradedOutcome(result)) {
    w.key("row_status").beginArray();
    for (std::size_t r = 0; r < result.rows.size(); ++r) {
      w.value(statusText(result, r));
    }
    w.endArray();
    w.key("row_errors").beginArray();
    for (std::size_t r = 0; r < result.rows.size(); ++r) {
      w.value(r < result.outcomes.size() ? result.outcomes[r].error
                                         : std::string());
    }
    w.endArray();
  }
  w.key("notes").beginArray();
  for (const auto& note : result.notes) w.value(note);
  w.endArray();
  w.endObject();
  return w.str();
}

EmittedFiles writeResultFiles(const ExperimentResult& result,
                              const std::filesystem::path& dir) {
  EmittedFiles files;
  files.csv = dir / (result.name + ".csv");
  files.json = dir / (result.name + ".json");
  toCsvTable(result).save(files.csv);  // creates parent directories
  std::ofstream out(files.json);
  out << toJson(result) << "\n";
  out.flush();  // surface buffered-write failures (disk full) before the test
  if (!out) {
    throw std::runtime_error("writeResultFiles: cannot write " +
                             files.json.string());
  }
  return files;
}

}  // namespace nh::core
