#include "core/experiment.hpp"

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "util/json.hpp"
#include "util/log.hpp"
#include "util/threadpool.hpp"

namespace nh::core {

ResultValue ResultValue::num(double v) {
  ResultValue out;
  out.kind = Kind::Number;
  out.number = v;
  return out;
}

ResultValue ResultValue::boolean(bool v) { return num(v ? 1.0 : 0.0); }

ResultValue ResultValue::str(std::string s) {
  ResultValue out;
  out.kind = Kind::Text;
  out.text = std::move(s);
  return out;
}

std::string ResultValue::render() const {
  return kind == Kind::Number ? nh::util::formatDouble(number) : text;
}

namespace colfmt {

using Formatter = std::function<std::string(const ResultValue&)>;

// Every canned formatter passes text cells through verbatim: finalize hooks
// leave "-" placeholders in cross-row columns when no reference exists.

Formatter si(std::string unit, int decimals) {
  return [unit = std::move(unit), decimals](const ResultValue& v) {
    if (v.kind == ResultValue::Kind::Text) return v.text;
    return nh::util::AsciiTable::si(v.number, unit, decimals);
  };
}

Formatter fixed(int decimals, std::string suffix) {
  return [decimals, suffix = std::move(suffix)](const ResultValue& v) {
    if (v.kind == ResultValue::Kind::Text) return v.text;
    return nh::util::AsciiTable::fixed(v.number, decimals) + suffix;
  };
}

Formatter grouped() {
  return [](const ResultValue& v) {
    if (v.kind == ResultValue::Kind::Text) return v.text;
    return nh::util::AsciiTable::grouped(static_cast<long long>(v.number));
  };
}

Formatter flipped() {
  return [](const ResultValue& v) {
    if (v.kind == ResultValue::Kind::Text) return v.text;
    return std::string(v.number != 0.0 ? "yes" : "NO (budget)");
  };
}

Formatter yesNo() {
  return [](const ResultValue& v) {
    if (v.kind == ResultValue::Kind::Text) return v.text;
    return std::string(v.number != 0.0 ? "yes" : "no");
  };
}

}  // namespace colfmt

double PointContext::value(const std::string& axis) const {
  for (std::size_t i = 0; i < spec->axes.size(); ++i) {
    if (spec->axes[i].name == axis) return values[i];
  }
  throw std::out_of_range("PointContext: no axis named '" + axis + "'");
}

namespace {

/// Axis value lists as actually executed: fast subsets, then CLI overrides.
std::vector<ExperimentResult::Axis> resolveAxes(const ExperimentSpec& spec,
                                                const RunOptions& options) {
  std::vector<ExperimentResult::Axis> axes;
  axes.reserve(spec.axes.size());
  for (const auto& axis : spec.axes) {
    axes.push_back({axis.name, axis.active(options.fast)});
  }
  for (const auto& [name, values] : options.axisOverrides) {
    bool found = false;
    for (auto& axis : axes) {
      if (axis.name == name) {
        axis.values = values;
        found = true;
      }
    }
    if (!found) {
      throw std::out_of_range("experiment '" + spec.name + "' has no axis '" +
                              name + "'");
    }
  }
  for (const auto& axis : axes) {
    if (axis.values.empty()) {
      throw std::invalid_argument("experiment '" + spec.name + "': axis '" +
                                  axis.name + "' has no values");
    }
  }
  return axes;
}

std::size_t resolveBudget(const ExperimentSpec& spec, const RunOptions& options) {
  if (options.maxPulsesOverride) return options.maxPulsesOverride;
  if (options.fast && spec.fastMaxPulses) return spec.fastMaxPulses;
  return spec.maxPulses;
}

/// Mixed-radix decode of a serial point index, first axis outermost -- the
/// same slot order the legacy sweeps used (outer * widths.size() + width).
std::vector<double> pointValuesAt(
    const std::vector<ExperimentResult::Axis>& axes, std::size_t index) {
  std::vector<double> values(axes.size());
  std::size_t rem = index;
  for (std::size_t ai = axes.size(); ai-- > 0;) {
    const auto& list = axes[ai].values;
    values[ai] = list[rem % list.size()];
    rem /= list.size();
  }
  return values;
}

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  // Field separator: without it the hash sees only the concatenation, and
  // e.g. rows=1,cols=25 would collide with rows=12,cols=5.
  h ^= 0x1f;
  h *= 1099511628211ull;
  return h;
}

/// Hash every field that participates in StudyConfig::operator== -- the
/// digest must distinguish any two configs the study-dedup cache would
/// (toConfigText only serialises the INI-supported subset, which would make
/// configs differing in e.g. femOptions or engine options collide). Keep
/// this list in sync when StudyConfig or its nested structs grow fields.
std::uint64_t hashStudyConfig(std::uint64_t h, const StudyConfig& c) {
  const jart::Params& p = c.cellParams;
  const fem::DiffusionOptions& f = c.femOptions;
  const xbar::FastEngineOptions& e = c.engineOptions;
  const DetectorConfig& d = c.detector;
  const double fields[] = {
      static_cast<double>(c.rows), static_cast<double>(c.cols), c.spacing,
      c.ambientK, c.useFemAlphas ? 1.0 : 0.0, c.femVoxelSize,
      // jart::Params
      p.rFilament, p.lCell, p.lDisc, p.lPlug, p.nDiscMin, p.nDiscMax, p.nPlug,
      p.mobility, p.rSeries, p.richardson, p.phiBarrier0, p.phiLowering,
      p.idealityFwd, p.phiBarrierRev, p.idealityRev, p.rThEff, p.tauThermal,
      p.activationEnergySet, p.activationEnergyReset, p.kineticPrefactorSet,
      p.kineticPrefactorReset, p.hopDistance, p.chargeNumber,
      p.fieldEnhancement, p.windowExponent,
      // fem::DiffusionOptions
      f.relTol, static_cast<double>(f.maxIterations),
      static_cast<double>(f.preconditioner),
      static_cast<double>(f.multigridMinVoxels),
      // xbar::FastEngineOptions
      static_cast<double>(e.substepsPerPulse), e.solveLineNetwork ? 1.0 : 0.0,
      e.relaxBetweenPulses ? 1.0 : 0.0, e.enableBatching ? 1.0 : 0.0,
      e.batchDriftLimit, static_cast<double>(e.maxBatch), e.newtonTol,
      static_cast<double>(e.maxNewtonIterations), e.useSchurSolve ? 1.0 : 0.0,
      // DetectorConfig
      d.readVoltage, d.rLrsMax, d.rHrsMin};
  for (const double v : fields) h = fnv1a(h, nh::util::formatDouble(v));
  return h;
}

std::string digestOf(const ExperimentSpec& spec,
                     const std::vector<ExperimentResult::Axis>& axes,
                     std::size_t maxPulses) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a(h, spec.name);
  h = hashStudyConfig(h, spec.base);
  for (const auto& axis : axes) {
    h = fnv1a(h, axis.name);
    for (const double v : axis.values) h = fnv1a(h, nh::util::formatDouble(v));
  }
  h = fnv1a(h, std::to_string(maxPulses));
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, h);
  return buf;
}

}  // namespace

std::string configDigest(const ExperimentSpec& spec, const RunOptions& options) {
  return digestOf(spec, resolveAxes(spec, options), resolveBudget(spec, options));
}

ExperimentResult runExperiment(const ExperimentSpec& spec,
                               const RunOptions& options) {
  if (!spec.run) {
    throw std::invalid_argument("runExperiment: spec '" + spec.name +
                                "' has no run function");
  }
  const auto axes = resolveAxes(spec, options);
  const std::size_t maxPulses = resolveBudget(spec, options);

  std::size_t pointCount = 1;
  for (const auto& axis : axes) pointCount *= axis.values.size();

  // Materialise every point's StudyConfig and deduplicate in serial point
  // order: points whose study-relevant config compares equal (defaulted
  // operator==) share one cached AttackStudy. Linear search is fine at the
  // grid sizes of the catalog (tens to hundreds of points).
  std::vector<StudyConfig> pointConfigs;
  pointConfigs.reserve(pointCount);
  std::vector<std::size_t> studyIndex(pointCount, 0);
  std::vector<const StudyConfig*> uniqueConfigs;
  for (std::size_t i = 0; i < pointCount; ++i) {
    pointConfigs.push_back([&] {
      StudyConfig cfg = spec.base;
      const std::vector<double> values = pointValuesAt(axes, i);
      for (std::size_t ai = 0; ai < spec.axes.size(); ++ai) {
        if (spec.axes[ai].apply) spec.axes[ai].apply(cfg, values[ai]);
      }
      return cfg;
    }());
  }
  for (std::size_t i = 0; i < pointCount; ++i) {
    std::size_t found = uniqueConfigs.size();
    for (std::size_t u = 0; u < uniqueConfigs.size(); ++u) {
      if (*uniqueConfigs[u] == pointConfigs[i]) {
        found = u;
        break;
      }
    }
    if (found == uniqueConfigs.size()) uniqueConfigs.push_back(&pointConfigs[i]);
    studyIndex[i] = found;
  }

  // Construct the unique studies on the pool (the FEM-alpha path makes
  // construction expensive); each construction is internally serial, so the
  // parallel build stays bit-identical for every thread count.
  std::vector<std::unique_ptr<AttackStudy>> studies;
  if (spec.buildStudies) {
    studies.resize(uniqueConfigs.size());
    nh::util::parallelFor(
        uniqueConfigs.size(),
        [&](std::size_t u) {
          studies[u] = std::make_unique<AttackStudy>(*uniqueConfigs[u]);
        },
        options.threads);
  }

  ExperimentResult result;
  result.name = spec.name;
  result.tableTitle = spec.tableTitle;
  result.columns = spec.columns;
  result.axes = axes;
  // Record what actually executed: serialPoints specs run single-threaded
  // whatever the caller asked for, and their JSON must say so (wall-clock
  // provenance).
  result.threads = spec.serialPoints ? 1
                   : options.threads ? options.threads
                                     : nh::util::defaultThreadCount();
  result.fast = options.fast;
  result.maxPulses = maxPulses;
  result.studiesConstructed = spec.buildStudies ? uniqueConfigs.size() : 0;
  result.configDigest = digestOf(spec, axes, maxPulses);
  result.rows.resize(pointCount);
  result.pointValues.resize(pointCount);

  // threads == 1 runs in index order on the calling thread -- the mode
  // wall-clock-measuring specs force so points never time each other.
  const std::size_t pointThreads = spec.serialPoints ? 1 : options.threads;
  nh::util::parallelFor(
      pointCount,
      [&](std::size_t i) {
        PointContext ctx;
        ctx.spec = &spec;
        ctx.index = i;
        ctx.values = pointValuesAt(axes, i);
        ctx.config = pointConfigs[i];
        ctx.study = spec.buildStudies ? studies[studyIndex[i]].get() : nullptr;
        ctx.maxPulses = maxPulses;
        ctx.fast = options.fast;
        std::vector<ResultValue> row = spec.run(ctx);
        if (row.size() != spec.columns.size()) {
          throw std::runtime_error("experiment '" + spec.name + "': point " +
                                   std::to_string(i) + " produced " +
                                   std::to_string(row.size()) + " cells for " +
                                   std::to_string(spec.columns.size()) +
                                   " columns");
        }
        std::string where;
        for (std::size_t ai = 0; ai < axes.size(); ++ai) {
          where += (ai ? " " : "") + axes[ai].name + "=" +
                   nh::util::formatDouble(ctx.values[ai]);
        }
        nh::util::logInfo(spec.name, ": ", where, " done (point ", i + 1, "/",
                          pointCount, ")");
        result.pointValues[i] = std::move(ctx.values);
        result.rows[i] = std::move(row);
      },
      pointThreads);

  if (spec.finalize) spec.finalize(result);
  for (const auto& note : spec.notes) result.notes.push_back(note);
  return result;
}

std::filesystem::path defaultResultsDir() {
  if (const char* env = std::getenv("NH_RESULTS_DIR")) {
    return std::filesystem::path(env);
  }
  return std::filesystem::path("bench_results");
}

void printBanner(const std::string& title, const std::string& description,
                 const std::string& paperShape) {
  std::printf(
      "=====================================================================\n");
  std::printf("NeuroHammer reproduction -- %s\n", title.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("paper shape: %s\n", paperShape.c_str());
  std::printf(
      "=====================================================================\n");
}

nh::util::AsciiTable toAsciiTable(const ExperimentResult& result) {
  std::vector<std::string> header;
  header.reserve(result.columns.size());
  for (const auto& col : result.columns) header.push_back(col.heading());
  nh::util::AsciiTable table(std::move(header));
  if (!result.tableTitle.empty()) table.setTitle(result.tableTitle);
  for (const auto& row : result.rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      const auto& format = result.columns[c].format;
      cells.push_back(format ? format(row[c]) : row[c].render());
    }
    table.addRow(std::move(cells));
  }
  for (const auto& note : result.notes) table.addNote(note);
  return table;
}

nh::util::CsvTable toCsvTable(const ExperimentResult& result) {
  std::vector<std::string> header;
  header.reserve(result.columns.size());
  for (const auto& col : result.columns) header.push_back(col.name);
  nh::util::CsvTable csv(std::move(header));
  for (const auto& row : result.rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto& cell : row) cells.push_back(cell.render());
    csv.addRow(cells);
  }
  return csv;
}

std::string toJson(const ExperimentResult& result) {
  nh::util::JsonWriter w;
  w.beginObject();
  w.key("experiment").value(result.name);
  w.key("config_digest").value(result.configDigest);
#ifdef NH_BUILD_TYPE
  w.key("build_type").value(NH_BUILD_TYPE);
#else
  w.key("build_type").value("unknown");
#endif
  w.key("fast").value(result.fast);
  w.key("threads").value(result.threads);
  w.key("max_pulses").value(result.maxPulses);
  w.key("studies_constructed").value(result.studiesConstructed);
  w.key("axes").beginArray();
  for (const auto& axis : result.axes) {
    w.beginObject();
    w.key("name").value(axis.name);
    w.key("values").beginArray();
    for (const double v : axis.values) w.value(v);
    w.endArray();
    w.endObject();
  }
  w.endArray();
  w.key("columns").beginArray();
  for (const auto& col : result.columns) w.value(col.name);
  w.endArray();
  w.key("rows").beginArray();
  for (const auto& row : result.rows) {
    w.beginArray();
    for (const auto& cell : row) {
      if (cell.kind == ResultValue::Kind::Number) {
        w.value(cell.number);
      } else {
        w.value(cell.text);
      }
    }
    w.endArray();
  }
  w.endArray();
  w.key("notes").beginArray();
  for (const auto& note : result.notes) w.value(note);
  w.endArray();
  w.endObject();
  return w.str();
}

EmittedFiles writeResultFiles(const ExperimentResult& result,
                              const std::filesystem::path& dir) {
  EmittedFiles files;
  files.csv = dir / (result.name + ".csv");
  files.json = dir / (result.name + ".json");
  toCsvTable(result).save(files.csv);  // creates parent directories
  std::ofstream out(files.json);
  out << toJson(result) << "\n";
  if (!out) {
    throw std::runtime_error("writeResultFiles: cannot write " +
                             files.json.string());
  }
  return files;
}

}  // namespace nh::core
