#pragma once
/// \file experiment_registry.hpp
/// Name -> ExperimentSpec catalog of the paper's evaluation. Every figure
/// reproduction, ablation, and extension study registers here once; the
/// bench/ drivers, the nh_sweep CLI, and the test suite all run experiments
/// through this registry, so adding a new scenario is a ~30-line
/// registration instead of a new binary (see registerExperiment and the
/// built-in factories in experiment_registry.cpp for the template).

#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace nh::core {

/// Registry listing entry (for `nh_sweep list`).
struct RegisteredExperiment {
  std::string name;
  std::string summary;
};

/// All registered experiments, sorted by name.
std::vector<RegisteredExperiment> registeredExperiments();

/// True when \p name is registered.
bool hasExperiment(const std::string& name);

/// Build the spec for \p name; throws std::out_of_range for unknown names
/// (the message lists the registered names).
ExperimentSpec makeExperiment(const std::string& name);

/// Register a new experiment. The factory must return a self-contained spec
/// whose name matches \p name. Throws std::invalid_argument on duplicates.
/// Thread-safe; the built-in catalog registers itself on first access.
void registerExperiment(std::string name, std::string summary,
                        std::function<ExperimentSpec()> factory);

/// Self-documenting registry: render the whole catalog as Markdown -- one
/// section per experiment with its axes (values, fast subsets, whether they
/// touch the study config), result columns (shape, baseline tolerance),
/// budgets, and the fast-mode config digest. `nh_sweep describe --markdown`
/// emits it; docs/experiments.md is this output checked in, and CI fails
/// when the two drift apart.
std::string registryMarkdown();

}  // namespace nh::core
