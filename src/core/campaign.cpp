#include "core/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/annotations.hpp"
#include "util/cancellation.hpp"
#include "util/faultinject.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace nh::core {

namespace {

/// The centre-cell reference attack of AttackStudy::attackCenter, with the
/// campaign's bias scheme applied (the V/3 countermeasure arm of the blinded
/// comparison needs BiasScheme::Third, which attackCenter hardwires away).
AttackConfig centerAttackConfig(const CampaignConfig& config) {
  AttackConfig attack;
  const std::size_t cr = config.base.rows / 2;
  const std::size_t cc = config.base.cols / 2;
  attack.aggressors = {{cr, cc}};
  attack.pulse = config.pulse;
  attack.maxPulses = config.budget;
  attack.scheme = config.scheme;
  if (cc > 0) attack.victims.push_back({cr, cc - 1});
  if (cc + 1 < config.base.cols) attack.victims.push_back({cr, cc + 1});
  if (cr > 0) attack.victims.push_back({cr - 1, cc});
  if (cr + 1 < config.base.rows) attack.victims.push_back({cr + 1, cc});
  return attack;
}

/// One trial: perturb the cell params under the trial's own counter-based
/// stream, build a fresh study, attack. When \p disturbRow is non-null
/// (recordCellHealth), runs on an inspectable bench and marks every
/// non-aggressor cell whose detector classification changed.
void runTrial(const CampaignConfig& config, std::size_t trial,
              TrialOutcome& out, std::uint8_t* disturbRow) {
  util::Rng rng = util::Rng::forStream(config.seed, trial);
  StudyConfig trialConfig = config.base;
  trialConfig.cellParams =
      config.base.cellParams.withVariability(rng, config.sigma);
  // Fresh construction, deliberately not getOrBuildStudy: every perturbed
  // config is unique, and thousands of one-shot entries would evict the warm
  // studies the rest of the experiment catalog shares.
  const AttackStudy study(trialConfig);
  const AttackConfig attack = centerAttackConfig(config);

  if (disturbRow == nullptr) {
    const AttackResult r = study.attack(attack);
    out.status = TrialOutcome::Status::Ok;
    out.flipped = r.flipped;
    out.pulses = r.flipped ? r.pulsesToFlip : 0;
    return;
  }

  AttackStudy::Bench bench = study.makeBench();
  const BitFlipDetector detector(config.base.detector);
  const std::vector<ReadState> before = detector.snapshot(*bench.array);
  AttackEngine engine(*bench.engine, config.base.detector);
  const AttackResult r = engine.run(attack);
  out.status = TrialOutcome::Status::Ok;
  out.flipped = r.flipped;
  out.pulses = r.flipped ? r.pulsesToFlip : 0;
  for (const FlipEvent& ev : detector.flipsSince(*bench.array, before)) {
    const bool aggressor =
        std::find(attack.aggressors.begin(), attack.aggressors.end(), ev.cell) !=
        attack.aggressors.end();
    if (aggressor) continue;  // LRS preparation, not a disturb event.
    disturbRow[ev.cell.row * config.base.cols + ev.cell.col] = 1;
  }
}

}  // namespace

CampaignResult runCampaign(const CampaignConfig& config) {
  if (config.trials == 0)
    throw std::invalid_argument("runCampaign: trials must be > 0");
  if (config.batchSize == 0)
    throw std::invalid_argument("runCampaign: batchSize must be > 0");
  if (!(config.confidence > 0.0 && config.confidence < 1.0))
    throw std::invalid_argument("runCampaign: confidence outside (0, 1)");
  if (config.bootstrapResamples == 0)
    throw std::invalid_argument("runCampaign: bootstrapResamples must be > 0");

  const std::size_t trials = config.trials;
  const std::size_t cells = config.base.rows * config.base.cols;
  std::vector<TrialOutcome> outcomes(trials);
  // Trial-indexed disturb bitmaps, reduced serially after the barrier so the
  // health matrix never depends on completion order.
  std::vector<std::uint8_t> disturbed;
  if (config.recordCellHealth) disturbed.assign(trials * cells, 0);

  // Progress accounting for the onTrialComplete observer.
  struct Progress {
    util::Mutex mutex;
    std::size_t completed NH_GUARDED_BY(mutex) = 0;
  } progress;

  const std::size_t batches = (trials + config.batchSize - 1) / config.batchSize;
  util::parallelFor(
      batches,
      [&](std::size_t batch) {
        const std::size_t begin = batch * config.batchSize;
        const std::size_t end = std::min(trials, begin + config.batchSize);
        for (std::size_t trial = begin; trial < end; ++trial) {
          util::checkCancellation("campaign trial");
          const util::faultinject::Scope scope("trial:" +
                                               std::to_string(trial));
          TrialOutcome& out = outcomes[trial];
          std::uint8_t* disturbRow =
              config.recordCellHealth ? &disturbed[trial * cells] : nullptr;
          try {
            runTrial(config, trial, out, disturbRow);
          } catch (const util::CancelledError&) {
            throw;
          } catch (const std::exception& e) {
            if (config.onTrialFailure == TrialFailurePolicy::Abort) throw;
            out = TrialOutcome{};
            out.status = TrialOutcome::Status::Failed;
            out.error = e.what();
            // A half-run trial must not leak partial disturb marks.
            if (disturbRow != nullptr)
              std::fill(disturbRow, disturbRow + cells, std::uint8_t{0});
          }
          if (config.onTrialComplete) {
            std::size_t done = 0;
            {
              util::MutexLock lock(progress.mutex);
              done = ++progress.completed;
            }
            config.onTrialComplete(trial, done);
          }
        }
      },
      config.threads);

  // Serial reduction in trial order: everything below is scheduling-free.
  CampaignResult result;
  result.trials = trials;
  result.confidence = config.confidence;
  result.outcomes = std::move(outcomes);
  for (const TrialOutcome& out : result.outcomes) {
    if (out.status == TrialOutcome::Status::Failed) {
      ++result.trialsFailed;
      continue;
    }
    ++result.trialsOk;
    if (out.flipped) {
      ++result.flips;
      result.pulsesPerFlip.push_back(out.pulses);
    }
  }
  if (result.trialsOk > 0) {
    result.flipRate = static_cast<double>(result.flips) /
                      static_cast<double>(result.trialsOk);
    result.flipRateCI =
        util::wilsonInterval(result.flips, result.trialsOk, config.confidence);
  }
  if (!result.pulsesPerFlip.empty()) {
    std::vector<double> sorted(result.pulsesPerFlip.begin(),
                               result.pulsesPerFlip.end());
    std::sort(sorted.begin(), sorted.end());
    result.p10Pulses = util::quantileSorted(sorted, 0.10);
    result.medianPulses = util::quantileSorted(sorted, 0.50);
    result.p90Pulses = util::quantileSorted(sorted, 0.90);
    if (sorted.size() >= 2 && sorted.front() > 0.0)
      result.spreadDecades = std::log10(sorted.back() / sorted.front());
    // A distinct stream family for the bootstrap so its draws never collide
    // with the trial streams.
    result.medianPulsesCI = util::bootstrapQuantileInterval(
        sorted, 0.50, config.bootstrapResamples,
        config.seed ^ 0xb0075a1b00757ULL, config.confidence);
  }
  if (config.recordCellHealth) {
    result.healthRows = config.base.rows;
    result.healthCols = config.base.cols;
    result.cellDisturbRate.assign(cells, 0.0);
    if (result.trialsOk > 0) {
      for (std::size_t trial = 0; trial < trials; ++trial) {
        if (result.outcomes[trial].status != TrialOutcome::Status::Ok) continue;
        for (std::size_t c = 0; c < cells; ++c)
          result.cellDisturbRate[c] += disturbed[trial * cells + c];
      }
      for (double& rate : result.cellDisturbRate)
        rate /= static_cast<double>(result.trialsOk);
    }
  }
  return result;
}

namespace {

/// Salted FNV-1a over the label bytes, finalized SplitMix64-style. Decides
/// which registered label becomes "arm A" — deterministic per salt,
/// uncorrelated with registration order or label spelling.
std::uint64_t saltedLabelHash(std::uint64_t salt, const std::string& label) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ salt;
  for (const char ch : label) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ULL;
  }
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

constexpr const char* kArmNames[2] = {"arm A", "arm B"};

void writeArmRecord(util::JsonWriter& w, const char* name,
                    const CampaignResult& r) {
  w.key(name).beginObject();
  w.key("trials").value(r.trials);
  w.key("trials_ok").value(r.trialsOk);
  w.key("flips").value(r.flips);
  w.key("flip_rate").value(r.flipRate);
  w.key("flip_rate_lo").value(r.flipRateCI.lo);
  w.key("flip_rate_hi").value(r.flipRateCI.hi);
  w.key("median_pulses").value(r.medianPulses);
  w.endObject();
}

}  // namespace

BlindedAbStudy::BlindedAbStudy(std::string labelX, CampaignConfig configX,
                               std::string labelY, CampaignConfig configY,
                               std::uint64_t salt) {
  if (labelX == labelY)
    throw std::invalid_argument("BlindedAbStudy: arm labels must differ");
  const std::uint64_t hashX = saltedLabelHash(salt, labelX);
  const std::uint64_t hashY = saltedLabelHash(salt, labelY);
  // Smaller salted hash is "arm A"; labels break the (astronomically
  // unlikely) tie so the assignment is total.
  const bool xFirst = hashX < hashY || (hashX == hashY && labelX < labelY);
  arms_[0] = Arm{xFirst ? std::move(labelX) : std::move(labelY),
                 xFirst ? std::move(configX) : std::move(configY),
                 {}};
  arms_[1] = Arm{xFirst ? std::move(labelY) : std::move(labelX),
                 xFirst ? std::move(configY) : std::move(configX),
                 {}};
}

std::vector<std::string> BlindedAbStudy::armNames() {
  return {kArmNames[0], kArmNames[1]};
}

void BlindedAbStudy::run() {
  if (ran_) return;
  arms_[0].result = runCampaign(arms_[0].config);
  arms_[1].result = runCampaign(arms_[1].config);
  ran_ = true;
}

std::size_t BlindedAbStudy::armIndex(const std::string& armName) const {
  for (std::size_t i = 0; i < 2; ++i)
    if (armName == kArmNames[i]) return i;
  throw std::invalid_argument("BlindedAbStudy: unknown arm \"" + armName +
                              "\" (expected \"arm A\" or \"arm B\")");
}

const CampaignResult& BlindedAbStudy::result(const std::string& armName) const {
  if (!ran_) throw std::logic_error("BlindedAbStudy: run() first");
  return arms_[armIndex(armName)].result;
}

double BlindedAbStudy::flipRateDelta() const {
  if (!ran_) throw std::logic_error("BlindedAbStudy: run() first");
  return arms_[0].result.flipRate - arms_[1].result.flipRate;
}

bool BlindedAbStudy::separated() const {
  if (!ran_) throw std::logic_error("BlindedAbStudy: run() first");
  const util::Interval& a = arms_[0].result.flipRateCI;
  const util::Interval& b = arms_[1].result.flipRateCI;
  return a.hi < b.lo || b.hi < a.lo;
}

const std::string& BlindedAbStudy::analysisRecord() const {
  if (!unblinded_)
    throw std::logic_error(
        "BlindedAbStudy: the analysis record is frozen by unblind(); it does "
        "not exist before");
  return record_;
}

std::map<std::string, std::string> BlindedAbStudy::unblind() {
  if (!ran_) throw std::logic_error("BlindedAbStudy: run() before unblind()");
  if (!unblinded_) {
    // Freeze the blinded analysis FIRST: the record is rendered from the
    // opaque arms and committed before any label is reachable.
    util::JsonWriter w;
    w.beginObject();
    w.key("blinded").value(true);
    w.key("confidence").value(arms_[0].result.confidence);
    writeArmRecord(w, "arm_a", arms_[0].result);
    writeArmRecord(w, "arm_b", arms_[1].result);
    w.key("flip_rate_delta").value(flipRateDelta());
    w.key("separated").value(separated());
    w.endObject();
    record_ = w.str();
    unblinded_ = true;
  }
  return {{kArmNames[0], arms_[0].label}, {kArmNames[1], arms_[1].label}};
}

const std::string& BlindedAbStudy::trueLabel(const std::string& armName) const {
  const std::size_t index = armIndex(armName);
  if (!unblinded_)
    throw std::logic_error("BlindedAbStudy: labels are blinded until "
                           "unblind()");
  return arms_[index].label;
}

}  // namespace nh::core
