#include "core/patterns.hpp"

#include <stdexcept>

namespace nh::core {

std::vector<AttackPattern> allPatterns() {
  return {AttackPattern::SingleAggressor, AttackPattern::RowPair,
          AttackPattern::ColumnPair, AttackPattern::Cross, AttackPattern::Ring};
}

std::string patternName(AttackPattern pattern) {
  switch (pattern) {
    case AttackPattern::SingleAggressor: return "single";
    case AttackPattern::RowPair: return "row-pair";
    case AttackPattern::ColumnPair: return "column-pair";
    case AttackPattern::Cross: return "cross";
    case AttackPattern::Ring: return "ring";
  }
  return "?";
}

std::vector<xbar::CellCoord> patternAggressors(AttackPattern pattern,
                                               const xbar::CellCoord& victim,
                                               std::size_t rows, std::size_t cols) {
  const auto inBounds = [&](long long r, long long c) {
    return r >= 0 && c >= 0 && r < static_cast<long long>(rows) &&
           c < static_cast<long long>(cols);
  };
  const long long vr = static_cast<long long>(victim.row);
  const long long vc = static_cast<long long>(victim.col);

  std::vector<std::pair<long long, long long>> offsets;
  switch (pattern) {
    case AttackPattern::SingleAggressor:
      offsets = {{0, -1}, {0, 1}};  // first in-bounds word-line neighbour
      break;
    case AttackPattern::RowPair:
      offsets = {{0, -1}, {0, 1}};
      break;
    case AttackPattern::ColumnPair:
      offsets = {{-1, 0}, {1, 0}};
      break;
    case AttackPattern::Cross:
      offsets = {{0, -1}, {0, 1}, {-1, 0}, {1, 0}};
      break;
    case AttackPattern::Ring:
      offsets = {{0, -1}, {0, 1}, {-1, 0}, {1, 0},
                 {-1, -1}, {-1, 1}, {1, -1}, {1, 1}};
      break;
  }

  std::vector<xbar::CellCoord> aggressors;
  for (const auto& [dr, dc] : offsets) {
    if (inBounds(vr + dr, vc + dc)) {
      aggressors.push_back({static_cast<std::size_t>(vr + dr),
                            static_cast<std::size_t>(vc + dc)});
    }
    if (pattern == AttackPattern::SingleAggressor && !aggressors.empty()) break;
  }
  if (aggressors.empty()) {
    throw std::invalid_argument("patternAggressors: no aggressor fits the array");
  }
  return aggressors;
}

}  // namespace nh::core
