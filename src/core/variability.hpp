#pragma once
/// \file variability.hpp
/// Device-to-device variability study (extension of the paper's
/// deterministic runs: the JART model family explicitly supports a
/// variability-aware variant, and the paper's future work targets physical
/// crossbars where variability dominates). Monte-Carlo over perturbed
/// device parameters, reporting the distribution of pulses-to-flip.

#include <cstdint>
#include <vector>

#include "core/study.hpp"

namespace nh::core {

/// How per-trial random draws are planned.
enum class TrialRngPlan {
  /// One generator shared by every trial, drawn in trial order. This is the
  /// legacy contract pinned by the ablation_variability baseline: trial i's
  /// draws depend on every trial before it, so the study is inherently
  /// serial. Default.
  Sequential,
  /// Counter-based per-trial streams (util::Rng::forStream(seed, trial)):
  /// trial i's draws depend only on (seed, i), so trials parallelize with
  /// bit-identical results for any thread count. Delegates to the campaign
  /// layer (core/campaign.hpp). Draws differ from Sequential, so switching
  /// plans changes per-trial values (not the statistics' meaning).
  PerTrialStream,
};

struct VariabilityConfig {
  StudyConfig base;
  HammerPulse pulse;
  std::size_t trials = 20;
  /// Log-normal sigma applied per trial (see jart::Params::withVariability).
  double sigma = 0.05;
  std::uint64_t seed = 1234;
  std::size_t budget = 5'000'000;
  TrialRngPlan plan = TrialRngPlan::Sequential;
  /// Worker threads for TrialRngPlan::PerTrialStream (0 = default, 1 =
  /// serial). Ignored — always serial — under Sequential.
  std::size_t threads = 1;
};

/// Monte-Carlo outcome. Degenerate statistics are defined explicitly:
/// - flips == 0: pulsesPerTrial is empty and minPulses, medianPulses,
///   maxPulses, spreadDecades, flipRate are all 0.
/// - flips == 1: minPulses == medianPulses == maxPulses (the one flipped
///   trial) and spreadDecades == 0.
struct VariabilityResult {
  std::vector<std::size_t> pulsesPerTrial;  ///< Only flipped trials.
  std::size_t trials = 0;
  std::size_t flips = 0;
  double flipRate = 0.0;
  std::size_t minPulses = 0;
  /// Upper median (sorted[flips / 2]) of the flipped trials.
  std::size_t medianPulses = 0;
  std::size_t maxPulses = 0;
  /// log10(max/min) spread of the flipped trials.
  double spreadDecades = 0.0;
};

/// Run the Monte-Carlo study: one perturbed array per trial, centre-cell
/// reference attack each time. Deterministic for a given seed (and, under
/// TrialRngPlan::PerTrialStream, for any thread count).
VariabilityResult runVariabilityStudy(const VariabilityConfig& config);

}  // namespace nh::core
