#pragma once
/// \file variability.hpp
/// Device-to-device variability study (extension of the paper's
/// deterministic runs: the JART model family explicitly supports a
/// variability-aware variant, and the paper's future work targets physical
/// crossbars where variability dominates). Monte-Carlo over perturbed
/// device parameters, reporting the distribution of pulses-to-flip.

#include <cstdint>
#include <vector>

#include "core/study.hpp"

namespace nh::core {

struct VariabilityConfig {
  StudyConfig base;
  HammerPulse pulse;
  std::size_t trials = 20;
  /// Log-normal sigma applied per trial (see jart::Params::withVariability).
  double sigma = 0.05;
  std::uint64_t seed = 1234;
  std::size_t budget = 5'000'000;
};

struct VariabilityResult {
  std::vector<std::size_t> pulsesPerTrial;  ///< Only flipped trials.
  std::size_t trials = 0;
  std::size_t flips = 0;
  double flipRate = 0.0;
  std::size_t minPulses = 0;
  std::size_t medianPulses = 0;
  std::size_t maxPulses = 0;
  /// log10(max/min) spread of the flipped trials.
  double spreadDecades = 0.0;
};

/// Run the Monte-Carlo study: one perturbed array per trial, centre-cell
/// reference attack each time. Deterministic for a given seed.
VariabilityResult runVariabilityStudy(const VariabilityConfig& config);

}  // namespace nh::core
