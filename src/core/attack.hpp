#pragma once
/// \file attack.hpp
/// The NeuroHammer attack engine: hammers aggressor cells with SET-polarity
/// pulse trains under the V/2 scheme and reports when (and where) a
/// monitored victim cell flips HRS -> LRS. Implements the paper's four-phase
/// mechanics end to end: hammering -> temperature increase (self-heating +
/// crosstalk hub) -> accelerated switching kinetics -> bit-flip.

#include <optional>
#include <vector>

#include "core/detector.hpp"
#include "xbar/controller.hpp"
#include "xbar/fastsim.hpp"

namespace nh::core {

/// One hammer pulse description (paper: rectangular pulse, fixed amplitude
/// V_SET = 1.05 V, given pulse length; 50% duty cycle by default).
struct HammerPulse {
  double amplitude = 1.05;  ///< [V].
  double width = 50e-9;     ///< Pulse length [s].
  double dutyCycle = 0.5;   ///< width / period.

  double period() const { return width / dutyCycle; }
  double gap() const { return period() - width; }
};

/// Full attack description.
struct AttackConfig {
  /// Cells hammered in round-robin order. Must be non-empty.
  std::vector<xbar::CellCoord> aggressors;
  /// Consecutive pulses per aggressor before rotating to the next.
  std::size_t roundRobinChunk = 8;
  HammerPulse pulse;
  xbar::BiasScheme scheme = xbar::BiasScheme::Half;
  /// Give-up budget (total pulses across all aggressors).
  std::size_t maxPulses = 50'000'000;
  /// Monitored victims; empty = every non-aggressor cell that starts HRS.
  std::vector<xbar::CellCoord> victims;
  /// Put aggressors into LRS before hammering (paper: "The red cell should
  /// be initially switched to LRS to maximize the resulting current").
  bool prepareAggressorsLrs = true;
  /// Victim-state trace points to keep (0 disables tracing).
  std::size_t traceSamples = 0;
};

/// Attack outcome.
struct AttackResult {
  bool flipped = false;
  std::size_t pulsesToFlip = 0;      ///< Pulses applied when the flip was seen.
  std::size_t pulsesApplied = 0;     ///< Total pulses applied.
  std::size_t pulsesSimulated = 0;   ///< Non-batched (fully integrated) pulses.
  xbar::CellCoord flippedCell{};     ///< Valid when flipped.
  double stressTime = 0.0;           ///< Victim V/2 stress time = pulses*width [s].
  double simulatedTime = 0.0;        ///< Engine wall-clock advance [s].

  /// Optional traces (pulse index -> values), decimated to traceSamples.
  std::vector<double> tracePulse;
  std::vector<double> traceVictimState;
  std::vector<double> traceVictimTemperature;
  std::vector<double> traceAggressorTemperature;
};

/// Runs attacks on a FastEngine-bound array.
class AttackEngine {
 public:
  AttackEngine(xbar::FastEngine& engine, DetectorConfig detector = {});

  /// Execute \p config. The array is used as-is apart from the optional
  /// aggressor LRS preparation; callers set up victim states beforehand.
  AttackResult run(const AttackConfig& config);

  const BitFlipDetector& detector() const { return detector_; }

 private:
  xbar::FastEngine* engine_;
  BitFlipDetector detector_;
};

}  // namespace nh::core
