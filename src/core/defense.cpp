#include "core/defense.hpp"

#include <stdexcept>

namespace nh::core {

ScrubbingOutcome evaluateScrubbing(const StudyConfig& base,
                                   const HammerPulse& pulse,
                                   const ScrubbingConfig& scrub,
                                   std::size_t attackBudget) {
  if (scrub.intervalPulses == 0) {
    throw std::invalid_argument("evaluateScrubbing: interval must be > 0");
  }
  AttackStudy study(base);
  auto bench = study.makeBench();
  auto& array = *bench.array;
  auto& engine = *bench.engine;
  BitFlipDetector detector(base.detector);

  const xbar::CellCoord aggressor{base.rows / 2, base.cols / 2};
  array.setState(aggressor.row, aggressor.col, xbar::CellState::Lrs);
  const xbar::LineBias bias =
      xbar::selectBias(xbar::BiasScheme::Half, array.rows(), array.cols(),
                       aggressor.row, aggressor.col, pulse.amplitude);
  std::vector<xbar::CellCoord> victims;
  for (std::size_t r = 0; r < array.rows(); ++r) {
    for (std::size_t c = 0; c < array.cols(); ++c) {
      if (!(r == aggressor.row && c == aggressor.col)) victims.push_back({r, c});
    }
  }

  ScrubbingOutcome outcome;
  std::size_t applied = 0;
  while (applied < attackBudget) {
    const std::size_t chunk = std::min(scrub.intervalPulses, attackBudget - applied);
    bool flipped = false;
    const auto callback = [&](std::size_t pulseInChunk) {
      if (detector.firstLrs(array, victims)) {
        flipped = true;
        outcome.pulsesUntilFlip = applied + pulseInChunk;
        return true;
      }
      return false;
    };
    const auto train =
        engine.applyPulseTrain(bias, pulse.width, pulse.gap(), chunk, callback);
    applied += train.pulsesApplied;
    if (flipped) {
      outcome.attackSucceeded = true;
      return outcome;
    }

    // Scrub pass: refresh every monitored cell that drifted.
    ++outcome.scrubPasses;
    const xbar::LineBias idle = xbar::idleBias(array.rows(), array.cols());
    for (const auto& v : victims) {
      if (array.cell(v.row, v.col).normalisedState() > scrub.driftThreshold) {
        const xbar::LineBias refresh =
            xbar::selectBias(xbar::BiasScheme::Half, array.rows(), array.cols(),
                             v.row, v.col, scrub.refreshVoltage);
        engine.applyPulse(refresh, scrub.refreshWidth, pulse.gap());
        ++outcome.cellsRefreshed;
      }
    }
    engine.applyBias(idle, 10 * pulse.gap());  // settle before resuming
  }
  outcome.pulsesSurvived = applied;
  return outcome;
}

MonitorOutcome evaluateMonitor(const StudyConfig& base, const HammerPulse& pulse,
                               const MonitorConfig& monitor,
                               std::size_t attackBudget) {
  if (monitor.lineThreshold == 0) {
    throw std::invalid_argument("evaluateMonitor: threshold must be > 0");
  }
  // The reference attack hammers one cell, so its word/bit line counters
  // grow one-for-one with the pulse count: detection happens exactly at the
  // threshold (or the window limit). Run the attack to learn the flip time.
  AttackStudy study(base);
  HammerPulse p = pulse;
  const AttackResult attack = study.attackCenter(p, attackBudget);

  MonitorOutcome outcome;
  const std::size_t detectionAt =
      monitor.windowPulses == 0
          ? monitor.lineThreshold
          : std::min<std::size_t>(monitor.lineThreshold, monitor.windowPulses);
  outcome.pulsesUntilDetection = detectionAt;
  outcome.attackDetected = attack.pulsesApplied >= detectionAt;
  outcome.pulsesUntilFlip = attack.pulsesToFlip;
  outcome.flippedBeforeDetection = attack.flipped && attack.pulsesToFlip < detectionAt;
  return outcome;
}

std::vector<ThrottleOutcome> evaluateThrottling(const StudyConfig& base,
                                                double pulseWidth,
                                                const std::vector<double>& dutyCycles,
                                                std::size_t attackBudget) {
  std::vector<ThrottleOutcome> outcomes;
  outcomes.reserve(dutyCycles.size());
  AttackStudy study(base);
  for (const double duty : dutyCycles) {
    if (!(duty > 0.0 && duty <= 1.0)) {
      throw std::invalid_argument("evaluateThrottling: duty in (0,1]");
    }
    HammerPulse pulse;
    pulse.width = pulseWidth;
    pulse.dutyCycle = duty;
    const AttackResult r = study.attackCenter(pulse, attackBudget);
    ThrottleOutcome o;
    o.dutyCycle = duty;
    o.flipped = r.flipped;
    o.pulses = r.pulsesToFlip;
    o.wallClockTime = static_cast<double>(r.pulsesToFlip) * pulse.period();
    outcomes.push_back(o);
  }
  return outcomes;
}

}  // namespace nh::core
