#pragma once
/// \file baseline.hpp
/// Tracked figure baselines: the expected result rows of every fast
/// experiment live in `baselines/<experiment>.json`, keyed by the FNV-1a
/// config digest and compared cell-by-cell (element-wise for trace/matrix
/// cells) with the spec's per-column tolerances. `nh_sweep check` and the
/// CI baseline job run experiments and diff them against this store, so a
/// figure regression becomes CI-visible the same way a perf regression in
/// BENCH_perf_solvers.json already is.
///
/// Staleness is explicit: when an experiment's config digest no longer
/// matches the recorded one, the check fails with DigestMismatch -- the
/// config drifted and the baseline must be consciously re-recorded
/// (`nh_sweep record <name> --fast`), never silently accepted.

#include <filesystem>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace nh::core {

/// Where tracked baselines live: NH_BASELINE_DIR when set, ./baselines
/// otherwise (the repo-root convention; CI runs nh_sweep from the checkout
/// root).
std::filesystem::path defaultBaselineDir();

/// `<dir>/<experiment>.json`.
std::filesystem::path baselinePath(const std::string& experiment,
                                   const std::filesystem::path& dir);

/// One cell (or one element of a shaped cell) outside tolerance.
struct BaselineDiff {
  std::size_t row = 0;
  std::string column;
  std::size_t element = 0;  ///< Element index inside a shaped cell.
  std::string expected;     ///< Rendered expected value.
  std::string actual;
  std::string what;         ///< Mismatch description.
};

/// Outcome of one baseline comparison.
struct BaselineCheck {
  enum class Status {
    Match,           ///< Everything within tolerance.
    Missing,         ///< No baseline recorded yet.
    DigestMismatch,  ///< Config drifted; re-record deliberately.
    ShapeMismatch,   ///< Columns / row count / cell shapes differ.
    ValueMismatch,   ///< Cells out of tolerance (see diffs).
  };
  Status status = Status::Match;
  std::string message;
  std::string expectedDigest;  ///< Digest recorded in the baseline.
  std::string actualDigest;    ///< Digest of the run that was checked.
  std::vector<BaselineDiff> diffs;
  bool diffsTruncated = false;  ///< More mismatches than the report cap.

  bool passed() const { return status == Status::Match; }
};

const char* baselineStatusName(BaselineCheck::Status status);

/// Serialise \p result as a baseline document: experiment name, config
/// digest, fast flag, budget, columns + shapes + tolerances, axes, rows
/// (shaped cells in the writeCellJson encoding).
std::string baselineJson(const ExperimentResult& result);

/// Write `<dir>/<name>.json` (parent directories created); returns the path.
std::filesystem::path writeBaseline(const ExperimentResult& result,
                                    const std::filesystem::path& dir);

/// Compare \p result against the recorded baseline in \p dir. The current
/// spec's per-column tolerances (carried in ExperimentResult::columns) are
/// the comparison policy; the tolerances recorded in the file are
/// informational only.
BaselineCheck checkBaseline(const ExperimentResult& result,
                            const std::filesystem::path& dir);

/// Machine-readable diff document for CI artifacts: experiment, status,
/// both digests, and one entry per out-of-tolerance cell.
std::string diffJson(const ExperimentResult& result,
                     const BaselineCheck& check);

}  // namespace nh::core
