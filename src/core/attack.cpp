#include "core/attack.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/cancellation.hpp"

namespace nh::core {

AttackEngine::AttackEngine(xbar::FastEngine& engine, DetectorConfig detector)
    : engine_(&engine), detector_(detector) {}

AttackResult AttackEngine::run(const AttackConfig& config) {
  if (config.aggressors.empty()) {
    throw std::invalid_argument("AttackEngine: no aggressors");
  }
  if (!(config.pulse.width > 0.0) || !(config.pulse.dutyCycle > 0.0) ||
      config.pulse.dutyCycle > 1.0) {
    throw std::invalid_argument("AttackEngine: invalid pulse");
  }
  auto& array = engine_->array();
  for (const auto& a : config.aggressors) {
    if (a.row >= array.rows() || a.col >= array.cols()) {
      throw std::out_of_range("AttackEngine: aggressor out of range");
    }
  }

  if (config.prepareAggressorsLrs) {
    for (const auto& a : config.aggressors) {
      array.setState(a.row, a.col, xbar::CellState::Lrs);
    }
  }

  // Victim set: explicit, or every non-aggressor cell currently in HRS.
  std::vector<xbar::CellCoord> victims = config.victims;
  if (victims.empty()) {
    for (std::size_t r = 0; r < array.rows(); ++r) {
      for (std::size_t c = 0; c < array.cols(); ++c) {
        const xbar::CellCoord coord{r, c};
        const bool isAggressor =
            std::find(config.aggressors.begin(), config.aggressors.end(), coord) !=
            config.aggressors.end();
        if (!isAggressor &&
            detector_.classify(array.cell(r, c)) == ReadState::Hrs) {
          victims.push_back(coord);
        }
      }
    }
  }
  if (victims.empty()) {
    throw std::invalid_argument("AttackEngine: no HRS victim to monitor");
  }
  const xbar::CellCoord tracedVictim = victims.front();

  AttackResult result;
  const double startTime = engine_->time();
  const std::size_t traceEvery =
      config.traceSamples > 0
          ? std::max<std::size_t>(1, config.maxPulses / config.traceSamples)
          : 0;

  // Trace sampling is interval-based (robust against the batching
  // accelerator skipping pulse indices). Temperatures use the devices' peak
  // trackers: the callback runs between pulses, after the filaments cooled.
  std::size_t nextTraceAt = 1;
  const auto recordTrace = [&](std::size_t pulseIndex) {
    if (traceEvery == 0 || pulseIndex < nextTraceAt) return;
    nextTraceAt = pulseIndex + traceEvery;
    auto& victim = array.cell(tracedVictim.row, tracedVictim.col);
    auto& aggressor =
        array.cell(config.aggressors.front().row, config.aggressors.front().col);
    result.tracePulse.push_back(static_cast<double>(pulseIndex));
    result.traceVictimState.push_back(victim.normalisedState());
    result.traceVictimTemperature.push_back(victim.peakTemperature());
    result.traceAggressorTemperature.push_back(aggressor.peakTemperature());
    victim.clearPeakTemperature();
    aggressor.clearPeakTemperature();
  };

  std::size_t applied = 0;
  std::size_t aggressorIndex = 0;
  bool flipped = false;

  while (applied < config.maxPulses && !flipped) {
    // The chunk below also checks inside applyPulseTrain (per pulse); this
    // outer check covers configurations with relaxation-only chunks.
    util::checkCancellation("attack pulse loop");
    const auto& aggressor = config.aggressors[aggressorIndex];
    aggressorIndex = (aggressorIndex + 1) % config.aggressors.size();

    // Round-robin chunking only matters with several aggressors; a single
    // aggressor gets the whole remaining budget so pulse batching can run
    // at full depth.
    const std::size_t chunk =
        config.aggressors.size() == 1
            ? config.maxPulses - applied
            : std::min(config.roundRobinChunk, config.maxPulses - applied);
    const xbar::LineBias bias =
        xbar::selectBias(config.scheme, array.rows(), array.cols(),
                         aggressor.row, aggressor.col, config.pulse.amplitude);

    const std::size_t base = applied;
    const auto callback = [&](std::size_t pulseInChunk) {
      const std::size_t total = base + pulseInChunk;
      recordTrace(total);
      // Fast path: normalised-state check before the full read classify.
      const auto hit = detector_.firstLrs(array, victims);
      if (hit) {
        flipped = true;
        result.flippedCell = *hit;
        result.pulsesToFlip = total;
        return true;
      }
      return false;
    };

    const xbar::PulseTrainResult train = engine_->applyPulseTrain(
        bias, config.pulse.width, config.pulse.gap(), chunk, callback);
    applied += train.pulsesApplied;
    result.pulsesSimulated += train.pulsesSimulated;
  }

  result.flipped = flipped;
  result.pulsesApplied = applied;
  if (!flipped) result.pulsesToFlip = applied;
  // Victim stress time: every hammer pulse half-selects the victim's lines.
  result.stressTime = static_cast<double>(result.pulsesToFlip) * config.pulse.width;
  result.simulatedTime = engine_->time() - startTime;
  return result;
}

}  // namespace nh::core
