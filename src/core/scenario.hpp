#pragma once
/// \file scenario.hpp
/// Security scenarios (paper Sec. VI): transfers the RowHammer attack
/// narratives to ReRAM main memory and to neuromorphic accelerators.
///  * PrivilegeEscalationScenario -- a page-table permission bit stored in
///    the crossbar is flipped by hammering an attacker-owned adjacent cell
///    (Seaborn et al.'s kernel-privilege attack, Sec. VI).
///  * WeightAttackScenario -- a linear classifier whose ternary weights live
///    in crossbar conductances (computing-in-memory) is corrupted by
///    flipping a weight cell, degrading accuracy.

#include <cstdint>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "util/rng.hpp"

namespace nh::core {

/// ---- privilege escalation ------------------------------------------------------

struct PrivilegeEscalationReport {
  bool succeeded = false;            ///< Victim permission bit flipped.
  std::size_t pulses = 0;            ///< Hammer pulses needed.
  double attackSeconds = 0.0;        ///< Wall-clock at the hammer duty cycle.
  std::size_t collateralFlips = 0;   ///< Other bits corrupted (should be 0).
  std::vector<bool> memoryBefore;    ///< Row-major bit image before.
  std::vector<bool> memoryAfter;     ///< After the attack.
  xbar::CellCoord victimBit{};
  xbar::CellCoord attackerCell{};
};

/// The crossbar stores a page-table fragment; bit (victim) = 1 would grant
/// the attacker write access to a page table page. The attacker can only
/// write its own cell, adjacent on the same word line.
class PrivilegeEscalationScenario {
 public:
  explicit PrivilegeEscalationScenario(StudyConfig config = {});

  /// Run the attack with the given hammer pulse; budget caps the attempt.
  PrivilegeEscalationReport run(const HammerPulse& pulse, std::size_t budget);

 private:
  StudyConfig config_;
};

/// ---- neuromorphic weight corruption ----------------------------------------------

struct WeightAttackReport {
  double accuracyBefore = 0.0;     ///< Analog (crossbar VMM) accuracy.
  double accuracyAfter = 0.0;
  double digitalAccuracy = 0.0;    ///< Float-weight reference accuracy.
  bool weightFlipped = false;
  std::size_t pulses = 0;
  xbar::CellCoord flippedWeightCell{};
  std::string flippedWeightDescription;
};

/// A ternary-weight linear classifier (2 classes, 4 features + bias) mapped
/// onto the 5x5 crossbar with differential column pairs. Trained on a
/// deterministic synthetic two-blob dataset, then attacked.
class WeightAttackScenario {
 public:
  explicit WeightAttackScenario(StudyConfig config = {}, std::uint64_t seed = 42);

  WeightAttackReport run(const HammerPulse& pulse, std::size_t budget);

  /// Number of samples in the held-out evaluation set.
  std::size_t testSetSize() const { return testX_.size(); }
  /// Trained weights (introspection for tests/examples).
  double floatWeight(int classIndex, int featureIndex) const {
    return weights_[classIndex][featureIndex];
  }
  int ternaryWeight(int classIndex, int featureIndex) const {
    return ternary_[classIndex][featureIndex];
  }

 private:
  void generateData();
  void train();
  /// Classify one sample with float weights.
  int digitalPredict(const std::vector<double>& x) const;
  /// Classify via crossbar currents.
  int analogPredict(const xbar::CrossbarArray& array,
                    const std::vector<double>& x) const;
  double analogAccuracy(const xbar::CrossbarArray& array) const;

  StudyConfig config_;
  nh::util::Rng rng_;
  std::vector<std::vector<double>> trainX_, testX_;
  std::vector<int> trainY_, testY_;
  /// Float weights [class][feature+bias] and their ternarised form in
  /// {-1, 0, +1}.
  double weights_[2][5] = {};
  int ternary_[2][5] = {};
};

}  // namespace nh::core
