#pragma once
/// \file study.hpp
/// End-to-end experiment harness: wires geometry -> alpha extraction ->
/// array/engine construction -> attack execution, and provides the three
/// parameter sweeps of the paper's evaluation (pulse length, electrode
/// spacing, ambient temperature) plus the attack-pattern comparison.

#include <memory>
#include <vector>

#include "core/attack.hpp"
#include "core/patterns.hpp"
#include "fem/alpha.hpp"
#include "jart/params.hpp"
#include "xbar/crosstalk.hpp"
#include "xbar/fastsim.hpp"

namespace nh::core {

/// Configuration of one study (one crossbar geometry + environment).
struct StudyConfig {
  std::size_t rows = 5;
  std::size_t cols = 5;
  double spacing = 50e-9;    ///< Electrode spacing [m] (selects the alphas).
  double ambientK = 300.0;
  jart::Params cellParams = jart::Params::paperDefaults();
  /// Run the full FEM extraction for this geometry instead of the
  /// FEM-calibrated analytic alpha table (slower; bit-identical flow to the
  /// paper). The analytic table was itself fitted to these extractions.
  bool useFemAlphas = false;
  /// Voxel size for the FEM extraction [m]. Finer voxels mean larger FV
  /// systems; at >= DiffusionOptions::multigridMinVoxels voxels the
  /// extraction's CG solves auto-upgrade to the geometric-multigrid
  /// preconditioner, which keeps iteration counts grid-size independent.
  double femVoxelSize = 5e-9;
  /// Solver controls for the FEM extraction (tolerances, preconditioner,
  /// multigrid upgrade threshold). The extraction's power sweep additionally
  /// warm-starts every CG solve from the previous power point's field --
  /// a serial chain inside each study construction, so the parallel Fig. 3
  /// sweeps stay bit-identical for every thread count.
  fem::DiffusionOptions femOptions;
  xbar::FastEngineOptions engineOptions;
  DetectorConfig detector;

  /// Exact member-wise comparison (C++20 defaulted). The experiment
  /// engine's study-dedup cache keys on it: grid points whose config
  /// compares equal share one AttackStudy construction.
  bool operator==(const StudyConfig&) const = default;
};

/// One experiment harness instance. Owns the alpha table; creates a fresh
/// all-HRS array per attack so runs are independent.
class AttackStudy {
 public:
  explicit AttackStudy(StudyConfig config);

  const StudyConfig& config() const { return config_; }
  const xbar::AlphaTable& alphas() const { return alphas_; }
  /// R_th actually used by the compact model [K/W].
  double rThEff() const { return arrayConfig_.cellParams.rThEff; }
  const xbar::ArrayConfig& arrayConfig() const { return arrayConfig_; }

  /// Hammer the array-centre cell; every other (HRS) cell is monitored.
  /// Const (like every attack entry point below): each run builds a fresh
  /// bench from immutable study state, so concurrent attacks on one study
  /// are safe -- the parallel sweeps rely on this.
  AttackResult attackCenter(const HammerPulse& pulse, std::size_t maxPulses,
                            std::size_t traceSamples = 0) const;

  /// Hammer \p pattern aggressors around the array-centre victim.
  AttackResult attackPattern(AttackPattern pattern, const HammerPulse& pulse,
                             std::size_t maxPulses) const;

  /// Run an arbitrary attack config on a fresh all-HRS array.
  AttackResult attack(const AttackConfig& config) const;

  /// Build a fresh all-HRS array + engine pair for custom experiments.
  struct Bench {
    std::unique_ptr<xbar::CrossbarArray> array;
    std::unique_ptr<xbar::FastEngine> engine;
  };
  Bench makeBench() const;

  /// Process-wide number of AttackStudy constructions so far. Test hook for
  /// the experiment engine's study-dedup cache: a grid run must raise this
  /// by exactly the number of *unique* study configs, not of grid points.
  static std::size_t constructionCount();

 private:
  StudyConfig config_;
  xbar::AlphaTable alphas_;
  xbar::ArrayConfig arrayConfig_;
};

/// One point of a figure series.
struct SweepPoint {
  double parameter = 0.0;   ///< Swept value (seconds, metres or kelvin).
  double series = 0.0;      ///< Series value (pulse width for Fig. 3b/c) [s].
  std::size_t pulses = 0;   ///< Pulses to trigger the bit-flip.
  bool flipped = false;
  double stressTime = 0.0;  ///< pulses * width [s].

  /// Exact comparison (C++20 defaulted): the parallel sweeps promise
  /// bit-identical results for every thread count, and the tests check it.
  bool operator==(const SweepPoint&) const = default;
};

/// Fig. 3a: pulses-to-flip vs pulse length at fixed spacing/ambient.
///
/// All four sweeps run their points on a thread pool (\p threads workers;
/// 0 = util::defaultThreadCount(), 1 = serial on the calling thread). Each
/// point attacks its own fresh all-HRS array, and results are written into
/// slots indexed by the serial loop order, so the returned vector is
/// bit-identical for every thread count.
std::vector<SweepPoint> sweepPulseLength(const StudyConfig& base,
                                         const std::vector<double>& widths,
                                         std::size_t maxPulses,
                                         std::size_t threads = 0);

/// Fig. 3b: pulses-to-flip vs electrode spacing, one series per pulse width.
std::vector<SweepPoint> sweepSpacing(const StudyConfig& base,
                                     const std::vector<double>& spacings,
                                     const std::vector<double>& widths,
                                     std::size_t maxPulses,
                                     std::size_t threads = 0);

/// Fig. 3c: pulses-to-flip vs ambient temperature, one series per width.
std::vector<SweepPoint> sweepAmbient(const StudyConfig& base,
                                     const std::vector<double>& ambients,
                                     const std::vector<double>& widths,
                                     std::size_t maxPulses,
                                     std::size_t threads = 0);

/// Fig. 3d: pulses-to-flip per attack pattern.
struct PatternPoint {
  AttackPattern pattern = AttackPattern::SingleAggressor;
  std::size_t aggressorCount = 0;
  std::size_t pulses = 0;
  bool flipped = false;

  bool operator==(const PatternPoint&) const = default;
};
std::vector<PatternPoint> sweepPatterns(const StudyConfig& base,
                                        const HammerPulse& pulse,
                                        std::size_t maxPulses,
                                        std::size_t threads = 0);

}  // namespace nh::core
