#include "jart/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace nh::jart {

using nh::util::kBoltzmannEv;

Model::Model(Params params) : params_(params) {
  params_.validate();
  logWindowRatio_ = std::log(params_.nDiscMax / params_.nDiscMin);
}

double Model::schottkyCurrent(double vs, double nDisc, double temperatureK) const {
  const Params& p = params_;
  const double area = p.filamentArea();
  const double tt = temperatureK * temperatureK;
  const double x = p.normalisedState(nDisc);

  if (vs >= 0.0) {
    // Forward (SET polarity): thermionic emission over a barrier that the
    // donor concentration in the disc lowers (more vacancies -> thinner,
    // lower effective barrier).
    const double phi = p.phiBarrier0 - p.phiLowering * x;
    const double i0 = area * p.richardson * tt *
                      std::exp(-phi / (kBoltzmannEv * temperatureK));
    const double vt = p.idealityFwd * kBoltzmannEv * temperatureK;
    const double arg = std::min(vs / vt, 60.0);
    return i0 * (std::exp(arg) - 1.0);
  }
  // Reverse (RESET polarity): tunnelling-assisted leaky reverse conduction,
  // modelled as a soft exponential with large ideality.
  const double phi = p.phiBarrierRev - p.phiLowering * x;
  const double i0 = area * p.richardson * tt *
                    std::exp(-std::max(phi, 0.02) / (kBoltzmannEv * temperatureK));
  const double vt = p.idealityRev * kBoltzmannEv * temperatureK;
  const double arg = std::min(-vs / vt, 60.0);
  return -i0 * (std::exp(arg) - 1.0);
}

Conduction Model::solveConduction(double voltage, double nDisc,
                                  double temperatureK) const {
  const Params& p = params_;
  Conduction out;
  if (voltage == 0.0) return out;

  const double rOhmic = p.discResistance(nDisc) + p.plugResistance() + p.rSeries;

  // Solve f(vs) = vs + R * I_sch(vs) - V = 0. I_sch is monotone increasing
  // in vs, so f is monotone: bracket [min(0,V), max(0,V)] always contains
  // the root. Newton with bisection safeguard.
  double lo = std::min(0.0, voltage);
  double hi = std::max(0.0, voltage);
  double vs = voltage * 0.5;
  bool converged = false;
  for (int iter = 0; iter < 200; ++iter) {
    const double i = schottkyCurrent(vs, nDisc, temperatureK);
    const double f = vs + rOhmic * i - voltage;
    if (std::fabs(f) < 1e-12 * std::max(1.0, std::fabs(voltage))) {
      converged = true;
      break;
    }
    if (f > 0.0) {
      hi = vs;
    } else {
      lo = vs;
    }
    // Numerical derivative for the Newton step.
    const double h = 1e-7 * std::max(1.0, std::fabs(vs)) + 1e-12;
    const double di = (schottkyCurrent(vs + h, nDisc, temperatureK) -
                       schottkyCurrent(vs - h, nDisc, temperatureK)) /
                      (2.0 * h);
    const double fp = 1.0 + rOhmic * di;
    double vsNew = vs - f / fp;
    if (!(vsNew > lo && vsNew < hi)) vsNew = 0.5 * (lo + hi);  // bisect
    if (std::fabs(vsNew - vs) < 1e-15) {
      vs = vsNew;
      converged = true;
      break;
    }
    vs = vsNew;
  }

  const double i = schottkyCurrent(vs, nDisc, temperatureK);
  out.current = i;
  out.vSchottky = vs;
  out.vDisc = i * p.discResistance(nDisc);
  // Power heating the filament: everything except the external series
  // resistance (which sits in the electrodes, away from the filament).
  out.powerFilament = std::fabs(i * (voltage - i * p.rSeries));
  out.converged = converged;
  return out;
}

double Model::windowSet(double nDisc) const {
  const Params& p = params_;
  const double frac = nDisc / p.nDiscMax;
  if (frac >= 1.0) return 0.0;
  return 1.0 - std::pow(frac, p.windowExponent);
}

double Model::windowReset(double nDisc) const {
  const Params& p = params_;
  const double frac = p.nDiscMin / nDisc;
  if (frac >= 1.0) return 0.0;
  return 1.0 - std::pow(frac, p.windowExponent);
}

double Model::ionicRate(double vDisc, double nDisc, double temperatureK) const {
  const Params& p = params_;
  if (vDisc == 0.0) return 0.0;
  const double gamma = p.fieldCoefficient();  // [K/V]
  if (vDisc > 0.0) {
    // SET: vacancies drift from the plug into the disc.
    const double arrhenius =
        std::exp(-p.activationEnergySet / (kBoltzmannEv * temperatureK));
    const double field = std::sinh(std::min(gamma * vDisc / temperatureK, 60.0));
    return p.kineticPrefactorSet * arrhenius * field * windowSet(nDisc);
  }
  // RESET: vacancies drift back toward the plug.
  const double arrhenius =
      std::exp(-p.activationEnergyReset / (kBoltzmannEv * temperatureK));
  const double field = std::sinh(std::min(gamma * (-vDisc) / temperatureK, 60.0));
  return -p.kineticPrefactorReset * arrhenius * field * windowReset(nDisc);
}

double Model::steadyTemperature(double powerFilament, double ambientK,
                                double crosstalkK) const {
  return ambientK + crosstalkK + params_.rThEff * powerFilament;
}

double Model::resistance(double readVoltage, double nDisc,
                         double temperatureK) const {
  if (readVoltage == 0.0) {
    throw std::invalid_argument("Model::resistance: readVoltage must be non-zero");
  }
  const Conduction c = solveConduction(readVoltage, nDisc, temperatureK);
  if (c.current == 0.0) return 1e15;
  return readVoltage / c.current;
}

}  // namespace nh::jart
