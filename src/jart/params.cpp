#include "jart/params.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace nh::jart {

double Params::filamentArea() const {
  return nh::util::kPi * rFilament * rFilament;
}

double Params::conductivity(double n) const {
  return n * nh::util::kElementaryCharge * mobility;
}

double Params::discResistance(double n) const {
  return lDisc / (conductivity(n) * filamentArea());
}

double Params::plugResistance() const {
  return lPlug / (conductivity(nPlug) * filamentArea());
}

double Params::fieldCoefficient() const {
  return fieldEnhancement * hopDistance * chargeNumber *
         nh::util::kElementaryCharge / (2.0 * nh::util::kBoltzmann * lDisc);
}

double Params::normalisedState(double n) const {
  const double x = std::log(n / nDiscMin) / std::log(nDiscMax / nDiscMin);
  return std::fmin(std::fmax(x, 0.0), 1.0);
}

void Params::validate() const {
  const auto check = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string("jart::Params: ") + what);
  };
  check(rFilament > 0.0, "rFilament must be > 0");
  check(lDisc > 0.0 && lPlug > 0.0, "lDisc/lPlug must be > 0");
  check(std::fabs(lDisc + lPlug - lCell) < 1e-15, "lDisc + lPlug must equal lCell");
  check(nDiscMin > 0.0 && nDiscMax > nDiscMin, "need 0 < nDiscMin < nDiscMax");
  check(nPlug > 0.0, "nPlug must be > 0");
  check(mobility > 0.0, "mobility must be > 0");
  check(rSeries >= 0.0, "rSeries must be >= 0");
  check(richardson > 0.0, "richardson must be > 0");
  check(phiBarrier0 > 0.0 && phiBarrier0 > phiLowering, "barrier must stay positive");
  check(idealityFwd >= 1.0 && idealityRev >= 1.0, "ideality factors must be >= 1");
  check(rThEff > 0.0, "rThEff must be > 0");
  check(tauThermal > 0.0, "tauThermal must be > 0");
  check(activationEnergySet > 0.0 && activationEnergyReset > 0.0,
        "activation energies must be > 0");
  check(kineticPrefactorSet > 0.0 && kineticPrefactorReset > 0.0,
        "kinetic prefactors must be > 0");
  check(hopDistance > 0.0 && chargeNumber > 0.0, "hop parameters must be > 0");
  check(windowExponent >= 1.0, "windowExponent must be >= 1");
}

Params Params::paperDefaults() {
  Params p;  // member initialisers hold the calibrated values
  p.validate();
  return p;
}

Params Params::withVariability(nh::util::Rng& rng, double sigma) const {
  if (sigma < 0.0) throw std::invalid_argument("withVariability: sigma must be >= 0");
  Params p = *this;
  const auto lognormal = [&](double value) {
    return value * std::exp(rng.normal(0.0, sigma));
  };
  p.rFilament = lognormal(rFilament);
  p.nDiscMax = lognormal(nDiscMax);
  p.nDiscMin = lognormal(nDiscMin);
  if (p.nDiscMin >= p.nDiscMax) p.nDiscMin = p.nDiscMax * 1e-4;
  // Small additive jitter on the activation energy: the dominant source of
  // cycle-to-cycle spread in switching time.
  p.activationEnergySet += rng.normal(0.0, sigma * 0.05);
  p.activationEnergyReset += rng.normal(0.0, sigma * 0.05);
  p.validate();
  return p;
}

}  // namespace nh::jart
