#include "jart/kinetics.hpp"

#include <algorithm>
#include <cmath>

namespace nh::jart {

SwitchingResult switchingTime(const Params& params, double voltage,
                              const SwitchingOptions& options) {
  const bool isSet = voltage > 0.0;
  double nStart = options.nStart;
  if (nStart <= 0.0) nStart = isSet ? params.nDiscMin : params.nDiscMax;

  JartDevice device(params, options.ambientK, nStart);
  device.setCrosstalk(options.crosstalkK);

  SwitchingResult result;
  const auto crossed = [&] {
    const double x = device.normalisedState();
    return isSet ? x >= options.targetState : x <= options.targetState;
  };
  if (crossed()) {
    result.switched = true;
    result.finalNDisc = device.nDisc();
    result.finalTemperature = device.temperature();
    return result;
  }

  // Exponential time stepping: start at 10 ps and grow while nothing moves.
  // advance() internally substeps, so accuracy is preserved when switching
  // finally picks up speed; we only need the outer loop for the crossing
  // bookkeeping and the give-up horizon.
  double t = 0.0;
  double dt = 1e-11;
  while (t < options.maxTime) {
    const double before = device.normalisedState();
    device.advance(voltage, dt);
    const double after = device.normalisedState();
    t += dt;
    if (crossed()) {
      // Linear back-interpolation inside the last step for a smooth series.
      const double target = options.targetState;
      double frac = 1.0;
      if (after != before) frac = std::clamp((target - before) / (after - before), 0.0, 1.0);
      result.switched = true;
      result.time = t - dt + frac * dt;
      result.finalNDisc = device.nDisc();
      result.finalTemperature = device.temperature();
      return result;
    }
    const double moved = std::fabs(after - before);
    if (moved < 1e-3) {
      dt = std::min(dt * 2.0, options.maxTime * 0.05);
    } else if (moved > 2e-2) {
      dt = std::max(dt * 0.5, 1e-12);
    }
  }
  result.switched = false;
  result.time = options.maxTime;
  result.finalNDisc = device.nDisc();
  result.finalTemperature = device.temperature();
  return result;
}

std::vector<KineticsPoint> kineticsLandscape(const Params& params,
                                             const std::vector<double>& voltages,
                                             const std::vector<double>& temperatures,
                                             double maxTime) {
  std::vector<KineticsPoint> out;
  out.reserve(voltages.size() * temperatures.size());
  for (double t0 : temperatures) {
    for (double v : voltages) {
      SwitchingOptions opt;
      opt.ambientK = t0;
      opt.maxTime = maxTime;
      const SwitchingResult r = switchingTime(params, v, opt);
      out.push_back({v, t0, r.time, r.switched});
    }
  }
  return out;
}

}  // namespace nh::jart
