#pragma once
/// \file model.hpp
/// Stateless evaluation routines of the JART-style VCM compact model:
/// conduction (I-V at given state and temperature), ionic switching rate
/// (dN_disc/dt) and the quasi-static thermal equation (paper Eq. 6).
/// State integration lives in device.hpp / kinetics.hpp.

#include "jart/params.hpp"

namespace nh::jart {

/// Result of one conduction solve at fixed (V, N_disc, T).
struct Conduction {
  double current = 0.0;         ///< Terminal current [A] (positive for V > 0).
  double vSchottky = 0.0;       ///< Share of V across the interface [V].
  double vDisc = 0.0;           ///< Share across the disc [V] (drives kinetics).
  double powerFilament = 0.0;   ///< Power dissipated in the filament region
                                ///< (disc + plug + interface, excl. series R) [W].
  bool converged = true;        ///< Internal solve converged.
};

/// Sign convention: V > 0 is the SET polarity (drives the cell toward LRS);
/// V < 0 is the RESET polarity.
class Model {
 public:
  explicit Model(Params params);

  const Params& params() const { return params_; }

  /// Solve the internal voltage division and return terminal current plus
  /// the disc field needed by the kinetics. Monotone 1-D Newton with a
  /// bisection safeguard; always converges on the bracketed interval.
  Conduction solveConduction(double voltage, double nDisc, double temperatureK) const;

  /// Schottky interface current at interface voltage \p vs [A].
  double schottkyCurrent(double vs, double nDisc, double temperatureK) const;

  /// Ionic drift rate dN_disc/dt [m^-3 s^-1]. Positive = SET direction.
  /// \p vDisc is the (signed) voltage across the disc from solveConduction.
  double ionicRate(double vDisc, double nDisc, double temperatureK) const;

  /// Steady-state filament temperature (Eq. 6 + crosstalk):
  /// T = T0 + T_crosstalk + RthEff * P.
  double steadyTemperature(double powerFilament, double ambientK,
                           double crosstalkK) const;

  /// Device resistance V/I at a given read voltage, state and temperature.
  double resistance(double readVoltage, double nDisc, double temperatureK) const;

  /// Soft window functions in [0, 1].
  double windowSet(double nDisc) const;
  double windowReset(double nDisc) const;

 private:
  Params params_;
  double logWindowRatio_;  ///< ln(Nmax/Nmin), cached.
};

}  // namespace nh::jart
