#include "jart/ivsweep.hpp"

#include <cmath>
#include <stdexcept>

namespace nh::jart {

std::vector<IvPoint> sweepIV(const Params& params, const IvSweepOptions& options) {
  if (!(options.vMax > 0.0) || !(options.vMin < 0.0)) {
    throw std::invalid_argument("sweepIV: need vMax > 0 and vMin < 0");
  }
  if (!(options.rampRate > 0.0)) {
    throw std::invalid_argument("sweepIV: rampRate must be > 0");
  }
  if (options.samples < 8) throw std::invalid_argument("sweepIV: samples >= 8");

  // Triangular excitation: 0 -> vMax -> 0 -> vMin -> 0.
  const double legUp = options.vMax / options.rampRate;
  const double legDown = (options.vMax - options.vMin) / options.rampRate;
  const double legBack = -options.vMin / options.rampRate;
  const double total = legUp + legDown + legBack;

  const auto voltageAt = [&](double t) {
    if (t <= legUp) return options.rampRate * t;
    if (t <= legUp + legDown) return options.vMax - options.rampRate * (t - legUp);
    return options.vMin + options.rampRate * (t - legUp - legDown);
  };

  JartDevice device(params, options.ambientK,
                    options.nStart > 0.0 ? options.nStart : params.nDiscMin);

  std::vector<IvPoint> loop;
  loop.reserve(options.samples);
  const double dt = total / static_cast<double>(options.samples);
  double t = 0.0;
  for (std::size_t i = 0; i < options.samples; ++i) {
    const double v = voltageAt(t + 0.5 * dt);  // midpoint voltage of the step
    device.advance(v, dt);
    t += dt;
    IvPoint p;
    p.time = t;
    p.voltage = v;
    p.current = device.current(v);
    p.nDisc = device.nDisc();
    p.temperatureK = device.temperature();
    loop.push_back(p);
  }
  return loop;
}

IvLoopMetrics analyseLoop(const Params& params, const std::vector<IvPoint>& loop,
                          double iSetMark) {
  IvLoopMetrics m;
  if (loop.empty()) return m;

  // SET voltage: first rising-branch sample whose current crosses iSetMark.
  for (const auto& p : loop) {
    if (p.voltage < 0.0) break;  // rising branch ends at the apex crossing 0
    if (p.current >= iSetMark) {
      m.vSet = p.voltage;
      break;
    }
  }
  // Switched to LRS by the end of the positive branch, and back to HRS on
  // the negative branch?
  double maxN = 0.0;
  double minNAfter = params.nDiscMax;
  bool seenNegative = false;
  for (const auto& p : loop) {
    if (p.voltage >= 0.0 && !seenNegative) {
      maxN = std::max(maxN, p.nDisc);
    } else {
      seenNegative = true;
      minNAfter = std::min(minNAfter, p.nDisc);
    }
  }
  m.switchedToLrs = params.normalisedState(maxN) > 0.9;
  m.switchedBack = params.normalisedState(minNAfter) < 0.1;

  // V_RESET: negative-branch |I| maximum (current collapses after RESET).
  double bestI = 0.0;
  for (const auto& p : loop) {
    if (p.voltage < 0.0 && std::fabs(p.current) > bestI) {
      bestI = std::fabs(p.current);
      m.vReset = p.voltage;
    }
  }

  // Hysteresis: compare currents near +0.2 V on the early (HRS) and late
  // (LRS) passes.
  double early = 0.0, late = 0.0;
  for (std::size_t i = 0; i < loop.size(); ++i) {
    const auto& p = loop[i];
    if (std::fabs(p.voltage - 0.2) < 0.05) {
      if (i < loop.size() / 4) {
        early = std::max(early, std::fabs(p.current));
      } else if (i < loop.size() / 2) {
        late = std::max(late, std::fabs(p.current));
      }
    }
  }
  if (early > 0.0 && late > 0.0) m.hysteresis = late / early;
  return m;
}

}  // namespace nh::jart
