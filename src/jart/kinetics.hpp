#pragma once
/// \file kinetics.hpp
/// Standalone switching-kinetics studies on a single device: the
/// time-to-SET/RESET landscape t(V, T) that underpins the attack (von
/// Witzleben et al. 2017: switching time depends exponentially on filament
/// temperature; Menzel et al. 2011: ultra-nonlinear voltage dependence).

#include <vector>

#include "jart/device.hpp"

namespace nh::jart {

/// Outcome of a constant-stress switching experiment.
struct SwitchingResult {
  bool switched = false;  ///< Target state reached before maxTime.
  double time = 0.0;      ///< Time of crossing [s] (== maxTime when not switched).
  double finalNDisc = 0.0;
  double finalTemperature = 0.0;
};

/// Options for switchingTime().
struct SwitchingOptions {
  double ambientK = 300.0;
  double crosstalkK = 0.0;    ///< Constant additional temperature (Eq. 5 input).
  double nStart = -1.0;       ///< Initial N_disc; < 0 = deep HRS (SET) / LRS (RESET).
  double targetState = 0.5;   ///< Normalised state to cross (0..1).
  double maxTime = 1.0;       ///< Give-up horizon [s].
};

/// Time for a device under constant applied voltage \p voltage to cross the
/// target normalised state. SET when voltage > 0, RESET when voltage < 0.
/// Integrates conduction + self-heating + kinetics with adaptive substeps
/// (exponential time stepping, so the 10-decade dynamic range of t_SET is
/// swept efficiently).
SwitchingResult switchingTime(const Params& params, double voltage,
                              const SwitchingOptions& options = {});

/// One sweep point of the kinetics landscape bench.
struct KineticsPoint {
  double voltage = 0.0;
  double temperatureK = 0.0;
  double time = 0.0;
  bool switched = false;
};

/// Evaluate t_SET over a (voltage x ambient-temperature) grid.
std::vector<KineticsPoint> kineticsLandscape(const Params& params,
                                             const std::vector<double>& voltages,
                                             const std::vector<double>& temperatures,
                                             double maxTime = 1.0);

}  // namespace nh::jart
