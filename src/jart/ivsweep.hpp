#pragma once
/// \file ivsweep.hpp
/// Quasi-static I-V sweeps of a single cell: the classic bipolar-ReRAM
/// "butterfly" hysteresis loop (SET on the positive branch, RESET on the
/// negative branch). Used to document the compact model's DC fingerprint
/// and to verify bipolar switching end to end.

#include <vector>

#include "jart/device.hpp"

namespace nh::jart {

/// One sample along the sweep.
struct IvPoint {
  double time = 0.0;         ///< [s] since sweep start.
  double voltage = 0.0;      ///< Applied voltage [V].
  double current = 0.0;      ///< Device current [A].
  double nDisc = 0.0;        ///< State [m^-3].
  double temperatureK = 0.0; ///< Filament temperature [K].
};

/// Sweep parameters: a triangular excitation
/// 0 -> vMax -> vMin -> 0 at a constant |dV/dt|.
struct IvSweepOptions {
  double vMax = 1.3;        ///< Positive apex [V] (SET branch).
  double vMin = -1.5;       ///< Negative apex [V] (RESET branch).
  double rampRate = 1e7;    ///< |dV/dt| [V/s] (10 V/us: a slow DC-like sweep).
  std::size_t samples = 400;///< Recorded points over the whole loop.
  double ambientK = 300.0;
  double nStart = -1.0;     ///< Initial state; < 0 = deep HRS.
};

/// Run the sweep on a fresh device; returns the sampled loop.
std::vector<IvPoint> sweepIV(const Params& params, const IvSweepOptions& options = {});

/// Loop metrics extracted from a sweep (for tests and the bench table).
struct IvLoopMetrics {
  double vSet = 0.0;    ///< Voltage where |I| first exceeds iSetMark on the
                        ///< rising branch [V].
  double vReset = 0.0;  ///< Voltage of maximum |I| slope reversal on the
                        ///< negative branch [V] (approximated by the
                        ///< |I|-maximum location).
  double hysteresis = 0.0;  ///< Max ratio of up/down branch currents at 0.2 V.
  bool switchedToLrs = false;
  bool switchedBack = false;
};

IvLoopMetrics analyseLoop(const Params& params, const std::vector<IvPoint>& loop,
                          double iSetMark = 1e-5);

}  // namespace nh::jart
