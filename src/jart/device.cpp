#include "jart/device.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nh::jart {

JartDevice::JartDevice(const Params& params, double ambientK, double nDiscInitial)
    : model_(params), ambientK_(ambientK) {
  if (!(ambientK > 0.0)) {
    throw std::invalid_argument("JartDevice: ambient temperature must be > 0 K");
  }
  nDisc_ = nDiscInitial > 0.0 ? nDiscInitial : params.nDiscMin;
  setNDisc(nDisc_);
}

double JartDevice::current(double v) const {
  return model_.solveConduction(v, nDisc_, temperature()).current;
}

void JartDevice::setNDisc(double n) {
  const Params& p = model_.params();
  nDisc_ = std::clamp(n, p.nDiscMin, p.nDiscMax);
}

void JartDevice::setAmbient(double t0) {
  if (!(t0 > 0.0)) throw std::invalid_argument("JartDevice::setAmbient: need T0 > 0");
  // Excess terms are relative to ambient, so only the baseline shifts.
  ambientK_ = t0;
}

void JartDevice::advance(double v, double dt) {
  if (dt <= 0.0) return;
  const Params& p = model_.params();
  const double window = p.nDiscMax - p.nDiscMin;
  const double maxDeltaN = 0.01 * window;  // <= 1% of the window per substep
  const double tau = p.tauThermal;

  double remaining = dt;
  while (remaining > 0.0) {
    const double t = temperature();
    const Conduction c = model_.solveConduction(v, nDisc_, t);
    lastConduction_ = c;
    // Self-heating target (Eq. 6 without the crosstalk term, which is an
    // externally supplied offset): dT_self -> RthEff * P.
    const double selfTarget = p.rThEff * c.powerFilament;
    const double rate = model_.ionicRate(c.vDisc, nDisc_, t);

    // Substep: keep the state move small both absolutely (window fraction)
    // and relatively (N enters the conduction path logarithmically, so the
    // deep-HRS regime needs per-decade resolution), and resolve the thermal
    // lag only while the temperature is actually transient (once it has
    // settled the exact exponential update below is valid for any step).
    double h = remaining;
    if (std::fabs(selfTarget - selfExcessK_) > 0.5) h = std::min(h, tau * 0.5);
    if (rate != 0.0) {
      const double absRate = std::fabs(rate);
      h = std::min(h, maxDeltaN / absRate);
      h = std::min(h, 0.05 * nDisc_ / absRate);
    }
    h = std::max(h, remaining * 1e-9);  // guard against underflow
    h = std::min(h, remaining);

    selfExcessK_ += (selfTarget - selfExcessK_) * (1.0 - std::exp(-h / tau));
    peakTemperatureK_ = std::max(peakTemperatureK_, temperature());
    nDisc_ = std::clamp(nDisc_ + rate * h, p.nDiscMin, p.nDiscMax);
    remaining -= h;
  }
}

double JartDevice::readResistance(double readVoltage) const {
  return model_.resistance(readVoltage, nDisc_, temperature());
}

}  // namespace nh::jart
