#pragma once
/// \file params.hpp
/// Parameter set of the JART-VCM-v1b-style compact model for filamentary
/// valence-change (VCM) ReRAM cells (Pt/HfO2/TiOx/Ti stack), after Bengel et
/// al. (TCAS-I 2020) and Menzel et al. The deterministic variant is used by
/// default, matching the paper ("the deterministic model version is used
/// here"); a variability helper perturbs device-to-device parameters.
///
/// The model splits the applied voltage across a Schottky-type interface,
/// the vacancy-depleted "disc", the vacancy-rich "plug" and a linear series
/// resistance, and evolves one state variable: the oxygen-vacancy donor
/// concentration in the disc, N_disc.
///
/// Absolute values are calibrated (see DESIGN.md section 6) such that
///  * a full-select SET at V_SET = 1.05 V, 300 K completes within ~100 ns,
///  * a half-select (V_SET/2) stress at 300 K is harmless for >= 10^6 pulses,
///  * a half-select stress on a cell heated by ~60-100 K of thermal
///    crosstalk flips within 10^2..10^5 pulses -- the regime of Fig. 3.

#include <cstdint>

#include "util/rng.hpp"

namespace nh::jart {

struct Params {
  // ---- geometry -----------------------------------------------------------
  /// Filament radius [m] (paper Fig. 2b: diameter 30 nm, height 5 nm).
  double rFilament = 15e-9;
  /// Total filament/cell oxide thickness [m].
  double lCell = 5e-9;
  /// Disc (switching layer) thickness [m].
  double lDisc = 1e-9;
  /// Plug (vacancy reservoir) thickness [m]; lDisc + lPlug == lCell.
  double lPlug = 4e-9;

  // ---- state variable window ----------------------------------------------
  /// Minimum disc donor concentration [m^-3] (deep HRS).
  double nDiscMin = 8e23;
  /// Maximum disc donor concentration [m^-3] (deep LRS).
  double nDiscMax = 2e27;
  /// Fixed plug donor concentration [m^-3].
  double nPlug = 2e27;

  // ---- conduction -----------------------------------------------------------
  /// Electron mobility in the oxide [m^2 V^-1 s^-1].
  double mobility = 4e-6;
  /// Linear series resistance (TiOx layer + electrode lines) [Ohm].
  double rSeries = 650.0;
  /// Effective Richardson constant of the Schottky interface [A m^-2 K^-2].
  double richardson = 6.01e5;
  /// Zero-lowering forward Schottky barrier [eV] (deep HRS value).
  double phiBarrier0 = 0.32;
  /// Barrier lowering between deep HRS and deep LRS [eV]; the effective
  /// barrier is phiBarrier0 - phiLowering * x with x = normalised ln(N).
  double phiLowering = 0.17;
  /// Forward ideality factor.
  double idealityFwd = 1.6;
  /// Reverse (RESET-polarity) barrier [eV] and ideality. The large ideality
  /// models the tunnelling-assisted leaky reverse conduction of VCM cells.
  double phiBarrierRev = 0.30;
  double idealityRev = 4.0;

  // ---- thermal (Eq. 6 of the paper) ----------------------------------------
  /// Effective thermal resistance filament -> surroundings [K/W]. The
  /// simulation flow can override this with the FEM-extracted R_th.
  /// Default equals the R_th our FEM extraction reports for the 50 nm
  /// 5x5 crossbar (~1.9e6 K/W); the simulation flow overrides it with the
  /// extraction result of the concrete geometry, exactly as the paper feeds
  /// the COMSOL-fitted R_th into the circuit simulation.
  double rThEff = 1.95e6;
  /// Filament thermal time constant [s]; the temperature relaxes toward
  /// T0 + T_crosstalk + RthEff*P with this first-order lag.
  double tauThermal = 2e-9;

  // ---- switching kinetics ----------------------------------------------------
  /// Ion-hopping activation energy [eV] (SET direction). Together with the
  /// sinh field term this sets the hot-vs-cold half-select discrimination
  /// (~3 decades of switching time per ~75 K, matching Fig. 3b/c spans).
  double activationEnergySet = 1.10;
  /// Activation energy for RESET [eV].
  double activationEnergyReset = 1.15;
  /// Kinetic prefactor [m^-3 s^-1]: aggregates attempt frequency, vacancy
  /// concentration and hop distance (calibrated so a full-select SET at
  /// V_SET = 1.05 V, 300 K completes in ~10-100 ns).
  double kineticPrefactorSet = 2.0e42;
  double kineticPrefactorReset = 7.5e42;
  /// Hop distance [m] and charge number entering the field-acceleration
  /// term sinh(fieldEnhancement * a*z*e*E / (2*kB*T)).
  double hopDistance = 0.25e-9;
  double chargeNumber = 2.0;
  /// Local-field enhancement inside the disc (dimensionless). Absorbs the
  /// difference between the average disc field V_disc/l_disc and the local
  /// field at the hopping site; calibrated to give the ultra-nonlinear
  /// voltage dependence (Menzel 2011) that separates full-select writes
  /// (~ns) from half-select stress (~s at 300 K).
  double fieldEnhancement = 3.45;
  /// Soft-window exponent keeping N_disc inside [nDiscMin, nDiscMax].
  double windowExponent = 10.0;

  // ---- derived quantities ----------------------------------------------------
  /// Filament cross-section area [m^2].
  double filamentArea() const;
  /// Electric conductivity of a region with donor concentration n [S/m].
  double conductivity(double n) const;
  /// Disc resistance at concentration n [Ohm].
  double discResistance(double n) const;
  /// Plug resistance [Ohm].
  double plugResistance() const;
  /// sinh-argument coefficient a*z*e/(2*kB*lDisc) [K/V].
  double fieldCoefficient() const;
  /// Normalised state x in [0, 1]: ln(N/Nmin)/ln(Nmax/Nmin).
  double normalisedState(double n) const;

  /// Throws std::invalid_argument when a physical constraint is violated
  /// (negative lengths, inverted window, lDisc+lPlug != lCell, ...).
  void validate() const;

  /// Exact member-wise comparison (C++20 defaulted); the experiment
  /// engine's study-dedup cache relies on it.
  bool operator==(const Params&) const = default;

  /// Default parameter set used throughout the reproduction.
  static Params paperDefaults();

  /// Device-to-device variability: perturbs filament radius, disc length and
  /// the N window log-normally with relative sigma \p sigma. Deterministic
  /// given \p rng. (Extension beyond the paper's deterministic runs.)
  Params withVariability(nh::util::Rng& rng, double sigma) const;
};

}  // namespace nh::jart
