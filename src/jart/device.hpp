#pragma once
/// \file device.hpp
/// Stateful JART device: one memristive cell with its oxygen-vacancy state
/// and filament temperature. Implements nh::spice::MemristiveModel so it can
/// be instantiated inside a circuit, and exposes the two "interface
/// variables" the paper added to the original model: the filament
/// temperature (out, to the crosstalk hub) and the additional crosstalk
/// temperature (in, from the hub).

#include "jart/model.hpp"
#include "spice/elements.hpp"

namespace nh::jart {

/// One physical cell. Copyable value type (the fast engine keeps a matrix of
/// these); cheap to copy (a handful of doubles plus shared params).
class JartDevice final : public nh::spice::MemristiveModel {
 public:
  /// \p nDiscInitial defaults to the deep-HRS end of the window.
  JartDevice(const Params& params, double ambientK,
             double nDiscInitial = -1.0);

  // ---- MemristiveModel -------------------------------------------------------
  /// Terminal current at voltage \p v with the frozen internal state
  /// (N_disc and temperature are constant within one Newton solve).
  double current(double v) const override;
  /// Integrate N_disc and filament temperature over an accepted step.
  /// Substeps adaptively so state moves <= ~1% of the window per substep.
  void advance(double v, double dt) override;

  // ---- interface variables (paper Sec. IV-B) ---------------------------------
  /// Filament temperature [K]: ambient + crosstalk input + self-heating
  /// excess. The self-heating part carries the thermal RC lag; the crosstalk
  /// input inherits its lag from the source cell's own self-heating state.
  double temperature() const { return ambientK_ + crosstalkK_ + selfExcessK_; }
  /// Excess temperature above ambient [K] (crosstalk + self-heating).
  double excessTemperature() const { return crosstalkK_ + selfExcessK_; }
  /// Self-heating excess only [K] -- what the crosstalk hub propagates to
  /// neighbours (Eq. 5 superposition; see CrosstalkHub).
  double selfExcessTemperature() const { return selfExcessK_; }
  /// Additional temperature from neighbouring cells [K] (input from hub).
  void setCrosstalk(double deltaK) { crosstalkK_ = deltaK; }
  double crosstalk() const { return crosstalkK_; }
  /// Highest filament temperature seen by advance() since the last
  /// clearPeakTemperature() [K]. Traces sample between pulses (when the
  /// filament has cooled), so the peak tracker is what reveals the in-pulse
  /// temperatures of Fig. 1.
  double peakTemperature() const { return peakTemperatureK_; }
  void clearPeakTemperature() { peakTemperatureK_ = temperature(); }

  // ---- state access ------------------------------------------------------------
  double nDisc() const { return nDisc_; }
  /// Set the state directly (init files / test fixtures). Clamped to window.
  void setNDisc(double n);
  /// Normalised state in [0, 1]; 0 = deep HRS, 1 = deep LRS.
  double normalisedState() const { return model_.params().normalisedState(nDisc_); }
  double ambient() const { return ambientK_; }
  void setAmbient(double t0);
  /// Drop the self-heating excess (e.g. after a long idle period between
  /// pulse trains).
  void relaxTemperature() { selfExcessK_ = 0.0; }

  /// Convenience: put the device into a deep state.
  void setLrs() { setNDisc(model_.params().nDiscMax); }
  void setHrs() { setNDisc(model_.params().nDiscMin); }

  /// Small-signal read resistance at \p readVoltage (does not disturb state).
  double readResistance(double readVoltage = 0.2) const;

  const Model& model() const { return model_; }
  /// Last conduction solve of advance(); useful for probes/traces.
  const Conduction& lastConduction() const { return lastConduction_; }

 private:
  Model model_;
  double ambientK_;
  double crosstalkK_ = 0.0;
  double selfExcessK_ = 0.0;
  double peakTemperatureK_ = 0.0;
  double nDisc_;
  Conduction lastConduction_{};
};

}  // namespace nh::jart
