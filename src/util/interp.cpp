#include "util/interp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace nh::util {

PiecewiseLinear::PiecewiseLinear(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  if (x_.size() != y_.size()) {
    throw std::invalid_argument("PiecewiseLinear: size mismatch");
  }
  if (x_.empty()) throw std::invalid_argument("PiecewiseLinear: need >= 1 knot");
  for (std::size_t i = 1; i < x_.size(); ++i) {
    if (!(x_[i] > x_[i - 1])) {
      throw std::invalid_argument("PiecewiseLinear: x must be strictly increasing");
    }
  }
}

double PiecewiseLinear::operator()(double x) const {
  if (x <= x_.front()) return y_.front();
  if (x >= x_.back()) return y_.back();
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - x_.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - x_[lo]) / (x_[hi] - x_[lo]);
  return y_[lo] + t * (y_[hi] - y_[lo]);
}

double lerp(double a, double b, double t) { return a + (b - a) * t; }

double firstCrossing(const std::vector<double>& xs, const std::vector<double>& ys,
                     double level) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  for (std::size_t i = 1; i < xs.size(); ++i) {
    const double y0 = ys[i - 1] - level;
    const double y1 = ys[i] - level;
    if (y0 == 0.0) return xs[i - 1];
    if (y0 * y1 < 0.0) {
      const double t = y0 / (y0 - y1);
      return lerp(xs[i - 1], xs[i], t);
    }
  }
  if (ys.back() == level) return xs.back();
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace nh::util
